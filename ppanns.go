// Package ppanns is a privacy-preserving approximate k-nearest-neighbor
// search library: a from-scratch Go implementation of "Privacy-Preserving
// Approximate Nearest Neighbor Search on High-Dimensional Data" (ICDE 2025).
//
// The scheme lets a data owner outsource an encrypted vector database to an
// honest-but-curious cloud server that answers k-ANNS queries without ever
// seeing plaintext vectors, plaintext queries, or distance values:
//
//   - Distance Comparison Encryption (DCE) answers "is o closer to q than
//     p?" exactly over ciphertexts in O(d) per comparison, leaking only the
//     comparison bit.
//   - A privacy-preserving index combines DCPE (scale-and-perturb
//     encryption with tunable noise β) with a proximity index built over
//     the DCPE ciphertexts, so the index structure reveals only
//     approximate neighbor relations. HNSW (the paper's choice) is the
//     default; NSG, IVF-Flat and E2LSH backends are selectable via
//     Params.Index (see Backends).
//   - Queries follow a filter-and-refine strategy: the index retrieves
//     k′ > k candidates by approximate distance, then a max-heap driven
//     purely by DCE comparisons selects the exact best k.
//
// # Roles
//
// Three parties, as in the paper's system model:
//
//	owner, _ := ppanns.NewDataOwner(ppanns.Params{Dim: 128, Beta: 2.5})
//	edb, _   := owner.EncryptDatabase(vectors)       // ship to the cloud
//	server, _ := ppanns.NewServer(edb)
//	user, _  := ppanns.NewUser(owner.UserKey())      // authorized key
//
//	tok, _ := user.Query(q)
//	ids, _ := server.Search(tok, 10, ppanns.SearchOptions{RatioK: 8})
//
// The Server type is constructed from ciphertexts only; no API path exposes
// plaintexts or keys to it. See README.md for a quickstart and the
// backend-selection table; cmd/ppanns-bench reproduces the paper's
// evaluation.
package ppanns

import (
	"ppanns/internal/core"
	"ppanns/internal/index"
	"ppanns/internal/pq"
	"ppanns/internal/wal"
)

// Params configures a deployment. See core.Params for field documentation;
// the zero value of every optional field selects a sensible default
// (S=1024, Index="hnsw", M=16, EfConstruction=200).
type Params = core.Params

// IndexOptions carries backend-specific build and search options for
// Params.IndexOptions. Fields for backends other than the selected one are
// ignored.
type IndexOptions = index.Options

// IndexCaps reports a backend's update capabilities (dynamic insert /
// delete support), as returned by Server.Caps.
type IndexCaps = index.Caps

// Backends lists the registered filter-index backends, sorted by name.
func Backends() []string { return index.Names() }

// SearchOptions tunes a single query: k′ (directly or via RatioK), the
// HNSW beam width, and the refine mode.
type SearchOptions = core.SearchOptions

// SearchStats reports a query's cost split between the filter and refine
// phases, the candidate count, and the number of secure comparisons.
type SearchStats = core.SearchStats

// FilterDistMode selects the filter phase's distance provider (see
// SearchOptions.FilterDist).
type FilterDistMode = core.FilterDistMode

// Filter distance modes: exact SAP distances over the DCPE ciphertexts
// (the default), or the product-quantized compressed tier — M table
// lookups per candidate instead of a d-dimensional scan. FilterPQ
// requires a database built with Params.PQ or upgraded via
// EncryptedDatabase.BuildPQ, and pairs with an over-fetched
// SearchOptions.KPrime to absorb the quantization error; the refine
// phase stays exact either way.
const (
	FilterExact = core.FilterExact
	FilterPQ    = core.FilterPQ
)

// PQConfig configures codebook training for the compressed filter tier:
// M subquantizers (must divide into Dim reasonably; ≤256 centroids each),
// sampling and iteration budgets, and the training seed. The zero value
// of every field selects a sensible default. Used with
// EncryptedDatabase.BuildPQ to add a PQ tier to an existing database —
// e.g. one loaded from an older file format; Params.PQ/PQM build the
// tier at encryption time instead.
type PQConfig = pq.TrainConfig

// RefineMode selects the refine-phase comparison scheme.
type RefineMode = core.RefineMode

// Refine modes: the paper's DCE scheme, the HNSW-AME baseline, or no
// refinement (filter-only ablation).
const (
	RefineDCE  = core.RefineDCE
	RefineAME  = core.RefineAME
	RefineNone = core.RefineNone
)

// DataOwner generates keys and encrypts databases; the only party that
// sees plaintext database vectors.
type DataOwner = core.DataOwner

// User encrypts queries with owner-authorized key material.
type User = core.User

// Server hosts the encrypted database and answers queries; it never holds
// keys or plaintexts.
type Server = core.Server

// UserKey is the key material the data owner hands an authorized user.
type UserKey = core.UserKey

// QueryToken is an encrypted query: the DCPE ciphertext for the filter
// phase plus the DCE trapdoor for the refine phase.
type QueryToken = core.QueryToken

// EncryptedDatabase is the server-side state: DCPE ciphertexts indexed by
// an HNSW graph, plus DCE ciphertexts for exact refinement.
type EncryptedDatabase = core.EncryptedDatabase

// InsertPayload carries one new encrypted vector from owner to server.
type InsertPayload = core.InsertPayload

// NewDataOwner validates parameters and creates a data owner.
func NewDataOwner(p Params) (*DataOwner, error) { return core.NewDataOwner(p) }

// NewUser creates a query party from owner-authorized key material.
func NewUser(k *UserKey) (*User, error) { return core.NewUser(k) }

// NewServer wraps an encrypted database received from a data owner.
func NewServer(edb *EncryptedDatabase) (*Server, error) { return core.NewServer(edb) }

// ServerOptions tunes the serving tier's write path (delta-tier compaction
// triggers). See Params.CompactAt for the deployment-level knob.
type ServerOptions = core.ServerOptions

// NewServerWith is NewServer with explicit write-path options.
func NewServerWith(edb *EncryptedDatabase, o ServerOptions) (*Server, error) {
	return core.NewServerWith(edb, o)
}

// CompactionStats reports the serving tier's two-tier write-path state
// (delta size, pending tombstones, compaction history), as returned by
// Server.CompactionStats.
type CompactionStats = core.CompactionStats

// SyncPolicy selects when a WAL-attached server fsyncs acknowledged
// writes (ServerOptions.WALSync): Every: 1 syncs each write before its
// ack (group-committed across concurrent writers), Every: N syncs every
// N-th record, Interval syncs on a timer, and the zero value leaves
// durability to the OS page cache. See the README's Durability section
// for the guarantees and measured cost of each.
type SyncPolicy = wal.SyncPolicy

// RecoveryStats describes what OpenServer found in a WAL directory: the
// checkpoint it anchored on, how many records it replayed, and any
// torn-tail repair it performed.
type RecoveryStats = core.RecoveryStats

// WALStats summarizes a server's attached write-ahead log, as returned by
// Server.WALStats (nil when the server runs without one).
type WALStats = core.WALStats

// OpenServer recovers a server from a WAL directory previously populated
// via ServerOptions.WALDir: it repairs the log's torn tail, loads the
// newest checkpoint snapshot, replays every acknowledged mutation after
// it, and resumes logging. Use NewServerWith to create the directory;
// OpenServer to reopen it after a restart or crash.
func OpenServer(walDir string, o ServerOptions) (*Server, RecoveryStats, error) {
	return core.OpenServer(walDir, o)
}
