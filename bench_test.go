// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md §2 for the experiment index). Each BenchmarkFigN measures the
// kernel its figure plots at laptop scale; the full sweeps that print the
// figures live in cmd/ppanns-bench. Ablations and scheme micro-benchmarks
// follow the figure benches.
package ppanns_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"ppanns"
	"ppanns/internal/ame"
	"ppanns/internal/baselines"
	"ppanns/internal/core"
	"ppanns/internal/dataset"
	"ppanns/internal/dce"
	"ppanns/internal/dcpe"
	"ppanns/internal/hnsw"
	"ppanns/internal/lsh"
	"ppanns/internal/resultheap"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

const (
	benchN = 3000
	benchK = 10
)

// fixture is the shared deployment most figure benches reuse.
type fixture struct {
	data   *dataset.Data
	owner  *ppanns.DataOwner
	user   *ppanns.User
	server *ppanns.Server
	tokens []*ppanns.QueryToken
}

var (
	fixOnce sync.Once
	fix     *fixture

	ameOnce sync.Once
	ameFix  *fixture
)

func mainFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		fix = buildFixture(b, benchN, false)
	})
	return fix
}

func ameFixture(b *testing.B) *fixture {
	b.Helper()
	ameOnce.Do(func() {
		ameFix = buildFixture(b, 800, true)
	})
	return ameFix
}

func buildFixture(b *testing.B, n int, withAME bool) *fixture {
	b.Helper()
	data := dataset.DeepLike(n, 30, 7)
	owner, err := ppanns.NewDataOwner(ppanns.Params{
		Dim: data.Dim, Beta: 0.3, M: 16, EfConstruction: 200, Seed: 7, WithAME: withAME,
	})
	if err != nil {
		b.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(data.Train)
	if err != nil {
		b.Fatal(err)
	}
	server, err := ppanns.NewServer(edb)
	if err != nil {
		b.Fatal(err)
	}
	user, err := ppanns.NewUser(owner.UserKey())
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{data: data, owner: owner, user: user, server: server}
	for _, q := range data.Queries {
		tok, err := user.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		f.tokens = append(f.tokens, tok)
	}
	return f
}

func (f *fixture) search(b *testing.B, opt ppanns.SearchOptions) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok := f.tokens[i%len(f.tokens)]
		if _, err := f.server.Search(tok, benchK, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1DatasetGen regenerates Table I's corpora (generation +
// statistics pass).
func BenchmarkTable1DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := dataset.SIFTLike(2000, 10, uint64(i)+1)
		_ = d.Describe()
	}
}

// BenchmarkFig4FilterBeta measures the filter-phase-only search at the β
// operating points of Figure 4.
func BenchmarkFig4FilterBeta(b *testing.B) {
	for _, beta := range []float64{0, 0.3, 0.6} {
		b.Run(fmt.Sprintf("beta=%v", beta), func(b *testing.B) {
			data := dataset.DeepLike(1500, 10, 11)
			owner, err := ppanns.NewDataOwner(ppanns.Params{Dim: data.Dim, Beta: beta, M: 16, EfConstruction: 150, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			edb, err := owner.EncryptDatabase(data.Train)
			if err != nil {
				b.Fatal(err)
			}
			server, _ := ppanns.NewServer(edb)
			user, _ := ppanns.NewUser(owner.UserKey())
			toks := make([]*ppanns.QueryToken, len(data.Queries))
			for i, q := range data.Queries {
				toks[i], _ = user.QueryFilterOnly(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := server.Search(toks[i%len(toks)], benchK,
					ppanns.SearchOptions{KPrime: benchK, EfSearch: 50, Refine: ppanns.RefineNone}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5RatioK measures the full filter-and-refine search across
// Figure 5's Ratio_k axis.
func BenchmarkFig5RatioK(b *testing.B) {
	f := mainFixture(b)
	for _, ratio := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("ratio=%d", ratio), func(b *testing.B) {
			f.search(b, ppanns.SearchOptions{RatioK: ratio, EfSearch: 4 * ratio * benchK})
		})
	}
}

// BenchmarkFig6RefineScheme measures one query under Figure 6's three
// refine modes over a shared index.
func BenchmarkFig6RefineScheme(b *testing.B) {
	f := ameFixture(b)
	for _, mode := range []ppanns.RefineMode{ppanns.RefineNone, ppanns.RefineDCE, ppanns.RefineAME} {
		b.Run(mode.String(), func(b *testing.B) {
			f.search(b, ppanns.SearchOptions{RatioK: 16, EfSearch: 160, Refine: mode})
		})
	}
}

// BenchmarkFig7Baselines measures one query on each of Figure 7's four
// systems at a shared small scale.
func BenchmarkFig7Baselines(b *testing.B) {
	data := dataset.DeepLike(1000, 10, 13)
	lshCfg := lsh.Config{Dim: data.Dim, Tables: 10, Hashes: 6, W: 1.0, Seed: 13}

	ours, err := baselines.NewOursFromData(data.Train, core.Params{
		Dim: data.Dim, Beta: 0.3, M: 16, EfConstruction: 150, Seed: 13,
	}, core.SearchOptions{RatioK: 16, EfSearch: 160})
	if err != nil {
		b.Fatal(err)
	}
	rs, err := baselines.NewRSSANN(data.Train, baselines.RSSANNConfig{LSH: lshCfg, Probes: 6, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	pri, err := baselines.NewPRIANN(data.Train, baselines.PRIANNConfig{LSH: lshCfg, BucketCap: 48, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	pacm, err := baselines.NewPACMANN(data.Train, baselines.PACMANNConfig{
		Graph: hnsw.Config{M: 12, EfConstruction: 100}, Beam: 6, MaxRounds: 6, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range []baselines.System{ours, rs, pri, pacm} {
		b.Run(sys.Name(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.Search(data.Queries[i%len(data.Queries)], benchK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Encryption measures Figure 8's per-vector encryption cost
// for the three schemes.
func BenchmarkFig8Encryption(b *testing.B) {
	const dim = 128
	r := rng.NewSeeded(17)
	v := rng.Gaussian(r, nil, dim)
	sapKey, err := dcpe.KeyGen(rng.Derive(r, 1), dim, 1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	dceKey, err := dce.KeyGen(rng.Derive(r, 2), dim)
	if err != nil {
		b.Fatal(err)
	}
	ameKey, err := ame.KeyGen(rng.Derive(r, 3), dim)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DCPE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sapKey.Encrypt(v)
		}
	})
	b.Run("DCE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dceKey.Encrypt(v)
		}
	})
	b.Run("AME", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ameKey.Encrypt(v)
		}
	})
}

// BenchmarkFig9CostSplit measures the full search at Figure 9's recall-0.9
// operating point, reporting the per-phase microseconds the figure splits.
func BenchmarkFig9CostSplit(b *testing.B) {
	f := mainFixture(b)
	var filterNs, refineNs, comparisons int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok := f.tokens[i%len(f.tokens)]
		_, st, err := f.server.SearchWithStats(tok, benchK, ppanns.SearchOptions{RatioK: 16, EfSearch: 160})
		if err != nil {
			b.Fatal(err)
		}
		filterNs += st.FilterTime.Nanoseconds()
		refineNs += st.RefineTime.Nanoseconds()
		comparisons += int64(st.Comparisons)
	}
	b.ReportMetric(float64(filterNs)/float64(b.N)/1e3, "filter-µs/op")
	b.ReportMetric(float64(refineNs)/float64(b.N)/1e3, "refine-µs/op")
	b.ReportMetric(float64(comparisons)/float64(b.N), "SDC/op")
}

// BenchmarkFig10Scalability measures search latency across Figure 10's
// growing database sizes.
func BenchmarkFig10Scalability(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := buildFixture(b, n, false)
			f.search(b, ppanns.SearchOptions{RatioK: 16, EfSearch: 160})
		})
	}
}

// BenchmarkOverheadVsPlaintext compares the full scheme against plaintext
// HNSW on the same corpus (the Section VII-B closing ratio).
func BenchmarkOverheadVsPlaintext(b *testing.B) {
	f := mainFixture(b)
	b.Run("plaintext-hnsw", func(b *testing.B) {
		g, err := hnsw.New(hnsw.Config{Dim: f.data.Dim, M: 16, EfConstruction: 200, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range f.data.Train {
			g.Add(v)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Search(f.data.Queries[i%len(f.data.Queries)], benchK, 160)
		}
	})
	b.Run("ppanns", func(b *testing.B) {
		f.search(b, ppanns.SearchOptions{RatioK: 16, EfSearch: 160})
	})
}

// BenchmarkMaintainInsertDelete measures one Section V-D insert+delete
// round trip against a live index.
func BenchmarkMaintainInsertDelete(b *testing.B) {
	f := buildFixture(b, 1500, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := f.owner.EncryptVector(f.data.Train[i%len(f.data.Train)])
		if err != nil {
			b.Fatal(err)
		}
		id, err := f.server.Insert(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.server.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRefine compares Algorithm 2's heap selection against a
// full comparison sort of the k′ candidates (the design choice the heap's
// O(k′·log k) bound justifies).
func BenchmarkAblationRefine(b *testing.B) {
	f := mainFixture(b)
	tok := f.tokens[0]
	// Materialize one candidate list via the filter phase at RatioK=16.
	ids, _, err := f.server.SearchWithStats(tok, 16*benchK, ppanns.SearchOptions{KPrime: 16 * benchK, EfSearch: 160, Refine: ppanns.RefineNone})
	if err != nil {
		b.Fatal(err)
	}
	edbDCE := fixtureCiphertexts(b, f, ids)
	farther := func(a, bIdx int) bool {
		return dce.DistanceComp(edbDCE[a], edbDCE[bIdx], tok.Trapdoor) > 0
	}
	local := make([]int, len(ids))
	for i := range local {
		local[i] = i
	}
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := resultheap.NewCompareHeap(benchK, farther)
			for _, id := range local {
				h.Offer(id)
			}
			_ = h.SortedAscending()
		}
	})
	b.Run("full-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cands := append([]int(nil), local...)
			sort.Slice(cands, func(x, y int) bool { return farther(cands[y], cands[x]) })
			_ = cands[:benchK]
		}
	})
}

// fixtureCiphertexts re-encrypts the candidate vectors so the ablation can
// compare refine strategies outside the server.
func fixtureCiphertexts(b *testing.B, f *fixture, ids []int) []*dce.Ciphertext {
	b.Helper()
	key := f.owner.UserKey().DCE
	cts := make([]*dce.Ciphertext, len(ids))
	for i, id := range ids {
		cts[i] = key.Encrypt(f.data.Train[id])
	}
	return cts
}

// BenchmarkAblationLinearScanDCE measures the index-free alternative the
// paper rejects at the end of Section IV: a full DCE linear scan with a
// comparison heap over all n vectors.
func BenchmarkAblationLinearScanDCE(b *testing.B) {
	data := dataset.DeepLike(1000, 5, 19)
	r := rng.NewSeeded(19)
	key, err := dce.KeyGen(r, data.Dim)
	if err != nil {
		b.Fatal(err)
	}
	cts := make([]*dce.Ciphertext, len(data.Train))
	for i, v := range data.Train {
		cts[i] = key.Encrypt(v)
	}
	tok := key.TrapGen(data.Queries[0])
	farther := func(a, bIdx int) bool { return dce.DistanceComp(cts[a], cts[bIdx], tok) > 0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := resultheap.NewCompareHeap(benchK, farther)
		for id := range cts {
			h.Offer(id)
		}
		_ = h.SortedAscending()
	}
}

// --- Scheme micro-benchmarks (the O(d) vs O(d²) story of Section IV-B).

func BenchmarkDCEDistanceComp(b *testing.B) {
	for _, dim := range []int{96, 128, 960} {
		b.Run(fmt.Sprintf("d=%d", dim), func(b *testing.B) {
			r := rng.NewSeeded(23)
			key, err := dce.KeyGen(r, dim)
			if err != nil {
				b.Fatal(err)
			}
			co := key.Encrypt(rng.Gaussian(r, nil, dim))
			cp := key.Encrypt(rng.Gaussian(r, nil, dim))
			tq := key.TrapGen(rng.Gaussian(r, nil, dim))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dce.DistanceComp(co, cp, tq)
			}
		})
	}
}

func BenchmarkAMECompare(b *testing.B) {
	for _, dim := range []int{96, 128} {
		b.Run(fmt.Sprintf("d=%d", dim), func(b *testing.B) {
			r := rng.NewSeeded(29)
			key, err := ame.KeyGen(r, dim)
			if err != nil {
				b.Fatal(err)
			}
			co := key.Encrypt(rng.Gaussian(r, nil, dim))
			cp := key.Encrypt(rng.Gaussian(r, nil, dim))
			td := key.TrapGen(rng.Gaussian(r, nil, dim))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ame.Compare(co, cp, td)
			}
		})
	}
}

func BenchmarkDCETrapGen(b *testing.B) {
	r := rng.NewSeeded(31)
	key, err := dce.KeyGen(r, 128)
	if err != nil {
		b.Fatal(err)
	}
	q := rng.Gaussian(r, nil, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.TrapGen(q)
	}
}

func BenchmarkPlainSqDist(b *testing.B) {
	r := rng.NewSeeded(37)
	x := rng.Gaussian(r, nil, 128)
	y := rng.Gaussian(r, nil, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.SqDist(x, y)
	}
}
