// Command ppanns-bench regenerates the paper's evaluation: every table and
// figure of Section VII maps to an experiment id.
//
// Usage:
//
//	ppanns-bench -exp fig4 [-n 8000] [-queries 50] [-k 10] [-datasets sift,deep] [-full]
//	ppanns-bench -exp all            # run the whole evaluation
//	ppanns-bench -list               # list experiment ids
//
// Scales default to laptop size; -n/-queries grow them and -full lifts the
// caps protecting the 960-dimensional and AME-heavy pieces. Shapes, not
// absolute numbers, are the reproduction target (EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"ppanns/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (see -list) or \"all\"")
		list       = flag.Bool("list", false, "list experiments and exit")
		n          = flag.Int("n", 8000, "database size per dataset")
		queries    = flag.Int("queries", 50, "number of queries")
		k          = flag.Int("k", 10, "result size k")
		seed       = flag.Uint64("seed", 42, "experiment seed")
		datasets   = flag.String("datasets", "", "comma-separated dataset subset (sift,gist,glove,deep)")
		full       = flag.Bool("full", false, "lift laptop-scale caps (gist-size AME pieces)")
		jsonOut    = flag.String("json", "", "path for the machine-readable profile of -exp perf (e.g. BENCH_search.json)")
		baseline   = flag.String("baseline", "", "committed profile to regression-gate -exp perf against (fails on >tolerance qps drop)")
		tol        = flag.Float64("baseline-tolerance", 0.25, "allowed fractional single-stream qps drop vs -baseline")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppanns-bench: creating %s: %v\n", *cpuprofile, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ppanns-bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "ppanns-bench: -exp is required (use -list to enumerate)")
		os.Exit(2)
	}

	cfg := bench.Config{
		N: *n, Queries: *queries, K: *k, Seed: *seed, Full: *full, Out: os.Stdout, JSONOut: *jsonOut,
		Baseline: *baseline, BaselineTolerance: *tol,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, err := bench.Lookup(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppanns-bench: %v\n", err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ppanns-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
