// Command ppanns-attack demonstrates the Section III known-plaintext
// attacks: it recovers queries and database vectors from every enhanced
// ASPE variant's leakage and shows the same solver failing against DCE.
//
// Usage:
//
//	ppanns-attack [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"ppanns/internal/bench"
)

func main() {
	seed := flag.Uint64("seed", 42, "attack seed")
	flag.Parse()
	if err := bench.Attack(bench.Config{Seed: *seed, Out: os.Stdout}); err != nil {
		fmt.Fprintf(os.Stderr, "ppanns-attack: %v\n", err)
		os.Exit(1)
	}
}
