// Command ppanns-dbtool operates the PP-ANNS pipeline from the command
// line, one role per subcommand:
//
//	ppanns-dbtool gen     -out data.fvecs -dataset sift -n 10000 [-queries q.fvecs -nq 100]
//	ppanns-dbtool encrypt -in data.fvecs -db db.ppanns -key user.key [-beta 2.5] [-index hnsw]
//	ppanns-dbtool split   -db db.ppanns -shards 4 [-out shard-]
//	ppanns-dbtool compact <in.ppanns> <out.ppanns>
//	ppanns-dbtool serve   -db db.ppanns -addr :7070 [-wal wal/ -wal-sync every=1]
//	ppanns-dbtool query   -key user.key -queries q.fvecs -addr host:7070 [-k 10] [-ratio 16]
//	ppanns-dbtool query   -key user.key -queries q.fvecs -addrs "a:7070,b:7070;c:7070,d:7070" [-hedge 2ms] [-partial]
//	ppanns-dbtool recover <waldir> <out.ppanns>
//	ppanns-dbtool info    [-addr host:7070 | -wal waldir]
//
// gen writes synthetic corpora in the standard fvecs format (or use real
// Sift1M/Gist/Glove/Deep files); encrypt plays the data owner; split
// stripes one encrypted database into per-shard database files for a
// scatter-gather deployment (serve each file on its own machine — see
// internal/shard); compact rewrites a database file with every tombstoned
// record dropped and the survivors renumbered densely (ids change — re-split
// and re-serve afterwards, and discard any ids handed out before); serve
// hosts an encrypted database; query plays the user.
//
// query's -addrs flag accepts a replicated topology: stripes separated by
// ';', replica addresses of one stripe separated by ','. Every replica of
// a stripe must serve the same shard file. Reads fan out with failover
// (and hedging, with -hedge); -partial returns best-effort results when a
// whole stripe is down instead of failing the query.
//
// encrypt's -index flag selects the filter-index backend (hnsw, nsg, ivf,
// or lsh); the choice is stored in the database file, and serve/query
// report it.
//
// serve's -wal flag attaches a write-ahead log: every acknowledged
// Insert/Delete is logged (durable per -wal-sync) and survives a crash.
// A restart with the same -wal directory recovers automatically; recover
// replays a directory offline into a standalone database file, and
// info -wal inspects one without a running server. All file outputs are
// written atomically (temp + fsync + rename), so a crash mid-write never
// corrupts an existing file.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"ppanns"
	"ppanns/internal/bench"
	"ppanns/internal/core"
	"ppanns/internal/dataset"
	"ppanns/internal/shard"
	"ppanns/internal/transport"
	"ppanns/internal/vec"
	"ppanns/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "encrypt":
		err = runEncrypt(os.Args[2:])
	case "split":
		err = runSplit(os.Args[2:])
	case "compact":
		err = runCompact(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "recover":
		err = runRecover(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppanns-dbtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ppanns-dbtool <gen|encrypt|split|compact|serve|query|info|recover> [flags]")
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "data.fvecs", "output fvecs file")
	queriesOut := fs.String("queries", "", "optional query fvecs file")
	name := fs.String("dataset", "sift", "sift | gist | glove | deep")
	n := fs.Int("n", 10000, "database size")
	nq := fs.Int("nq", 100, "query count (with -queries)")
	seed := fs.Uint64("seed", 42, "generation seed")
	fs.Parse(args)

	d, err := dataset.ByName(*name, *n, *nq, *seed)
	if err != nil {
		return err
	}
	if err := writeFvecs(*out, d.Train); err != nil {
		return err
	}
	fmt.Printf("wrote %d %d-dim vectors to %s\n", len(d.Train), d.Dim, *out)
	if *queriesOut != "" {
		if err := writeFvecs(*queriesOut, d.Queries); err != nil {
			return err
		}
		fmt.Printf("wrote %d queries to %s\n", len(d.Queries), *queriesOut)
	}
	return nil
}

func runEncrypt(args []string) error {
	fs := flag.NewFlagSet("encrypt", flag.ExitOnError)
	in := fs.String("in", "", "input fvecs database (required)")
	dbOut := fs.String("db", "db.ppanns", "encrypted database output")
	keyOut := fs.String("key", "user.key", "user key output")
	beta := fs.Float64("beta", -1, "DCPE β (default: calibrate for filter recall ≈ 0.5)")
	backend := fs.String("index", "hnsw", fmt.Sprintf("filter-index backend (%s)", strings.Join(ppanns.Backends(), " | ")))
	m := fs.Int("m", 16, "HNSW M")
	efc := fs.Int("efc", 200, "HNSW efConstruction")
	seed := fs.Uint64("seed", 0, "key seed (0 = crypto random)")
	pqm := fs.Int("pq", 0, "build the compressed filter tier with this many subquantizers (0 = off)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("encrypt: -in is required")
	}

	ds, err := vec.LoadFvecsFile(*in, 0)
	if err != nil {
		return err
	}
	vectors := ds.Slices()
	fmt.Printf("loaded %d %d-dim vectors from %s\n", len(vectors), ds.Dim(), *in)

	b := *beta
	if b < 0 {
		// Calibrate like the paper: filter-phase ceiling ≈ 0.5.
		d := &dataset.Data{Name: "input", Dim: ds.Dim(), Train: vectors, Queries: vectors[:min(50, len(vectors))]}
		b, err = bench.CalibrateBeta(d, 10, 0.5, 42)
		if err != nil {
			return err
		}
		fmt.Printf("calibrated β = %.4g\n", b)
	}

	owner, err := ppanns.NewDataOwner(ppanns.Params{
		Dim: ds.Dim(), Beta: b, Index: *backend, M: *m, EfConstruction: *efc, Seed: *seed,
		PQ: *pqm > 0, PQM: *pqm,
	})
	if err != nil {
		return err
	}
	edb, err := owner.EncryptDatabase(vectors)
	if err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(*dbOut, edb.Save); err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(*keyOut, func(w io.Writer) error {
		return ppanns.SaveUserKey(w, owner.UserKey())
	}); err != nil {
		return err
	}
	fmt.Printf("encrypted database (%s index) → %s, user key → %s\n", *backend, *dbOut, *keyOut)
	return nil
}

func runSplit(args []string) error {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	dbIn := fs.String("db", "db.ppanns", "encrypted database file")
	shards := fs.Int("shards", 2, "number of shards")
	outPrefix := fs.String("out", "shard-", "output file prefix (writes <prefix><i>.ppanns)")
	m := fs.Int("m", 16, "HNSW M for the per-shard index rebuilds")
	efc := fs.Int("efc", 200, "HNSW efConstruction for the per-shard index rebuilds")
	seed := fs.Uint64("seed", 0, "per-shard index build seed (0 = nondeterministic)")
	fs.Parse(args)

	f, err := os.Open(*dbIn)
	if err != nil {
		return err
	}
	edb, err := ppanns.LoadEncryptedDatabase(f)
	f.Close()
	if err != nil {
		return err
	}
	parts, err := edb.Split(*shards, ppanns.IndexOptions{M: *m, EfConstruction: *efc, Seed: *seed})
	if err != nil {
		return err
	}
	for s, p := range parts {
		out := fmt.Sprintf("%s%d.ppanns", *outPrefix, s)
		if err := wal.WriteFileAtomic(out, p.Save); err != nil {
			return err
		}
		fmt.Printf("shard %d: %d vectors (%d live, %s index) → %s\n",
			s, p.Len(), p.DCE.Live(), p.Backend, out)
	}
	fmt.Printf("global id g lives on shard g %% %d at local position g / %d; serve each file and point a shard coordinator at all of them\n",
		*shards, *shards)
	return nil
}

// runCompact rewrites a database file with every tombstoned record dropped
// entirely: survivors are renumbered densely to 0..live-1 and the filter
// index is rebuilt over them, so the output file holds no deletion debt.
// Because ids change, the output must be treated as a fresh database —
// re-split for sharded deployments, and discard any ids handed out against
// the input.
func runCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("compact: usage: ppanns-dbtool compact <in.ppanns> <out.ppanns>")
	}
	in, out := fs.Arg(0), fs.Arg(1)

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	edb, err := ppanns.LoadEncryptedDatabase(f)
	f.Close()
	if err != nil {
		return err
	}
	total, live := edb.Len(), edb.Live()
	compacted, err := edb.Compacted()
	if err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(out, compacted.Save); err != nil {
		return err
	}
	fmt.Printf("compacted %s → %s: dropped %d tombstoned of %d records, kept %d (ids renumbered 0..%d)\n",
		in, out, total-live, total, live, live-1)
	return nil
}

// parseSyncPolicy maps the -wal-sync flag onto a wal.SyncPolicy:
// "every=N" (N=1 syncs each ack; N>1 every N-th record), "interval=<dur>"
// (timer-driven), or "os" (OS-buffered, no explicit fsync).
func parseSyncPolicy(s string) (wal.SyncPolicy, error) {
	switch {
	case s == "os" || s == "os-buffered":
		return wal.SyncPolicy{}, nil
	case strings.HasPrefix(s, "every="):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "every="))
		if err != nil || n < 1 {
			return wal.SyncPolicy{}, fmt.Errorf("bad sync policy %q: want every=N with N ≥ 1", s)
		}
		return wal.SyncPolicy{Every: n}, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return wal.SyncPolicy{}, fmt.Errorf("bad sync policy %q: want interval=<duration>", s)
		}
		return wal.SyncPolicy{Interval: d}, nil
	}
	return wal.SyncPolicy{}, fmt.Errorf("unknown sync policy %q (want every=N, interval=<dur>, or os)", s)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dbIn := fs.String("db", "db.ppanns", "encrypted database file")
	addr := fs.String("addr", ":7070", "listen address")
	walDir := fs.String("wal", "", "write-ahead-log directory: makes writes durable and recovers acknowledged writes on restart")
	walSync := fs.String("wal-sync", "every=1", "WAL sync policy: every=N | interval=<dur> | os")
	fs.Parse(args)

	var server *ppanns.Server
	if *walDir != "" {
		pol, err := parseSyncPolicy(*walSync)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		opts := ppanns.ServerOptions{WALDir: *walDir, WALSync: pol}
		// An already-populated directory is authoritative — recover from
		// it; a fresh one is seeded from the -db file.
		if rec, err := wal.Inspect(*walDir); err == nil && (rec.Records > 0 || len(rec.Barriers) > 0) {
			srv, stats, err := ppanns.OpenServer(*walDir, opts)
			if err != nil {
				return err
			}
			fmt.Printf("recovered from %s: checkpoint %s (epoch %d) + %d replayed records → epoch %d\n",
				*walDir, stats.Checkpoint, stats.CheckpointEpoch, stats.Replayed, stats.Epoch)
			if stats.Truncated != "" {
				fmt.Printf("warning: repaired torn log tail: %s (%d bytes dropped)\n", stats.Truncated, stats.TruncatedBytes)
			}
			server = srv
		} else {
			edb, err := loadDatabase(*dbIn)
			if err != nil {
				return err
			}
			server, err = ppanns.NewServerWith(edb, opts)
			if err != nil {
				return err
			}
			fmt.Printf("write-ahead log at %s (sync %s)\n", *walDir, pol)
		}
		defer server.Close()
	} else {
		edb, err := loadDatabase(*dbIn)
		if err != nil {
			return err
		}
		server, err = ppanns.NewServer(edb)
		if err != nil {
			return err
		}
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d encrypted vectors (%s index) on %s\n", server.Len(), server.Backend(), l.Addr())
	return transport.Serve(l, server)
}

func loadDatabase(path string) (*ppanns.EncryptedDatabase, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ppanns.LoadEncryptedDatabase(f)
}

// runRecover replays a WAL directory offline — newest usable checkpoint
// plus every acknowledged record after it — and writes the recovered
// database atomically to the output path. The directory itself is also
// healed: the torn tail is repaired and a fresh checkpoint recorded.
func runRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("recover: usage: ppanns-dbtool recover <waldir> <out.ppanns>")
	}
	dir, out := fs.Arg(0), fs.Arg(1)

	srv, stats, err := core.OpenServer(dir, core.ServerOptions{CompactAt: -1})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("checkpoint:  %s (epoch %d, generation %d)\n", stats.Checkpoint, stats.CheckpointEpoch, stats.CheckpointGen)
	fmt.Printf("replayed:    %d records → epoch %d\n", stats.Replayed, stats.Epoch)
	if stats.Truncated != "" {
		fmt.Printf("repaired:    %s (%d bytes, %d segments dropped)\n", stats.Truncated, stats.TruncatedBytes, stats.DroppedSegments)
	}
	if stats.SkippedCheckpoints > 0 {
		fmt.Printf("warning:     %d unusable checkpoint(s) skipped\n", stats.SkippedCheckpoints)
	}
	if err := srv.SaveTo(out); err != nil {
		return err
	}
	fmt.Printf("recovered database → %s: %d records (%d live)\n", out, srv.Len(), srv.Live())
	return nil
}

// runInfo dials a serving instance and prints what the transport info op
// reports: backend, capabilities, dimension, and the record counts — total
// (tombstones included) and live — so operators can see deletion debt at a
// glance.
func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	walDir := fs.String("wal", "", "inspect a WAL directory offline instead of dialing a server")
	timeout := fs.Duration("timeout", 5*time.Second, "per-call deadline (0 = wait forever)")
	fs.Parse(args)

	if *walDir != "" {
		rec, err := wal.Inspect(*walDir)
		if err != nil {
			return err
		}
		fmt.Printf("wal dir:    %s\n", *walDir)
		fmt.Printf("segments:   %d (%d bytes)\n", rec.Segments, rec.Bytes)
		fmt.Printf("records:    %d valid (checkpoint barriers included)\n", rec.Records)
		if rec.Truncated != "" {
			fmt.Printf("torn tail:  %s (%d bytes after it unrecoverable; recovery will repair)\n", rec.Truncated, rec.TruncatedBytes)
		}
		if len(rec.Barriers) == 0 {
			fmt.Printf("checkpoint: none — not recoverable without one\n")
			return nil
		}
		b := rec.Barriers[len(rec.Barriers)-1]
		fmt.Printf("checkpoint: %s (epoch %d, generation %d, %d records; %d total)\n",
			b.Name, b.Epoch, b.Gen, b.Records, len(rec.Barriers))
		return nil
	}

	client, err := transport.DialWith(*addr, transport.DialOptions{
		DialTimeout: *timeout,
		Timeout:     *timeout,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	info, err := client.Info()
	if err != nil {
		return err
	}
	fmt.Printf("backend:    %s (insert=%v delete=%v)\n", info.Backend, info.DynamicInsert, info.DynamicDelete)
	fmt.Printf("dimension:  %d\n", info.Dim)
	fmt.Printf("records:    %d total\n", info.N)
	if info.Proto == 0 {
		// A pre-v2 server never sends live counts; zero here means
		// "absent", not "everything tombstoned".
		fmt.Printf("live:       unknown (server speaks protocol v1)\n")
		return nil
	}
	fmt.Printf("live:       %d\n", info.Live)
	fmt.Printf("tombstones: %d\n", info.N-info.Live)
	if info.Proto >= 3 {
		// v3 servers break the write path down by tier: how much of the
		// database sits in the uncompacted delta, and how many tombstones
		// are still pending a compaction fold.
		fmt.Printf("delta:      %d\n", info.Delta)
		fmt.Printf("pending:    %d tombstones awaiting compaction\n", info.Tombstones)
	}
	if m := info.Memory; info.Proto >= 4 && m != nil {
		// v4 servers report the per-tier memory footprint, so an operator
		// can see what each stored point costs and how much of it the
		// compressed filter tier shaves off.
		fmt.Printf("memory:     %.0f B/point SAP + %.0f B/point DCE\n", m.SAP, m.DCE)
		if m.PQCodes > 0 {
			fmt.Printf("pq tier:    %.1f B/point codes + %.2f B/point codebook (%.0f× under SAP)\n",
				m.PQCodes, m.PQBook, m.SAP/(m.PQCodes+m.PQBook))
		} else {
			fmt.Printf("pq tier:    none\n")
		}
		fmt.Printf("delta heap: %d B un-compacted\n", m.DeltaBytes)
	}
	if info.Proto >= 5 {
		// v5 servers summarize their write-ahead log; nil means the
		// server runs without one (acknowledged writes are volatile).
		if w := info.WAL; w != nil {
			fmt.Printf("wal:        %s — %d segments, %d B, sync %s\n", w.Dir, w.Segments, w.Bytes, w.Policy)
			fmt.Printf("wal acked:  %d appended, %d synced durable\n", w.Appended, w.Synced)
			if w.Checkpoint != "" {
				fmt.Printf("wal ckpt:   %s (epoch %d, generation %d)\n", w.Checkpoint, w.CheckpointEpoch, w.CheckpointGen)
			}
		} else {
			fmt.Printf("wal:        none (writes are not durable across restarts)\n")
		}
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	keyIn := fs.String("key", "user.key", "user key file")
	queriesIn := fs.String("queries", "", "query fvecs file (required)")
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	addrs := fs.String("addrs", "", `replicated topology: stripes split by ';', replicas by ',' (overrides -addr)`)
	k := fs.Int("k", 10, "neighbors per query")
	ratio := fs.Int("ratio", 16, "Ratio_k (k' = ratio·k)")
	limit := fs.Int("limit", 10, "max queries to run (0 = all)")
	hedge := fs.Duration("hedge", 0, "with -addrs: hedge reads to a sibling replica after this budget (0 = off)")
	partial := fs.Bool("partial", false, "with -addrs: return best-effort results when a whole stripe is down")
	filter := fs.String("filter", "exact", "filter distance provider: exact | pq (pq needs a db built with encrypt -pq)")
	fs.Parse(args)
	if *queriesIn == "" {
		return fmt.Errorf("query: -queries is required")
	}
	var fd core.FilterDistMode
	switch *filter {
	case "exact":
		fd = core.FilterExact
	case "pq":
		fd = core.FilterPQ
	default:
		return fmt.Errorf("query: unknown -filter %q (want exact or pq)", *filter)
	}

	f, err := os.Open(*keyIn)
	if err != nil {
		return err
	}
	key, err := ppanns.LoadUserKey(f)
	f.Close()
	if err != nil {
		return err
	}
	user, err := ppanns.NewUser(key)
	if err != nil {
		return err
	}
	qs, err := vec.LoadFvecsFile(*queriesIn, *limit)
	if err != nil {
		return err
	}

	if *addrs != "" {
		return queryReplicated(user, qs, *addrs, *k, *ratio, fd, *hedge, *partial)
	}

	client, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	if info, err := client.Info(); err == nil {
		fmt.Printf("server: %d vectors, %s index (insert=%v delete=%v)\n",
			info.N, info.Backend, info.DynamicInsert, info.DynamicDelete)
	}

	for i := 0; i < qs.Len(); i++ {
		tok, err := user.Query(qs.At(i))
		if err != nil {
			return err
		}
		ids, err := client.Search(tok, *k, core.SearchOptions{RatioK: *ratio, FilterDist: fd})
		if err != nil {
			return err
		}
		fmt.Printf("query %d: %v\n", i, ids)
	}
	return nil
}

// queryReplicated runs the query workload against a replicated shard
// topology: each stripe's replicas fan out with breaker-guarded failover,
// optional hedging, and optional best-effort partial results.
func queryReplicated(user *ppanns.User, qs *vec.Dataset, addrs string, k, ratio int, fd core.FilterDistMode, hedge time.Duration, partial bool) error {
	var sets [][]shard.Shard
	var closers []*shard.Remote
	defer func() {
		for _, r := range closers {
			r.Close()
		}
	}()
	for s, stripe := range strings.Split(addrs, ";") {
		var replicas []shard.Shard
		for _, a := range strings.Split(stripe, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			rm := shard.NewRemote(a, transport.DialOptions{DialTimeout: 5 * time.Second})
			closers = append(closers, rm)
			replicas = append(replicas, rm)
		}
		if len(replicas) == 0 {
			return fmt.Errorf("query: stripe %d of -addrs has no replica addresses", s)
		}
		sets = append(sets, replicas)
	}
	coord, err := shard.NewReplicated(sets, shard.Options{HedgeAfter: hedge, AllowPartial: partial})
	if err != nil {
		return err
	}
	fmt.Printf("replicated topology: %d stripes, %d vectors total\n", coord.Shards(), coord.Len())

	for i := 0; i < qs.Len(); i++ {
		tok, err := user.Query(qs.At(i))
		if err != nil {
			return err
		}
		ids, err := coord.Search(tok, k, core.SearchOptions{RatioK: ratio, FilterDist: fd})
		var pe *shard.PartialError
		switch {
		case errors.As(err, &pe):
			fmt.Printf("query %d (partial, stripes %v down): %v\n", i, pe.Stripes, ids)
		case err != nil:
			return err
		default:
			fmt.Printf("query %d: %v\n", i, ids)
		}
	}
	for _, h := range coord.Health() {
		if h.State != shard.BreakerClosed {
			fmt.Printf("health: stripe %d replica %d breaker %s\n", h.Stripe, h.Replica, h.State)
		}
	}
	return nil
}

func writeFvecs(path string, vectors [][]float64) error {
	return wal.WriteFileAtomic(path, func(w io.Writer) error {
		return vec.WriteFvecs(w, vec.DatasetFromSlices(vectors))
	})
}
