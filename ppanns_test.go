package ppanns_test

import (
	"bytes"
	"testing"

	"ppanns"
	"ppanns/internal/dataset"
)

// TestPublicAPIEndToEnd exercises the whole public surface: deployment
// construction, search, updates, key round trip and database round trip.
func TestPublicAPIEndToEnd(t *testing.T) {
	data := dataset.GloVeLike(1200, 15, 5)
	dep, err := ppanns.NewDeployment(ppanns.Params{
		Dim: data.Dim, Beta: 1.0, M: 12, EfConstruction: 120, Seed: 5,
	}, data.Train)
	if err != nil {
		t.Fatal(err)
	}

	const k = 10
	gt := data.GroundTruth(k)
	var recall float64
	for i, q := range data.Queries {
		ids, err := dep.Search(q, k, ppanns.SearchOptions{RatioK: 16, EfSearch: 160})
		if err != nil {
			t.Fatal(err)
		}
		recall += dataset.Recall(ids, gt[i])
	}
	recall /= float64(len(data.Queries))
	if recall < 0.9 {
		t.Fatalf("public API recall = %.3f, want ≥ 0.9", recall)
	}

	// Updates.
	id, err := dep.Insert(data.Train[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Delete(id); err != nil {
		t.Fatal(err)
	}

	// Key round trip through the public helpers.
	var buf bytes.Buffer
	if err := ppanns.SaveUserKey(&buf, dep.Owner.UserKey()); err != nil {
		t.Fatal(err)
	}
	key, err := ppanns.LoadUserKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	user2, err := ppanns.NewUser(key)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := user2.Query(data.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	ids, err := dep.Server.Search(tok, k, ppanns.SearchOptions{RatioK: 16})
	if err != nil {
		t.Fatal(err)
	}
	if dataset.Recall(ids, gt[0]) < 0.8 {
		t.Fatal("deserialized key produced bad results")
	}
}

// TestRefineModesExposed confirms the three refine modes are reachable
// through the façade.
func TestRefineModesExposed(t *testing.T) {
	data := dataset.DeepLike(400, 5, 6)
	dep, err := ppanns.NewDeployment(ppanns.Params{
		Dim: data.Dim, Beta: 0.2, M: 12, EfConstruction: 100, Seed: 6, WithAME: true,
	}, data.Train)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ppanns.RefineMode{ppanns.RefineNone, ppanns.RefineDCE, ppanns.RefineAME} {
		ids, err := dep.Search(data.Queries[0], 5, ppanns.SearchOptions{RatioK: 8, Refine: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(ids) != 5 {
			t.Fatalf("mode %v returned %d ids", mode, len(ids))
		}
	}
}
