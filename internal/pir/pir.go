// Package pir implements two-server information-theoretic XOR private
// information retrieval over fixed-size blocks, the substrate of the
// PACM-ANN and PRI-ANN baselines.
//
// The client splits the index of the desired block into two random
// selection vectors (r and r⊕e_i), one per non-colluding server; each
// server XOR-folds the blocks its vector selects, and the client XORs the
// two answers to recover block i. Each retrieval therefore costs every
// server a full linear scan of the database — the cost that dominates the
// PIR-based baselines in the paper's Figure 7/9 comparisons.
//
// Cost accounting (bytes scanned, bytes shipped, queries served) is built
// in because the experiments report exactly those quantities. The
// communication recorded for uploads is the n/8-byte selection vector; the
// DPF-based schemes the baselines cite would compress this to O(λ·log n)
// keys, so Stats also reports that equivalent for fair accounting.
package pir

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ppanns/internal/rng"
)

// Stats accumulates server-side and transfer costs across queries.
type Stats struct {
	// Queries is the number of Answer calls served.
	Queries int64
	// BytesScanned counts database bytes XOR-folded by the server.
	BytesScanned int64
	// UploadBytes counts selection-vector bytes received.
	UploadBytes int64
	// DownloadBytes counts answer bytes returned.
	DownloadBytes int64
}

// Server is one of the two non-colluding PIR servers, holding the full
// block database.
type Server struct {
	blocks    [][]byte
	blockSize int

	queries   atomic.Int64
	scanned   atomic.Int64
	uploads   atomic.Int64
	downloads atomic.Int64
}

// NewServer builds a PIR server over n equal-size blocks. Short blocks are
// zero-padded to the longest block's size.
func NewServer(blocks [][]byte) (*Server, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("pir: empty database")
	}
	size := 0
	for _, b := range blocks {
		if len(b) > size {
			size = len(b)
		}
	}
	if size == 0 {
		return nil, fmt.Errorf("pir: all blocks empty")
	}
	padded := make([][]byte, len(blocks))
	for i, b := range blocks {
		p := make([]byte, size)
		copy(p, b)
		padded[i] = p
	}
	return &Server{blocks: padded, blockSize: size}, nil
}

// NumBlocks returns the database size in blocks.
func (s *Server) NumBlocks() int { return len(s.blocks) }

// BlockSize returns the padded block size in bytes.
func (s *Server) BlockSize() int { return s.blockSize }

// Answer XOR-folds the blocks whose bit is set in the selection vector
// (bit i of sel[i/8]). The scan over all selected blocks is the server-side
// cost the experiments account.
func (s *Server) Answer(sel []byte) ([]byte, error) {
	if len(sel) != (len(s.blocks)+7)/8 {
		return nil, fmt.Errorf("pir: selection vector of %d bytes, want %d", len(sel), (len(s.blocks)+7)/8)
	}
	out := make([]byte, s.blockSize)
	var scanned int64
	for i, b := range s.blocks {
		if sel[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		for j, v := range b {
			out[j] ^= v
		}
		scanned += int64(len(b))
	}
	s.queries.Add(1)
	s.scanned.Add(scanned)
	s.uploads.Add(int64(len(sel)))
	s.downloads.Add(int64(len(out)))
	return out, nil
}

// Stats snapshots the server's accumulated costs.
func (s *Server) Stats() Stats {
	return Stats{
		Queries:       s.queries.Load(),
		BytesScanned:  s.scanned.Load(),
		UploadBytes:   s.uploads.Load(),
		DownloadBytes: s.downloads.Load(),
	}
}

// ResetStats zeroes the counters (between experiment phases).
func (s *Server) ResetStats() {
	s.queries.Store(0)
	s.scanned.Store(0)
	s.uploads.Store(0)
	s.downloads.Store(0)
}

// Client generates PIR queries for a database of n blocks.
type Client struct {
	n   int
	mu  sync.Mutex
	rnd *rng.Rand
}

// NewClient creates a client for an n-block database, drawing masks from r.
func NewClient(r *rng.Rand, n int) (*Client, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pir: non-positive database size %d", n)
	}
	return &Client{n: n, rnd: rng.Derive(r, 0x419)}, nil
}

// Query splits the request for block index into the two servers' selection
// vectors: a uniformly random vector and the same vector with bit `index`
// flipped. Neither server learns anything about index.
func (c *Client) Query(index int) (selA, selB []byte, err error) {
	if index < 0 || index >= c.n {
		return nil, nil, fmt.Errorf("pir: block index %d out of range [0,%d)", index, c.n)
	}
	bytes := (c.n + 7) / 8
	selA = make([]byte, bytes)
	c.mu.Lock()
	for i := range selA {
		selA[i] = byte(c.rnd.Uint64())
	}
	c.mu.Unlock()
	// Mask tail bits beyond n so both vectors stay valid selections.
	if c.n%8 != 0 {
		selA[bytes-1] &= byte(1<<(c.n%8)) - 1
	}
	selB = make([]byte, bytes)
	copy(selB, selA)
	selB[index/8] ^= 1 << (index % 8)
	return selA, selB, nil
}

// Combine XORs the two servers' answers into the requested block.
func Combine(ansA, ansB []byte) ([]byte, error) {
	if len(ansA) != len(ansB) {
		return nil, fmt.Errorf("pir: answer length mismatch %d vs %d", len(ansA), len(ansB))
	}
	out := make([]byte, len(ansA))
	for i := range out {
		out[i] = ansA[i] ^ ansB[i]
	}
	return out, nil
}

// Retrieve runs the whole two-server protocol against a pair of servers —
// the convenience path the baselines use.
func Retrieve(c *Client, a, b *Server, index int) ([]byte, error) {
	selA, selB, err := c.Query(index)
	if err != nil {
		return nil, err
	}
	ansA, err := a.Answer(selA)
	if err != nil {
		return nil, err
	}
	ansB, err := b.Answer(selB)
	if err != nil {
		return nil, err
	}
	return Combine(ansA, ansB)
}

// DPFKeyBytes returns the upload size a distributed-point-function PIR
// (as used by the PRI-ANN paper) would need for an n-block database with a
// 128-bit security parameter: ~λ·(log₂ n + 2) bits per server. Experiments
// report it alongside the XOR-PIR upload for fair communication accounting.
func DPFKeyBytes(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return 16 * (bits + 2)
}
