package pir

import (
	"bytes"
	"testing"
	"testing/quick"

	"ppanns/internal/rng"
)

func makeBlocks(r *rng.Rand, n, size int) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, size)
		for j := range b {
			b[j] = byte(r.Uint64())
		}
		blocks[i] = b
	}
	return blocks
}

func twoServers(t *testing.T, blocks [][]byte) (*Server, *Server) {
	t.Helper()
	a, err := NewServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestRetrieveCorrectness(t *testing.T) {
	r := rng.NewSeeded(1)
	blocks := makeBlocks(r, 100, 64)
	a, b := twoServers(t, blocks)
	c, err := NewClient(rng.NewSeeded(2), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 1, 50, 98, 99} {
		got, err := Retrieve(c, a, b, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blocks[idx]) {
			t.Fatalf("block %d not recovered", idx)
		}
	}
}

func TestRetrieveQuick(t *testing.T) {
	r := rng.NewSeeded(3)
	const n = 37 // non-multiple of 8 exercises tail masking
	blocks := makeBlocks(r, n, 16)
	a, b := twoServers(t, blocks)
	c, err := NewClient(rng.NewSeeded(4), n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint8) bool {
		idx := int(raw) % n
		got, err := Retrieve(c, a, b, idx)
		return err == nil && bytes.Equal(got, blocks[idx])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnevenBlocksPadded(t *testing.T) {
	blocks := [][]byte{{1, 2, 3}, {4}, {5, 6}}
	a, b := twoServers(t, blocks)
	if a.BlockSize() != 3 {
		t.Fatalf("BlockSize = %d, want 3", a.BlockSize())
	}
	c, err := NewClient(rng.NewSeeded(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Retrieve(c, a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{4, 0, 0}) {
		t.Fatalf("padded block = %v", got)
	}
}

func TestQueryVectorsLookRandom(t *testing.T) {
	// Each individual selection vector must be (close to) uniformly
	// random — the privacy property. Check bit balance over many queries.
	c, err := NewClient(rng.NewSeeded(6), 64)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		selA, _, err := c.Query(7)
		if err != nil {
			t.Fatal(err)
		}
		for _, byteVal := range selA {
			for b := 0; b < 8; b++ {
				if byteVal&(1<<b) != 0 {
					ones++
				}
			}
		}
	}
	total := trials * 64
	frac := float64(ones) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("selection vector bit balance %.3f, want ≈0.5", frac)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := rng.NewSeeded(7)
	blocks := makeBlocks(r, 64, 32)
	a, bsrv := twoServers(t, blocks)
	c, err := NewClient(rng.NewSeeded(8), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := Retrieve(c, a, bsrv, i); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Queries != 10 {
		t.Fatalf("Queries = %d", st.Queries)
	}
	if st.BytesScanned == 0 || st.UploadBytes != 10*8 || st.DownloadBytes != 10*32 {
		t.Fatalf("stats off: %+v", st)
	}
	// Expected scan: ~half the blocks selected per query.
	expected := int64(10 * 64 * 32 / 2)
	if st.BytesScanned < expected/2 || st.BytesScanned > expected*2 {
		t.Fatalf("BytesScanned = %d, want ≈%d", st.BytesScanned, expected)
	}
	a.ResetStats()
	if a.Stats().Queries != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("expected error for empty database")
	}
	if _, err := NewServer([][]byte{{}, {}}); err == nil {
		t.Fatal("expected error for all-empty blocks")
	}
	if _, err := NewClient(rng.NewSeeded(1), 0); err == nil {
		t.Fatal("expected error for zero-size client")
	}
	c, _ := NewClient(rng.NewSeeded(1), 8)
	if _, _, err := c.Query(-1); err == nil {
		t.Fatal("expected error for negative index")
	}
	if _, _, err := c.Query(8); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	s, _ := NewServer([][]byte{{1}})
	if _, err := s.Answer(make([]byte, 9)); err == nil {
		t.Fatal("expected error for wrong selection size")
	}
	if _, err := Combine([]byte{1}, []byte{1, 2}); err == nil {
		t.Fatal("expected error for mismatched answers")
	}
}

func TestDPFKeyBytes(t *testing.T) {
	if got := DPFKeyBytes(1024); got != 16*(10+2) {
		t.Fatalf("DPFKeyBytes(1024) = %d", got)
	}
	if DPFKeyBytes(2) <= 0 {
		t.Fatal("DPFKeyBytes must be positive")
	}
}
