package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// payload builds a distinguishable payload for record i.
func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-payload", i))
}

// appendN appends n insert records with epochs base+1..base+n, committing
// each, and returns the log.
func appendN(t *testing.T, l *Log, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, err := l.Append(KindInsert, uint64(base+i+1), payload(base+i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
}

// collect replays records after afterEpoch into (kind, epoch, payload) rows.
type row struct {
	kind  Kind
	epoch uint64
	pay   string
}

func collect(t *testing.T, l *Log, afterEpoch uint64) []row {
	t.Helper()
	var rows []row
	err := l.Replay(afterEpoch, func(k Kind, e uint64, p []byte) error {
		rows = append(rows, row{k, e, string(p)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return rows
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{Sync: SyncPolicy{Every: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segments != 0 || rec.Records != 0 || rec.Truncated != "" {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	appendN(t, l, 0, 5)
	if _, err := l.Append(KindDelete, 6, binary.LittleEndian.AppendUint64(nil, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Records != 6 || rec2.Segments != 1 || rec2.Truncated != "" {
		t.Fatalf("recovery = %+v", rec2)
	}
	rows := collect(t, l2, 0)
	if len(rows) != 6 {
		t.Fatalf("replayed %d records, want 6", len(rows))
	}
	for i := 0; i < 5; i++ {
		want := row{KindInsert, uint64(i + 1), string(payload(i))}
		if rows[i] != want {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], want)
		}
	}
	if rows[5].kind != KindDelete || rows[5].epoch != 6 {
		t.Fatalf("row 5 = %+v", rows[5])
	}
	// Epoch filter.
	if got := collect(t, l2, 4); len(got) != 2 {
		t.Fatalf("replay after epoch 4: %d records, want 2", len(got))
	}
}

func TestRotationAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("got %d segments, want rotation to produce ≥ 3", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Records != 40 || rec.Segments != st.Segments {
		t.Fatalf("recovery = %+v, want 40 records in %d segments", rec, st.Segments)
	}
	rows := collect(t, l2, 0)
	if len(rows) != 40 {
		t.Fatalf("replayed %d, want 40", len(rows))
	}
	for i, r := range rows {
		if r.epoch != uint64(i+1) || r.pay != string(payload(i)) {
			t.Fatalf("row %d out of order: %+v", i, r)
		}
	}
	// Appending after recovery continues the last segment.
	appendN(t, l2, 40, 3)
	if got := l2.Stats().Segments; got < st.Segments {
		t.Fatalf("segments shrank after reopen: %d < %d", got, st.Segments)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncPolicy{Every: 1}})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 8)
	l.Close()

	// Append a torn record: a valid header promising more payload than
	// exists.
	name := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecord(nil, KindInsert, 99, []byte("lost-to-the-crash"))
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Records != 8 {
		t.Fatalf("recovered %d records, want 8", rec.Records)
	}
	if rec.Truncated == "" || rec.TruncatedBytes != int64(len(torn)-7) {
		t.Fatalf("recovery did not report the torn tail: %+v", rec)
	}
	if rows := collect(t, l2, 0); len(rows) != 8 {
		t.Fatalf("replayed %d, want 8", len(rows))
	}
	// The log must be appendable after repair, and the repaired file must
	// scan clean next time.
	appendN(t, l2, 8, 2)
	l2.Close()
	_, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Records != 10 || rec3.Truncated != "" {
		t.Fatalf("post-repair recovery = %+v", rec3)
	}
}

func TestCorruptRecordMidSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 30) // several segments
	before := l.Stats()
	l.Close()

	// Flip one payload byte in the middle of the SECOND segment.
	name := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+recHeaderSize+3] ^= 0x40
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Truncated == "" || !strings.Contains(rec.Truncated, segName(2)) {
		t.Fatalf("expected truncation report naming %s, got %+v", segName(2), rec)
	}
	if rec.DroppedSegments != before.Segments-2 {
		t.Fatalf("dropped %d segments, want %d", rec.DroppedSegments, before.Segments-2)
	}
	// Replay yields the intact prefix: all of segment 1, nothing at or
	// after the corrupt record.
	rows := collect(t, l2, 0)
	if len(rows) >= 30 || len(rows) == 0 {
		t.Fatalf("replayed %d records, want a strict non-empty prefix of 30", len(rows))
	}
	for i, r := range rows {
		if r.epoch != uint64(i+1) {
			t.Fatalf("replay gap at %d: %+v", i, r)
		}
	}
}

func TestCheckpointGCAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncPolicy{Every: 1}})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	blob := []byte("snapshot-at-epoch-20")
	b := Barrier{Epoch: 20, Gen: 1, Records: 20}
	if err := l.Checkpoint(b, func(w io.Writer) error { _, e := w.Write(blob); return e }); err != nil {
		t.Fatal(err)
	}
	// Segments wholly before the barrier must be gone.
	st := l.Stats()
	if st.Barrier == nil || st.Barrier.Epoch != 20 || st.Barrier.Name != CheckpointName(20, 1) {
		t.Fatalf("stats barrier = %+v", st.Barrier)
	}
	if st.Segments > 2 {
		t.Fatalf("GC left %d segments", st.Segments)
	}
	appendN(t, l, 20, 5)
	l.Close()

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if n := len(rec.Barriers); n != 1 || rec.Barriers[n-1] != b.withName() {
		t.Fatalf("recovered barriers = %+v", rec.Barriers)
	}
	got, err := io.ReadAll(mustOpenCheckpoint(t, l2, rec.Barriers[0].Name))
	if err != nil || string(got) != string(blob) {
		t.Fatalf("checkpoint content = %q, %v", got, err)
	}
	rows := collect(t, l2, rec.Barriers[0].Epoch)
	if len(rows) != 5 || rows[0].epoch != 21 {
		t.Fatalf("post-barrier replay = %+v", rows)
	}

	// A second checkpoint supersedes the first snapshot file.
	b2 := Barrier{Epoch: 25, Gen: 2, Records: 25}
	if err := l2.Checkpoint(b2, func(w io.Writer) error { _, e := w.Write([]byte("v2")); return e }); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.OpenCheckpoint(CheckpointName(20, 1)); err == nil {
		t.Fatal("superseded checkpoint file survived the sweep")
	}
}

func (b Barrier) withName() Barrier {
	if b.Name == "" {
		b.Name = CheckpointName(b.Epoch, b.Gen)
	}
	return b
}

func mustOpenCheckpoint(t *testing.T, l *Log, name string) io.ReadCloser {
	t.Helper()
	r, err := l.OpenCheckpoint(name)
	if err != nil {
		t.Fatalf("open checkpoint %s: %v", name, err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestSyncEveryNBatchesFsyncs(t *testing.T) {
	inj := &Injector{KillAfterBytes: -1}
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncPolicy{Every: 4}, FS: NewFaultyFS(inj)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base := inj.Syncs()
	appendN(t, l, 0, 16)
	if got := inj.Syncs() - base; got != 4 {
		t.Fatalf("16 sequential commits at Every=4 performed %d fsyncs, want 4", got)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	inj := &Injector{KillAfterBytes: -1}
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncPolicy{Every: 1}, FS: NewFaultyFS(inj)})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(KindInsert, uint64(w*per+i+1), payload(i))
				if err == nil {
					err = l.Commit(lsn)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != writers*per || st.Synced != st.Appended {
		t.Fatalf("stats = %+v, want %d appended and synced", st, writers*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("group commit: %d commits → %d fsyncs", writers*per, inj.Syncs())

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Records != writers*per || rec.Truncated != "" {
		t.Fatalf("recovery = %+v", rec)
	}
}

func TestKillAfterBytesLeavesRecoverablePrefix(t *testing.T) {
	for _, kill := range []int64{segHeaderSize + 5, 200, 777, 2048} {
		inj := &Injector{KillAfterBytes: kill}
		dir := t.TempDir()
		l, _, err := Open(dir, Options{FS: NewFaultyFS(inj)})
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		for i := 0; i < 200; i++ {
			lsn, err := l.Append(KindInsert, uint64(i+1), payload(i))
			if err == nil {
				err = l.Commit(lsn)
			}
			if err != nil {
				break
			}
			acked++
		}
		if !inj.Dead() {
			t.Fatalf("kill=%d: injector never fired", kill)
		}
		// Every later operation must fail fast.
		if _, err := l.Append(KindInsert, 999, payload(0)); err == nil {
			t.Fatalf("kill=%d: append succeeded on poisoned log", kill)
		}
		l.Close()

		l2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("kill=%d: reopen: %v", kill, err)
		}
		rows := collect(t, l2, 0)
		l2.Close()
		// OS-buffered policy acks before durability, so recovered count
		// may trail acked — but recovered records must be an exact,
		// in-order prefix.
		if len(rows) > acked+1 {
			t.Fatalf("kill=%d: recovered %d > acked %d + in-flight 1", kill, len(rows), acked)
		}
		for i, r := range rows {
			if r.epoch != uint64(i+1) || r.pay != string(payload(i)) {
				t.Fatalf("kill=%d: corrupt replay row %d: %+v", kill, i, r)
			}
		}
		if rec.Records != len(rows) {
			t.Fatalf("kill=%d: recovery reported %d, replayed %d", kill, rec.Records, len(rows))
		}
	}
}

func TestSyncErrorPoisonsLog(t *testing.T) {
	inj := &Injector{KillAfterBytes: -1, FailSyncAt: 3}
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncPolicy{Every: 1}, FS: NewFaultyFS(inj)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var commitErr error
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(KindInsert, uint64(i+1), payload(i))
		if err != nil {
			commitErr = err
			break
		}
		if err := l.Commit(lsn); err != nil {
			commitErr = err
			break
		}
	}
	if !errors.Is(commitErr, ErrInjected) {
		t.Fatalf("commit error = %v, want injected fsync failure", commitErr)
	}
	if l.Err() == nil {
		t.Fatal("log not poisoned after fsync failure")
	}
	if _, err := l.Append(KindInsert, 99, payload(0)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append after poison = %v", err)
	}
}

func TestIntervalSync(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncPolicy{Interval: 5 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(KindInsert, 1, payload(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil { // returns immediately
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Synced < lsn {
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q", got)
	}

	// A failing writer must leave the old content and no temp file.
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content after failed write = %q, want old content", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after failed write, want 1", len(ents))
	}
}

func TestInspectDoesNotRepair(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 4)
	l.Close()
	name := filepath.Join(dir, segName(1))
	sizeBefore, _ := os.Stat(name)
	f, _ := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{1, 2, 3}) // torn garbage
	f.Close()

	rec, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 4 || rec.Truncated == "" || rec.TruncatedBytes != 3 {
		t.Fatalf("inspect = %+v", rec)
	}
	after, _ := os.Stat(name)
	if after.Size() != sizeBefore.Size()+3 {
		t.Fatal("Inspect modified the segment file")
	}
}

func TestBarrierCodec(t *testing.T) {
	b := Barrier{Epoch: 7, Gen: 3, Records: 1234, Name: CheckpointName(7, 3)}
	got, err := decodeBarrier(7, b.encode())
	if err != nil || got != b {
		t.Fatalf("roundtrip = %+v, %v", got, err)
	}
	if _, err := decodeBarrier(7, b.encode()[:10]); err == nil {
		t.Fatal("short barrier payload decoded")
	}
	if !isCheckpointName(b.Name) || isCheckpointName("wal-0000000000000001.seg") {
		t.Fatal("checkpoint name matcher wrong")
	}
}

func TestSegNameRoundtrip(t *testing.T) {
	for _, seq := range []uint64{1, 42, 1 << 40} {
		got, ok := parseSegName(segName(seq))
		if !ok || got != seq {
			t.Fatalf("roundtrip %d → %q → %d, %v", seq, segName(seq), got, ok)
		}
	}
	for _, bad := range []string{"wal-01.seg", "checkpoint-1.ppanns", "wal-0000000000000001.tmp"} {
		if _, ok := parseSegName(bad); ok {
			t.Fatalf("%q parsed as segment", bad)
		}
	}
}
