package wal

import (
	"errors"
	"io"
	"sync"
)

// ErrInjected is the error returned by injected faults.
var ErrInjected = errors.New("wal: injected fault")

// Injector scripts filesystem failures for crash tests. Configure the
// exported fields before handing it to a FaultyFS; they are read-only
// afterwards. Faults are modeled on a machine dying: once one fires, the
// injector is dead and every later write and sync fails, leaving exactly
// the bytes that made it out — including a torn final record.
type Injector struct {
	// KillAfterBytes kills the injector after this many payload bytes
	// have been written across all wrapped files; the write that crosses
	// the boundary persists only its prefix (a torn record). Negative
	// disables.
	KillAfterBytes int64
	// FailSyncAt makes the n-th Sync call (1-based, counted across all
	// wrapped files) fail and kills the injector. 0 disables.
	FailSyncAt int

	mu      sync.Mutex
	written int64
	syncs   int
	dead    bool
}

// Written returns the total payload bytes that reached the underlying
// files.
func (in *Injector) Written() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.written
}

// Syncs returns how many Sync calls completed successfully — the group-
// commit tests use it to check fsync amortization.
func (in *Injector) Syncs() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.syncs
}

// Dead reports whether a fault has fired.
func (in *Injector) Dead() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead
}

// admitWrite returns how many of n bytes may be written, and whether the
// write fails afterwards.
func (in *Injector) admitWrite(n int) (int, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.dead {
		return 0, true
	}
	if in.KillAfterBytes >= 0 && in.written+int64(n) > in.KillAfterBytes {
		allowed := int(in.KillAfterBytes - in.written)
		if allowed < 0 {
			allowed = 0
		}
		in.written += int64(allowed)
		in.dead = true
		return allowed, true
	}
	in.written += int64(n)
	return n, false
}

// admitSync reports whether a Sync call fails.
func (in *Injector) admitSync() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.dead {
		return true
	}
	in.syncs++
	if in.FailSyncAt > 0 && in.syncs >= in.FailSyncAt {
		in.dead = true
		return true
	}
	return false
}

// FaultyFS wraps an FS so that every file opened for writing routes its
// writes and syncs through the Injector. Reads and directory operations
// pass through untouched.
type FaultyFS struct {
	Base FS
	Inj  *Injector
}

// NewFaultyFS returns a FaultyFS over OSFS.
func NewFaultyFS(in *Injector) *FaultyFS { return &FaultyFS{Base: OSFS, Inj: in} }

func (f *FaultyFS) Create(name string) (File, error) {
	file, err := f.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, inj: f.Inj}, nil
}

func (f *FaultyFS) Append(name string) (File, error) {
	file, err := f.Base.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, inj: f.Inj}, nil
}

func (f *FaultyFS) Open(name string) (io.ReadCloser, error) { return f.Base.Open(name) }
func (f *FaultyFS) ReadDir(dir string) ([]string, error)    { return f.Base.ReadDir(dir) }
func (f *FaultyFS) Size(name string) (int64, error)         { return f.Base.Size(name) }
func (f *FaultyFS) Truncate(name string, size int64) error  { return f.Base.Truncate(name, size) }
func (f *FaultyFS) Rename(oldpath, newpath string) error    { return f.Base.Rename(oldpath, newpath) }
func (f *FaultyFS) Remove(name string) error                { return f.Base.Remove(name) }
func (f *FaultyFS) MkdirAll(dir string) error               { return f.Base.MkdirAll(dir) }
func (f *FaultyFS) SyncDir(dir string) error                { return f.Base.SyncDir(dir) }

type faultFile struct {
	f   File
	inj *Injector
}

func (ff *faultFile) Write(p []byte) (int, error) {
	n, fail := ff.inj.admitWrite(len(p))
	if n > 0 {
		if m, err := ff.f.Write(p[:n]); err != nil {
			return m, err
		}
	}
	if fail {
		return n, ErrInjected
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	if ff.inj.admitSync() {
		return ErrInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
