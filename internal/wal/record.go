package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind tags a log record.
type Kind uint8

const (
	// KindInsert is an acknowledged insert: the encrypted payload the
	// server committed to its delta tier (SAP vector, DCE ciphertext
	// record, and PQ code row when the database carries a compressed
	// tier). The wal package treats the payload as opaque bytes; core
	// owns the codec.
	KindInsert Kind = 1
	// KindDelete is an acknowledged tombstone.
	KindDelete Kind = 2
	// KindBarrier marks a durable checkpoint: every mutation with epoch
	// ≤ the record's epoch is captured by the named snapshot file, so
	// recovery replays only records strictly after it.
	KindBarrier Kind = 3
)

func (k Kind) valid() bool { return k >= KindInsert && k <= KindBarrier }

// String names the kind for logs and tooling.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record frame, little-endian:
//
//	[ payload len u32 | kind u8 | epoch u64 | payload | crc32c u32 ]
//
// The CRC (Castagnoli) covers everything before it — length, kind, epoch,
// and payload — so a record is self-validating: a torn tail, a bit flip,
// or a bogus length all fail the checksum (or the plausibility checks that
// guard the length field) and recovery truncates at the record boundary.
// The epoch lives in the frame rather than the payload so the log can
// filter replay and garbage-collect segments without parsing payloads.
const (
	recHeaderSize  = 4 + 1 + 8
	recTrailerSize = 4
	recOverhead    = recHeaderSize + recTrailerSize

	// maxPayload bounds the length field during scanning: anything
	// larger is treated as corruption rather than attempted as an
	// allocation. One insert record is ~bytes(8·dim) for the SAP plus
	// 32·ctDim for the DCE record — far below this at any real
	// dimensionality.
	maxPayload = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends the framed record to dst and returns it.
func appendRecord(dst []byte, kind Kind, epoch uint64, payload []byte) []byte {
	base := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, byte(kind))
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[base:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// Segment files are named wal-<seq>.seg and start with a 16-byte header:
// an 8-byte magic and the segment's sequence number, cross-checked against
// the file name so a misrenamed or half-created file reads as corrupt
// rather than splicing foreign records into the log.
const (
	segMagic      = "PPWALSG1"
	segHeaderSize = 16
)

func segName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.seg", &seq); err != nil {
		return 0, false
	}
	return seq, name == segName(seq)
}

func segHeader(seq uint64) []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint64(h[8:], seq)
	return h
}

// Barrier describes a checkpoint: the epoch and generation of the snapshot
// and the snapshot's file name inside the log directory. Recovery loads
// the newest barrier whose snapshot file exists and replays records with
// epoch > Barrier.Epoch on top of it.
type Barrier struct {
	// Epoch is the server mutation counter captured by the snapshot.
	Epoch uint64
	// Gen is the compaction generation of the snapshot.
	Gen uint64
	// Records is the id-space size (Len) of the snapshot, recorded for
	// tooling and cross-checks.
	Records uint64
	// Name is the snapshot file's name within the log directory.
	Name string
}

// CheckpointName is the canonical snapshot file name for a checkpoint at
// the given epoch and generation.
func CheckpointName(epoch, gen uint64) string {
	return fmt.Sprintf("checkpoint-%020d.%d.ppanns", epoch, gen)
}

func isCheckpointName(name string) bool {
	var e, g uint64
	if _, err := fmt.Sscanf(name, "checkpoint-%020d.%d.ppanns", &e, &g); err != nil {
		return false
	}
	return name == CheckpointName(e, g)
}

// encode serializes the barrier payload (the epoch rides in the frame).
func (b *Barrier) encode() []byte {
	p := make([]byte, 0, 8+8+2+len(b.Name))
	p = binary.LittleEndian.AppendUint64(p, b.Gen)
	p = binary.LittleEndian.AppendUint64(p, b.Records)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(b.Name)))
	return append(p, b.Name...)
}

func decodeBarrier(epoch uint64, p []byte) (Barrier, error) {
	if len(p) < 18 {
		return Barrier{}, fmt.Errorf("wal: barrier payload of %d bytes", len(p))
	}
	b := Barrier{
		Epoch:   epoch,
		Gen:     binary.LittleEndian.Uint64(p),
		Records: binary.LittleEndian.Uint64(p[8:]),
	}
	n := int(binary.LittleEndian.Uint16(p[16:]))
	if len(p) != 18+n {
		return Barrier{}, fmt.Errorf("wal: barrier payload length %d, want %d", len(p), 18+n)
	}
	b.Name = string(p[18 : 18+n])
	return b, nil
}
