package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable-file surface the log needs: sequential writes, an
// explicit durability point, and close. *os.File satisfies it; the fault-
// injecting wrapper in faulty.go intercepts it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the write path, so tests can
// inject torn writes, sync errors, and kill-at-offset crashes (FaultyFS)
// without touching the log logic. The default implementation (OSFS) maps
// straight onto the os package.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Append reopens an existing file for appending at its end.
	Append(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Size returns the byte length of name.
	Size(name string) (int64, error)
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making renames and file
	// creations inside it durable.
	SyncDir(dir string) error
}

// OSFS is the production FS, backed by the os package.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic writes a file so that a crash at any point leaves either
// the old content or the new content, never a torn mix: the payload goes to
// a temp file in the same directory, is fsynced and closed, renamed over
// path, and the directory is fsynced so the rename itself is durable. On
// error the temp file is removed and path is untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return writeFileAtomicFS(OSFS, path, write)
}

func writeFileAtomicFS(fs FS, path string, write func(io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			fs.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
