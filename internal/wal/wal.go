// Package wal implements the per-server write-ahead log behind the serving
// tier's durable write path: CRC32C self-framed records in rotating segment
// files, a configurable sync policy with group commit, and checkpoint
// barriers that bound recovery work and let sealed segments be garbage-
// collected.
//
// The contract with core.Server: every acknowledged Insert/Delete is
// appended (and, per the sync policy, fsynced) before the acknowledgment,
// and recovery = load the newest checkpoint snapshot + replay every record
// with a later epoch. A torn or corrupt tail — the expected residue of a
// crash mid-write — is truncated at the last whole record, never treated as
// fatal.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended records become durable relative to the
// acknowledgment. The zero value is OS-buffered: appends go to the page
// cache and reach disk on rotation, checkpoint, interval ticks of the OS,
// or Close — fastest, but a crash can lose any acknowledged write since
// the last of those points.
type SyncPolicy struct {
	// Every fsyncs once per Every acknowledged writes. 1 makes every
	// acknowledgment durable (group commit batches concurrent writers
	// into one fsync, so the cost amortizes under load); N > 1 bounds
	// loss to at most N−1 acknowledged writes.
	Every int
	// Interval, when positive, fsyncs from a background ticker instead,
	// bounding loss to one interval of acknowledged writes. Ignored when
	// Every is set.
	Interval time.Duration
}

func (p SyncPolicy) String() string {
	switch {
	case p.Every == 1:
		return "every=1"
	case p.Every > 1:
		return fmt.Sprintf("every=%d", p.Every)
	case p.Interval > 0:
		return fmt.Sprintf("interval=%s", p.Interval)
	default:
		return "os-buffered"
	}
}

// Options configures a log.
type Options struct {
	// Sync is the durability policy (see SyncPolicy).
	Sync SyncPolicy
	// SegmentBytes rotates the active segment once it reaches this size.
	// Default 16 MiB.
	SegmentBytes int64
	// FS overrides the filesystem, for fault injection. Default OSFS.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.FS == nil {
		o.FS = OSFS
	}
	return o
}

// segMeta describes one sealed (or scanned) segment.
type segMeta struct {
	seq      uint64
	name     string
	bytes    int64 // valid bytes, header included
	records  int
	maxEpoch uint64
}

// Recovery reports what Open found and repaired.
type Recovery struct {
	// Segments is the number of surviving segment files.
	Segments int
	// Records is the number of valid records across them.
	Records int
	// Bytes is the total valid segment bytes, headers included.
	Bytes int64
	// Barriers lists every checkpoint barrier found, in log order. The
	// caller picks the newest one whose snapshot file still exists.
	Barriers []Barrier
	// Truncated describes the tail repair performed, empty when the log
	// was clean.
	Truncated string
	// TruncatedBytes is how many trailing bytes were discarded.
	TruncatedBytes int64
	// DroppedSegments counts segment files discarded because they sat
	// after the torn point or had corrupt headers.
	DroppedSegments int
}

// Log is an append-only record log over rotating segment files. Appends
// are serialized internally; Commit implements group commit, so any number
// of goroutines can Append+Commit concurrently and share fsyncs.
type Log struct {
	dir  string
	fs   FS
	opts Options

	mu   sync.Mutex
	cond *sync.Cond
	f    File // active segment
	seq  uint64
	// activeBytes / activeMaxEpoch track the active segment.
	activeBytes    int64
	activeMaxEpoch uint64
	sealed         []segMeta
	// written / synced are monotone per-process LSN watermarks: written
	// counts appended records, synced the highest LSN known durable.
	written uint64
	synced  uint64
	syncing bool // one goroutine is in f.Sync with mu released
	err     error
	closed  bool

	// barrierSeq is the segment holding the newest barrier; GC never
	// removes it or anything after it.
	barrier    *Barrier
	barrierSeq uint64

	// replaySegs freezes the segment set and valid byte ranges found at
	// Open, so Replay reads exactly the recovered prefix even if appends
	// have started.
	replaySegs []segMeta

	stopTicker chan struct{}
	tickerWG   sync.WaitGroup
}

// Open opens (creating if needed) the log in dir, scanning every segment,
// truncating the first torn or CRC-failing tail record, and dropping
// segments stranded after the torn point. It returns the log positioned
// for appending plus a Recovery describing what was found.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, rec, barrierSeq, err := scanDir(fs, dir, true)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{
		dir:        dir,
		fs:         fs,
		opts:       opts,
		stopTicker: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	l.replaySegs = segs
	if n := len(rec.Barriers); n > 0 {
		b := rec.Barriers[n-1]
		l.barrier = &b
		l.barrierSeq = barrierSeq
	}

	// Reopen the last segment for appending, or start segment 1.
	if n := len(segs); n > 0 {
		last := segs[n-1]
		f, err := fs.Append(filepath.Join(dir, last.name))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen active segment: %w", err)
		}
		l.f = f
		l.seq = last.seq
		l.activeBytes = last.bytes
		l.activeMaxEpoch = last.maxEpoch
		l.sealed = append(l.sealed, segs[:n-1]...)
	} else {
		if err := l.createSegmentLocked(1); err != nil {
			return nil, nil, err
		}
	}

	if opts.Sync.Every <= 0 && opts.Sync.Interval > 0 {
		l.tickerWG.Add(1)
		go l.intervalSyncer(opts.Sync.Interval)
	}
	return l, rec, nil
}

// Inspect scans the log directory read-only — no repair, no truncation, no
// lock — and reports what a recovery would find. Tooling (ppanns-dbtool
// info) uses it to describe a WAL without mutating it.
func Inspect(dir string) (*Recovery, error) {
	_, rec, _, err := scanDir(OSFS, dir, false)
	return rec, err
}

// scanDir scans segments in seq order. With repair=true it truncates the
// segment containing the first invalid record and removes later segments
// and leftover temp files; with repair=false it only reports. barrierSeq
// is the seq of the segment holding the newest barrier (0 when none).
func scanDir(fs FS, dir string, repair bool) (segs []segMeta, rec *Recovery, barrierSeq uint64, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: list dir: %w", err)
	}
	var segNames []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segNames = append(segNames, n)
		} else if repair && strings.HasSuffix(n, ".tmp") {
			fs.Remove(filepath.Join(dir, n))
		}
	}
	// ReadDir sorts lexically; the fixed-width hex seq makes that seq order.

	rec = &Recovery{}
	torn := false
	for _, name := range segNames {
		if torn {
			// Everything after the torn point is unreachable by
			// recovery: records there may depend on lost ones.
			if repair {
				fs.Remove(filepath.Join(dir, name))
			}
			rec.DroppedSegments++
			continue
		}
		seq, _ := parseSegName(name)
		path := filepath.Join(dir, name)
		sm, barriers, serr := scanSegment(fs, path, seq)
		if serr != nil {
			return nil, nil, 0, serr
		}
		size, serr := fs.Size(path)
		if serr != nil {
			return nil, nil, 0, fmt.Errorf("wal: stat %s: %w", name, serr)
		}
		if sm.bytes < segHeaderSize {
			// Header never made it to disk: the file holds no
			// records, drop it entirely.
			torn = true
			rec.Truncated = fmt.Sprintf("segment %s: corrupt header, file dropped", name)
			rec.TruncatedBytes += size
			if repair {
				fs.Remove(path)
			}
			rec.DroppedSegments++
			continue
		}
		if sm.bytes < size {
			torn = true
			rec.Truncated = fmt.Sprintf("segment %s: torn or corrupt record at offset %d, %d trailing bytes truncated",
				name, sm.bytes, size-sm.bytes)
			rec.TruncatedBytes += size - sm.bytes
			if repair {
				if terr := fs.Truncate(path, sm.bytes); terr != nil {
					return nil, nil, 0, fmt.Errorf("wal: truncate torn tail of %s: %w", name, terr)
				}
			}
		}
		segs = append(segs, sm)
		rec.Segments++
		rec.Records += sm.records
		rec.Bytes += sm.bytes
		if len(barriers) > 0 {
			barrierSeq = sm.seq
		}
		rec.Barriers = append(rec.Barriers, barriers...)
	}
	return segs, rec, barrierSeq, nil
}

// scanSegment validates one segment file, returning its metadata (bytes =
// length of the valid prefix) and the barriers it contains. Corruption is
// not an error: it just bounds sm.bytes.
func scanSegment(fs FS, path string, wantSeq uint64) (segMeta, []Barrier, error) {
	f, err := fs.Open(path)
	if err != nil {
		return segMeta{}, nil, fmt.Errorf("wal: open segment %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	sm := segMeta{seq: wantSeq, name: filepath.Base(path)}
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil ||
		string(hdr[:8]) != segMagic ||
		binary.LittleEndian.Uint64(hdr[8:]) != wantSeq {
		return sm, nil, nil // sm.bytes = 0 → corrupt header
	}
	sm.bytes = segHeaderSize

	var barriers []Barrier
	var buf []byte
	for {
		head := make([]byte, recHeaderSize)
		if _, err := io.ReadFull(r, head); err != nil {
			return sm, barriers, nil // clean EOF or torn header
		}
		plen := binary.LittleEndian.Uint32(head)
		kind := Kind(head[4])
		epoch := binary.LittleEndian.Uint64(head[5:])
		if plen > maxPayload || !kind.valid() {
			return sm, barriers, nil
		}
		need := int(plen) + recTrailerSize
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		body := buf[:need]
		if _, err := io.ReadFull(r, body); err != nil {
			return sm, barriers, nil // torn payload
		}
		crc := crc32.Checksum(head, castagnoli)
		crc = crc32.Update(crc, castagnoli, body[:plen])
		if crc != binary.LittleEndian.Uint32(body[plen:]) {
			return sm, barriers, nil // corrupt record
		}
		if kind == KindBarrier {
			b, berr := decodeBarrier(epoch, body[:plen])
			if berr != nil {
				return sm, barriers, nil
			}
			barriers = append(barriers, b)
		}
		sm.bytes += int64(recHeaderSize + need)
		sm.records++
		if epoch > sm.maxEpoch {
			sm.maxEpoch = epoch
		}
	}
}

// createSegmentLocked creates and activates segment seq. Callers hold no
// lock during Open; rotateLocked calls it with mu held — the field writes
// are safe either way because the log is not yet shared (Open) or mu is
// held (rotate).
func (l *Log) createSegmentLocked(seq uint64) error {
	name := segName(seq)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	if _, err := f.Write(segHeader(seq)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header %s: %w", name, err)
	}
	// Make the file name itself durable; the header bytes become durable
	// with the first record fsync.
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.f = f
	l.seq = seq
	l.activeBytes = segHeaderSize
	l.activeMaxEpoch = 0
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next. Called with mu held; waits out any in-flight group-commit fsync so
// the file is not closed under it.
func (l *Log) rotateLocked() error {
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.poisonLocked(fmt.Errorf("wal: sync segment on rotate: %w", err))
		return l.err
	}
	if err := l.f.Close(); err != nil {
		l.poisonLocked(fmt.Errorf("wal: close sealed segment: %w", err))
		return l.err
	}
	if l.written > l.synced {
		l.synced = l.written
	}
	l.sealed = append(l.sealed, segMeta{
		seq:      l.seq,
		name:     segName(l.seq),
		bytes:    l.activeBytes,
		maxEpoch: l.activeMaxEpoch,
	})
	if err := l.createSegmentLocked(l.seq + 1); err != nil {
		l.poisonLocked(err)
		return l.err
	}
	return nil
}

// poisonLocked records a sticky error: a log that failed a write or fsync
// can no longer promise durability, so every later operation fails fast
// instead of silently acknowledging writes it cannot recover.
func (l *Log) poisonLocked(err error) {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
}

// Append frames and writes one record to the active segment, returning its
// LSN for Commit. The write lands in the OS buffer; durability is
// Commit's job. Safe for concurrent use.
func (l *Log) Append(kind Kind, epoch uint64, payload []byte) (uint64, error) {
	frame := appendRecord(make([]byte, 0, recOverhead+len(payload)), kind, epoch, payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	if l.activeBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.poisonLocked(fmt.Errorf("wal: append: %w", err))
		return 0, l.err
	}
	l.activeBytes += int64(len(frame))
	if epoch > l.activeMaxEpoch {
		l.activeMaxEpoch = epoch
	}
	l.written++
	return l.written, nil
}

// Commit makes the record at lsn durable per the sync policy: it blocks
// until an fsync covers lsn (SyncEvery), or returns immediately (interval
// and OS-buffered policies), in both cases surfacing any sticky log error.
// Concurrent committers group-commit: one becomes the fsync leader, the
// rest ride the same fsync.
func (l *Log) Commit(lsn uint64) error {
	p := l.opts.Sync
	switch {
	case p.Every == 1:
		return l.syncTo(lsn)
	case p.Every > 1:
		if lsn%uint64(p.Every) == 0 {
			return l.syncTo(lsn)
		}
	}
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	return err
}

// Sync forces everything appended so far to disk, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.written
	l.mu.Unlock()
	return l.syncTo(lsn)
}

// syncTo blocks until records up to lsn are durable. Group commit: the
// first waiter becomes leader, captures the current write watermark,
// fsyncs outside the lock, then publishes the new synced watermark —
// covering every record appended before the fsync began, so followers that
// arrived meanwhile usually find their LSN already covered.
func (l *Log) syncTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced < lsn {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		f := l.f
		w := l.written
		l.mu.Unlock()
		serr := f.Sync()
		l.mu.Lock()
		l.syncing = false
		if serr != nil {
			l.poisonLocked(fmt.Errorf("wal: fsync: %w", serr))
			return l.err
		}
		if w > l.synced {
			l.synced = w
		}
		l.cond.Broadcast()
	}
	return nil
}

func (l *Log) intervalSyncer(every time.Duration) {
	defer l.tickerWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stopTicker:
			return
		case <-t.C:
			l.mu.Lock()
			lsn, bad := l.written, l.err != nil || l.closed
			l.mu.Unlock()
			if bad {
				return
			}
			l.syncTo(lsn) // errors stick; next Append/Commit surfaces them
		}
	}
}

// Checkpoint durably installs a new recovery base: it writes the snapshot
// via the atomic-persist path (temp + fsync + rename + dir fsync), rotates
// so the barrier starts a fresh segment, appends and fsyncs the barrier
// record, then garbage-collects sealed segments whose records the snapshot
// covers and sweeps superseded snapshot files. If b.Name is empty the
// canonical CheckpointName(epoch, gen) is used. Concurrent Appends are
// safe throughout; Checkpoint calls themselves must be serialized by the
// caller (core's compactor lock does).
func (l *Log) Checkpoint(b Barrier, write func(io.Writer) error) error {
	if b.Name == "" {
		b.Name = CheckpointName(b.Epoch, b.Gen)
	}
	if err := writeFileAtomicFS(l.fs, filepath.Join(l.dir, b.Name), write); err != nil {
		return fmt.Errorf("wal: write checkpoint %s: %w", b.Name, err)
	}

	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Rotate so every pre-barrier record sits in a sealed segment and the
	// barrier opens a fresh one: GC can then reason per whole segment.
	if l.activeBytes > segHeaderSize {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	l.mu.Unlock()

	lsn, err := l.Append(KindBarrier, b.Epoch, b.encode())
	if err != nil {
		return err
	}
	if err := l.syncTo(lsn); err != nil {
		return err
	}

	l.mu.Lock()
	bc := b
	l.barrier = &bc
	l.barrierSeq = l.seq
	// Collect sealed segments fully covered by the snapshot: everything
	// before the barrier's segment whose newest record is ≤ the
	// checkpoint epoch. Segments holding post-checkpoint records (written
	// while the snapshot was being persisted) survive and replay's epoch
	// filter handles their older records.
	var keep, drop []segMeta
	for _, s := range l.sealed {
		if s.seq < l.barrierSeq && s.maxEpoch <= b.Epoch {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	l.mu.Unlock()

	for _, s := range drop {
		l.fs.Remove(filepath.Join(l.dir, s.name)) // best effort
	}
	l.sweepCheckpoints(b.Name)
	return nil
}

// sweepCheckpoints removes superseded snapshot files, keeping keep.
func (l *Log) sweepCheckpoints(keep string) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, n := range names {
		if n != keep && isCheckpointName(n) {
			l.fs.Remove(filepath.Join(l.dir, n))
		}
	}
}

// OpenCheckpoint opens a snapshot file recorded in a barrier for reading.
func (l *Log) OpenCheckpoint(name string) (io.ReadCloser, error) {
	return l.fs.Open(filepath.Join(l.dir, filepath.Base(name)))
}

// Replay streams every valid mutation record with epoch > afterEpoch, in
// log order, to fn. Barrier records are skipped. The payload slice is
// reused between calls; fn must not retain it. Replay reads exactly the
// byte ranges validated at Open, so it is deterministic even if appends
// have since started — but the intended sequence is Open → Replay → serve.
func (l *Log) Replay(afterEpoch uint64, fn func(kind Kind, epoch uint64, payload []byte) error) error {
	for _, sm := range l.replaySegs {
		if sm.maxEpoch <= afterEpoch {
			continue
		}
		if err := l.replaySegment(sm, afterEpoch, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(sm segMeta, afterEpoch uint64, fn func(Kind, uint64, []byte) error) error {
	f, err := l.fs.Open(filepath.Join(l.dir, sm.name))
	if err != nil {
		return fmt.Errorf("wal: replay open %s: %w", sm.name, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(io.LimitReader(f, sm.bytes), 1<<16)
	if _, err := io.CopyN(io.Discard, r, segHeaderSize); err != nil {
		return fmt.Errorf("wal: replay %s: %w", sm.name, err)
	}
	var buf []byte
	head := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(r, head); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: replay %s: %w", sm.name, err)
		}
		plen := int(binary.LittleEndian.Uint32(head))
		kind := Kind(head[4])
		epoch := binary.LittleEndian.Uint64(head[5:])
		if cap(buf) < plen+recTrailerSize {
			buf = make([]byte, plen+recTrailerSize)
		}
		body := buf[:plen+recTrailerSize]
		if _, err := io.ReadFull(r, body); err != nil {
			return fmt.Errorf("wal: replay %s: %w", sm.name, err)
		}
		// The prefix was CRC-validated at Open; no need to re-verify.
		if kind == KindBarrier || epoch <= afterEpoch {
			continue
		}
		if err := fn(kind, epoch, body[:plen]); err != nil {
			return err
		}
	}
}

// Stats is a point-in-time summary of the log, for Server.WALStats and the
// transport Info surface.
type Stats struct {
	// Dir is the log directory.
	Dir string
	// Segments is the number of live segment files, active included.
	Segments int
	// Bytes is their total size.
	Bytes int64
	// Appended and Synced are the per-process LSN watermarks.
	Appended uint64
	Synced   uint64
	// Barrier is the newest checkpoint barrier, nil before the first.
	Barrier *Barrier
}

// Stats reports the log's current shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Dir:      l.dir,
		Segments: len(l.sealed) + 1,
		Bytes:    l.activeBytes,
		Appended: l.written,
		Synced:   l.synced,
	}
	for _, s := range l.sealed {
		st.Bytes += s.bytes
	}
	if l.barrier != nil {
		b := *l.barrier
		st.Barrier = &b
	}
	return st
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Err returns the sticky error, if the log has been poisoned by a failed
// write or fsync.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close syncs and closes the active segment and stops the interval syncer.
// Appends after Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	close(l.stopTicker)
	for l.syncing {
		l.cond.Wait()
	}
	var ferr error
	if l.err == nil && l.f != nil {
		if serr := l.f.Sync(); serr != nil {
			ferr = fmt.Errorf("wal: sync on close: %w", serr)
		} else if l.written > l.synced {
			l.synced = l.written
		}
		if cerr := l.f.Close(); cerr != nil && ferr == nil {
			ferr = fmt.Errorf("wal: close: %w", cerr)
		}
	} else if l.f != nil {
		l.f.Close()
	}
	if ferr != nil && l.err == nil {
		l.err = ferr
	}
	err := l.err
	l.cond.Broadcast()
	l.mu.Unlock()
	l.tickerWG.Wait()
	return err
}
