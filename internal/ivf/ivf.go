// Package ivf implements an IVF-Flat inverted-file index: a k-means coarse
// quantizer routes each vector to one of nlist inverted lists, and a query
// exhaustively scans its nprobe closest lists. Inverted files are the
// second index family the paper names (Sections I/VIII); this package backs
// the index-ablation experiment that compares filter-phase backends over
// SAP ciphertexts.
package ivf

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ppanns/internal/kmeans"
	"ppanns/internal/resultheap"
	"ppanns/internal/vec"
)

// Config parameterizes index construction.
type Config struct {
	// Lists is nlist, the number of inverted lists (default √n capped to
	// [16, 4096]).
	Lists int
	// TrainIters bounds the k-means iterations (default 20).
	TrainIters int
	// Seed drives quantizer training.
	Seed uint64
}

// Index is a thread-safe IVF-Flat index.
type Index struct {
	dim       int
	centroids [][]float64

	mu      sync.RWMutex
	lists   [][]int32 // list → member ids
	data    *vec.Dataset
	deleted []bool
	live    int

	// gen counts membership mutations (Add; Delete only tombstones, which
	// the flat view does not capture). flat caches the CSR flattening of
	// lists for the current generation: one offsets array plus one flat
	// member array, so a probe scans a contiguous id span instead of
	// chasing the outer slice. Built lazily on first search, invalidated by
	// the generation bump. noFlat pins searches to the slice-of-slices path
	// (conformance tests compare the two).
	gen     atomic.Uint64
	flat    atomic.Pointer[flatLists]
	flatMu  sync.Mutex
	noFlat  bool
	ctxPool sync.Pool
}

// flatLists is the immutable CSR view of the inverted lists at one
// generation: list c's members are ids[offs[c]:offs[c+1]].
type flatLists struct {
	gen  uint64
	offs []int32
	ids  []int32
}

// flatFor returns the CSR list view for the current generation, building
// it if stale. Caller must hold at least the read lock, which excludes the
// membership mutations that would invalidate the build mid-flight.
func (ix *Index) flatFor() *flatLists {
	if ix.noFlat {
		return nil
	}
	cur := ix.gen.Load()
	if f := ix.flat.Load(); f != nil && f.gen == cur {
		return f
	}
	if !ix.flatMu.TryLock() {
		return nil
	}
	defer ix.flatMu.Unlock()
	if f := ix.flat.Load(); f != nil && f.gen == cur {
		return f
	}
	offs, ids := vec.FlattenCSR(ix.lists)
	f := &flatLists{gen: cur, offs: offs, ids: ids}
	ix.flat.Store(f)
	return f
}

// searchCtx is the pooled per-search scratch: probe list, gathered live
// ids, blocked-kernel output, result heap and drain buffer.
type searchCtx struct {
	probes     []int
	probeDists []float64
	gather     []int32
	dists      []float64
	res        *resultheap.MaxDistHeap
	items      []resultheap.Item
}

// Build trains the quantizer on the vectors and populates the lists.
func Build(vectors [][]float64, cfg Config) (*Index, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("ivf: empty data")
	}
	nlist := cfg.Lists
	if nlist <= 0 {
		nlist = isqrt(len(vectors))
		if nlist < 16 {
			nlist = 16
		}
		if nlist > 4096 {
			nlist = 4096
		}
	}
	if nlist > len(vectors) {
		nlist = len(vectors)
	}
	iters := cfg.TrainIters
	if iters <= 0 {
		iters = 20
	}
	res, err := kmeans.Fit(vectors, kmeans.Config{K: nlist, MaxIters: iters, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	ix := &Index{
		dim:       len(vectors[0]),
		centroids: res.Centroids,
		lists:     make([][]int32, nlist),
		data:      vec.NewDataset(len(vectors[0]), len(vectors)),
		deleted:   make([]bool, 0, len(vectors)),
	}
	for i, v := range vectors {
		ix.data.Append(v)
		ix.deleted = append(ix.deleted, false)
		c := res.Assign[i]
		ix.lists[c] = append(ix.lists[c], int32(i))
	}
	ix.live = len(vectors)
	return ix, nil
}

func isqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}

// Len returns the number of live vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// Dim returns the vector dimension.
func (ix *Index) Dim() int { return ix.dim }

// Vector returns the stored vector for id (also valid for deleted ids,
// whose rows remain as tombstones), or nil for out-of-range ids.
func (ix *Index) Vector(id int) []float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.deleted) {
		return nil
	}
	return ix.data.At(id)
}

// Lists returns nlist.
func (ix *Index) Lists() int { return len(ix.lists) }

// Clone returns an independent copy of the index: the inverted lists,
// vectors and tombstones are copied, so Add/Delete on either side is
// invisible to the other. The trained quantizer is immutable and shared.
func (ix *Index) Clone() *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cp := &Index{
		dim:       ix.dim,
		centroids: ix.centroids,
		lists:     make([][]int32, len(ix.lists)),
		data:      ix.data.Clone(),
		deleted:   append([]bool(nil), ix.deleted...),
		live:      ix.live,
	}
	for i, lst := range ix.lists {
		cp.lists[i] = append([]int32(nil), lst...)
	}
	return cp
}

// Fresh returns an empty index sharing the receiver's trained quantizer:
// the rebuild primitive for compaction, which re-populates from scratch
// (via Rebuild in the adapter layer) without paying for k-means training
// again. The centroids are immutable, so sharing them is safe.
func (ix *Index) Fresh(capHint int) *Index {
	if capHint < 0 {
		capHint = 0
	}
	return &Index{
		dim:       ix.dim,
		centroids: ix.centroids,
		lists:     make([][]int32, len(ix.lists)),
		data:      vec.NewDataset(ix.dim, capHint),
		deleted:   make([]bool, 0, capHint),
	}
}

// Add inserts a vector and returns its id.
func (ix *Index) Add(v []float64) int {
	if len(v) != ix.dim {
		panic(fmt.Sprintf("ivf: adding %d-dim vector to %d-dim index", len(v), ix.dim))
	}
	c := kmeans.Nearest(ix.centroids, v)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.gen.Add(1) // invalidate the cached flat list view
	id := ix.data.Append(v)
	ix.deleted = append(ix.deleted, false)
	ix.lists[c] = append(ix.lists[c], int32(id))
	ix.live++
	return id
}

// Delete tombstones an id.
func (ix *Index) Delete(id int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if id < 0 || id >= len(ix.deleted) {
		return fmt.Errorf("ivf: delete of unknown id %d", id)
	}
	if ix.deleted[id] {
		return fmt.Errorf("ivf: id %d already deleted", id)
	}
	ix.deleted[id] = true
	ix.live--
	return nil
}

// Search scans the nprobe closest lists and returns the k nearest live
// ids, closest first.
func (ix *Index) Search(q []float64, k, nprobe int) []resultheap.Item {
	return ix.SearchInto(nil, q, k, nprobe)
}

// SearchInto is Search appending into dst (reusing its capacity). Scratch
// state is pooled and each probed list is evaluated with one blocked
// distance call over the flattened member arena, so a warm search with a
// recycled dst allocates nothing.
func (ix *Index) SearchInto(dst []resultheap.Item, q []float64, k, nprobe int) []resultheap.Item {
	return ix.searchInto(dst, q, k, nprobe, nil)
}

// SearchIntoDist is SearchInto with member distances supplied by sc instead
// of computed from the stored vectors — the compressed (PQ) filter path.
// Coarse-quantizer probing still scores centroids against q exactly; every
// list member is ranked through sc. Ids passed to sc are vector positions
// (IVF ids are positions).
func (ix *Index) SearchIntoDist(dst []resultheap.Item, q []float64, k, nprobe int, sc vec.BlockScanner) []resultheap.Item {
	return ix.searchInto(dst, q, k, nprobe, sc)
}

func (ix *Index) searchInto(dst []resultheap.Item, q []float64, k, nprobe int, sc vec.BlockScanner) []resultheap.Item {
	if len(q) != ix.dim {
		panic(fmt.Sprintf("ivf: querying %d-dim vector in %d-dim index", len(q), ix.dim))
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.lists) {
		nprobe = len(ix.lists)
	}
	ctx, _ := ix.ctxPool.Get().(*searchCtx)
	if ctx == nil {
		ctx = &searchCtx{res: resultheap.NewMaxDistHeap(k + 1)}
	}
	defer ix.ctxPool.Put(ctx)
	ctx.probes, ctx.probeDists = kmeans.NearestNInto(ctx.probes, ctx.probeDists, ix.centroids, q, nprobe)

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	flat := ix.flatFor()
	res := ctx.res
	res.Reset()
	gather := ctx.gather
	for _, c := range ctx.probes {
		var members []int32
		if flat != nil {
			members = flat.ids[flat.offs[c]:flat.offs[c+1]]
		} else {
			members = ix.lists[c]
		}
		gather = gather[:0]
		for _, id := range members {
			if !ix.deleted[id] {
				gather = append(gather, id)
			}
		}
		if sc != nil {
			if cap(ctx.dists) < len(gather) {
				ctx.dists = make([]float64, len(gather))
			} else {
				ctx.dists = ctx.dists[:len(gather)]
			}
			sc.DistBlock(ctx.dists, gather)
		} else {
			ctx.dists = ix.data.SqDistBlock(ctx.dists, q, gather)
		}
		for j, id := range gather {
			res.PushBounded(int(id), ctx.dists[j], k)
		}
	}
	ctx.gather = gather
	ctx.items = res.SortedInto(ctx.items)
	return append(dst[:0], ctx.items...)
}
