package ivf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ppanns/internal/vec"
)

// Binary index format: magic, dim/nlist/n/live header, centroid matrix,
// flat vector store, tombstone bytes, then one length-prefixed member list
// per inverted list. All integers are little-endian.

const persistMagic = "IVFGO001"

// Save writes the index in the binary format. It takes the read lock so
// the snapshot is consistent.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("ivf: writing magic: %w", err)
	}
	n := len(ix.deleted)
	head := []int64{int64(ix.dim), int64(len(ix.centroids)), int64(n), int64(ix.live)}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("ivf: writing header: %w", err)
		}
	}
	for _, c := range ix.centroids {
		if err := binary.Write(bw, binary.LittleEndian, c); err != nil {
			return fmt.Errorf("ivf: writing centroids: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.data.Raw()); err != nil {
		return fmt.Errorf("ivf: writing vectors: %w", err)
	}
	for _, d := range ix.deleted {
		b := byte(0)
		if d {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	for _, lst := range ix.lists {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(lst))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, lst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ivf: reading magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("ivf: bad magic %q", magic)
	}
	head := make([]int64, 4)
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("ivf: reading header: %w", err)
		}
	}
	dim, nlist, n, live := int(head[0]), int(head[1]), int(head[2]), int(head[3])
	if dim <= 0 || nlist <= 0 || n < 0 || live < 0 || live > n {
		return nil, fmt.Errorf("ivf: implausible header dim=%d nlist=%d n=%d live=%d", dim, nlist, n, live)
	}
	ix := &Index{
		dim:       dim,
		centroids: make([][]float64, nlist),
		lists:     make([][]int32, nlist),
		deleted:   make([]bool, n),
		live:      live,
	}
	for i := range ix.centroids {
		c := make([]float64, dim)
		if err := binary.Read(br, binary.LittleEndian, c); err != nil {
			return nil, fmt.Errorf("ivf: reading centroids: %w", err)
		}
		ix.centroids[i] = c
	}
	raw := make([]float64, n*dim)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("ivf: reading vectors: %w", err)
	}
	ds, err := vec.DatasetFromRaw(dim, raw)
	if err != nil {
		return nil, err
	}
	ix.data = ds
	for i := range ix.deleted {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("ivf: reading tombstones: %w", err)
		}
		ix.deleted[i] = b != 0
	}
	for i := range ix.lists {
		var cnt int32
		if err := binary.Read(br, binary.LittleEndian, &cnt); err != nil {
			return nil, fmt.Errorf("ivf: reading list %d: %w", i, err)
		}
		if cnt < 0 || int(cnt) > n {
			return nil, fmt.Errorf("ivf: list %d has %d members", i, cnt)
		}
		lst := make([]int32, cnt)
		if err := binary.Read(br, binary.LittleEndian, lst); err != nil {
			return nil, err
		}
		for _, id := range lst {
			if id < 0 || int(id) >= n {
				return nil, fmt.Errorf("ivf: list %d references out-of-range id %d", i, id)
			}
		}
		ix.lists[i] = lst
	}
	return ix, nil
}
