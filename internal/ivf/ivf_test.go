package ivf

import (
	"testing"

	"ppanns/internal/dataset"
	"ppanns/internal/resultheap"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

func buildIndex(t *testing.T, n int) (*Index, *dataset.Data) {
	t.Helper()
	d := dataset.DeepLike(n, 20, 31)
	ix, err := Build(d.Train, Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return ix, d
}

func TestValidation(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestRecallImprovesWithNProbe(t *testing.T) {
	ix, d := buildIndex(t, 3000)
	gt := d.GroundTruth(10)
	measure := func(nprobe int) float64 {
		var recall float64
		for qi, q := range d.Queries {
			items := ix.Search(q, 10, nprobe)
			ids := make([]int, len(items))
			for i, it := range items {
				ids[i] = it.ID
			}
			recall += dataset.Recall(ids, gt[qi])
		}
		return recall / float64(len(d.Queries))
	}
	r1 := measure(1)
	r8 := measure(8)
	rAll := measure(ix.Lists())
	if r8 < r1 {
		t.Fatalf("recall fell with more probes: %.3f vs %.3f", r1, r8)
	}
	if rAll < 0.999 {
		t.Fatalf("probing all lists must be exact, got %.3f", rAll)
	}
	if r8 < 0.6 {
		t.Fatalf("nprobe=8 recall = %.3f, want ≥ 0.6", r8)
	}
}

func TestResultsSorted(t *testing.T) {
	ix, d := buildIndex(t, 800)
	items := ix.Search(d.Queries[0], 10, 8)
	for i := 1; i < len(items); i++ {
		if items[i].Dist < items[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestAddAndDelete(t *testing.T) {
	ix, d := buildIndex(t, 500)
	r := rng.NewSeeded(7)
	novel := vec.Normalize(rng.GaussianVec(r, d.Dim, 1))
	id := ix.Add(novel)
	if id != 500 {
		t.Fatalf("Add id = %d", id)
	}
	items := ix.Search(novel, 1, ix.Lists())
	if len(items) != 1 || items[0].ID != id {
		t.Fatalf("inserted vector not found: %+v", items)
	}
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	items = ix.Search(novel, 1, ix.Lists())
	if len(items) == 1 && items[0].ID == id {
		t.Fatal("deleted id still returned")
	}
	if err := ix.Delete(id); err == nil {
		t.Fatal("expected error for double delete")
	}
	if err := ix.Delete(9999); err == nil {
		t.Fatal("expected error for unknown id")
	}
	if ix.Len() != 500 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestDimMismatchPanics(t *testing.T) {
	ix, _ := buildIndex(t, 200)
	for name, fn := range map[string]func(){
		"Add":    func() { ix.Add(make([]float64, 3)) },
		"Search": func() { ix.Search(make([]float64, 3), 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestListsCoverAllVectors(t *testing.T) {
	ix, _ := buildIndex(t, 700)
	total := 0
	for _, lst := range ix.lists {
		total += len(lst)
	}
	if total != 700 {
		t.Fatalf("lists hold %d entries, want 700", total)
	}
}

// TestFlatScanMatchesSliceLists is the flattened-view conformance test: the
// CSR member-arena scan must return the exact same ids, order and distances
// as the slice-of-slices path, including after membership mutations
// invalidate and rebuild the view.
func TestFlatScanMatchesSliceLists(t *testing.T) {
	ix, d := buildIndex(t, 1200)
	for _, id := range []int{7, 300, 911} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string) {
		t.Helper()
		for qi, q := range d.Queries {
			ix.noFlat = true
			slices := ix.Search(q, 10, 8)
			ix.noFlat = false
			flat := ix.Search(q, 10, 8)
			if ix.flat.Load() == nil || ix.flat.Load().gen != ix.gen.Load() {
				t.Fatalf("%s: search did not (re)build the flat view", stage)
			}
			if len(flat) != len(slices) {
				t.Fatalf("%s query %d: flat %d items, slices %d", stage, qi, len(flat), len(slices))
			}
			for i := range flat {
				if flat[i] != slices[i] {
					t.Fatalf("%s query %d pos %d: flat (%d, %v) != slices (%d, %v)",
						stage, qi, i, flat[i].ID, flat[i].Dist, slices[i].ID, slices[i].Dist)
				}
			}
		}
	}
	check("initial")
	v1 := ix.flat.Load()
	ix.Add(d.Queries[0]) // membership mutation must invalidate the view
	check("after add")
	if ix.flat.Load() == v1 {
		t.Fatal("Add did not invalidate the flat list view")
	}
}

// TestSearchIntoAllocationFree guards the pooled scan path.
func TestSearchIntoAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	ix, d := buildIndex(t, 800)
	var dst []resultheap.Item
	dst = ix.SearchInto(dst, d.Queries[0], 10, 8) // warm pools
	allocs := testing.AllocsPerRun(20, func() {
		dst = ix.SearchInto(dst[:0], d.Queries[1], 10, 8)
	})
	if allocs > 1 { // tolerate one pool refill if GC lands mid-run
		t.Fatalf("warm SearchInto allocates %.1f times per run", allocs)
	}
}
