package vec

import "fmt"

// Dataset stores n vectors of fixed dimension dim in a single flat backing
// array. Rows are padded to a cache-line multiple (stride = PadStride(dim)
// float64s) and the arena base is 64-byte aligned, so row i starts exactly
// at data[i*stride] on a cache-line boundary and a SIMD kernel's vector
// loads never split a line across rows. The pad floats are always zero and
// never leave the package: At, Raw and the serialization paths all speak
// the compact dim-length representation.
type Dataset struct {
	dim    int
	stride int // row stride in float64s: PadStride(dim)
	data   []float64
}

// NewDataset returns an empty dataset of the given dimension with capacity
// for capHint vectors.
func NewDataset(dim, capHint int) *Dataset {
	if dim <= 0 {
		panic(fmt.Sprintf("vec: non-positive dataset dimension %d", dim))
	}
	if capHint < 0 {
		capHint = 0
	}
	stride := PadStride(dim)
	return &Dataset{dim: dim, stride: stride, data: AlignedFloats(stride * capHint)[:0]}
}

// DatasetFromSlices builds a dataset by copying the given vectors, which must
// all share the same dimension.
func DatasetFromSlices(vectors [][]float64) *Dataset {
	if len(vectors) == 0 {
		panic("vec: DatasetFromSlices needs at least one vector")
	}
	ds := NewDataset(len(vectors[0]), len(vectors))
	for _, v := range vectors {
		ds.Append(v)
	}
	return ds
}

// Dim returns the vector dimension.
func (d *Dataset) Dim() int { return d.dim }

// Stride returns the in-memory row stride in float64s (Dim rounded up to a
// cache line). The kernel dispatch and the alignment tests use it; row
// addressing outside this package should go through At.
func (d *Dataset) Stride() int { return d.stride }

// Len returns the number of vectors stored.
func (d *Dataset) Len() int { return len(d.data) / d.stride }

// At returns vector i as a slice view into the backing array. The caller
// must not grow it; writes alter the dataset.
func (d *Dataset) At(i int) []float64 {
	return d.data[i*d.stride : i*d.stride+d.dim : i*d.stride+d.dim]
}

// grow ensures capacity for rows more rows, reallocating aligned storage
// when needed (append would lose the 64-byte base alignment).
func (d *Dataset) grow(rows int) {
	need := len(d.data) + rows*d.stride
	if need <= cap(d.data) {
		return
	}
	newCap := 2 * cap(d.data)
	if newCap < need {
		newCap = need
	}
	nd := AlignedFloats(newCap)[:len(d.data)]
	copy(nd, d.data)
	d.data = nd
}

// Append copies v into the dataset and returns its index.
func (d *Dataset) Append(v []float64) int {
	if len(v) != d.dim {
		panic(fmt.Sprintf("vec: appending %d-dim vector to %d-dim dataset", len(v), d.dim))
	}
	d.grow(1)
	n := d.Len()
	d.data = d.data[:len(d.data)+d.stride]
	row := d.data[n*d.stride:]
	copy(row, v)
	for i := d.dim; i < d.stride; i++ {
		row[i] = 0
	}
	return n
}

// AppendZero appends an all-zero vector and returns both its index and a
// writable view of the new row, avoiding a copy when the caller fills it in
// place.
func (d *Dataset) AppendZero() (int, []float64) {
	d.grow(1)
	n := d.Len()
	d.data = d.data[:len(d.data)+d.stride]
	row := d.data[n*d.stride:]
	for i := range row {
		row[i] = 0
	}
	return n, d.At(n)
}

// SqDistBlock computes dst[j] = SqDist(q, At(ids[j])) for every id in one
// pass over the flat backing array, reusing dst's capacity. Results are
// bit-identical to per-row SqDist calls (every dispatched variant matches
// the scalar reference's element order); the win is structural: one call
// evaluates a whole gathered neighbor or candidate list, the row
// addressing stays inside the kernel, and q stays hot in registers/L1
// across rows. Graph hops and inverted-list scans are the intended callers.
func (d *Dataset) SqDistBlock(dst []float64, q []float64, ids []int32) []float64 {
	if len(q) != d.dim {
		panic(fmt.Sprintf("vec: block sqdist of %d-dim query on %d-dim dataset", len(q), d.dim))
	}
	if cap(dst) < len(ids) {
		dst = make([]float64, len(ids), len(ids)+len(ids)/2+8)
	} else {
		dst = dst[:len(ids)]
	}
	activeKernels.Load().sqDistBlock(dst, d.data, d.stride, d.dim, q, ids)
	return dst
}

// FlattenCSR flattens a slice-of-slices id structure (adjacency lists,
// inverted-list memberships) into compressed-sparse-row form: list i
// occupies flat[offs[i]:offs[i+1]]. The frozen search views are built on
// this shape so scans walk one contiguous array instead of chasing the
// outer slice's pointers.
func FlattenCSR(lists [][]int32) (offs []int32, flat []int32) {
	offs = make([]int32, len(lists)+1)
	total := int32(0)
	for i, lst := range lists {
		total += int32(len(lst))
		offs[i+1] = total
	}
	flat = make([]int32, total)
	for i, lst := range lists {
		copy(flat[offs[i]:offs[i+1]], lst)
	}
	return offs, flat
}

// Slices returns all rows as slice views (no copying).
func (d *Dataset) Slices() [][]float64 {
	out := make([][]float64, d.Len())
	for i := range out {
		out[i] = d.At(i)
	}
	return out
}

// Clone returns a deep copy of the dataset (aligned like every dataset).
func (d *Dataset) Clone() *Dataset {
	nd := AlignedFloats(len(d.data))
	copy(nd, d.data)
	return &Dataset{dim: d.dim, stride: d.stride, data: nd}
}

// Raw returns the compact flat representation (length Len()*Dim(), no row
// padding), the layout the serialization code writes. When rows are padded
// in memory this is a copy; when dim is already a cache-line multiple it is
// the backing array itself.
func (d *Dataset) Raw() []float64 {
	if d.stride == d.dim {
		return d.data
	}
	n := d.Len()
	out := make([]float64, n*d.dim)
	for i := 0; i < n; i++ {
		copy(out[i*d.dim:], d.At(i))
	}
	return out
}

// DatasetFromRaw builds a dataset from a compact flat array (row i at
// raw[i*dim:(i+1)*dim], as Raw returns). len(raw) must be a multiple of
// dim. The data is repacked into an aligned padded arena, so the input is
// not retained.
func DatasetFromRaw(dim int, raw []float64) (*Dataset, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vec: non-positive dimension %d", dim)
	}
	if len(raw)%dim != 0 {
		return nil, fmt.Errorf("vec: raw length %d is not a multiple of dim %d", len(raw), dim)
	}
	n := len(raw) / dim
	stride := PadStride(dim)
	data := AlignedFloats(n * stride)
	for i := 0; i < n; i++ {
		copy(data[i*stride:i*stride+dim], raw[i*dim:(i+1)*dim])
	}
	return &Dataset{dim: dim, stride: stride, data: data}, nil
}
