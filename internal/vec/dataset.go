package vec

import "fmt"

// Dataset stores n vectors of fixed dimension dim in a single flat backing
// array. Row i is the half-open slice data[i*dim : (i+1)*dim].
type Dataset struct {
	dim  int
	data []float64
}

// NewDataset returns an empty dataset of the given dimension with capacity
// for capHint vectors.
func NewDataset(dim, capHint int) *Dataset {
	if dim <= 0 {
		panic(fmt.Sprintf("vec: non-positive dataset dimension %d", dim))
	}
	return &Dataset{dim: dim, data: make([]float64, 0, dim*capHint)}
}

// DatasetFromSlices builds a dataset by copying the given vectors, which must
// all share the same dimension.
func DatasetFromSlices(vectors [][]float64) *Dataset {
	if len(vectors) == 0 {
		panic("vec: DatasetFromSlices needs at least one vector")
	}
	ds := NewDataset(len(vectors[0]), len(vectors))
	for _, v := range vectors {
		ds.Append(v)
	}
	return ds
}

// Dim returns the vector dimension.
func (d *Dataset) Dim() int { return d.dim }

// Len returns the number of vectors stored.
func (d *Dataset) Len() int { return len(d.data) / d.dim }

// At returns vector i as a slice view into the backing array. The caller
// must not grow it; writes alter the dataset.
func (d *Dataset) At(i int) []float64 {
	return d.data[i*d.dim : (i+1)*d.dim : (i+1)*d.dim]
}

// Append copies v into the dataset and returns its index.
func (d *Dataset) Append(v []float64) int {
	if len(v) != d.dim {
		panic(fmt.Sprintf("vec: appending %d-dim vector to %d-dim dataset", len(v), d.dim))
	}
	d.data = append(d.data, v...)
	return d.Len() - 1
}

// AppendZero appends an all-zero vector and returns both its index and a
// writable view of the new row, avoiding a copy when the caller fills it in
// place.
func (d *Dataset) AppendZero() (int, []float64) {
	n := d.Len()
	d.data = append(d.data, make([]float64, d.dim)...)
	return n, d.At(n)
}

// SqDistBlock computes dst[j] = SqDist(q, At(ids[j])) for every id in one
// pass over the flat backing array, reusing dst's capacity. Results are
// bit-identical to per-row SqDist calls (the same kernel evaluates both);
// the win is structural: one call evaluates a whole gathered neighbor or
// candidate list, the row addressing stays inside this loop where the
// compiler hoists the dimension, and q stays hot in registers/L1 across
// rows. Graph hops and inverted-list scans are the intended callers.
func (d *Dataset) SqDistBlock(dst []float64, q []float64, ids []int32) []float64 {
	if len(q) != d.dim {
		panic(fmt.Sprintf("vec: block sqdist of %d-dim query on %d-dim dataset", len(q), d.dim))
	}
	if cap(dst) < len(ids) {
		dst = make([]float64, len(ids), len(ids)+len(ids)/2+8)
	} else {
		dst = dst[:len(ids)]
	}
	dim := d.dim
	for j, id := range ids {
		row := d.data[int(id)*dim : int(id)*dim+dim]
		dst[j] = sqDistKernel(q, row)
	}
	return dst
}

// FlattenCSR flattens a slice-of-slices id structure (adjacency lists,
// inverted-list memberships) into compressed-sparse-row form: list i
// occupies flat[offs[i]:offs[i+1]]. The frozen search views are built on
// this shape so scans walk one contiguous array instead of chasing the
// outer slice's pointers.
func FlattenCSR(lists [][]int32) (offs []int32, flat []int32) {
	offs = make([]int32, len(lists)+1)
	total := int32(0)
	for i, lst := range lists {
		total += int32(len(lst))
		offs[i+1] = total
	}
	flat = make([]int32, total)
	for i, lst := range lists {
		copy(flat[offs[i]:offs[i+1]], lst)
	}
	return offs, flat
}

// Slices returns all rows as slice views (no copying).
func (d *Dataset) Slices() [][]float64 {
	out := make([][]float64, d.Len())
	for i := range out {
		out[i] = d.At(i)
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{dim: d.dim, data: append([]float64(nil), d.data...)}
}

// Raw exposes the flat backing array (length Len()*Dim()), used by the
// serialization code.
func (d *Dataset) Raw() []float64 { return d.data }

// DatasetFromRaw wraps an existing flat array (taking ownership) as a
// dataset. len(raw) must be a multiple of dim.
func DatasetFromRaw(dim int, raw []float64) (*Dataset, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vec: non-positive dimension %d", dim)
	}
	if len(raw)%dim != 0 {
		return nil, fmt.Errorf("vec: raw length %d is not a multiple of dim %d", len(raw), dim)
	}
	return &Dataset{dim: dim, data: raw}, nil
}
