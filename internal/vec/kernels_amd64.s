//go:build amd64

#include "textflag.h"

// AVX2 squared-distance kernels. Both functions replicate the scalar
// reference in kernels.go exactly:
//
//   - the vector loop consumes 8 elements per iteration into two YMM
//     accumulators (Y0 = lanes 0..3, Y1 = lanes 4..7);
//   - the remainder folds sequentially into lane 0 of Y0's low half with
//     scalar VEX ops (VADDSD preserves the neighbouring lane-1 bits);
//   - the reduction is the reduce8 tree: acc0+acc1 lane-wise, then the
//     128-bit halves, then the final unpack+add.
//
// No FMA anywhere: VSUBPD/VMULPD/VADDPD round each step exactly like the
// scalar code, which is what makes the variants bit-identical.
//
// Note Go assembler operand order: "VSUBPD A, B, C" computes C = B - A.

// SQ8 accumulates one 4-lane group at byte offset off from the element
// index CX*8: acc += (a-b)*(a-b), clobbering Y2/Y3.
#define SQ8(off, abase, bbase, acc) \
	VMOVUPD off(abase)(CX*8), Y2 \
	VMOVUPD off(bbase)(CX*8), Y3 \
	VSUBPD  Y3, Y2, Y2           \
	VMULPD  Y2, Y2, Y2           \
	VADDPD  Y2, acc, acc

// SQTAILSTEP folds element CX into lane 0 (X0), clobbering X6/X7.
#define SQTAILSTEP(abase, bbase) \
	VMOVSD (abase)(CX*8), X6 \
	VMOVSD (bbase)(CX*8), X7 \
	VSUBSD X7, X6, X6        \
	VMULSD X6, X6, X6        \
	VADDSD X6, X0, X0

// SQREDUCE8 runs the reduce8 tree assuming X0=[s0,s1] (tail already
// folded), X1=[s4,s5], X2=[s2,s3], X3=[s6,s7]; the steps produce [t0,t1],
// [t2,t3], [t0+t2,t1+t3] and finally (t0+t2)+(t1+t3) in X0 lane 0.
#define SQREDUCE8 \
	VADDPD    X1, X0, X0 \
	VADDPD    X3, X2, X2 \
	VADDPD    X2, X0, X0 \
	VUNPCKHPD X0, X0, X1 \
	VADDSD    X1, X0, X0

// func sqDistPairAVX2(a, b []float64) float64
TEXT ·sqDistPairAVX2(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   a_len+8(FP), DX
	MOVQ   b_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ   CX, CX
	MOVQ   DX, BX
	SUBQ   $8, BX

pairloop:
	CMPQ CX, BX
	JG   pairtail
	SQ8(0, SI, DI, Y0)
	SQ8(32, SI, DI, Y1)
	ADDQ $8, CX
	JMP  pairloop

pairtail:
	VEXTRACTF128 $1, Y0, X2
	VEXTRACTF128 $1, Y1, X3

pairtailloop:
	CMPQ CX, DX
	JGE  pairreduce
	SQTAILSTEP(SI, DI)
	INCQ CX
	JMP  pairtailloop

pairreduce:
	SQREDUCE8
	VMOVSD     X0, ret+48(FP)
	VZEROUPPER
	RET

// func sqDistBlockAVX2(dst, data []float64, stride, dim int, q []float64, ids []int32)
TEXT ·sqDistBlockAVX2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), R14
	MOVQ data_base+24(FP), R15
	MOVQ stride+48(FP), R11
	SHLQ $3, R11                 // stride in bytes
	MOVQ dim+56(FP), DX
	MOVQ q_base+64(FP), SI
	MOVQ ids_base+88(FP), R12
	MOVQ ids_len+96(FP), R13
	MOVQ DX, BX
	SUBQ $8, BX
	XORQ R10, R10                // j

blockrows:
	CMPQ    R10, R13
	JGE     blockdone
	MOVLQSX (R12)(R10*4), DI     // id (int32, sign-extended)
	IMULQ   R11, DI
	ADDQ    R15, DI              // row base
	VXORPD  Y0, Y0, Y0
	VXORPD  Y1, Y1, Y1
	XORQ    CX, CX

blockloop:
	CMPQ CX, BX
	JG   blocktail
	SQ8(0, SI, DI, Y0)
	SQ8(32, SI, DI, Y1)
	ADDQ $8, CX
	JMP  blockloop

blocktail:
	VEXTRACTF128 $1, Y0, X2
	VEXTRACTF128 $1, Y1, X3

blocktailloop:
	CMPQ CX, DX
	JGE  blockreduce
	SQTAILSTEP(SI, DI)
	INCQ CX
	JMP  blocktailloop

blockreduce:
	SQREDUCE8
	VMOVSD X0, (R14)(R10*8)
	INCQ   R10
	JMP    blockrows

blockdone:
	VZEROUPPER
	RET
