// Package vec provides the dense float64 vector math and dataset container
// used by every scheme and index in the library, plus readers and writers for
// the standard ANN-benchmark file formats (fvecs/ivecs/bvecs).
//
// Vectors are plain []float64 slices; the Dataset type stores n vectors of a
// fixed dimension in one flat backing array for cache locality, which is the
// layout proximity-graph search is sensitive to.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dot of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b, the
// distance the paper's dist(p,q) denotes. The call dispatches to the
// active kernel variant (see kernels.go): the scalar reference unrolls
// eight-wide with independent accumulators so the floating-point add chain
// pipelines, and the SIMD variants reproduce its lane structure exactly —
// proximity-graph search evaluates this kernel thousands of times per
// query, making it the dominant term of the filter phase.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: sqdist of mismatched lengths %d and %d", len(a), len(b)))
	}
	return sqDistKernel(a, b)
}

// sqDistKernel is the bounds-check-hoisted body of SqDist. Every caller
// that must produce bit-identical distances (the blocked Dataset scan, the
// frozen-view graph walks) goes through the one dispatched kernel table,
// and every variant in that table reproduces the scalar reference's
// element order, so distances are identical everywhere by construction.
func sqDistKernel(a, b []float64) float64 {
	return activeKernels.Load().sqDist(a, b)
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// SqNorm returns the squared Euclidean norm of a.
func SqNorm(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 { return math.Sqrt(SqNorm(a)) }

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	c := make([]float64, len(a))
	copy(c, a)
	return c
}

// Add stores a+b into dst and returns dst; dst may alias a or b and may be
// nil, in which case a new slice is allocated.
func Add(dst, a, b []float64) []float64 {
	dst = ensure(dst, len(a))
	for i, av := range a {
		dst[i] = av + b[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst, with the same aliasing rules as
// Add.
func Sub(dst, a, b []float64) []float64 {
	dst = ensure(dst, len(a))
	for i, av := range a {
		dst[i] = av - b[i]
	}
	return dst
}

// Mul stores the element-wise (Hadamard) product a◦b into dst and returns
// dst. This is the ◦ operator of the paper's Section IV-A.
func Mul(dst, a, b []float64) []float64 {
	dst = ensure(dst, len(a))
	for i, av := range a {
		dst[i] = av * b[i]
	}
	return dst
}

// Div stores the element-wise quotient a/b into dst and returns dst.
func Div(dst, a, b []float64) []float64 {
	dst = ensure(dst, len(a))
	for i, av := range a {
		dst[i] = av / b[i]
	}
	return dst
}

// Scale stores s·a into dst and returns dst.
func Scale(dst []float64, s float64, a []float64) []float64 {
	dst = ensure(dst, len(a))
	for i, av := range a {
		dst[i] = s * av
	}
	return dst
}

// AXPY stores a + s·x into dst and returns dst.
func AXPY(dst []float64, s float64, x, a []float64) []float64 {
	dst = ensure(dst, len(a))
	for i, av := range a {
		dst[i] = av + s*x[i]
	}
	return dst
}

// Normalize scales a in place to unit Euclidean norm and returns it.
// A zero vector is returned unchanged.
func Normalize(a []float64) []float64 {
	n := Norm(a)
	if n == 0 {
		return a
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return a
}

// ApproxEqual reports whether a and b agree element-wise within tol.
func ApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if math.Abs(av-b[i]) > tol {
			return false
		}
	}
	return true
}

// Ones returns an n-dimensional vector of all ones — the paper's 1_d.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// MaxAbs returns the maximum absolute coordinate across all vectors, the
// quantity M = max_p max_i |p_i| that bounds DCPE's β range.
func MaxAbs(vectors [][]float64) float64 {
	var m float64
	for _, v := range vectors {
		for _, x := range v {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
	}
	return m
}

func ensure(dst []float64, n int) []float64 {
	if dst == nil {
		return make([]float64, n)
	}
	if len(dst) != n {
		panic(fmt.Sprintf("vec: destination length %d, want %d", len(dst), n))
	}
	return dst
}
