//go:build amd64

package vec

import "ppanns/internal/simd"

// The assembly kernels replicate the scalar reference lane-for-lane (see
// kernels.go): two YMM accumulators carry lanes 0..3 and 4..7, the
// remainder folds into lane 0 with scalar VEX ops, and the reduction runs
// the reduce8 tree. No FMA — fused rounding would break bit-identity with
// the reference.

//go:noescape
func sqDistPairAVX2(a, b []float64) float64

//go:noescape
func sqDistBlockAVX2(dst, data []float64, stride, dim int, q []float64, ids []int32)

//go:noescape
func pqScanBlockAVX2(dst []float64, codes []byte, m int, lut []float64, ids []int32)

var _ = func() struct{} {
	if !simd.HasAVX2() {
		return struct{}{}
	}
	return registerKernel(&kernelTable{
		name:        simd.AVX2,
		sqDist:      sqDistPairAVX2,
		sqDistBlock: sqDistBlockAVX2,
		pqScanBlock: pqScanBlockAVX2,
	})
}()
