package vec

// BlockScanner supplies candidate distances for a filter-phase search from
// something other than the index's own stored vectors — in practice a
// per-query PQ asymmetric distance table over the compressed code arena
// (internal/pq.Scanner). It is defined here, at the bottom of the import
// graph, so every index backend can accept one without importing pq.
//
// Ids are in the coordinate space of whoever calls the scanner; adapters
// that renumber (the hnsw gid↔position remap) must wrap the scanner with
// the translation. Implementations must be safe for concurrent use only in
// the sense that distinct Scanner values may run on distinct goroutines;
// one value serves one query at a time.
type BlockScanner interface {
	// DistBlock writes the distance of each id to the prepared query into
	// dst[i] (pre-sized to len(ids) by the caller).
	DistBlock(dst []float64, ids []int32)
	// Dist returns the distance of a single id to the prepared query.
	Dist(id int32) float64
}

// PQScanBlock computes dst[j] = Σ_m lut[m·256 + codes[ids[j]·m + m]] — the
// blocked PQ LUT scan — through the active kernel variant. Every variant
// accumulates each point's M lookups sequentially in subspace order, so
// results are bit-identical across variants. codes must carry the pq
// package's gather slack (the AVX2 variant reads up to three bytes past
// the final referenced code).
func PQScanBlock(dst []float64, codes []byte, m int, lut []float64, ids []int32) {
	activeKernels.Load().pqScanBlock(dst, codes, m, lut, ids)
}

// pqScanBlockScalar is the reference LUT-scan kernel: one sequential
// accumulation per point, in subspace order. The AVX2 variant processes
// four points in independent register lanes but sums each lane in exactly
// this order, so the two cannot drift.
func pqScanBlockScalar(dst []float64, codes []byte, m int, lut []float64, ids []int32) {
	for j, id := range ids {
		base := int(id) * m
		var s float64
		for i := 0; i < m; i++ {
			s += lut[i*256+int(codes[base+i])]
		}
		dst[j] = s
	}
}
