package vec

import "unsafe"

// cacheLineFloats is the padding/alignment quantum of every flat vector
// arena: 64 bytes, i.e. 8 float64s. Row and record strides are rounded up
// to it and arena base addresses aligned to it, so a SIMD kernel's vector
// loads never split a cache line at a row boundary.
const (
	cacheLineBytes  = 64
	cacheLineFloats = cacheLineBytes / 8
)

// PadStride rounds a row length up to the next cache-line multiple — the
// in-memory stride of a padded arena row. The pad floats are kept zero.
func PadStride(n int) int {
	return (n + cacheLineFloats - 1) &^ (cacheLineFloats - 1)
}

// AlignedFloats returns a zeroed []float64 of length n (with any extra
// capacity the alignment slack provides) whose base address is 64-byte
// aligned. Go's allocator only guarantees 16-byte alignment for large
// slices, so the helper over-allocates by up to seven floats and slices
// forward; the Go heap never moves objects, so the alignment holds for the
// slice's lifetime.
func AlignedFloats(n int) []float64 {
	buf := make([]float64, n+cacheLineFloats-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(unsafe.SliceData(buf))) % cacheLineBytes; rem != 0 {
		off = int((cacheLineBytes - rem) / 8)
	}
	return buf[off : off+n]
}

// Aligned reports whether the slice's base address sits on a cache-line
// boundary. Alignment tests use it to pin the arena allocation contract.
func Aligned(s []float64) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))%cacheLineBytes == 0
}
