package vec

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/simd"
)

// kernelTestDims exercises every loop shape: empty, pure tail (1..7), one
// full 8-lane group, group+tail, multiple groups, the paper's padded SIFT
// ctDim neighborhood, and a large odd size.
var kernelTestDims = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 95, 96, 100, 127, 128, 208, 401, 960}

// ulpDiff returns the distance between a and b in units of last place —
// the number of representable float64s strictly between them (0 for equal
// bits, including -0 vs +0 only when compared via bits).
func ulpDiff(a, b float64) uint64 {
	ai, bi := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	// Map the sign-magnitude float ordering onto a monotone integer line.
	if ai < 0 {
		ai = math.MinInt64 - ai
	}
	if bi < 0 {
		bi = math.MinInt64 - bi
	}
	if ai > bi {
		return uint64(ai - bi)
	}
	return uint64(bi - ai)
}

// kernelULPTolerance is the documented per-variant accuracy budget. Every
// variant currently linked reproduces the scalar reference's summation
// order exactly and must match bit-for-bit (0 ULP). A future variant that
// reorders the reduction may claim up to 4 ULP, but must then also pass
// the ranking-invariance check below.
const kernelULPTolerance = 0

func randFloats(r *rng.Rand, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (r.Float64() - 0.5) * scale
	}
	return out
}

// TestKernelVariantsBitIdentical compares every linked variant's pair and
// block kernels against the scalar reference across all loop shapes,
// deliberately misaligned slices, and padded-stride arenas with shuffled,
// duplicated ids.
func TestKernelVariantsBitIdentical(t *testing.T) {
	r := rng.NewSeeded(411)
	for _, k := range kernelVariants {
		if k.name == simd.Scalar {
			continue
		}
		t.Run(k.name, func(t *testing.T) {
			for _, dim := range kernelTestDims {
				for off := 0; off < 4; off++ {
					// Slice at an offset so the data is NOT 32-byte aligned
					// for most off values — the kernels use unaligned loads
					// and must not care.
					a := randFloats(r, dim+off, 2e3)[off:]
					b := randFloats(r, dim+off, 2e3)[off:]
					want := sqDistScalar(a, b)
					got := k.sqDist(a, b)
					if d := ulpDiff(got, want); d > kernelULPTolerance {
						t.Fatalf("sqDist dim=%d off=%d: %v vs scalar %v (%d ULP)", dim, off, got, want, d)
					}
				}
				if dim == 0 {
					continue
				}
				// Block form over a padded arena: stride > dim, ids
				// shuffled with duplicates, including the last row.
				stride := PadStride(dim)
				rows := 17
				data := AlignedFloats(stride * rows)
				for i := range data {
					data[i] = (r.Float64() - 0.5) * 2e3
				}
				q := randFloats(r, dim, 2e3)
				ids := []int32{0, 16, 3, 3, 9, 1, 16, 0, 12, 7}
				want := make([]float64, len(ids))
				got := make([]float64, len(ids))
				sqDistBlockScalar(want, data, stride, dim, q, ids)
				k.sqDistBlock(got, data, stride, dim, q, ids)
				for j := range ids {
					if d := ulpDiff(got[j], want[j]); d > kernelULPTolerance {
						t.Fatalf("sqDistBlock dim=%d id=%d: %v vs scalar %v (%d ULP)", dim, ids[j], got[j], want[j], d)
					}
				}
			}
		})
	}
}

// TestKernelRankingInvariance checks the property the refine phase
// actually depends on: sorting candidates by any variant's distances
// yields the scalar reference's order. With a 0-ULP tolerance this is
// implied, but the check is what a future >0-ULP variant must still pass.
func TestKernelRankingInvariance(t *testing.T) {
	r := rng.NewSeeded(413)
	const dim, rows = 100, 64
	stride := PadStride(dim)
	data := AlignedFloats(stride * rows)
	for i := range data {
		data[i] = (r.Float64() - 0.5) * 10
	}
	q := randFloats(r, dim, 10)
	ids := make([]int32, rows)
	for i := range ids {
		ids[i] = int32(i)
	}
	rank := func(dists []float64) []int32 {
		order := append([]int32(nil), ids...)
		sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
		return order
	}
	want := make([]float64, rows)
	sqDistBlockScalar(want, data, stride, dim, q, ids)
	wantOrder := rank(want)
	for _, k := range kernelVariants {
		got := make([]float64, rows)
		k.sqDistBlock(got, data, stride, dim, q, ids)
		for i, id := range rank(got) {
			if id != wantOrder[i] {
				t.Fatalf("%s: ranking diverges from scalar at position %d", k.name, i)
			}
		}
	}
}

// TestSetKernelDispatch forces each variant through the public dispatch
// surface and confirms SqDist/Dataset.SqDistBlock route to it with
// unchanged results; unknown names must fail without disturbing dispatch.
func TestSetKernelDispatch(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	r := rng.NewSeeded(417)
	a := randFloats(r, 208, 100)
	b := randFloats(r, 208, 100)
	d := NewDataset(100, 8)
	for i := 0; i < 8; i++ {
		d.Append(randFloats(r, 100, 100))
	}
	q := randFloats(r, 100, 100)
	ids := []int32{7, 0, 3, 3, 5}
	wantPair := sqDistScalar(a, b)
	wantBlock := make([]float64, len(ids))
	d.SqDistBlock(wantBlock, q, ids) // whatever is active now; all variants agree
	for _, name := range KernelVariants() {
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		if got := ActiveKernel(); got != name {
			t.Fatalf("ActiveKernel = %q after SetKernel(%q)", got, name)
		}
		if got := SqDist(a, b); got != wantPair {
			t.Fatalf("%s: SqDist %v, want %v", name, got, wantPair)
		}
		gotBlock := make([]float64, len(ids))
		d.SqDistBlock(gotBlock, q, ids)
		for j := range ids {
			if gotBlock[j] != wantBlock[j] {
				t.Fatalf("%s: SqDistBlock[%d] = %v, want %v", name, j, gotBlock[j], wantBlock[j])
			}
		}
	}
	if err := SetKernel("no-such-kernel"); err == nil {
		t.Fatal("SetKernel accepted an unknown variant")
	}
	if ActiveKernel() != KernelVariants()[len(KernelVariants())-1] {
		t.Fatal("failed SetKernel disturbed the active variant")
	}
}

// TestSetKernelConcurrent flips the dispatch pointer while readers hammer
// SqDist — the atomic dispatch must be race-clean (this test exists for
// the -race build) and every observed result must be one all variants
// agree on.
func TestSetKernelConcurrent(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	r := rng.NewSeeded(419)
	a := randFloats(r, 96, 10)
	b := randFloats(r, 96, 10)
	want := sqDistScalar(a, b)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := SqDist(a, b); got != want {
					panic(fmt.Sprintf("dispatch produced %v, want %v", got, want))
				}
			}
		}()
	}
	variants := KernelVariants()
	for i := 0; i < 200; i++ {
		if err := SetKernel(variants[i%len(variants)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestKernelRegistryShape pins the registry invariants the dispatch code
// assumes: scalar first, present exactly once, active variant listed.
func TestKernelRegistryShape(t *testing.T) {
	names := KernelVariants()
	if len(names) == 0 || names[0] != simd.Scalar {
		t.Fatalf("variants = %v, want scalar first", names)
	}
	seen := map[string]bool{}
	active := false
	for _, n := range names {
		if seen[n] {
			t.Fatalf("variant %q registered twice", n)
		}
		seen[n] = true
		if n == ActiveKernel() {
			active = true
		}
	}
	if !active {
		t.Fatalf("active variant %q not in registry %v", ActiveKernel(), names)
	}
	if simd.HasAVX2() && !seen[simd.AVX2] {
		t.Fatal("CPU supports AVX2 but the variant is not registered")
	}
}

// TestDatasetAlignment asserts the layout contract the block kernels and
// the 64-byte satellite rely on: padded stride, cache-line-aligned base,
// and therefore aligned row starts.
func TestDatasetAlignment(t *testing.T) {
	for _, dim := range []int{1, 7, 8, 13, 96, 100, 960} {
		d := NewDataset(dim, 3)
		if d.Stride()%cacheLineFloats != 0 {
			t.Fatalf("dim %d: stride %d not a multiple of %d", dim, d.Stride(), cacheLineFloats)
		}
		if d.Stride() != PadStride(dim) {
			t.Fatalf("dim %d: stride %d, want %d", dim, d.Stride(), PadStride(dim))
		}
		r := rng.NewSeeded(uint64(dim))
		for i := 0; i < 5; i++ {
			d.Append(randFloats(r, dim, 1))
		}
		for i := 0; i < d.Len(); i++ {
			if !Aligned(d.At(i)) {
				t.Fatalf("dim %d: row %d base not 64-byte aligned", dim, i)
			}
		}
	}
	for _, n := range []int{1, 5, 8, 100} {
		if s := AlignedFloats(n); len(s) != n || !Aligned(s) {
			t.Fatalf("AlignedFloats(%d): len %d aligned %v", n, len(s), Aligned(s))
		}
	}
}

// BenchmarkSqDistKernels measures the pair kernel per variant — the
// per-kernel numbers the bench harness's regression gate tracks.
func BenchmarkSqDistKernels(b *testing.B) {
	r := rng.NewSeeded(421)
	for _, dim := range []int{96, 128, 960} {
		a := randFloats(r, dim, 100)
		c := randFloats(r, dim, 100)
		for _, k := range kernelVariants {
			b.Run(fmt.Sprintf("%s/d=%d", k.name, dim), func(b *testing.B) {
				b.ReportAllocs()
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += k.sqDist(a, c)
				}
				_ = sink
			})
		}
	}
}

// BenchmarkSqDistBlockKernels measures the block kernel per variant over a
// padded arena at the filter phase's typical candidate-block size.
func BenchmarkSqDistBlockKernels(b *testing.B) {
	r := rng.NewSeeded(423)
	for _, dim := range []int{96, 960} {
		stride := PadStride(dim)
		const rows = 256
		data := AlignedFloats(stride * rows)
		for i := range data {
			data[i] = r.Float64()
		}
		q := randFloats(r, dim, 1)
		ids := make([]int32, 64)
		for i := range ids {
			ids[i] = int32((i * 37) % rows)
		}
		dst := make([]float64, len(ids))
		for _, k := range kernelVariants {
			b.Run(fmt.Sprintf("%s/d=%d", k.name, dim), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(ids) * dim * 8))
				for i := 0; i < b.N; i++ {
					k.sqDistBlock(dst, data, stride, dim, q, ids)
				}
			})
		}
	}
}
