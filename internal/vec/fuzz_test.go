package vec

import (
	"bytes"
	"testing"
)

// FuzzReadFvecs checks that the fvecs parser never panics and that
// anything it accepts round-trips through WriteFvecs.
func FuzzReadFvecs(f *testing.F) {
	// Seed corpus: a valid two-vector stream, an empty stream, a truncated
	// header and a hostile dimension.
	var valid bytes.Buffer
	if err := WriteFvecs(&valid, DatasetFromSlices([][]float64{{1, 2}, {3, 4}})); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadFvecs(bytes.NewReader(data), 1000)
		if err != nil {
			return // rejected input: fine, as long as there is no panic
		}
		var out bytes.Buffer
		if err := WriteFvecs(&out, ds); err != nil {
			t.Fatalf("accepted dataset failed to re-encode: %v", err)
		}
		ds2, err := ReadFvecs(bytes.NewReader(out.Bytes()), 0)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if ds2.Len() != ds.Len() || ds2.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				ds.Len(), ds.Dim(), ds2.Len(), ds2.Dim())
		}
	})
}

// FuzzReadIvecs checks the ivecs parser for panics.
func FuzzReadIvecs(f *testing.F) {
	f.Add([]byte{2, 0, 0, 0, 7, 0, 0, 0, 8, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadIvecs(bytes.NewReader(data), 1000)
	})
}
