package vec

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzReadFvecs checks that the fvecs parser never panics and that
// anything it accepts round-trips through WriteFvecs.
func FuzzReadFvecs(f *testing.F) {
	// Seed corpus: a valid two-vector stream, an empty stream, a truncated
	// header and a hostile dimension.
	var valid bytes.Buffer
	if err := WriteFvecs(&valid, DatasetFromSlices([][]float64{{1, 2}, {3, 4}})); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadFvecs(bytes.NewReader(data), 1000)
		if err != nil {
			return // rejected input: fine, as long as there is no panic
		}
		var out bytes.Buffer
		if err := WriteFvecs(&out, ds); err != nil {
			t.Fatalf("accepted dataset failed to re-encode: %v", err)
		}
		ds2, err := ReadFvecs(bytes.NewReader(out.Bytes()), 0)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if ds2.Len() != ds.Len() || ds2.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				ds.Len(), ds.Dim(), ds2.Len(), ds2.Dim())
		}
	})
}

// FuzzReadIvecs checks the ivecs parser for panics.
func FuzzReadIvecs(f *testing.F) {
	f.Add([]byte{2, 0, 0, 0, 7, 0, 0, 0, 8, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadIvecs(bytes.NewReader(data), 1000)
	})
}

// fuzzFloats decodes raw bytes into a deterministic float64 slice of
// length n starting at element offset off, replacing NaN with a finite
// stand-in (NaN compares unequal to itself, which would flag every variant
// as "divergent" without testing anything).
func fuzzFloats(data []byte, n, off int) []float64 {
	out := make([]float64, n)
	for i := range out {
		var bits uint64
		for b := 0; b < 8; b++ {
			idx := (off + i) * 8
			if idx+b < len(data) {
				bits |= uint64(data[idx+b]) << (8 * b)
			} else {
				bits |= uint64(off+i+b) << (8 * b) // deterministic filler
			}
		}
		v := math.Float64frombits(bits)
		if math.IsNaN(v) {
			v = float64(i) * 0.5
		}
		out[i] = v
	}
	return out
}

// FuzzSqDistKernelEquivalence feeds arbitrary bit patterns (infinities and
// denormals included), arbitrary lengths and slice offsets to every linked
// kernel variant and requires bit-identical results against the scalar
// reference — the fuzz form of the kernel conformance suite, including the
// padded-stride block path with fuzzer-chosen ids.
func FuzzSqDistKernelEquivalence(f *testing.F) {
	seed := make([]byte, 64)
	binary.LittleEndian.PutUint64(seed, math.Float64bits(1.5))
	f.Add(uint16(13), uint8(1), seed)
	f.Add(uint16(96), uint8(0), []byte{})
	f.Add(uint16(8), uint8(3), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF0, 0x7F}) // +Inf element
	f.Fuzz(func(t *testing.T, dimRaw uint16, offRaw uint8, data []byte) {
		dim := int(dimRaw) % 257
		off := int(offRaw) % 4
		a := fuzzFloats(data, dim+off, 0)[off:]
		b := fuzzFloats(data, dim+off, dim)[off:]
		want := sqDistScalar(a, b)
		wantBits := math.Float64bits(want)
		for _, k := range kernelVariants {
			if got := k.sqDist(a, b); math.Float64bits(got) != wantBits && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s: sqDist(dim=%d off=%d) = %v (%#x), scalar %v (%#x)",
					k.name, dim, off, got, math.Float64bits(got), want, wantBits)
			}
		}
		if dim == 0 {
			return
		}
		// Block path: rows strided through a padded arena, ids derived from
		// the fuzz bytes (duplicates and reorderings included).
		stride := PadStride(dim)
		const rows = 5
		arena := AlignedFloats(stride * rows)
		flat := fuzzFloats(data, dim*rows, 7)
		for r := 0; r < rows; r++ {
			copy(arena[r*stride:r*stride+dim], flat[r*dim:(r+1)*dim])
		}
		ids := make([]int32, 1+len(data)%7)
		for i := range ids {
			if i < len(data) {
				ids[i] = int32(data[i]) % rows
			}
		}
		wantB := make([]float64, len(ids))
		sqDistBlockScalar(wantB, arena, stride, dim, a, ids)
		gotB := make([]float64, len(ids))
		for _, k := range kernelVariants {
			for i := range gotB {
				gotB[i] = 0
			}
			k.sqDistBlock(gotB, arena, stride, dim, a, ids)
			for j := range ids {
				if math.Float64bits(gotB[j]) != math.Float64bits(wantB[j]) && !(math.IsNaN(gotB[j]) && math.IsNaN(wantB[j])) {
					t.Fatalf("%s: sqDistBlock(dim=%d)[%d] = %v, scalar %v", k.name, dim, j, gotB[j], wantB[j])
				}
			}
		}
	})
}
