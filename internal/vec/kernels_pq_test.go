package vec

import (
	"fmt"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/simd"
)

// pqTestMs exercises every loop shape of the LUT scan: one subspace, the
// common 8/16 widths, odd widths, and a wide code.
var pqTestMs = []int{1, 2, 3, 4, 7, 8, 13, 16, 24, 32, 48, 96}

// pqTestCodes builds a code arena of n rows with the gather slack the
// AVX2 variant's dword code loads require.
func pqTestCodes(r *rng.Rand, n, m, k int) []byte {
	codes := make([]byte, n*m, n*m+8)
	for i := range codes {
		codes[i] = byte(r.IntN(k))
	}
	return codes
}

// TestPQScanKernelVariantsBitIdentical compares every linked variant's LUT
// scan against the scalar reference across code widths, id-set shapes
// (including the 4-lane remainder cases), duplicated and shuffled ids, and
// partial-K LUTs.
func TestPQScanKernelVariantsBitIdentical(t *testing.T) {
	r := rng.NewSeeded(977)
	for _, kv := range kernelVariants {
		if kv.name == simd.Scalar {
			continue
		}
		t.Run(kv.name, func(t *testing.T) {
			for _, m := range pqTestMs {
				for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 64, 257} {
					for _, k := range []int{1, 3, 256} {
						codes := pqTestCodes(r, n, m, k)
						lut := randFloats(r, m*256, 2e3)
						ids := make([]int32, 0, 2*n)
						for i := 0; i < n; i++ {
							ids = append(ids, int32(i))
						}
						// Shuffle with duplicates, keeping the last row in
						// play so the over-read lands at the arena's true
						// end.
						for i := 0; i < n/2; i++ {
							ids = append(ids, int32(r.IntN(n)))
						}
						ids = append(ids, int32(n-1))
						r.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
						want := make([]float64, len(ids))
						got := make([]float64, len(ids))
						pqScanBlockScalar(want, codes, m, lut, ids)
						kv.pqScanBlock(got, codes, m, lut, ids)
						for j := range want {
							if d := ulpDiff(got[j], want[j]); d > kernelULPTolerance {
								t.Fatalf("m=%d n=%d k=%d id=%d: %v vs scalar %v (%d ULP)",
									m, n, k, ids[j], got[j], want[j], d)
							}
						}
					}
				}
			}
		})
	}
}

// BenchmarkPQScanBlockKernels benchmarks the LUT scan per linked variant
// at a realistic shape: 64-id blocks over a 100k-point arena at M=16.
func BenchmarkPQScanBlockKernels(b *testing.B) {
	r := rng.NewSeeded(31)
	const n, m = 100000, 16
	codes := pqTestCodes(r, n, m, 256)
	lut := randFloats(r, m*256, 2e3)
	ids := make([]int32, 64)
	for i := range ids {
		ids[i] = int32(r.IntN(n))
	}
	dst := make([]float64, len(ids))
	for _, kv := range kernelVariants {
		b.Run(fmt.Sprintf("variant=%s", kv.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kv.pqScanBlock(dst, codes, m, lut, ids)
			}
		})
	}
}
