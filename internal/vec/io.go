package vec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// The fvecs/ivecs/bvecs formats used by the standard ANN benchmark corpora
// (Sift1M, Gist, Deep1B, ...) store each vector as a little-endian int32
// dimension header followed by dim elements (float32, int32 or uint8).
// These readers let the experiment harness consume the real corpora when
// they are available; the synthetic generators in internal/dataset are the
// offline substitute.

// ReadFvecs parses an fvecs stream into a Dataset, converting float32
// elements to float64. maxVectors <= 0 means read everything.
func ReadFvecs(r io.Reader, maxVectors int) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var ds *Dataset
	for n := 0; maxVectors <= 0 || n < maxVectors; n++ {
		dim, err := readDimHeader(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("vec: fvecs vector %d: %w", n, err)
		}
		if ds == nil {
			ds = NewDataset(dim, 1024)
		} else if dim != ds.Dim() {
			return nil, fmt.Errorf("vec: fvecs vector %d has dim %d, want %d", n, dim, ds.Dim())
		}
		_, row := ds.AppendZero()
		buf := make([]byte, 4*dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vec: fvecs vector %d body: %w", n, err)
		}
		for i := 0; i < dim; i++ {
			row[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	if ds == nil {
		return nil, fmt.Errorf("vec: empty fvecs stream")
	}
	return ds, nil
}

// ReadBvecs parses a bvecs stream (uint8 elements) into a Dataset.
// maxVectors <= 0 means read everything.
func ReadBvecs(r io.Reader, maxVectors int) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var ds *Dataset
	for n := 0; maxVectors <= 0 || n < maxVectors; n++ {
		dim, err := readDimHeader(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("vec: bvecs vector %d: %w", n, err)
		}
		if ds == nil {
			ds = NewDataset(dim, 1024)
		} else if dim != ds.Dim() {
			return nil, fmt.Errorf("vec: bvecs vector %d has dim %d, want %d", n, dim, ds.Dim())
		}
		_, row := ds.AppendZero()
		buf := make([]byte, dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vec: bvecs vector %d body: %w", n, err)
		}
		for i := 0; i < dim; i++ {
			row[i] = float64(buf[i])
		}
	}
	if ds == nil {
		return nil, fmt.Errorf("vec: empty bvecs stream")
	}
	return ds, nil
}

// ReadIvecs parses an ivecs stream (int32 elements), the format the
// benchmark corpora use for ground-truth neighbor lists.
// maxVectors <= 0 means read everything.
func ReadIvecs(r io.Reader, maxVectors int) ([][]int32, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var out [][]int32
	for n := 0; maxVectors <= 0 || n < maxVectors; n++ {
		dim, err := readDimHeader(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("vec: ivecs vector %d: %w", n, err)
		}
		row := make([]int32, dim)
		buf := make([]byte, 4*dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vec: ivecs vector %d body: %w", n, err)
		}
		for i := 0; i < dim; i++ {
			row[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteFvecs writes the dataset in fvecs format (float64 narrowed to
// float32).
func WriteFvecs(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := make([]byte, 4)
	buf := make([]byte, 4*ds.Dim())
	for i := 0; i < ds.Len(); i++ {
		binary.LittleEndian.PutUint32(hdr, uint32(ds.Dim()))
		if _, err := bw.Write(hdr); err != nil {
			return fmt.Errorf("vec: writing fvecs header: %w", err)
		}
		row := ds.At(i)
		for j, v := range row {
			binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(float32(v)))
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("vec: writing fvecs body: %w", err)
		}
	}
	return bw.Flush()
}

// LoadFvecsFile reads an fvecs file from disk.
func LoadFvecsFile(path string, maxVectors int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f, maxVectors)
}

func readDimHeader(br *bufio.Reader) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("vec: truncated dimension header")
		}
		return 0, err
	}
	dim := int(int32(binary.LittleEndian.Uint32(hdr[:])))
	if dim <= 0 || dim > 1<<20 {
		return 0, fmt.Errorf("vec: implausible vector dimension %d", dim)
	}
	return dim, nil
}
