//go:build !amd64

package vec

// Non-amd64 builds dispatch only the portable scalar reference; a NEON
// variant registers itself here when one lands. The dispatch table, the
// PPANNS_KERNEL override and the equivalence suite all apply unchanged.
