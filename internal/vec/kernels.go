package vec

import (
	"fmt"
	"sync/atomic"

	"ppanns/internal/simd"
)

// kernelTable is one dispatch variant of the vec distance kernels. Every
// variant MUST evaluate element-for-element in the same order as the scalar
// reference below: eight independent accumulator lanes (lane = i mod 8), a
// sequential remainder folded into lane 0, and the reduce8 combination
// tree. That makes every variant bit-identical to the reference — callers
// that freeze distances into graphs or compare results across machines
// never observe a dispatch-dependent float.
type kernelTable struct {
	name   string
	sqDist func(a, b []float64) float64
	// sqDistBlock computes dst[j] = sqDist(q, row(ids[j])) over a flat
	// arena with the given row stride (in float64s) and logical row length
	// dim. dst is pre-sized to len(ids) by the caller.
	sqDistBlock func(dst, data []float64, stride, dim int, q []float64, ids []int32)
	// pqScanBlock computes dst[j] = Σ_i lut[i·256 + codes[ids[j]·m + i]] —
	// the PQ asymmetric-distance-table scan (see scanner.go). dst is
	// pre-sized; codes carries the pq gather slack.
	pqScanBlock func(dst []float64, codes []byte, m int, lut []float64, ids []int32)
}

var scalarKernelTable = kernelTable{
	name:        simd.Scalar,
	sqDist:      sqDistScalar,
	sqDistBlock: sqDistBlockScalar,
	pqScanBlock: pqScanBlockScalar,
}

// kernelVariants holds every variant linked into this binary, scalar first.
// Arch-specific files append to it via registerKernel in a package-level
// var initializer, which Go runs before any init() function — so the
// selection in init() below always sees the full set.
var kernelVariants = []*kernelTable{&scalarKernelTable}

func registerKernel(k *kernelTable) struct{} {
	kernelVariants = append(kernelVariants, k)
	return struct{}{}
}

// activeKernels is the dispatch pointer every SqDist/SqDistBlock call loads.
// An atomic pointer (a plain MOV on amd64) rather than a func var, so tests
// and benchmarks can force a variant at runtime without racing concurrent
// searches; every variant computes bit-identical results, so a mid-search
// swap is observationally safe.
var activeKernels atomic.Pointer[kernelTable]

func init() {
	if err := SetKernel(simd.Pick()); err != nil {
		activeKernels.Store(&scalarKernelTable)
	}
}

// KernelVariants lists the kernel variant names linked into this binary and
// usable on this machine, scalar first.
func KernelVariants() []string {
	out := make([]string, len(kernelVariants))
	for i, k := range kernelVariants {
		out[i] = k.name
	}
	return out
}

// ActiveKernel returns the name of the currently dispatched variant.
func ActiveKernel() string { return activeKernels.Load().name }

// SetKernel activates the named kernel variant for every subsequent vec
// distance call. It is the runtime form of the PPANNS_KERNEL environment
// override; tests and the per-kernel benchmarks use it to pin a variant.
func SetKernel(name string) error {
	for _, k := range kernelVariants {
		if k.name == name {
			activeKernels.Store(k)
			return nil
		}
	}
	return fmt.Errorf("vec: unknown or unavailable kernel %q (have %v)", name, KernelVariants())
}

// reduce8 combines the eight accumulator lanes with the fixed association
// every variant reproduces: the two four-lane halves are added pairwise
// (t_i = s_i + s_{i+4}; AVX2's single VADDPD of its two accumulator
// registers), then folded (t0+t2)+(t1+t3) (the 128-bit extract/unpack
// ladder). Changing this order changes results by an ULP or two — keep the
// assembly and this function in lockstep.
func reduce8(s0, s1, s2, s3, s4, s5, s6, s7 float64) float64 {
	t0 := s0 + s4
	t1 := s1 + s5
	t2 := s2 + s6
	t3 := s3 + s7
	return (t0 + t2) + (t1 + t3)
}

// sqDistTail is the one scalar remainder loop shared by every squared-
// distance path (it used to be duplicated between SqDist and SqDistBlock):
// elements i..len(a)-1 fold sequentially into the lane-0 accumulator. The
// AVX2 assembly reproduces exactly this loop on its lane-0 scalar register,
// so variants cannot drift on odd dimensions.
func sqDistTail(s0 float64, a, b []float64, i int) float64 {
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0
}

// sqDistScalar is the reference squared-distance kernel: eight-wide
// unrolling with independent accumulators so the floating-point add chains
// pipeline (and so the lane structure matches a two-register AVX2 loop
// bit-for-bit).
func sqDistScalar(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		d4 := a[i+4] - b[i+4]
		d5 := a[i+5] - b[i+5]
		d6 := a[i+6] - b[i+6]
		d7 := a[i+7] - b[i+7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		s4 += d4 * d4
		s5 += d5 * d5
		s6 += d6 * d6
		s7 += d7 * d7
	}
	s0 = sqDistTail(s0, a, b, i)
	return reduce8(s0, s1, s2, s3, s4, s5, s6, s7)
}

// sqDistBlockScalar evaluates the block through the pair reference, so the
// scalar pair and block paths cannot diverge by construction.
func sqDistBlockScalar(dst, data []float64, stride, dim int, q []float64, ids []int32) {
	for j, id := range ids {
		row := data[int(id)*stride : int(id)*stride+dim]
		dst[j] = sqDistScalar(q, row)
	}
}
