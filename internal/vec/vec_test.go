package vec

import (
	"math"
	"testing"
	"testing/quick"

	"ppanns/internal/rng"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSqDistMatchesExpansion(t *testing.T) {
	r := rng.NewSeeded(1)
	// dist(p,q) = ||p||² − 2pᵀq + ||q||², the identity DCE relies on.
	f := func(seed uint64) bool {
		rr := rng.NewSeeded(seed)
		p := rng.Gaussian(rr, nil, 24)
		q := rng.Gaussian(rr, nil, 24)
		lhs := SqDist(p, q)
		rhs := SqNorm(p) - 2*Dot(p, q) + SqNorm(q)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestDistAndNorm(t *testing.T) {
	a := []float64{3, 4}
	if got := Norm(a); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Dist(a, []float64{0, 0}); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Add(nil, a, b); !ApproxEqual(got, []float64{5, 7, 9}, 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(nil, a, b); !ApproxEqual(got, []float64{-3, -3, -3}, 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(nil, a, b); !ApproxEqual(got, []float64{4, 10, 18}, 0) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(nil, b, a); !ApproxEqual(got, []float64{4, 2.5, 2}, 0) {
		t.Fatalf("Div = %v", got)
	}
	if got := Scale(nil, 2, a); !ApproxEqual(got, []float64{2, 4, 6}, 0) {
		t.Fatalf("Scale = %v", got)
	}
	if got := AXPY(nil, 2, a, b); !ApproxEqual(got, []float64{6, 9, 12}, 0) {
		t.Fatalf("AXPY = %v", got)
	}
}

func TestHadamardIdentity6(t *testing.T) {
	// Equation 6 of the paper: 2a+2b = (a+1)◦(b+1) − (a−1)◦(b−1).
	r := rng.NewSeeded(2)
	for trial := 0; trial < 100; trial++ {
		n := 17
		a := rng.Gaussian(r, nil, n)
		b := rng.Gaussian(r, nil, n)
		ones := Ones(n)
		lhs := Add(nil, Scale(nil, 2, a), Scale(nil, 2, b))
		rhs := Sub(nil,
			Mul(nil, Add(nil, a, ones), Add(nil, b, ones)),
			Mul(nil, Sub(nil, a, ones), Sub(nil, b, ones)))
		if !ApproxEqual(lhs, rhs, 1e-12) {
			t.Fatalf("identity (6) violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestHadamardIdentity7(t *testing.T) {
	// Equation 7 of the paper: (a◦b)/(c◦d) = (a/c)◦(b/d).
	r := rng.NewSeeded(3)
	for trial := 0; trial < 100; trial++ {
		n := 9
		a := rng.Gaussian(r, nil, n)
		b := rng.Gaussian(r, nil, n)
		c := make([]float64, n)
		d := make([]float64, n)
		for i := range c {
			c[i] = rng.UniformNonZero(r, 0.5, 2)
			d[i] = rng.UniformNonZero(r, 0.5, 2)
		}
		lhs := Div(nil, Mul(nil, a, b), Mul(nil, c, d))
		rhs := Mul(nil, Div(nil, a, c), Div(nil, b, d))
		if !ApproxEqual(lhs, rhs, 1e-12) {
			t.Fatalf("identity (7) violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 0, 4}
	Normalize(v)
	if math.Abs(Norm(v)-1) > 1e-15 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector changed by Normalize")
	}
}

func TestMaxAbs(t *testing.T) {
	vs := [][]float64{{1, -7, 2}, {3, 4, -5}}
	if got := MaxAbs(vs); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

func TestAliasedDst(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	got := Add(a, a, b) // dst aliases a
	if &got[0] != &a[0] || !ApproxEqual(a, []float64{5, 7, 9}, 0) {
		t.Fatalf("aliased Add = %v", a)
	}
}

// referenceSqDist is the straight-line accumulation SqDist had before the
// unrolled kernel, kept as the semantic reference.
func referenceSqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

func TestSqDistMatchesReferenceAssociation(t *testing.T) {
	// The unrolled kernel may associate differently from the straight-line
	// loop, but must stay within a few ULPs of it across dims that cover
	// every unroll tail (0..3 leftover elements).
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 96, 97} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64((i*2654435761)%1000)/997 - 0.5
			b[i] = float64((i*40503+17)%1000)/991 - 0.5
		}
		got := SqDist(a, b)
		want := referenceSqDist(a, b)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("n=%d: SqDist = %v, reference = %v", n, got, want)
		}
	}
}

func TestSqDistBlockBitIdentical(t *testing.T) {
	for _, dim := range []int{1, 3, 4, 31, 96} {
		ds := NewDataset(dim, 8)
		for r := 0; r < 8; r++ {
			v := make([]float64, dim)
			for i := range v {
				v[i] = float64((r*1315423911+i*2654435761)%2048)/2047 - 0.5
			}
			ds.Append(v)
		}
		q := make([]float64, dim)
		for i := range q {
			q[i] = float64((i*97+13)%512)/511 - 0.5
		}
		ids := []int32{7, 0, 3, 3, 5}
		dst := ds.SqDistBlock(nil, q, ids)
		if len(dst) != len(ids) {
			t.Fatalf("dim=%d: block returned %d results for %d ids", dim, len(dst), len(ids))
		}
		for j, id := range ids {
			if want := SqDist(q, ds.At(int(id))); dst[j] != want {
				t.Fatalf("dim=%d id=%d: block = %v, scalar = %v (must be bit-identical)", dim, id, dst[j], want)
			}
		}
		// Capacity reuse: a recycled dst must not reallocate.
		dst2 := ds.SqDistBlock(dst[:0], q, ids[:2])
		if &dst2[0] != &dst[0] {
			t.Fatal("SqDistBlock reallocated despite sufficient capacity")
		}
	}
}

func TestSqDistBlockDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDataset(3, 1).SqDistBlock(nil, []float64{1, 2}, nil)
}
