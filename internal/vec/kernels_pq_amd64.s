//go:build amd64

#include "textflag.h"

// AVX2 PQ LUT-scan kernel. The scalar reference (scanner.go) accumulates
// each point's M table lookups sequentially in subspace order. This
// variant processes four points at once — one per 64-bit lane of the Y0
// accumulator — but each lane still sums sequentially over the subspaces,
// so the per-point addition order (and therefore every bit of the result)
// matches the reference exactly. There is no reduction tree: nothing is
// ever combined across lanes.
//
// Per subspace i the four code bytes live at codes[id·m + i]: a VPGATHERDD
// over dword loads at base codes+i with indices id·m, masked to the low
// byte (the gather reads up to three bytes past the last code — the pq
// arena's gather slack guarantees those bytes are mapped). The four LUT
// values are then a VGATHERQPD from the subspace's 256-entry row.
//
// Gather masks are consumed by the instruction, so the all-ones constant
// lives in Y13 and is copied to a working register before every gather.
//
// Constants: Y13 = all-ones, X14 = m broadcast (dword), X15 = 0xFF
// broadcast (dword).

// func pqScanBlockAVX2(dst []float64, codes []byte, m int, lut []float64, ids []int32)
TEXT ·pqScanBlockAVX2(SB), NOSPLIT, $0-104
	MOVQ         dst_base+0(FP), R14
	MOVQ         codes_base+24(FP), R15
	MOVQ         m+48(FP), R11
	MOVQ         lut_base+56(FP), R9
	MOVQ         ids_base+80(FP), R12
	MOVQ         ids_len+88(FP), R13
	VPCMPEQD     Y13, Y13, Y13
	VPCMPEQD     X15, X15, X15
	VPSRLD       $24, X15, X15
	VPBROADCASTD m+48(FP), X14
	XORQ         R10, R10           // point index
	MOVQ         R13, AX
	SUBQ         $4, AX             // last index with a full 4-point group

quadloop:
	CMPQ     R10, AX
	JG       rem
	VMOVDQU  (R12)(R10*4), X4       // four ids
	VPMULLD  X14, X4, X4            // byte offsets id·m
	VXORPD   Y0, Y0, Y0
	MOVQ     R15, DI                // &codes[i]
	MOVQ     R9, BX                 // &lut[i·256]
	XORQ     CX, CX                 // subspace i

quadsub:
	CMPQ       CX, R11
	JGE        quadstore
	VMOVDQA    X13, X5
	VPGATHERDD X5, (DI)(X4*1), X6   // dword loads at codes[i + id·m]
	VPAND      X15, X6, X6          // keep the code byte
	VPMOVZXDQ  X6, Y6
	VMOVDQA    Y13, Y5
	VGATHERQPD Y5, (BX)(Y6*8), Y8   // lut[i·256 + code]
	VADDPD     Y8, Y0, Y0
	INCQ       DI
	ADDQ       $2048, BX            // next 256-entry LUT row
	INCQ       CX
	JMP        quadsub

quadstore:
	VMOVUPD Y0, (R14)
	ADDQ    $32, R14
	ADDQ    $4, R10
	JMP     quadloop

// Remainder points one at a time: the same sequential per-point sum with
// scalar loads.
rem:
	CMPQ    R10, R13
	JGE     done
	MOVLQSX (R12)(R10*4), DI
	IMULQ   R11, DI
	ADDQ    R15, DI                 // &codes[id·m]
	MOVQ    R9, BX
	VXORPD  X0, X0, X0
	XORQ    CX, CX

remsub:
	CMPQ    CX, R11
	JGE     remstore
	MOVBLZX (DI)(CX*1), DX
	VMOVSD  (BX)(DX*8), X6
	VADDSD  X6, X0, X0
	ADDQ    $2048, BX
	INCQ    CX
	JMP     remsub

remstore:
	VMOVSD X0, (R14)
	ADDQ   $8, R14
	INCQ   R10
	JMP    rem

done:
	VZEROUPPER
	RET
