package vec

import (
	"bytes"
	"testing"
)

func TestDatasetBasics(t *testing.T) {
	ds := NewDataset(3, 4)
	if ds.Dim() != 3 || ds.Len() != 0 {
		t.Fatalf("fresh dataset dim=%d len=%d", ds.Dim(), ds.Len())
	}
	i := ds.Append([]float64{1, 2, 3})
	j := ds.Append([]float64{4, 5, 6})
	if i != 0 || j != 1 || ds.Len() != 2 {
		t.Fatalf("append indices %d %d len %d", i, j, ds.Len())
	}
	if !ApproxEqual(ds.At(1), []float64{4, 5, 6}, 0) {
		t.Fatalf("At(1) = %v", ds.At(1))
	}
}

func TestDatasetAppendZero(t *testing.T) {
	ds := NewDataset(2, 1)
	idx, row := ds.AppendZero()
	row[0], row[1] = 9, 8
	if idx != 0 || !ApproxEqual(ds.At(0), []float64{9, 8}, 0) {
		t.Fatalf("AppendZero row not writable in place: %v", ds.At(0))
	}
}

func TestDatasetDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDataset(3, 1).Append([]float64{1})
}

func TestDatasetFromSlicesAndClone(t *testing.T) {
	ds := DatasetFromSlices([][]float64{{1, 2}, {3, 4}})
	c := ds.Clone()
	c.At(0)[0] = 99
	if ds.At(0)[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
	views := ds.Slices()
	if len(views) != 2 || views[1][1] != 4 {
		t.Fatalf("Slices = %v", views)
	}
}

func TestDatasetFromRaw(t *testing.T) {
	ds, err := DatasetFromRaw(2, []float64{1, 2, 3, 4})
	if err != nil || ds.Len() != 2 {
		t.Fatalf("DatasetFromRaw: %v, len %d", err, ds.Len())
	}
	if _, err := DatasetFromRaw(3, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("expected error for mismatched raw length")
	}
	if _, err := DatasetFromRaw(0, nil); err == nil {
		t.Fatal("expected error for zero dim")
	}
}

func TestFvecsRoundTrip(t *testing.T) {
	ds := DatasetFromSlices([][]float64{{1.5, -2.25, 3}, {0, 7.5, -1}})
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Dim() != 3 {
		t.Fatalf("round trip shape %dx%d", got.Len(), got.Dim())
	}
	for i := 0; i < 2; i++ {
		if !ApproxEqual(got.At(i), ds.At(i), 1e-6) {
			t.Fatalf("row %d = %v, want %v", i, got.At(i), ds.At(i))
		}
	}
}

func TestFvecsMaxVectors(t *testing.T) {
	ds := DatasetFromSlices([][]float64{{1}, {2}, {3}})
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("maxVectors ignored: len %d", got.Len())
	}
}

func TestFvecsTruncated(t *testing.T) {
	ds := DatasetFromSlices([][]float64{{1, 2, 3}})
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFvecs(bytes.NewReader(raw), 0); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestFvecsEmpty(t *testing.T) {
	if _, err := ReadFvecs(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestIvecsRoundTripManual(t *testing.T) {
	// 2 vectors of dim 2: [7,8] and [9,10].
	raw := []byte{
		2, 0, 0, 0, 7, 0, 0, 0, 8, 0, 0, 0,
		2, 0, 0, 0, 9, 0, 0, 0, 10, 0, 0, 0,
	}
	got, err := ReadIvecs(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0] != 7 || got[1][1] != 10 {
		t.Fatalf("ReadIvecs = %v", got)
	}
}

func TestBvecs(t *testing.T) {
	raw := []byte{3, 0, 0, 0, 1, 2, 255}
	got, err := ReadBvecs(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !ApproxEqual(got.At(0), []float64{1, 2, 255}, 0) {
		t.Fatalf("ReadBvecs = %v", got.At(0))
	}
}

func TestBadDimHeader(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF} // dim = -1
	if _, err := ReadFvecs(bytes.NewReader(raw), 0); err == nil {
		t.Fatal("expected error for negative dimension")
	}
}
