// Package epochset provides the epoch-stamped visited-id set every graph
// and hash search shares. Instead of clearing a boolean table between
// searches (O(n) per query), each round stamps visited ids with the
// current epoch and a lookup compares stamps; clearing happens only when
// the uint32 epoch wraps, so a stale stamp can never alias a fresh round.
// The subtle wrap-around invariant lives here once instead of being
// copy-pasted into every search context.
package epochset

// Set is a reusable visited-id set over dense non-negative ids. The zero
// value is ready for use after Grow.
type Set struct {
	tags  []uint32
	epoch uint32
}

// Grow ensures ids 0..n-1 are addressable, with slack so steady growth
// does not reallocate per call. A reallocation resets all stamps (the
// fresh table is all-zero, which no live epoch equals after Next).
func (s *Set) Grow(n int) {
	if len(s.tags) < n {
		s.tags = make([]uint32, n+n/2+16)
		s.epoch = 0
	}
}

// Next starts a fresh visit round. On epoch wrap the table is cleared so
// stamps from 2³²−1 rounds ago cannot alias the new epoch.
func (s *Set) Next() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.tags {
			s.tags[i] = 0
		}
		s.epoch = 1
	}
}

// Seen reports whether id was already visited this round, marking it
// visited either way.
func (s *Set) Seen(id int) bool {
	if s.tags[id] == s.epoch {
		return true
	}
	s.tags[id] = s.epoch
	return false
}
