package epochset

import "testing"

func TestSeenPerRound(t *testing.T) {
	var s Set
	s.Grow(8)
	s.Next()
	if s.Seen(3) {
		t.Fatal("fresh id reported seen")
	}
	if !s.Seen(3) {
		t.Fatal("repeat id not reported seen")
	}
	s.Next()
	if s.Seen(3) {
		t.Fatal("stamp leaked across rounds")
	}
}

func TestGrowPreservesCorrectness(t *testing.T) {
	var s Set
	s.Grow(4)
	s.Next()
	s.Seen(2)
	s.Grow(100) // reallocates; all stamps reset, epoch restarts
	s.Next()
	if s.Seen(2) || s.Seen(99) {
		t.Fatal("grown set reported unvisited ids as seen")
	}
	if !s.Seen(99) {
		t.Fatal("grown set lost a fresh stamp")
	}
}

func TestEpochWrapClearsTable(t *testing.T) {
	var s Set
	s.Grow(4)
	s.Next()
	s.Seen(1)
	s.epoch = ^uint32(0) // force the wrap on the next round
	s.tags[2] = ^uint32(0)
	s.Next()
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	if s.Seen(2) {
		t.Fatal("stale max-epoch stamp aliased the fresh epoch")
	}
}
