package core

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"ppanns/internal/dce"
	"ppanns/internal/dcpe"
	"ppanns/internal/index"
)

// UserKey serialization rides on gob: the DCE and SAP keys implement
// encoding.BinaryMarshaler. AME keys are a benchmark-only artifact and are
// not shipped (a deployment running the HNSW-AME baseline regenerates them
// in place).

type userKeyWire struct {
	DCE []byte
	SAP []byte
}

// SaveUserKey writes the user's key material (Figure 1 step 0) to w.
func SaveUserKey(w io.Writer, k *UserKey) error {
	if k == nil || k.DCE == nil || k.SAP == nil {
		return fmt.Errorf("core: incomplete user key")
	}
	dceBytes, err := k.DCE.MarshalBinary()
	if err != nil {
		return err
	}
	sapBytes, err := k.SAP.MarshalBinary()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(userKeyWire{DCE: dceBytes, SAP: sapBytes})
}

// LoadUserKey reads key material written by SaveUserKey.
func LoadUserKey(r io.Reader) (*UserKey, error) {
	var wire userKeyWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding user key: %w", err)
	}
	k := &UserKey{DCE: new(dce.Key), SAP: new(dcpe.Key)}
	if err := k.DCE.UnmarshalBinary(wire.DCE); err != nil {
		return nil, err
	}
	if err := k.SAP.UnmarshalBinary(wire.SAP); err != nil {
		return nil, err
	}
	return k, nil
}

// Format history: PPANNSD2 stored a bare HNSW graph plus the id mapping;
// PPANNSD3 prefixes a backend tag so saved databases round-trip any
// registered index backend, whose payload is self-describing.
const (
	edbMagic       = "PPANNSD3"
	edbMagicLegacy = "PPANNSD2"
)

// Save writes the encrypted database (backend tag, DCE ciphertexts, index
// payload) in a binary format. Every ciphertext record carries a CRC32 so
// storage corruption is detected at load time instead of silently flipping
// comparison results. AME ciphertexts, when present, are not persisted.
func (e *EncryptedDatabase) Save(w io.Writer) error {
	backend := e.Backend
	if backend == "" {
		backend = index.Default
	}
	if len(backend) > 255 {
		return fmt.Errorf("core: backend name %q too long", backend)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(edbMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(len(backend))); err != nil {
		return err
	}
	if _, err := bw.WriteString(backend); err != nil {
		return err
	}
	n := len(e.DCE)
	ctDim := e.ctDim()
	for _, v := range []int64{int64(e.Dim), int64(n), int64(ctDim)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	record := make([]byte, 4*ctDim*8)
	for i, ct := range e.DCE {
		present := byte(1)
		if ct == nil {
			present = 0
		}
		if err := bw.WriteByte(present); err != nil {
			return err
		}
		if ct == nil {
			continue
		}
		off := 0
		for _, comp := range [][]float64{ct.P1, ct.P2, ct.P3, ct.P4} {
			if len(comp) != ctDim {
				return fmt.Errorf("core: ciphertext %d has component length %d, want %d", i, len(comp), ctDim)
			}
			for _, f := range comp {
				binary.LittleEndian.PutUint64(record[off:], math.Float64bits(f))
				off += 8
			}
		}
		if _, err := bw.Write(record); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(record)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return e.Index.Save(w)
}

// LoadEncryptedDatabase reads a database written by Save.
func LoadEncryptedDatabase(r io.Reader) (*EncryptedDatabase, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(edbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) == edbMagicLegacy {
		return nil, fmt.Errorf("core: legacy %s database; re-encrypt with this version to add the backend tag", edbMagicLegacy)
	}
	if string(magic) != edbMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("core: reading backend tag: %w", err)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("core: reading backend tag: %w", err)
	}
	backend := string(nameBytes)
	if _, err := index.Lookup(backend); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var head [3]int64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, err
		}
	}
	dim, n, ctDim := int(head[0]), int(head[1]), int(head[2])
	if dim <= 0 || n <= 0 || ctDim <= 0 {
		return nil, fmt.Errorf("core: implausible header dim=%d n=%d ctDim=%d", dim, n, ctDim)
	}
	e := &EncryptedDatabase{Dim: dim, Backend: backend, DCE: make([]*dce.Ciphertext, n)}
	record := make([]byte, 4*ctDim*8)
	for i := 0; i < n; i++ {
		present, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d: %w", i, err)
		}
		if present == 0 {
			continue
		}
		if _, err := io.ReadFull(br, record); err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d: %w", i, err)
		}
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d checksum: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(record); got != stored {
			return nil, fmt.Errorf("core: ciphertext %d corrupted (crc %08x, want %08x)", i, got, stored)
		}
		ct := &dce.Ciphertext{
			P1: make([]float64, ctDim), P2: make([]float64, ctDim),
			P3: make([]float64, ctDim), P4: make([]float64, ctDim),
		}
		off := 0
		for _, comp := range [][]float64{ct.P1, ct.P2, ct.P3, ct.P4} {
			for j := range comp {
				comp[j] = math.Float64frombits(binary.LittleEndian.Uint64(record[off:]))
				off += 8
			}
		}
		e.DCE[i] = ct
	}
	idx, err := index.Load(backend, br)
	if err != nil {
		return nil, fmt.Errorf("core: loading %s index: %w", backend, err)
	}
	// Cross-check the index against the ciphertext section so corruption
	// that survives both payloads' own checks still fails at load time
	// instead of as an out-of-range id during a query.
	if idx.Dim() != dim {
		return nil, fmt.Errorf("core: index dimension %d does not match database dimension %d", idx.Dim(), dim)
	}
	live := 0
	for _, ct := range e.DCE {
		if ct != nil {
			live++
		}
	}
	if idx.Len() != live {
		return nil, fmt.Errorf("core: index holds %d live vectors, ciphertext store %d", idx.Len(), live)
	}
	e.Index = idx
	return e, nil
}
