package core

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"ppanns/internal/dce"
	"ppanns/internal/dcpe"
	"ppanns/internal/index"
	"ppanns/internal/pq"
)

// UserKey serialization rides on gob: the DCE and SAP keys implement
// encoding.BinaryMarshaler. AME keys are a benchmark-only artifact and are
// not shipped (a deployment running the HNSW-AME baseline regenerates them
// in place).

type userKeyWire struct {
	DCE []byte
	SAP []byte
}

// SaveUserKey writes the user's key material (Figure 1 step 0) to w.
func SaveUserKey(w io.Writer, k *UserKey) error {
	if k == nil || k.DCE == nil || k.SAP == nil {
		return fmt.Errorf("core: incomplete user key")
	}
	dceBytes, err := k.DCE.MarshalBinary()
	if err != nil {
		return err
	}
	sapBytes, err := k.SAP.MarshalBinary()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(userKeyWire{DCE: dceBytes, SAP: sapBytes})
}

// LoadUserKey reads key material written by SaveUserKey.
func LoadUserKey(r io.Reader) (*UserKey, error) {
	var wire userKeyWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding user key: %w", err)
	}
	k := &UserKey{DCE: new(dce.Key), SAP: new(dcpe.Key)}
	if err := k.DCE.UnmarshalBinary(wire.DCE); err != nil {
		return nil, err
	}
	if err := k.SAP.UnmarshalBinary(wire.SAP); err != nil {
		return nil, err
	}
	return k, nil
}

// Format history: PPANNSD2 stored a bare HNSW graph plus the id mapping;
// PPANNSD3 prefixes a backend tag so saved databases round-trip any
// registered index backend, whose payload is self-describing, and stores
// one CRC-framed record per ciphertext; PPANNSD4 stores the ciphertext
// arena in bulk — a presence bitmap followed by the flat float array under
// a single streaming CRC32 — matching the in-memory CiphertextStore so
// loading is one contiguous read instead of n pointer-chased records;
// PPANNSD5 appends a PQ-presence flag byte after the arena checksum,
// followed by the self-framing PQSTORE1 section when the database carries
// a compressed filter tier. Older files load with PQ absent (rebuild on
// demand via BuildPQ).
const (
	edbMagic       = "PPANNSD5"
	edbMagicV4     = "PPANNSD4"
	edbMagicV3     = "PPANNSD3"
	edbMagicLegacy = "PPANNSD2"
)

// serializeChunk is the staging-buffer size (in float64s) for bulk arena
// I/O: large enough to amortize the encode loop, small enough to stay
// cache-resident.
const serializeChunk = 8192

// Save writes the encrypted database (backend tag, DCE ciphertext arena,
// index payload) in the PPANNSD4 format. The arena travels under a
// streaming CRC32 so storage corruption is detected at load time instead
// of silently flipping comparison results. AME ciphertexts, when present,
// are not persisted.
func (e *EncryptedDatabase) Save(w io.Writer) error {
	backend := e.Backend
	if backend == "" {
		backend = index.Default
	}
	if len(backend) > 255 {
		return fmt.Errorf("core: backend name %q too long", backend)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(edbMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(len(backend))); err != nil {
		return err
	}
	if _, err := bw.WriteString(backend); err != nil {
		return err
	}
	n := e.DCE.Len()
	ctDim := e.DCE.CtDim()
	for _, v := range []int64{int64(e.Dim), int64(n), int64(ctDim)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// Presence bitmap: tombstoned records stay in the arena as zeroed
	// runs, so the bulk section's geometry is independent of deletions.
	for _, live := range e.DCE.LiveMask() {
		b := byte(0)
		if live {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	// Bulk arena write with a running checksum, one record at a time.
	// Tombstoned records are written as zeroed runs regardless of their
	// in-memory bytes: the snapshot-safe Tombstone leaves dropped
	// ciphertext material in the shared arena (zeroing it would tear
	// older snapshots' reads), and that material must not outlive the
	// deletion on disk.
	arena := e.DCE.Raw()
	liveMask := e.DCE.LiveMask()
	stride := 4 * ctDim
	buf := make([]byte, stride*8)
	zeros := make([]byte, stride*8)
	var crc uint32
	for i := 0; i < n; i++ {
		chunk := zeros
		if liveMask[i] {
			rec := arena[i*stride : (i+1)*stride]
			for j, f := range rec {
				binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(f))
			}
			chunk = buf
		}
		crc = crc32.Update(crc, crc32.IEEETable, chunk)
		if _, err := bw.Write(chunk); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc); err != nil {
		return err
	}
	// PQ tier: one presence byte, then the self-framing PQSTORE1 section.
	pqFlag := byte(0)
	if e.PQ != nil {
		pqFlag = 1
	}
	if err := bw.WriteByte(pqFlag); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if e.PQ != nil {
		if err := e.PQ.Save(w); err != nil {
			return fmt.Errorf("core: saving PQ tier: %w", err)
		}
	}
	return e.Index.Save(w)
}

// LoadEncryptedDatabase reads a database written by Save — the current
// PPANNSD4 bulk-arena format or the per-record PPANNSD3 layout, which is
// loaded straight into the arena store so pre-arena files keep working
// bit-for-bit.
func LoadEncryptedDatabase(r io.Reader) (*EncryptedDatabase, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(edbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	switch string(magic) {
	case edbMagic, edbMagicV4, edbMagicV3:
	case edbMagicLegacy:
		return nil, fmt.Errorf("core: legacy %s database; re-encrypt with this version to add the backend tag", edbMagicLegacy)
	default:
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("core: reading backend tag: %w", err)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("core: reading backend tag: %w", err)
	}
	backend := string(nameBytes)
	if _, err := index.Lookup(backend); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var head [3]int64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, err
		}
	}
	dim, n, ctDim := int(head[0]), int(head[1]), int(head[2])
	if dim <= 0 || n <= 0 || ctDim <= 0 {
		return nil, fmt.Errorf("core: implausible header dim=%d n=%d ctDim=%d", dim, n, ctDim)
	}
	var store *dce.CiphertextStore
	if string(magic) == edbMagicV3 {
		store, err = readArenaRecords(br, n, ctDim)
	} else {
		store, err = readArenaBulk(br, n, ctDim)
	}
	if err != nil {
		return nil, err
	}
	e := &EncryptedDatabase{Dim: dim, Backend: backend, DCE: store}
	if string(magic) == edbMagic {
		pqFlag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("core: reading PQ flag: %w", err)
		}
		switch pqFlag {
		case 0:
		case 1:
			pqs, err := pq.Load(br)
			if err != nil {
				return nil, fmt.Errorf("core: loading PQ tier: %w", err)
			}
			if pqs.Book.Dim() != dim {
				return nil, fmt.Errorf("core: PQ codebook dimension %d does not match database dimension %d", pqs.Book.Dim(), dim)
			}
			if pqs.Codes.Len() != n {
				return nil, fmt.Errorf("core: PQ code arena holds %d rows, database %d", pqs.Codes.Len(), n)
			}
			e.PQ = pqs
		default:
			return nil, fmt.Errorf("core: corrupt PQ flag byte %d", pqFlag)
		}
	}
	idx, err := index.Load(backend, br)
	if err != nil {
		return nil, fmt.Errorf("core: loading %s index: %w", backend, err)
	}
	// Cross-check the index against the ciphertext section so corruption
	// that survives both payloads' own checks still fails at load time
	// instead of as an out-of-range id during a query.
	if idx.Dim() != dim {
		return nil, fmt.Errorf("core: index dimension %d does not match database dimension %d", idx.Dim(), dim)
	}
	if idx.Len() != store.Live() {
		return nil, fmt.Errorf("core: index holds %d live vectors, ciphertext store %d", idx.Len(), store.Live())
	}
	e.Index = idx
	return e, nil
}

// readArenaBulk reads the PPANNSD4 ciphertext section: presence bitmap,
// flat arena, trailing CRC32 over the arena bytes.
func readArenaBulk(br io.Reader, n, ctDim int) (*dce.CiphertextStore, error) {
	present := make([]byte, n)
	if _, err := io.ReadFull(br, present); err != nil {
		return nil, fmt.Errorf("core: reading presence bitmap: %w", err)
	}
	live := make([]bool, n)
	for i, b := range present {
		switch b {
		case 0:
		case 1:
			live[i] = true
		default:
			return nil, fmt.Errorf("core: corrupt presence byte %d for record %d", b, i)
		}
	}
	arena := make([]float64, n*4*ctDim)
	buf := make([]byte, serializeChunk*8)
	var crc uint32
	for off := 0; off < len(arena); {
		m := len(arena) - off
		if m > serializeChunk {
			m = serializeChunk
		}
		chunk := buf[:m*8]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("core: reading ciphertext arena: %w", err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, chunk)
		for j := 0; j < m; j++ {
			arena[off+j] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[j*8:]))
		}
		off += m
	}
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("core: reading arena checksum: %w", err)
	}
	if crc != stored {
		return nil, fmt.Errorf("core: ciphertext arena corrupted (crc %08x, want %08x)", crc, stored)
	}
	return dce.StoreFromRaw(ctDim, arena, live)
}

// readArenaRecords reads the pre-arena PPANNSD3 ciphertext section — one
// presence byte plus CRC-framed record per point — directly into the flat
// arena layout, preserving every float bit-for-bit.
func readArenaRecords(br interface {
	io.Reader
	io.ByteReader
}, n, ctDim int) (*dce.CiphertextStore, error) {
	stride := 4 * ctDim
	arena := make([]float64, n*stride)
	live := make([]bool, n)
	record := make([]byte, stride*8)
	for i := 0; i < n; i++ {
		present, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d: %w", i, err)
		}
		if present == 0 {
			continue
		}
		if _, err := io.ReadFull(br, record); err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d: %w", i, err)
		}
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d checksum: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(record); got != stored {
			return nil, fmt.Errorf("core: ciphertext %d corrupted (crc %08x, want %08x)", i, got, stored)
		}
		rec := arena[i*stride : (i+1)*stride]
		for j := range rec {
			rec[j] = math.Float64frombits(binary.LittleEndian.Uint64(record[j*8:]))
		}
		live[i] = true
	}
	return dce.StoreFromRaw(ctDim, arena, live)
}
