package core

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"ppanns/internal/dce"
	"ppanns/internal/dcpe"
	"ppanns/internal/hnsw"
)

// UserKey serialization rides on gob: the DCE and SAP keys implement
// encoding.BinaryMarshaler. AME keys are a benchmark-only artifact and are
// not shipped (a deployment running the HNSW-AME baseline regenerates them
// in place).

type userKeyWire struct {
	DCE []byte
	SAP []byte
}

// SaveUserKey writes the user's key material (Figure 1 step 0) to w.
func SaveUserKey(w io.Writer, k *UserKey) error {
	if k == nil || k.DCE == nil || k.SAP == nil {
		return fmt.Errorf("core: incomplete user key")
	}
	dceBytes, err := k.DCE.MarshalBinary()
	if err != nil {
		return err
	}
	sapBytes, err := k.SAP.MarshalBinary()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(userKeyWire{DCE: dceBytes, SAP: sapBytes})
}

// LoadUserKey reads key material written by SaveUserKey.
func LoadUserKey(r io.Reader) (*UserKey, error) {
	var wire userKeyWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding user key: %w", err)
	}
	k := &UserKey{DCE: new(dce.Key), SAP: new(dcpe.Key)}
	if err := k.DCE.UnmarshalBinary(wire.DCE); err != nil {
		return nil, err
	}
	if err := k.SAP.UnmarshalBinary(wire.SAP); err != nil {
		return nil, err
	}
	return k, nil
}

const edbMagic = "PPANNSD2"

// Save writes the encrypted database (graph, DCE ciphertexts, id mapping)
// in a binary format. Every ciphertext record carries a CRC32 so storage
// corruption is detected at load time instead of silently flipping
// comparison results. AME ciphertexts, when present, are not persisted.
func (e *EncryptedDatabase) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(edbMagic); err != nil {
		return err
	}
	n := len(e.DCE)
	ctDim := 0
	for _, ct := range e.DCE {
		if ct != nil {
			ctDim = len(ct.P1)
			break
		}
	}
	for _, v := range []int64{int64(e.Dim), int64(n), int64(ctDim)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	record := make([]byte, 4*ctDim*8)
	for i, ct := range e.DCE {
		present := byte(1)
		if ct == nil {
			present = 0
		}
		if err := bw.WriteByte(present); err != nil {
			return err
		}
		if ct == nil {
			continue
		}
		off := 0
		for _, comp := range [][]float64{ct.P1, ct.P2, ct.P3, ct.P4} {
			if len(comp) != ctDim {
				return fmt.Errorf("core: ciphertext %d has component length %d, want %d", i, len(comp), ctDim)
			}
			for _, f := range comp {
				binary.LittleEndian.PutUint64(record[off:], math.Float64bits(f))
				off += 8
			}
		}
		if _, err := bw.Write(record); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(record)); err != nil {
			return err
		}
	}
	for _, g := range e.pos2gid {
		if err := binary.Write(bw, binary.LittleEndian, g); err != nil {
			return err
		}
	}
	for _, p := range e.gid2pos {
		if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return e.Graph.Save(w)
}

// LoadEncryptedDatabase reads a database written by Save.
func LoadEncryptedDatabase(r io.Reader) (*EncryptedDatabase, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(edbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != edbMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	var head [3]int64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, err
		}
	}
	dim, n, ctDim := int(head[0]), int(head[1]), int(head[2])
	if dim <= 0 || n <= 0 || ctDim <= 0 {
		return nil, fmt.Errorf("core: implausible header dim=%d n=%d ctDim=%d", dim, n, ctDim)
	}
	e := &EncryptedDatabase{Dim: dim, DCE: make([]*dce.Ciphertext, n)}
	record := make([]byte, 4*ctDim*8)
	for i := 0; i < n; i++ {
		present, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d: %w", i, err)
		}
		if present == 0 {
			continue
		}
		if _, err := io.ReadFull(br, record); err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d: %w", i, err)
		}
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("core: reading ciphertext %d checksum: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(record); got != stored {
			return nil, fmt.Errorf("core: ciphertext %d corrupted (crc %08x, want %08x)", i, got, stored)
		}
		ct := &dce.Ciphertext{
			P1: make([]float64, ctDim), P2: make([]float64, ctDim),
			P3: make([]float64, ctDim), P4: make([]float64, ctDim),
		}
		off := 0
		for _, comp := range [][]float64{ct.P1, ct.P2, ct.P3, ct.P4} {
			for j := range comp {
				comp[j] = math.Float64frombits(binary.LittleEndian.Uint64(record[off:]))
				off += 8
			}
		}
		e.DCE[i] = ct
	}
	e.pos2gid = make([]int32, n)
	e.gid2pos = make([]int32, n)
	for i := range e.pos2gid {
		if err := binary.Read(br, binary.LittleEndian, &e.pos2gid[i]); err != nil {
			return nil, err
		}
	}
	for i := range e.gid2pos {
		if err := binary.Read(br, binary.LittleEndian, &e.gid2pos[i]); err != nil {
			return nil, err
		}
	}
	g, err := hnsw.Load(br, nil)
	if err != nil {
		return nil, fmt.Errorf("core: loading graph: %w", err)
	}
	e.Graph = g
	return e, nil
}
