package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ppanns/internal/index"
)

// TestSnapshotIsolationUnderChurn is the concurrency conformance test of
// the snapshot-publication serving model, run against every registered
// filter-index backend: parallel lock-free searches race against a
// scripted stream of interleaved Insert/Delete mutations, and every
// result set must reflect exactly one published snapshot — each returned
// id was live at the epoch that served the query, no id from a
// half-applied insert, no tombstone resurrection, no torn reads (the race
// detector's half of the contract). The mutation script is fixed up
// front, so the exact live set of every epoch is known before the race
// starts and searchers can verify against it without synchronizing with
// the mutator.
func TestSnapshotIsolationUnderChurn(t *testing.T) {
	const (
		n, dim    = 240, 8
		mutations = 30
		searchers = 3
	)
	data := clustered(91, n, dim, 5)

	for _, name := range index.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 91, Index: name}, data)
			caps := w.server.Caps()
			if !caps.DynamicDelete {
				t.Skipf("%s supports no mutations to churn with", name)
			}

			// Script the mutation sequence. Epoch e is the state after the
			// first e mutations, so liveAt[e] is exact.
			type mutation struct {
				insert []float64 // nil = delete
				del    int
			}
			var muts []mutation
			nextDel := 0
			inserts := 0
			for m := 0; m < mutations; m++ {
				if caps.DynamicInsert && m%2 == 0 {
					muts = append(muts, mutation{insert: data[m]})
					inserts++
				} else {
					muts = append(muts, mutation{insert: nil, del: nextDel})
					nextDel += 3 // distinct ids, all within the initial set
				}
			}
			liveAt := make([][]bool, mutations+1)
			live := make([]bool, n+inserts)
			for i := 0; i < n; i++ {
				live[i] = true
			}
			liveAt[0] = append([]bool(nil), live...)
			nextID := n
			for e, mu := range muts {
				if mu.insert != nil {
					live[nextID] = true
					nextID++
				} else {
					live[mu.del] = false
				}
				liveAt[e+1] = append([]bool(nil), live...)
			}

			toks := make([]*QueryToken, 8)
			for i := range toks {
				toks[i] = mustToken(t, w, data[i*7])
			}

			var done atomic.Bool
			var iters atomic.Int64
			errCh := make(chan error, searchers+1)
			var wg sync.WaitGroup
			for s := 0; s < searchers; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					var dst []int
					for rep := 0; !done.Load(); rep++ {
						tok := toks[(s+rep)%len(toks)]
						var st SearchStats
						var err error
						dst, st, err = w.server.SearchInto(dst[:0], tok, 5, SearchOptions{RatioK: 8})
						if err != nil {
							errCh <- fmt.Errorf("searcher %d: %v", s, err)
							return
						}
						if st.Epoch > uint64(len(liveAt)-1) {
							errCh <- fmt.Errorf("searcher %d: served epoch %d beyond the %d published", s, st.Epoch, len(liveAt)-1)
							return
						}
						liveSet := liveAt[st.Epoch]
						for _, id := range dst {
							if id < 0 || id >= len(liveSet) || !liveSet[id] {
								errCh <- fmt.Errorf("searcher %d: epoch %d returned id %d, not live in that snapshot", s, st.Epoch, id)
								return
							}
						}
						iters.Add(1)
					}
				}(s)
			}

			// The mutator runs the script concurrently with the searchers,
			// letting at least one search complete between mutations so the
			// two streams genuinely interleave even on a single CPU.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer done.Store(true)
				for e, mu := range muts {
					before := iters.Load()
					for iters.Load() == before {
						runtime.Gosched()
					}
					if mu.insert != nil {
						payload, err := w.owner.EncryptVector(mu.insert)
						if err != nil {
							errCh <- err
							return
						}
						if _, err := w.server.Insert(payload); err != nil {
							errCh <- fmt.Errorf("mutation %d (insert): %v", e, err)
							return
						}
					} else if err := w.server.Delete(mu.del); err != nil {
						errCh <- fmt.Errorf("mutation %d (delete %d): %v", e, mu.del, err)
						return
					}
					if got := w.server.Epoch(); got != uint64(e+1) {
						errCh <- fmt.Errorf("mutation %d published epoch %d, want %d", e, got, e+1)
						return
					}
				}
			}()
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if iters.Load() == 0 {
				t.Fatal("searchers never overlapped the mutation stream")
			}

			// The final snapshot adds up and has quiesced.
			wantLive := 0
			for _, l := range liveAt[len(liveAt)-1] {
				if l {
					wantLive++
				}
			}
			if got := w.server.Len(); got != n+inserts {
				t.Fatalf("final Len = %d, want %d", got, n+inserts)
			}
			if got := w.server.Live(); got != wantLive {
				t.Fatalf("final Live = %d, want %d", got, wantLive)
			}
			if got := w.server.Epoch(); got != mutations {
				t.Fatalf("final epoch = %d, want %d", got, mutations)
			}
			if got := w.server.InFlight(); got != 0 {
				t.Fatalf("%d searches still pinned to the final snapshot", got)
			}
		})
	}
}
