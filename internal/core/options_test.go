package core

import "testing"

func TestSearchOptionsKPrime(t *testing.T) {
	cases := []struct {
		opt  SearchOptions
		k    int
		want int
	}{
		{SearchOptions{}, 10, 80},           // default 8·k
		{SearchOptions{RatioK: 4}, 10, 40},  // ratio
		{SearchOptions{KPrime: 25}, 10, 25}, // explicit wins
		{SearchOptions{KPrime: 3, RatioK: 9}, 10, 3},
	}
	for i, c := range cases {
		if got := c.opt.kPrime(c.k); got != c.want {
			t.Errorf("case %d: kPrime = %d, want %d", i, got, c.want)
		}
	}
}

func TestSearchOptionsEf(t *testing.T) {
	if got := (SearchOptions{}).ef(20); got != 50 {
		t.Errorf("small k': ef = %d, want 50", got)
	}
	if got := (SearchOptions{}).ef(200); got != 200 {
		t.Errorf("large k': ef = %d, want 200", got)
	}
	if got := (SearchOptions{EfSearch: 77}).ef(200); got != 77 {
		t.Errorf("explicit ef = %d, want 77", got)
	}
}

func TestRefineModeString(t *testing.T) {
	for mode, want := range map[RefineMode]string{
		RefineDCE: "dce", RefineAME: "ame", RefineNone: "filter-only",
		RefineMode(9): "refine(9)",
	} {
		if mode.String() != want {
			t.Errorf("String() = %q, want %q", mode.String(), want)
		}
	}
}

func TestKPrimeClampedToK(t *testing.T) {
	// A KPrime below k must be raised to k by Search.
	data := clustered(51, 200, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 51}, data)
	tok, err := w.user.Query(data[0])
	if err != nil {
		t.Fatal(err)
	}
	ids, err := w.server.Search(tok, 10, SearchOptions{KPrime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("got %d results with KPrime<k, want 10", len(ids))
	}
}

func TestInsertRequiresAMEWhenDatabaseHasIt(t *testing.T) {
	data := clustered(52, 200, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 52, WithAME: true}, data)
	// Handcraft a payload missing the AME component.
	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	payload.AME = nil
	if _, err := w.server.Insert(payload); err == nil {
		t.Fatal("expected error for missing AME ciphertext")
	}
}

func TestInsertPayloadValidation(t *testing.T) {
	data := clustered(53, 100, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 53}, data)
	if _, err := w.server.Insert(nil); err == nil {
		t.Fatal("expected error for nil payload")
	}
	if _, err := w.server.Insert(&InsertPayload{}); err == nil {
		t.Fatal("expected error for empty payload")
	}
}
