package core

import (
	"fmt"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
	"ppanns/internal/index"
	"ppanns/internal/pq"
)

// Split partitions the encrypted database into n shard databases by
// striping external ids: global id g lands on shard g % n at local
// position g / n. The stripe is the id-remapping contract the
// scatter-gather tier (internal/shard) relies on — it is a pure-arithmetic
// bijection, and it stays valid under coordinator-routed inserts because
// appending global id G (the current total, tombstones included) always
// lands on shard G % n exactly when that shard holds G / n records.
//
// Every shard receives a copy of its stripe of the DCE ciphertext arena
// (and the AME ciphertexts and PQ code rows, when present — the PQ
// codebook is shared, not retrained, since it was fit on the full corpus)
// plus a freshly built filter index over the stripe's SAP vectors,
// recovered from the source index via SecureIndex.Vector. Tombstoned ids keep their slots — the shard
// index is built over every position and the tombstones are re-deleted —
// so local ids stay dense and the arithmetic mapping never shifts.
//
// opts configures the per-shard index rebuilds; zero values select the
// backend's documented defaults, Dim is filled in from the database, and
// a non-zero Seed is decorrelated per shard. The source database is not
// modified.
func (e *EncryptedDatabase) Split(n int, opts index.Options) ([]*EncryptedDatabase, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive shard count %d", n)
	}
	total := e.DCE.Len()
	if n > total {
		return nil, fmt.Errorf("core: cannot split %d vectors across %d shards", total, n)
	}
	opts.Dim = e.Dim

	shards := make([]*EncryptedDatabase, n)
	for s := 0; s < n; s++ {
		cnt := (total - s + n - 1) / n // |{g ∈ [0, total) : g ≡ s (mod n)}|
		vecs := make([][]float64, 0, cnt)
		store := dce.NewCiphertextStoreN(e.DCE.CtDim(), cnt)
		var ameCts []*ame.Ciphertext
		if e.AME != nil {
			ameCts = make([]*ame.Ciphertext, cnt)
		}
		var dead []int
		for local := 0; local < cnt; local++ {
			g := local*n + s
			v, ok := e.Index.Vector(g)
			if !ok {
				return nil, fmt.Errorf("core: %s index cannot recover the SAP vector of id %d", e.Backend, g)
			}
			vecs = append(vecs, v)
			if e.DCE.Has(g) {
				copy(store.Record(local), e.DCE.Record(g))
			} else {
				dead = append(dead, local)
			}
			if ameCts != nil {
				ameCts[local] = e.AME[g]
			}
		}

		o := opts
		if o.Seed != 0 {
			o.Seed = opts.Seed + uint64(s) + 1
		}
		idx, err := index.Build(e.Backend, vecs, o)
		if err != nil {
			return nil, fmt.Errorf("core: building %s index for shard %d: %w", e.Backend, s, err)
		}
		for _, local := range dead {
			if err := idx.Delete(local); err != nil {
				return nil, fmt.Errorf("core: restoring tombstone %d on shard %d: %w", local, s, err)
			}
			store.Delete(local)
			if ameCts != nil {
				ameCts[local] = nil
			}
		}
		if idx.Len() != store.Live() {
			return nil, fmt.Errorf("core: shard %d index holds %d live vectors, ciphertext store %d",
				s, idx.Len(), store.Live())
		}
		shards[s] = &EncryptedDatabase{
			Dim:     e.Dim,
			Backend: e.Backend,
			Index:   idx,
			DCE:     store,
			AME:     ameCts,
		}

		// The compressed filter tier shards with the data: the codebook was
		// trained on the full corpus, so it stays valid for any stripe and
		// is shared (it is immutable after training); only the code rows are
		// re-gathered into local-id order, dead rows zeroed like a fold.
		if e.PQ != nil {
			m := e.PQ.Book.M()
			raw := make([]byte, cnt*m)
			for local := 0; local < cnt; local++ {
				if g := local*n + s; e.DCE.Has(g) {
					copy(raw[local*m:(local+1)*m], e.PQ.Codes.Row(g))
				}
			}
			codes, err := pq.StoreFromRaw(m, raw)
			if err != nil {
				return nil, fmt.Errorf("core: gathering PQ codes for shard %d: %w", s, err)
			}
			shards[s].PQ = &pq.Store{Book: e.PQ.Book, Codes: codes, TrainedOn: e.PQ.TrainedOn, Cfg: e.PQ.Cfg}
		}
	}
	return shards, nil
}
