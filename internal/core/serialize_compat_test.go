package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"testing"
)

// writeLegacyV3 produces a byte-exact pre-arena PPANNSD3 database file —
// the per-record layout every database saved before the flat-arena rework
// is stored in: magic, backend tag, dim/n/ctDim header, then one presence
// byte plus a CRC32-framed [P1|P2|P3|P4] record per ciphertext, followed
// by the index payload.
func writeLegacyV3(t *testing.T, w io.Writer, e *EncryptedDatabase) {
	t.Helper()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(edbMagicV3); err != nil {
		t.Fatal(err)
	}
	backend := e.Backend
	if err := bw.WriteByte(byte(len(backend))); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.WriteString(backend); err != nil {
		t.Fatal(err)
	}
	n := e.DCE.Len()
	ctDim := e.DCE.CtDim()
	for _, v := range []int64{int64(e.Dim), int64(n), int64(ctDim)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	record := make([]byte, 4*ctDim*8)
	for i := 0; i < n; i++ {
		if !e.DCE.Has(i) {
			if err := bw.WriteByte(0); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := bw.WriteByte(1); err != nil {
			t.Fatal(err)
		}
		ct := e.DCE.View(i)
		off := 0
		for _, comp := range [][]float64{ct.P1, ct.P2, ct.P3, ct.P4} {
			for _, f := range comp {
				binary.LittleEndian.PutUint64(record[off:], math.Float64bits(f))
				off += 8
			}
		}
		if _, err := bw.Write(record); err != nil {
			t.Fatal(err)
		}
		if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(record)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Index.Save(w); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyV3LoadsIntoArena proves a pre-arena PPANNSD3 database file
// loads into the flat-arena layout bit-for-bit: every ciphertext float is
// preserved exactly, tombstones survive, and search results before and
// after the round-trip are identical — including after re-saving in the
// current PPANNSD4 bulk format.
func TestLegacyV3LoadsIntoArena(t *testing.T) {
	data := clustered(71, 400, 8, 4)
	w := newWorld(t, Params{Dim: 8, Beta: 0.5, Seed: 71}, data)
	if err := w.server.Delete(11); err != nil {
		t.Fatal(err)
	}
	edb := w.server.Database()
	var legacy bytes.Buffer
	writeLegacyV3(t, &legacy, edb)
	wantRaw := append([]float64(nil), edb.DCE.Raw()...)
	wantLive := append([]bool(nil), edb.DCE.LiveMask()...)
	// Both on-disk formats store tombstoned records as zeroed runs. The
	// in-memory snapshot store may still hold their bytes (the COW-safe
	// Tombstone defers zeroing to serialization), so the expectation
	// zeroes them the same way the writers do.
	stride := 4 * edb.DCE.CtDim()
	for i, l := range wantLive {
		if !l {
			for j := i * stride; j < (i+1)*stride; j++ {
				wantRaw[j] = 0
			}
		}
	}

	loaded, err := LoadEncryptedDatabase(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatalf("loading legacy PPANNSD3 file: %v", err)
	}
	assertStoreBits := func(stage string, got *EncryptedDatabase) {
		t.Helper()
		if got.DCE.Len() != len(wantLive) || got.DCE.CtDim() != edb.DCE.CtDim() {
			t.Fatalf("%s: store shape %d/%d, want %d/%d",
				stage, got.DCE.Len(), got.DCE.CtDim(), len(wantLive), edb.DCE.CtDim())
		}
		gotRaw := got.DCE.Raw()
		for i, f := range wantRaw {
			if math.Float64bits(gotRaw[i]) != math.Float64bits(f) {
				t.Fatalf("%s: arena float %d differs: %x vs %x",
					stage, i, math.Float64bits(gotRaw[i]), math.Float64bits(f))
			}
		}
		for i, l := range wantLive {
			if got.DCE.Has(i) != l {
				t.Fatalf("%s: liveness of id %d flipped", stage, i)
			}
		}
	}
	assertStoreBits("legacy load", loaded)

	// Identical bits must give identical answers.
	server2, err := NewServer(loaded)
	if err != nil {
		t.Fatal(err)
	}
	queries := makeQueries(72, data, 20, 0.3)
	assertSameResults := func(stage string, other *Server) {
		t.Helper()
		for qi, q := range queries {
			tok, err := w.user.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			a, err := w.server.Search(tok, 5, SearchOptions{RatioK: 8})
			if err != nil {
				t.Fatal(err)
			}
			b, err := other.Search(tok, 5, SearchOptions{RatioK: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s: query %d result counts %d vs %d", stage, qi, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: query %d rank %d: %d vs %d", stage, qi, i, a[i], b[i])
				}
			}
		}
	}
	assertSameResults("legacy load", server2)

	// Re-saving in the current bulk format must preserve the bits again.
	var modern bytes.Buffer
	if err := loaded.Save(&modern); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(modern.Bytes(), []byte(edbMagic)) {
		t.Fatalf("re-save did not use the %s format", edbMagic)
	}
	reloaded, err := LoadEncryptedDatabase(bytes.NewReader(modern.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreBits("v4 round-trip", reloaded)
	server3, err := NewServer(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults("v4 round-trip", server3)
}
