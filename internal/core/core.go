// Package core implements the paper's PP-ANNS scheme (Section V): the
// three-party protocol of Figure 1 with the privacy-preserving index of
// Figure 3 and the filter-and-refine search of Algorithm 2.
//
// Roles:
//
//   - DataOwner generates the secret keys, encrypts the database under both
//     DCPE/SAP (approximate, indexed by a pluggable proximity structure)
//     and DCE (exact comparisons), and ships only ciphertexts to the
//     server. For updates it encrypts individual vectors (Section V-D).
//   - User holds the authorized key material (Figure 1 step 0) and turns a
//     plaintext query into a QueryToken = (C_SAP(q), T_q) — the only thing
//     that ever leaves the user.
//   - Server stores {C_SAP, index over C_SAP, C_DCE} and answers queries:
//     the filter phase runs k′-ANNS on the SAP index, the refine phase
//     selects the best k among the k′ candidates with a max-heap driven
//     purely by DCE distance comparisons.
//
// The filter index is selected by name through internal/index — HNSW (the
// paper's choice, and the default), NSG, IVF-Flat, or E2LSH — per the
// observation in Section V-A that the privacy-preserving index can swap
// HNSW for other proximity structures.
//
// The server type is constructed exclusively from ciphertexts; no API
// exposes plaintext vectors, distances, or keys to it.
package core

import (
	"fmt"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
	"ppanns/internal/dcpe"
	"ppanns/internal/index"
	"ppanns/internal/pq"
	"ppanns/internal/rng"
)

// Params configures the scheme. Zero values select the documented defaults.
type Params struct {
	// Dim is the vector dimension (required).
	Dim int

	// S is DCPE's scaling factor; the paper uses 1024 (the default).
	S float64
	// Beta is DCPE's perturbation bound β. 0 means no noise (no index
	// privacy); the paper tunes it per dataset so the filter-only recall
	// ceiling is ≈0.5. See dcpe.BetaRange for the recommended range.
	Beta float64

	// Index selects the filter-phase backend by registry name: "hnsw"
	// (default), "nsg", "ivf", or "lsh". See internal/index for the
	// trade-offs each makes.
	Index string
	// IndexOptions carries backend-specific build and search options.
	// Dim and Seed are filled in from this struct; the legacy M and
	// EfConstruction fields below take effect when their IndexOptions
	// counterparts are zero.
	IndexOptions index.Options

	// M and EfConstruction are the HNSW build parameters; the paper uses
	// 40 and 600. Defaults: 16 and 200 (laptop-scale).
	M              int
	EfConstruction int

	// WithAME additionally encrypts the database under AME so the server
	// can run the HNSW-AME baseline refine (Figure 6). Costly: Θ(d²)
	// space per vector.
	WithAME bool

	// PQ attaches the compressed filter tier at encryption time: a
	// product-quantization codebook over the SAP ciphertexts plus an
	// M-byte code per vector, enabling SearchOptions.FilterDist=FilterPQ.
	// PQM overrides the subquantizer count (default 16 = 16 bytes/point).
	PQ  bool
	PQM int

	// CompactAt bounds the serving tier's delta tier: when the delta
	// record count or the pending tombstone count reaches it, a
	// background compaction folds them into the main index. 0 selects
	// core.DefaultCompactAt; negative disables automatic compaction
	// (Server.Compact only). CompactAtBytes adds an optional byte-based
	// trigger on the delta footprint.
	CompactAt      int
	CompactAtBytes int

	// Seed makes key generation and index construction deterministic when
	// non-zero (tests and experiments); 0 draws from crypto/rand.
	Seed uint64
}

func (p Params) withDefaults() (Params, error) {
	if p.Dim <= 0 {
		return p, fmt.Errorf("core: non-positive dimension %d", p.Dim)
	}
	if p.S == 0 {
		p.S = 1024
	}
	if p.S < 0 {
		return p, fmt.Errorf("core: negative DCPE scaling factor %g", p.S)
	}
	if p.Beta < 0 {
		return p, fmt.Errorf("core: negative beta %g", p.Beta)
	}
	if p.Index == "" {
		p.Index = index.Default
	}
	if _, err := index.Lookup(p.Index); err != nil {
		return p, fmt.Errorf("core: %w", err)
	}
	if p.M <= 0 {
		p.M = 16
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = 200
	}
	return p, nil
}

// indexOptions assembles the effective backend options: the explicit
// IndexOptions, with Dim/Seed supplied from the scheme parameters and the
// legacy HNSW knobs filling any zero values.
func (p Params) indexOptions() index.Options {
	opts := p.IndexOptions
	opts.Dim = p.Dim
	if opts.Seed == 0 {
		opts.Seed = p.Seed ^ 0x9d5
	}
	if opts.M == 0 {
		opts.M = p.M
	}
	if opts.EfConstruction == 0 {
		opts.EfConstruction = p.EfConstruction
	}
	return opts
}

func (p Params) rand() *rng.Rand {
	if p.Seed == 0 {
		return rng.NewCrypto()
	}
	return rng.NewSeeded(p.Seed)
}

// UserKey is the authorized key material handed from the data owner to the
// user (Figure 1 step 0): everything needed to encrypt queries, nothing
// more.
type UserKey struct {
	DCE *dce.Key
	SAP *dcpe.Key
	AME *ame.Key // nil unless Params.WithAME
}

// QueryToken is the encrypted query the user sends to the server:
// the SAP ciphertext (filter phase) and the DCE trapdoor (refine phase).
type QueryToken struct {
	SAP      []float64
	Trapdoor *dce.Trapdoor
	// AME is the AME trapdoor, present only when the deployment runs the
	// HNSW-AME baseline refine.
	AME *ame.Trapdoor
}

// EncryptedDatabase is the server-side state: the filter index over SAP
// ciphertexts (which owns the C_SAP vectors) plus the DCE ciphertexts in a
// flat arena store, and optionally the AME ciphertexts for the baseline.
//
// External ids (what users see, and what index the DCE store/AME array)
// are the data owner's vector positions; every index backend returns
// positions from Search, keeping any internal id remapping to itself.
type EncryptedDatabase struct {
	Dim     int
	Backend string
	Index   index.SecureIndex
	DCE     *dce.CiphertextStore
	AME     []*ame.Ciphertext // nil unless built WithAME
	// PQ is the compressed filter tier: a product-quantization codebook
	// plus one M-byte code per position, trained server-side on the SAP
	// ciphertexts (no new leakage — the codes are a lossy function of data
	// the server already stores). Nil unless built with Params.PQ, loaded
	// from a database file carrying a PQ section, or built on demand via
	// BuildPQ. When present it covers every position [0, Len).
	PQ *pq.Store
}

// BuildPQ trains a PQ codebook over the stored SAP ciphertexts and encodes
// every position, attaching the compressed filter tier to the database.
// This is the on-demand path for databases built (or saved) without one;
// cfg zero values select the documented pq defaults. The index must retain
// a vector for every position ever assigned (all backends do).
func (e *EncryptedDatabase) BuildPQ(cfg pq.TrainConfig) error {
	n := e.DCE.Len()
	vecs := make([][]float64, n)
	for id := 0; id < n; id++ {
		v, ok := e.Index.Vector(id)
		if !ok {
			return fmt.Errorf("core: building PQ: index has no vector for id %d", id)
		}
		vecs[id] = v
	}
	store, err := pq.Build(vecs, cfg)
	if err != nil {
		return fmt.Errorf("core: building PQ: %w", err)
	}
	e.PQ = store
	return nil
}

// Len returns the number of vectors in the encrypted database, including
// tombstoned ones.
func (e *EncryptedDatabase) Len() int { return e.DCE.Len() }

// Live returns the number of non-tombstoned vectors — what Len counts
// minus the deletions still holding their id slots.
func (e *EncryptedDatabase) Live() int { return e.DCE.Live() }

// InsertPayload carries the ciphertexts of one new vector from the data
// owner to the server (Section V-D insertion).
type InsertPayload struct {
	SAP []float64
	DCE *dce.Ciphertext
	AME *ame.Ciphertext
}
