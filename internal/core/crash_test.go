package core

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"ppanns/internal/index"
	"ppanns/internal/rng"
	"ppanns/internal/wal"
)

// The crash-durability suite proves the WAL's acknowledgment contract the
// only honest way: a real child process is SIGKILLed mid-churn — mid
// group commit, mid background compaction, mid checkpoint — and the
// parent recovers the directory and checks every acknowledged write
// survived, bit-identically.
//
// Determinism makes the oracle cheap. All owner-side randomness (DCPE
// perturbation, DCE keys, PQ training) derives from Params.Seed, so the
// parent rebuilds a never-crashed mirror by replaying the same scripted
// op stream in-process: the i-th EncryptVector call yields the same
// ciphertext in both processes, and with the recovered epoch E known,
// "apply the first E ops" reconstructs exactly the state the child had
// acknowledged.

const (
	crashSeed    = 311
	crashDim     = 8
	crashBase    = 150
	crashWorkEnv = "PPANNS_CRASH_DIR"
	crashBackEnv = "PPANNS_CRASH_BACKEND"
)

func crashParams(backend string) Params {
	return Params{Dim: crashDim, Beta: 0.3, Seed: crashSeed, Index: backend, PQ: true, PQM: 4}
}

// crashScript is the deterministic op stream shared by the child and the
// parent's mirror: ~2/3 inserts of seeded-random vectors, ~1/3 deletes of
// a seeded-random live id. Its state depends only on how many ops have
// been taken, never on server behavior.
type crashScript struct {
	r    *rng.Rand
	live []int
	next int
	m    int
}

func newCrashScript() *crashScript {
	cs := &crashScript{r: rng.NewSeeded(crashSeed + 1), next: crashBase}
	cs.live = make([]int, crashBase)
	for i := range cs.live {
		cs.live[i] = i
	}
	return cs
}

// op returns the next scripted mutation: a vector to insert, or (nil, id)
// to delete.
func (cs *crashScript) op() ([]float64, int) {
	defer func() { cs.m++ }()
	if cs.m%3 != 2 {
		cs.live = append(cs.live, cs.next)
		cs.next++
		return rng.GaussianVec(cs.r, crashDim, 8), 0
	}
	pick := cs.r.IntN(len(cs.live))
	id := cs.live[pick]
	cs.live[pick] = cs.live[len(cs.live)-1]
	cs.live = cs.live[:len(cs.live)-1]
	return nil, id
}

// TestWALCrashChild is the victim process: it churns a WAL-attached
// server with SyncEvery=1 and a tiny compaction trigger (so checkpoints
// race the kill), printing "ack <epoch>" after each acknowledged write,
// until the parent kills it. It skips unless spawned by the parent.
func TestWALCrashChild(t *testing.T) {
	dir := os.Getenv(crashWorkEnv)
	if dir == "" {
		t.Skip("crash child: spawned only by TestWALCrashDurability")
	}
	backend := os.Getenv(crashBackEnv)
	data := clustered(crashSeed+2, crashBase, crashDim, 5)
	w := newWALWorld(t, crashParams(backend), data, ServerOptions{
		WALDir:    dir,
		WALSync:   wal.SyncPolicy{Every: 1},
		CompactAt: 16,
	})
	cs := newCrashScript()
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(out, "ready")
	out.Flush()
	for m := 0; m < 1_000_000; m++ {
		vec, id := cs.op()
		if vec != nil {
			payload, err := w.owner.EncryptVector(vec)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.server.Insert(payload); err != nil {
				t.Fatalf("op %d (insert): %v", m, err)
			}
		} else if err := w.server.Delete(id); err != nil {
			t.Fatalf("op %d (delete %d): %v", m, id, err)
		}
		// The ack line leaves this process only after Insert/Delete
		// returned, i.e. after the record is fsync-durable: any line the
		// parent reads is a write that must survive the kill.
		fmt.Fprintf(out, "ack %d\n", m+1)
		out.Flush()
	}
}

// TestWALCrashDurability SIGKILLs a churning child at an arbitrary point
// and asserts (a) zero acknowledged-write loss — the recovered epoch
// covers every ack the parent observed — and (b) bit-identity: the
// recovered server matches a never-crashed mirror in content and in
// search results under both FilterExact and FilterPQ, on every backend.
func TestWALCrashDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	for bi, name := range index.Names() {
		name, bi := name, bi
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			// Vary the kill point per backend so the crash lands in
			// different phases (mid-delta, mid-fold, just past a
			// checkpoint).
			killAfter := 37 + bi*11

			cmd := exec.Command(os.Args[0], "-test.run=^TestWALCrashChild$", "-test.count=1")
			cmd.Env = append(os.Environ(), crashWorkEnv+"="+dir, crashBackEnv+"="+name)
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			timer := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })

			acked := 0
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if !strings.HasPrefix(sc.Text(), "ack ") {
					continue
				}
				acked++
				if acked == killAfter {
					if err := cmd.Process.Kill(); err != nil {
						t.Fatal(err)
					}
				}
			}
			cmd.Wait() // killed: error expected
			timer.Stop()
			if acked < killAfter {
				t.Fatalf("child died after %d acks (wanted to kill at %d); stderr:\n%s", acked, killAfter, stderr.String())
			}

			opts := ServerOptions{WALDir: dir, WALSync: wal.SyncPolicy{Every: 1}, CompactAt: -1}
			rec, stats, err := OpenServer(dir, opts)
			if err != nil {
				t.Fatalf("recovery failed: %v (stats %+v)", err, stats)
			}
			defer rec.Close()
			epoch := rec.Epoch()
			if epoch < uint64(acked) {
				t.Fatalf("acknowledged-write loss: recovered epoch %d < %d acks observed", epoch, acked)
			}
			t.Logf("killed at %d acks; recovered epoch %d from %s (+%d replayed, torn tail: %q)",
				acked, epoch, stats.Checkpoint, stats.Replayed, stats.Truncated)

			// Never-crashed mirror: same seed, same script, first E ops.
			data := clustered(crashSeed+2, crashBase, crashDim, 5)
			mw := newWorld(t, crashParams(name), data)
			cs := newCrashScript()
			for m := uint64(0); m < epoch; m++ {
				vec, id := cs.op()
				if vec != nil {
					payload, err := mw.owner.EncryptVector(vec)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := mw.server.Insert(payload); err != nil {
						t.Fatal(err)
					}
				} else if err := mw.server.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			if rec.Len() != mw.server.Len() || rec.Live() != mw.server.Live() {
				t.Fatalf("recovered Len/Live = %d/%d, mirror %d/%d",
					rec.Len(), rec.Live(), mw.server.Len(), mw.server.Live())
			}
			sameStores(t, "recovered vs mirror", mw.server, rec)

			toks := make([]*QueryToken, 4)
			for i := range toks {
				toks[i] = mustToken(t, mw, data[i*17])
			}
			total := rec.Len()
			sameResults(t, "recovered vs mirror",
				searchAll(t, mw.server, toks, 10, total), searchAll(t, rec, toks, 10, total))
			pqOpt := exhaustiveOpt(total)
			pqOpt.FilterDist = FilterPQ
			for i, tok := range toks {
				a, err := mw.server.Search(tok, 10, pqOpt)
				if err != nil {
					t.Fatal(err)
				}
				b, err := rec.Search(tok, 10, pqOpt)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, fmt.Sprintf("recovered vs mirror (FilterPQ, query %d)", i), [][]int{a}, [][]int{b})
			}
		})
	}
}
