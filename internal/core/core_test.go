package core

import (
	"sort"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// testWorld bundles a small end-to-end deployment.
type testWorld struct {
	data   [][]float64
	owner  *DataOwner
	user   *User
	server *Server
}

func clustered(seed uint64, n, dim, clusters int) [][]float64 {
	r := rng.NewSeeded(seed)
	centers := make([][]float64, clusters)
	for i := range centers {
		centers[i] = rng.GaussianVec(r, dim, 6)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = vec.Add(nil, centers[r.IntN(clusters)], rng.GaussianVec(r, dim, 1))
	}
	return out
}

func newWorld(t *testing.T, params Params, data [][]float64) *testWorld {
	t.Helper()
	owner, err := NewDataOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(data)
	if err != nil {
		t.Fatal(err)
	}
	user, err := NewUser(owner.UserKey())
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServerWith(edb, ServerOptions{CompactAt: params.CompactAt, CompactAtBytes: params.CompactAtBytes})
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{data: data, owner: owner, user: user, server: server}
}

func bruteForce(data [][]float64, q []float64, k int, skip func(int) bool) []int {
	type pair struct {
		id int
		d  float64
	}
	var all []pair
	for i, v := range data {
		if skip != nil && skip(i) {
			continue
		}
		all = append(all, pair{i, vec.SqDist(v, q)})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	if len(all) > k {
		all = all[:k]
	}
	ids := make([]int, len(all))
	for i, p := range all {
		ids[i] = p.id
	}
	return ids
}

func recallOf(got, want []int) float64 {
	if len(want) == 0 {
		return 1
	}
	set := map[int]bool{}
	for _, id := range want {
		set[id] = true
	}
	hit := 0
	for _, id := range got {
		if set[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func (w *testWorld) measureRecall(t *testing.T, queries [][]float64, k int, opt SearchOptions) float64 {
	t.Helper()
	var recall float64
	for _, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.server.Search(tok, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		recall += recallOf(got, bruteForce(w.data, q, k, nil))
	}
	return recall / float64(len(queries))
}

func makeQueries(seed uint64, data [][]float64, n int, noise float64) [][]float64 {
	r := rng.NewSeeded(seed)
	dim := len(data[0])
	out := make([][]float64, n)
	for i := range out {
		out[i] = vec.Add(nil, data[r.IntN(len(data))], rng.GaussianVec(r, dim, noise))
	}
	return out
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewDataOwner(Params{Dim: 0}); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, err := NewDataOwner(Params{Dim: 4, Beta: -1}); err == nil {
		t.Fatal("expected error for negative beta")
	}
	if _, err := NewDataOwner(Params{Dim: 4, S: -5}); err == nil {
		t.Fatal("expected error for negative S")
	}
}

func TestEndToEndHighRecall(t *testing.T) {
	const n, dim, k = 3000, 16, 10
	data := clustered(1, n, dim, 20)
	w := newWorld(t, Params{Dim: dim, Beta: 0.5, M: 12, EfConstruction: 150, Seed: 42}, data)
	queries := makeQueries(2, data, 40, 0.3)
	recall := w.measureRecall(t, queries, k, SearchOptions{RatioK: 8, EfSearch: 120})
	if recall < 0.9 {
		t.Fatalf("end-to-end recall = %.3f, want ≥ 0.9", recall)
	}
}

func TestRefineImprovesOverFilterOnly(t *testing.T) {
	// With noticeable DCPE noise, the exact DCE refine must beat the
	// filter-only top-k — the core claim of the filter-and-refine design.
	const n, dim, k = 2500, 16, 10
	data := clustered(3, n, dim, 15)
	w := newWorld(t, Params{Dim: dim, Beta: 2.0, M: 12, EfConstruction: 150, Seed: 7}, data)
	queries := makeQueries(4, data, 40, 0.3)
	filterOnly := w.measureRecall(t, queries, k, SearchOptions{RatioK: 16, EfSearch: 200, Refine: RefineNone})
	refined := w.measureRecall(t, queries, k, SearchOptions{RatioK: 16, EfSearch: 200, Refine: RefineDCE})
	if refined <= filterOnly {
		t.Fatalf("refine did not improve recall: filter-only %.3f vs refined %.3f", filterOnly, refined)
	}
	if refined < 0.85 {
		t.Fatalf("refined recall = %.3f, want ≥ 0.85", refined)
	}
}

func TestResultsOrderedByTrueDistance(t *testing.T) {
	const n, dim, k = 800, 12, 8
	data := clustered(5, n, dim, 8)
	w := newWorld(t, Params{Dim: dim, Beta: 0.5, Seed: 9}, data)
	q := data[100]
	tok, err := w.user.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.server.Search(tok, k, SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if vec.SqDist(data[got[i-1]], q) > vec.SqDist(data[got[i]], q)+1e-9 {
			t.Fatalf("results not ordered by true distance at rank %d", i)
		}
	}
}

func TestSearchStats(t *testing.T) {
	data := clustered(6, 500, 8, 5)
	w := newWorld(t, Params{Dim: 8, Beta: 0.5, Seed: 11}, data)
	tok, err := w.user.Query(data[0])
	if err != nil {
		t.Fatal(err)
	}
	ids, st, err := w.server.SearchWithStats(tok, 5, SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("got %d results", len(ids))
	}
	if st.Candidates < 5 || st.Comparisons == 0 || st.FilterTime <= 0 || st.RefineTime <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	// Refine cost bound: O(k′·log k) comparisons.
	if st.Comparisons > st.Candidates*12 {
		t.Fatalf("comparisons %d exceed O(k' log k) bound for %d candidates", st.Comparisons, st.Candidates)
	}
}

func TestAMERefineMatchesDCERefine(t *testing.T) {
	// Same filter phase, different exact comparator ⇒ identical result
	// sets (both are exact).
	const n, dim, k = 600, 10, 6
	data := clustered(7, n, dim, 6)
	w := newWorld(t, Params{Dim: dim, Beta: 1.0, Seed: 13, WithAME: true}, data)
	queries := makeQueries(8, data, 10, 0.3)
	for _, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.server.Search(tok, k, SearchOptions{RatioK: 8, Refine: RefineDCE})
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.server.Search(tok, k, SearchOptions{RatioK: 8, Refine: RefineAME})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d differs: DCE %d vs AME %d", i, a[i], b[i])
			}
		}
	}
}

func TestInsertThenFindable(t *testing.T) {
	const dim = 10
	data := clustered(9, 400, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.5, Seed: 15}, data)
	r := rng.NewSeeded(99)
	novel := rng.GaussianVec(r, dim, 30) // far from all clusters
	payload, err := w.owner.EncryptVector(novel)
	if err != nil {
		t.Fatal(err)
	}
	id, err := w.server.Insert(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 400 {
		t.Fatalf("insert id = %d, want 400", id)
	}
	tok, err := w.user.Query(novel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.server.Search(tok, 1, SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != id {
		t.Fatalf("inserted vector not found: got %v", got)
	}
}

func TestDeleteExcludedFromResults(t *testing.T) {
	const n, dim, k = 800, 10, 10
	data := clustered(10, n, dim, 6)
	w := newWorld(t, Params{Dim: dim, Beta: 0.5, Seed: 17}, data)
	q := data[50]
	tok, err := w.user.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	before, err := w.server.Search(tok, k, SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Delete the current top hit; it must disappear from results.
	if err := w.server.Delete(before[0]); err != nil {
		t.Fatal(err)
	}
	if !w.server.Deleted(before[0]) {
		t.Fatal("Deleted() bookkeeping wrong")
	}
	after, err := w.server.Search(tok, k, SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range after {
		if id == before[0] {
			t.Fatal("deleted id still returned")
		}
	}
	recall := recallOf(after, bruteForce(data, q, k, func(i int) bool { return i == before[0] }))
	if recall < 0.8 {
		t.Fatalf("recall after delete = %.3f", recall)
	}
}

func TestDeleteErrors(t *testing.T) {
	data := clustered(11, 100, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.5, Seed: 19}, data)
	if err := w.server.Delete(-1); err == nil {
		t.Fatal("expected error for negative id")
	}
	if err := w.server.Delete(100); err == nil {
		t.Fatal("expected error for out-of-range id")
	}
	if err := w.server.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := w.server.Delete(5); err == nil {
		t.Fatal("expected error for double delete")
	}
}

func TestSearchValidation(t *testing.T) {
	data := clustered(12, 100, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.5, Seed: 21}, data)
	if _, err := w.server.Search(nil, 5, SearchOptions{}); err == nil {
		t.Fatal("expected error for nil token")
	}
	tok, _ := w.user.Query(data[0])
	if _, err := w.server.Search(tok, 0, SearchOptions{}); err == nil {
		t.Fatal("expected error for k = 0")
	}
	if _, err := w.server.Search(tok, 5, SearchOptions{Refine: RefineAME}); err == nil {
		t.Fatal("expected error for AME refine without AME database")
	}
	filterTok, _ := w.user.QueryFilterOnly(data[0])
	if _, err := w.server.Search(filterTok, 5, SearchOptions{Refine: RefineDCE}); err == nil {
		t.Fatal("expected error for DCE refine without trapdoor")
	}
	if _, err := w.server.Search(filterTok, 5, SearchOptions{Refine: RefineNone}); err != nil {
		t.Fatalf("filter-only search with filter-only token failed: %v", err)
	}
}

func TestUserValidation(t *testing.T) {
	if _, err := NewUser(nil); err == nil {
		t.Fatal("expected error for nil key")
	}
	data := clustered(13, 50, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.5, Seed: 23}, data)
	if _, err := w.user.Query(make([]float64, 5)); err == nil {
		t.Fatal("expected error for wrong query dim")
	}
}

func TestOwnerValidation(t *testing.T) {
	owner, err := NewDataOwner(Params{Dim: 4, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.EncryptDatabase(nil); err == nil {
		t.Fatal("expected error for empty database")
	}
	if _, err := owner.EncryptDatabase([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for wrong vector dim")
	}
	if _, err := owner.EncryptVector([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("expected error for EncryptVector before EncryptDatabase")
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("expected error for nil database")
	}
	if _, err := NewServer(&EncryptedDatabase{}); err == nil {
		t.Fatal("expected error for empty database")
	}
}

func TestRatioKMonotonicRecall(t *testing.T) {
	// Figure 5's shape: recall ceiling grows with Ratio_k.
	const n, dim, k = 2000, 12, 10
	data := clustered(14, n, dim, 12)
	w := newWorld(t, Params{Dim: dim, Beta: 2.5, M: 12, EfConstruction: 150, Seed: 27}, data)
	queries := makeQueries(15, data, 30, 0.3)
	rec1 := w.measureRecall(t, queries, k, SearchOptions{RatioK: 1, EfSearch: 250})
	rec16 := w.measureRecall(t, queries, k, SearchOptions{RatioK: 16, EfSearch: 250})
	if rec16 < rec1 {
		t.Fatalf("recall fell as RatioK grew: %.3f (1) vs %.3f (16)", rec1, rec16)
	}
	if rec16-rec1 < 0.02 {
		t.Logf("warning: RatioK effect small (%.3f vs %.3f); beta may be low", rec1, rec16)
	}
}

func TestConcurrentSearches(t *testing.T) {
	data := clustered(16, 800, 10, 6)
	w := newWorld(t, Params{Dim: 10, Beta: 0.5, Seed: 29}, data)
	queries := makeQueries(17, data, 32, 0.3)
	done := make(chan error, len(queries))
	for _, q := range queries {
		go func(q []float64) {
			tok, err := w.user.Query(q)
			if err != nil {
				done <- err
				return
			}
			_, err = w.server.Search(tok, 5, SearchOptions{RatioK: 4})
			done <- err
		}(q)
	}
	for range queries {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
