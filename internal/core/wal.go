package core

import (
	"encoding/binary"
	"fmt"

	"ppanns/internal/dce"
	"ppanns/internal/pq"
	"ppanns/internal/wal"
)

// WAL payload codecs. The wal package frames, checksums and epoch-stamps
// records; core owns what goes inside:
//
//	insert: [id u64] [SAP floats frame] [DCE ciphertext frame] [PQ code frame]
//	delete: [id u64]
//
// The insert payload carries the PQ code row the server committed — replay
// re-appends the logged row verbatim rather than re-encoding, so a
// recovered server is bit-identical to the never-crashed one even across
// codebook retrains.

// appendInsertPayload encodes one insert record payload.
func appendInsertPayload(dst []byte, id uint64, sap []float64, ct *dce.Ciphertext, code []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = dce.AppendFloatsFrame(dst, sap)
	dst = dce.AppendCiphertextFrame(dst, ct)
	return pq.AppendCodeFrame(dst, code)
}

// parseInsertPayload decodes an insert record payload. The SAP vector and
// ciphertext own their storage; the code views p (callers append it into
// an arena immediately).
func parseInsertPayload(p []byte) (id uint64, sap []float64, ct dce.Ciphertext, code []byte, err error) {
	if len(p) < 8 {
		return 0, nil, dce.Ciphertext{}, nil, fmt.Errorf("core: wal insert payload of %d bytes", len(p))
	}
	id = binary.LittleEndian.Uint64(p)
	p = p[8:]
	if sap, p, err = dce.ParseFloatsFrame(p); err != nil {
		return 0, nil, dce.Ciphertext{}, nil, fmt.Errorf("core: wal insert payload: %w", err)
	}
	if ct, p, err = dce.ParseCiphertextFrame(p); err != nil {
		return 0, nil, dce.Ciphertext{}, nil, fmt.Errorf("core: wal insert payload: %w", err)
	}
	if code, p, err = pq.ParseCodeFrame(p); err != nil {
		return 0, nil, dce.Ciphertext{}, nil, fmt.Errorf("core: wal insert payload: %w", err)
	}
	if len(p) != 0 {
		return 0, nil, dce.Ciphertext{}, nil, fmt.Errorf("core: wal insert payload has %d trailing bytes", len(p))
	}
	return id, sap, ct, code, nil
}

func appendDeletePayload(dst []byte, id uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, id)
}

func parseDeletePayload(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("core: wal delete payload of %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// walLogOptions maps the server options onto the wal package's.
func walLogOptions(o ServerOptions) wal.Options {
	return wal.Options{
		Sync:         o.WALSync,
		SegmentBytes: o.WALSegmentBytes,
		FS:           o.walFS,
	}
}

// attachWAL opens a fresh log for a NewServerWith-constructed server and
// seeds it with an initial checkpoint of edb, so the directory is
// recoverable from the first acknowledged write onward.
func (s *Server) attachWAL(edb *EncryptedDatabase, o ServerOptions) error {
	if edb.AME != nil {
		return fmt.Errorf("core: WALDir cannot durably host AME ciphertexts (benchmark-only tier; neither logged nor persisted)")
	}
	lg, rec, err := wal.Open(o.WALDir, walLogOptions(o))
	if err != nil {
		return err
	}
	if rec.Records > 0 || len(rec.Barriers) > 0 {
		lg.Close()
		return fmt.Errorf("core: WAL dir %s already holds a log (%d records, %d checkpoints); recover it with OpenServer", o.WALDir, rec.Records, len(rec.Barriers))
	}
	b := wal.Barrier{Epoch: 0, Gen: 0, Records: uint64(edb.DCE.Len())}
	if err := lg.Checkpoint(b, edb.Save); err != nil {
		lg.Close()
		return fmt.Errorf("core: writing initial checkpoint: %w", err)
	}
	s.wal = lg
	s.walPolicy = o.WALSync
	return nil
}

// RecoveryStats describes what OpenServer found in the WAL directory and
// how much it replayed.
type RecoveryStats struct {
	// Checkpoint identifies the snapshot recovery started from.
	Checkpoint      string
	CheckpointEpoch uint64
	CheckpointGen   uint64
	// Replayed is the number of mutation records applied over the
	// checkpoint; Epoch is the server's mutation count afterwards.
	Replayed int
	Epoch    uint64
	// Truncated describes the torn-tail repair performed, empty when the
	// log was clean; TruncatedBytes and DroppedSegments quantify it.
	Truncated       string
	TruncatedBytes  int64
	DroppedSegments int
	// SkippedCheckpoints counts barrier records whose snapshot file was
	// missing or unreadable (e.g. a crash between snapshot rename and
	// barrier append can never cause this, but a manually damaged dir
	// can); recovery fell back to an older checkpoint.
	SkippedCheckpoints int
}

// OpenServer recovers a server from a WAL directory: it repairs the log's
// torn tail, loads the newest usable checkpoint snapshot, replays every
// acknowledged mutation after it, and resumes logging. The epoch and
// generation are restored, so the replicated tier's epoch-floor contract
// holds across the crash-restart.
func OpenServer(walDir string, o ServerOptions) (*Server, RecoveryStats, error) {
	var stats RecoveryStats
	lg, rec, err := wal.Open(walDir, walLogOptions(o))
	if err != nil {
		return nil, stats, err
	}
	stats.Truncated = rec.Truncated
	stats.TruncatedBytes = rec.TruncatedBytes
	stats.DroppedSegments = rec.DroppedSegments

	// Newest barrier whose snapshot file is present and loadable wins.
	var edb *EncryptedDatabase
	var from *wal.Barrier
	for i := len(rec.Barriers) - 1; i >= 0 && edb == nil; i-- {
		b := rec.Barriers[i]
		rc, oerr := lg.OpenCheckpoint(b.Name)
		if oerr != nil {
			stats.SkippedCheckpoints++
			continue
		}
		loaded, lerr := LoadEncryptedDatabase(rc)
		rc.Close()
		if lerr != nil {
			stats.SkippedCheckpoints++
			continue
		}
		if got := uint64(loaded.DCE.Len()); got != b.Records {
			lg.Close()
			return nil, stats, fmt.Errorf("core: checkpoint %s holds %d records, barrier recorded %d", b.Name, got, b.Records)
		}
		edb = loaded
		from = &rec.Barriers[i]
	}
	if edb == nil {
		lg.Close()
		if rec.Records == 0 && len(rec.Barriers) == 0 {
			return nil, stats, fmt.Errorf("core: WAL dir %s holds no checkpoint and no log records; create the server with NewServerWith(ServerOptions{WALDir: ...}) first", walDir)
		}
		return nil, stats, fmt.Errorf("core: WAL dir %s has a log tail but no usable checkpoint (%d records, %d unusable barriers); the acknowledged writes cannot be anchored — restore the checkpoint file or re-clone from a replica", walDir, rec.Records, stats.SkippedCheckpoints)
	}
	stats.Checkpoint = from.Name
	stats.CheckpointEpoch = from.Epoch
	stats.CheckpointGen = from.Gen

	if o.CompactAt == 0 {
		o.CompactAt = DefaultCompactAt
	}
	s := &Server{compactAt: o.CompactAt, compactAtBytes: o.CompactAtBytes}
	s.snap.Store(&snapshot{
		edb:    edb,
		frozen: edb.DCE.Len(),
		epoch:  from.Epoch,
		gen:    from.Gen,
	})

	// Replay acknowledged mutations over the checkpoint, asserting epoch
	// contiguity: the log was appended in epoch order under the writer
	// mutex, so any gap means lost or reordered records — corruption the
	// CRC layer could not see — and recovery must fail loudly rather than
	// serve a silently diverged database.
	err = lg.Replay(from.Epoch, func(kind wal.Kind, epoch uint64, payload []byte) error {
		cur := s.snap.Load()
		if epoch != cur.epoch+1 {
			return fmt.Errorf("core: wal replay epoch gap: record at epoch %d over state at epoch %d", epoch, cur.epoch)
		}
		switch kind {
		case wal.KindInsert:
			id, sap, ct, code, perr := parseInsertPayload(payload)
			if perr != nil {
				return perr
			}
			if want := uint64(cur.edb.DCE.Len()); id != want {
				return fmt.Errorf("core: wal replay: insert record for id %d, next id is %d", id, want)
			}
			if len(sap) != cur.edb.Dim {
				return fmt.Errorf("core: wal replay: insert dim %d, database dim %d", len(sap), cur.edb.Dim)
			}
			if d := cur.edb.DCE.CtDim(); len(ct.P1) != d {
				return fmt.Errorf("core: wal replay: ciphertext dim %d, store dim %d", len(ct.P1), d)
			}
			if cur.edb.PQ != nil {
				if len(code) != cur.edb.PQ.Book.M() {
					return fmt.Errorf("core: wal replay: PQ code of %d bytes, codebook M=%d", len(code), cur.edb.PQ.Book.M())
				}
			} else if code != nil {
				return fmt.Errorf("core: wal replay: PQ code on a database without a PQ tier")
			}
			s.wmu.Lock()
			s.publishInsert(cur, sap, &ct, nil, code)
			s.wmu.Unlock()
		case wal.KindDelete:
			id, perr := parseDeletePayload(payload)
			if perr != nil {
				return perr
			}
			pos := int(id)
			if pos < 0 || pos >= cur.edb.DCE.Len() || !cur.edb.DCE.Has(pos) || cur.tombed(pos) {
				return fmt.Errorf("core: wal replay: delete of id %d not live at epoch %d", id, cur.epoch)
			}
			s.wmu.Lock()
			s.publishDelete(cur, pos)
			s.wmu.Unlock()
		default:
			return fmt.Errorf("core: wal replay: unexpected record kind %v", kind)
		}
		stats.Replayed++
		return nil
	})
	if err != nil {
		lg.Close()
		return nil, stats, err
	}
	stats.Epoch = s.snap.Load().epoch

	s.wal = lg
	s.walPolicy = o.WALSync
	s.maybeCompact()
	return s, stats, nil
}

// walCheckpoint persists the folded database as the log's new recovery
// base: the PPANNSD5 snapshot goes through the atomic-persist path, a
// barrier record marks it durable, and sealed segments wholly behind it
// are garbage-collected. Called by compactFold with cmu held (checkpoints
// are serialized); concurrent Insert/Delete appends are safe throughout.
func (s *Server) walCheckpoint(edb *EncryptedDatabase, epoch, gen uint64) error {
	b := wal.Barrier{Epoch: epoch, Gen: gen, Records: uint64(edb.DCE.Len())}
	if err := s.wal.Checkpoint(b, edb.Save); err != nil {
		return fmt.Errorf("core: wal checkpoint at epoch %d: %w", epoch, err)
	}
	return nil
}

// WALStats summarizes the attached write-ahead log, nil when the server
// runs without one.
type WALStats struct {
	// Dir is the log directory; Policy names the sync policy.
	Dir    string
	Policy string
	// Segments and Bytes size the live log files.
	Segments int
	Bytes    int64
	// Appended and Synced are the per-process LSN watermarks: records
	// appended and records known durable.
	Appended uint64
	Synced   uint64
	// Checkpoint describes the newest recovery base.
	Checkpoint      string
	CheckpointEpoch uint64
	CheckpointGen   uint64
}

// WALStats reports the attached log's shape, or nil without a WAL.
func (s *Server) WALStats() *WALStats {
	if s.wal == nil {
		return nil
	}
	st := s.wal.Stats()
	w := &WALStats{
		Dir:      st.Dir,
		Policy:   s.walPolicy.String(),
		Segments: st.Segments,
		Bytes:    st.Bytes,
		Appended: st.Appended,
		Synced:   st.Synced,
	}
	if st.Barrier != nil {
		w.Checkpoint = st.Barrier.Name
		w.CheckpointEpoch = st.Barrier.Epoch
		w.CheckpointGen = st.Barrier.Gen
	}
	return w
}

// Close releases the server's write-ahead log, syncing everything appended
// so far; a server without a WAL needs no Close. It waits out an in-flight
// background compaction (and its checkpoint) first, then refuses further
// logged writes. Search remains usable after Close; Insert/Delete fail.
func (s *Server) Close() error {
	if s.wal == nil {
		return nil
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.wal.Close()
}

// SaveTo writes the server's flushed database atomically to path — the
// offline-recovery (ppanns-dbtool recover) output path and a convenience
// for operators snapshotting a live server.
func (s *Server) SaveTo(path string) error {
	edb, err := s.Flush()
	if err != nil {
		return err
	}
	return wal.WriteFileAtomic(path, edb.Save)
}
