package core

import (
	"fmt"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
)

// Compacted returns an offline-compacted copy of the database: every
// tombstoned record is dropped entirely and the survivors are renumbered
// densely to 0..Live()-1 (relative order preserved), with the filter index
// rebuilt over the surviving SAP ciphertexts under the receiver's build
// configuration. The receiver is unmodified.
//
// Unlike the serving tier's online compaction — which must keep ids stable
// because shard striping and user-visible ids depend on positions — the
// offline form renumbers, genuinely shrinking the database. It is therefore
// only safe on a database at rest (the dbtool compact contract): after
// compacting, previously handed-out ids are meaningless and any shard
// striping must be re-derived by re-splitting the compacted file.
func (e *EncryptedDatabase) Compacted() (*EncryptedDatabase, error) {
	n := e.DCE.Len()
	ctDim := e.DCE.CtDim()
	vecs := make([][]float64, 0, e.DCE.Live())
	oldIDs := make([]int, 0, e.DCE.Live())
	for id := 0; id < n; id++ {
		if !e.DCE.Has(id) {
			continue
		}
		v, ok := e.Index.Vector(id)
		if !ok {
			return nil, fmt.Errorf("core: offline compaction: index has no vector for id %d", id)
		}
		vecs = append(vecs, v)
		oldIDs = append(oldIDs, id)
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("core: offline compaction: database has no live records")
	}
	idx, err := e.Index.Rebuild(vecs)
	if err != nil {
		return nil, fmt.Errorf("core: offline compaction rebuild: %w", err)
	}
	if idx.Len() != len(vecs) {
		return nil, fmt.Errorf("core: offline compaction rebuild produced %d ids, want %d", idx.Len(), len(vecs))
	}
	// Dense repack of the ciphertext arena: record j of the new store is
	// record oldIDs[j] of the receiver, every slot live.
	rec := 4 * ctDim
	arena := make([]float64, len(oldIDs)*rec)
	live := make([]bool, len(oldIDs))
	for j, id := range oldIDs {
		copy(arena[j*rec:(j+1)*rec], e.DCE.Record(id))
		live[j] = true
	}
	store, err := dce.StoreFromRaw(ctDim, arena, live)
	if err != nil {
		return nil, fmt.Errorf("core: offline compaction: %w", err)
	}
	ne := &EncryptedDatabase{Dim: e.Dim, Backend: e.Backend, Index: idx, DCE: store}
	if e.AME != nil {
		ne.AME = make([]*ame.Ciphertext, len(oldIDs))
		for j, id := range oldIDs {
			ne.AME[j] = e.AME[id]
		}
	}
	return ne, nil
}
