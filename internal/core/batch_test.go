package core

import (
	"bytes"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	data := clustered(61, 1000, 10, 8)
	w := newWorld(t, Params{Dim: 10, Beta: 0.5, Seed: 61}, data)
	queries := makeQueries(62, data, 24, 0.3)
	toks := make([]*QueryToken, len(queries))
	for i, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		toks[i] = tok
	}
	opt := SearchOptions{RatioK: 8, EfSearch: 80}
	batch, err := w.server.SearchBatch(toks, 5, opt, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(toks) {
		t.Fatalf("batch returned %d results", len(batch))
	}
	for i, tok := range toks {
		seq, err := w.server.Search(tok, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(batch[i]) {
			t.Fatalf("query %d: batch %v vs sequential %v", i, batch[i], seq)
		}
		for j := range seq {
			if batch[i][j] != seq[j] {
				t.Fatalf("query %d rank %d: batch %d vs sequential %d", i, j, batch[i][j], seq[j])
			}
		}
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	data := clustered(63, 100, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 63}, data)
	res, err := w.server.SearchBatch(nil, 5, SearchOptions{}, 0)
	if err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
}

func TestSearchBatchPropagatesErrors(t *testing.T) {
	data := clustered(64, 100, 6, 2)
	w := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 64}, data)
	tok, err := w.user.QueryFilterOnly(data[0]) // lacks the DCE trapdoor
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.server.SearchBatch([]*QueryToken{tok}, 5, SearchOptions{}, 2); err == nil {
		t.Fatal("expected error to propagate from the batch")
	}
}

func TestSearchBatchPartialFailureKeepsResults(t *testing.T) {
	data := clustered(66, 400, 8, 4)
	w := newWorld(t, Params{Dim: 8, Beta: 0.3, Seed: 66}, data)
	good := make([]*QueryToken, 3)
	for i := range good {
		tok, err := w.user.Query(data[i])
		if err != nil {
			t.Fatal(err)
		}
		good[i] = tok
	}
	bad, err := w.user.QueryFilterOnly(data[9]) // lacks the DCE trapdoor
	if err != nil {
		t.Fatal(err)
	}
	toks := []*QueryToken{good[0], bad, good[1], nil, good[2]}

	results, batchErr := w.server.SearchBatch(toks, 5, SearchOptions{RatioK: 8}, 3)
	if batchErr == nil {
		t.Fatal("expected a batch error for the failed queries")
	}
	var be *BatchError
	if !errors.As(batchErr, &be) {
		t.Fatalf("batch error has type %T, want *BatchError", batchErr)
	}
	if len(be.Failed) != 2 || be.Failed[0].Query != 1 || be.Failed[1].Query != 3 {
		t.Fatalf("failed set = %+v, want queries 1 and 3", be.Failed)
	}
	// One bad query must not void the good answers.
	for _, i := range []int{0, 2, 4} {
		if len(results[i]) != 5 {
			t.Fatalf("good query %d lost its results: %v", i, results[i])
		}
	}
	for _, i := range []int{1, 3} {
		if results[i] != nil {
			t.Fatalf("failed query %d has non-nil results %v", i, results[i])
		}
	}

	// The raw per-query error slice mirrors the same split.
	results2, errs := w.server.SearchBatchErrs(toks, 5, SearchOptions{RatioK: 8}, 0)
	for i, err := range errs {
		failed := i == 1 || i == 3
		if (err != nil) != failed {
			t.Fatalf("query %d: err = %v, want failure=%v", i, err, failed)
		}
		if !failed && len(results2[i]) != 5 {
			t.Fatalf("query %d: results %v", i, results2[i])
		}
	}
}

func TestCorruptedDatabaseDetected(t *testing.T) {
	data := clustered(65, 300, 8, 3)
	w := newWorld(t, Params{Dim: 8, Beta: 0.3, Seed: 65}, data)
	var buf bytes.Buffer
	err := w.server.Database().Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one byte inside the first ciphertext record (past magic+header).
	corrupt := append([]byte(nil), raw...)
	corrupt[64] ^= 0xFF
	if _, err := LoadEncryptedDatabase(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bit flip in ciphertext payload not detected")
	}
	// Unmodified stream still loads.
	if _, err := LoadEncryptedDatabase(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine stream failed to load: %v", err)
	}
}

// TestBatchParallelismResolution pins the worker-count resolution chain of
// the batch executors: explicit argument, then SearchOptions.Parallelism
// (which travels over the wire), then one worker per CPU.
func TestBatchParallelismResolution(t *testing.T) {
	if got := (SearchOptions{}).parallelism(5); got != 5 {
		t.Fatalf("explicit argument: %d, want 5", got)
	}
	if got := (SearchOptions{Parallelism: 3}).parallelism(0); got != 3 {
		t.Fatalf("options fallback: %d, want 3", got)
	}
	if got := (SearchOptions{Parallelism: 3}).parallelism(2); got != 2 {
		t.Fatalf("explicit argument must win: %d, want 2", got)
	}
	if got, want := (SearchOptions{}).parallelism(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default: %d, want GOMAXPROCS %d", got, want)
	}

	// forEachQuery spins up exactly the resolved worker count (capped by
	// the queue length).
	var workers atomic.Int32
	forEachQuery(10, 3, func() func(int) {
		workers.Add(1)
		return func(int) {}
	})
	if got := workers.Load(); got != 3 {
		t.Fatalf("forEachQuery started %d workers, want 3", got)
	}
	workers.Store(0)
	forEachQuery(2, 8, func() func(int) {
		workers.Add(1)
		return func(int) {}
	})
	if got := workers.Load(); got != 2 {
		t.Fatalf("forEachQuery started %d workers for 2 queries, want 2", got)
	}
}
