package core

import (
	"bytes"
	"strings"
	"testing"

	"ppanns/internal/pq"
)

// pqSectionOffset computes where the PQ flag byte sits in a PPANNSD5 blob:
// right after the arena checksum, before the PQ section / index payload.
func pqSectionOffset(e *EncryptedDatabase) int {
	return len(edbMagic) + 1 + len(e.Backend) + 3*8 + // magic, tag, header
		e.DCE.Len() + // presence bitmap
		e.DCE.Len()*4*e.DCE.CtDim()*8 + // arena
		4 // crc
}

// TestPQDatabaseRoundTrip proves the PPANNSD5 format carries the
// compressed tier faithfully: codes, codebook provenance and FilterPQ
// search results all survive a save/load cycle, and a corrupted PQ
// section fails the load instead of skewing filter distances.
func TestPQDatabaseRoundTrip(t *testing.T) {
	data := clustered(81, 400, 8, 4)
	w := newWorld(t, Params{Dim: 8, Beta: 0.5, Seed: 81, PQ: true, PQM: 4}, data)
	if err := w.server.Delete(7); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := w.server.Database().Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	edb2, err := LoadEncryptedDatabase(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	orig := w.server.Database()
	if edb2.PQ == nil {
		t.Fatal("PQ tier lost across round-trip")
	}
	if !bytes.Equal(edb2.PQ.Codes.Raw(), orig.PQ.Codes.Raw()) {
		t.Fatal("PQ codes changed across round-trip")
	}
	if edb2.PQ.TrainedOn != orig.PQ.TrainedOn || edb2.PQ.Cfg != orig.PQ.Cfg {
		t.Fatalf("PQ provenance changed: %d/%+v vs %d/%+v",
			edb2.PQ.TrainedOn, edb2.PQ.Cfg, orig.PQ.TrainedOn, orig.PQ.Cfg)
	}
	server2, err := NewServer(edb2)
	if err != nil {
		t.Fatal(err)
	}
	opt := SearchOptions{RatioK: 12, EfSearch: 150, FilterDist: FilterPQ}
	for _, q := range makeQueries(82, data, 10, 0.3) {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.server.Search(tok, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := server2.Search(tok, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result counts differ after round-trip: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("FilterPQ results diverge after round-trip: %v vs %v", a, b)
			}
		}
	}

	off := pqSectionOffset(orig)
	if blob[off] != 1 {
		t.Fatalf("PQ flag byte at %d is %d, want 1", off, blob[off])
	}
	// A flipped byte inside the PQ section must fail the CRC at load.
	bad := append([]byte(nil), blob...)
	bad[off+200] ^= 0x20
	if _, err := LoadEncryptedDatabase(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "PQ") {
		t.Fatalf("corrupted PQ section loaded: %v", err)
	}
	// A corrupt flag byte must be rejected, not treated as a mode.
	bad = append([]byte(nil), blob...)
	bad[off] = 7
	if _, err := LoadEncryptedDatabase(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "PQ flag") {
		t.Fatalf("corrupt PQ flag accepted: %v", err)
	}
}

// TestV4LoadsWithoutPQ proves backward compatibility: a PPANNSD4 file —
// synthesized byte-exactly by stripping the D5 flag byte from a no-PQ
// save — loads with PQ absent, searches identically, and accepts an
// on-demand BuildPQ afterwards.
func TestV4LoadsWithoutPQ(t *testing.T) {
	data := clustered(83, 400, 8, 4)
	w := newWorld(t, Params{Dim: 8, Beta: 0.5, Seed: 83}, data)

	var buf bytes.Buffer
	if err := w.server.Database().Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	off := pqSectionOffset(w.server.Database())
	if blob[off] != 0 {
		t.Fatalf("no-PQ save has flag byte %d at %d, want 0", blob[off], off)
	}
	v4 := append([]byte(nil), edbMagicV4...)
	v4 = append(v4, blob[len(edbMagic):off]...)
	v4 = append(v4, blob[off+1:]...)

	edb2, err := LoadEncryptedDatabase(bytes.NewReader(v4))
	if err != nil {
		t.Fatalf("loading synthesized V4 file: %v", err)
	}
	if edb2.PQ != nil {
		t.Fatal("V4 file load conjured a PQ tier")
	}
	server2, err := NewServer(edb2)
	if err != nil {
		t.Fatal(err)
	}
	opt := SearchOptions{RatioK: 12, EfSearch: 150}
	tok, err := w.user.Query(data[0])
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.server.Search(tok, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server2.Search(tok, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("V4 load changed search results: %v vs %v", a, b)
		}
	}
	// The on-demand rebuild path must light up FilterPQ on the old file.
	if err := edb2.BuildPQ(pq.TrainConfig{M: 4}); err != nil {
		t.Fatal(err)
	}
	server3, err := NewServer(edb2)
	if err != nil {
		t.Fatal(err)
	}
	opt.FilterDist = FilterPQ
	if got, err := server3.Search(tok, 5, opt); err != nil || len(got) == 0 {
		t.Fatalf("FilterPQ after on-demand BuildPQ: %v, %v", got, err)
	}
}
