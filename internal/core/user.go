package core

import "fmt"

// User is the query party: it holds the authorized key material and
// encrypts queries. Per property P3, this is the user's entire computational
// role — O(d²) work per query, no participation in the search itself.
//
// A User is NOT safe for concurrent Query calls: trapdoor generation draws
// per-query randomness from the key's single (unsynchronized) stream.
// Encrypt tokens from one goroutine — or use one User per goroutine — and
// share the resulting tokens freely; tokens are immutable and the serving
// side is fully concurrent.
type User struct {
	key *UserKey
}

// NewUser creates a user from the owner-authorized key.
func NewUser(key *UserKey) (*User, error) {
	if key == nil || key.DCE == nil || key.SAP == nil {
		return nil, fmt.Errorf("core: incomplete user key")
	}
	if key.DCE.Dim() != key.SAP.Dim() {
		return nil, fmt.Errorf("core: key dimension mismatch %d vs %d", key.DCE.Dim(), key.SAP.Dim())
	}
	return &User{key: key}, nil
}

// Dim returns the query dimension.
func (u *User) Dim() int { return u.key.DCE.Dim() }

// Query encrypts a plaintext query into the token sent to the server:
// C_SAP(q) for the filter phase and T_q for the refine phase (plus the AME
// trapdoor when the deployment benchmarks the HNSW-AME baseline).
func (u *User) Query(q []float64) (*QueryToken, error) {
	if len(q) != u.Dim() {
		return nil, fmt.Errorf("core: query has dim %d, want %d", len(q), u.Dim())
	}
	tok := &QueryToken{
		SAP:      u.key.SAP.Encrypt(q),
		Trapdoor: u.key.DCE.TrapGen(q),
	}
	if u.key.AME != nil {
		tok.AME = u.key.AME.TrapGen(q)
	}
	return tok, nil
}

// QueryFilterOnly encrypts a query with just the SAP ciphertext — used by
// the filter-only ablation and by parameter-tuning sweeps that never reach
// the refine phase.
func (u *User) QueryFilterOnly(q []float64) (*QueryToken, error) {
	if len(q) != u.Dim() {
		return nil, fmt.Errorf("core: query has dim %d, want %d", len(q), u.Dim())
	}
	return &QueryToken{SAP: u.key.SAP.Encrypt(q)}, nil
}
