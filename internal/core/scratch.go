package core

import (
	"sync"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
	"ppanns/internal/pq"
	"ppanns/internal/resultheap"
)

// searchScratch is the per-search working set, pooled so the steady-state
// hot path performs no allocation: the filter-phase item buffer, the
// candidate id list, the refine heap with its drain buffer, the pooled
// comparators, and the optional trapdoor-scaled operand arena.
//
// Every Search call checks one scratch out of the pool and returns it on
// exit, so concurrent SearchBatch workers each hold their own scratch
// without coordination.
type searchScratch struct {
	items  []resultheap.Item
	cands  []int
	sorted []int
	ops    []float64
	tier   tierScratch
	heap   resultheap.CompareHeap
	pq     dce.PreparedQuery
	pqsc   pq.Scanner
	dce    dceComparator
	ame    ameComparator
}

// tierScratch is the filter phase's two-tier staging area: the main-tier
// index results (pre-masking) and the delta-tier scan results, merged by
// snapshot.filterInto. Pooled alongside the rest of the search scratch so
// the tiered filter allocates nothing in steady state.
type tierScratch struct {
	main  []resultheap.Item
	delta []resultheap.Item
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

func getScratch() *searchScratch { return scratchPool.Get().(*searchScratch) }

func putScratch(sc *searchScratch) {
	// Drop per-query references (trapdoors, the ciphertext store) so a
	// pooled scratch never pins another tenant's query material; the flat
	// buffers are the point of the pool and stay.
	sc.pq.Reset()
	sc.pqsc.Reset()
	sc.dce = dceComparator{}
	sc.ame = ameComparator{}
	scratchPool.Put(sc)
}

// dceComparator implements resultheap.Comparator over candidate positions
// (indexes into cands), backed by the pooled PreparedQuery — the store
// binding and trapdoor validation are paid exactly once per query, before
// the heap starts comparing. With ops set (the trapdoor-scaled operands
// from CiphertextStore.ScaleOperands) each comparison runs the cheaper
// two-multiply kernel.
//
// A pooled struct pointer stands in for the per-search closure the old
// code allocated; the heap stores positions so the comparator can address
// the precomputed operand blocks directly.
type dceComparator struct {
	pq    *dce.PreparedQuery
	cands []int
	ops   []float64 // nil unless precomputed; 2·ctDim floats per candidate
	ctDim int
}

func (c *dceComparator) Farther(a, b int) bool {
	if c.ops != nil {
		st := 2 * c.ctDim
		return c.pq.Store().ScaledComp(c.ops[a*st:(a+1)*st], c.cands[b]) > 0
	}
	return c.pq.Comp(c.cands[a], c.cands[b]) > 0
}

// ameComparator is the AME-baseline counterpart of dceComparator.
type ameComparator struct {
	cts   []*ame.Ciphertext
	cands []int
	tq    *ame.Trapdoor
}

func (c *ameComparator) Farther(a, b int) bool {
	return ame.Compare(c.cts[c.cands[a]], c.cts[c.cands[b]], c.tq) > 0
}

// refineScratch runs Algorithm 2's bounded max-heap selection over
// candidate positions 0..len(cands)-1 using the scratch's pooled heap,
// then maps the surviving positions back to external ids appended into
// dst. Returns dst and the secure-comparison count.
func refineScratch(sc *searchScratch, cands []int, k int, cmp resultheap.Comparator, dst []int) ([]int, int) {
	if k > len(cands) {
		k = len(cands)
	}
	sc.heap.Reset(k, cmp)
	for i := range cands {
		sc.heap.Offer(i)
	}
	sc.sorted = sc.heap.SortedInto(sc.sorted)
	dst = dst[:0]
	for _, pos := range sc.sorted {
		dst = append(dst, cands[pos])
	}
	return dst, sc.heap.Comparisons()
}
