package core

import (
	"strings"
	"testing"

	"ppanns/internal/index"
	"ppanns/internal/resultheap"
)

// TestSearchIntoZeroAlloc pins the tentpole guarantee: once the scratch
// and context pools are warm and the caller recycles its result buffer, a
// full filter-and-refine search allocates nothing.
func TestSearchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	data := clustered(81, 1200, 10, 8)
	w := newWorld(t, Params{Dim: 10, Beta: 0.3, Seed: 81}, data)
	queries := makeQueries(82, data, 8, 0.3)
	toks := make([]*QueryToken, len(queries))
	for i, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		toks[i] = tok
	}
	opts := map[string]SearchOptions{
		"plain":      {RatioK: 8, EfSearch: 80},
		"precompute": {RatioK: 8, EfSearch: 80, PrecomputeRefine: true},
	}
	var dst []int
	for name, opt := range opts {
		// Warm-up: grow every pooled buffer to its steady-state size.
		for _, tok := range toks {
			var err error
			dst, _, err = w.server.SearchInto(dst, tok, 5, opt)
			if err != nil {
				t.Fatal(err)
			}
		}
		// A GC cycle landing mid-measurement can drain the sync.Pools and
		// charge the refill to this run; retry so only a persistent
		// allocation fails the test.
		i := 0
		var allocs float64
		for attempt := 0; attempt < 3; attempt++ {
			allocs = testing.AllocsPerRun(64, func() {
				tok := toks[i%len(toks)]
				i++
				var err error
				dst, _, err = w.server.SearchInto(dst, tok, 5, opt)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs == 0 {
				break
			}
		}
		if allocs != 0 {
			t.Errorf("%s: steady-state SearchInto allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

// TestPrecomputeRefineMatchesPlain checks the scaled-operand kernel makes
// the same selections as the direct kernel.
func TestPrecomputeRefineMatchesPlain(t *testing.T) {
	data := clustered(83, 800, 12, 6)
	w := newWorld(t, Params{Dim: 12, Beta: 0.4, Seed: 83}, data)
	for qi, q := range makeQueries(84, data, 25, 0.3) {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		plain, stPlain, err := w.server.SearchWithStats(tok, 5, SearchOptions{RatioK: 16})
		if err != nil {
			t.Fatal(err)
		}
		pre, stPre, err := w.server.SearchWithStats(tok, 5, SearchOptions{RatioK: 16, PrecomputeRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(pre) {
			t.Fatalf("query %d: result counts %d vs %d", qi, len(plain), len(pre))
		}
		for i := range plain {
			if plain[i] != pre[i] {
				t.Fatalf("query %d rank %d: plain %d vs precomputed %d", qi, i, plain[i], pre[i])
			}
		}
		if stPlain.Comparisons != stPre.Comparisons {
			t.Fatalf("query %d: comparison counts diverge %d vs %d", qi, stPlain.Comparisons, stPre.Comparisons)
		}
	}
}

// rogueIndex wraps a real backend but shifts every returned id, simulating
// a filter index that has fallen out of step with the ciphertext store.
type rogueIndex struct {
	index.SecureIndex
	shift int
}

func (r *rogueIndex) Search(q []float64, k, ef int) []resultheap.Item {
	return r.SearchInto(nil, q, k, ef)
}

func (r *rogueIndex) SearchInto(dst []resultheap.Item, q []float64, k, ef int) []resultheap.Item {
	dst = r.SecureIndex.SearchInto(dst, q, k, ef)
	for i := range dst {
		dst[i].ID += r.shift
	}
	return dst
}

// TestSearchRejectsUnknownCandidateIDs covers the hardening satellite: a
// filter backend yielding ids with no DCE ciphertext must produce a
// wire-safe error, not a panic in the serving process.
func TestSearchRejectsUnknownCandidateIDs(t *testing.T) {
	data := clustered(85, 300, 8, 3)
	w := newWorld(t, Params{Dim: 8, Beta: 0.3, Seed: 85}, data)
	tok, err := w.user.Query(data[0])
	if err != nil {
		t.Fatal(err)
	}
	w.server.Database().Index = &rogueIndex{SecureIndex: w.server.Database().Index, shift: len(data)}
	_, _, err = w.server.SearchWithStats(tok, 5, SearchOptions{RatioK: 8})
	if err == nil {
		t.Fatal("expected error for out-of-store candidate ids")
	}
	if !strings.Contains(err.Error(), "no DCE ciphertext") {
		t.Fatalf("error %q is not the wire-safe candidate rejection", err)
	}
	// Negative ids are rejected the same way, not by panicking.
	w.server.Database().Index.(*rogueIndex).shift = -len(data)
	if _, _, err = w.server.SearchWithStats(tok, 5, SearchOptions{RatioK: 8}); err == nil {
		t.Fatal("expected error for negative candidate ids")
	}
}
