package core

import (
	"strings"
	"testing"

	"ppanns/internal/index"
)

func TestSplitPartitionsStripe(t *testing.T) {
	const n, dim, shards = 500, 8, 3
	data := clustered(31, n, dim, 5)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 31}, data)
	edb := w.server.Database()

	// Tombstone a couple of ids before splitting so the stripe has holes.
	for _, id := range []int{4, 7} {
		if err := w.server.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	parts, err := edb.Split(shards, index.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != shards {
		t.Fatalf("Split returned %d shards, want %d", len(parts), shards)
	}
	var total, live int
	for s, p := range parts {
		wantCnt := (n - s + shards - 1) / shards
		if p.Len() != wantCnt {
			t.Fatalf("shard %d holds %d records, want %d", s, p.Len(), wantCnt)
		}
		if p.Dim != dim || p.Backend != edb.Backend {
			t.Fatalf("shard %d shape %d/%q, want %d/%q", s, p.Dim, p.Backend, dim, edb.Backend)
		}
		total += p.Len()
		live += p.DCE.Live()
		// Every local record must be a bit-exact copy of its global record,
		// with tombstones preserved in place.
		for local := 0; local < p.Len(); local++ {
			g := local*shards + s
			if p.DCE.Has(local) != edb.DCE.Has(g) {
				t.Fatalf("shard %d local %d liveness %v, global id %d is %v",
					s, local, p.DCE.Has(local), g, edb.DCE.Has(g))
			}
			want := edb.DCE.Record(g)
			got := p.DCE.Record(local)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("shard %d local %d record differs from global id %d at %d", s, local, g, j)
				}
			}
		}
		if p.Index.Len() != p.DCE.Live() {
			t.Fatalf("shard %d index holds %d live, store %d", s, p.Index.Len(), p.DCE.Live())
		}
	}
	if total != n {
		t.Fatalf("shards hold %d records total, want %d", total, n)
	}
	if live != edb.DCE.Live() {
		t.Fatalf("shards hold %d live records, want %d", live, edb.DCE.Live())
	}

	// Each shard must answer queries as a standalone server.
	for s, p := range parts {
		srv, err := NewServer(p)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		ids, err := srv.Search(mustToken(t, w, data[0]), 3, SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatalf("shard %d search: %v", s, err)
		}
		if len(ids) == 0 {
			t.Fatalf("shard %d returned no results", s)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	data := clustered(32, 40, 6, 3)
	w := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 32}, data)
	if _, err := w.server.Database().Split(0, index.Options{}); err == nil {
		t.Fatal("expected error for zero shard count")
	}
	if _, err := w.server.Database().Split(41, index.Options{}); err == nil {
		t.Fatal("expected error for more shards than vectors")
	}
	if parts, err := w.server.Database().Split(1, index.Options{}); err != nil || len(parts) != 1 {
		t.Fatalf("single-shard split: %d parts, %v", len(parts), err)
	}
}

func TestSearchShardMatchesSearch(t *testing.T) {
	const n, dim, k = 400, 8, 5
	data := clustered(33, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 33, WithAME: true}, data)
	opt := SearchOptions{RatioK: 8}
	for _, mode := range []RefineMode{RefineDCE, RefineNone, RefineAME} {
		opt.Refine = mode
		tok := mustToken(t, w, data[2])
		want, err := w.server.Search(tok, k, opt)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res, err := w.server.SearchShard(tok, k, opt)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.IDs) != len(want) {
			t.Fatalf("%v: SearchShard returned %d ids, Search %d", mode, len(res.IDs), len(want))
		}
		for i := range want {
			if res.IDs[i] != want[i] {
				t.Fatalf("%v rank %d: SearchShard id %d, Search id %d", mode, i, res.IDs[i], want[i])
			}
		}
		switch mode {
		case RefineDCE:
			if len(res.Recs) != len(res.IDs) || res.CtDim != w.server.Database().DCE.CtDim() {
				t.Fatalf("DCE merge material malformed: %d recs, ctDim %d", len(res.Recs), res.CtDim)
			}
			for i, id := range res.IDs {
				want := w.server.Database().DCE.Record(id)
				if len(res.Recs[i]) != len(want) {
					t.Fatalf("rec %d has %d floats, want %d", i, len(res.Recs[i]), len(want))
				}
				for j := range want {
					if res.Recs[i][j] != want[j] {
						t.Fatalf("rec %d differs from record of id %d at %d", i, id, j)
					}
				}
			}
		case RefineNone:
			if len(res.Dists) != len(res.IDs) {
				t.Fatalf("RefineNone merge material malformed: %d dists for %d ids", len(res.Dists), len(res.IDs))
			}
			for i := 1; i < len(res.Dists); i++ {
				if res.Dists[i] < res.Dists[i-1] {
					t.Fatalf("filter distances out of order at %d: %v", i, res.Dists)
				}
			}
		case RefineAME:
			if len(res.AME) != len(res.IDs) {
				t.Fatalf("AME merge material malformed: %d cts for %d ids", len(res.AME), len(res.IDs))
			}
			for i, ct := range res.AME {
				if ct != w.server.Database().AME[res.IDs[i]] {
					t.Fatalf("AME ct %d is not the stored ciphertext of id %d", i, res.IDs[i])
				}
			}
		}
	}
}

// contractBreaker wraps a SecureIndex, shorting the id space from Rebuild
// — the backend misbehavior a compaction must reject without publishing
// anything. Clone preserves the wrapper so the breaker survives snapshot
// republication.
type contractBreaker struct {
	index.SecureIndex
	breakRebuild bool
}

func (b *contractBreaker) Rebuild(vectors [][]float64) (index.SecureIndex, error) {
	if b.breakRebuild && len(vectors) > 1 {
		// Drop the last vector: the rebuilt index's id space no longer
		// matches the ciphertext store.
		vectors = vectors[:len(vectors)-1]
	}
	return b.SecureIndex.Rebuild(vectors)
}

func (b *contractBreaker) Clone() index.SecureIndex {
	return &contractBreaker{SecureIndex: b.SecureIndex.Clone(), breakRebuild: b.breakRebuild}
}

// TestCompactionContractViolationLeavesSnapshotUntouched pins the payoff
// of off-path compaction: a backend violating the rebuild id contract
// fails the compaction, but the violation happened on a private rebuild
// that is simply never published — no rollback, no possible desync, no
// wedged server. Searches keep answering from the two-tier snapshot, and
// once the backend behaves again the same pending delta compacts cleanly.
func TestCompactionContractViolationLeavesSnapshotUntouched(t *testing.T) {
	const n, dim = 200, 6
	data := clustered(34, n, dim, 3)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 34, CompactAt: -1}, data)
	breaker := &contractBreaker{SecureIndex: w.server.snap.Load().edb.Index, breakRebuild: true}
	w.server.snap.Load().edb.Index = breaker

	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	id, err := w.server.Insert(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != n {
		t.Fatalf("delta insert landed at id %d, want %d", id, n)
	}
	if err := w.server.Compact(); err == nil || !strings.Contains(err.Error(), "compaction") {
		t.Fatalf("Compact through a contract-violating backend: err = %v, want compaction error", err)
	}
	// The published snapshot still carries the delta, consistently: the
	// insert is searchable, the epoch unchanged, nothing desynced.
	if got := w.server.Epoch(); got != 1 {
		t.Fatalf("failed compaction changed epoch to %d, want 1", got)
	}
	cs := w.server.CompactionStats()
	if cs.Generation != 0 || cs.Delta != 1 || cs.LastError == "" {
		t.Fatalf("failed compaction stats = %+v, want generation 0, delta 1, recorded error", cs)
	}
	if _, err := w.server.Search(mustToken(t, w, data[0]), 3, SearchOptions{RatioK: 8}); err != nil {
		t.Fatalf("Search after failed compaction: %v", err)
	}
	// The server is not wedged: with the backend behaving again, the same
	// pending delta folds cleanly.
	breaker.breakRebuild = false
	if err := w.server.Compact(); err != nil {
		t.Fatalf("Compact after un-breaking the backend: %v", err)
	}
	cs = w.server.CompactionStats()
	if cs.Generation != 1 || cs.Delta != 0 || cs.Frozen != n+1 || cs.LastError != "" {
		t.Fatalf("recovered compaction stats = %+v, want generation 1, delta 0, frozen %d", cs, n+1)
	}
	if got := w.server.Epoch(); got != 1 {
		t.Fatalf("compaction changed epoch to %d, want 1 (epoch counts mutations, not folds)", got)
	}
}
