package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ppanns/internal/index"
)

func TestSplitPartitionsStripe(t *testing.T) {
	const n, dim, shards = 500, 8, 3
	data := clustered(31, n, dim, 5)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 31}, data)
	edb := w.server.edb

	// Tombstone a couple of ids before splitting so the stripe has holes.
	for _, id := range []int{4, 7} {
		if err := w.server.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	parts, err := edb.Split(shards, index.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != shards {
		t.Fatalf("Split returned %d shards, want %d", len(parts), shards)
	}
	var total, live int
	for s, p := range parts {
		wantCnt := (n - s + shards - 1) / shards
		if p.Len() != wantCnt {
			t.Fatalf("shard %d holds %d records, want %d", s, p.Len(), wantCnt)
		}
		if p.Dim != dim || p.Backend != edb.Backend {
			t.Fatalf("shard %d shape %d/%q, want %d/%q", s, p.Dim, p.Backend, dim, edb.Backend)
		}
		total += p.Len()
		live += p.DCE.Live()
		// Every local record must be a bit-exact copy of its global record,
		// with tombstones preserved in place.
		for local := 0; local < p.Len(); local++ {
			g := local*shards + s
			if p.DCE.Has(local) != edb.DCE.Has(g) {
				t.Fatalf("shard %d local %d liveness %v, global id %d is %v",
					s, local, p.DCE.Has(local), g, edb.DCE.Has(g))
			}
			want := edb.DCE.Record(g)
			got := p.DCE.Record(local)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("shard %d local %d record differs from global id %d at %d", s, local, g, j)
				}
			}
		}
		if p.Index.Len() != p.DCE.Live() {
			t.Fatalf("shard %d index holds %d live, store %d", s, p.Index.Len(), p.DCE.Live())
		}
	}
	if total != n {
		t.Fatalf("shards hold %d records total, want %d", total, n)
	}
	if live != edb.DCE.Live() {
		t.Fatalf("shards hold %d live records, want %d", live, edb.DCE.Live())
	}

	// Each shard must answer queries as a standalone server.
	for s, p := range parts {
		srv, err := NewServer(p)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		ids, err := srv.Search(mustToken(t, w, data[0]), 3, SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatalf("shard %d search: %v", s, err)
		}
		if len(ids) == 0 {
			t.Fatalf("shard %d returned no results", s)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	data := clustered(32, 40, 6, 3)
	w := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 32}, data)
	if _, err := w.server.edb.Split(0, index.Options{}); err == nil {
		t.Fatal("expected error for zero shard count")
	}
	if _, err := w.server.edb.Split(41, index.Options{}); err == nil {
		t.Fatal("expected error for more shards than vectors")
	}
	if parts, err := w.server.edb.Split(1, index.Options{}); err != nil || len(parts) != 1 {
		t.Fatalf("single-shard split: %d parts, %v", len(parts), err)
	}
}

func TestSearchShardMatchesSearch(t *testing.T) {
	const n, dim, k = 400, 8, 5
	data := clustered(33, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 33, WithAME: true}, data)
	opt := SearchOptions{RatioK: 8}
	for _, mode := range []RefineMode{RefineDCE, RefineNone, RefineAME} {
		opt.Refine = mode
		tok := mustToken(t, w, data[2])
		want, err := w.server.Search(tok, k, opt)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res, err := w.server.SearchShard(tok, k, opt)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.IDs) != len(want) {
			t.Fatalf("%v: SearchShard returned %d ids, Search %d", mode, len(res.IDs), len(want))
		}
		for i := range want {
			if res.IDs[i] != want[i] {
				t.Fatalf("%v rank %d: SearchShard id %d, Search id %d", mode, i, res.IDs[i], want[i])
			}
		}
		switch mode {
		case RefineDCE:
			if len(res.Recs) != len(res.IDs) || res.CtDim != w.server.edb.DCE.CtDim() {
				t.Fatalf("DCE merge material malformed: %d recs, ctDim %d", len(res.Recs), res.CtDim)
			}
			for i, id := range res.IDs {
				want := w.server.edb.DCE.Record(id)
				if len(res.Recs[i]) != len(want) {
					t.Fatalf("rec %d has %d floats, want %d", i, len(res.Recs[i]), len(want))
				}
				for j := range want {
					if res.Recs[i][j] != want[j] {
						t.Fatalf("rec %d differs from record of id %d at %d", i, id, j)
					}
				}
			}
		case RefineNone:
			if len(res.Dists) != len(res.IDs) {
				t.Fatalf("RefineNone merge material malformed: %d dists for %d ids", len(res.Dists), len(res.IDs))
			}
			for i := 1; i < len(res.Dists); i++ {
				if res.Dists[i] < res.Dists[i-1] {
					t.Fatalf("filter distances out of order at %d: %v", i, res.Dists)
				}
			}
		case RefineAME:
			if len(res.AME) != len(res.IDs) {
				t.Fatalf("AME merge material malformed: %d cts for %d ids", len(res.AME), len(res.IDs))
			}
			for i, ct := range res.AME {
				if ct != w.server.edb.AME[res.IDs[i]] {
					t.Fatalf("AME ct %d is not the stored ciphertext of id %d", i, res.IDs[i])
				}
			}
		}
	}
}

// contractBreaker wraps a SecureIndex, returning an out-of-step id from Add
// and refusing the rollback Delete — the worst-case backend misbehavior the
// Insert path must surface as a persistent inconsistency.
type contractBreaker struct {
	index.SecureIndex
	addShift   int
	deleteErrs bool
}

func (b *contractBreaker) Add(v []float64) (int, error) {
	pos, err := b.SecureIndex.Add(v)
	return pos + b.addShift, err
}

func (b *contractBreaker) Delete(id int) error {
	if b.deleteErrs {
		return fmt.Errorf("stub: delete unsupported")
	}
	return b.SecureIndex.Delete(id - b.addShift)
}

func TestInsertRollbackFailureMarksInconsistent(t *testing.T) {
	const n, dim = 200, 6
	data := clustered(34, n, dim, 3)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 34}, data)
	w.server.edb.Index = &contractBreaker{SecureIndex: w.server.edb.Index, addShift: 5, deleteErrs: true}

	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.server.Insert(payload); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("Insert with failed rollback: err = %v, want ErrInconsistent", err)
	}
	if w.server.Inconsistent() == nil {
		t.Fatal("server did not record the inconsistency")
	}
	// Every subsequent mutation fails fast with the same marker.
	if _, err := w.server.Insert(payload); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("Insert on inconsistent server: err = %v", err)
	}
	if err := w.server.Delete(0); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("Delete on inconsistent server: err = %v", err)
	}
	// Searches stay behind their per-candidate guards: a query that
	// surfaces the stray index entry fails wire-safely (no panic, no
	// silently wrong ids), one that does not keeps answering.
	_, err = w.server.Search(mustToken(t, w, data[0]), 3, SearchOptions{RatioK: 8})
	if err != nil && !strings.Contains(err.Error(), "no DCE ciphertext") {
		t.Fatalf("Search on inconsistent server: %v", err)
	}
}

func TestInsertRollbackSucceedsWithoutMarking(t *testing.T) {
	const n, dim = 200, 6
	data := clustered(35, n, dim, 3)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 35}, data)
	w.server.edb.Index = &contractBreaker{SecureIndex: w.server.edb.Index, addShift: 5}

	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.server.Insert(payload)
	if err == nil || errors.Is(err, ErrInconsistent) {
		t.Fatalf("Insert with working rollback: err = %v, want out-of-step error without ErrInconsistent", err)
	}
	if w.server.Inconsistent() != nil {
		t.Fatal("successful rollback must not mark the server inconsistent")
	}
}
