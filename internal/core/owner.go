package core

import (
	"fmt"
	"runtime"
	"sync"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
	"ppanns/internal/dcpe"
	"ppanns/internal/index"
	"ppanns/internal/pq"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// DataOwner generates keys and encrypts the database. It is the only party
// that ever sees plaintext database vectors.
type DataOwner struct {
	params Params
	keys   *UserKey
}

// NewDataOwner validates parameters; keys are generated on the first
// encryption call because DCE's input scale depends on the data range.
func NewDataOwner(params Params) (*DataOwner, error) {
	p, err := params.withDefaults()
	if err != nil {
		return nil, err
	}
	return &DataOwner{params: p}, nil
}

// Params returns the validated parameters.
func (o *DataOwner) Params() Params { return o.params }

// UserKey returns the key material to authorize a user (Figure 1 step 0).
// It is nil until EncryptDatabase has run.
func (o *DataOwner) UserKey() *UserKey { return o.keys }

// generateKeys creates the DCE/SAP (and optionally AME) keys, with DCE and
// AME input scales set from the observed coordinate range.
func (o *DataOwner) generateKeys(maxAbs float64) error {
	scale := 1.0
	if maxAbs > 0 {
		scale = 1 / maxAbs
	}
	r := o.params.rand()
	dceKey, err := dce.KeyGenScaled(rng.Derive(r, 1), o.params.Dim, scale)
	if err != nil {
		return fmt.Errorf("core: DCE keygen: %w", err)
	}
	sapKey, err := dcpe.KeyGen(rng.Derive(r, 2), o.params.Dim, o.params.S, o.params.Beta)
	if err != nil {
		return fmt.Errorf("core: SAP keygen: %w", err)
	}
	keys := &UserKey{DCE: dceKey, SAP: sapKey}
	if o.params.WithAME {
		ameKey, err := ame.KeyGenScaled(rng.Derive(r, 3), o.params.Dim, scale)
		if err != nil {
			return fmt.Errorf("core: AME keygen: %w", err)
		}
		keys.AME = ameKey
	}
	o.keys = keys
	return nil
}

// EncryptDatabase encrypts every vector under SAP and DCE (and AME when
// configured), builds the selected filter index over the SAP ciphertexts,
// and returns the complete server-side state. Encryption parallelizes
// across GOMAXPROCS workers; index construction parallelizes per backend.
//
// The paper's B1/B2 steps of Figure 3.
func (o *DataOwner) EncryptDatabase(vectors [][]float64) (*EncryptedDatabase, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	for i, v := range vectors {
		if len(v) != o.params.Dim {
			return nil, fmt.Errorf("core: vector %d has dim %d, want %d", i, len(v), o.params.Dim)
		}
	}
	if o.keys == nil {
		if err := o.generateKeys(vec.MaxAbs(vectors)); err != nil {
			return nil, err
		}
	}

	n := len(vectors)
	sap := make([][]float64, n)
	// DCE ciphertexts are encrypted straight into the flat arena store:
	// workers fill disjoint records in place, so the encrypted database is
	// born cache-friendly with no per-point ciphertext allocation.
	store := dce.NewCiphertextStoreN(o.keys.DCE.CiphertextDim(), n)
	var ameCts []*ame.Ciphertext
	if o.params.WithAME {
		ameCts = make([]*ame.Ciphertext, n)
	}

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				sap[i] = o.keys.SAP.Encrypt(vectors[i])
				o.keys.DCE.EncryptRecord(vectors[i], store.Record(i))
				if ameCts != nil {
					ameCts[i] = o.keys.AME.Encrypt(vectors[i])
				}
			}
		}(w)
	}
	wg.Wait()

	idx, err := index.Build(o.params.Index, sap, o.params.indexOptions())
	if err != nil {
		return nil, fmt.Errorf("core: building %s index: %w", o.params.Index, err)
	}

	edb := &EncryptedDatabase{
		Dim:     o.params.Dim,
		Backend: o.params.Index,
		Index:   idx,
		DCE:     store,
		AME:     ameCts,
	}
	if o.params.PQ {
		// Trained on the SAP ciphertexts the server stores anyway; the
		// owner building it here just saves the server the one-time cost.
		pqStore, err := pq.Build(sap, pq.TrainConfig{M: o.params.PQM, Seed: o.params.Seed ^ 0x4bd})
		if err != nil {
			return nil, fmt.Errorf("core: building PQ tier: %w", err)
		}
		edb.PQ = pqStore
	}
	return edb, nil
}

// EncryptVector produces the ciphertext payload for inserting one new
// vector (Section V-D). Keys must exist (EncryptDatabase must have run).
func (o *DataOwner) EncryptVector(v []float64) (*InsertPayload, error) {
	if o.keys == nil {
		return nil, fmt.Errorf("core: EncryptVector before EncryptDatabase")
	}
	if len(v) != o.params.Dim {
		return nil, fmt.Errorf("core: vector has dim %d, want %d", len(v), o.params.Dim)
	}
	p := &InsertPayload{
		SAP: o.keys.SAP.Encrypt(v),
		DCE: o.keys.DCE.Encrypt(v),
	}
	if o.keys.AME != nil {
		p.AME = o.keys.AME.Encrypt(v)
	}
	return p, nil
}
