package core

import (
	"fmt"
	"sync"
	"time"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
	"ppanns/internal/resultheap"
)

// RefineMode selects how the server's refine phase compares candidates.
type RefineMode int

const (
	// RefineDCE is the paper's scheme: exact comparisons via DCE, O(d)
	// per comparison.
	RefineDCE RefineMode = iota
	// RefineAME is the HNSW-AME baseline: exact comparisons via AME,
	// O(d²) per comparison.
	RefineAME
	// RefineNone skips refinement and returns the filter phase's top-k —
	// the HNSW(filter) ablation of Figure 6.
	RefineNone
)

// String names the refine mode for reports.
func (m RefineMode) String() string {
	switch m {
	case RefineDCE:
		return "dce"
	case RefineAME:
		return "ame"
	case RefineNone:
		return "filter-only"
	default:
		return fmt.Sprintf("refine(%d)", int(m))
	}
}

// SearchOptions tunes one search call.
type SearchOptions struct {
	// KPrime is k′, the filter phase's candidate count. Defaults to
	// RatioK·k; if RatioK is also zero, to 8·k.
	KPrime int
	// RatioK sets k′ = RatioK·k (Figure 5's knob).
	RatioK int
	// EfSearch is the HNSW beam width; defaults to max(KPrime, 50).
	EfSearch int
	// Refine selects the comparison scheme (default RefineDCE).
	Refine RefineMode
}

func (s SearchOptions) kPrime(k int) int {
	if s.KPrime > 0 {
		return s.KPrime
	}
	if s.RatioK > 0 {
		return s.RatioK * k
	}
	return 8 * k
}

func (s SearchOptions) ef(kPrime int) int {
	if s.EfSearch > 0 {
		return s.EfSearch
	}
	if kPrime > 50 {
		return kPrime
	}
	return 50
}

// SearchStats reports the cost split of one search, matching the
// quantities the paper's Figures 6 and 9 plot.
type SearchStats struct {
	FilterTime  time.Duration // k′-ANNS on the SAP graph
	RefineTime  time.Duration // heap selection via secure comparisons
	Candidates  int           // |R′| actually returned by the filter
	Comparisons int           // secure distance comparisons performed
}

// Server hosts the encrypted database and answers queries (Figure 1 steps
// 2–3). It never holds keys or plaintexts.
type Server struct {
	mu  sync.RWMutex
	edb *EncryptedDatabase
}

// NewServer wraps an encrypted database received from the data owner.
func NewServer(edb *EncryptedDatabase) (*Server, error) {
	if edb == nil || edb.Graph == nil || len(edb.DCE) == 0 {
		return nil, fmt.Errorf("core: incomplete encrypted database")
	}
	return &Server{edb: edb}, nil
}

// Len returns the number of stored vectors (including tombstones).
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edb.Len()
}

// Search answers a k-ANNS query (Algorithm 2) and returns external ids
// ordered closest-first.
func (s *Server) Search(tok *QueryToken, k int, opt SearchOptions) ([]int, error) {
	ids, _, err := s.SearchWithStats(tok, k, opt)
	return ids, err
}

// SearchWithStats is Search plus cost accounting.
func (s *Server) SearchWithStats(tok *QueryToken, k int, opt SearchOptions) ([]int, SearchStats, error) {
	var st SearchStats
	if tok == nil || tok.SAP == nil {
		return nil, st, fmt.Errorf("core: query token missing SAP ciphertext")
	}
	if k <= 0 {
		return nil, st, fmt.Errorf("core: non-positive k %d", k)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	edb := s.edb

	kPrime := opt.kPrime(k)
	if kPrime < k {
		kPrime = k
	}

	// Filter phase (Algorithm 2 line 1): k′-ANNS over SAP ciphertexts.
	start := time.Now()
	items := edb.Graph.Search(tok.SAP, kPrime, opt.ef(kPrime))
	st.FilterTime = time.Since(start)
	st.Candidates = len(items)
	if len(items) == 0 {
		return nil, st, nil
	}

	cands := make([]int, len(items))
	for i, it := range items {
		cands[i] = edb.posOf(it.ID)
	}

	// Refine phase (Algorithm 2 lines 2–9).
	start = time.Now()
	var result []int
	switch opt.Refine {
	case RefineNone:
		if len(cands) > k {
			cands = cands[:k]
		}
		result = cands
	case RefineDCE:
		if tok.Trapdoor == nil {
			return nil, st, fmt.Errorf("core: token lacks DCE trapdoor for refine")
		}
		farther := func(a, b int) bool {
			return dce.DistanceComp(edb.DCE[a], edb.DCE[b], tok.Trapdoor) > 0
		}
		result, st.Comparisons = refineWithHeap(cands, k, farther)
	case RefineAME:
		if edb.AME == nil {
			return nil, st, fmt.Errorf("core: database was built without AME ciphertexts")
		}
		if tok.AME == nil {
			return nil, st, fmt.Errorf("core: token lacks AME trapdoor for refine")
		}
		farther := func(a, b int) bool {
			return ame.Compare(edb.AME[a], edb.AME[b], tok.AME) > 0
		}
		result, st.Comparisons = refineWithHeap(cands, k, farther)
	default:
		return nil, st, fmt.Errorf("core: unknown refine mode %d", opt.Refine)
	}
	st.RefineTime = time.Since(start)
	return result, st, nil
}

// refineWithHeap implements Algorithm 2's max-heap selection: offer every
// candidate, keep the closest k, then drain closest-first. Only the opaque
// comparator touches ciphertexts.
func refineWithHeap(cands []int, k int, farther resultheap.Farther) ([]int, int) {
	h := resultheap.NewCompareHeap(k, farther)
	for _, id := range cands {
		h.Offer(id)
	}
	return h.SortedAscending(), h.Comparisons()
}

// Insert adds one encrypted vector (Section V-D) and returns its external
// id. Deletion tombstones are not reused; ids grow monotonically.
func (s *Server) Insert(p *InsertPayload) (int, error) {
	if p == nil || p.SAP == nil || p.DCE == nil {
		return 0, fmt.Errorf("core: incomplete insert payload")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	edb := s.edb
	if edb.AME != nil && p.AME == nil {
		return 0, fmt.Errorf("core: database carries AME ciphertexts; payload lacks one")
	}
	pos := len(edb.DCE)
	gid := edb.Graph.Add(p.SAP)
	edb.DCE = append(edb.DCE, p.DCE)
	if edb.AME != nil {
		edb.AME = append(edb.AME, p.AME)
	}
	edb.pos2gid = append(edb.pos2gid, int32(gid))
	// gids are assigned densely by the graph, so gid == len(gid2pos) here.
	if gid != len(edb.gid2pos) {
		return 0, fmt.Errorf("core: graph id %d out of step with mapping size %d", gid, len(edb.gid2pos))
	}
	edb.gid2pos = append(edb.gid2pos, int32(pos))
	return pos, nil
}

// Delete removes the vector with the given external id (Section V-D): the
// graph repairs its in-neighbors and the ciphertexts are dropped. Server-
// only — no data-owner participation, as the paper notes.
func (s *Server) Delete(pos int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	edb := s.edb
	if pos < 0 || pos >= len(edb.DCE) {
		return fmt.Errorf("core: delete of unknown id %d", pos)
	}
	if edb.DCE[pos] == nil {
		return fmt.Errorf("core: id %d already deleted", pos)
	}
	if err := edb.Graph.Delete(edb.gidOf(pos)); err != nil {
		return fmt.Errorf("core: graph delete: %w", err)
	}
	edb.DCE[pos] = nil
	if edb.AME != nil {
		edb.AME[pos] = nil
	}
	return nil
}

// Deleted reports whether an external id is tombstoned.
func (s *Server) Deleted(pos int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return pos < 0 || pos >= len(s.edb.DCE) || s.edb.DCE[pos] == nil
}
