package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ppanns/internal/ame"
	"ppanns/internal/index"
)

// ErrInconsistent marks a server whose filter index and ciphertext store
// are known to be desynced (a backend violated the sequential-id contract
// and the rollback of its stray entry failed). Mutations on such a server
// fail fast wrapping this error; searches keep running behind their
// existing per-candidate guards.
var ErrInconsistent = errors.New("core: server index and ciphertext store are desynced")

// RefineMode selects how the server's refine phase compares candidates.
type RefineMode int

const (
	// RefineDCE is the paper's scheme: exact comparisons via DCE, O(d)
	// per comparison.
	RefineDCE RefineMode = iota
	// RefineAME is the HNSW-AME baseline: exact comparisons via AME,
	// O(d²) per comparison.
	RefineAME
	// RefineNone skips refinement and returns the filter phase's top-k —
	// the HNSW(filter) ablation of Figure 6.
	RefineNone
)

// String names the refine mode for reports.
func (m RefineMode) String() string {
	switch m {
	case RefineDCE:
		return "dce"
	case RefineAME:
		return "ame"
	case RefineNone:
		return "filter-only"
	default:
		return fmt.Sprintf("refine(%d)", int(m))
	}
}

// SearchOptions tunes one search call.
type SearchOptions struct {
	// KPrime is k′, the filter phase's candidate count. Defaults to
	// RatioK·k; if RatioK is also zero, to 8·k.
	KPrime int
	// RatioK sets k′ = RatioK·k (Figure 5's knob).
	RatioK int
	// EfSearch is the HNSW beam width; defaults to max(KPrime, 50).
	EfSearch int
	// Refine selects the comparison scheme (default RefineDCE).
	Refine RefineMode
	// PrecomputeRefine makes the DCE refine phase scale every candidate's
	// P1/P2 operands by the trapdoor once, up front, so each of the
	// O(k′ log k) heap comparisons runs a two-multiply kernel instead of
	// three. The up-front pass writes 2·(2d+16) floats per candidate, so
	// it only pays when the heap re-compares each candidate many times
	// (comparisons ≫ k′, e.g. tiny k′ with deep re-heapification); at the
	// paper's operating points (k′ = 16k) BenchmarkRefine measures it as
	// a net loss, which is why it defaults to off. Results are identical
	// either way up to float64 rounding of exactly tied distances.
	PrecomputeRefine bool
}

func (s SearchOptions) kPrime(k int) int {
	if s.KPrime > 0 {
		return s.KPrime
	}
	if s.RatioK > 0 {
		return s.RatioK * k
	}
	return 8 * k
}

func (s SearchOptions) ef(kPrime int) int {
	if s.EfSearch > 0 {
		return s.EfSearch
	}
	if kPrime > 50 {
		return kPrime
	}
	return 50
}

// SearchStats reports the cost split of one search, matching the
// quantities the paper's Figures 6 and 9 plot.
type SearchStats struct {
	FilterTime  time.Duration // k′-ANNS on the SAP graph
	RefineTime  time.Duration // heap selection via secure comparisons
	Candidates  int           // |R′| actually returned by the filter
	Comparisons int           // secure distance comparisons performed
}

// Server hosts the encrypted database and answers queries (Figure 1 steps
// 2–3). It never holds keys or plaintexts.
type Server struct {
	mu  sync.RWMutex
	edb *EncryptedDatabase
	// broken is non-nil once a failed insert rollback left the index and
	// ciphertext store desynced; it wraps ErrInconsistent and every
	// subsequent mutation returns it.
	broken error
}

// NewServer wraps an encrypted database received from the data owner.
func NewServer(edb *EncryptedDatabase) (*Server, error) {
	if edb == nil || edb.Index == nil || edb.DCE == nil || edb.DCE.Len() == 0 {
		return nil, fmt.Errorf("core: incomplete encrypted database")
	}
	return &Server{edb: edb}, nil
}

// Len returns the number of stored vectors (including tombstones).
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edb.Len()
}

// Dim returns the vector dimension of the hosted database.
func (s *Server) Dim() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edb.Dim
}

// Backend returns the registry name of the filter-index backend.
func (s *Server) Backend() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edb.Backend
}

// Caps reports the filter index's update capabilities, so clients can
// learn whether Insert/Delete are available before attempting them.
func (s *Server) Caps() index.Caps {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edb.Index.Caps()
}

// Search answers a k-ANNS query (Algorithm 2) and returns external ids
// ordered closest-first.
func (s *Server) Search(tok *QueryToken, k int, opt SearchOptions) ([]int, error) {
	ids, _, err := s.SearchInto(nil, tok, k, opt)
	return ids, err
}

// SearchWithStats is Search plus cost accounting.
func (s *Server) SearchWithStats(tok *QueryToken, k int, opt SearchOptions) ([]int, SearchStats, error) {
	return s.SearchInto(nil, tok, k, opt)
}

// ShardResult is one server's contribution to a scatter-gather search
// (see internal/shard): the result ids in refine order plus the per-id
// material a coordinator needs to merge candidates across shards. Because
// DCE query tokens are position-independent, the returned ciphertext
// records compare correctly against records from any other shard of the
// same deployment.
type ShardResult struct {
	// IDs are the result ids, closest first (server-local positions).
	IDs []int
	// Dists holds the filter-phase SAP distances parallel to IDs, the
	// merge key when no refine runs (RefineNone only).
	Dists []float64
	// Recs holds copies of the DCE records [P1|P2|P3|P4] parallel to IDs
	// (RefineDCE only); CtDim is their component length.
	Recs  [][]float64
	CtDim int
	// AME holds the AME ciphertexts parallel to IDs (RefineAME only).
	// AME material never travels over the wire, so this field only serves
	// in-process coordinators.
	AME []*ame.Ciphertext
}

// SearchShard answers a query like Search and additionally returns the
// merge material for the active refine mode, so a scatter-gather
// coordinator can order this server's results against other shards'.
func (s *Server) SearchShard(tok *QueryToken, k int, opt SearchOptions) (ShardResult, error) {
	var res ShardResult
	ids, _, err := s.searchInto(nil, tok, k, opt, &res)
	if err != nil {
		return ShardResult{}, err
	}
	res.IDs = ids
	return res, nil
}

// SearchInto is SearchWithStats appending the result ids into dst (whose
// capacity is reused; pass nil to allocate). All per-query working state —
// filter items, candidate list, refine heap, operand scratch — comes from
// an internal pool, so with a recycled dst a steady-state search performs
// zero allocations.
func (s *Server) SearchInto(dst []int, tok *QueryToken, k int, opt SearchOptions) ([]int, SearchStats, error) {
	return s.searchInto(dst, tok, k, opt, nil)
}

// searchInto is the shared search body. When mm is non-nil it captures,
// for every returned id, the cross-shard merge material of the active
// refine mode (SAP distance, DCE record copy, or AME ciphertext).
func (s *Server) searchInto(dst []int, tok *QueryToken, k int, opt SearchOptions, mm *ShardResult) ([]int, SearchStats, error) {
	var st SearchStats
	if tok == nil || tok.SAP == nil {
		return dst[:0], st, fmt.Errorf("core: query token missing SAP ciphertext")
	}
	if k <= 0 {
		return dst[:0], st, fmt.Errorf("core: non-positive k %d", k)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	edb := s.edb
	// Dimension checks up front: the index and comparison backends panic
	// on mismatched vectors, which must not be reachable from the wire.
	if len(tok.SAP) != edb.Dim {
		return dst[:0], st, fmt.Errorf("core: query token has dim %d, want %d", len(tok.SAP), edb.Dim)
	}

	kPrime := opt.kPrime(k)
	if kPrime < k {
		kPrime = k
	}

	sc := getScratch()
	defer putScratch(sc)

	// Filter phase (Algorithm 2 line 1): k′-ANNS over SAP ciphertexts.
	// Backends return external ids directly.
	start := time.Now()
	sc.items = edb.Index.SearchInto(sc.items[:0], tok.SAP, kPrime, opt.ef(kPrime))
	st.FilterTime = time.Since(start)
	st.Candidates = len(sc.items)
	if len(sc.items) == 0 {
		return dst[:0], st, nil
	}

	sc.cands = sc.cands[:0]
	for _, it := range sc.items {
		sc.cands = append(sc.cands, it.ID)
	}
	cands := sc.cands

	// Refine phase (Algorithm 2 lines 2–9).
	start = time.Now()
	switch opt.Refine {
	case RefineNone:
		if len(cands) > k {
			cands = cands[:k]
		}
		dst = append(dst[:0], cands...)
		if mm != nil {
			// cands is a prefix of the filter items, so the merge keys
			// are their (comparable across shards) SAP distances.
			mm.Dists = make([]float64, len(dst))
			for i := range dst {
				mm.Dists[i] = sc.items[i].Dist
			}
		}
	case RefineDCE:
		if tok.Trapdoor == nil {
			return dst[:0], st, fmt.Errorf("core: token lacks DCE trapdoor for refine")
		}
		ctDim := edb.DCE.CtDim()
		if len(tok.Trapdoor.Q) != ctDim {
			return dst[:0], st, fmt.Errorf("core: trapdoor has dim %d, ciphertexts %d", len(tok.Trapdoor.Q), ctDim)
		}
		// A filter backend out of step with the ciphertext store must
		// surface as a wire-safe error, never as an out-of-range panic in
		// the serving process.
		for _, id := range cands {
			if !edb.DCE.Has(id) {
				return dst[:0], st, fmt.Errorf("core: filter index returned id %d with no DCE ciphertext", id)
			}
		}
		cmp := &sc.dce
		*cmp = dceComparator{store: edb.DCE, q: tok.Trapdoor.Q, cands: cands}
		if opt.PrecomputeRefine {
			sc.ops = edb.DCE.ScaleOperands(sc.ops, cands, tok.Trapdoor.Q)
			cmp.ops, cmp.ctDim = sc.ops, ctDim
		}
		dst, st.Comparisons = refineScratch(sc, cands, k, cmp, dst)
		if mm != nil {
			// Record copies, not arena views: the caller holds them past
			// this RLock, across future appends to the arena.
			mm.CtDim = ctDim
			mm.Recs = make([][]float64, len(dst))
			for i, id := range dst {
				mm.Recs[i] = append([]float64(nil), edb.DCE.Record(id)...)
			}
		}
	case RefineAME:
		if edb.AME == nil {
			return dst[:0], st, fmt.Errorf("core: database was built without AME ciphertexts")
		}
		if tok.AME == nil {
			return dst[:0], st, fmt.Errorf("core: token lacks AME trapdoor for refine")
		}
		for _, id := range cands {
			if id < 0 || id >= len(edb.AME) || edb.AME[id] == nil {
				return dst[:0], st, fmt.Errorf("core: filter index returned id %d with no AME ciphertext", id)
			}
		}
		cmp := &sc.ame
		*cmp = ameComparator{cts: edb.AME, cands: cands, tq: tok.AME}
		dst, st.Comparisons = refineScratch(sc, cands, k, cmp, dst)
		if mm != nil {
			mm.AME = make([]*ame.Ciphertext, len(dst))
			for i, id := range dst {
				mm.AME[i] = edb.AME[id]
			}
		}
	default:
		return dst[:0], st, fmt.Errorf("core: unknown refine mode %d", opt.Refine)
	}
	st.RefineTime = time.Since(start)
	return dst, st, nil
}

// Insert adds one encrypted vector (Section V-D) and returns its external
// id. Deletion tombstones are not reused; ids grow monotonically. The
// backend must support dynamic inserts (see Caps).
//
// All validation — payload completeness, dimensions, AME consistency,
// backend capability, and the index insert itself — happens before any
// ciphertext state is appended, so a failed insert leaves the database
// untouched (a backend violating the sequential-id contract has its stray
// entry rolled back out). If that rollback itself fails — the backend
// does not support deletes, say — the index and ciphertext store are
// desynced with no way back: the server marks itself inconsistent and
// every later mutation fails fast wrapping ErrInconsistent.
func (s *Server) Insert(p *InsertPayload) (int, error) {
	if p == nil || p.SAP == nil || p.DCE == nil {
		return 0, fmt.Errorf("core: incomplete insert payload")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return 0, s.broken
	}
	edb := s.edb
	if len(p.SAP) != edb.Dim {
		return 0, fmt.Errorf("core: insert payload has dim %d, want %d", len(p.SAP), edb.Dim)
	}
	if ctDim := edb.DCE.CtDim(); len(p.DCE.P1) != ctDim || len(p.DCE.P2) != ctDim ||
		len(p.DCE.P3) != ctDim || len(p.DCE.P4) != ctDim {
		return 0, fmt.Errorf("core: insert DCE ciphertext components do not match stored dimension %d", ctDim)
	}
	if edb.AME != nil && p.AME == nil {
		return 0, fmt.Errorf("core: database carries AME ciphertexts; payload lacks one")
	}
	if !edb.Index.Caps().DynamicInsert {
		return 0, fmt.Errorf("core: %s backend does not support inserts (%w)", edb.Backend, index.ErrNotSupported)
	}
	pos, err := edb.Index.Add(p.SAP)
	if err != nil {
		return 0, fmt.Errorf("core: index insert: %w", err)
	}
	// Ids are assigned sequentially by every backend, so the new id must
	// land exactly at the end of the ciphertext store. On a contract
	// violation, roll the stray entry back out so the index and ciphertext
	// store stay in lockstep. A failed rollback cannot be repaired from
	// here — record the inconsistency instead of swallowing it.
	if pos != edb.DCE.Len() {
		if derr := edb.Index.Delete(pos); derr != nil {
			s.broken = fmt.Errorf("%w: index id %d out of step with database size %d and rollback failed: %v",
				ErrInconsistent, pos, edb.DCE.Len(), derr)
			return 0, s.broken
		}
		return 0, fmt.Errorf("core: index id %d out of step with database size %d", pos, edb.DCE.Len())
	}
	edb.DCE.Append(p.DCE)
	if edb.AME != nil {
		edb.AME = append(edb.AME, p.AME)
	}
	return pos, nil
}

// Delete removes the vector with the given external id (Section V-D): the
// index tombstones it (graphs additionally repair in-neighbors) and the
// ciphertexts are dropped. Server-only — no data-owner participation, as
// the paper notes. The backend must support dynamic deletes (see Caps).
func (s *Server) Delete(pos int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	edb := s.edb
	if pos < 0 || pos >= edb.DCE.Len() {
		return fmt.Errorf("core: delete of unknown id %d", pos)
	}
	if !edb.DCE.Has(pos) {
		return fmt.Errorf("core: id %d already deleted", pos)
	}
	if !edb.Index.Caps().DynamicDelete {
		return fmt.Errorf("core: %s backend does not support deletes (%w)", edb.Backend, index.ErrNotSupported)
	}
	if err := edb.Index.Delete(pos); err != nil {
		return fmt.Errorf("core: index delete: %w", err)
	}
	edb.DCE.Delete(pos)
	if edb.AME != nil {
		edb.AME[pos] = nil
	}
	return nil
}

// Inconsistent returns the error that marked this server's state
// inconsistent (see Insert), or nil while the index and ciphertext store
// are in lockstep.
func (s *Server) Inconsistent() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.broken
}

// Deleted reports whether an external id is tombstoned.
func (s *Server) Deleted(pos int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.edb.DCE.Has(pos)
}
