package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
	"ppanns/internal/index"
	"ppanns/internal/pq"
	"ppanns/internal/resultheap"
	"ppanns/internal/vec"
	"ppanns/internal/wal"
)

// RefineMode selects how the server's refine phase compares candidates.
type RefineMode int

const (
	// RefineDCE is the paper's scheme: exact comparisons via DCE, O(d)
	// per comparison.
	RefineDCE RefineMode = iota
	// RefineAME is the HNSW-AME baseline: exact comparisons via AME,
	// O(d²) per comparison.
	RefineAME
	// RefineNone skips refinement and returns the filter phase's top-k —
	// the HNSW(filter) ablation of Figure 6.
	RefineNone
)

// String names the refine mode for reports.
func (m RefineMode) String() string {
	switch m {
	case RefineDCE:
		return "dce"
	case RefineAME:
		return "ame"
	case RefineNone:
		return "filter-only"
	default:
		return fmt.Sprintf("refine(%d)", int(m))
	}
}

// FilterDistMode selects the filter phase's candidate distance provider.
type FilterDistMode int

const (
	// FilterExact ranks filter candidates by squared L2 over the stored
	// SAP ciphertexts (the scheme as published).
	FilterExact FilterDistMode = iota
	// FilterPQ ranks filter candidates through the product-quantization
	// tier: one asymmetric distance table per query, M one-byte lookups
	// per candidate — the memory traffic of the filter walk drops from
	// 8·dim to M bytes per candidate. Requires a database built (or
	// extended) with a PQ store. The refine phase is untouched, so result
	// exactness is unchanged; quantization error is recovered by a larger
	// over-fetch k′.
	FilterPQ
)

// String names the filter distance mode for reports.
func (m FilterDistMode) String() string {
	switch m {
	case FilterExact:
		return "exact"
	case FilterPQ:
		return "pq"
	default:
		return fmt.Sprintf("filterdist(%d)", int(m))
	}
}

// SearchOptions tunes one search call.
type SearchOptions struct {
	// KPrime is k′, the filter phase's candidate count. Defaults to
	// RatioK·k; if RatioK is also zero, to 8·k.
	KPrime int
	// RatioK sets k′ = RatioK·k (Figure 5's knob).
	RatioK int
	// EfSearch is the HNSW beam width; defaults to max(KPrime, 50).
	EfSearch int
	// Refine selects the comparison scheme (default RefineDCE).
	Refine RefineMode
	// FilterDist selects the filter phase's distance provider (default
	// FilterExact). FilterPQ fails with a wire-safe error when the hosted
	// database carries no PQ store.
	FilterDist FilterDistMode
	// PrecomputeRefine makes the DCE refine phase scale every candidate's
	// P1/P2 operands by the trapdoor once, up front, so each of the
	// O(k′ log k) heap comparisons runs a two-multiply kernel instead of
	// three. The up-front pass writes 2·(2d+16) floats per candidate, so
	// it only pays when the heap re-compares each candidate many times
	// (comparisons ≫ k′, e.g. tiny k′ with deep re-heapification); at the
	// paper's operating points (k′ = 16k) BenchmarkRefine measures it as
	// a net loss, which is why it defaults to off. Results are identical
	// either way up to float64 rounding of exactly tied distances.
	PrecomputeRefine bool
	// Parallelism caps the worker count of the batch executors
	// (SearchBatch and friends); 0 means one worker per CPU. It rides
	// inside the options so remote batch calls carry it over the wire and
	// the scatter-gather coordinator forwards it to every shard. An
	// explicit parallelism argument on the batch methods overrides it.
	Parallelism int
	// BlockQ groups the batch executors' queries into blocks of this many
	// trapdoor-prepared queries that share each gathered candidate block
	// during the DCE refine phase (see SearchBatchBlocked). 0 or 1 keeps
	// the per-query path. Like Parallelism it rides inside the options, so
	// remote batch calls and the scatter-gather coordinator's per-shard
	// batch ops pick up query blocking with no wire change.
	BlockQ int
}

func (s SearchOptions) kPrime(k int) int {
	if s.KPrime > 0 {
		return s.KPrime
	}
	if s.RatioK > 0 {
		return s.RatioK * k
	}
	return 8 * k
}

func (s SearchOptions) ef(kPrime int) int {
	if s.EfSearch > 0 {
		return s.EfSearch
	}
	if kPrime > 50 {
		return kPrime
	}
	return 50
}

// parallelism resolves the worker count of a batch executor: an explicit
// argument wins, then the Parallelism option, then one worker per CPU.
func (s SearchOptions) parallelism(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Partition returns a copy of the options with the filter effort divided
// across n shards: k′ and the beam width shrink to their per-shard share
// (floored at k — every shard must still produce a full local top-k for
// the global merge to select from). A scatter-gather coordinator spreading
// one query over n shards then performs ≈ the same total filter work as a
// single server, instead of n times it; the candidate pool keeps its total
// size, merely spread across shards, so recall stays at the same operating
// point while the sharded tier stops costing n× the compute per query.
func (s SearchOptions) Partition(n, k int) SearchOptions {
	if n <= 1 {
		return s
	}
	kPrime := s.kPrime(k)
	ef := s.ef(kPrime)
	share := (kPrime + n - 1) / n
	if share < k {
		share = k
	}
	efShare := (ef + n - 1) / n
	if efShare < share {
		efShare = share
	}
	out := s
	out.KPrime = share
	out.RatioK = 0
	out.EfSearch = efShare
	return out
}

// SearchStats reports the cost split of one search, matching the
// quantities the paper's Figures 6 and 9 plot.
type SearchStats struct {
	FilterTime  time.Duration // k′-ANNS on the SAP graph
	RefineTime  time.Duration // heap selection via secure comparisons
	Candidates  int           // |R′| actually returned by the filter
	Comparisons int           // secure distance comparisons performed
	// Epoch identifies the published snapshot that served the query (the
	// server's mutation count at publication time), so callers — and the
	// concurrency conformance tests — can tie a result set to the exact
	// database state it reflects.
	Epoch uint64
}

// snapshot is one immutable publication of the encrypted database. The
// serving tier is copy-on-write: searches load the current snapshot from an
// atomic pointer and run entirely against it — no lock, no coordination
// with writers — while mutations assemble the next snapshot and publish it
// with a single pointer swap. A snapshot, once published, is never mutated
// again; in-flight searches therefore always finish on the exact database
// state they started with, and the garbage collector reclaims superseded
// snapshots when their last reader drops them.
//
// # Two tiers
//
// The database state is LSM-shaped. Ids [0, frozen) are the main tier,
// covered by the frozen filter index edb.Index; ids [frozen, edb.Len())
// are the delta tier, whose SAP ciphertexts live in deltaSAP and are
// brute-force scanned at query time. The DCE ciphertext store spans both
// tiers in one arena (main prefix, delta suffix), so the refine phase —
// and every consumer of DCE records downstream of it — is tier-blind.
// Pending deletes from either tier sit in tombs until a compaction folds
// delta and tombstones into a rebuilt main index (see compactOnce).
type snapshot struct {
	edb *EncryptedDatabase
	// frozen is the main-tier size: edb.Index covers exactly the ids
	// [0, frozen), all of which are index-live (pending tombstones are
	// masked at query time, not applied to the index).
	frozen int
	// deltaSAP holds the delta tier's SAP ciphertexts: deltaSAP[i] is the
	// vector of id frozen+i. Appended to under the writer mutex with the
	// same append-only discipline as the ciphertext arena.
	deltaSAP [][]float64
	// tombs is the set of ids deleted since the last compaction, covering
	// both tiers; nil means none. Never mutated once published — Delete
	// publishes a fresh set.
	tombs map[int]struct{}
	// mainDead counts tombs entries below frozen: how many index-live ids
	// are pending deletion, i.e. how far the filter phase must over-fetch
	// so tombstone masking cannot leave the candidate pool short.
	mainDead int
	// epoch is the mutation count: incremented by every Insert/Delete,
	// preserved across compactions (a compaction changes representation,
	// not content — see Epoch).
	epoch uint64
	// gen counts compactions folded into this snapshot.
	gen uint64
	// readers counts in-flight searches pinned to this snapshot. The
	// refcount is not needed for reclamation (the GC handles that); it
	// exists so tests and operators can observe snapshot drain — e.g.
	// assert that superseded epochs quiesce instead of leaking searches.
	readers atomic.Int64
}

// tombed reports whether id has a pending tombstone.
func (sp *snapshot) tombed(id int) bool {
	_, ok := sp.tombs[id]
	return ok
}

// clean reports whether the snapshot has no delta tier and no pending
// tombstones — i.e. edb alone is the complete, consistent database.
func (sp *snapshot) clean() bool {
	return len(sp.deltaSAP) == 0 && len(sp.tombs) == 0
}

// deadAt reports whether id is deleted in this snapshot, in either
// representation: compacted away in the store, or pending in tombs.
func (sp *snapshot) deadAt(id int) bool {
	return !sp.edb.DCE.Has(id) || sp.tombed(id)
}

// live is the live record count across both tiers.
func (sp *snapshot) live() int { return sp.edb.DCE.Live() - len(sp.tombs) }

// filterInto runs the filter phase over both tiers: a k′-ANNS on the
// frozen main index plus an exact scan of the delta segment, tombstones
// masked, merged closest-first into dst. On a clean snapshot this is
// exactly the index search. The merge happens on the filter phase's native
// keys — squared L2 over SAP ciphertexts, or the PQ scanner's asymmetric
// distances when one is bound — so a merged list is ordered identically to
// what a single index over both tiers would return. When psc is non-nil it
// supplies every candidate distance in both tiers (the code arena spans
// them in one id space, exactly like the DCE store).
func (sp *snapshot) filterInto(ts *tierScratch, dst []resultheap.Item, q []float64, kPrime, ef int, psc *pq.Scanner) []resultheap.Item {
	if sp.clean() {
		if psc != nil {
			return sp.edb.Index.SearchIntoDist(dst, q, kPrime, ef, psc)
		}
		return sp.edb.Index.SearchInto(dst, q, kPrime, ef)
	}
	// Main tier: over-fetch by the pending main-tier tombstone count so
	// masking cannot leave the pool short of live candidates.
	kMain := kPrime + sp.mainDead
	efMain := ef
	if efMain < kMain {
		efMain = kMain
	}
	if psc != nil {
		ts.main = sp.edb.Index.SearchIntoDist(ts.main[:0], q, kMain, efMain, psc)
	} else {
		ts.main = sp.edb.Index.SearchInto(ts.main[:0], q, kMain, efMain)
	}
	if sp.mainDead > 0 {
		kept := ts.main[:0]
		for _, it := range ts.main {
			if !sp.tombed(it.ID) {
				kept = append(kept, it)
			}
		}
		ts.main = kept
	}
	if len(ts.main) > kPrime {
		ts.main = ts.main[:kPrime]
	}
	// Delta tier: exact distances over the (small) mutable segment.
	// Delta ids can only be dead via tombs — store flags change at
	// compaction, which empties the delta.
	ts.delta = ts.delta[:0]
	for i, v := range sp.deltaSAP {
		id := sp.frozen + i
		if sp.tombed(id) {
			continue
		}
		var d float64
		if psc != nil {
			d = psc.Dist(int32(id)) // inserts are PQ-encoded on arrival
		} else {
			d = vec.SqDist(q, v)
		}
		ts.delta = append(ts.delta, resultheap.Item{ID: id, Dist: d})
	}
	sort.Slice(ts.delta, func(a, b int) bool {
		if ts.delta[a].Dist != ts.delta[b].Dist {
			return ts.delta[a].Dist < ts.delta[b].Dist
		}
		return ts.delta[a].ID < ts.delta[b].ID
	})
	if len(ts.delta) > kPrime {
		ts.delta = ts.delta[:kPrime]
	}
	// Merge, closest first; ties go to the main tier (lower ids — delta
	// ids are always the larger).
	dst = dst[:0]
	i, j := 0, 0
	for len(dst) < kPrime && (i < len(ts.main) || j < len(ts.delta)) {
		if j >= len(ts.delta) || (i < len(ts.main) && ts.main[i].Dist <= ts.delta[j].Dist) {
			dst = append(dst, ts.main[i])
			i++
		} else {
			dst = append(dst, ts.delta[j])
			j++
		}
	}
	return dst
}

// DefaultCompactAt is the delta-tier bound used when ServerOptions (or
// Params.CompactAt) is zero: once the delta or the pending-tombstone set
// reaches this many entries, a background compaction folds them into the
// main index.
const DefaultCompactAt = 1024

// ServerOptions tunes the serving tier's write path.
type ServerOptions struct {
	// CompactAt bounds the delta tier: when the delta record count or the
	// pending tombstone count reaches it, a background goroutine compacts.
	// 0 selects DefaultCompactAt; negative disables automatic compaction
	// (Compact must be called manually).
	CompactAt int
	// CompactAtBytes additionally triggers compaction when the delta
	// tier's ciphertext+vector footprint reaches this many bytes
	// (0 disables the byte trigger).
	CompactAtBytes int
	// WALDir, when non-empty, makes the write path durable: every
	// Insert/Delete is appended to a write-ahead log in this directory
	// before it is acknowledged, and every compaction (or Flush) persists
	// an atomic checkpoint snapshot there. NewServerWith requires a fresh
	// (empty) directory and seeds it with an initial checkpoint; a
	// directory holding an existing log is recovered with OpenServer
	// instead. Databases carrying AME ciphertexts (a benchmark-only tier
	// that is never persisted) are rejected.
	WALDir string
	// WALSync selects the durability policy of the acknowledgment (see
	// wal.SyncPolicy): fsync every write (Every: 1, group-committed),
	// every Nth write, on a background interval, or OS-buffered (zero
	// value).
	WALSync wal.SyncPolicy
	// WALSegmentBytes caps a log segment before rotation; 0 selects the
	// wal package default (16 MiB).
	WALSegmentBytes int64
	// walFS overrides the log's filesystem, for fault-injection tests.
	walFS wal.FS
}

// Server hosts the encrypted database and answers queries (Figure 1 steps
// 2–3). It never holds keys or plaintexts.
//
// # Concurrency model
//
// Reads are lock-free: Search and every accessor load the current snapshot
// and never block, regardless of concurrent mutations. Insert and Delete
// serialize among themselves on a writer mutex and are O(delta): an insert
// appends to the delta tier (ciphertext arena, SAP list), a delete adds a
// pending tombstone — neither clones the frozen filter index. Writers
// publish the result atomically; a failed mutation publishes nothing, so
// there is no window in which the index and ciphertext store can be
// observed desynced.
//
// A background compaction (see Compact) periodically rebuilds the main
// index with the delta folded in and the tombstones dropped, off the read
// path: searches keep running on the old snapshot for the whole rebuild,
// and only the final swap — an O(delta since rebuild started) graft plus a
// pointer store — runs under the writer mutex.
type Server struct {
	snap atomic.Pointer[snapshot]
	wmu  sync.Mutex // serializes Insert/Delete and the compaction swap

	// cmu serializes compactions (manual and background); never held by
	// readers or writers.
	cmu            sync.Mutex
	compacting     atomic.Bool
	compactAt      int
	compactAtBytes int

	statMu       sync.Mutex
	lastPause    time.Duration
	maxPause     time.Duration
	lastDuration time.Duration
	lastCompErr  error

	// wal, when non-nil, is the attached write-ahead log: mutations
	// append under wmu (so log order equals epoch order) and group-commit
	// after publishing; compactions checkpoint through it. walPolicy is
	// retained for stats.
	wal       *wal.Log
	walPolicy wal.SyncPolicy
}

// NewServer wraps an encrypted database received from the data owner,
// with default write-path options.
func NewServer(edb *EncryptedDatabase) (*Server, error) {
	return NewServerWith(edb, ServerOptions{})
}

// NewServerWith is NewServer with explicit write-path options.
func NewServerWith(edb *EncryptedDatabase, o ServerOptions) (*Server, error) {
	if edb == nil || edb.Index == nil || edb.DCE == nil || edb.DCE.Len() == 0 {
		return nil, fmt.Errorf("core: incomplete encrypted database")
	}
	if o.CompactAt == 0 {
		o.CompactAt = DefaultCompactAt
	}
	s := &Server{compactAt: o.CompactAt, compactAtBytes: o.CompactAtBytes}
	s.snap.Store(&snapshot{edb: edb, frozen: edb.DCE.Len()})
	if o.WALDir != "" {
		if err := s.attachWAL(edb, o); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Database returns the published database state with the delta tier
// flushed — what Save and Split should operate on once a server has
// applied mutations. If the snapshot carries unflushed mutations this
// compacts first (synchronously), so the returned database always has its
// index, ciphertext store and AME array mutually consistent. The returned
// value is immutable: callers may read it freely without locking but must
// not mutate it. If compaction fails (a backend violating the rebuild
// contract), the latest consistent pre-failure state is NOT reconstructed;
// use Flush when the error matters.
func (s *Server) Database() *EncryptedDatabase {
	edb, _ := s.Flush()
	return edb
}

// Flush compacts until the published snapshot is clean and returns its
// database. On compaction failure it returns the current (possibly
// delta-carrying) database along with the error.
func (s *Server) Flush() (*EncryptedDatabase, error) {
	for {
		sp := s.snap.Load()
		if sp.clean() {
			return sp.edb, nil
		}
		if err := s.Compact(); err != nil {
			return s.snap.Load().edb, err
		}
	}
}

// Len returns the number of stored vectors (including tombstones).
func (s *Server) Len() int { return s.snap.Load().edb.DCE.Len() }

// Live returns the number of stored vectors excluding tombstones — the
// count users actually search over, across both tiers. Len-Live is the
// tombstone count (compacted and pending).
func (s *Server) Live() int { return s.snap.Load().live() }

// Epoch returns the current snapshot's mutation count: 0 for the state
// the server was constructed with, incremented by every successful Insert
// or Delete. Compactions do NOT advance the epoch: they change the
// representation, not the content, and the replicated tier's epoch-floor
// consistency check (shard.ReplicaSet) counts applied writes — a replica
// that compacted but missed a write must still read as stale.
func (s *Server) Epoch() uint64 { return s.snap.Load().epoch }

// InFlight returns the number of searches currently running against the
// published snapshot. Searches pinned to superseded snapshots are not
// counted; the value is a point-in-time observation for diagnostics.
func (s *Server) InFlight() int64 { return s.snap.Load().readers.Load() }

// Dim returns the vector dimension of the hosted database.
func (s *Server) Dim() int { return s.snap.Load().edb.Dim }

// Backend returns the registry name of the filter-index backend.
func (s *Server) Backend() string { return s.snap.Load().edb.Backend }

// Caps reports the serving tier's update capabilities. The delta tier
// accepts inserts and deletes on every backend — batch-built backends
// (NSG) fold them in at the next compaction — so both capabilities are
// always true; Name still identifies the filter backend.
func (s *Server) Caps() index.Caps {
	return index.Caps{
		Name:          s.snap.Load().edb.Index.Caps().Name,
		DynamicInsert: true,
		DynamicDelete: true,
	}
}

// Deleted reports whether an external id is tombstoned, in either tier and
// either representation (compacted away, or pending in the tombstone set).
func (s *Server) Deleted(pos int) bool { return s.snap.Load().deadAt(pos) }

// Search answers a k-ANNS query (Algorithm 2) and returns external ids
// ordered closest-first.
func (s *Server) Search(tok *QueryToken, k int, opt SearchOptions) ([]int, error) {
	ids, _, err := s.SearchInto(nil, tok, k, opt)
	return ids, err
}

// SearchWithStats is Search plus cost accounting.
func (s *Server) SearchWithStats(tok *QueryToken, k int, opt SearchOptions) ([]int, SearchStats, error) {
	return s.SearchInto(nil, tok, k, opt)
}

// ShardResult is one server's contribution to a scatter-gather search
// (see internal/shard): the result ids in refine order plus the per-id
// material a coordinator needs to merge candidates across shards. Because
// DCE query tokens are position-independent, the returned ciphertext
// records compare correctly against records from any other shard of the
// same deployment.
type ShardResult struct {
	// IDs are the result ids, closest first (server-local positions).
	IDs []int
	// Epoch is the publication count of the snapshot that served the
	// query (see SearchStats.Epoch). The replicated shard tier uses it
	// for read-your-writes consistency: a replica answering below the
	// coordinator's write floor is stale and the read fails over.
	Epoch uint64
	// Dists holds the filter-phase SAP distances parallel to IDs, the
	// merge key when no refine runs (RefineNone only).
	Dists []float64
	// Recs holds copies of the DCE records [P1|P2|P3|P4] parallel to IDs
	// (RefineDCE only); CtDim is their component length. Populated by the
	// wire-safe SearchShard; the view-returning variants leave it nil and
	// set Store instead.
	Recs  [][]float64
	CtDim int
	// AME holds the AME ciphertexts parallel to IDs (RefineAME only).
	// AME material never travels over the wire, so this field only serves
	// in-process coordinators.
	AME []*ame.Ciphertext
	// Store, when non-nil, replaces Recs for in-process coordinators
	// (RefineDCE only): the snapshot's ciphertext store, addressed by the
	// local ids in IDs. The snapshot discipline makes this a zero-copy
	// borrow that stays valid indefinitely — published stores are never
	// mutated — at the cost of pinning the snapshot in memory while the
	// result is held.
	Store *dce.CiphertextStore
	// views marks a result whose merge material should borrow snapshot
	// views instead of copying records. Only core can set it (via the
	// View search variants); zero means wire-safe copies.
	views bool
}

// SearchShard answers a query like Search and additionally returns the
// merge material for the active refine mode, so a scatter-gather
// coordinator can order this server's results against other shards'. The
// DCE merge material is copied out of the snapshot, making the result safe
// to serialize over the wire; in-process coordinators should prefer
// SearchShardView.
func (s *Server) SearchShard(tok *QueryToken, k int, opt SearchOptions) (ShardResult, error) {
	return s.searchShard(tok, k, opt, false)
}

// SearchShardView is SearchShard without the copies: the DCE merge
// material is returned as the snapshot's ciphertext store plus local ids
// (ShardResult.Store). Immutable snapshots make the borrow safe for as
// long as the caller holds it; the in-process scatter-gather tier uses
// this to merge without staging a single record copy.
func (s *Server) SearchShardView(tok *QueryToken, k int, opt SearchOptions) (ShardResult, error) {
	return s.searchShard(tok, k, opt, true)
}

func (s *Server) searchShard(tok *QueryToken, k int, opt SearchOptions, views bool) (ShardResult, error) {
	res := ShardResult{views: views}
	dst := make([]int, 0, k) // exact-size result buffer: one allocation, no append growth
	ids, st, err := s.searchInto(dst, tok, k, opt, &res)
	if err != nil {
		return ShardResult{}, err
	}
	res.IDs = ids
	res.Epoch = st.Epoch
	return res, nil
}

// SearchInto is SearchWithStats appending the result ids into dst (whose
// capacity is reused; pass nil to allocate). All per-query working state —
// filter items, candidate list, refine heap, operand scratch — comes from
// an internal pool, so with a recycled dst a steady-state search performs
// zero allocations.
func (s *Server) SearchInto(dst []int, tok *QueryToken, k int, opt SearchOptions) ([]int, SearchStats, error) {
	return s.searchInto(dst, tok, k, opt, nil)
}

// searchInto is the shared search body. When mm is non-nil it captures,
// for every returned id, the cross-shard merge material of the active
// refine mode (SAP distance, DCE record copy or store view, or AME
// ciphertext).
//
// The whole body runs lock-free against one immutable snapshot: it loads
// the snapshot pointer once and never observes a concurrent mutation —
// writers publish whole new snapshots instead of touching this one. The
// filter phase searches both tiers (filterInto); the refine phase is
// tier-blind, because the DCE store spans both tiers in one id space.
func (s *Server) searchInto(dst []int, tok *QueryToken, k int, opt SearchOptions, mm *ShardResult) ([]int, SearchStats, error) {
	var st SearchStats
	if tok == nil || tok.SAP == nil {
		return dst[:0], st, fmt.Errorf("core: query token missing SAP ciphertext")
	}
	if k <= 0 {
		return dst[:0], st, fmt.Errorf("core: non-positive k %d", k)
	}
	sp := s.snap.Load()
	sp.readers.Add(1)
	defer sp.readers.Add(-1)
	edb := sp.edb
	st.Epoch = sp.epoch
	// Dimension checks up front: the index and comparison backends panic
	// on mismatched vectors, which must not be reachable from the wire.
	if len(tok.SAP) != edb.Dim {
		return dst[:0], st, fmt.Errorf("core: query token has dim %d, want %d", len(tok.SAP), edb.Dim)
	}

	kPrime := opt.kPrime(k)
	if kPrime < k {
		kPrime = k
	}

	sc := getScratch()
	defer putScratch(sc)

	// Filter phase (Algorithm 2 line 1): k′-ANNS over SAP ciphertexts,
	// both tiers merged. With FilterPQ the asymmetric distance table is
	// computed once here; every candidate the walk touches then costs M
	// byte-indexed lookups instead of a dim-float memory sweep.
	var psc *pq.Scanner
	if opt.FilterDist == FilterPQ {
		if edb.PQ == nil {
			return dst[:0], st, fmt.Errorf("core: FilterPQ requested but database carries no PQ store (build with Params.PQ or BuildPQ)")
		}
		psc = &sc.pqsc
		psc.Prepare(edb.PQ.Book, edb.PQ.Codes, tok.SAP)
	} else if opt.FilterDist != FilterExact {
		return dst[:0], st, fmt.Errorf("core: unknown filter distance mode %d", opt.FilterDist)
	}
	start := time.Now()
	sc.items = sp.filterInto(&sc.tier, sc.items[:0], tok.SAP, kPrime, opt.ef(kPrime), psc)
	st.FilterTime = time.Since(start)
	st.Candidates = len(sc.items)
	if len(sc.items) == 0 {
		return dst[:0], st, nil
	}

	sc.cands = sc.cands[:0]
	for _, it := range sc.items {
		sc.cands = append(sc.cands, it.ID)
	}
	cands := sc.cands

	// Refine phase (Algorithm 2 lines 2–9).
	start = time.Now()
	switch opt.Refine {
	case RefineNone:
		if len(cands) > k {
			cands = cands[:k]
		}
		dst = append(dst[:0], cands...)
		if mm != nil {
			// cands is a prefix of the filter items, so the merge keys
			// are their (comparable across shards) SAP distances.
			mm.Dists = make([]float64, len(dst))
			for i := range dst {
				mm.Dists[i] = sc.items[i].Dist
			}
		}
	case RefineDCE:
		if tok.Trapdoor == nil {
			return dst[:0], st, fmt.Errorf("core: token lacks DCE trapdoor for refine")
		}
		ctDim := edb.DCE.CtDim()
		// PrepareQuery validates the trapdoor dimension once; every heap
		// comparison then runs against the prepared binding with no
		// per-call setup.
		if err := edb.DCE.PrepareQuery(&sc.pq, tok.Trapdoor.Q); err != nil {
			return dst[:0], st, fmt.Errorf("core: %w", err)
		}
		// A filter backend out of step with the ciphertext store must
		// surface as a wire-safe error, never as an out-of-range panic in
		// the serving process.
		for _, id := range cands {
			if !edb.DCE.Has(id) {
				return dst[:0], st, fmt.Errorf("core: filter index returned id %d with no DCE ciphertext", id)
			}
		}
		cmp := &sc.dce
		*cmp = dceComparator{pq: &sc.pq, cands: cands}
		if opt.PrecomputeRefine {
			sc.ops = edb.DCE.ScaleOperands(sc.ops, cands, tok.Trapdoor.Q)
			cmp.ops, cmp.ctDim = sc.ops, ctDim
		}
		dst, st.Comparisons = refineScratch(sc, cands, k, cmp, dst)
		if mm != nil {
			mm.CtDim = ctDim
			if mm.views {
				// Zero-copy: the snapshot's store is immutable once
				// published, so a borrowed view stays valid for as long
				// as the caller holds the result.
				mm.Store = edb.DCE
			} else {
				// Record copies, not arena views: wire-safe against any
				// later snapshot appends sharing the arena.
				mm.Recs = make([][]float64, len(dst))
				for i, id := range dst {
					mm.Recs[i] = append([]float64(nil), edb.DCE.Record(id)...)
				}
			}
		}
	case RefineAME:
		if edb.AME == nil {
			return dst[:0], st, fmt.Errorf("core: database was built without AME ciphertexts")
		}
		if tok.AME == nil {
			return dst[:0], st, fmt.Errorf("core: token lacks AME trapdoor for refine")
		}
		for _, id := range cands {
			if id < 0 || id >= len(edb.AME) || edb.AME[id] == nil {
				return dst[:0], st, fmt.Errorf("core: filter index returned id %d with no AME ciphertext", id)
			}
		}
		cmp := &sc.ame
		*cmp = ameComparator{cts: edb.AME, cands: cands, tq: tok.AME}
		dst, st.Comparisons = refineScratch(sc, cands, k, cmp, dst)
		if mm != nil {
			mm.AME = make([]*ame.Ciphertext, len(dst))
			for i, id := range dst {
				mm.AME[i] = edb.AME[id]
			}
		}
	default:
		return dst[:0], st, fmt.Errorf("core: unknown refine mode %d", opt.Refine)
	}
	st.RefineTime = time.Since(start)
	return dst, st, nil
}

// Insert adds one encrypted vector (Section V-D) and returns its external
// id. Deletion tombstones are not reused; ids grow monotonically. Every
// backend accepts inserts: they land in the delta tier, not the frozen
// index, so batch-built backends (NSG) are as insertable as dynamic ones.
//
// Insert is O(1)-ish: it appends the DCE ciphertext to the shared arena
// (past every published snapshot's length), appends the SAP vector to the
// delta list, and publishes a new snapshot — no index clone, no work
// proportional to the database size. A failed insert (validation, or a WAL
// append failure) publishes nothing.
//
// With a WAL attached the insert is append-then-ack: the encrypted payload
// (SAP + DCE record + PQ code row) is logged before the snapshot publishes,
// and the call returns only once the record is durable per the configured
// sync policy. A non-nil error alongside a valid id means the insert is
// applied in memory but its durability is unknown (a failed fsync poisons
// the log; subsequent writes fail fast).
func (s *Server) Insert(p *InsertPayload) (int, error) {
	if p == nil || p.SAP == nil || p.DCE == nil {
		return 0, fmt.Errorf("core: incomplete insert payload")
	}
	s.wmu.Lock()
	cur := s.snap.Load()
	edb := cur.edb
	if len(p.SAP) != edb.Dim {
		s.wmu.Unlock()
		return 0, fmt.Errorf("core: insert payload has dim %d, want %d", len(p.SAP), edb.Dim)
	}
	if ctDim := edb.DCE.CtDim(); len(p.DCE.P1) != ctDim || len(p.DCE.P2) != ctDim ||
		len(p.DCE.P3) != ctDim || len(p.DCE.P4) != ctDim {
		s.wmu.Unlock()
		return 0, fmt.Errorf("core: insert DCE ciphertext components do not match stored dimension %d", ctDim)
	}
	if edb.AME != nil && p.AME == nil {
		s.wmu.Unlock()
		return 0, fmt.Errorf("core: database carries AME ciphertexts; payload lacks one")
	}
	var code []byte
	if edb.PQ != nil {
		// Encode server-side with the published codebook so the code arena
		// keeps covering every id; the delta tier then scans codes too.
		code = make([]byte, edb.PQ.Book.M())
		edb.PQ.Book.EncodeInto(code, p.SAP)
	}
	var lsn uint64
	if s.wal != nil {
		payload := appendInsertPayload(nil, uint64(edb.DCE.Len()), p.SAP, p.DCE, code)
		var werr error
		lsn, werr = s.wal.Append(wal.KindInsert, cur.epoch+1, payload)
		if werr != nil {
			s.wmu.Unlock()
			return 0, fmt.Errorf("core: wal append: %w", werr)
		}
	}
	pos := s.publishInsert(cur, p.SAP, p.DCE, p.AME, code)
	s.wmu.Unlock()
	if s.wal != nil {
		if err := s.wal.Commit(lsn); err != nil {
			return pos, fmt.Errorf("core: wal commit: %w", err)
		}
	}
	s.maybeCompact()
	return pos, nil
}

// publishInsert appends a validated insert to the delta tier and publishes
// the next snapshot, returning the new id. code is the PQ row to append
// (nil when the database carries no PQ tier — replay passes the logged row
// here so recovered code arenas are byte-identical). Caller holds wmu and
// has validated dimensions against cur.
func (s *Server) publishInsert(cur *snapshot, sapIn []float64, ct *dce.Ciphertext, ameCt *ame.Ciphertext, code []byte) int {
	edb := cur.edb
	pos := edb.DCE.Len()
	// The arena append writes past every published snapshot's length —
	// invisible to in-flight readers; likewise the SAP, AME and PQ-code
	// appends.
	store := edb.DCE.Extend(ct)
	sap := append([]float64(nil), sapIn...)
	var ameCts []*ame.Ciphertext
	if edb.AME != nil {
		ameCts = append(edb.AME, ameCt)
	}
	var pqStore *pq.Store
	if edb.PQ != nil {
		pqStore = &pq.Store{
			Book:      edb.PQ.Book,
			Codes:     edb.PQ.Codes.Extend(code),
			TrainedOn: edb.PQ.TrainedOn,
			Cfg:       edb.PQ.Cfg,
		}
	}
	s.snap.Store(&snapshot{
		edb: &EncryptedDatabase{
			Dim:     edb.Dim,
			Backend: edb.Backend,
			Index:   edb.Index,
			DCE:     store,
			AME:     ameCts,
			PQ:      pqStore,
		},
		frozen:   cur.frozen,
		deltaSAP: append(cur.deltaSAP, sap),
		tombs:    cur.tombs,
		mainDead: cur.mainDead,
		epoch:    cur.epoch + 1,
		gen:      cur.gen,
	})
	return pos
}

// Delete removes the vector with the given external id (Section V-D).
// Server-only — no data-owner participation, as the paper notes. The
// delete is a pending tombstone: searches mask the id immediately (it is
// fully gone from the next snapshot's results), and the next compaction
// drops the ciphertext bytes and repairs the index around it. O(tombs)
// per call (the pending set is copied), independent of database size.
func (s *Server) Delete(pos int) error {
	s.wmu.Lock()
	cur := s.snap.Load()
	edb := cur.edb
	if pos < 0 || pos >= edb.DCE.Len() {
		s.wmu.Unlock()
		return fmt.Errorf("core: delete of unknown id %d", pos)
	}
	if !edb.DCE.Has(pos) || cur.tombed(pos) {
		s.wmu.Unlock()
		return fmt.Errorf("core: id %d already deleted", pos)
	}
	var lsn uint64
	if s.wal != nil {
		var werr error
		lsn, werr = s.wal.Append(wal.KindDelete, cur.epoch+1, appendDeletePayload(nil, uint64(pos)))
		if werr != nil {
			s.wmu.Unlock()
			return fmt.Errorf("core: wal append: %w", werr)
		}
	}
	s.publishDelete(cur, pos)
	s.wmu.Unlock()
	if s.wal != nil {
		if err := s.wal.Commit(lsn); err != nil {
			return fmt.Errorf("core: wal commit: %w", err)
		}
	}
	s.maybeCompact()
	return nil
}

// publishDelete records a validated tombstone and publishes the next
// snapshot. Caller holds wmu and has checked pos is live in cur.
func (s *Server) publishDelete(cur *snapshot, pos int) {
	tombs := make(map[int]struct{}, len(cur.tombs)+1)
	for t := range cur.tombs {
		tombs[t] = struct{}{}
	}
	tombs[pos] = struct{}{}
	mainDead := cur.mainDead
	if pos < cur.frozen {
		mainDead++
	}
	s.snap.Store(&snapshot{
		edb:      cur.edb,
		frozen:   cur.frozen,
		deltaSAP: cur.deltaSAP,
		tombs:    tombs,
		mainDead: mainDead,
		epoch:    cur.epoch + 1,
		gen:      cur.gen,
	})
}

// CompactionStats is a point-in-time view of the write path's two-tier
// state and compaction history.
type CompactionStats struct {
	// Epoch is the snapshot's mutation count (see Server.Epoch).
	Epoch uint64
	// Generation counts compactions folded into the snapshot.
	Generation uint64
	// Len and Live are the record counts (total / excluding tombstones).
	Len, Live int
	// Frozen is the main-tier size (ids covered by the frozen index);
	// Delta is the delta-tier record count (Len-Frozen); Tombstones is
	// the pending tombstone count awaiting compaction.
	Frozen, Delta, Tombstones int
	// Compacting reports whether a background compaction is running.
	Compacting bool
	// LastPause is the writer-blocking swap window of the most recent
	// compaction — the only part of a compaction that holds the writer
	// mutex. MaxPause is the largest such window since construction.
	// LastDuration is the most recent compaction's full wall time,
	// rebuild included.
	LastPause, MaxPause, LastDuration time.Duration
	// LastError is the most recent compaction failure, or "" — a failed
	// compaction publishes nothing, so the snapshot stays consistent.
	LastError string
}

// CompactionStats reports the current two-tier state and compaction
// history.
func (s *Server) CompactionStats() CompactionStats {
	sp := s.snap.Load()
	cs := CompactionStats{
		Epoch:      sp.epoch,
		Generation: sp.gen,
		Len:        sp.edb.DCE.Len(),
		Live:       sp.live(),
		Frozen:     sp.frozen,
		Delta:      len(sp.deltaSAP),
		Tombstones: len(sp.tombs),
		Compacting: s.compacting.Load(),
	}
	s.statMu.Lock()
	cs.LastPause = s.lastPause
	cs.MaxPause = s.maxPause
	cs.LastDuration = s.lastDuration
	if s.lastCompErr != nil {
		cs.LastError = s.lastCompErr.Error()
	}
	s.statMu.Unlock()
	return cs
}

// deltaBytes estimates the delta tier's footprint: the padded ciphertext
// records plus the SAP vectors.
func (s *Server) deltaBytes(sp *snapshot) int {
	return len(sp.deltaSAP) * 8 * (sp.edb.DCE.Stride() + sp.edb.Dim)
}

// MemoryStats is the published snapshot's memory footprint split by
// serving tier, in bytes per point: the padded SAP vector row the filter
// phase streams, the DCE ciphertext record the refine phase reads, and —
// when the compressed tier is attached — the PQ code row plus the codebook
// amortized across points. DeltaBytes is the absolute un-compacted
// write-path bloat on top (delta-tier records awaiting the next fold).
type MemoryStats struct {
	N          int
	SAP        float64
	DCE        float64
	PQCodes    float64
	PQBook     float64
	DeltaBytes int
}

// MemoryStats reports the per-tier memory breakdown of the current
// snapshot. All figures read one snapshot, so they are never torn across
// a concurrent mutation.
func (s *Server) MemoryStats() MemoryStats {
	sp := s.snap.Load()
	m := MemoryStats{
		N:          sp.edb.DCE.Len(),
		SAP:        float64(8 * vec.PadStride(sp.edb.Dim)),
		DCE:        float64(8 * sp.edb.DCE.Stride()),
		DeltaBytes: s.deltaBytes(sp),
	}
	if sp.edb.PQ != nil && m.N > 0 {
		m.PQCodes = float64(sp.edb.PQ.Codes.SizeBytes()) / float64(m.N)
		m.PQBook = float64(sp.edb.PQ.Book.SizeBytes()) / float64(m.N)
	}
	return m
}

// overThreshold reports whether the snapshot's pending write state has
// outgrown the configured compaction triggers.
func (s *Server) overThreshold(sp *snapshot) bool {
	if s.compactAt < 0 {
		return false
	}
	if len(sp.deltaSAP) >= s.compactAt || len(sp.tombs) >= s.compactAt {
		return true
	}
	return s.compactAtBytes > 0 && s.deltaBytes(sp) >= s.compactAtBytes
}

// maybeCompact starts the background compactor if the pending write state
// has outgrown the triggers and no compaction is already running. Called
// after every mutation, outside the writer mutex.
func (s *Server) maybeCompact() {
	if !s.overThreshold(s.snap.Load()) {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		s.cmu.Lock()
		defer s.cmu.Unlock()
		defer s.compacting.Store(false)
		// Loop: mutations that arrived during a fold may already exceed
		// the trigger again. A failed compaction stops the loop (the
		// error is recorded in CompactionStats); the next mutation
		// re-triggers.
		for s.overThreshold(s.snap.Load()) {
			if err := s.compactOnce(); err != nil {
				return
			}
		}
	}()
}

// Compact synchronously folds the delta tier and pending tombstones into
// a rebuilt main index (see compactOnce). Manual control for operators;
// the background trigger calls the same fold. A no-op on a clean snapshot.
func (s *Server) Compact() error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.compactOnce()
}

// compactOnce performs one fold. Caller holds cmu (never wmu).
//
// The expensive work — gathering vectors, rebuilding the index, repacking
// the ciphertext arena — runs against a fixed base snapshot with no locks
// held, so searches and mutations proceed throughout. Mutations that
// landed after the base snapshot are grafted onto the rebuilt state in
// two phases: the bulk of the tail is copied lock-free, then the swap
// takes the writer mutex to graft whatever landed during the copy
// (appended records re-enter the new delta tier; new tombstones stay
// pending) and publishes the result atomically. In-flight readers keep
// their old snapshots.
//
// The epoch is preserved: compaction is not a mutation (see Epoch). The
// generation counter advances instead.
func (s *Server) compactOnce() error {
	err := s.compactFold()
	s.statMu.Lock()
	s.lastCompErr = err
	s.statMu.Unlock()
	return err
}

func (s *Server) compactFold() error {
	start := time.Now()
	base := s.snap.Load()
	if base.clean() {
		return nil
	}
	edb := base.edb
	n := edb.DCE.Len()

	// Gather every position's SAP vector: main tier from the frozen
	// index (which retains tombstone rows), delta tier from the snapshot.
	vecs := make([][]float64, n)
	for g := 0; g < base.frozen; g++ {
		v, ok := edb.Index.Vector(g)
		if !ok {
			return fmt.Errorf("core: compaction: index has no vector for id %d", g)
		}
		vecs[g] = v
	}
	for i, v := range base.deltaSAP {
		vecs[base.frozen+i] = v
	}

	// Rebuild the filter index over both tiers. Dead ids keep their
	// (re-deleted) slots so the id space never shifts — shard striping
	// and user-visible ids depend on stable positions.
	idx, err := edb.Index.Rebuild(vecs)
	if err != nil {
		return fmt.Errorf("core: compaction rebuild: %w", err)
	}
	if idx.Len() != n {
		return fmt.Errorf("core: compaction rebuild produced %d ids, want %d", idx.Len(), n)
	}
	dead := func(id int) bool { return !edb.DCE.Has(id) || base.tombed(id) }
	for g := 0; g < n; g++ {
		if dead(g) {
			if err := idx.Delete(g); err != nil {
				return fmt.Errorf("core: compaction: re-deleting id %d: %w", g, err)
			}
		}
	}
	// Repack the ciphertext arena: tombstoned records' bytes are dropped
	// (zeroed), and the new arena is private — the old chain keeps
	// serving in-flight readers.
	store := edb.DCE.Compacted(dead)
	if idx.Len() != store.Live() {
		return fmt.Errorf("core: compaction left index with %d live ids, store with %d", idx.Len(), store.Live())
	}
	// Fold the PQ tier. The codebook is reused (codes just repack, like the
	// ciphertext arena) until the database has outgrown its training set —
	// NeedsRetrain's deterministic doubling rule — at which point the whole
	// tier retrains on the gathered vectors under the retained config.
	var pqs *pq.Store
	var pqRetrained bool
	if edb.PQ != nil {
		if edb.PQ.NeedsRetrain(n) {
			rebuilt, err := pq.Build(vecs, edb.PQ.Cfg)
			if err != nil {
				return fmt.Errorf("core: compaction PQ retrain: %w", err)
			}
			pqs = rebuilt
			pqRetrained = true
		} else {
			pqs = &pq.Store{
				Book:      edb.PQ.Book,
				Codes:     edb.PQ.Codes.Compacted(dead),
				TrainedOn: edb.PQ.TrainedOn,
				Cfg:       edb.PQ.Cfg,
			}
		}
	}
	// graftCode carries id g's code into the folded arena: copied from the
	// serving store when the codebook was reused, re-encoded from the
	// delta-tier SAP vector when a retrain replaced it (old codes are
	// meaningless under a new codebook).
	var codeBuf []byte
	graftCode := func(from *snapshot, g int) {
		if !pqRetrained {
			pqs.Codes.AppendRow(from.edb.PQ.Codes.Row(g))
			return
		}
		if codeBuf == nil {
			codeBuf = make([]byte, pqs.Book.M())
		}
		pqs.Book.EncodeInto(codeBuf, from.deltaSAP[g-base.frozen])
		pqs.Codes.AppendRow(codeBuf)
	}
	var ameCts []*ame.Ciphertext
	if edb.AME != nil {
		ameCts = make([]*ame.Ciphertext, n)
		copy(ameCts, edb.AME[:n])
		for g := range ameCts {
			if dead(g) {
				ameCts[g] = nil
			}
		}
	}

	// Capture the checkpoint state before any grafting: the folded index,
	// arena and code store correspond exactly to the base snapshot's
	// content (epoch base.epoch). The COW snapshots share the arenas;
	// grafts below only append past their lengths, so the capture stays
	// bit-stable while the checkpoint file is written after the swap.
	var ckptEDB *EncryptedDatabase
	if s.wal != nil {
		var ckptPQ *pq.Store
		if pqs != nil {
			ckptPQ = &pq.Store{
				Book:      pqs.Book,
				Codes:     pqs.Codes.Snapshot(),
				TrainedOn: pqs.TrainedOn,
				Cfg:       pqs.Cfg,
			}
		}
		ckptEDB = &EncryptedDatabase{
			Dim:     edb.Dim,
			Backend: edb.Backend,
			Index:   idx,
			DCE:     store.Snapshot(),
			PQ:      ckptPQ,
		}
	}

	// Pre-graft the bulk of the post-snapshot tail with no locks held.
	// Records past the base snapshot's length are append-only and
	// immutable once visible in a published snapshot, so they are safe to
	// copy here; the locked section below then carries only the handful
	// of records that land while this loop runs. The reservation pulls
	// the repacked arena's first regrowth (a full-arena copy — Compacted
	// allocates it exactly full) out of the writers' critical section.
	pre := s.snap.Load()
	preN := pre.edb.DCE.Len()
	store.Reserve(preN - n + 64)
	if pqs != nil {
		pqs.Codes.Reserve(preN - n + 64)
	}
	for g := n; g < preN; g++ {
		store.AppendRecord(pre.edb.DCE.Record(g))
		if pqs != nil {
			graftCode(pre, g)
		}
	}

	// Swap under the writer mutex, grafting everything that happened
	// after the pre-graft: records appended since become the new delta
	// tier, tombstones added since stay pending.
	swapStart := time.Now()
	s.wmu.Lock()
	cur := s.snap.Load()
	curN := cur.edb.DCE.Len()
	for g := preN; g < curN; g++ {
		store.AppendRecord(cur.edb.DCE.Record(g))
		if pqs != nil {
			graftCode(cur, g)
		}
	}
	deltaSAP := append([][]float64(nil), cur.deltaSAP[n-base.frozen:]...)
	if edb.AME != nil {
		ameCts = append(ameCts, cur.edb.AME[n:curN]...)
	}
	var tombs map[int]struct{}
	mainDead := 0
	for t := range cur.tombs {
		if base.tombed(t) {
			continue // folded into the rebuilt state
		}
		if tombs == nil {
			tombs = make(map[int]struct{}, len(cur.tombs))
		}
		tombs[t] = struct{}{}
		if t < n {
			mainDead++
		}
	}
	s.snap.Store(&snapshot{
		edb: &EncryptedDatabase{
			Dim:     edb.Dim,
			Backend: edb.Backend,
			Index:   idx,
			DCE:     store,
			AME:     ameCts,
			PQ:      pqs,
		},
		frozen:   n,
		deltaSAP: deltaSAP,
		tombs:    tombs,
		mainDead: mainDead,
		epoch:    cur.epoch, // representation change, not a mutation
		gen:      cur.gen + 1,
	})
	s.wmu.Unlock()

	pause := time.Since(swapStart)
	s.statMu.Lock()
	s.lastPause = pause
	if pause > s.maxPause {
		s.maxPause = pause
	}
	s.lastDuration = time.Since(start)
	s.statMu.Unlock()

	// Persist the fold as the log's new recovery base. The fold itself is
	// already published — a checkpoint failure doesn't undo it, it means
	// recovery still starts from the previous checkpoint (and the error
	// surfaces through Compact/Flush/CompactionStats; a failed fsync also
	// poisons the log, failing subsequent writes fast).
	if s.wal != nil {
		if err := s.walCheckpoint(ckptEDB, base.epoch, base.gen+1); err != nil {
			return err
		}
	}
	return nil
}
