package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ppanns/internal/ame"
	"ppanns/internal/dce"
	"ppanns/internal/index"
)

// RefineMode selects how the server's refine phase compares candidates.
type RefineMode int

const (
	// RefineDCE is the paper's scheme: exact comparisons via DCE, O(d)
	// per comparison.
	RefineDCE RefineMode = iota
	// RefineAME is the HNSW-AME baseline: exact comparisons via AME,
	// O(d²) per comparison.
	RefineAME
	// RefineNone skips refinement and returns the filter phase's top-k —
	// the HNSW(filter) ablation of Figure 6.
	RefineNone
)

// String names the refine mode for reports.
func (m RefineMode) String() string {
	switch m {
	case RefineDCE:
		return "dce"
	case RefineAME:
		return "ame"
	case RefineNone:
		return "filter-only"
	default:
		return fmt.Sprintf("refine(%d)", int(m))
	}
}

// SearchOptions tunes one search call.
type SearchOptions struct {
	// KPrime is k′, the filter phase's candidate count. Defaults to
	// RatioK·k; if RatioK is also zero, to 8·k.
	KPrime int
	// RatioK sets k′ = RatioK·k (Figure 5's knob).
	RatioK int
	// EfSearch is the HNSW beam width; defaults to max(KPrime, 50).
	EfSearch int
	// Refine selects the comparison scheme (default RefineDCE).
	Refine RefineMode
	// PrecomputeRefine makes the DCE refine phase scale every candidate's
	// P1/P2 operands by the trapdoor once, up front, so each of the
	// O(k′ log k) heap comparisons runs a two-multiply kernel instead of
	// three. The up-front pass writes 2·(2d+16) floats per candidate, so
	// it only pays when the heap re-compares each candidate many times
	// (comparisons ≫ k′, e.g. tiny k′ with deep re-heapification); at the
	// paper's operating points (k′ = 16k) BenchmarkRefine measures it as
	// a net loss, which is why it defaults to off. Results are identical
	// either way up to float64 rounding of exactly tied distances.
	PrecomputeRefine bool
	// Parallelism caps the worker count of the batch executors
	// (SearchBatch and friends); 0 means one worker per CPU. It rides
	// inside the options so remote batch calls carry it over the wire and
	// the scatter-gather coordinator forwards it to every shard. An
	// explicit parallelism argument on the batch methods overrides it.
	Parallelism int
	// BlockQ groups the batch executors' queries into blocks of this many
	// trapdoor-prepared queries that share each gathered candidate block
	// during the DCE refine phase (see SearchBatchBlocked). 0 or 1 keeps
	// the per-query path. Like Parallelism it rides inside the options, so
	// remote batch calls and the scatter-gather coordinator's per-shard
	// batch ops pick up query blocking with no wire change.
	BlockQ int
}

func (s SearchOptions) kPrime(k int) int {
	if s.KPrime > 0 {
		return s.KPrime
	}
	if s.RatioK > 0 {
		return s.RatioK * k
	}
	return 8 * k
}

func (s SearchOptions) ef(kPrime int) int {
	if s.EfSearch > 0 {
		return s.EfSearch
	}
	if kPrime > 50 {
		return kPrime
	}
	return 50
}

// parallelism resolves the worker count of a batch executor: an explicit
// argument wins, then the Parallelism option, then one worker per CPU.
func (s SearchOptions) parallelism(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Partition returns a copy of the options with the filter effort divided
// across n shards: k′ and the beam width shrink to their per-shard share
// (floored at k — every shard must still produce a full local top-k for
// the global merge to select from). A scatter-gather coordinator spreading
// one query over n shards then performs ≈ the same total filter work as a
// single server, instead of n times it; the candidate pool keeps its total
// size, merely spread across shards, so recall stays at the same operating
// point while the sharded tier stops costing n× the compute per query.
func (s SearchOptions) Partition(n, k int) SearchOptions {
	if n <= 1 {
		return s
	}
	kPrime := s.kPrime(k)
	ef := s.ef(kPrime)
	share := (kPrime + n - 1) / n
	if share < k {
		share = k
	}
	efShare := (ef + n - 1) / n
	if efShare < share {
		efShare = share
	}
	out := s
	out.KPrime = share
	out.RatioK = 0
	out.EfSearch = efShare
	return out
}

// SearchStats reports the cost split of one search, matching the
// quantities the paper's Figures 6 and 9 plot.
type SearchStats struct {
	FilterTime  time.Duration // k′-ANNS on the SAP graph
	RefineTime  time.Duration // heap selection via secure comparisons
	Candidates  int           // |R′| actually returned by the filter
	Comparisons int           // secure distance comparisons performed
	// Epoch identifies the published snapshot that served the query (the
	// server's mutation count at publication time), so callers — and the
	// concurrency conformance tests — can tie a result set to the exact
	// database state it reflects.
	Epoch uint64
}

// snapshot is one immutable publication of the encrypted database. The
// serving tier is copy-on-write: searches load the current snapshot from an
// atomic pointer and run entirely against it — no lock, no coordination
// with writers — while mutations build the next snapshot from cheap clones
// and publish it with a single pointer swap. A snapshot, once published, is
// never mutated again; in-flight searches therefore always finish on the
// exact database state they started with, and the garbage collector
// reclaims superseded snapshots when their last reader drops them.
type snapshot struct {
	edb   *EncryptedDatabase
	epoch uint64
	// readers counts in-flight searches pinned to this snapshot. The
	// refcount is not needed for reclamation (the GC handles that); it
	// exists so tests and operators can observe snapshot drain — e.g.
	// assert that superseded epochs quiesce instead of leaking searches.
	readers atomic.Int64
}

// Server hosts the encrypted database and answers queries (Figure 1 steps
// 2–3). It never holds keys or plaintexts.
//
// # Concurrency model
//
// Reads are lock-free: Search and every accessor load the current snapshot
// and never block, regardless of concurrent mutations. Insert and Delete
// serialize among themselves on a writer mutex, clone the affected state
// (the filter index deep-copies; the ciphertext arena is shared
// append-only), apply the mutation to the private clone, and publish the
// result atomically. Writers therefore pay O(n) per mutation — the price
// of never making a reader wait — and a failed mutation simply discards
// its clone, leaving the published snapshot untouched: there is no window
// in which the index and ciphertext store can be observed desynced.
type Server struct {
	snap atomic.Pointer[snapshot]
	wmu  sync.Mutex // serializes Insert/Delete; never held by readers
}

// NewServer wraps an encrypted database received from the data owner.
func NewServer(edb *EncryptedDatabase) (*Server, error) {
	if edb == nil || edb.Index == nil || edb.DCE == nil || edb.DCE.Len() == 0 {
		return nil, fmt.Errorf("core: incomplete encrypted database")
	}
	s := &Server{}
	s.snap.Store(&snapshot{edb: edb})
	return s, nil
}

// Database returns the currently published database state — what Save and
// Split should operate on once a server has applied mutations, since the
// copy-on-write discipline means the *EncryptedDatabase the server was
// constructed with no longer reflects them. The returned value is an
// immutable snapshot: callers may read it freely without locking but must
// not mutate it (mutating it would tear concurrent searches, exactly what
// the snapshot discipline exists to prevent).
func (s *Server) Database() *EncryptedDatabase { return s.snap.Load().edb }

// Len returns the number of stored vectors (including tombstones).
func (s *Server) Len() int { return s.Database().Len() }

// Live returns the number of stored vectors excluding tombstones — the
// count users actually search over. Len-Live is the tombstone count.
func (s *Server) Live() int { return s.Database().Live() }

// Epoch returns the current snapshot's publication count: 0 for the state
// the server was constructed with, incremented by every successful Insert
// or Delete.
func (s *Server) Epoch() uint64 { return s.snap.Load().epoch }

// InFlight returns the number of searches currently running against the
// published snapshot. Searches pinned to superseded snapshots are not
// counted; the value is a point-in-time observation for diagnostics.
func (s *Server) InFlight() int64 { return s.snap.Load().readers.Load() }

// Dim returns the vector dimension of the hosted database.
func (s *Server) Dim() int { return s.Database().Dim }

// Backend returns the registry name of the filter-index backend.
func (s *Server) Backend() string { return s.Database().Backend }

// Caps reports the filter index's update capabilities, so clients can
// learn whether Insert/Delete are available before attempting them.
func (s *Server) Caps() index.Caps { return s.Database().Index.Caps() }

// Search answers a k-ANNS query (Algorithm 2) and returns external ids
// ordered closest-first.
func (s *Server) Search(tok *QueryToken, k int, opt SearchOptions) ([]int, error) {
	ids, _, err := s.SearchInto(nil, tok, k, opt)
	return ids, err
}

// SearchWithStats is Search plus cost accounting.
func (s *Server) SearchWithStats(tok *QueryToken, k int, opt SearchOptions) ([]int, SearchStats, error) {
	return s.SearchInto(nil, tok, k, opt)
}

// ShardResult is one server's contribution to a scatter-gather search
// (see internal/shard): the result ids in refine order plus the per-id
// material a coordinator needs to merge candidates across shards. Because
// DCE query tokens are position-independent, the returned ciphertext
// records compare correctly against records from any other shard of the
// same deployment.
type ShardResult struct {
	// IDs are the result ids, closest first (server-local positions).
	IDs []int
	// Epoch is the publication count of the snapshot that served the
	// query (see SearchStats.Epoch). The replicated shard tier uses it
	// for read-your-writes consistency: a replica answering below the
	// coordinator's write floor is stale and the read fails over.
	Epoch uint64
	// Dists holds the filter-phase SAP distances parallel to IDs, the
	// merge key when no refine runs (RefineNone only).
	Dists []float64
	// Recs holds copies of the DCE records [P1|P2|P3|P4] parallel to IDs
	// (RefineDCE only); CtDim is their component length. Populated by the
	// wire-safe SearchShard; the view-returning variants leave it nil and
	// set Store instead.
	Recs  [][]float64
	CtDim int
	// AME holds the AME ciphertexts parallel to IDs (RefineAME only).
	// AME material never travels over the wire, so this field only serves
	// in-process coordinators.
	AME []*ame.Ciphertext
	// Store, when non-nil, replaces Recs for in-process coordinators
	// (RefineDCE only): the snapshot's ciphertext store, addressed by the
	// local ids in IDs. The snapshot discipline makes this a zero-copy
	// borrow that stays valid indefinitely — published stores are never
	// mutated — at the cost of pinning the snapshot in memory while the
	// result is held.
	Store *dce.CiphertextStore
	// views marks a result whose merge material should borrow snapshot
	// views instead of copying records. Only core can set it (via the
	// View search variants); zero means wire-safe copies.
	views bool
}

// SearchShard answers a query like Search and additionally returns the
// merge material for the active refine mode, so a scatter-gather
// coordinator can order this server's results against other shards'. The
// DCE merge material is copied out of the snapshot, making the result safe
// to serialize over the wire; in-process coordinators should prefer
// SearchShardView.
func (s *Server) SearchShard(tok *QueryToken, k int, opt SearchOptions) (ShardResult, error) {
	return s.searchShard(tok, k, opt, false)
}

// SearchShardView is SearchShard without the copies: the DCE merge
// material is returned as the snapshot's ciphertext store plus local ids
// (ShardResult.Store). Immutable snapshots make the borrow safe for as
// long as the caller holds it; the in-process scatter-gather tier uses
// this to merge without staging a single record copy.
func (s *Server) SearchShardView(tok *QueryToken, k int, opt SearchOptions) (ShardResult, error) {
	return s.searchShard(tok, k, opt, true)
}

func (s *Server) searchShard(tok *QueryToken, k int, opt SearchOptions, views bool) (ShardResult, error) {
	res := ShardResult{views: views}
	dst := make([]int, 0, k) // exact-size result buffer: one allocation, no append growth
	ids, st, err := s.searchInto(dst, tok, k, opt, &res)
	if err != nil {
		return ShardResult{}, err
	}
	res.IDs = ids
	res.Epoch = st.Epoch
	return res, nil
}

// SearchInto is SearchWithStats appending the result ids into dst (whose
// capacity is reused; pass nil to allocate). All per-query working state —
// filter items, candidate list, refine heap, operand scratch — comes from
// an internal pool, so with a recycled dst a steady-state search performs
// zero allocations.
func (s *Server) SearchInto(dst []int, tok *QueryToken, k int, opt SearchOptions) ([]int, SearchStats, error) {
	return s.searchInto(dst, tok, k, opt, nil)
}

// searchInto is the shared search body. When mm is non-nil it captures,
// for every returned id, the cross-shard merge material of the active
// refine mode (SAP distance, DCE record copy or store view, or AME
// ciphertext).
//
// The whole body runs lock-free against one immutable snapshot: it loads
// the snapshot pointer once and never observes a concurrent mutation —
// writers publish whole new snapshots instead of touching this one.
func (s *Server) searchInto(dst []int, tok *QueryToken, k int, opt SearchOptions, mm *ShardResult) ([]int, SearchStats, error) {
	var st SearchStats
	if tok == nil || tok.SAP == nil {
		return dst[:0], st, fmt.Errorf("core: query token missing SAP ciphertext")
	}
	if k <= 0 {
		return dst[:0], st, fmt.Errorf("core: non-positive k %d", k)
	}
	sp := s.snap.Load()
	sp.readers.Add(1)
	defer sp.readers.Add(-1)
	edb := sp.edb
	st.Epoch = sp.epoch
	// Dimension checks up front: the index and comparison backends panic
	// on mismatched vectors, which must not be reachable from the wire.
	if len(tok.SAP) != edb.Dim {
		return dst[:0], st, fmt.Errorf("core: query token has dim %d, want %d", len(tok.SAP), edb.Dim)
	}

	kPrime := opt.kPrime(k)
	if kPrime < k {
		kPrime = k
	}

	sc := getScratch()
	defer putScratch(sc)

	// Filter phase (Algorithm 2 line 1): k′-ANNS over SAP ciphertexts.
	// Backends return external ids directly.
	start := time.Now()
	sc.items = edb.Index.SearchInto(sc.items[:0], tok.SAP, kPrime, opt.ef(kPrime))
	st.FilterTime = time.Since(start)
	st.Candidates = len(sc.items)
	if len(sc.items) == 0 {
		return dst[:0], st, nil
	}

	sc.cands = sc.cands[:0]
	for _, it := range sc.items {
		sc.cands = append(sc.cands, it.ID)
	}
	cands := sc.cands

	// Refine phase (Algorithm 2 lines 2–9).
	start = time.Now()
	switch opt.Refine {
	case RefineNone:
		if len(cands) > k {
			cands = cands[:k]
		}
		dst = append(dst[:0], cands...)
		if mm != nil {
			// cands is a prefix of the filter items, so the merge keys
			// are their (comparable across shards) SAP distances.
			mm.Dists = make([]float64, len(dst))
			for i := range dst {
				mm.Dists[i] = sc.items[i].Dist
			}
		}
	case RefineDCE:
		if tok.Trapdoor == nil {
			return dst[:0], st, fmt.Errorf("core: token lacks DCE trapdoor for refine")
		}
		ctDim := edb.DCE.CtDim()
		// PrepareQuery validates the trapdoor dimension once; every heap
		// comparison then runs against the prepared binding with no
		// per-call setup.
		if err := edb.DCE.PrepareQuery(&sc.pq, tok.Trapdoor.Q); err != nil {
			return dst[:0], st, fmt.Errorf("core: %w", err)
		}
		// A filter backend out of step with the ciphertext store must
		// surface as a wire-safe error, never as an out-of-range panic in
		// the serving process.
		for _, id := range cands {
			if !edb.DCE.Has(id) {
				return dst[:0], st, fmt.Errorf("core: filter index returned id %d with no DCE ciphertext", id)
			}
		}
		cmp := &sc.dce
		*cmp = dceComparator{pq: &sc.pq, cands: cands}
		if opt.PrecomputeRefine {
			sc.ops = edb.DCE.ScaleOperands(sc.ops, cands, tok.Trapdoor.Q)
			cmp.ops, cmp.ctDim = sc.ops, ctDim
		}
		dst, st.Comparisons = refineScratch(sc, cands, k, cmp, dst)
		if mm != nil {
			mm.CtDim = ctDim
			if mm.views {
				// Zero-copy: the snapshot's store is immutable once
				// published, so a borrowed view stays valid for as long
				// as the caller holds the result.
				mm.Store = edb.DCE
			} else {
				// Record copies, not arena views: wire-safe against any
				// later snapshot appends sharing the arena.
				mm.Recs = make([][]float64, len(dst))
				for i, id := range dst {
					mm.Recs[i] = append([]float64(nil), edb.DCE.Record(id)...)
				}
			}
		}
	case RefineAME:
		if edb.AME == nil {
			return dst[:0], st, fmt.Errorf("core: database was built without AME ciphertexts")
		}
		if tok.AME == nil {
			return dst[:0], st, fmt.Errorf("core: token lacks AME trapdoor for refine")
		}
		for _, id := range cands {
			if id < 0 || id >= len(edb.AME) || edb.AME[id] == nil {
				return dst[:0], st, fmt.Errorf("core: filter index returned id %d with no AME ciphertext", id)
			}
		}
		cmp := &sc.ame
		*cmp = ameComparator{cts: edb.AME, cands: cands, tq: tok.AME}
		dst, st.Comparisons = refineScratch(sc, cands, k, cmp, dst)
		if mm != nil {
			mm.AME = make([]*ame.Ciphertext, len(dst))
			for i, id := range dst {
				mm.AME[i] = edb.AME[id]
			}
		}
	default:
		return dst[:0], st, fmt.Errorf("core: unknown refine mode %d", opt.Refine)
	}
	st.RefineTime = time.Since(start)
	return dst, st, nil
}

// Insert adds one encrypted vector (Section V-D) and returns its external
// id. Deletion tombstones are not reused; ids grow monotonically. The
// backend must support dynamic inserts (see Caps).
//
// Insert is copy-on-write: it clones the current snapshot's filter index,
// inserts into the clone, appends the ciphertexts to a snapshot of the
// arena store, and publishes the assembled state atomically. Concurrent
// searches keep running on the previous snapshot throughout and never see
// a partially applied insert; a failed insert (validation, an unsupported
// backend, or a backend violating the sequential-id contract) discards the
// private clone and leaves the published snapshot byte-identical.
func (s *Server) Insert(p *InsertPayload) (int, error) {
	if p == nil || p.SAP == nil || p.DCE == nil {
		return 0, fmt.Errorf("core: incomplete insert payload")
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	cur := s.snap.Load()
	edb := cur.edb
	if len(p.SAP) != edb.Dim {
		return 0, fmt.Errorf("core: insert payload has dim %d, want %d", len(p.SAP), edb.Dim)
	}
	if ctDim := edb.DCE.CtDim(); len(p.DCE.P1) != ctDim || len(p.DCE.P2) != ctDim ||
		len(p.DCE.P3) != ctDim || len(p.DCE.P4) != ctDim {
		return 0, fmt.Errorf("core: insert DCE ciphertext components do not match stored dimension %d", ctDim)
	}
	if edb.AME != nil && p.AME == nil {
		return 0, fmt.Errorf("core: database carries AME ciphertexts; payload lacks one")
	}
	if !edb.Index.Caps().DynamicInsert {
		return 0, fmt.Errorf("core: %s backend does not support inserts (%w)", edb.Backend, index.ErrNotSupported)
	}
	idx := edb.Index.Clone()
	pos, err := idx.Add(p.SAP)
	if err != nil {
		return 0, fmt.Errorf("core: index insert: %w", err)
	}
	// Ids are assigned sequentially by every backend, so the new id must
	// land exactly at the end of the ciphertext store. A backend violating
	// that contract costs nothing to undo here: the violation happened on
	// a private clone that is simply never published.
	if pos != edb.DCE.Len() {
		return 0, fmt.Errorf("core: index id %d out of step with database size %d", pos, edb.DCE.Len())
	}
	store := edb.DCE.Snapshot()
	store.Append(p.DCE)
	var ameCts []*ame.Ciphertext
	if edb.AME != nil {
		ameCts = make([]*ame.Ciphertext, len(edb.AME)+1)
		copy(ameCts, edb.AME)
		ameCts[len(edb.AME)] = p.AME
	}
	s.snap.Store(&snapshot{
		edb: &EncryptedDatabase{
			Dim:     edb.Dim,
			Backend: edb.Backend,
			Index:   idx,
			DCE:     store,
			AME:     ameCts,
		},
		epoch: cur.epoch + 1,
	})
	return pos, nil
}

// Delete removes the vector with the given external id (Section V-D): the
// index tombstones it (graphs additionally repair in-neighbors) and the
// ciphertext record is dropped from the live set. Server-only — no
// data-owner participation, as the paper notes. The backend must support
// dynamic deletes (see Caps).
//
// Like Insert, Delete is copy-on-write: the tombstone lands in a private
// clone and is published atomically, so concurrent searches either see the
// id fully live or fully gone, never a half-deleted state.
func (s *Server) Delete(pos int) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	cur := s.snap.Load()
	edb := cur.edb
	if pos < 0 || pos >= edb.DCE.Len() {
		return fmt.Errorf("core: delete of unknown id %d", pos)
	}
	if !edb.DCE.Has(pos) {
		return fmt.Errorf("core: id %d already deleted", pos)
	}
	if !edb.Index.Caps().DynamicDelete {
		return fmt.Errorf("core: %s backend does not support deletes (%w)", edb.Backend, index.ErrNotSupported)
	}
	idx := edb.Index.Clone()
	if err := idx.Delete(pos); err != nil {
		return fmt.Errorf("core: index delete: %w", err)
	}
	store := edb.DCE.Snapshot()
	store.Tombstone(pos)
	ameCts := edb.AME
	if ameCts != nil {
		ameCts = append([]*ame.Ciphertext(nil), edb.AME...)
		ameCts[pos] = nil
	}
	s.snap.Store(&snapshot{
		edb: &EncryptedDatabase{
			Dim:     edb.Dim,
			Backend: edb.Backend,
			Index:   idx,
			DCE:     store,
			AME:     ameCts,
		},
		epoch: cur.epoch + 1,
	})
	return nil
}

// Deleted reports whether an external id is tombstoned.
func (s *Server) Deleted(pos int) bool { return !s.Database().DCE.Has(pos) }
