package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppanns/internal/index"
	"ppanns/internal/rng"
)

// exhaustiveOpt returns search options that make the filter phase return
// every live candidate: k′ and the beam budget both exceed the database
// size, so the candidate set is the whole live id space on every backend
// (HNSW/NSG reach all connected nodes, IVF probes every list, LSH falls
// back to the flat scan). With the full candidate set, the exact DCE refine
// makes the result independent of which filter index produced it — the
// lever the conformance tests below pull.
func exhaustiveOpt(n int) SearchOptions {
	return SearchOptions{KPrime: 2 * n, EfSearch: 16 * n}
}

// searchAll runs queries at exhaustive k′ and returns the result lists.
func searchAll(t *testing.T, srv *Server, toks []*QueryToken, k, n int) [][]int {
	t.Helper()
	out := make([][]int, len(toks))
	for i, tok := range toks {
		ids, err := srv.Search(tok, k, exhaustiveOpt(n))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = ids
	}
	return out
}

func sameResults(t *testing.T, label string, want, got [][]int) {
	t.Helper()
	for qi := range want {
		if len(want[qi]) != len(got[qi]) {
			t.Fatalf("%s: query %d returned %d ids, want %d", label, qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if want[qi][i] != got[qi][i] {
				t.Fatalf("%s: query %d rank %d: id %d, want %d (%v vs %v)",
					label, qi, i, got[qi][i], want[qi][i], got[qi], want[qi])
			}
		}
	}
}

// TestDeltaAccountingAcrossCompaction is the regression test for the
// cross-tier Deleted/Live bookkeeping: a delta-resident id that is deleted
// before its tier is ever compacted must stay dead — in Deleted, in Live,
// and in search results — after the compaction folds it, and ids must keep
// growing monotonically across the fold.
func TestDeltaAccountingAcrossCompaction(t *testing.T) {
	const n, dim = 200, 8
	data := clustered(101, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 101, CompactAt: -1}, data)

	// Main-tier delete: pending tombstone.
	if err := w.server.Delete(5); err != nil {
		t.Fatal(err)
	}
	// Two delta inserts, then delete the first while it is still
	// delta-resident.
	r := rng.NewSeeded(102)
	v1, v2 := rng.GaussianVec(r, dim, 25), rng.GaussianVec(r, dim, 25)
	for i, v := range [][]float64{v1, v2} {
		payload, err := w.owner.EncryptVector(v)
		if err != nil {
			t.Fatal(err)
		}
		id, err := w.server.Insert(payload)
		if err != nil {
			t.Fatal(err)
		}
		if id != n+i {
			t.Fatalf("insert id = %d, want %d", id, n+i)
		}
	}
	if err := w.server.Delete(n); err != nil {
		t.Fatal(err)
	}
	if !w.server.Deleted(5) || !w.server.Deleted(n) || w.server.Deleted(n+1) {
		t.Fatalf("pre-compaction Deleted() = %v/%v/%v for 5/%d/%d, want true/true/false",
			w.server.Deleted(5), w.server.Deleted(n), w.server.Deleted(n+1), n, n+1)
	}
	if got, want := w.server.Live(), n; got != want {
		t.Fatalf("pre-compaction Live = %d, want %d", got, want)
	}
	cs := w.server.CompactionStats()
	if cs.Delta != 2 || cs.Tombstones != 2 || cs.Frozen != n {
		t.Fatalf("pre-compaction stats = %+v, want delta 2, tombstones 2, frozen %d", cs, n)
	}

	if err := w.server.Compact(); err != nil {
		t.Fatal(err)
	}
	cs = w.server.CompactionStats()
	if cs.Generation != 1 || cs.Delta != 0 || cs.Tombstones != 0 || cs.Frozen != n+2 {
		t.Fatalf("post-compaction stats = %+v, want generation 1, clean, frozen %d", cs, n+2)
	}
	// The fold must not resurrect either tombstone — the delta-then-deleted
	// id in particular now only exists as a dead store slot.
	if !w.server.Deleted(5) || !w.server.Deleted(n) || w.server.Deleted(n+1) {
		t.Fatalf("post-compaction Deleted() = %v/%v/%v for 5/%d/%d, want true/true/false",
			w.server.Deleted(5), w.server.Deleted(n), w.server.Deleted(n+1), n, n+1)
	}
	if got, want := w.server.Live(), n; got != want {
		t.Fatalf("post-compaction Live = %d, want %d", got, want)
	}
	if got, want := w.server.Len(), n+2; got != want {
		t.Fatalf("post-compaction Len = %d, want %d", got, want)
	}
	for _, ids := range searchAll(t, w.server, []*QueryToken{mustToken(t, w, v1), mustToken(t, w, data[5])}, 10, n+2) {
		for _, id := range ids {
			if id == 5 || id == n {
				t.Fatalf("compaction resurrected deleted id %d: %v", id, ids)
			}
		}
	}
	// The surviving delta insert is still the best answer for its vector,
	// and the id space keeps growing past the fold.
	top, err := w.server.Search(mustToken(t, w, v2), 1, SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0] != n+1 {
		t.Fatalf("surviving delta insert not found after compaction: got %v, want [%d]", top, n+1)
	}
	payload, err := w.owner.EncryptVector(v1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := w.server.Insert(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != n+2 {
		t.Fatalf("insert after compaction: id = %d, want %d (ids must never be reused)", id, n+2)
	}
}

// TestChurnCompactionConformance is the write-path conformance suite, run
// under the race detector in CI: on every backend, a sustained
// insert/delete stream churns the server while concurrent searchers hammer
// it and the background compactor fires mid-workload (CompactAt is tiny).
// Afterwards the tiered state must be indistinguishable from a clean one —
// at exhaustive k′, the dirty two-tier snapshot, the flushed snapshot, and
// a freshly rebuilt single-shard reference (Split(1)) must return
// bit-identical ids in identical order.
func TestChurnCompactionConformance(t *testing.T) {
	const (
		n, dim    = 300, 8
		k         = 10
		searchers = 2
		mutations = 120
	)
	base := clustered(111, n, dim, 5)
	fresh := clustered(112, mutations, dim, 5)

	for _, name := range index.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 111, Index: name, CompactAt: 32}, base)

			toks := make([]*QueryToken, 6)
			for i := range toks {
				toks[i] = mustToken(t, w, base[i*11])
			}

			var done atomic.Bool
			errCh := make(chan error, searchers)
			var wg sync.WaitGroup
			for s := 0; s < searchers; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					var dst []int
					for rep := 0; !done.Load(); rep++ {
						var err error
						dst, _, err = w.server.SearchInto(dst[:0], toks[(s+rep)%len(toks)], k, SearchOptions{RatioK: 8})
						if err != nil {
							errCh <- fmt.Errorf("searcher %d: %v", s, err)
							return
						}
						if len(dst) == 0 {
							errCh <- fmt.Errorf("searcher %d: empty result mid-churn", s)
							return
						}
					}
				}(s)
			}

			// Scripted churn: ~2/3 inserts, ~1/3 deletes of known-live ids,
			// with the background compactor folding every 32 pending entries.
			r := rng.NewSeeded(113)
			liveIDs := make([]int, n)
			for i := range liveIDs {
				liveIDs[i] = i
			}
			inserts := 0
			for m := 0; m < mutations; m++ {
				if m%3 != 2 {
					payload, err := w.owner.EncryptVector(fresh[inserts])
					if err != nil {
						t.Fatal(err)
					}
					id, err := w.server.Insert(payload)
					if err != nil {
						t.Fatalf("mutation %d (insert): %v", m, err)
					}
					liveIDs = append(liveIDs, id)
					inserts++
				} else {
					pick := r.IntN(len(liveIDs))
					id := liveIDs[pick]
					if err := w.server.Delete(id); err != nil {
						t.Fatalf("mutation %d (delete %d): %v", m, id, err)
					}
					liveIDs[pick] = liveIDs[len(liveIDs)-1]
					liveIDs = liveIDs[:len(liveIDs)-1]
				}
			}
			done.Store(true)
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			// The background compactor must have fired mid-workload (80
			// inserts against a 32-entry trigger); give the async fold a
			// moment to be recorded.
			deadline := time.Now().Add(10 * time.Second)
			for w.server.CompactionStats().Generation == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("background compaction never fired: %+v", w.server.CompactionStats())
				}
				time.Sleep(time.Millisecond)
			}

			// Re-dirty the snapshot below the trigger so the conformance
			// check genuinely exercises the two-tier read path.
			for i := 0; i < 4; i++ {
				payload, err := w.owner.EncryptVector(fresh[i])
				if err != nil {
					t.Fatal(err)
				}
				id, err := w.server.Insert(payload)
				if err != nil {
					t.Fatal(err)
				}
				liveIDs = append(liveIDs, id)
			}
			if err := w.server.Delete(liveIDs[0]); err != nil {
				t.Fatal(err)
			}
			liveIDs = liveIDs[1:]

			cs := w.server.CompactionStats()
			if cs.Delta == 0 || cs.Tombstones == 0 {
				t.Fatalf("snapshot unexpectedly clean before conformance check: %+v", cs)
			}
			total := w.server.Len()
			tiered := searchAll(t, w.server, toks, k, total)

			// Flush: same results from the compacted single-tier state.
			if _, err := w.server.Flush(); err != nil {
				t.Fatal(err)
			}
			if cs := w.server.CompactionStats(); cs.Delta != 0 || cs.Tombstones != 0 {
				t.Fatalf("Flush left a dirty snapshot: %+v", cs)
			}
			if got, want := w.server.Live(), len(liveIDs); got != want {
				t.Fatalf("post-flush Live = %d, want %d", got, want)
			}
			sameResults(t, "flushed vs tiered", tiered, searchAll(t, w.server, toks, k, total))

			// Independently rebuilt reference: Split(1) re-encodes the
			// flushed database through a from-scratch index build with its
			// own options, preserving ids. Skipped for LSH: its candidate
			// set is determined by the hash functions themselves, so an
			// independently drawn hash family legitimately differs — only a
			// same-family rebuild (the Flush leg above, which runs the
			// batch Rebuild) can be bit-identical.
			if name != "lsh" {
				parts, err := w.server.Database().Split(1, index.Options{Seed: 111})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := NewServer(parts[0])
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, "rebuilt vs tiered", tiered, searchAll(t, ref, toks, k, total))
			}
		})
	}
}

// TestSaveFlushesDelta pins the serialization contract of the two-tier
// write path: Database() — what Save callers go through — flushes the delta
// tier, so a churned server round-trips through PPANNSD4 with nothing
// pending and answers queries identically after the reload.
func TestSaveFlushesDelta(t *testing.T) {
	const n, dim, k = 250, 8, 8
	data := clustered(121, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 121, CompactAt: -1}, data)

	for i := 0; i < 7; i++ {
		payload, err := w.owner.EncryptVector(data[i*3])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.server.Insert(payload); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{2, 9, n + 1} {
		if err := w.server.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	toks := []*QueryToken{mustToken(t, w, data[0]), mustToken(t, w, data[40])}
	want := searchAll(t, w.server, toks, k, n+7)

	var buf bytes.Buffer
	if err := w.server.Database().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEncryptedDatabase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != n+7 || loaded.Live() != n+4 {
		t.Fatalf("loaded counts = %d/%d, want %d/%d", loaded.Len(), loaded.Live(), n+7, n+4)
	}
	srv, err := NewServer(loaded)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "reloaded vs flushed", want, searchAll(t, srv, toks, k, n+7))
}
