package core

import (
	"bytes"
	"testing"
)

// TestOfflineCompactedRenumbers exercises the dbtool-compact primitive:
// tombstoned records are dropped entirely, survivors are renumbered densely
// with relative order preserved, the receiver stays untouched, and the
// compacted database answers queries with the renumbered ids.
func TestOfflineCompactedRenumbers(t *testing.T) {
	const n, dim, k = 150, 8, 5
	data := clustered(131, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 131}, data)
	dead := map[int]bool{3: true, 77: true, 149: true}
	for id := range dead {
		if err := w.server.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	edb := w.server.Database()

	compacted, err := edb.Compacted()
	if err != nil {
		t.Fatal(err)
	}
	if edb.Len() != n || edb.Live() != n-len(dead) {
		t.Fatalf("Compacted mutated its receiver: %d/%d", edb.Len(), edb.Live())
	}
	if compacted.Len() != n-len(dead) || compacted.Live() != n-len(dead) {
		t.Fatalf("compacted counts = %d/%d, want %d with zero tombstones", compacted.Len(), compacted.Live(), n-len(dead))
	}

	// newID maps old ids to their dense renumbering (old order preserved).
	newID := make(map[int]int, n)
	next := 0
	for old := 0; old < n; old++ {
		if dead[old] {
			continue
		}
		newID[old] = next
		next++
	}
	// Record-level identity: every surviving ciphertext moved intact.
	for old, nw := range newID {
		want, got := edb.DCE.Record(old), compacted.DCE.Record(nw)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("record of old id %d (new %d) differs at float %d", old, nw, j)
			}
		}
	}

	// Query-level identity at exhaustive k′: the compacted database must
	// return exactly the renumbered image of the original's results.
	srv, err := NewServer(compacted)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float64{data[0], data[80], data[149]} {
		tok := mustToken(t, w, q)
		want, err := w.server.Search(tok, k, exhaustiveOpt(n))
		if err != nil {
			t.Fatal(err)
		}
		got, err := srv.Search(tok, k, exhaustiveOpt(n))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("result sizes differ: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != newID[want[i]] {
				t.Fatalf("rank %d: compacted id %d, want renumbered %d (old %d)", i, got[i], newID[want[i]], want[i])
			}
		}
	}

	// The compacted file round-trips (dense ids satisfy the load-time
	// index/store cross-check) and is genuinely smaller on disk.
	var orig, comp bytes.Buffer
	if err := edb.Save(&orig); err != nil {
		t.Fatal(err)
	}
	if err := compacted.Save(&comp); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= orig.Len() {
		t.Fatalf("compacted file (%d bytes) not smaller than original (%d bytes)", comp.Len(), orig.Len())
	}
	if _, err := LoadEncryptedDatabase(bytes.NewReader(comp.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Error contract: a database with no live records cannot be compacted.
	all := w.server.Database()
	empty := &EncryptedDatabase{Dim: dim, Backend: all.Backend, Index: all.Index, DCE: all.DCE.Compacted(func(int) bool { return true })}
	if _, err := empty.Compacted(); err == nil {
		t.Fatal("expected error compacting a database with no live records")
	}
}
