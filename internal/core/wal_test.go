package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppanns/internal/index"
	"ppanns/internal/rng"
	"ppanns/internal/wal"
)

// newWALWorld mirrors newWorld but attaches a write-ahead log to the
// server. AME is never enabled (the WAL rejects it — see attachWAL).
func newWALWorld(t *testing.T, params Params, data [][]float64, opts ServerOptions) *testWorld {
	t.Helper()
	owner, err := NewDataOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(data)
	if err != nil {
		t.Fatal(err)
	}
	user, err := NewUser(owner.UserKey())
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServerWith(edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{data: data, owner: owner, user: user, server: server}
}

// churnWAL applies a deterministic insert/delete script and returns the
// surviving live ids.
func churnWAL(t *testing.T, w *testWorld, dim, mutations int, seed uint64) []int {
	t.Helper()
	r := rng.NewSeeded(seed)
	liveIDs := make([]int, w.server.Len())
	for i := range liveIDs {
		liveIDs[i] = i
	}
	for m := 0; m < mutations; m++ {
		if m%3 != 2 {
			payload, err := w.owner.EncryptVector(rng.GaussianVec(r, dim, 8))
			if err != nil {
				t.Fatal(err)
			}
			id, err := w.server.Insert(payload)
			if err != nil {
				t.Fatalf("mutation %d (insert): %v", m, err)
			}
			liveIDs = append(liveIDs, id)
		} else {
			pick := r.IntN(len(liveIDs))
			if err := w.server.Delete(liveIDs[pick]); err != nil {
				t.Fatalf("mutation %d (delete %d): %v", m, liveIDs[pick], err)
			}
			liveIDs[pick] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
	}
	return liveIDs
}

// sameStores asserts two servers hold bit-identical ciphertext content and
// PQ code rows for every live id, tolerating different physical layouts:
// one side may have compacted a tombstone away while the other still
// carries it as a pending tombstone over a live store slot, so liveness is
// compared through Deleted() (both tiers), not the store flags.
func sameStores(t *testing.T, label string, a, b *Server) {
	t.Helper()
	sa, sb := a.snap.Load().edb, b.snap.Load().edb
	if sa.DCE.Len() != sb.DCE.Len() {
		t.Fatalf("%s: store lengths differ: %d vs %d", label, sa.DCE.Len(), sb.DCE.Len())
	}
	for id := 0; id < sa.DCE.Len(); id++ {
		if a.Deleted(id) != b.Deleted(id) {
			t.Fatalf("%s: id %d deleted=%v vs deleted=%v", label, id, a.Deleted(id), b.Deleted(id))
		}
		if a.Deleted(id) {
			continue
		}
		ra, rb := sa.DCE.Record(id), sb.DCE.Record(id)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("%s: id %d ciphertext float %d differs", label, id, j)
			}
		}
		if (sa.PQ != nil) != (sb.PQ != nil) {
			t.Fatalf("%s: PQ tier presence differs", label)
		}
		if sa.PQ != nil {
			ca, cb := sa.PQ.Codes.Row(id), sb.PQ.Codes.Row(id)
			if len(ca) != len(cb) {
				t.Fatalf("%s: id %d PQ code widths differ: %d vs %d", label, id, len(ca), len(cb))
			}
			for j := range ca {
				if ca[j] != cb[j] {
					t.Fatalf("%s: id %d PQ code byte %d differs: %#x vs %#x", label, id, j, ca[j], cb[j])
				}
			}
		}
	}
}

// TestWALRecoveryConformance is the tentpole conformance test: on every
// backend, a WAL-attached server is churned (with mid-churn background
// compactions writing checkpoints), closed, and recovered with OpenServer.
// The recovered server must be bit-identical to the never-crashed one —
// same epoch and generation floor, same ciphertext and PQ-code content,
// and identical search results at exhaustive k′ under both FilterExact
// and FilterPQ.
func TestWALRecoveryConformance(t *testing.T) {
	const (
		n, dim    = 200, 8
		k         = 10
		mutations = 90
	)
	base := clustered(211, n, dim, 5)
	for _, name := range index.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			params := Params{Dim: dim, Beta: 0.3, Seed: 211, Index: name, PQ: true, PQM: 4}
			opts := ServerOptions{
				WALDir:  dir,
				WALSync: wal.SyncPolicy{Every: 1},
				// Small trigger so background folds — and their
				// checkpoints — fire mid-churn.
				CompactAt: 32,
			}
			w := newWALWorld(t, params, base, opts)
			churnWAL(t, w, dim, mutations, 212)

			toks := make([]*QueryToken, 5)
			for i := range toks {
				toks[i] = mustToken(t, w, base[i*13])
			}
			total := w.server.Len()
			wantEpoch := w.server.Epoch()
			wantGen := w.server.CompactionStats().Generation
			want := searchAll(t, w.server, toks, k, total)
			pqOpt := exhaustiveOpt(total)
			pqOpt.FilterDist = FilterPQ
			wantPQ := make([][]int, len(toks))
			for i, tok := range toks {
				ids, err := w.server.Search(tok, k, pqOpt)
				if err != nil {
					t.Fatal(err)
				}
				wantPQ[i] = ids
			}
			if err := w.server.Close(); err != nil {
				t.Fatal(err)
			}

			rec, stats, err := OpenServer(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if stats.Truncated != "" {
				t.Fatalf("clean close reported a torn tail: %+v", stats)
			}
			if rec.Epoch() != wantEpoch {
				t.Fatalf("recovered epoch = %d, want %d (acked-write loss)", rec.Epoch(), wantEpoch)
			}
			if got := rec.CompactionStats().Generation; got < stats.CheckpointGen {
				t.Fatalf("recovered generation %d below checkpoint generation %d", got, stats.CheckpointGen)
			}
			if stats.CheckpointEpoch+uint64(stats.Replayed) != wantEpoch {
				t.Fatalf("checkpoint epoch %d + replayed %d != epoch %d", stats.CheckpointEpoch, stats.Replayed, wantEpoch)
			}
			if rec.Len() != total || rec.Live() != w.server.Live() {
				t.Fatalf("recovered Len/Live = %d/%d, want %d/%d", rec.Len(), rec.Live(), total, w.server.Live())
			}
			sameStores(t, "recovered vs original", w.server, rec)
			sameResults(t, "recovered vs original", want, searchAll(t, rec, toks, k, total))
			gotPQ := make([][]int, len(toks))
			for i, tok := range toks {
				ids, err := rec.Search(tok, k, pqOpt)
				if err != nil {
					t.Fatal(err)
				}
				gotPQ[i] = ids
			}
			sameResults(t, "recovered vs original (FilterPQ)", wantPQ, gotPQ)
			if wantGen > 0 && stats.CheckpointGen == 0 {
				t.Fatalf("background folds ran (gen %d) but recovery anchored on gen 0", wantGen)
			}

			// The recovered server keeps logging: a further mutation and a
			// second recovery must agree too.
			payload, err := w.owner.EncryptVector(base[0])
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rec.Insert(payload); err != nil {
				t.Fatal(err)
			}
			want2 := searchAll(t, rec, toks, k, total+1)
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			rec2, _, err := OpenServer(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer rec2.Close()
			if rec2.Epoch() != wantEpoch+1 {
				t.Fatalf("second recovery epoch = %d, want %d", rec2.Epoch(), wantEpoch+1)
			}
			sameResults(t, "second recovery", want2, searchAll(t, rec2, toks, k, total+1))
		})
	}
}

// TestWALStatsReporting pins the WALStats surface: nil without a WAL,
// populated with the policy and checkpoint identity with one.
func TestWALStatsReporting(t *testing.T) {
	data := clustered(221, 80, 6, 3)
	plain := newWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 221}, data)
	if plain.server.WALStats() != nil {
		t.Fatal("WALStats non-nil on a server without a WAL")
	}
	dir := t.TempDir()
	opts := ServerOptions{WALDir: dir, WALSync: wal.SyncPolicy{Every: 1}, CompactAt: -1}
	w := newWALWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 221}, data, opts)
	defer w.server.Close()
	churnWAL(t, w, 6, 9, 222)
	st := w.server.WALStats()
	if st == nil {
		t.Fatal("WALStats nil on a WAL-attached server")
	}
	if st.Dir != dir || st.Policy != "every=1" {
		t.Fatalf("stats dir/policy = %q/%q, want %q/every=1", st.Dir, st.Policy, dir)
	}
	// 9 mutations plus the initial checkpoint's barrier record.
	if st.Appended != 10 || st.Synced != 10 {
		t.Fatalf("stats appended/synced = %d/%d, want 10/10", st.Appended, st.Synced)
	}
	if st.Checkpoint == "" || st.CheckpointEpoch != 0 || st.Segments == 0 || st.Bytes == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestOpenServerEmptyDir: recovery from a directory that never held a
// server is a distinct, actionable error.
func TestOpenServerEmptyDir(t *testing.T) {
	_, _, err := OpenServer(t.TempDir(), ServerOptions{})
	if err == nil {
		t.Fatal("expected error for empty WAL dir")
	}
	if !strings.Contains(err.Error(), "NewServerWith") {
		t.Fatalf("error does not point at NewServerWith: %v", err)
	}
}

// TestOpenServerCheckpointNoTail: a checkpoint with no mutation records
// after it recovers with zero replay.
func TestOpenServerCheckpointNoTail(t *testing.T) {
	const n, dim, k = 120, 6, 8
	data := clustered(231, n, dim, 3)
	dir := t.TempDir()
	opts := ServerOptions{WALDir: dir, WALSync: wal.SyncPolicy{Every: 1}, CompactAt: -1}
	w := newWALWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 231}, data, opts)
	churnWAL(t, w, dim, 6, 232)
	// Flush folds the delta and writes a checkpoint; nothing follows it.
	if _, err := w.server.Flush(); err != nil {
		t.Fatal(err)
	}
	toks := []*QueryToken{mustToken(t, w, data[0]), mustToken(t, w, data[50])}
	want := searchAll(t, w.server, toks, k, w.server.Len())
	wantEpoch := w.server.Epoch()
	if err := w.server.Close(); err != nil {
		t.Fatal(err)
	}

	rec, stats, err := OpenServer(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if stats.Replayed != 0 {
		t.Fatalf("replayed %d records over a post-flush checkpoint, want 0", stats.Replayed)
	}
	if stats.CheckpointEpoch != wantEpoch || rec.Epoch() != wantEpoch {
		t.Fatalf("epochs: checkpoint %d, recovered %d, want %d", stats.CheckpointEpoch, rec.Epoch(), wantEpoch)
	}
	sameResults(t, "checkpoint-only recovery", want, searchAll(t, rec, toks, k, rec.Len()))
}

// TestOpenServerTailWithoutCheckpoint: log records with no checkpoint to
// anchor them must refuse recovery loudly — serving a partial state would
// silently drop acknowledged writes.
func TestOpenServerTailWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	lg, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := lg.Append(wal.KindDelete, 1, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenServer(dir, ServerOptions{})
	if err == nil {
		t.Fatal("expected error for log tail without checkpoint")
	}
	if !strings.Contains(err.Error(), "no usable checkpoint") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Same refusal when the checkpoint files have been lost from an
	// otherwise healthy directory.
	dir2 := t.TempDir()
	data := clustered(241, 60, 6, 3)
	opts := ServerOptions{WALDir: dir2, WALSync: wal.SyncPolicy{Every: 1}, CompactAt: -1}
	w := newWALWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 241}, data, opts)
	churnWAL(t, w, 6, 6, 242)
	if err := w.server.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir2, "checkpoint-*"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint files found: %v %v", ckpts, err)
	}
	for _, c := range ckpts {
		if err := os.Remove(c); err != nil {
			t.Fatal(err)
		}
	}
	_, stats, err := OpenServer(dir2, opts)
	if err == nil {
		t.Fatal("expected error after deleting checkpoint files")
	}
	if stats.SkippedCheckpoints == 0 {
		t.Fatalf("missing checkpoints not counted: %+v", stats)
	}
}

// TestOpenServerDoubleReplayIdempotence: recovering twice in a row — with
// no writes in between — must land on the same epoch and results, proving
// replay applies each record exactly once per recovery.
func TestOpenServerDoubleReplayIdempotence(t *testing.T) {
	const n, dim, k = 150, 8, 8
	data := clustered(251, n, dim, 4)
	dir := t.TempDir()
	opts := ServerOptions{WALDir: dir, WALSync: wal.SyncPolicy{Every: 1}, CompactAt: -1}
	w := newWALWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 251}, data, opts)
	churnWAL(t, w, dim, 30, 252)
	toks := []*QueryToken{mustToken(t, w, data[3]), mustToken(t, w, data[77])}
	total := w.server.Len()
	want := searchAll(t, w.server, toks, k, total)
	if err := w.server.Close(); err != nil {
		t.Fatal(err)
	}

	rec1, stats1, err := OpenServer(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "first replay", want, searchAll(t, rec1, toks, k, total))
	if err := rec1.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, stats2, err := OpenServer(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if stats1.Replayed != 30 || stats2.Replayed != stats1.Replayed {
		t.Fatalf("replay counts = %d then %d, want 30 both times", stats1.Replayed, stats2.Replayed)
	}
	if rec2.Epoch() != rec1.Epoch() {
		t.Fatalf("epochs diverged across replays: %d vs %d", rec1.Epoch(), rec2.Epoch())
	}
	sameResults(t, "second replay", want, searchAll(t, rec2, toks, k, total))
}

// TestOpenServerCorruptTailRecord: a CRC-corrupt record is truncated, the
// repair is reported, and the server serves the surviving prefix. A
// subsequent recovery finds a clean log.
func TestOpenServerCorruptTailRecord(t *testing.T) {
	const n, dim, inserts = 120, 6, 8
	data := clustered(261, n, dim, 3)
	dir := t.TempDir()
	opts := ServerOptions{WALDir: dir, WALSync: wal.SyncPolicy{Every: 1}, CompactAt: -1}
	w := newWALWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 261}, data, opts)
	r := rng.NewSeeded(262)
	for i := 0; i < inserts; i++ {
		payload, err := w.owner.EncryptVector(rng.GaussianVec(r, dim, 8))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.server.Insert(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.server.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the last record's CRC trailer.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	seg := segs[len(segs)-1]
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, stats, err := OpenServer(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated == "" || stats.TruncatedBytes == 0 {
		t.Fatalf("corruption not reported: %+v", stats)
	}
	if got, want := rec.Epoch(), uint64(inserts-1); got != want {
		t.Fatalf("recovered epoch = %d, want %d (exactly the corrupt record dropped)", got, want)
	}
	if rec.Len() != n+inserts-1 {
		t.Fatalf("recovered Len = %d, want %d", rec.Len(), n+inserts-1)
	}
	// The survivor still serves.
	tok := mustToken(t, &testWorld{user: w.user}, data[0])
	if _, err := rec.Search(tok, 5, exhaustiveOpt(rec.Len())); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, stats2, err := OpenServer(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if stats2.Truncated != "" {
		t.Fatalf("repair did not stick: %+v", stats2)
	}
	if rec2.Epoch() != uint64(inserts-1) {
		t.Fatalf("second recovery epoch = %d, want %d", rec2.Epoch(), inserts-1)
	}
}

// TestFlushSurfacesCheckpointSyncError is the regression test for
// satellite 2: a checkpoint whose snapshot fsync fails must propagate the
// error out of Flush/Compact and into CompactionStats, and the poisoned
// log must fail subsequent writes fast rather than acknowledge them.
func TestFlushSurfacesCheckpointSyncError(t *testing.T) {
	const n, dim, inserts = 100, 6, 5
	data := clustered(271, n, dim, 3)
	scenario := func(t *testing.T, failSyncAt int) (*testWorld, *wal.Injector, error) {
		t.Helper()
		inj := &wal.Injector{KillAfterBytes: -1, FailSyncAt: failSyncAt}
		opts := ServerOptions{
			WALDir:    t.TempDir(),
			WALSync:   wal.SyncPolicy{Every: 1},
			CompactAt: -1,
			walFS:     wal.NewFaultyFS(inj),
		}
		w := newWALWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 271}, data, opts)
		r := rng.NewSeeded(272)
		for i := 0; i < inserts; i++ {
			payload, err := w.owner.EncryptVector(rng.GaussianVec(r, dim, 8))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.server.Insert(payload); err != nil {
				t.Fatal(err)
			}
		}
		_, err := w.server.Flush()
		return w, inj, err
	}

	// Fault-free run measures where Flush's checkpoint syncs land.
	clean, inj, err := scenario(t, 0)
	if err != nil {
		t.Fatal(err)
	}
	syncsThroughFlush := inj.Syncs()
	preFlushSyncs := 2 + inserts // initial checkpoint (snapshot + barrier) and one per insert
	if syncsThroughFlush <= preFlushSyncs {
		t.Fatalf("flush performed no syncs? %d total, %d before", syncsThroughFlush, preFlushSyncs)
	}
	clean.server.Close()

	// Same scenario with the first Flush-era sync failing.
	w, _, err := scenario(t, preFlushSyncs+1)
	if err == nil {
		t.Fatal("Flush swallowed the checkpoint sync error")
	}
	if !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("Flush error does not wrap the injected fault: %v", err)
	}
	if cs := w.server.CompactionStats(); cs.LastError == "" {
		t.Fatalf("checkpoint failure not recorded in CompactionStats: %+v", cs)
	}
	// The injector is dead: further writes must fail, not silently ack.
	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.server.Insert(payload); err == nil {
		t.Fatal("insert acknowledged on a failed log")
	}
}

// TestWALRejectsAMEAndExistingLog pins the two construction-time
// refusals: AME databases cannot be made durable (the tier is never
// persisted), and NewServerWith must not silently clobber a directory
// that already holds a recoverable log.
func TestWALRejectsAMEAndExistingLog(t *testing.T) {
	data := clustered(281, 60, 6, 3)
	owner, err := NewDataOwner(Params{Dim: 6, Beta: 0.3, Seed: 281, WithAME: true})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServerWith(edb, ServerOptions{WALDir: t.TempDir()}); err == nil {
		t.Fatal("expected error for WAL over an AME database")
	}

	dir := t.TempDir()
	opts := ServerOptions{WALDir: dir, WALSync: wal.SyncPolicy{Every: 1}, CompactAt: -1}
	w := newWALWorld(t, Params{Dim: 6, Beta: 0.3, Seed: 282}, data, opts)
	if err := w.server.Close(); err != nil {
		t.Fatal(err)
	}
	owner2, err := NewDataOwner(Params{Dim: 6, Beta: 0.3, Seed: 283})
	if err != nil {
		t.Fatal(err)
	}
	edb2, err := owner2.EncryptDatabase(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServerWith(edb2, opts); err == nil {
		t.Fatal("expected error for NewServerWith over an existing log")
	} else if !strings.Contains(err.Error(), "OpenServer") {
		t.Fatalf("error does not point at OpenServer: %v", err)
	}
}
