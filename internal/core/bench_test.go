package core

import (
	"runtime"
	"testing"

	"ppanns/internal/dce"
	"ppanns/internal/resultheap"
)

// benchWorld builds a deployment once per benchmark binary.
type benchWorld struct {
	data   [][]float64
	server *Server
	toks   []*QueryToken
}

var benchW *benchWorld

func getBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	if benchW != nil {
		return benchW
	}
	// Paper-scale dimensionality (SIFT-like): at d=128 a ciphertext record
	// is ~8.7 KB, so the candidate working set exceeds L2 and the memory
	// layout, not the ALU, dominates — the regime the arena targets.
	data := clustered(91, 3000, 128, 12)
	owner, err := NewDataOwner(Params{Dim: 128, Beta: 0.3, Seed: 91})
	if err != nil {
		b.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(data)
	if err != nil {
		b.Fatal(err)
	}
	server, err := NewServer(edb)
	if err != nil {
		b.Fatal(err)
	}
	user, err := NewUser(owner.UserKey())
	if err != nil {
		b.Fatal(err)
	}
	w := &benchWorld{data: data, server: server}
	for _, q := range makeQueries(92, data, 64, 0.3) {
		tok, err := user.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		w.toks = append(w.toks, tok)
	}
	benchW = w
	return w
}

// naiveDistanceComp replicates the seed's DistanceComp — the straight,
// un-unrolled loop — so the pointer-baseline below measures the actual
// pre-arena hot path, not today's kernel on yesterday's layout.
func naiveDistanceComp(co, cp *dce.Ciphertext, tq *dce.Trapdoor) float64 {
	q := tq.Q
	var z float64
	o1, o2 := co.P1, co.P2
	p3, p4 := cp.P3, cp.P4
	for i, qv := range q {
		z += (o1[i]*p3[i] - o2[i]*p4[i]) * qv
	}
	return z
}

// BenchmarkRefine isolates the refine phase over a fixed candidate set:
// the pre-arena baseline (naive kernel over pointer-per-ciphertext
// components, comparator closure, fresh heap per query) against the flat
// arena with its unrolled kernel and pooled heap, with and without
// trapdoor-scaled operand precomputation.
func BenchmarkRefine(b *testing.B) {
	const k, kPrime = 10, 160
	w := getBenchWorld(b)
	tok := w.toks[0]
	edb := w.server.Database()
	items := edb.Index.Search(tok.SAP, kPrime, kPrime)
	cands := make([]int, len(items))
	for i, it := range items {
		cands[i] = it.ID
	}

	// Pre-arena layout: one pointer ciphertext with four separately
	// allocated components per point, in a dense id-indexed slice exactly
	// like the old EncryptedDatabase.DCE field — materialized for the
	// whole database so its heap spread matches what encryption produced.
	scattered := make([]*dce.Ciphertext, edb.DCE.Len())
	for id := range scattered {
		view := edb.DCE.View(id)
		scattered[id] = &dce.Ciphertext{
			P1: append([]float64(nil), view.P1...),
			P2: append([]float64(nil), view.P2...),
			P3: append([]float64(nil), view.P3...),
			P4: append([]float64(nil), view.P4...),
		}
	}

	b.Run("pointer-baseline", func(b *testing.B) {
		b.ReportAllocs()
		farther := func(a, c int) bool {
			return naiveDistanceComp(scattered[a], scattered[c], tok.Trapdoor) > 0
		}
		for i := 0; i < b.N; i++ {
			h := resultheap.NewCompareHeap(k, farther)
			for _, id := range cands {
				h.Offer(id)
			}
			_ = h.SortedAscending()
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		sc := getScratch()
		defer putScratch(sc)
		if err := edb.DCE.PrepareQuery(&sc.pq, tok.Trapdoor.Q); err != nil {
			b.Fatal(err)
		}
		cmp := &sc.dce
		var dst []int
		for i := 0; i < b.N; i++ {
			*cmp = dceComparator{pq: &sc.pq, cands: cands}
			dst, _ = refineScratch(sc, cands, k, cmp, dst)
		}
	})
	b.Run("arena-precompute", func(b *testing.B) {
		b.ReportAllocs()
		sc := getScratch()
		defer putScratch(sc)
		if err := edb.DCE.PrepareQuery(&sc.pq, tok.Trapdoor.Q); err != nil {
			b.Fatal(err)
		}
		cmp := &sc.dce
		ctDim := edb.DCE.CtDim()
		var dst []int
		for i := 0; i < b.N; i++ {
			sc.ops = edb.DCE.ScaleOperands(sc.ops, cands, tok.Trapdoor.Q)
			*cmp = dceComparator{pq: &sc.pq, cands: cands, ops: sc.ops, ctDim: ctDim}
			dst, _ = refineScratch(sc, cands, k, cmp, dst)
		}
	})
}

// BenchmarkSearch measures the full filter-and-refine path. The "into"
// variants reuse the caller-side result buffer and must report 0 allocs/op
// at steady state — the zero-allocation guarantee of the flat-arena
// rework.
func BenchmarkSearch(b *testing.B) {
	w := getBenchWorld(b)
	opt := SearchOptions{RatioK: 16, EfSearch: 160}
	pre := opt
	pre.PrecomputeRefine = true

	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := w.server.Search(w.toks[i%len(w.toks)], 10, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for name, o := range map[string]SearchOptions{"into": opt, "into-precompute": pre} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var dst []int
			var err error
			// Warm the pools before the measured region.
			for _, tok := range w.toks {
				if dst, _, err = w.server.SearchInto(dst, tok, 10, o); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dst, _, err = w.server.SearchInto(dst, w.toks[i%len(w.toks)], 10, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchBatch measures the parallel query stream; each worker
// holds its own pooled scratch.
func BenchmarkSearchBatch(b *testing.B) {
	w := getBenchWorld(b)
	opt := SearchOptions{RatioK: 16, EfSearch: 160}
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.server.SearchBatch(w.toks, 10, opt, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(w.toks)), "queries/op")
}
