package core

import (
	"bytes"
	"strings"
	"testing"

	"ppanns/internal/index"
	"ppanns/internal/vec"
)

// TestPQFilterConformance checks the compressed tier's recall contract on
// every backend: at a calibrated over-fetch, PQ-filtered search must hold
// at least 95% of the recall the exact filter reaches with the same
// budget — the quantization loss the larger k′ is meant to absorb.
func TestPQFilterConformance(t *testing.T) {
	const n, dim, k = 1500, 12, 10
	data := clustered(71, n, dim, 10)
	queries := makeQueries(72, data, 25, 0.3)

	for _, name := range index.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, Params{Dim: dim, Beta: 0.5, Seed: 71, Index: name, PQ: true, PQM: 6}, data)
			opt := SearchOptions{RatioK: 16, EfSearch: 250}
			exact := w.measureRecall(t, queries, k, opt)
			opt.FilterDist = FilterPQ
			pqr := w.measureRecall(t, queries, k, opt)
			if pqr < 0.95*exact {
				t.Fatalf("PQ-filtered recall %.3f under 95%% of exact-filtered %.3f", pqr, exact)
			}
		})
	}
}

// TestPQRefineOrdering checks the exactness contract: whatever candidate
// set the approximate PQ filter hands over, the DCE refine must order the
// returned ids exactly by true distance.
func TestPQRefineOrdering(t *testing.T) {
	const n, dim, k = 900, 10, 10
	data := clustered(73, n, dim, 8)
	queries := makeQueries(74, data, 15, 0.3)

	for _, name := range index.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, Params{Dim: dim, Beta: 0.4, Seed: 73, Index: name, PQ: true, PQM: 5}, data)
			opt := SearchOptions{RatioK: 12, EfSearch: 200, FilterDist: FilterPQ}
			for qi, q := range queries {
				tok, err := w.user.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w.server.Search(tok, k, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) == 0 {
					t.Fatalf("query %d returned nothing", qi)
				}
				prev := -1.0
				for _, id := range got {
					d := vec.SqDist(data[id], q)
					if d < prev {
						t.Fatalf("query %d: results not ordered by true distance: %v", qi, got)
					}
					prev = d
				}
			}
		})
	}
}

// TestPQChurnConformance drives the compressed tier through the write
// path on every backend: delta inserts must PQ-encode as they land, a
// compaction below the retrain threshold must reuse the codebook, one
// past it must refit, and the code arena must track the ciphertext arena
// id-for-id throughout.
func TestPQChurnConformance(t *testing.T) {
	const n, dim, k = 300, 8, 5
	base := clustered(75, n, dim, 5)
	fresh := clustered(76, 2*n, dim, 5)

	for _, name := range index.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 75, Index: name, PQ: true, PQM: 4, CompactAt: -1}, base)
			sp := w.server.snap.Load()
			if sp.edb.PQ == nil || sp.edb.PQ.TrainedOn != n {
				t.Fatalf("initial PQ store missing or mis-provenanced: %+v", sp.edb.PQ)
			}
			bookBefore := sp.edb.PQ.Book

			// Delta inserts must extend the code arena in lockstep with the
			// ciphertext arena, each row encoded under the live codebook.
			for i := 0; i < 20; i++ {
				payload, err := w.owner.EncryptVector(fresh[i])
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.server.Insert(payload); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.server.Delete(3); err != nil {
				t.Fatal(err)
			}
			sp = w.server.snap.Load()
			if got, want := sp.edb.PQ.Codes.Len(), sp.edb.DCE.Len(); got != want {
				t.Fatalf("code arena has %d rows, ciphertext arena %d", got, want)
			}
			checkCodes(t, sp, n, n+20)

			// Below the retrain threshold the compactor must fold codes
			// under the original codebook.
			if err := w.server.Compact(); err != nil {
				t.Fatal(err)
			}
			sp = w.server.snap.Load()
			if sp.edb.PQ.Book != bookBefore {
				t.Fatal("compaction below the retrain threshold replaced the codebook")
			}
			if sp.edb.PQ.TrainedOn != n {
				t.Fatalf("TrainedOn drifted to %d without a retrain", sp.edb.PQ.TrainedOn)
			}
			if got, want := sp.edb.PQ.Codes.Len(), sp.edb.DCE.Len(); got != want {
				t.Fatalf("post-fold code arena has %d rows, ciphertext arena %d", got, want)
			}

			// Grow past 2× the training corpus; the next compaction must
			// refit and re-encode everything under the new codebook.
			for i := 20; i < len(fresh); i++ {
				payload, err := w.owner.EncryptVector(fresh[i])
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.server.Insert(payload); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.server.Compact(); err != nil {
				t.Fatal(err)
			}
			sp = w.server.snap.Load()
			total := n + len(fresh)
			if sp.edb.PQ.Book == bookBefore {
				t.Fatal("compaction past the retrain threshold kept the stale codebook")
			}
			if sp.edb.PQ.TrainedOn != total {
				t.Fatalf("retrained TrainedOn = %d, want %d", sp.edb.PQ.TrainedOn, total)
			}
			if got, want := sp.edb.PQ.Codes.Len(), sp.edb.DCE.Len(); got != want {
				t.Fatalf("retrained code arena has %d rows, ciphertext arena %d", got, want)
			}
			checkCodes(t, sp, 0, total)

			// And the compressed read path must still work over the result.
			queries := makeQueries(77, base, 10, 0.3)
			all := append(append([][]float64(nil), base...), fresh...)
			opt := SearchOptions{RatioK: 12, EfSearch: 200, FilterDist: FilterPQ}
			var recall float64
			for _, q := range queries {
				tok, err := w.user.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w.server.Search(tok, k, opt)
				if err != nil {
					t.Fatal(err)
				}
				recall += recallOf(got, bruteForce(all, q, k, w.server.Deleted))
			}
			if recall /= float64(len(queries)); recall < 0.5 {
				t.Fatalf("post-churn PQ recall %.3f implausibly low", recall)
			}
		})
	}
}

// checkCodes verifies that rows [lo, hi) of the snapshot's code arena are
// the codebook's encoding of the corresponding SAP vectors — frozen ids
// from the index, delta-tier ids from the snapshot's delta arena (skipping
// tombstoned ids, whose rows may be zeroed by a fold).
func checkCodes(t *testing.T, sp *snapshot, lo, hi int) {
	t.Helper()
	code := make([]byte, sp.edb.PQ.Book.M())
	for id := lo; id < hi; id++ {
		if sp.deadAt(id) {
			continue
		}
		var v []float64
		if id >= sp.frozen {
			v = sp.deltaSAP[id-sp.frozen]
		} else {
			var ok bool
			v, ok = sp.edb.Index.Vector(id)
			if !ok {
				t.Fatalf("index lost vector %d", id)
			}
		}
		sp.edb.PQ.Book.EncodeInto(code, v)
		if !bytes.Equal(code, sp.edb.PQ.Codes.Row(id)) {
			t.Fatalf("code row %d diverges from the codebook's encoding", id)
		}
	}
}

// TestFilterPQErrors pins the wire-safe failure modes of the mode switch,
// on both the single-query and the batch executor.
func TestFilterPQErrors(t *testing.T) {
	data := clustered(78, 400, 8, 4)
	w := newWorld(t, Params{Dim: 8, Beta: 0.5, Seed: 78}, data) // no PQ tier
	tok, err := w.user.Query(data[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.server.Search(tok, 5, SearchOptions{FilterDist: FilterPQ}); err == nil ||
		!strings.Contains(err.Error(), "no PQ store") {
		t.Fatalf("FilterPQ without a store: %v", err)
	}
	if _, err := w.server.Search(tok, 5, SearchOptions{FilterDist: FilterDistMode(9)}); err == nil ||
		!strings.Contains(err.Error(), "unknown filter distance mode") {
		t.Fatalf("unknown mode: %v", err)
	}
	_, errs := w.server.SearchBatchErrs([]*QueryToken{tok, tok}, 5, SearchOptions{FilterDist: FilterPQ}, 2)
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "no PQ store") {
			t.Fatalf("batch query %d FilterPQ without a store: %v", i, err)
		}
	}
}

// TestPQBatchBlockedMatchesSequential: the blocked batch executor carries
// its own pooled PQ scanner per query lane; under FilterPQ it must return
// exactly what the sequential path returns.
func TestPQBatchBlockedMatchesSequential(t *testing.T) {
	const n, dim, k = 800, 10, 5
	data := clustered(84, n, dim, 6)
	w := newWorld(t, Params{Dim: dim, Beta: 0.4, Seed: 84, PQ: true, PQM: 5}, data)
	queries := makeQueries(85, data, 16, 0.3)
	toks := make([]*QueryToken, len(queries))
	for i, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		toks[i] = tok
	}
	opt := SearchOptions{RatioK: 12, EfSearch: 150, FilterDist: FilterPQ}
	want := make([][]int, len(toks))
	for i, tok := range toks {
		got, err := w.server.Search(tok, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = got
	}
	got, err := w.server.SearchBatchBlocked(toks, k, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d: blocked FilterPQ diverges: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

// TestPQSearchMatchesExactAtFullOverfetch: when k′ covers the whole
// database the candidate set is everything either way, so FilterPQ and
// FilterExact must return identical ids in identical order — the
// filter only steers, the refine decides.
func TestPQSearchMatchesExactAtFullOverfetch(t *testing.T) {
	const n, dim, k = 500, 8, 10
	data := clustered(79, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.4, Seed: 79, Index: "ivf", PQ: true, PQM: 4}, data)
	queries := makeQueries(80, data, 10, 0.3)
	for qi, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.server.Search(tok, k, SearchOptions{KPrime: n, EfSearch: n})
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.server.Search(tok, k, SearchOptions{KPrime: n, EfSearch: n, FilterDist: FilterPQ})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: full-overfetch results diverge at %d: %v vs %v", qi, i, a, b)
			}
		}
	}
}

// TestSplitCarriesPQ: sharding a PQ-tiered database must hand every shard
// its stripe of the code arena under the shared (full-corpus) codebook,
// with tombstoned rows zeroed, and FilterPQ must work on each shard.
func TestSplitCarriesPQ(t *testing.T) {
	const n, dim, shards = 400, 8, 3
	data := clustered(86, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.5, Seed: 86, PQ: true, PQM: 4}, data)
	if err := w.server.Delete(5); err != nil {
		t.Fatal(err)
	}
	edb := w.server.Database()
	parts, err := edb.Split(shards, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := edb.PQ.Book.M()
	zero := make([]byte, m)
	for s, part := range parts {
		if part.PQ == nil {
			t.Fatalf("shard %d lost the PQ tier", s)
		}
		if part.PQ.Book != edb.PQ.Book {
			t.Fatalf("shard %d retrained the codebook instead of sharing it", s)
		}
		if got, want := part.PQ.Codes.Len(), part.DCE.Len(); got != want {
			t.Fatalf("shard %d: %d code rows vs %d ciphertext rows", s, got, want)
		}
		for local := 0; local < part.DCE.Len(); local++ {
			g := local*shards + s
			want := edb.PQ.Codes.Row(g)
			if !edb.DCE.Has(g) {
				want = zero
			}
			if !bytes.Equal(part.PQ.Codes.Row(local), want) {
				t.Fatalf("shard %d row %d (global %d) diverges", s, local, g)
			}
		}
		srv, err := NewServer(part)
		if err != nil {
			t.Fatal(err)
		}
		tok, err := w.user.Query(data[s])
		if err != nil {
			t.Fatal(err)
		}
		got, err := srv.Search(tok, 3, SearchOptions{RatioK: 12, EfSearch: 100, FilterDist: FilterPQ})
		if err != nil || len(got) == 0 {
			t.Fatalf("shard %d FilterPQ search: %v, %v", s, got, err)
		}
	}
}
