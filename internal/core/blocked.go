package core

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"ppanns/internal/dce"
	"ppanns/internal/pq"
	"ppanns/internal/resultheap"
)

// Multi-query blocked batch execution.
//
// The per-query batch executor (batch.go) runs each query's refine phase
// independently, so every query streams the candidate ciphertext records
// through the cache on its own. The blocked executor instead processes the
// batch in groups of Q trapdoor-prepared queries and makes the group share
// each gathered candidate block: the refine tile walks the group's
// candidate ids in ascending arena order, chunk by chunk, evaluating every
// group member's comparisons against a chunk's records while those records
// are cache-hot — a Q×N distance tile per arena pass instead of Q separate
// passes.
//
// The refine itself stays Algorithm 2's bounded max-heap selection and is
// bit-identical to the sequential path (up to float64 rounding of exactly
// tied distances): each query seeds its heap with the first k candidates
// exactly as the sequential offers would, takes the resulting heap top as
// its pivot, and the tile computes Z_{pivot, cand} for every remaining
// candidate in one blocked kernel pass. A candidate with Z ≤ 0 is no
// closer than the pivot; since the sequential heap's top only ever gets
// closer after seeding, that candidate would have been rejected by its
// sequential offer too, so dropping it is exact. Survivors are offered in
// the original filter order, which reproduces the sequential heap's
// decisions (the admission test re-compares against the live top).

// defaultBlockQ is the group size SearchBatchBlocked uses when the options
// don't set one. Large enough that candidate chunks are reused several
// times per pass, small enough that a group's heaps and trapdoors stay
// cache-resident.
const defaultBlockQ = 8

// blockedChunkIDs is the number of distinct candidate records per tile
// chunk. At the paper's dimensions a record is ~6.5KB, so a chunk is
// ~200KB — sized for the L2 the group's queries share it through.
const blockedChunkIDs = 32

// refineTriple is one (candidate id, group member, candidate position)
// entry of the group tile, sorted by id so the tile walks the arena in
// ascending address order.
type refineTriple struct {
	id  int32
	qi  int32
	pos int32
}

// blockedQuery is the per-query state of one group member, pooled via
// blockedScratch.
type blockedQuery struct {
	items    []resultheap.Item
	tier     tierScratch
	cands    []int
	ops      []float64 // PrecomputeRefine operand arena
	ztail    []float64 // tile results indexed by candidate position
	chunkIDs []int32   // this query's ids within the current chunk
	chunkPos []int32   // candidate positions parallel to chunkIDs
	chunkZ   []float64 // blocked kernel output for the current chunk
	sorted   []int
	heap     resultheap.CompareHeap
	pq       dce.PreparedQuery
	pqsc     pq.Scanner
	cmp      dceComparator
	tail     int // first candidate position not consumed by heap seeding
	live     bool
	st       SearchStats
	err      error
}

// blockedScratch is the pooled working set of one group execution.
type blockedScratch struct {
	qs      []blockedQuery
	triples []refineTriple
	touched []int32 // group members with entries in the current chunk
}

var blockedPool = sync.Pool{New: func() any { return new(blockedScratch) }}

func getBlockedScratch(n int) *blockedScratch {
	gs := blockedPool.Get().(*blockedScratch)
	if cap(gs.qs) < n {
		gs.qs = make([]blockedQuery, n)
	} else {
		gs.qs = gs.qs[:n]
	}
	return gs
}

func putBlockedScratch(gs *blockedScratch) {
	for i := range gs.qs {
		q := &gs.qs[i]
		q.pq.Reset()
		q.pqsc.Reset()
		q.cmp = dceComparator{}
		q.live = false
		q.err = nil
		q.st = SearchStats{}
	}
	blockedPool.Put(gs)
}

// SearchBatchBlocked is SearchBatch with multi-query blocking: queries are
// processed in groups of opt.BlockQ (default 8) whose DCE refine phases
// share each gathered candidate block. Results are ordered like
// SearchBatch's and identical to it up to float64 rounding of exactly tied
// distances. Non-DCE refine modes gain nothing from sharing ciphertext
// blocks and fall back to the per-query executor.
func (s *Server) SearchBatchBlocked(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([][]int, error) {
	results, _, errs := s.searchBatchBlocked(toks, k, opt, parallelism, false)
	var failed []QueryError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, QueryError{Query: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return results, &BatchError{Failed: failed}
	}
	return results, nil
}

// SearchBatchBlockedStats is SearchBatchBlocked returning the raw
// per-query error slice plus per-query SearchStats. The tile pass is group
// work, so its time is attributed evenly across the group members it
// served; per-query RefineTime is therefore an attribution, not an
// isolated measurement.
func (s *Server) SearchBatchBlockedStats(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([][]int, []SearchStats, []error) {
	return s.searchBatchBlocked(toks, k, opt, parallelism, true)
}

func (s *Server) searchBatchBlocked(toks []*QueryToken, k int, opt SearchOptions, parallelism int, wantStats bool) ([][]int, []SearchStats, []error) {
	if len(toks) == 0 {
		return nil, nil, nil
	}
	if opt.BlockQ <= 1 {
		opt.BlockQ = defaultBlockQ
	}
	if opt.Refine != RefineDCE {
		return s.searchBatch(toks, k, opt, parallelism, wantStats)
	}
	results := make([][]int, len(toks))
	errs := make([]error, len(toks))
	var stats []SearchStats
	if wantStats {
		stats = make([]SearchStats, len(toks))
	}
	s.runBlockedGroups(toks, k, opt, parallelism, results, stats, errs, nil)
	return results, stats, errs
}

// runBlockedGroups dispatches the batch to searchGroupBlocked in groups of
// opt.BlockQ, scheduling whole groups across the worker pool. stats and
// mms may be nil.
func (s *Server) runBlockedGroups(toks []*QueryToken, k int, opt SearchOptions, parallelism int, results [][]int, stats []SearchStats, errs []error, mms []ShardResult) {
	blockQ := opt.BlockQ
	nGroups := (len(toks) + blockQ - 1) / blockQ
	forEachQuery(nGroups, opt.parallelism(parallelism), func() func(int) {
		return func(g int) {
			lo := g * blockQ
			hi := min(lo+blockQ, len(toks))
			var sslice []SearchStats
			if stats != nil {
				sslice = stats[lo:hi]
			}
			var mslice []ShardResult
			if mms != nil {
				mslice = mms[lo:hi]
			}
			s.searchGroupBlocked(toks[lo:hi], k, opt, results[lo:hi], sslice, errs[lo:hi], mslice)
		}
	})
}

// searchGroupBlocked answers one group of queries against a single
// snapshot. results/errs (and stats/mms when non-nil) are parallel to
// toks. Per-query validation mirrors searchInto's checks and error
// messages exactly, so a batch mixing good and bad tokens reports the same
// errors through either executor.
func (s *Server) searchGroupBlocked(toks []*QueryToken, k int, opt SearchOptions, results [][]int, stats []SearchStats, errs []error, mms []ShardResult) {
	sp := s.snap.Load()
	sp.readers.Add(1)
	defer sp.readers.Add(-1)
	edb := sp.edb

	gs := getBlockedScratch(len(toks))
	defer putBlockedScratch(gs)

	kPrime := opt.kPrime(k)
	if kPrime < k {
		kPrime = k
	}

	// Phase 1 — per-query validation, filter, heap seeding and pivot
	// selection. Seeding offers the first min(k, |cands|) positions exactly
	// like the sequential refine, so the pivot (the heap top after seeding)
	// matches the sequential heap's state when the tail offers begin.
	for i, tok := range toks {
		q := &gs.qs[i]
		q.st = SearchStats{Epoch: sp.epoch}
		q.err = nil
		q.live = false
		if tok == nil || tok.SAP == nil {
			q.err = fmt.Errorf("core: query token missing SAP ciphertext")
			continue
		}
		if k <= 0 {
			q.err = fmt.Errorf("core: non-positive k %d", k)
			continue
		}
		if len(tok.SAP) != edb.Dim {
			q.err = fmt.Errorf("core: query token has dim %d, want %d", len(tok.SAP), edb.Dim)
			continue
		}
		var psc *pq.Scanner
		if opt.FilterDist == FilterPQ {
			if edb.PQ == nil {
				q.err = fmt.Errorf("core: FilterPQ requested but database carries no PQ store (build with Params.PQ or BuildPQ)")
				continue
			}
			psc = &q.pqsc
			psc.Prepare(edb.PQ.Book, edb.PQ.Codes, tok.SAP)
		} else if opt.FilterDist != FilterExact {
			q.err = fmt.Errorf("core: unknown filter distance mode %d", opt.FilterDist)
			continue
		}
		start := time.Now()
		q.items = sp.filterInto(&q.tier, q.items[:0], tok.SAP, kPrime, opt.ef(kPrime), psc)
		q.st.FilterTime = time.Since(start)
		q.st.Candidates = len(q.items)
		if len(q.items) == 0 {
			continue // success with an empty result, like searchInto
		}
		if tok.Trapdoor == nil {
			q.err = fmt.Errorf("core: token lacks DCE trapdoor for refine")
			continue
		}
		start = time.Now()
		if err := edb.DCE.PrepareQuery(&q.pq, tok.Trapdoor.Q); err != nil {
			q.err = fmt.Errorf("core: %w", err)
			continue
		}
		q.cands = q.cands[:0]
		for _, it := range q.items {
			q.cands = append(q.cands, it.ID)
		}
		bad := false
		for _, id := range q.cands {
			if !edb.DCE.Has(id) {
				q.err = fmt.Errorf("core: filter index returned id %d with no DCE ciphertext", id)
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		q.cmp = dceComparator{pq: &q.pq, cands: q.cands}
		if opt.PrecomputeRefine {
			q.ops = edb.DCE.ScaleOperands(q.ops, q.cands, tok.Trapdoor.Q)
			q.cmp.ops, q.cmp.ctDim = q.ops, edb.DCE.CtDim()
		}
		bound := k
		if bound > len(q.cands) {
			bound = len(q.cands)
		}
		q.heap.Reset(bound, &q.cmp)
		for pos := 0; pos < bound; pos++ {
			q.heap.Offer(pos)
		}
		q.tail = bound
		if len(q.cands) > bound {
			q.pq.SetPivot(q.cands[q.heap.Top()])
			if cap(q.ztail) < len(q.cands) {
				q.ztail = make([]float64, len(q.cands))
			} else {
				q.ztail = q.ztail[:len(q.cands)]
			}
		}
		q.live = true
		q.st.RefineTime = time.Since(start)
	}

	// Phase 2 — the group tile: every live query's tail candidates, sorted
	// by id so the pass walks the ciphertext arena in ascending order, cut
	// into chunks of blockedChunkIDs distinct records. Each chunk's records
	// are evaluated for every group member that wants them while the
	// records are cache-hot; results land in per-query ztail slots.
	gs.triples = gs.triples[:0]
	tiled := 0
	for qi := range gs.qs {
		q := &gs.qs[qi]
		if !q.live || q.tail >= len(q.cands) {
			continue
		}
		tiled++
		for pos := q.tail; pos < len(q.cands); pos++ {
			gs.triples = append(gs.triples, refineTriple{id: int32(q.cands[pos]), qi: int32(qi), pos: int32(pos)})
		}
	}
	if len(gs.triples) > 0 {
		tileStart := time.Now()
		slices.SortFunc(gs.triples, func(a, b refineTriple) int {
			if a.id != b.id {
				return int(a.id) - int(b.id)
			}
			if a.qi != b.qi {
				return int(a.qi) - int(b.qi)
			}
			return int(a.pos) - int(b.pos)
		})
		for start := 0; start < len(gs.triples); {
			end := start + 1
			distinct := 1
			for end < len(gs.triples) {
				if gs.triples[end].id != gs.triples[end-1].id {
					if distinct == blockedChunkIDs {
						break
					}
					distinct++
				}
				end++
			}
			gs.touched = gs.touched[:0]
			for _, tr := range gs.triples[start:end] {
				q := &gs.qs[tr.qi]
				if len(q.chunkIDs) == 0 {
					gs.touched = append(gs.touched, tr.qi)
				}
				q.chunkIDs = append(q.chunkIDs, tr.id)
				q.chunkPos = append(q.chunkPos, tr.pos)
			}
			for _, qi := range gs.touched {
				q := &gs.qs[qi]
				q.chunkZ = q.pq.DistanceCompBlock(q.chunkZ[:0], q.chunkIDs)
				for t, pos := range q.chunkPos {
					q.ztail[pos] = q.chunkZ[t]
				}
				q.chunkIDs = q.chunkIDs[:0]
				q.chunkPos = q.chunkPos[:0]
			}
			start = end
		}
		// The tile serves the whole group at once; attribute its wall time
		// evenly across the queries it evaluated.
		share := time.Since(tileStart) / time.Duration(tiled)
		for qi := range gs.qs {
			q := &gs.qs[qi]
			if q.live && q.tail < len(q.cands) {
				q.st.RefineTime += share
			}
		}
	}

	// Phase 3 — per-query admission and drain. A tail candidate with
	// Z_{pivot, cand} ≤ 0 is dropped (its sequential offer would have been
	// rejected — see the package comment); survivors are offered in the
	// original filter order against the live heap top, exactly the
	// sequential decision sequence.
	for i := range toks {
		q := &gs.qs[i]
		if q.err != nil {
			errs[i] = q.err
			if stats != nil {
				stats[i] = q.st
			}
			if mms != nil {
				mms[i] = ShardResult{}
			}
			continue
		}
		if !q.live {
			results[i] = nil
			if stats != nil {
				stats[i] = q.st
			}
			if mms != nil {
				mms[i].IDs = make([]int, 0, k)
				mms[i].Epoch = q.st.Epoch
			}
			continue
		}
		start := time.Now()
		tailN := len(q.cands) - q.tail
		for pos := q.tail; pos < len(q.cands); pos++ {
			if q.ztail[pos] > 0 {
				q.heap.Offer(pos)
			}
		}
		q.sorted = q.heap.SortedInto(q.sorted)
		res := make([]int, 0, k)
		for _, pos := range q.sorted {
			res = append(res, q.cands[pos])
		}
		q.st.Comparisons = q.heap.Comparisons() + tailN
		q.st.RefineTime += time.Since(start)
		results[i] = res
		if stats != nil {
			stats[i] = q.st
		}
		if mms != nil {
			mm := &mms[i]
			mm.IDs = res
			mm.Epoch = q.st.Epoch
			mm.CtDim = edb.DCE.CtDim()
			if mm.views {
				mm.Store = edb.DCE
			} else {
				mm.Recs = make([][]float64, len(res))
				for j, id := range res {
					mm.Recs[j] = append([]float64(nil), edb.DCE.Record(id)...)
				}
			}
		}
	}
}
