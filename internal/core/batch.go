package core

import (
	"fmt"
	"runtime"
	"sync"
)

// SearchBatch answers many queries concurrently across at most parallelism
// workers (0 = GOMAXPROCS) and returns per-query results in input order.
// The paper measures single-threaded search for comparability; a deployed
// cloud server answers its query stream in parallel, which the scheme
// supports because search is read-only over the encrypted state.
func (s *Server) SearchBatch(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([][]int, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(toks) {
		parallelism = len(toks)
	}
	if len(toks) == 0 {
		return nil, nil
	}
	results := make([][]int, len(toks))
	errs := make([]error, len(toks))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(toks) {
					return
				}
				results[i], errs[i] = s.Search(toks[i], k, opt)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
	}
	return results, nil
}
