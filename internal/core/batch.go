package core

import (
	"fmt"
	"sync"
)

// QueryError attributes one failed query inside a batch.
type QueryError struct {
	Query int // index into the batch's token slice
	Err   error
}

func (e QueryError) Error() string { return fmt.Sprintf("query %d: %v", e.Query, e.Err) }

// Unwrap exposes the underlying per-query error to errors.Is/As.
func (e QueryError) Unwrap() error { return e.Err }

// BatchError aggregates the failures of a SearchBatch call. The batch's
// successful results are still returned alongside it — a single malformed
// token no longer voids a thousand good answers.
type BatchError struct {
	Failed []QueryError // in query order
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: %d of batch queries failed (first: %v)", len(e.Failed), e.Failed[0])
}

// Unwrap exposes the per-query errors to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, qe := range e.Failed {
		out[i] = qe
	}
	return out
}

// SearchBatch answers many queries concurrently across at most parallelism
// workers (0 defers to SearchOptions.Parallelism, then GOMAXPROCS) and
// returns per-query results in input order. The paper measures
// single-threaded search for comparability; a deployed cloud server
// answers its query stream in parallel, which the snapshot-isolated read
// path supports with no locking at all — every worker searches the same
// immutable snapshot.
//
// Failed queries do not discard the batch: their result slots are nil and
// the returned error is a *BatchError listing them; every other slot holds
// its query's answer. Each worker draws its own pooled scratch, and every
// worker reuses one result buffer across its queries, so the steady-state
// per-query cost is a single allocation for the returned ids.
func (s *Server) SearchBatch(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([][]int, error) {
	results, errs := s.SearchBatchErrs(toks, k, opt, parallelism)
	var failed []QueryError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, QueryError{Query: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return results, &BatchError{Failed: failed}
	}
	return results, nil
}

// forEachQuery dispatches indexes 0..n-1 across at most parallelism
// workers (already resolved by the caller via SearchOptions.parallelism),
// the shared scaffold of every batch search flavor. Workers pull indexes
// off one counter, so long and short queries interleave without static
// partitioning imbalance. newWorker runs once per worker and returns the
// closure handling one index, so workers can carry reusable state (result
// buffers) across the queries they process.
func forEachQuery(n, parallelism int, newWorker func() func(i int)) {
	if parallelism <= 0 {
		parallelism = 1
	}
	if parallelism > n {
		parallelism = n
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newWorker()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SearchShardBatch is SearchBatchErrs returning ShardResults — per-query
// result ids plus the cross-shard merge material of the active refine mode
// — so a scatter-gather coordinator amortizes one round trip (and here one
// worker-pool spin-up) over a whole batch. Result and error slices are
// parallel to toks; failed slots hold a zero ShardResult.
func (s *Server) SearchShardBatch(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([]ShardResult, []error) {
	return s.searchShardBatch(toks, k, opt, parallelism, false)
}

// SearchShardBatchView is SearchShardBatch returning zero-copy merge
// material (see SearchShardView): each result borrows the snapshot's
// ciphertext store instead of copying records, which the in-process
// scatter-gather tier merges without staging allocations.
func (s *Server) SearchShardBatchView(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([]ShardResult, []error) {
	return s.searchShardBatch(toks, k, opt, parallelism, true)
}

func (s *Server) searchShardBatch(toks []*QueryToken, k int, opt SearchOptions, parallelism int, views bool) ([]ShardResult, []error) {
	if len(toks) == 0 {
		return nil, nil
	}
	results := make([]ShardResult, len(toks))
	errs := make([]error, len(toks))
	if opt.BlockQ > 1 && opt.Refine == RefineDCE {
		// Query-blocked path: groups of BlockQ queries share each gathered
		// candidate block during refine (see blocked.go). The group executor
		// fills ShardResult slots directly.
		for i := range results {
			results[i].views = views
		}
		s.runBlockedGroups(toks, k, opt, parallelism, make([][]int, len(toks)), nil, errs, results)
		for i := range results {
			if errs[i] != nil {
				results[i] = ShardResult{}
			}
		}
		return results, errs
	}
	forEachQuery(len(toks), opt.parallelism(parallelism), func() func(int) {
		return func(i int) {
			var ids []int
			var st SearchStats
			results[i].views = views
			ids, st, errs[i] = s.searchInto(make([]int, 0, k), toks[i], k, opt, &results[i])
			if errs[i] == nil {
				results[i].IDs = ids
				results[i].Epoch = st.Epoch
			} else {
				results[i] = ShardResult{}
			}
		}
	})
	return results, errs
}

// SearchBatchErrs is SearchBatch returning the raw per-query error slice
// (parallel to the result slice; nil entries mean success) instead of an
// aggregate error. Both return values are nil for an empty batch.
func (s *Server) SearchBatchErrs(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([][]int, []error) {
	results, _, errs := s.searchBatch(toks, k, opt, parallelism, false)
	return results, errs
}

// SearchBatchStats is SearchBatchErrs additionally returning the per-query
// SearchStats (parallel to the result slice; zero value for failed slots),
// so callers profiling the batch executor can attribute time to the filter
// and refine stages without a second measurement pass.
func (s *Server) SearchBatchStats(toks []*QueryToken, k int, opt SearchOptions, parallelism int) ([][]int, []SearchStats, []error) {
	return s.searchBatch(toks, k, opt, parallelism, true)
}

func (s *Server) searchBatch(toks []*QueryToken, k int, opt SearchOptions, parallelism int, wantStats bool) ([][]int, []SearchStats, []error) {
	if len(toks) == 0 {
		return nil, nil, nil
	}
	results := make([][]int, len(toks))
	errs := make([]error, len(toks))
	var stats []SearchStats
	if wantStats {
		stats = make([]SearchStats, len(toks))
	}
	if opt.BlockQ > 1 && opt.Refine == RefineDCE {
		// Query-blocked path: groups of BlockQ queries share each gathered
		// candidate block during refine (see blocked.go).
		s.runBlockedGroups(toks, k, opt, parallelism, results, stats, errs, nil)
		return results, stats, errs
	}
	forEachQuery(len(toks), opt.parallelism(parallelism), func() func(int) {
		var buf []int
		return func(i int) {
			var st SearchStats
			buf, st, errs[i] = s.SearchInto(buf[:0], toks[i], k, opt)
			if errs[i] == nil {
				results[i] = append([]int(nil), buf...)
				if wantStats {
					stats[i] = st
				}
			}
		}
	})
	return results, stats, errs
}
