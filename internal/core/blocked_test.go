package core

import (
	"errors"
	"testing"
)

// blockedWorld builds a deployment sized so that k' candidate lists
// overlap across queries — the regime the blocked tile's chunk sharing is
// meant for.
func blockedWorld(t *testing.T, seed uint64) (*testWorld, []*QueryToken) {
	t.Helper()
	data := clustered(seed, 1200, 12, 6)
	w := newWorld(t, Params{Dim: 12, Beta: 0.5, Seed: seed}, data)
	queries := makeQueries(seed+1, data, 33, 0.3)
	toks := make([]*QueryToken, len(queries))
	for i, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		toks[i] = tok
	}
	return w, toks
}

func assertSameBatches(t *testing.T, got, want [][]int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s query %d: got %v, want %v", label, i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s query %d rank %d: got %d, want %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestSearchBatchBlockedMatchesSequential pins the blocked executor's core
// contract: for every group size and either comparator flavor, the blocked
// refine returns exactly the per-query executor's results in exactly its
// order.
func TestSearchBatchBlockedMatchesSequential(t *testing.T) {
	w, toks := blockedWorld(t, 71)
	for _, pre := range []bool{false, true} {
		opt := SearchOptions{RatioK: 8, EfSearch: 80, PrecomputeRefine: pre}
		want, err := w.server.SearchBatch(toks, 5, opt, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, blockQ := range []int{2, 3, 8, 32, 100} {
			opt.BlockQ = blockQ
			got, err := w.server.SearchBatchBlocked(toks, 5, opt, 4)
			if err != nil {
				t.Fatal(err)
			}
			assertSameBatches(t, got, want, "blocked")
			// BlockQ inside the options must route the plain batch
			// executors through the blocked path too (that is how the
			// option reaches remote servers and shards).
			got2, err := w.server.SearchBatch(toks, 5, opt, 3)
			if err != nil {
				t.Fatal(err)
			}
			assertSameBatches(t, got2, want, "SearchBatch+BlockQ")
		}
	}
}

// TestSearchBatchBlockedEdgeShapes covers the degenerate group shapes: k
// larger than the candidate pool (no tile at all), k=1 (pivot is the sole
// seed), and a batch smaller than one group.
func TestSearchBatchBlockedEdgeShapes(t *testing.T) {
	w, toks := blockedWorld(t, 73)
	small := toks[:3]
	for _, k := range []int{1, 5, 5000} {
		opt := SearchOptions{RatioK: 4, EfSearch: 64, BlockQ: 8}
		want, err := w.server.SearchBatch(small, k, SearchOptions{RatioK: 4, EfSearch: 64}, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.server.SearchBatchBlocked(small, k, opt, 1)
		if err != nil {
			t.Fatal(err)
		}
		assertSameBatches(t, got, want, "blocked small batch")
	}
	// Duplicate tokens in one group: maximal chunk sharing, identical rows.
	dup := []*QueryToken{toks[0], toks[0], toks[0], toks[1]}
	want, err := w.server.SearchBatch(dup, 7, SearchOptions{RatioK: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.server.SearchBatchBlocked(dup, 7, SearchOptions{RatioK: 8, BlockQ: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBatches(t, got, want, "duplicate tokens")
}

// TestSearchBatchBlockedPartialFailure mirrors the per-query executor's
// failure semantics: bad tokens fail with the same errors in the same
// slots while the rest of their group still answers.
func TestSearchBatchBlockedPartialFailure(t *testing.T) {
	w, toks := blockedWorld(t, 75)
	bad, err := w.user.QueryFilterOnly(w.data[9]) // lacks the DCE trapdoor
	if err != nil {
		t.Fatal(err)
	}
	mixed := []*QueryToken{toks[0], bad, toks[1], nil, toks[2]}
	results, batchErr := w.server.SearchBatchBlocked(mixed, 5, SearchOptions{RatioK: 8, BlockQ: 4}, 2)
	var be *BatchError
	if !errors.As(batchErr, &be) {
		t.Fatalf("batch error has type %T, want *BatchError", batchErr)
	}
	if len(be.Failed) != 2 || be.Failed[0].Query != 1 || be.Failed[1].Query != 3 {
		t.Fatalf("failed set = %+v, want queries 1 and 3", be.Failed)
	}
	seq, _ := w.server.SearchBatchErrs(mixed, 5, SearchOptions{RatioK: 8}, 2)
	for _, i := range []int{0, 2, 4} {
		if len(results[i]) != 5 {
			t.Fatalf("good query %d lost its results: %v", i, results[i])
		}
		for j := range results[i] {
			if results[i][j] != seq[i][j] {
				t.Fatalf("good query %d differs from sequential: %v vs %v", i, results[i], seq[i])
			}
		}
	}
	for _, i := range []int{1, 3} {
		if results[i] != nil {
			t.Fatalf("failed query %d has non-nil results %v", i, results[i])
		}
	}
	// Same error texts as the sequential validation chain.
	_, seqErrs := w.server.SearchBatchErrs(mixed, 5, SearchOptions{RatioK: 8}, 1)
	_, _, blkErrs := w.server.SearchBatchBlockedStats(mixed, 5, SearchOptions{RatioK: 8, BlockQ: 4}, 1)
	for i := range mixed {
		switch {
		case seqErrs[i] == nil && blkErrs[i] == nil:
		case seqErrs[i] != nil && blkErrs[i] != nil && seqErrs[i].Error() == blkErrs[i].Error():
		default:
			t.Fatalf("query %d: blocked err %v, sequential err %v", i, blkErrs[i], seqErrs[i])
		}
	}
}

// TestSearchBatchBlockedStats checks the per-query accounting: epoch and
// candidate counts match the sequential stats, stage times are populated,
// and the comparison count stays within the sequential path's bound (the
// tile prunes with one comparison per tail candidate, then only survivors
// pay heap comparisons).
func TestSearchBatchBlockedStats(t *testing.T) {
	w, toks := blockedWorld(t, 77)
	opt := SearchOptions{RatioK: 8, EfSearch: 80}
	_, seqStats, _ := w.server.SearchBatchStats(toks, 5, opt, 1)
	opt.BlockQ = 8
	_, stats, errs := w.server.SearchBatchBlockedStats(toks, 5, opt, 1)
	for i := range toks {
		if errs[i] != nil {
			t.Fatalf("query %d failed: %v", i, errs[i])
		}
		st, want := stats[i], seqStats[i]
		if st.Epoch != want.Epoch || st.Candidates != want.Candidates {
			t.Fatalf("query %d: stats %+v vs sequential %+v", i, st, want)
		}
		if st.FilterTime <= 0 || st.RefineTime <= 0 {
			t.Fatalf("query %d: unpopulated stage times %+v", i, st)
		}
		if st.Comparisons <= 0 {
			t.Fatalf("query %d: no comparisons recorded", i)
		}
		// Tile pruning can only remove heap work relative to offering every
		// candidate; candidates + admitted heap comparisons never exceeds
		// the sequential count plus the seeded prefix's heap work.
		if st.Comparisons > 2*want.Comparisons+want.Candidates {
			t.Fatalf("query %d: blocked comparisons %d vs sequential %d", i, st.Comparisons, want.Comparisons)
		}
	}
}

// TestSearchShardBatchBlockedMatchesSequential pins the scatter-gather
// surface: with BlockQ set, both the copying and the view-returning shard
// batch run the blocked path and return the same ids and merge material as
// the per-query path.
func TestSearchShardBatchBlockedMatchesSequential(t *testing.T) {
	w, toks := blockedWorld(t, 79)
	opt := SearchOptions{RatioK: 8, EfSearch: 80}
	wantRes, wantErrs := w.server.SearchShardBatch(toks, 5, opt, 2)
	opt.BlockQ = 8
	gotRes, gotErrs := w.server.SearchShardBatch(toks, 5, opt, 2)
	gotViews, _ := w.server.SearchShardBatchView(toks, 5, opt, 2)
	for i := range toks {
		if wantErrs[i] != nil || gotErrs[i] != nil {
			t.Fatalf("query %d: errs %v / %v", i, wantErrs[i], gotErrs[i])
		}
		want, got := wantRes[i], gotRes[i]
		if len(got.IDs) != len(want.IDs) {
			t.Fatalf("query %d: ids %v vs %v", i, got.IDs, want.IDs)
		}
		for j := range want.IDs {
			if got.IDs[j] != want.IDs[j] {
				t.Fatalf("query %d rank %d: %d vs %d", i, j, got.IDs[j], want.IDs[j])
			}
		}
		if got.CtDim != want.CtDim || len(got.Recs) != len(want.Recs) {
			t.Fatalf("query %d: merge material shape %d/%d vs %d/%d", i, got.CtDim, len(got.Recs), want.CtDim, len(want.Recs))
		}
		for j := range want.Recs {
			for c := range want.Recs[j] {
				if got.Recs[j][c] != want.Recs[j][c] {
					t.Fatalf("query %d rec %d component %d differs", i, j, c)
				}
			}
		}
		if gotViews[i].Store == nil || gotViews[i].Recs != nil {
			t.Fatalf("query %d: view result should borrow the store, got %+v", i, gotViews[i])
		}
	}
}

// TestSearchBatchBlockedSteadyStateAllocs: once the scratch pool is warm,
// the blocked path allocates only each query's returned id slice (plus the
// batch's result/err slices), like the per-query executor.
func TestSearchBatchBlockedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	w, toks := blockedWorld(t, 81)
	opt := SearchOptions{RatioK: 8, EfSearch: 80, BlockQ: 8}
	run := func() {
		if _, err := w.server.SearchBatchBlocked(toks, 5, opt, 1); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm pools
	perBatch := testing.AllocsPerRun(20, run)
	// Result slices (one per query) + batch bookkeeping; anything beyond
	// ~2 allocs per query means scratch is leaking out of the pool.
	if limit := float64(2*len(toks) + 8); perBatch > limit {
		t.Fatalf("blocked batch allocates %.0f per run, want <= %.0f", perBatch, limit)
	}
}
