package core

import (
	"bytes"
	"testing"
)

func TestUserKeyRoundTrip(t *testing.T) {
	data := clustered(31, 300, 10, 4)
	w := newWorld(t, Params{Dim: 10, Beta: 0.8, Seed: 31}, data)

	var buf bytes.Buffer
	if err := SaveUserKey(&buf, w.owner.UserKey()); err != nil {
		t.Fatal(err)
	}
	key2, err := LoadUserKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	user2, err := NewUser(key2)
	if err != nil {
		t.Fatal(err)
	}
	// Queries built with the deserialized key must work against the
	// original server with full fidelity.
	queries := makeQueries(32, data, 15, 0.3)
	for _, q := range queries {
		tok, err := user2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.server.Search(tok, 5, SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(data, q, 5, nil)
		if recallOf(got, want) < 0.8 {
			t.Fatalf("recall with deserialized key too low: got %v want %v", got, want)
		}
	}
}

func TestUserKeyValidation(t *testing.T) {
	if err := SaveUserKey(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("expected error for nil key")
	}
	if _, err := LoadUserKey(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestEncryptedDatabaseRoundTrip(t *testing.T) {
	data := clustered(33, 400, 8, 4)
	w := newWorld(t, Params{Dim: 8, Beta: 0.5, Seed: 33}, data)
	// Tombstone one id so presence bytes are exercised.
	if err := w.server.Delete(7); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err := w.server.Database().Save(&buf)
	if err != nil {
		t.Fatal(err)
	}

	edb2, err := LoadEncryptedDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	server2, err := NewServer(edb2)
	if err != nil {
		t.Fatal(err)
	}
	if server2.Len() != 400 {
		t.Fatalf("loaded Len = %d", server2.Len())
	}
	if !server2.Deleted(7) {
		t.Fatal("tombstone lost")
	}
	queries := makeQueries(34, data, 15, 0.3)
	for _, q := range queries {
		tok, err := w.user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.server.Search(tok, 5, SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := server2.Search(tok, 5, SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d differs after round trip: %d vs %d", i, a[i], b[i])
			}
		}
	}
	// Loaded database must accept inserts.
	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server2.Insert(payload); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEncryptedDatabaseGarbage(t *testing.T) {
	if _, err := LoadEncryptedDatabase(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected error for garbage")
	}
	if _, err := LoadEncryptedDatabase(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty stream")
	}
}
