package core

import (
	"bytes"
	"errors"
	"testing"

	"ppanns/internal/dce"
	"ppanns/internal/index"
	"ppanns/internal/rng"
)

// Per-backend recall floors for the full filter-and-refine pipeline. The
// exact DCE refine recovers most of what the approximate filter loses, so
// these sit above the filter-only conformance floors; LSH keeps the
// lowest bar because its candidate set, not its ranking, is the limit.
var backendMinRecall = map[string]float64{
	"hnsw": 0.90,
	"nsg":  0.90,
	"ivf":  0.80,
	"lsh":  0.40,
}

// TestBackendsEndToEnd drives every registered filter-index backend
// through the public pipeline: encrypt, search with DCE refine, save/load
// round-trip, and capability-gated updates.
func TestBackendsEndToEnd(t *testing.T) {
	const n, dim, k = 1500, 12, 10
	data := clustered(61, n, dim, 10)
	queries := makeQueries(62, data, 25, 0.3)

	for _, name := range index.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, Params{Dim: dim, Beta: 0.5, Seed: 61, Index: name}, data)
			if got := w.server.Backend(); got != name {
				t.Fatalf("Backend() = %q, want %q", got, name)
			}
			caps := w.server.Caps()
			if caps.Name != name {
				t.Fatalf("Caps().Name = %q, want %q", caps.Name, name)
			}

			opt := SearchOptions{RatioK: 16, EfSearch: 250}
			recall := w.measureRecall(t, queries, k, opt)
			if floor := backendMinRecall[name]; recall < floor {
				t.Fatalf("end-to-end recall = %.3f, want ≥ %.2f", recall, floor)
			}

			// Save/load round-trip must preserve search results exactly.
			var buf bytes.Buffer
			if err := w.server.Database().Save(&buf); err != nil {
				t.Fatal(err)
			}
			edb2, err := LoadEncryptedDatabase(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if edb2.Backend != name {
				t.Fatalf("loaded backend = %q, want %q", edb2.Backend, name)
			}
			server2, err := NewServer(edb2)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				tok, err := w.user.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				a, err := w.server.Search(tok, k, opt)
				if err != nil {
					t.Fatal(err)
				}
				b, err := server2.Search(tok, k, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("query %d: result counts differ after round-trip: %d vs %d", qi, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("query %d rank %d differs after round-trip: %d vs %d", qi, i, a[i], b[i])
					}
				}
			}

			// Capability-gated insert through the server. A rejected insert
			// must leave the database untouched (the validate-before-mutate
			// contract of Server.Insert).
			r := rng.NewSeeded(63)
			novel := rng.GaussianVec(r, dim, 30)
			payload, err := w.owner.EncryptVector(novel)
			if err != nil {
				t.Fatal(err)
			}
			if caps.DynamicInsert {
				id, err := w.server.Insert(payload)
				if err != nil {
					t.Fatal(err)
				}
				if id != n {
					t.Fatalf("insert id = %d, want %d", id, n)
				}
				tok, err := w.user.Query(novel)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w.server.Search(tok, 1, SearchOptions{RatioK: 8})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 1 || got[0] != id {
					t.Fatalf("inserted vector not found: got %v", got)
				}
			} else {
				if _, err := w.server.Insert(payload); !errors.Is(err, index.ErrNotSupported) {
					t.Fatalf("insert on %s: err = %v, want ErrNotSupported", name, err)
				}
				if w.server.Len() != n {
					t.Fatalf("failed insert mutated database: Len = %d, want %d", w.server.Len(), n)
				}
				if _, err := w.server.Search(mustToken(t, w, data[0]), k, opt); err != nil {
					t.Fatalf("search after failed insert: %v", err)
				}
			}

			// Delete works on every current backend and must hide the id.
			if !caps.DynamicDelete {
				t.Fatalf("backend %s unexpectedly lacks delete support", name)
			}
			q := data[40]
			before, err := w.server.Search(mustToken(t, w, q), k, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.server.Delete(before[0]); err != nil {
				t.Fatal(err)
			}
			if !w.server.Deleted(before[0]) {
				t.Fatal("Deleted() bookkeeping wrong")
			}
			after, err := w.server.Search(mustToken(t, w, q), k, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range after {
				if id == before[0] {
					t.Fatal("deleted id still returned")
				}
			}
		})
	}
}

func mustToken(t *testing.T, w *testWorld, q []float64) *QueryToken {
	t.Helper()
	tok, err := w.user.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// TestFailedInsertLeavesDatabaseIntact is the regression test for the
// validate-before-mutate Insert fix: an insert rejected for a missing AME
// ciphertext must not grow any server-side array or desync the index.
func TestFailedInsertLeavesDatabaseIntact(t *testing.T) {
	const n, dim = 300, 8
	data := clustered(71, n, dim, 4)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 71, WithAME: true}, data)

	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	payload.AME = nil
	if _, err := w.server.Insert(payload); err == nil {
		t.Fatal("expected error for missing AME ciphertext")
	}
	if w.server.Len() != n {
		t.Fatalf("failed insert grew database: Len = %d, want %d", w.server.Len(), n)
	}
	// A subsequent complete insert must land at position n with the index
	// still in lockstep.
	payload2, err := w.owner.EncryptVector(data[1])
	if err != nil {
		t.Fatal(err)
	}
	id, err := w.server.Insert(payload2)
	if err != nil {
		t.Fatal(err)
	}
	if id != n {
		t.Fatalf("insert after failed insert: id = %d, want %d", id, n)
	}
	got, err := w.server.Search(mustToken(t, w, data[1]), 2, SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range got {
		if g == 1 || g == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("database desynced after failed insert: got %v", got)
	}
}

// TestDimensionValidation ensures wrong-dimension tokens and payloads are
// rejected with errors instead of reaching the backends, which panic on
// mismatched vectors — a crash that must not be reachable from the wire.
func TestDimensionValidation(t *testing.T) {
	const dim = 8
	data := clustered(81, 200, dim, 2)
	w := newWorld(t, Params{Dim: dim, Beta: 0.3, Seed: 81}, data)
	tok := mustToken(t, w, data[0])

	badSAP := &QueryToken{SAP: make([]float64, dim/2), Trapdoor: tok.Trapdoor}
	if _, err := w.server.Search(badSAP, 3, SearchOptions{}); err == nil {
		t.Fatal("expected error for wrong-dimension SAP token")
	}
	badTrap := &QueryToken{SAP: tok.SAP, Trapdoor: &dce.Trapdoor{Q: make([]float64, 3)}}
	if _, err := w.server.Search(badTrap, 3, SearchOptions{}); err == nil {
		t.Fatal("expected error for wrong-dimension trapdoor")
	}

	payload, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	payload.SAP = payload.SAP[:dim/2]
	if _, err := w.server.Insert(payload); err == nil {
		t.Fatal("expected error for wrong-dimension insert payload")
	}
	payload2, err := w.owner.EncryptVector(data[0])
	if err != nil {
		t.Fatal(err)
	}
	payload2.DCE.P1 = payload2.DCE.P1[:3]
	if _, err := w.server.Insert(payload2); err == nil {
		t.Fatal("expected error for mismatched DCE ciphertext components")
	}
	if w.server.Len() != 200 {
		t.Fatalf("failed inserts mutated database: Len = %d", w.server.Len())
	}
}

// TestParamsUnknownBackend ensures backend selection fails fast at
// parameter validation, not at encryption time.
func TestParamsUnknownBackend(t *testing.T) {
	if _, err := NewDataOwner(Params{Dim: 4, Index: "btree"}); err == nil {
		t.Fatal("expected error for unknown backend")
	}
}
