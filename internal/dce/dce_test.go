package dce

import (
	"math"
	"testing"
	"testing/quick"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// relGap is the minimum relative distance gap below which a pair of
// candidates counts as tied; genuinely tied distances may compare either
// way under float64 rounding and are excluded from exactness assertions.
const relGap = 1e-9

// checkComparison verifies Theorem 3 for one (o, p, q) triple.
func checkComparison(t *testing.T, k *Key, o, p, q []float64) {
	t.Helper()
	do := vec.SqDist(o, q)
	dp := vec.SqDist(p, q)
	if math.Abs(do-dp) <= relGap*(do+dp+1) {
		return // tie: either answer is acceptable
	}
	co := k.Encrypt(o)
	cp := k.Encrypt(p)
	tq := k.TrapGen(q)
	z := DistanceComp(co, cp, tq)
	if (z < 0) != (do < dp) {
		t.Fatalf("DistanceComp sign wrong: z=%g, dist(o,q)=%g, dist(p,q)=%g", z, do, dp)
	}
	if Closer(co, cp, tq) != (do < dp) {
		t.Fatal("Closer disagrees with DistanceComp")
	}
}

func TestKeyGenValidation(t *testing.T) {
	r := rng.NewSeeded(1)
	if _, err := KeyGen(r, 0); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, err := KeyGenScaled(r, 4, 0); err == nil {
		t.Fatal("expected error for scale 0")
	}
	if _, err := KeyGenScaled(r, 4, -1); err == nil {
		t.Fatal("expected error for negative scale")
	}
}

func TestCiphertextShapes(t *testing.T) {
	r := rng.NewSeeded(2)
	for _, dim := range []int{1, 2, 3, 8, 17, 64} {
		k, err := KeyGen(r, dim)
		if err != nil {
			t.Fatal(err)
		}
		pad := dim
		if pad%2 == 1 {
			pad++
		}
		want := 2*pad + 16
		if k.CiphertextDim() != want {
			t.Fatalf("dim %d: CiphertextDim = %d, want %d", dim, k.CiphertextDim(), want)
		}
		p := rng.Gaussian(r, nil, dim)
		ct := k.Encrypt(p)
		for _, comp := range [][]float64{ct.P1, ct.P2, ct.P3, ct.P4} {
			if len(comp) != want {
				t.Fatalf("dim %d: component length %d, want %d", dim, len(comp), want)
			}
		}
		tq := k.TrapGen(p)
		if len(tq.Q) != want {
			t.Fatalf("dim %d: trapdoor length %d, want %d", dim, len(tq.Q), want)
		}
	}
}

func TestComparisonCorrectnessGaussian(t *testing.T) {
	r := rng.NewSeeded(3)
	for _, dim := range []int{2, 7, 16, 32, 128} {
		k, err := KeyGen(r, dim)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			o := rng.Gaussian(r, nil, dim)
			p := rng.Gaussian(r, nil, dim)
			q := rng.Gaussian(r, nil, dim)
			checkComparison(t, k, o, p, q)
		}
	}
}

func TestComparisonCorrectnessSIFTRange(t *testing.T) {
	// Raw SIFT-like coordinates in [0, 255]: the case that motivates the
	// input scale. The owner sets scale = 1/255.
	r := rng.NewSeeded(4)
	dim := 128
	k, err := KeyGenScaled(r, dim, 1.0/255)
	if err != nil {
		t.Fatal(err)
	}
	randSIFT := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = float64(r.IntN(256))
		}
		return v
	}
	for trial := 0; trial < 60; trial++ {
		checkComparison(t, k, randSIFT(), randSIFT(), randSIFT())
	}
}

func TestComparisonNearTies(t *testing.T) {
	// Candidates engineered to have close (but distinguishable) distances.
	r := rng.NewSeeded(5)
	dim := 24
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(r, nil, dim)
	for trial := 0; trial < 60; trial++ {
		o := vec.Add(nil, q, rng.GaussianVec(r, dim, 0.5))
		// p = o shifted slightly so dist(p,q) differs from dist(o,q) by a
		// small but resolvable margin.
		p := vec.Clone(o)
		p[trial%dim] += 1e-3
		checkComparison(t, k, o, p, q)
		checkComparison(t, k, p, o, q)
	}
}

func TestComparisonQuick(t *testing.T) {
	r := rng.NewSeeded(6)
	k, err := KeyGen(r, 12)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rr := rng.NewSeeded(seed)
		o := rng.Gaussian(rr, nil, 12)
		p := rng.Gaussian(rr, nil, 12)
		q := rng.Gaussian(rr, nil, 12)
		do, dp := vec.SqDist(o, q), vec.SqDist(p, q)
		if math.Abs(do-dp) <= relGap*(do+dp+1) {
			return true
		}
		z := DistanceComp(k.Encrypt(o), k.Encrypt(p), k.TrapGen(q))
		return (z < 0) == (do < dp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndEqualVectors(t *testing.T) {
	r := rng.NewSeeded(7)
	dim := 10
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, dim)
	q := rng.Gaussian(r, nil, dim)
	far := vec.Scale(nil, 10, q)
	// dist(q, q) = 0 < dist(far, q).
	checkComparison(t, k, q, far, q)
	checkComparison(t, k, zero, far, vec.Scale(nil, 0.01, q))
	// o == p must not crash; sign is unspecified for exact ties.
	co := k.Encrypt(q)
	cp := k.Encrypt(q)
	_ = DistanceComp(co, cp, k.TrapGen(q))
}

func TestTransitivityOnRanking(t *testing.T) {
	// Sorting candidates purely with DCE comparisons must reproduce the
	// plaintext distance ranking — the property the refine phase rests on.
	r := rng.NewSeeded(8)
	dim := 32
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(r, nil, dim)
	tq := k.TrapGen(q)
	const n = 30
	pts := make([][]float64, n)
	cts := make([]*Ciphertext, n)
	for i := range pts {
		pts[i] = rng.Gaussian(r, nil, dim)
		cts[i] = k.Encrypt(pts[i])
	}
	// Selection sort by DCE comparisons.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if Closer(cts[order[j]], cts[order[best]], tq) {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	for i := 1; i < n; i++ {
		if vec.SqDist(pts[order[i-1]], q) > vec.SqDist(pts[order[i]], q)+relGap {
			t.Fatalf("DCE ranking violated plaintext order at position %d", i)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	// Two encryptions of the same vector must differ (per-vector
	// randomness), yet compare identically.
	r := rng.NewSeeded(9)
	dim := 16
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.Gaussian(r, nil, dim)
	a := k.Encrypt(p)
	b := k.Encrypt(p)
	if vec.ApproxEqual(a.P1, b.P1, 1e-12) {
		t.Fatal("two encryptions of the same vector produced identical ciphertexts")
	}
	q := rng.Gaussian(r, nil, dim)
	o := rng.Gaussian(r, nil, dim)
	co := k.Encrypt(o)
	tq := k.TrapGen(q)
	if Closer(co, a, tq) != Closer(co, b, tq) {
		t.Fatal("re-encryption changed a comparison result")
	}
}

func TestTrapdoorIsRandomized(t *testing.T) {
	r := rng.NewSeeded(10)
	k, err := KeyGen(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(r, nil, 16)
	a := k.TrapGen(q)
	b := k.TrapGen(q)
	if vec.ApproxEqual(a.Q, b.Q, 1e-12) {
		t.Fatal("two trapdoors for the same query are identical")
	}
}

func TestZProportionalToDistanceGap(t *testing.T) {
	// Theorem 3: Z = 2·r_o·r_p·r_q·(dist(o,q) − dist(p,q)) with
	// r ∈ [0.5, 2)³, so |Z| must lie within [0.25, 16)·|gap| of the
	// plaintext gap.
	r := rng.NewSeeded(11)
	dim := 20
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		o := rng.Gaussian(r, nil, dim)
		p := rng.Gaussian(r, nil, dim)
		q := rng.Gaussian(r, nil, dim)
		gap := vec.SqDist(o, q) - vec.SqDist(p, q)
		if math.Abs(gap) < 1e-6 {
			continue
		}
		z := DistanceComp(k.Encrypt(o), k.Encrypt(p), k.TrapGen(q))
		ratio := z / (2 * gap)
		if ratio < 0.25*0.9 || ratio > 16.0/0.9 {
			t.Fatalf("Z/(2·gap) = %g outside the r_o·r_p·r_q range", ratio)
		}
	}
}

func TestDimMismatchPanics(t *testing.T) {
	r := rng.NewSeeded(12)
	k, err := KeyGen(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"Encrypt": func() { k.Encrypt(make([]float64, 7)) },
		"TrapGen": func() { k.TrapGen(make([]float64, 9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on dimension mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentEncrypt(t *testing.T) {
	// The key must be safe for concurrent encryption (the owner
	// parallelizes database encryption).
	r := rng.NewSeeded(13)
	dim := 16
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(r, nil, dim)
	tq := k.TrapGen(q)
	const workers = 8
	done := make(chan bool, workers)
	for w := 0; w < workers; w++ {
		go func(seed uint64) {
			rr := rng.NewSeeded(seed)
			ok := true
			for i := 0; i < 25; i++ {
				o := rng.Gaussian(rr, nil, dim)
				p := rng.Gaussian(rr, nil, dim)
				do, dp := vec.SqDist(o, q), vec.SqDist(p, q)
				if math.Abs(do-dp) <= relGap*(do+dp+1) {
					continue
				}
				z := DistanceComp(k.Encrypt(o), k.Encrypt(p), tq)
				if (z < 0) != (do < dp) {
					ok = false
				}
			}
			done <- ok
		}(uint64(w) + 100)
	}
	for w := 0; w < workers; w++ {
		if !<-done {
			t.Fatal("concurrent encryption produced a wrong comparison")
		}
	}
}

func TestOddDimensionPadding(t *testing.T) {
	r := rng.NewSeeded(14)
	for _, dim := range []int{1, 3, 5, 9, 31} {
		k, err := KeyGen(r, dim)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			o := rng.Gaussian(r, nil, dim)
			p := rng.Gaussian(r, nil, dim)
			q := rng.Gaussian(r, nil, dim)
			checkComparison(t, k, o, p, q)
		}
	}
}
