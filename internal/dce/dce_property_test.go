package dce

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
	"testing/quick"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// TestScaleInvariance: keys with different input scales must order any
// candidate set identically — the property that lets the owner normalize
// raw-range data freely.
func TestScaleInvariance(t *testing.T) {
	r := rng.NewSeeded(101)
	dim := 20
	k1, err := KeyGenScaled(rng.Derive(r, 1), dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyGenScaled(rng.Derive(r, 2), dim, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		o := rng.GaussianVec(r, dim, 50)
		p := rng.GaussianVec(r, dim, 50)
		q := rng.GaussianVec(r, dim, 50)
		do, dp := vec.SqDist(o, q), vec.SqDist(p, q)
		if math.Abs(do-dp) <= 1e-9*(do+dp+1) {
			continue
		}
		a := Closer(k1.Encrypt(o), k1.Encrypt(p), k1.TrapGen(q))
		b := Closer(k2.Encrypt(o), k2.Encrypt(p), k2.TrapGen(q))
		if a != b {
			t.Fatalf("scale changed a comparison outcome (trial %d)", trial)
		}
	}
}

// TestTranslationConsistency: shifting all vectors by a constant offset
// shifts both distances equally, so comparisons must be unchanged.
func TestTranslationConsistency(t *testing.T) {
	r := rng.NewSeeded(102)
	dim := 16
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	offset := rng.Gaussian(r, nil, dim)
	f := func(seed uint64) bool {
		rr := rng.NewSeeded(seed)
		o := rng.Gaussian(rr, nil, dim)
		p := rng.Gaussian(rr, nil, dim)
		q := rng.Gaussian(rr, nil, dim)
		do, dp := vec.SqDist(o, q), vec.SqDist(p, q)
		if math.Abs(do-dp) <= 1e-9*(do+dp+1) {
			return true
		}
		plain := Closer(k.Encrypt(o), k.Encrypt(p), k.TrapGen(q))
		shifted := Closer(
			k.Encrypt(vec.Add(nil, o, offset)),
			k.Encrypt(vec.Add(nil, p, offset)),
			k.TrapGen(vec.Add(nil, q, offset)))
		return plain == shifted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCiphertextStatistics: ciphertext components must not correlate with
// the plaintext coordinate signs — a cheap smoke test of the
// randomization phases.
func TestCiphertextStatistics(t *testing.T) {
	r := rng.NewSeeded(103)
	dim := 16
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	// Two very different plaintexts; their ciphertext component means
	// should both be near zero relative to their spread.
	for _, p := range [][]float64{vec.Ones(dim), vec.Scale(nil, -1, vec.Ones(dim))} {
		ct := k.Encrypt(p)
		var sum, sumSq float64
		for _, v := range ct.P1 {
			sum += v
			sumSq += v * v
		}
		n := float64(len(ct.P1))
		mean := sum / n
		sd := math.Sqrt(sumSq/n - mean*mean)
		if sd == 0 || math.Abs(mean) > sd {
			t.Fatalf("ciphertext component mean %g comparable to spread %g", mean, sd)
		}
	}
}

func TestKeySerializeRoundTrip(t *testing.T) {
	r := rng.NewSeeded(104)
	dim := 12
	k, err := KeyGenScaled(r, dim, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := k.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var k2 Key
	if err := k2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if k2.Dim() != dim || k2.Scale() != 0.5 {
		t.Fatalf("round trip lost header: dim=%d scale=%g", k2.Dim(), k2.Scale())
	}
	// Cross-compatibility: ciphertexts from k compare correctly against
	// trapdoors from k2 and vice versa.
	for trial := 0; trial < 30; trial++ {
		o := rng.Gaussian(r, nil, dim)
		p := rng.Gaussian(r, nil, dim)
		q := rng.Gaussian(r, nil, dim)
		do, dp := vec.SqDist(o, q), vec.SqDist(p, q)
		if math.Abs(do-dp) <= 1e-9*(do+dp+1) {
			continue
		}
		if Closer(k.Encrypt(o), k2.Encrypt(p), k2.TrapGen(q)) != (do < dp) {
			t.Fatal("cross-key comparison wrong after round trip")
		}
	}
}

func TestKeyDeserializeRejectsGarbage(t *testing.T) {
	var k Key
	if err := k.UnmarshalBinary([]byte("junk")); err == nil {
		t.Fatal("expected error for garbage key blob")
	}
	// A structurally valid gob with an implausible header must fail too.
	blob, err := gobEncodeWire(t, 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.UnmarshalBinary(blob); err == nil {
		t.Fatal("expected error for dim=0 header")
	}
}

func gobEncodeWire(t *testing.T, dim, pad int, scale float64) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	w := keyWire{Dim: dim, PadDim: pad, Scale: scale}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
