package dce

import "fmt"

// PreparedQuery carries the per-query state of arena DCE comparisons: the
// store binding, the validated trapdoor vector, and the hoisted operand
// views of a pivot record. The filter-and-refine hot path performs hundreds
// of comparisons per query against one trapdoor; preparing the query once
// moves every per-call dimension check and pivot slice computation out of
// the comparison kernels, and the blocked kernel below evaluates a whole
// candidate list against the pivot in one pass over the arena.
//
// All comparison paths through a PreparedQuery are bit-identical to the
// scalar CiphertextStore.DistanceCompQ: they run the same kernel with the
// same operand association, so exchanging them never reorders results.
//
// A PreparedQuery is single-goroutine state (pool one per search scratch);
// Reset drops the store and trapdoor references so a pooled value never
// pins another tenant's query material.
type PreparedQuery struct {
	store *CiphertextStore
	q     []float64
	pivot int
	o1    []float64 // pivot's P1 component view
	o2    []float64 // pivot's P2 component view
}

// PrepareQuery binds pq to the store and raw trapdoor vector, performing
// the dimension validation exactly once per query. The pivot is unset.
func (s *CiphertextStore) PrepareQuery(pq *PreparedQuery, q []float64) error {
	if len(q) != s.ctDim {
		return fmt.Errorf("dce: trapdoor has dim %d, ciphertexts %d", len(q), s.ctDim)
	}
	pq.store = s
	pq.q = q
	pq.pivot = -1
	pq.o1, pq.o2 = nil, nil
	return nil
}

// Reset drops all references so a pooled PreparedQuery retains nothing.
func (pq *PreparedQuery) Reset() { *pq = PreparedQuery{pivot: -1} }

// Store returns the bound ciphertext store (nil before PrepareQuery).
func (pq *PreparedQuery) Store() *CiphertextStore { return pq.store }

// Trapdoor returns the bound raw trapdoor vector.
func (pq *PreparedQuery) Trapdoor() []float64 { return pq.q }

// Comp evaluates Z_{o,p,q} for records o and p, bit-identical to
// DistanceCompQ on the bound store.
func (pq *PreparedQuery) Comp(o, p int) float64 {
	return pq.store.DistanceCompQ(o, p, pq.q)
}

// Closer reports whether dist(o, q) < dist(p, q).
func (pq *PreparedQuery) Closer(o, p int) bool { return pq.Comp(o, p) < 0 }

// SetPivot hoists record o's "o"-side operand views so subsequent
// CompWithPivot/DistanceCompBlock calls skip the per-call slicing.
func (pq *PreparedQuery) SetPivot(o int) {
	d := pq.store.ctDim
	o12 := pq.store.O12(o)
	pq.pivot = o
	pq.o1, pq.o2 = o12[:d], o12[d:]
}

// Pivot returns the current pivot record id (-1 when unset).
func (pq *PreparedQuery) Pivot() int { return pq.pivot }

// CompWithPivot evaluates Z_{pivot,p,q}, bit-identical to
// DistanceCompQ(pivot, p, q).
func (pq *PreparedQuery) CompWithPivot(p int) float64 {
	d := pq.store.ctDim
	p34 := pq.store.P34(p)
	return distCompKernel(pq.o1, pq.o2, p34[:d], p34[d:], pq.q)
}

// DistanceCompBlock evaluates dst[j] = Z_{pivot, ids[j], q} for every id in
// one pass over the arena, reusing dst's capacity. The whole block runs
// inside one dispatched kernel call — every variant matches the scalar
// reference element-for-element, so results are bit-identical to per-id
// DistanceCompQ calls; the blocked form amortizes the pivot setup and
// keeps the trapdoor and pivot operands hot (in YMM registers on the AVX2
// variant) across the whole candidate list — the shape the blocked refine
// tile and a DCE-walked neighbor evaluation want (one kernel call per
// gathered list instead of one per neighbor).
func (pq *PreparedQuery) DistanceCompBlock(dst []float64, ids []int32) []float64 {
	if pq.pivot < 0 {
		panic("dce: DistanceCompBlock without SetPivot")
	}
	if cap(dst) < len(ids) {
		dst = make([]float64, len(ids), len(ids)+len(ids)/2+8)
	} else {
		dst = dst[:len(ids)]
	}
	s := pq.store
	activeKernels.Load().distCompBlock(dst, s.arena, s.strideF, s.ctDim, pq.o1, pq.o2, pq.q, ids)
	return dst
}
