//go:build amd64

#include "textflag.h"

// AVX2 DCE comparison kernels. Register conventions shared by all three
// functions: SI/DI hold the "o" side (o1/o2 or s1/s2), R8/R9 the "p" side
// (p3/p4), R10 the trapdoor q, CX the element index, DX the element count,
// BX = DX-8 the vector-loop bound. Y0/Y1 are the lane 0..3 / 4..7
// accumulators. Per-lane op order matches the scalar reference exactly:
// (o1·p3), (o2·p4), subtract, (·q), accumulate — no FMA.
//
// Note Go assembler operand order: "VSUBPD A, B, C" computes C = B - A.

// DC8 accumulates one 4-lane group of (o1·p3 − o2·p4)·q at byte offset off,
// clobbering Y2..Y6.
#define DC8(off, acc) \
	VMOVUPD off(SI)(CX*8), Y2  \
	VMOVUPD off(R8)(CX*8), Y3  \
	VMULPD  Y3, Y2, Y2         \
	VMOVUPD off(DI)(CX*8), Y4  \
	VMOVUPD off(R9)(CX*8), Y5  \
	VMULPD  Y5, Y4, Y4         \
	VSUBPD  Y4, Y2, Y2         \
	VMOVUPD off(R10)(CX*8), Y6 \
	VMULPD  Y6, Y2, Y2         \
	VADDPD  Y2, acc, acc

// DCTAILSTEP folds element CX of (o1·p3 − o2·p4)·q into lane 0 (X0),
// clobbering X6..X9.
#define DCTAILSTEP \
	VMOVSD (SI)(CX*8), X6  \
	VMOVSD (R8)(CX*8), X7  \
	VMULSD X7, X6, X6      \
	VMOVSD (DI)(CX*8), X8  \
	VMOVSD (R9)(CX*8), X9  \
	VMULSD X9, X8, X8      \
	VSUBSD X8, X6, X6      \
	VMOVSD (R10)(CX*8), X7 \
	VMULSD X7, X6, X6      \
	VADDSD X6, X0, X0

// SC8 accumulates one 4-lane group of s1·p3 − s2·p4, clobbering Y2..Y5.
#define SC8(off, acc) \
	VMOVUPD off(SI)(CX*8), Y2 \
	VMOVUPD off(R8)(CX*8), Y3 \
	VMULPD  Y3, Y2, Y2        \
	VMOVUPD off(DI)(CX*8), Y4 \
	VMOVUPD off(R9)(CX*8), Y5 \
	VMULPD  Y5, Y4, Y4        \
	VSUBPD  Y4, Y2, Y2        \
	VADDPD  Y2, acc, acc

// SCTAILSTEP folds element CX of s1·p3 − s2·p4 into lane 0 (X0),
// clobbering X6..X9.
#define SCTAILSTEP \
	VMOVSD (SI)(CX*8), X6 \
	VMOVSD (R8)(CX*8), X7 \
	VMULSD X7, X6, X6     \
	VMOVSD (DI)(CX*8), X8 \
	VMOVSD (R9)(CX*8), X9 \
	VMULSD X9, X8, X8     \
	VSUBSD X8, X6, X6     \
	VADDSD X6, X0, X0

// REDUCE8 runs the reduce8 tree assuming X0=[s0,s1] (tail folded),
// X1=[s4,s5], X2=[s2,s3], X3=[s6,s7]; result lands in X0 lane 0.
#define REDUCE8 \
	VADDPD    X1, X0, X0 \
	VADDPD    X3, X2, X2 \
	VADDPD    X2, X0, X0 \
	VUNPCKHPD X0, X0, X1 \
	VADDSD    X1, X0, X0

// func distCompPairAVX2(o1, o2, p3, p4, q []float64) float64
TEXT ·distCompPairAVX2(SB), NOSPLIT, $0-128
	MOVQ   o1_base+0(FP), SI
	MOVQ   o2_base+24(FP), DI
	MOVQ   p3_base+48(FP), R8
	MOVQ   p4_base+72(FP), R9
	MOVQ   q_base+96(FP), R10
	MOVQ   q_len+104(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ   CX, CX
	MOVQ   DX, BX
	SUBQ   $8, BX

dcloop:
	CMPQ CX, BX
	JG   dctail
	DC8(0, Y0)
	DC8(32, Y1)
	ADDQ $8, CX
	JMP  dcloop

dctail:
	VEXTRACTF128 $1, Y0, X2
	VEXTRACTF128 $1, Y1, X3

dctailloop:
	CMPQ CX, DX
	JGE  dcreduce
	DCTAILSTEP
	INCQ CX
	JMP  dctailloop

dcreduce:
	REDUCE8
	VMOVSD     X0, ret+120(FP)
	VZEROUPPER
	RET

// func distCompBlockAVX2(dst, arena []float64, stride, d int, o1, o2, q []float64, ids []int32)
TEXT ·distCompBlockAVX2(SB), NOSPLIT, $0-160
	MOVQ dst_base+0(FP), R14
	MOVQ arena_base+24(FP), R15
	MOVQ stride+48(FP), R11
	SHLQ $3, R11                 // stride in bytes
	MOVQ d+56(FP), DX
	MOVQ o1_base+64(FP), SI
	MOVQ o2_base+88(FP), DI
	MOVQ q_base+112(FP), R10
	MOVQ ids_base+136(FP), R12
	MOVQ ids_len+144(FP), R13
	MOVQ DX, BX
	SUBQ $8, BX
	XORQ AX, AX                  // j

dbrows:
	CMPQ    AX, R13
	JGE     dbdone
	MOVLQSX (R12)(AX*4), R8      // id (int32, sign-extended)
	IMULQ   R11, R8
	ADDQ    R15, R8              // record base
	MOVQ    DX, R9
	SHLQ    $4, R9               // 2·d·8 bytes
	ADDQ    R9, R8               // p3 = arena + id*stride + 2d
	MOVQ    DX, R9
	SHLQ    $3, R9
	ADDQ    R8, R9               // p4 = p3 + d
	VXORPD  Y0, Y0, Y0
	VXORPD  Y1, Y1, Y1
	XORQ    CX, CX

dbloop:
	CMPQ CX, BX
	JG   dbtail
	DC8(0, Y0)
	DC8(32, Y1)
	ADDQ $8, CX
	JMP  dbloop

dbtail:
	VEXTRACTF128 $1, Y0, X2
	VEXTRACTF128 $1, Y1, X3

dbtailloop:
	CMPQ CX, DX
	JGE  dbreduce
	DCTAILSTEP
	INCQ CX
	JMP  dbtailloop

dbreduce:
	REDUCE8
	VMOVSD X0, (R14)(AX*8)
	INCQ   AX
	JMP    dbrows

dbdone:
	VZEROUPPER
	RET

// func scaledCompPairAVX2(s1, s2, p3, p4 []float64) float64
TEXT ·scaledCompPairAVX2(SB), NOSPLIT, $0-104
	MOVQ   s1_base+0(FP), SI
	MOVQ   s1_len+8(FP), DX
	MOVQ   s2_base+24(FP), DI
	MOVQ   p3_base+48(FP), R8
	MOVQ   p4_base+72(FP), R9
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ   CX, CX
	MOVQ   DX, BX
	SUBQ   $8, BX

scloop:
	CMPQ CX, BX
	JG   sctail
	SC8(0, Y0)
	SC8(32, Y1)
	ADDQ $8, CX
	JMP  scloop

sctail:
	VEXTRACTF128 $1, Y0, X2
	VEXTRACTF128 $1, Y1, X3

sctailloop:
	CMPQ CX, DX
	JGE  screduce
	SCTAILSTEP
	INCQ CX
	JMP  sctailloop

screduce:
	REDUCE8
	VMOVSD     X0, ret+96(FP)
	VZEROUPPER
	RET
