package dce

import (
	"math"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// storeWorld builds a key, a store of n encrypted Gaussian vectors, the
// matching standalone ciphertexts, and one trapdoor.
func storeWorld(t *testing.T, dim, n int) (*Key, *CiphertextStore, []*Ciphertext, []float64, *Trapdoor) {
	t.Helper()
	r := rng.NewSeeded(101)
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	store := NewCiphertextStore(k.CiphertextDim(), n)
	cts := make([]*Ciphertext, n)
	for i := 0; i < n; i++ {
		v := rng.Gaussian(r, nil, dim)
		ct := k.Encrypt(v)
		cts[i] = ct
		if id := store.Append(ct); id != i {
			t.Fatalf("Append returned id %d, want %d", id, i)
		}
	}
	q := rng.Gaussian(r, nil, dim)
	return k, store, cts, q, k.TrapGen(q)
}

func TestStoreMatchesPointerDistanceComp(t *testing.T) {
	_, store, cts, _, tq := storeWorld(t, 13, 8)
	for o := 0; o < len(cts); o++ {
		for p := 0; p < len(cts); p++ {
			want := DistanceComp(cts[o], cts[p], tq)
			got := store.DistanceComp(o, p, tq)
			if got != want {
				t.Fatalf("store.DistanceComp(%d,%d) = %g, pointer API %g", o, p, got, want)
			}
		}
	}
}

func TestStoreViewsShareArena(t *testing.T) {
	_, store, cts, _, _ := storeWorld(t, 6, 3)
	view := store.View(1)
	for i := range view.P1 {
		if view.P1[i] != cts[1].P1[i] || view.P4[i] != cts[1].P4[i] {
			t.Fatalf("view component mismatch at %d", i)
		}
	}
	// Views alias the arena, not copies.
	store.Record(1)[0] = 42
	if view.P1[0] != 42 {
		t.Fatal("View does not alias the arena")
	}
	d := store.CtDim()
	o12, p34 := store.O12(1), store.P34(1)
	if len(o12) != 2*d || len(p34) != 2*d {
		t.Fatalf("half-view lengths %d/%d, want %d", len(o12), len(p34), 2*d)
	}
}

func TestStoreDeleteTombstones(t *testing.T) {
	_, store, _, _, _ := storeWorld(t, 5, 4)
	if store.Live() != 4 || store.Len() != 4 {
		t.Fatalf("fresh store live=%d len=%d", store.Live(), store.Len())
	}
	store.Delete(2)
	if store.Has(2) || store.Live() != 3 || store.Len() != 4 {
		t.Fatalf("after delete: has=%v live=%d len=%d", store.Has(2), store.Live(), store.Len())
	}
	for _, f := range store.Record(2) {
		if f != 0 {
			t.Fatal("deleted record not zeroed")
		}
	}
	if ct := store.View(2); ct.P1 != nil {
		t.Fatal("View of tombstone should be zero")
	}
	store.Delete(2) // idempotent
	store.Delete(99)
	store.Delete(-1)
	if store.Live() != 3 {
		t.Fatal("no-op deletes changed live count")
	}
}

func TestStoreScaledCompMatchesSign(t *testing.T) {
	_, store, _, _, tq := storeWorld(t, 17, 10)
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ops := store.ScaleOperands(nil, ids, tq.Q)
	st := 2 * store.CtDim()
	for a := range ids {
		for b := range ids {
			plain := store.DistanceComp(ids[a], ids[b], tq)
			scaled := store.ScaledComp(ops[a*st:(a+1)*st], ids[b])
			if math.Abs(plain-scaled) > 1e-6*(math.Abs(plain)+1) {
				t.Fatalf("scaled Z(%d,%d)=%g differs from plain %g", a, b, scaled, plain)
			}
		}
	}
	// Capacity reuse: a second call with enough capacity must not grow.
	ops2 := store.ScaleOperands(ops, ids[:4], tq.Q)
	if &ops2[0] != &ops[0] {
		t.Fatal("ScaleOperands reallocated despite sufficient capacity")
	}
}

func TestStoreSignAgainstPlainDistances(t *testing.T) {
	dim, n := 9, 12
	r := rng.NewSeeded(303)
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float64, n)
	store := NewCiphertextStoreN(k.CiphertextDim(), n)
	for i := range vecs {
		vecs[i] = rng.Gaussian(r, nil, dim)
		k.EncryptRecord(vecs[i], store.Record(i))
	}
	q := rng.Gaussian(r, nil, dim)
	tq := k.TrapGen(q)
	for o := 0; o < n; o++ {
		for p := 0; p < n; p++ {
			if o == p {
				continue
			}
			do, dp := vec.SqDist(vecs[o], q), vec.SqDist(vecs[p], q)
			if math.Abs(do-dp) < 1e-9 {
				continue
			}
			if got, want := store.DistanceComp(o, p, tq) < 0, do < dp; got != want {
				t.Fatalf("sign wrong for pair (%d,%d)", o, p)
			}
			if store.Closer(o, p, tq) != (do < dp) {
				t.Fatalf("Closer wrong for pair (%d,%d)", o, p)
			}
		}
	}
}

func TestStoreFromRawRoundTrip(t *testing.T) {
	_, store, _, _, tq := storeWorld(t, 7, 5)
	store.Delete(3)
	arena := append([]float64(nil), store.Raw()...)
	live := append([]bool(nil), store.LiveMask()...)
	clone, err := StoreFromRaw(store.CtDim(), arena, live)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Len() != store.Len() || clone.Live() != store.Live() || clone.CtDim() != store.CtDim() {
		t.Fatalf("clone shape %d/%d/%d, want %d/%d/%d",
			clone.Len(), clone.Live(), clone.CtDim(), store.Len(), store.Live(), store.CtDim())
	}
	if clone.DistanceComp(0, 1, tq) != store.DistanceComp(0, 1, tq) {
		t.Fatal("clone comparisons differ")
	}
	if _, err := StoreFromRaw(7, make([]float64, 10), make([]bool, 2)); err == nil {
		t.Fatal("expected error for mismatched arena length")
	}
	if _, err := StoreFromRaw(0, nil, nil); err == nil {
		t.Fatal("expected error for zero ctDim")
	}
}

func TestStoreAppendMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewCiphertextStore(8, 1)
	s.Append(&Ciphertext{P1: make([]float64, 3), P2: make([]float64, 8), P3: make([]float64, 8), P4: make([]float64, 8)})
}

func TestEncryptRecordMatchesEncrypt(t *testing.T) {
	// Encrypt draws fresh randomness per call, so byte equality is not
	// testable; instead check the record layout: Encrypt's components must
	// tile one backing array exactly like EncryptRecord's.
	r := rng.NewSeeded(77)
	k, err := KeyGen(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	ct := k.Encrypt(rng.Gaussian(r, nil, 10))
	big := k.CiphertextDim()
	if len(ct.P1) != big || len(ct.P2) != big || len(ct.P3) != big || len(ct.P4) != big {
		t.Fatalf("component lengths %d/%d/%d/%d, want %d", len(ct.P1), len(ct.P2), len(ct.P3), len(ct.P4), big)
	}
	store := NewCiphertextStoreN(big, 1)
	store.Record(0) // must not panic
	k.EncryptRecord(rng.Gaussian(r, nil, 10), store.Record(0))
	view := store.View(0)
	q := rng.Gaussian(r, nil, 10)
	tq := k.TrapGen(q)
	if store.DistanceComp(0, 0, tq) != DistanceComp(&view, &view, tq) {
		t.Fatal("record encryption disagrees with its own view")
	}
}

// TestSnapshotTombstone covers the copy-on-write store primitives behind
// core's snapshot publication: a Snapshot shares the arena but owns its
// liveness, and Tombstone drops a record from the live set without
// touching the shared bytes older snapshots may still be reading.
func TestSnapshotTombstone(t *testing.T) {
	const ctDim, n = 6, 5
	s := NewCiphertextStoreN(ctDim, n)
	for i := 0; i < n; i++ {
		rec := s.Record(i)
		for j := range rec {
			rec[j] = float64(i*100 + j + 1)
		}
	}

	snap := s.Snapshot()
	snap.Tombstone(3)
	if !s.Has(3) {
		t.Fatal("Tombstone on the snapshot leaked into the receiver")
	}
	if snap.Has(3) {
		t.Fatal("snapshot still reports the tombstoned id live")
	}
	if got, want := snap.Live(), s.Live()-1; got != want {
		t.Fatalf("snapshot Live = %d, want %d", got, want)
	}
	// The shared bytes are intact — that is the point of Tombstone.
	for j, v := range snap.Record(3) {
		if v != float64(3*100+j+1) {
			t.Fatalf("Tombstone zeroed shared arena byte %d", j)
		}
	}
	// Tombstoning a dead or out-of-range id is a no-op.
	snap.Tombstone(3)
	snap.Tombstone(99)
	if got, want := snap.Live(), n-1; got != want {
		t.Fatalf("no-op tombstones changed Live to %d, want %d", got, want)
	}

	// Appending to the snapshot must be invisible to the receiver.
	ct := &Ciphertext{
		P1: make([]float64, ctDim), P2: make([]float64, ctDim),
		P3: make([]float64, ctDim), P4: make([]float64, ctDim),
	}
	id := snap.Append(ct)
	if id != n {
		t.Fatalf("snapshot append landed at %d, want %d", id, n)
	}
	if s.Len() != n {
		t.Fatalf("append to the snapshot grew the receiver to %d", s.Len())
	}
	// A second-generation snapshot sees the first's state.
	snap2 := snap.Snapshot()
	if snap2.Len() != n+1 || snap2.Has(3) {
		t.Fatalf("second-generation snapshot inconsistent: len %d, Has(3) %v", snap2.Len(), snap2.Has(3))
	}
}

// TestDistanceCompHalves checks the cross-store comparison entry point
// agrees with the in-store kernel.
func TestDistanceCompHalves(t *testing.T) {
	const ctDim, n = 8, 4
	s := NewCiphertextStoreN(ctDim, n)
	for i := 0; i < n; i++ {
		rec := s.Record(i)
		for j := range rec {
			rec[j] = float64((i+1)*(j+2)) * 0.25
		}
	}
	q := make([]float64, ctDim)
	for j := range q {
		q[j] = float64(j+1) * 0.5
	}
	for o := 0; o < n; o++ {
		for p := 0; p < n; p++ {
			want := s.DistanceCompQ(o, p, q)
			got := DistanceCompHalves(s.O12(o), s.P34(p), q)
			if got != want {
				t.Fatalf("DistanceCompHalves(%d, %d) = %g, in-store %g", o, p, got, want)
			}
		}
	}
}
