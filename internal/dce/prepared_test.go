package dce

import (
	"testing"

	"ppanns/internal/rng"
)

// TestPreparedQueryBitIdentical is the property test of the prepared-query
// layer: across random dimensions (odd and even, so ciphertext strides
// vary) and random record pairs, Comp, CompWithPivot and DistanceCompBlock
// must return bit-identical values to the scalar DistanceCompQ — not
// approximately equal: the frozen search views rely on exchanging the
// kernels without reordering any comparison outcome.
func TestPreparedQueryBitIdentical(t *testing.T) {
	r := rng.NewSeeded(321)
	for _, dim := range []int{2, 3, 7, 16, 31, 96} {
		key, err := KeyGen(r, dim)
		if err != nil {
			t.Fatal(err)
		}
		const n = 24
		store := NewCiphertextStoreN(key.CiphertextDim(), n)
		for i := 0; i < n; i++ {
			key.EncryptRecord(rng.Gaussian(r, nil, dim), store.Record(i))
		}
		tq := key.TrapGen(rng.Gaussian(r, nil, dim))

		var pq PreparedQuery
		if err := store.PrepareQuery(&pq, tq.Q); err != nil {
			t.Fatal(err)
		}
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32((i * 7) % n)
		}
		var block []float64
		for o := 0; o < n; o += 3 {
			pq.SetPivot(o)
			block = pq.DistanceCompBlock(block[:0], ids)
			for j, id := range ids {
				want := store.DistanceCompQ(o, int(id), tq.Q)
				if got := pq.Comp(o, int(id)); got != want {
					t.Fatalf("dim=%d o=%d p=%d: Comp = %v, DistanceCompQ = %v", dim, o, id, got, want)
				}
				if got := pq.CompWithPivot(int(id)); got != want {
					t.Fatalf("dim=%d o=%d p=%d: CompWithPivot = %v, DistanceCompQ = %v", dim, o, id, got, want)
				}
				if block[j] != want {
					t.Fatalf("dim=%d o=%d p=%d: DistanceCompBlock = %v, DistanceCompQ = %v", dim, o, id, block[j], want)
				}
				// And the sign agrees with the pointer-API ground truth.
				view1, view2 := store.View(o), store.View(int(id))
				if (DistanceComp(&view1, &view2, tq) < 0) != (want < 0) {
					t.Fatalf("dim=%d o=%d p=%d: arena and pointer kernels disagree on sign", dim, o, id)
				}
			}
		}
	}
}

func TestPrepareQueryValidatesDimension(t *testing.T) {
	r := rng.NewSeeded(322)
	key, err := KeyGen(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	store := NewCiphertextStoreN(key.CiphertextDim(), 1)
	key.EncryptRecord(rng.Gaussian(r, nil, 8), store.Record(0))
	var pq PreparedQuery
	if err := store.PrepareQuery(&pq, make([]float64, key.CiphertextDim()-1)); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := store.PrepareQuery(&pq, make([]float64, key.CiphertextDim())); err != nil {
		t.Fatal(err)
	}
	pq.Reset()
	if pq.Store() != nil || pq.Trapdoor() != nil || pq.Pivot() != -1 {
		t.Fatal("Reset retained query material")
	}
}
