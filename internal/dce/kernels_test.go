package dce

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/simd"
	"ppanns/internal/vec"
)

// kernelTestDims covers every loop shape of the comparison kernels: pure
// tail, full groups, group+tail, and the even ctDims real stores produce
// (ctDim = 2·padDim+16 is always even), plus odd sizes for robustness.
var kernelTestDims = []int{1, 3, 7, 8, 9, 15, 16, 17, 48, 63, 64, 100, 208, 401, 960}

// dceULPDiff mirrors internal/vec's ULP metric; every linked variant
// reproduces the scalar summation order and must match at 0 ULP.
func dceULPDiff(a, b float64) uint64 {
	ai, bi := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	if ai < 0 {
		ai = math.MinInt64 - ai
	}
	if bi < 0 {
		bi = math.MinInt64 - bi
	}
	if ai > bi {
		return uint64(ai - bi)
	}
	return uint64(bi - ai)
}

func dceRandFloats(r *rng.Rand, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (r.Float64() - 0.5) * scale
	}
	return out
}

// TestDCEKernelVariantsBitIdentical compares every linked variant's three
// kernels against the scalar references across all loop shapes, unaligned
// slice offsets, and a padded arena with shuffled, duplicated ids.
func TestDCEKernelVariantsBitIdentical(t *testing.T) {
	r := rng.NewSeeded(431)
	for _, k := range kernelVariants {
		if k.name == simd.Scalar {
			continue
		}
		t.Run(k.name, func(t *testing.T) {
			for _, d := range kernelTestDims {
				for off := 0; off < 4; off++ {
					o1 := dceRandFloats(r, d+off, 20)[off:]
					o2 := dceRandFloats(r, d+off, 20)[off:]
					p3 := dceRandFloats(r, d+off, 20)[off:]
					p4 := dceRandFloats(r, d+off, 20)[off:]
					q := dceRandFloats(r, d+off, 20)[off:]
					want := distCompScalar(o1, o2, p3, p4, q)
					if got := k.distComp(o1, o2, p3, p4, q); dceULPDiff(got, want) > 0 {
						t.Fatalf("distComp d=%d off=%d: %v vs scalar %v", d, off, got, want)
					}
					wantS := scaledCompScalar(o1, o2, p3, p4)
					if got := k.scaledComp(o1, o2, p3, p4); dceULPDiff(got, wantS) > 0 {
						t.Fatalf("scaledComp d=%d off=%d: %v vs scalar %v", d, off, got, wantS)
					}
				}
				// Block form over a padded arena laid out like the store:
				// records of [P1|P2|P3|P4] at a 64-byte-padded stride.
				stride := vec.PadStride(4 * d)
				rows := 11
				arena := vec.AlignedFloats(stride * rows)
				for i := range arena {
					arena[i] = (r.Float64() - 0.5) * 20
				}
				o1 := dceRandFloats(r, d, 20)
				o2 := dceRandFloats(r, d, 20)
				q := dceRandFloats(r, d, 20)
				ids := []int32{0, 10, 4, 4, 7, 1, 10, 0, 3}
				want := make([]float64, len(ids))
				got := make([]float64, len(ids))
				distCompBlockScalar(want, arena, stride, d, o1, o2, q, ids)
				k.distCompBlock(got, arena, stride, d, o1, o2, q, ids)
				for j := range ids {
					if dceULPDiff(got[j], want[j]) > 0 {
						t.Fatalf("distCompBlock d=%d id=%d: %v vs scalar %v", d, ids[j], got[j], want[j])
					}
				}
			}
		})
	}
}

// TestDCEKernelDispatchPublicSurface forces each variant through SetKernel
// and drives the public comparison surface — DistanceCompQ, the prepared
// pair and pivot paths, DistanceCompBlock, and the precomputed-operand
// ScaledComp — asserting bit-identical results across variants.
func TestDCEKernelDispatchPublicSurface(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	_, store, _, _, tq := storeWorld(t, 13, 9)
	cands := []int{0, 5, 2, 8, 2, 7}
	type obs struct {
		pair, pivot, scaled float64
		block               []float64
	}
	observe := func() obs {
		var pq PreparedQuery
		if err := store.PrepareQuery(&pq, tq.Q); err != nil {
			t.Fatal(err)
		}
		pq.SetPivot(3)
		ids := make([]int32, len(cands))
		for i, id := range cands {
			ids[i] = int32(id)
		}
		ops := store.ScaleOperands(nil, cands, tq.Q)
		st := 2 * store.CtDim()
		return obs{
			pair:   store.DistanceCompQ(1, 6, tq.Q),
			pivot:  pq.CompWithPivot(5),
			scaled: store.ScaledComp(ops[0:st], cands[1]),
			block:  pq.DistanceCompBlock(nil, ids),
		}
	}
	if err := SetKernel(simd.Scalar); err != nil {
		t.Fatal(err)
	}
	want := observe()
	// The blocked path must agree with per-pair calls on the same variant.
	var pq PreparedQuery
	if err := store.PrepareQuery(&pq, tq.Q); err != nil {
		t.Fatal(err)
	}
	pq.SetPivot(3)
	for j, id := range cands {
		if want.block[j] != pq.Comp(3, id) {
			t.Fatalf("scalar block[%d] %v != pair %v", j, want.block[j], pq.Comp(3, id))
		}
	}
	for _, name := range KernelVariants() {
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		got := observe()
		if got.pair != want.pair || got.pivot != want.pivot || got.scaled != want.scaled {
			t.Fatalf("%s: pair/pivot/scaled %v/%v/%v, want %v/%v/%v",
				name, got.pair, got.pivot, got.scaled, want.pair, want.pivot, want.scaled)
		}
		for j := range want.block {
			if got.block[j] != want.block[j] {
				t.Fatalf("%s: block[%d] = %v, want %v", name, j, got.block[j], want.block[j])
			}
		}
	}
	if err := SetKernel("no-such-kernel"); err == nil {
		t.Fatal("SetKernel accepted an unknown variant")
	}
}

// TestStoreArenaAlignment pins the layout satellite: the record stride is
// padded to a 64-byte boundary, the arena base is cache-line aligned, so
// every record starts on a cache line; and the padding stays out of the
// wire format (Raw returns the compact logical layout).
func TestStoreArenaAlignment(t *testing.T) {
	for _, dim := range []int{3, 6, 13, 96} {
		r := rng.NewSeeded(uint64(433 + dim))
		k, err := KeyGen(r, dim)
		if err != nil {
			t.Fatal(err)
		}
		store := NewCiphertextStore(k.CiphertextDim(), 3)
		for i := 0; i < 5; i++ {
			store.Append(k.Encrypt(rng.Gaussian(r, nil, dim)))
		}
		if store.Stride()%8 != 0 {
			t.Fatalf("dim %d: stride %d not a multiple of 8 floats", dim, store.Stride())
		}
		if store.Stride() != vec.PadStride(4*store.CtDim()) {
			t.Fatalf("dim %d: stride %d, want %d", dim, store.Stride(), vec.PadStride(4*store.CtDim()))
		}
		for id := 0; id < store.Len(); id++ {
			if !vec.Aligned(store.Record(id)) {
				t.Fatalf("dim %d: record %d base not 64-byte aligned", dim, id)
			}
		}
		// The compact wire layout is stride-free: exactly 4·ctDim floats per
		// record, round-tripping through StoreFromRaw bit-for-bit.
		raw := store.Raw()
		if len(raw) != 4*store.CtDim()*store.Len() {
			t.Fatalf("dim %d: Raw len %d, want %d", dim, len(raw), 4*store.CtDim()*store.Len())
		}
		back, err := StoreFromRaw(store.CtDim(), append([]float64(nil), raw...), append([]bool(nil), store.LiveMask()...))
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < store.Len(); id++ {
			a, b := store.Record(id), back.Record(id)
			for c := range a {
				if a[c] != b[c] {
					t.Fatalf("dim %d: record %d differs after raw round trip", dim, id)
				}
			}
		}
	}
}

// TestDCEKernelRegistryShape mirrors internal/vec's registry invariants.
func TestDCEKernelRegistryShape(t *testing.T) {
	names := KernelVariants()
	if len(names) == 0 || names[0] != simd.Scalar {
		t.Fatalf("variants = %v, want scalar first", names)
	}
	if simd.HasAVX2() {
		found := false
		for _, n := range names {
			found = found || n == simd.AVX2
		}
		if !found {
			t.Fatal("CPU supports AVX2 but the variant is not registered")
		}
	}
}

// TestDCESetKernelConcurrent flips dispatch under concurrent comparisons;
// exists for the -race build.
func TestDCESetKernelConcurrent(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	_, store, _, _, tq := storeWorld(t, 8, 4)
	want := store.DistanceCompQ(0, 3, tq.Q)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := store.DistanceCompQ(0, 3, tq.Q); got != want {
					panic(fmt.Sprintf("dispatch produced %v, want %v", got, want))
				}
			}
		}()
	}
	variants := KernelVariants()
	for i := 0; i < 200; i++ {
		if err := SetKernel(variants[i%len(variants)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkDistCompKernels measures the pair kernel per variant at the
// paper's padded-SIFT ctDim and a small dimension.
func BenchmarkDistCompKernels(b *testing.B) {
	r := rng.NewSeeded(437)
	for _, d := range []int{96, 208} {
		o1 := dceRandFloats(r, d, 20)
		o2 := dceRandFloats(r, d, 20)
		p3 := dceRandFloats(r, d, 20)
		p4 := dceRandFloats(r, d, 20)
		q := dceRandFloats(r, d, 20)
		for _, k := range kernelVariants {
			b.Run(fmt.Sprintf("%s/d=%d", k.name, d), func(b *testing.B) {
				b.ReportAllocs()
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += k.distComp(o1, o2, p3, p4, q)
				}
				_ = sink
			})
		}
	}
}

// BenchmarkDistCompBlockKernels measures the blocked kernel per variant
// over a padded arena at the refine phase's typical candidate-list size.
func BenchmarkDistCompBlockKernels(b *testing.B) {
	r := rng.NewSeeded(439)
	for _, d := range []int{96, 208} {
		stride := vec.PadStride(4 * d)
		const rows = 256
		arena := vec.AlignedFloats(stride * rows)
		for i := range arena {
			arena[i] = r.Float64()
		}
		o1 := dceRandFloats(r, d, 20)
		o2 := dceRandFloats(r, d, 20)
		q := dceRandFloats(r, d, 20)
		ids := make([]int32, 64)
		for i := range ids {
			ids[i] = int32((i * 37) % rows)
		}
		dst := make([]float64, len(ids))
		for _, k := range kernelVariants {
			b.Run(fmt.Sprintf("%s/d=%d", k.name, d), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(ids) * 2 * d * 8))
				for i := 0; i < b.N; i++ {
					k.distCompBlock(dst, arena, stride, d, o1, o2, q, ids)
				}
			})
		}
	}
}

// BenchmarkScaledCompKernels measures the precomputed-operand kernel per
// variant.
func BenchmarkScaledCompKernels(b *testing.B) {
	r := rng.NewSeeded(441)
	const d = 208
	s1 := dceRandFloats(r, d, 20)
	s2 := dceRandFloats(r, d, 20)
	p3 := dceRandFloats(r, d, 20)
	p4 := dceRandFloats(r, d, 20)
	for _, k := range kernelVariants {
		b.Run(fmt.Sprintf("%s/d=%d", k.name, d), func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += k.scaledComp(s1, s2, p3, p4)
			}
			_ = sink
		})
	}
}
