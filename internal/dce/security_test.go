package dce

import (
	"math"
	"sort"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// These tests are empirical companions to the Section VI security analysis:
// they check that the observable distributions a curious server sees do not
// separate chosen plaintexts by first-order statistics. They are sanity
// probes, not proofs — the IND-KPA argument is the paper's Theorem 4.

// componentMoments summarizes one ciphertext component.
func componentMoments(v []float64) (mean, sd float64) {
	var sum, sumSq float64
	for _, x := range v {
		sum += x
		sumSq += x * x
	}
	n := float64(len(v))
	mean = sum / n
	sd = math.Sqrt(math.Max(0, sumSq/n-mean*mean))
	return
}

// TestChosenPlaintextMomentsOverlap encrypts two adversarially different
// plaintexts many times and checks their per-encryption component means
// interleave (no threshold on the mean separates them).
func TestChosenPlaintextMomentsOverlap(t *testing.T) {
	r := rng.NewSeeded(201)
	dim := 16
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	pa := vec.Ones(dim)                     // all +1
	pb := vec.Scale(nil, -1, vec.Ones(dim)) // all −1
	const trials = 64
	meansA := make([]float64, trials)
	meansB := make([]float64, trials)
	for i := 0; i < trials; i++ {
		ma, _ := componentMoments(k.Encrypt(pa).P1)
		mb, _ := componentMoments(k.Encrypt(pb).P1)
		meansA[i], meansB[i] = ma, mb
	}
	// A perfect classifier would fully order one set above the other.
	// Require substantial interleaving: the best threshold should
	// misclassify a healthy fraction.
	all := append(append([]float64(nil), meansA...), meansB...)
	sort.Float64s(all)
	bestAcc := 0.0
	for _, thr := range all {
		correct := 0
		for _, m := range meansA {
			if m <= thr {
				correct++
			}
		}
		for _, m := range meansB {
			if m > thr {
				correct++
			}
		}
		acc := float64(correct) / float64(2*trials)
		if acc < 0.5 {
			acc = 1 - acc
		}
		if acc > bestAcc {
			bestAcc = acc
		}
	}
	if bestAcc > 0.8 {
		t.Fatalf("a mean-threshold classifier separates chosen plaintexts with accuracy %.2f", bestAcc)
	}
}

// TestTrapdoorMagnitudeHidesQueryNorm checks that trapdoor norms do not
// monotonically track query norms (r_q and the β randomness should mask
// them).
func TestTrapdoorMagnitudeHidesQueryNorm(t *testing.T) {
	r := rng.NewSeeded(202)
	dim := 16
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	// Queries with strictly increasing norms.
	var norms, tnorms []float64
	for i := 1; i <= 24; i++ {
		q := vec.Scale(nil, float64(i)*0.25, vec.Ones(dim))
		norms = append(norms, vec.Norm(q))
		tnorms = append(tnorms, vec.Norm(k.TrapGen(q).Q))
	}
	// Spearman-style check: count discordant pairs; a perfect leak would
	// have none.
	discordant, total := 0, 0
	for i := 0; i < len(norms); i++ {
		for j := i + 1; j < len(norms); j++ {
			total++
			if (norms[i] < norms[j]) != (tnorms[i] < tnorms[j]) {
				discordant++
			}
		}
	}
	if discordant < total/10 {
		t.Fatalf("trapdoor norms track query norms too faithfully: %d/%d discordant", discordant, total)
	}
}

// TestZValuesCarryPerPairRandomness: the observable Z_{o,p,q} must not be a
// deterministic function of the distance gap — re-encrypting the same pair
// must yield different Z magnitudes (only the sign is stable).
func TestZValuesCarryPerPairRandomness(t *testing.T) {
	r := rng.NewSeeded(203)
	dim := 12
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	o := rng.Gaussian(r, nil, dim)
	p := rng.Gaussian(r, nil, dim)
	q := rng.Gaussian(r, nil, dim)
	tq := k.TrapGen(q)
	zs := make([]float64, 16)
	for i := range zs {
		zs[i] = DistanceComp(k.Encrypt(o), k.Encrypt(p), tq)
	}
	sign := zs[0] > 0
	spread := 0.0
	for _, z := range zs {
		if (z > 0) != sign {
			t.Fatal("sign unstable across re-encryptions")
		}
		ratio := z / zs[0]
		if d := math.Abs(ratio - 1); d > spread {
			spread = d
		}
	}
	if spread < 0.05 {
		t.Fatalf("Z magnitudes nearly deterministic (max ratio deviation %.4f); r_o/r_p randomness missing", spread)
	}
}

// TestCiphertextComponentsUncorrelatedWithPlaintext: correlation between a
// plaintext coordinate and any fixed ciphertext coordinate across many
// random plaintexts should be statistically indistinguishable from noise.
func TestCiphertextComponentsUncorrelatedWithPlaintext(t *testing.T) {
	r := rng.NewSeeded(204)
	dim := 8
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 400
	xs := make([]float64, samples) // plaintext coordinate 0
	ys := make([]float64, samples) // ciphertext P1 coordinate 0
	for i := 0; i < samples; i++ {
		p := rng.Gaussian(r, nil, dim)
		xs[i] = p[0]
		ys[i] = k.Encrypt(p).P1[0]
	}
	corr := pearson(xs, ys)
	// Null-hypothesis bound ≈ 3/√samples ≈ 0.15; allow slack since P1 is
	// a linear function of all coordinates divided by key values — any
	// single-coordinate correlation should still drown in randomness.
	if math.Abs(corr) > 0.35 {
		t.Fatalf("plaintext↔ciphertext coordinate correlation %.3f too strong", corr)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
