//go:build !amd64

package dce

// Non-amd64 builds dispatch only the portable scalar reference; a NEON
// variant registers itself here when one lands.
