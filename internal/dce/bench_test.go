package dce

import (
	"fmt"
	"testing"

	"ppanns/internal/rng"
)

// benchSink defeats dead-code elimination of benchmarked comparisons.
var benchSink float64

// scatteredCiphertext rebuilds ct with four separately allocated component
// slices — the pre-arena memory layout, kept here as the benchmark
// baseline the flat store is measured against.
func scatteredCiphertext(ct *Ciphertext) *Ciphertext {
	return &Ciphertext{
		P1: append([]float64(nil), ct.P1...),
		P2: append([]float64(nil), ct.P2...),
		P3: append([]float64(nil), ct.P3...),
		P4: append([]float64(nil), ct.P4...),
	}
}

// naiveDistanceComp is the seed implementation of DistanceComp — a
// straight-line loop with no unrolling — kept as the kernel baseline.
func naiveDistanceComp(co, cp *Ciphertext, tq *Trapdoor) float64 {
	q := tq.Q
	var z float64
	o1, o2 := co.P1, co.P2
	p3, p4 := cp.P3, cp.P4
	for i, qv := range q {
		z += (o1[i]*p3[i] - o2[i]*p4[i]) * qv
	}
	return z
}

// BenchmarkDistanceComp compares one secure comparison across layouts and
// kernels: the seed's naive loop over pointer-per-ciphertext scattered
// components (the old hot path), the unrolled kernel on the same scattered
// layout, the flat arena store, and the arena with trapdoor-scaled
// operands precomputed.
func BenchmarkDistanceComp(b *testing.B) {
	for _, dim := range []int{96, 128, 960} {
		r := rng.NewSeeded(41)
		key, err := KeyGen(r, dim)
		if err != nil {
			b.Fatal(err)
		}
		const nPoints = 256 // enough records that repeated pairs don't all sit in L1
		store := NewCiphertextStoreN(key.CiphertextDim(), nPoints)
		scattered := make([]*Ciphertext, nPoints)
		for i := 0; i < nPoints; i++ {
			key.EncryptRecord(rng.Gaussian(r, nil, dim), store.Record(i))
			view := store.View(i)
			scattered[i] = scatteredCiphertext(&view)
		}
		tq := key.TrapGen(rng.Gaussian(r, nil, dim))
		ids := make([]int, nPoints)
		for i := range ids {
			ids[i] = i
		}
		ops := store.ScaleOperands(nil, ids, tq.Q)
		st := 2 * store.CtDim()

		// Every variant accumulates into the sink so the compiler cannot
		// elide the comparison after inlining.
		b.Run(fmt.Sprintf("pointer-naive/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			var z float64
			for i := 0; i < b.N; i++ {
				o, p := i%nPoints, (i*7+1)%nPoints
				z += naiveDistanceComp(scattered[o], scattered[p], tq)
			}
			benchSink = z
		})
		b.Run(fmt.Sprintf("pointer/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			var z float64
			for i := 0; i < b.N; i++ {
				o, p := i%nPoints, (i*7+1)%nPoints
				z += DistanceComp(scattered[o], scattered[p], tq)
			}
			benchSink = z
		})
		b.Run(fmt.Sprintf("arena/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			var z float64
			for i := 0; i < b.N; i++ {
				o, p := i%nPoints, (i*7+1)%nPoints
				z += store.DistanceComp(o, p, tq)
			}
			benchSink = z
		})
		b.Run(fmt.Sprintf("arena-scaled/d=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			var z float64
			for i := 0; i < b.N; i++ {
				o, p := i%nPoints, (i*7+1)%nPoints
				z += store.ScaledComp(ops[o*st:(o+1)*st], p)
			}
			benchSink = z
		})
	}
}

// BenchmarkEncrypt measures per-vector encryption into a fresh ciphertext
// vs in place into an arena record.
func BenchmarkEncrypt(b *testing.B) {
	const dim = 128
	r := rng.NewSeeded(43)
	key, err := KeyGen(r, dim)
	if err != nil {
		b.Fatal(err)
	}
	v := rng.Gaussian(r, nil, dim)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			key.Encrypt(v)
		}
	})
	b.Run("record", func(b *testing.B) {
		rec := make([]float64, 4*key.CiphertextDim())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key.EncryptRecord(v, rec)
		}
	})
}

// Kernel microbenchmarks of the prepared-query layer, run by the CI
// bench-smoke job: one scalar comparison per call, the same comparison
// through a PreparedQuery, and a whole candidate block per call.
func BenchmarkDistCompScalar(b *testing.B) {
	benchPrepared(b, func(b *testing.B, store *CiphertextStore, pq *PreparedQuery, ids []int32) {
		q := pq.Trapdoor()
		var z float64
		for i := 0; i < b.N; i++ {
			z += store.DistanceCompQ(int(ids[i%len(ids)]), int(ids[(i*7+1)%len(ids)]), q)
		}
		benchSink = z
	})
}

func BenchmarkDistCompPreparedQuery(b *testing.B) {
	benchPrepared(b, func(b *testing.B, store *CiphertextStore, pq *PreparedQuery, ids []int32) {
		pq.SetPivot(int(ids[0]))
		var z float64
		for i := 0; i < b.N; i++ {
			z += pq.CompWithPivot(int(ids[(i*7+1)%len(ids)]))
		}
		benchSink = z
	})
}

func BenchmarkDistCompBlock(b *testing.B) {
	benchPrepared(b, func(b *testing.B, store *CiphertextStore, pq *PreparedQuery, ids []int32) {
		pq.SetPivot(int(ids[0]))
		var dst []float64
		var z float64
		b.ResetTimer()
		for i := 0; i < b.N; i += len(ids) {
			dst = pq.DistanceCompBlock(dst[:0], ids)
			z += dst[0]
		}
		benchSink = z
	})
}

func benchPrepared(b *testing.B, run func(*testing.B, *CiphertextStore, *PreparedQuery, []int32)) {
	for _, dim := range []int{96, 960} {
		b.Run(fmt.Sprintf("d=%d", dim), func(b *testing.B) {
			r := rng.NewSeeded(44)
			key, err := KeyGen(r, dim)
			if err != nil {
				b.Fatal(err)
			}
			const nPoints = 256
			store := NewCiphertextStoreN(key.CiphertextDim(), nPoints)
			for i := 0; i < nPoints; i++ {
				key.EncryptRecord(rng.Gaussian(r, nil, dim), store.Record(i))
			}
			tq := key.TrapGen(rng.Gaussian(r, nil, dim))
			var pq PreparedQuery
			if err := store.PrepareQuery(&pq, tq.Q); err != nil {
				b.Fatal(err)
			}
			ids := make([]int32, nPoints)
			for i := range ids {
				ids[i] = int32(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			run(b, store, &pq, ids)
		})
	}
}
