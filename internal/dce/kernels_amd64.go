//go:build amd64

package dce

import "ppanns/internal/simd"

// The assembly kernels replicate the scalar references lane-for-lane (see
// kernels.go): two YMM accumulators carry lanes 0..3 and 4..7, the
// remainder folds into lane 0 with scalar VEX ops, and the reduction runs
// the reduce8 tree. No FMA — fused rounding would break bit-identity with
// the reference, and a rounding difference here can flip a comparison sign
// on a near-tie.

//go:noescape
func distCompPairAVX2(o1, o2, p3, p4, q []float64) float64

//go:noescape
func distCompBlockAVX2(dst, arena []float64, stride, d int, o1, o2, q []float64, ids []int32)

//go:noescape
func scaledCompPairAVX2(s1, s2, p3, p4 []float64) float64

var _ = func() struct{} {
	if !simd.HasAVX2() {
		return struct{}{}
	}
	return registerKernel(&kernelTable{
		name:          simd.AVX2,
		distComp:      distCompPairAVX2,
		distCompBlock: distCompBlockAVX2,
		scaledComp:    scaledCompPairAVX2,
	})
}()
