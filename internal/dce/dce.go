// Package dce implements Distance Comparison Encryption, the primary
// contribution of the paper (Section IV). DCE answers, over ciphertexts
// only, whether dist(o, q) < dist(p, q) — securely, exactly and in O(d) per
// comparison — without ever revealing a distance value.
//
// The scheme has four operations mirroring the paper:
//
//	KeyGen(1^ζ, d)            → Key
//	Enc(p, SK)                → Ciphertext  (database vectors)
//	TrapGen(q, SK)            → Trapdoor    (query vectors)
//	DistanceComp(Co, Cp, Tq)  → sign of dist(o,q) − dist(p,q)
//
// Encryption proceeds in two phases. Vector randomization (steps 1–4 of
// Section IV-A) maps p ∈ R^d to p̄ ∈ R^(d+8) such that p̄ᵀq̄ = ‖p‖² − 2pᵀq:
// a ± pairing transform, a shared random permutation π₁, a split into two
// halves padded with cancelling randomness, multiplication by secret
// invertible matrices M₁/M₂ and a second permutation π₂. Vector
// transformation (Equations 8–15) then hides p̄ behind the split halves of a
// secret matrix M₃ ∈ R^(2d+16)×(2d+16) and four key vectors kv₁..kv₄ with
// kv₁◦kv₃ = kv₂◦kv₄, yielding four ciphertext vectors per database point and
// one trapdoor vector per query.
//
// Correctness (Theorem 3): DistanceComp returns
// 2·r_o·r_p·r_q·(dist(o,q) − dist(p,q)) with all three r's positive, so the
// sign answers the comparison exactly (up to float64 rounding of genuinely
// tied distances).
package dce

import (
	"fmt"
	"sync"

	"ppanns/internal/matrix"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Randomizer value ranges. Per-vector randomness is drawn uniformly from
// ±[randLo, randHi) (scales: positive only), keeping every secret factor
// bounded away from zero so comparisons stay numerically well conditioned.
const (
	randLo = 0.5
	randHi = 2.0
)

// Key is the DCE secret key SK = {M₁, M₂, M₃, π₁, π₂, r₁..r₄, kv₁..kv₄}.
// It lives with the data owner (and, for trapdoor generation, the user);
// the server never sees it.
type Key struct {
	dim    int     // caller-facing dimension d
	padDim int     // d rounded up to the next even number
	half   int     // padDim/2
	scale  float64 // uniform input scaling (see KeyGenScaled)

	m1, m2         *matrix.Dense // (padDim/2+4)², used for database vectors
	m1Inv, m2Inv   *matrix.Dense // inverses, used for query vectors
	pi1            *rng.Permutation
	pi2            *rng.Permutation
	r1, r2, r3, r4 float64

	mup, mdown         *matrix.Dense // halves of M₃: (padDim+8)×(2·padDim+16)
	m3Inv              *matrix.Dense
	kv1, kv2, kv3, kv4 []float64
	kv24               []float64 // kv₂◦kv₄, precomputed for TrapGen

	mu  sync.Mutex
	rnd *rng.Rand
}

// KeyGen generates a DCE key for d-dimensional vectors using randomness
// from r (pass rng.NewCrypto() outside tests). It mirrors the paper's
// KeyGen(1^ζ, d); the security parameter is realized by the entropy of r.
func KeyGen(r *rng.Rand, dim int) (*Key, error) {
	return KeyGenScaled(r, dim, 1)
}

// KeyGenScaled is KeyGen with an explicit uniform input scale. Every vector
// is multiplied by scale before encryption; distance comparisons are
// invariant under uniform scaling, so correctness is unaffected, but keeping
// coordinates at O(1) magnitude preserves float64 headroom through the two
// cancellation steps of DistanceComp. Data owners should pass
// scale = 1/max|p_i| for raw-range data (the core scheme does).
func KeyGenScaled(r *rng.Rand, dim int, scale float64) (*Key, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("dce: non-positive dimension %d", dim)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("dce: non-positive input scale %g", scale)
	}
	pad := dim
	if pad%2 == 1 {
		pad++
	}
	k := &Key{dim: dim, padDim: pad, half: pad / 2, scale: scale, rnd: rng.Derive(r, 0xd0e)}

	sub := pad/2 + 4
	k.m1, k.m1Inv = matrix.RandomInvertible(r, sub)
	k.m2, k.m2Inv = matrix.RandomInvertible(r, sub)
	k.pi1 = rng.NewPermutation(r, pad)
	k.pi2 = rng.NewPermutation(r, pad+8)

	k.r1 = rng.UniformNonZero(r, randLo, randHi)
	k.r2 = rng.UniformNonZero(r, randLo, randHi)
	k.r3 = rng.UniformNonZero(r, randLo, randHi)
	k.r4 = rng.UniformNonZero(r, randLo, randHi)

	big := 2*pad + 16
	m3, m3Inv := matrix.RandomInvertible(r, big)
	k.mup = m3.SubMatrix(0, pad+8, 0, big)
	k.mdown = m3.SubMatrix(pad+8, big, 0, big)
	k.m3Inv = m3Inv

	k.kv1 = make([]float64, big)
	k.kv2 = make([]float64, big)
	k.kv3 = make([]float64, big)
	k.kv4 = make([]float64, big)
	for i := 0; i < big; i++ {
		k.kv1[i] = rng.UniformNonZero(r, randLo, randHi)
		k.kv2[i] = rng.UniformNonZero(r, randLo, randHi)
		k.kv3[i] = rng.UniformNonZero(r, randLo, randHi)
		// kv₁◦kv₃ = kv₂◦kv₄ (the constraint Equation 12 relies on).
		k.kv4[i] = k.kv1[i] * k.kv3[i] / k.kv2[i]
	}
	k.kv24 = vec.Mul(nil, k.kv2, k.kv4)
	return k, nil
}

// Dim returns the plaintext dimension d the key was generated for.
func (k *Key) Dim() int { return k.dim }

// Scale returns the uniform input scale applied before encryption.
func (k *Key) Scale() float64 { return k.scale }

// CiphertextDim returns the length of each of the four ciphertext component
// vectors (2d+16 after padding), so total ciphertext size is 4× this.
func (k *Key) CiphertextDim() int { return 2*k.padDim + 16 }

// Ciphertext is C_DCE(p) = (p̄′₁, p̄′₂, p̄′₃, p̄′₄), four vectors of length
// 2d+16 (Equation 13). Components are exported for serialization; treat
// them as opaque.
type Ciphertext struct {
	P1, P2, P3, P4 []float64
}

// Trapdoor is T_q = q̄′ ∈ R^(2d+16) (Equation 15).
type Trapdoor struct {
	Q []float64
}

// randScalars draws n per-encryption random scalars under the key's lock.
// signed selects ±[lo,hi) vs positive-only.
func (k *Key) randScalars(n int, signed bool) []float64 {
	out := make([]float64, n)
	k.mu.Lock()
	for i := range out {
		if signed {
			out[i] = rng.UniformNonZero(k.rnd, randLo, randHi)
		} else {
			out[i] = rng.Uniform(k.rnd, randLo, randHi)
		}
	}
	k.mu.Unlock()
	return out
}

// pairTransform computes the paper's step 1: p̌ from p (database side,
// sign=+1) or q̌ from q (query side, sign=−1), folding in the key's input
// scale and padding odd dimensions with a trailing zero.
func (k *Key) pairTransform(p []float64, sign float64) []float64 {
	out := make([]float64, k.padDim)
	get := func(i int) float64 {
		if i < len(p) {
			return k.scale * p[i]
		}
		return 0
	}
	for i := 0; i < k.padDim; i += 2 {
		a, b := get(i), get(i+1)
		out[i] = sign * (a + b)
		out[i+1] = sign * (a - b)
	}
	return out
}

// randomizeDB runs the four vector-randomization steps for a database
// vector, returning p̄ ∈ R^(padDim+8).
func (k *Key) randomizeDB(p []float64) []float64 {
	check := k.pairTransform(p, +1) // step 1: p̌
	hat := k.pi1.Apply(nil, check)  // step 2: p̂ = π₁(p̌)
	rs := k.randScalars(5, true)    // α₁, α₂, r′₁, r′₂, r′₃
	alpha1, alpha2 := rs[0], rs[1]
	rp1, rp2, rp3 := rs[2], rs[3], rs[4]
	normSq := k.scale * k.scale * vec.SqNorm(p)
	gamma := (normSq - rp1*k.r1 - rp2*k.r2 - rp3*k.r3) / k.r4

	// Step 3: split with cancelling randomness (Equation 2).
	sub := k.half + 4
	p1 := make([]float64, sub)
	p2 := make([]float64, sub)
	copy(p1, hat[:k.half])
	p1[k.half] = alpha1
	p1[k.half+1] = -alpha1
	p1[k.half+2] = rp1
	p1[k.half+3] = rp2
	copy(p2, hat[k.half:])
	p2[k.half] = alpha2
	p2[k.half+1] = alpha2
	p2[k.half+2] = rp3
	p2[k.half+3] = gamma

	// Step 4: matrix encryption + second permutation (Equation 4).
	enc := make([]float64, k.padDim+8)
	k.m1.VecMul(enc[:sub], p1)
	k.m2.VecMul(enc[sub:], p2)
	return k.pi2.Apply(nil, enc)
}

// randomizeQuery runs the four vector-randomization steps for a query
// vector, returning q̄ ∈ R^(padDim+8).
func (k *Key) randomizeQuery(q []float64) []float64 {
	check := k.pairTransform(q, -1) // step 1: q̌ (note the global minus)
	hat := k.pi1.Apply(nil, check)  // step 2
	rs := k.randScalars(2, true)    // β₁, β₂
	beta1, beta2 := rs[0], rs[1]

	// Step 3 (Equation 3): the query side carries the shared key scalars
	// r₁..r₄ that pair with the database side's r′ and γ entries.
	sub := k.half + 4
	q1 := make([]float64, sub)
	q2 := make([]float64, sub)
	copy(q1, hat[:k.half])
	q1[k.half] = beta1
	q1[k.half+1] = beta1
	q1[k.half+2] = k.r1
	q1[k.half+3] = k.r2
	copy(q2, hat[k.half:])
	q2[k.half] = beta2
	q2[k.half+1] = -beta2
	q2[k.half+2] = k.r3
	q2[k.half+3] = k.r4

	// Step 4: inverse-matrix encryption + the same second permutation.
	enc := make([]float64, k.padDim+8)
	k.m1Inv.MulVec(enc[:sub], q1)
	k.m2Inv.MulVec(enc[sub:], q2)
	return k.pi2.Apply(nil, enc)
}

// Encrypt is the paper's Enc(p, SK): it encrypts one database vector into
// its four-component ciphertext. The components share one contiguous
// backing array (the CiphertextStore record layout).
func (k *Key) Encrypt(p []float64) *Ciphertext {
	big := k.CiphertextDim()
	rec := make([]float64, 4*big)
	k.EncryptRecord(p, rec)
	return &Ciphertext{
		P1: rec[0*big : 1*big : 1*big],
		P2: rec[1*big : 2*big : 2*big],
		P3: rec[2*big : 3*big : 3*big],
		P4: rec[3*big : 4*big : 4*big],
	}
}

// EncryptRecord is Encrypt writing into a caller-provided flat record
// [P1|P2|P3|P4] of length 4·CiphertextDim — typically a CiphertextStore
// record, so bulk encryption fills the arena in place without per-point
// allocation.
func (k *Key) EncryptRecord(p []float64, rec []float64) {
	if len(p) != k.dim {
		panic(fmt.Sprintf("dce: encrypting %d-dim vector with %d-dim key", len(p), k.dim))
	}
	big := k.CiphertextDim()
	if len(rec) != 4*big {
		panic(fmt.Sprintf("dce: record length %d, want %d", len(rec), 4*big))
	}
	bar := k.randomizeDB(p)

	// Matrix encryption step i (Equation 10): project onto both halves
	// of M₃ and form the ±1 shifted copies.
	up := k.mup.VecMul(nil, bar)     // p̄ᵀ·M_up
	down := k.mdown.VecMul(nil, bar) // p̄ᵀ·M_down

	rp := k.randScalars(1, false)[0] // r_p ∈ R⁺

	p1, p2, p3, p4 := rec[:big], rec[big:2*big], rec[2*big:3*big], rec[3*big:]
	// Randomness step ii (Equation 13): shift, divide by the key vectors,
	// scale by r_p.
	for i := 0; i < big; i++ {
		p1[i] = rp * (up[i] + 1) / k.kv1[i]
		p2[i] = rp * (up[i] - 1) / k.kv2[i]
		p3[i] = rp * (down[i] + 1) / k.kv3[i]
		p4[i] = rp * (down[i] - 1) / k.kv4[i]
	}
}

// TrapGen is the paper's TrapGen(q, SK): it produces the trapdoor for a
// query vector.
func (k *Key) TrapGen(q []float64) *Trapdoor {
	if len(q) != k.dim {
		panic(fmt.Sprintf("dce: trapdoor for %d-dim vector with %d-dim key", len(q), k.dim))
	}
	bar := k.randomizeQuery(q)
	big := k.CiphertextDim()

	// Equation 15: q̄′ = r_q · (M₃⁻¹ [q̄; −q̄]) ◦ (kv₂◦kv₄).
	stack := make([]float64, big)
	copy(stack[:len(bar)], bar)
	for i, v := range bar {
		stack[len(bar)+i] = -v
	}
	w := k.m3Inv.MulVec(nil, stack)
	rq := k.randScalars(1, false)[0]
	out := make([]float64, big)
	for i := range out {
		out[i] = rq * w[i] * k.kv24[i]
	}
	return &Trapdoor{Q: out}
}

// DistanceComp evaluates Z_{o,p,q} = (ō′₁◦p̄′₃ − ō′₂◦p̄′₄)ᵀ·q̄′
// = 2·r_o·r_p·r_q·(dist(o,q) − dist(p,q)). Its sign answers the comparison:
// negative means dist(o,q) < dist(p,q).
func DistanceComp(co, cp *Ciphertext, tq *Trapdoor) float64 {
	return distCompKernel(co.P1, co.P2, cp.P3, cp.P4, tq.Q)
}

// Closer reports whether dist(o, q) < dist(p, q), i.e. whether candidate o
// beats candidate p for query q.
func Closer(co, cp *Ciphertext, tq *Trapdoor) bool {
	return DistanceComp(co, cp, tq) < 0
}
