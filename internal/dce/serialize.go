package dce

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ppanns/internal/matrix"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// keyWire is the serialized form of a Key. Matrices travel as flat
// row-major arrays, permutations as forward maps. Per-encryption randomness
// is re-seeded from crypto/rand on load (it only needs freshness).
type keyWire struct {
	Dim, PadDim int
	Scale       float64

	M1, M1Inv, M2, M2Inv []float64
	Pi1, Pi2             []int
	R1, R2, R3, R4       float64

	MUp, MDown, M3Inv  []float64
	KV1, KV2, KV3, KV4 []float64
}

// MarshalBinary encodes the secret key. Handle with the same care as the
// key itself.
func (k *Key) MarshalBinary() ([]byte, error) {
	w := keyWire{
		Dim: k.dim, PadDim: k.padDim, Scale: k.scale,
		M1: k.m1.Raw(), M1Inv: k.m1Inv.Raw(), M2: k.m2.Raw(), M2Inv: k.m2Inv.Raw(),
		Pi1: k.pi1.Forward(), Pi2: k.pi2.Forward(),
		R1: k.r1, R2: k.r2, R3: k.r3, R4: k.r4,
		MUp: k.mup.Raw(), MDown: k.mdown.Raw(), M3Inv: k.m3Inv.Raw(),
		KV1: k.kv1, KV2: k.kv2, KV3: k.kv3, KV4: k.kv4,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("dce: encoding key: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a key produced by MarshalBinary.
func (k *Key) UnmarshalBinary(data []byte) error {
	var w keyWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("dce: decoding key: %w", err)
	}
	if w.Dim <= 0 || w.PadDim < w.Dim || w.PadDim%2 != 0 || w.Scale <= 0 {
		return fmt.Errorf("dce: implausible key header dim=%d pad=%d scale=%g", w.Dim, w.PadDim, w.Scale)
	}
	sub := w.PadDim/2 + 4
	big := 2*w.PadDim + 16
	var err error
	mk := func(rows, cols int, raw []float64) *matrix.Dense {
		if err != nil {
			return nil
		}
		var m *matrix.Dense
		m, err = matrix.FromRaw(rows, cols, raw)
		return m
	}
	k.dim, k.padDim, k.half, k.scale = w.Dim, w.PadDim, w.PadDim/2, w.Scale
	k.m1 = mk(sub, sub, w.M1)
	k.m1Inv = mk(sub, sub, w.M1Inv)
	k.m2 = mk(sub, sub, w.M2)
	k.m2Inv = mk(sub, sub, w.M2Inv)
	k.mup = mk(w.PadDim+8, big, w.MUp)
	k.mdown = mk(w.PadDim+8, big, w.MDown)
	k.m3Inv = mk(big, big, w.M3Inv)
	if err != nil {
		return fmt.Errorf("dce: decoding key matrices: %w", err)
	}
	if k.pi1, err = rng.PermutationFromForward(w.Pi1); err != nil {
		return fmt.Errorf("dce: decoding π1: %w", err)
	}
	if k.pi2, err = rng.PermutationFromForward(w.Pi2); err != nil {
		return fmt.Errorf("dce: decoding π2: %w", err)
	}
	if k.pi1.Len() != w.PadDim || k.pi2.Len() != w.PadDim+8 {
		return fmt.Errorf("dce: permutation sizes %d/%d do not match dims", k.pi1.Len(), k.pi2.Len())
	}
	for _, kv := range [][]float64{w.KV1, w.KV2, w.KV3, w.KV4} {
		if len(kv) != big {
			return fmt.Errorf("dce: key vector of length %d, want %d", len(kv), big)
		}
	}
	k.r1, k.r2, k.r3, k.r4 = w.R1, w.R2, w.R3, w.R4
	k.kv1, k.kv2, k.kv3, k.kv4 = w.KV1, w.KV2, w.KV3, w.KV4
	k.kv24 = vec.Mul(nil, k.kv2, k.kv4)
	k.rnd = rng.NewCrypto()
	return nil
}
