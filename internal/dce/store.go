package dce

import "fmt"

// CiphertextStore is a flat-arena backing for DCE ciphertexts. Instead of
// four separately allocated component slices behind a pointer per point,
// every point owns one contiguous record
//
//	[ P1 | P2 | P3 | P4 ]   (4·ctDim float64s)
//
// inside a single backing array. DistanceComp(o, p, q) reads o's first two
// components and p's last two, so the layout puts each side's operands on
// adjacent cache lines: the refine phase's O(k′ log k) comparisons walk two
// contiguous ranges plus the (hot) trapdoor instead of chasing five
// pointers across scattered heap objects.
//
// Records are addressed by id (0..Len()-1). Deleting a record zeroes it —
// dropping the ciphertext material — and tombstones the id; ids are never
// reused. All views are slices into the arena: cheap, copy-free, and
// invalidated by the next Append (callers must not retain them across
// mutations).
type CiphertextStore struct {
	ctDim int
	arena []float64 // n records of 4·ctDim floats each
	live  []bool
	liveN int
}

// NewCiphertextStore returns an empty store for ciphertexts of component
// length ctDim, with capacity preallocated for capHint records.
func NewCiphertextStore(ctDim, capHint int) *CiphertextStore {
	if ctDim <= 0 {
		panic(fmt.Sprintf("dce: non-positive ciphertext dimension %d", ctDim))
	}
	if capHint < 0 {
		capHint = 0
	}
	return &CiphertextStore{
		ctDim: ctDim,
		arena: make([]float64, 0, 4*ctDim*capHint),
		live:  make([]bool, 0, capHint),
	}
}

// NewCiphertextStoreN returns a store holding n live, zero-filled records.
// It exists for bulk encryption: workers fill disjoint Record(i) views in
// place (EncryptRecord), so no per-point allocation or copying happens.
func NewCiphertextStoreN(ctDim, n int) *CiphertextStore {
	if ctDim <= 0 {
		panic(fmt.Sprintf("dce: non-positive ciphertext dimension %d", ctDim))
	}
	if n < 0 {
		panic(fmt.Sprintf("dce: negative store size %d", n))
	}
	s := &CiphertextStore{
		ctDim: ctDim,
		arena: make([]float64, 4*ctDim*n),
		live:  make([]bool, n),
		liveN: n,
	}
	for i := range s.live {
		s.live[i] = true
	}
	return s
}

// StoreFromRaw wraps an existing flat arena (taking ownership) as a store.
// len(live) is the record count; len(arena) must equal 4·ctDim·len(live).
// Records with live[i] == false are tombstones (their floats should be
// zero, as Delete leaves them).
func StoreFromRaw(ctDim int, arena []float64, live []bool) (*CiphertextStore, error) {
	if ctDim <= 0 {
		return nil, fmt.Errorf("dce: non-positive ciphertext dimension %d", ctDim)
	}
	if len(arena) != 4*ctDim*len(live) {
		return nil, fmt.Errorf("dce: arena length %d does not match %d records of dim %d", len(arena), len(live), ctDim)
	}
	s := &CiphertextStore{ctDim: ctDim, arena: arena, live: live}
	for _, l := range live {
		if l {
			s.liveN++
		}
	}
	return s, nil
}

// CtDim returns the component length of every ciphertext in the store.
func (s *CiphertextStore) CtDim() int { return s.ctDim }

// Len returns the number of records, including tombstones.
func (s *CiphertextStore) Len() int { return len(s.live) }

// Live returns the number of non-tombstoned records.
func (s *CiphertextStore) Live() int { return s.liveN }

// Has reports whether id names a live record.
func (s *CiphertextStore) Has(id int) bool {
	return id >= 0 && id < len(s.live) && s.live[id]
}

func (s *CiphertextStore) stride() int { return 4 * s.ctDim }

// Record returns the full mutable record [P1|P2|P3|P4] of id as a view
// into the arena.
func (s *CiphertextStore) Record(id int) []float64 {
	st := s.stride()
	return s.arena[id*st : (id+1)*st : (id+1)*st]
}

// O12 returns the [P1|P2] half of id's record — the operands a point
// contributes when it is the "o" side of DistanceComp.
func (s *CiphertextStore) O12(id int) []float64 {
	st := s.stride()
	return s.arena[id*st : id*st+2*s.ctDim]
}

// P34 returns the [P3|P4] half of id's record — the operands a point
// contributes when it is the "p" side of DistanceComp.
func (s *CiphertextStore) P34(id int) []float64 {
	st := s.stride()
	return s.arena[id*st+2*s.ctDim : (id+1)*st]
}

// View adapts record id to the pointer Ciphertext API without copying: the
// four components are slices into the arena. The zero Ciphertext is
// returned for tombstoned or out-of-range ids.
func (s *CiphertextStore) View(id int) Ciphertext {
	if !s.Has(id) {
		return Ciphertext{}
	}
	rec := s.Record(id)
	d := s.ctDim
	return Ciphertext{
		P1: rec[0*d : 1*d : 1*d],
		P2: rec[1*d : 2*d : 2*d],
		P3: rec[2*d : 3*d : 3*d],
		P4: rec[3*d : 4*d : 4*d],
	}
}

// Append copies ct into a fresh record and returns its id. Component
// lengths must equal CtDim.
func (s *CiphertextStore) Append(ct *Ciphertext) int {
	d := s.ctDim
	if len(ct.P1) != d || len(ct.P2) != d || len(ct.P3) != d || len(ct.P4) != d {
		panic(fmt.Sprintf("dce: appending ciphertext with component lengths %d/%d/%d/%d to store of dim %d",
			len(ct.P1), len(ct.P2), len(ct.P3), len(ct.P4), d))
	}
	s.arena = append(s.arena, ct.P1...)
	s.arena = append(s.arena, ct.P2...)
	s.arena = append(s.arena, ct.P3...)
	s.arena = append(s.arena, ct.P4...)
	s.live = append(s.live, true)
	s.liveN++
	return len(s.live) - 1
}

// Snapshot returns a copy-on-write clone for core's snapshot-publication
// discipline. The liveness flags are copied, so Tombstone and Append on the
// clone are invisible to the receiver; the arena is shared, which is safe
// under that discipline because published stores are never mutated again —
// appends only ever write past every published snapshot's length, and
// snapshot deletes go through Tombstone, which flips only the (private)
// liveness flag. Callers outside that discipline must not mutate both the
// receiver and the clone.
func (s *CiphertextStore) Snapshot() *CiphertextStore {
	return &CiphertextStore{
		ctDim: s.ctDim,
		arena: s.arena,
		live:  append([]bool(nil), s.live...),
		liveN: s.liveN,
	}
}

// Tombstone marks id dead without touching its record: the snapshot-safe
// delete for stores whose arena is shared with older snapshots (zeroing, as
// Delete does, would tear concurrent reads on them). The ciphertext
// material therefore survives in memory until the arena is next copied or
// the snapshot chain is collected. Tombstoning a dead or out-of-range id is
// a no-op.
func (s *CiphertextStore) Tombstone(id int) {
	if !s.Has(id) {
		return
	}
	s.live[id] = false
	s.liveN--
}

// Delete tombstones id and zeroes its record, dropping the ciphertext
// material. Deleting a dead or out-of-range id is a no-op.
func (s *CiphertextStore) Delete(id int) {
	if !s.Has(id) {
		return
	}
	rec := s.Record(id)
	for i := range rec {
		rec[i] = 0
	}
	s.live[id] = false
	s.liveN--
}

// Raw exposes the flat arena (Len()·4·CtDim floats; tombstoned records are
// zero), used by the bulk serialization path. Callers must not resize it.
func (s *CiphertextStore) Raw() []float64 { return s.arena }

// LiveMask exposes the per-record liveness flags, used by the bulk
// serialization path. Callers must not modify it.
func (s *CiphertextStore) LiveMask() []bool { return s.live }

// DistanceComp is the arena-resident form of the package-level
// DistanceComp: it evaluates Z_{o,p,q} for records o and p without
// materializing Ciphertext values.
func (s *CiphertextStore) DistanceComp(o, p int, tq *Trapdoor) float64 {
	return s.DistanceCompQ(o, p, tq.Q)
}

// DistanceCompQ is DistanceComp taking the raw trapdoor vector.
func (s *CiphertextStore) DistanceCompQ(o, p int, q []float64) float64 {
	d := s.ctDim
	o12 := s.O12(o)
	p34 := s.P34(p)
	return distCompKernel(o12[:d], o12[d:], p34[:d], p34[d:], q)
}

// Closer reports whether dist(o, q) < dist(p, q) for records o and p.
func (s *CiphertextStore) Closer(o, p int, tq *Trapdoor) bool {
	return s.DistanceComp(o, p, tq) < 0
}

// ScaleOperands precomputes, for every id in ids, the trapdoor-scaled
// operands (P1◦q | P2◦q) appended into dst (whose capacity is reused).
// One pass over the candidate set turns every subsequent comparison from
// three multiplies per element into two (ScaledComp), which pays off as
// soon as the refine heap performs more comparisons than there are
// candidates. The result has 2·CtDim floats per id, in ids order.
func (s *CiphertextStore) ScaleOperands(dst []float64, ids []int, q []float64) []float64 {
	d := s.ctDim
	n := 2 * d * len(ids)
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for j, id := range ids {
		o12 := s.O12(id)
		o1, o2 := o12[:d], o12[d:]
		out := dst[j*2*d : (j+1)*2*d]
		s1, s2 := out[:d], out[d:]
		for i, qv := range q {
			s1[i] = o1[i] * qv
			s2[i] = o2[i] * qv
		}
	}
	return dst
}

// ScaledComp evaluates Z using precomputed scaled operands s12 (one
// 2·CtDim block from ScaleOperands) on the "o" side and record p on the
// "p" side. Sign semantics match DistanceComp up to float64 rounding of
// genuinely tied distances (the summation is associated differently).
func (s *CiphertextStore) ScaledComp(s12 []float64, p int) float64 {
	d := s.ctDim
	p34 := s.P34(p)
	return scaledCompKernel(s12[:d], s12[d:], p34[:d], p34[d:])
}

// DistanceCompHalves evaluates Z_{o,p,q} from o's [P1|P2] half and p's
// [P3|P4] half (each 2·len(q) floats), without requiring both records to
// live in the same store. The scatter-gather merge uses it to compare
// candidates returned by different shards against one trapdoor.
func DistanceCompHalves(o12, p34, q []float64) float64 {
	d := len(q)
	return distCompKernel(o12[:d], o12[d:], p34[:d], p34[d:], q)
}

// distCompKernel computes Σᵢ (o1ᵢ·p3ᵢ − o2ᵢ·p4ᵢ)·qᵢ, unrolled four-wide
// with independent accumulators so the FMAs pipeline.
func distCompKernel(o1, o2, p3, p4, q []float64) float64 {
	n := len(q)
	o1 = o1[:n]
	o2 = o2[:n]
	p3 = p3[:n]
	p4 = p4[:n]
	var z0, z1, z2, z3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		z0 += (o1[i]*p3[i] - o2[i]*p4[i]) * q[i]
		z1 += (o1[i+1]*p3[i+1] - o2[i+1]*p4[i+1]) * q[i+1]
		z2 += (o1[i+2]*p3[i+2] - o2[i+2]*p4[i+2]) * q[i+2]
		z3 += (o1[i+3]*p3[i+3] - o2[i+3]*p4[i+3]) * q[i+3]
	}
	for ; i < n; i++ {
		z0 += (o1[i]*p3[i] - o2[i]*p4[i]) * q[i]
	}
	return (z0 + z1) + (z2 + z3)
}

// scaledCompKernel computes Σᵢ s1ᵢ·p3ᵢ − Σᵢ s2ᵢ·p4ᵢ with the same
// unrolling as distCompKernel.
func scaledCompKernel(s1, s2, p3, p4 []float64) float64 {
	n := len(s1)
	s2 = s2[:n]
	p3 = p3[:n]
	p4 = p4[:n]
	var z0, z1, z2, z3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		z0 += s1[i]*p3[i] - s2[i]*p4[i]
		z1 += s1[i+1]*p3[i+1] - s2[i+1]*p4[i+1]
		z2 += s1[i+2]*p3[i+2] - s2[i+2]*p4[i+2]
		z3 += s1[i+3]*p3[i+3] - s2[i+3]*p4[i+3]
	}
	for ; i < n; i++ {
		z0 += s1[i]*p3[i] - s2[i]*p4[i]
	}
	return (z0 + z1) + (z2 + z3)
}
