package dce

import (
	"fmt"

	"ppanns/internal/vec"
)

// CiphertextStore is a flat-arena backing for DCE ciphertexts. Instead of
// four separately allocated component slices behind a pointer per point,
// every point owns one contiguous record
//
//	[ P1 | P2 | P3 | P4 ]   (4·ctDim float64s)
//
// inside a single backing array. DistanceComp(o, p, q) reads o's first two
// components and p's last two, so the layout puts each side's operands on
// adjacent cache lines: the refine phase's O(k′ log k) comparisons walk two
// contiguous ranges plus the (hot) trapdoor instead of chasing five
// pointers across scattered heap objects.
//
// Records are addressed by id (0..Len()-1). Deleting a record zeroes it —
// dropping the ciphertext material — and tombstones the id; ids are never
// reused. All views are slices into the arena: cheap, copy-free, and
// invalidated by the next Append (callers must not retain them across
// mutations).
//
// The arena base is 64-byte aligned and the record stride is 4·ctDim
// rounded up to a cache-line multiple (pad floats stay zero), so every
// record — and, since ctDim is even for every real DCE key, every
// component — starts on a cache-line boundary and SIMD loads never split a
// line at a record edge. The padding is purely an in-memory layout: Raw and
// StoreFromRaw speak the compact 4·ctDim-per-record representation, which
// keeps the PPANNSD4 on-disk bytes identical to the pre-padding format.
type CiphertextStore struct {
	ctDim   int
	strideF int // record stride in float64s: PadStride(4·ctDim)
	arena   []float64
	live    []bool
	liveN   int
}

// recordStride is the in-memory record stride for a component length.
func recordStride(ctDim int) int { return vec.PadStride(4 * ctDim) }

// NewCiphertextStore returns an empty store for ciphertexts of component
// length ctDim, with capacity preallocated for capHint records.
func NewCiphertextStore(ctDim, capHint int) *CiphertextStore {
	if ctDim <= 0 {
		panic(fmt.Sprintf("dce: non-positive ciphertext dimension %d", ctDim))
	}
	if capHint < 0 {
		capHint = 0
	}
	st := recordStride(ctDim)
	return &CiphertextStore{
		ctDim:   ctDim,
		strideF: st,
		arena:   vec.AlignedFloats(st * capHint)[:0],
		live:    make([]bool, 0, capHint),
	}
}

// NewCiphertextStoreN returns a store holding n live, zero-filled records.
// It exists for bulk encryption: workers fill disjoint Record(i) views in
// place (EncryptRecord), so no per-point allocation or copying happens.
func NewCiphertextStoreN(ctDim, n int) *CiphertextStore {
	if ctDim <= 0 {
		panic(fmt.Sprintf("dce: non-positive ciphertext dimension %d", ctDim))
	}
	if n < 0 {
		panic(fmt.Sprintf("dce: negative store size %d", n))
	}
	st := recordStride(ctDim)
	s := &CiphertextStore{
		ctDim:   ctDim,
		strideF: st,
		arena:   vec.AlignedFloats(st * n),
		live:    make([]bool, n),
		liveN:   n,
	}
	for i := range s.live {
		s.live[i] = true
	}
	return s
}

// StoreFromRaw builds a store from a compact flat arena (4·ctDim floats
// per record, as Raw returns). len(live) is the record count; len(arena)
// must equal 4·ctDim·len(live). Records with live[i] == false are
// tombstones (their floats should be zero, as Delete leaves them). The
// records are repacked into an aligned padded arena, so the input is not
// retained.
func StoreFromRaw(ctDim int, arena []float64, live []bool) (*CiphertextStore, error) {
	if ctDim <= 0 {
		return nil, fmt.Errorf("dce: non-positive ciphertext dimension %d", ctDim)
	}
	if len(arena) != 4*ctDim*len(live) {
		return nil, fmt.Errorf("dce: arena length %d does not match %d records of dim %d", len(arena), len(live), ctDim)
	}
	st := recordStride(ctDim)
	rec := 4 * ctDim
	packed := vec.AlignedFloats(st * len(live))
	for i := range live {
		copy(packed[i*st:i*st+rec], arena[i*rec:(i+1)*rec])
	}
	s := &CiphertextStore{ctDim: ctDim, strideF: st, arena: packed, live: live}
	for _, l := range live {
		if l {
			s.liveN++
		}
	}
	return s, nil
}

// CtDim returns the component length of every ciphertext in the store.
func (s *CiphertextStore) CtDim() int { return s.ctDim }

// Len returns the number of records, including tombstones.
func (s *CiphertextStore) Len() int { return len(s.live) }

// Live returns the number of non-tombstoned records.
func (s *CiphertextStore) Live() int { return s.liveN }

// Has reports whether id names a live record.
func (s *CiphertextStore) Has(id int) bool {
	return id >= 0 && id < len(s.live) && s.live[id]
}

// stride returns the in-memory record stride in float64s (≥ 4·ctDim; the
// excess is cache-line padding).
func (s *CiphertextStore) stride() int { return s.strideF }

// Stride is the exported form of stride, for the alignment tests.
func (s *CiphertextStore) Stride() int { return s.strideF }

// Record returns the full mutable logical record [P1|P2|P3|P4] of id
// (4·CtDim floats, pad excluded) as a view into the arena.
func (s *CiphertextStore) Record(id int) []float64 {
	base := id * s.strideF
	return s.arena[base : base+4*s.ctDim : base+4*s.ctDim]
}

// O12 returns the [P1|P2] half of id's record — the operands a point
// contributes when it is the "o" side of DistanceComp.
func (s *CiphertextStore) O12(id int) []float64 {
	base := id * s.strideF
	return s.arena[base : base+2*s.ctDim]
}

// P34 returns the [P3|P4] half of id's record — the operands a point
// contributes when it is the "p" side of DistanceComp.
func (s *CiphertextStore) P34(id int) []float64 {
	base := id*s.strideF + 2*s.ctDim
	return s.arena[base : base+2*s.ctDim]
}

// View adapts record id to the pointer Ciphertext API without copying: the
// four components are slices into the arena. The zero Ciphertext is
// returned for tombstoned or out-of-range ids.
func (s *CiphertextStore) View(id int) Ciphertext {
	if !s.Has(id) {
		return Ciphertext{}
	}
	rec := s.Record(id)
	d := s.ctDim
	return Ciphertext{
		P1: rec[0*d : 1*d : 1*d],
		P2: rec[1*d : 2*d : 2*d],
		P3: rec[2*d : 3*d : 3*d],
		P4: rec[3*d : 4*d : 4*d],
	}
}

// grow ensures arena capacity for records more records, reallocating
// aligned storage when needed (append would lose the 64-byte base
// alignment). Published snapshots sharing the old arena are unaffected: a
// reallocation gives this store a private copy, and an in-place extension
// only writes past every published snapshot's length.
func (s *CiphertextStore) grow(records int) {
	need := len(s.arena) + records*s.strideF
	if need <= cap(s.arena) {
		return
	}
	newCap := 2 * cap(s.arena)
	if newCap < need {
		newCap = need
	}
	na := vec.AlignedFloats(newCap)[:len(s.arena)]
	copy(na, s.arena)
	s.arena = na
}

// Append copies ct into a fresh record and returns its id. Component
// lengths must equal CtDim.
func (s *CiphertextStore) Append(ct *Ciphertext) int {
	d := s.ctDim
	if len(ct.P1) != d || len(ct.P2) != d || len(ct.P3) != d || len(ct.P4) != d {
		panic(fmt.Sprintf("dce: appending ciphertext with component lengths %d/%d/%d/%d to store of dim %d",
			len(ct.P1), len(ct.P2), len(ct.P3), len(ct.P4), d))
	}
	s.grow(1)
	base := len(s.arena)
	s.arena = s.arena[:base+s.strideF]
	rec := s.arena[base:]
	copy(rec[0*d:], ct.P1)
	copy(rec[1*d:], ct.P2)
	copy(rec[2*d:], ct.P3)
	copy(rec[3*d:], ct.P4)
	for i := 4 * d; i < s.strideF; i++ {
		rec[i] = 0
	}
	s.live = append(s.live, true)
	s.liveN++
	return len(s.live) - 1
}

// Snapshot returns a copy-on-write clone for core's snapshot-publication
// discipline. The liveness flags are copied, so Tombstone and Append on the
// clone are invisible to the receiver; the arena is shared, which is safe
// under that discipline because published stores are never mutated again —
// appends only ever write past every published snapshot's length, and
// snapshot deletes go through Tombstone, which flips only the (private)
// liveness flag. Callers outside that discipline must not mutate both the
// receiver and the clone.
func (s *CiphertextStore) Snapshot() *CiphertextStore {
	return &CiphertextStore{
		ctDim:   s.ctDim,
		strideF: s.strideF,
		arena:   s.arena,
		live:    append([]bool(nil), s.live...),
		liveN:   s.liveN,
	}
}

// Extend appends ct and returns a new store header covering the extended
// arena, leaving the receiver's view unchanged: the O(1) append for core's
// delta tier, where the receiver is a published snapshot. The arena AND the
// liveness mask backings are shared — the new record is written past the
// receiver's length, which is safe only under the single-writer append
// discipline (all Extends on one chain are serialized, published stores are
// never re-extended from two snapshots, and deletes on the chain never
// touch store flags). The new record's id is the receiver's Len().
func (s *CiphertextStore) Extend(ct *Ciphertext) *CiphertextStore {
	ns := &CiphertextStore{
		ctDim:   s.ctDim,
		strideF: s.strideF,
		arena:   s.arena,
		live:    s.live,
		liveN:   s.liveN,
	}
	ns.Append(ct)
	return ns
}

// AppendRecord appends a full logical record (4·CtDim floats, as Record
// returns) in place and returns its id. The compaction graft uses it to
// carry records written after a rebuild's base snapshot into the rebuilt
// (private) store without round-tripping through Ciphertext views.
func (s *CiphertextStore) AppendRecord(rec []float64) int {
	if len(rec) != 4*s.ctDim {
		panic(fmt.Sprintf("dce: appending record of %d floats to store of dim %d (want %d)",
			len(rec), s.ctDim, 4*s.ctDim))
	}
	s.grow(1)
	base := len(s.arena)
	s.arena = s.arena[:base+s.strideF]
	dst := s.arena[base:]
	copy(dst, rec)
	for i := len(rec); i < s.strideF; i++ {
		dst[i] = 0
	}
	s.live = append(s.live, true)
	s.liveN++
	return len(s.live) - 1
}

// Reserve pre-allocates capacity for records more appends, so they cannot
// trigger a reallocation. Compaction calls it before grafting under the
// writer mutex: the repacked arena is allocated exactly full, and without
// the reservation the first graft would double it — a full-arena copy —
// inside the writers' critical section.
func (s *CiphertextStore) Reserve(records int) {
	s.grow(records)
	if need := len(s.live) + records; need > cap(s.live) {
		nl := make([]bool, len(s.live), need)
		copy(nl, s.live)
		s.live = nl
	}
}

// Compacted returns a store with a private arena holding the receiver's
// records, with every id for which dead(id) reports true (or that is
// already tombstoned) zeroed and marked dead — the ciphertext bytes are
// actually dropped, unlike Tombstone. Ids are preserved, not renumbered:
// dead records keep their (zeroed) slots so the id space stays aligned
// with the filter index and the shard striping.
func (s *CiphertextStore) Compacted(dead func(id int) bool) *CiphertextStore {
	n := s.Len()
	ns := &CiphertextStore{
		ctDim:   s.ctDim,
		strideF: s.strideF,
		arena:   vec.AlignedFloats(s.strideF * n),
		live:    make([]bool, n),
	}
	for id := 0; id < n; id++ {
		if !s.live[id] || (dead != nil && dead(id)) {
			continue
		}
		copy(ns.arena[id*ns.strideF:], s.Record(id))
		ns.live[id] = true
		ns.liveN++
	}
	return ns
}

// Tombstone marks id dead without touching its record: the snapshot-safe
// delete for stores whose arena is shared with older snapshots (zeroing, as
// Delete does, would tear concurrent reads on them). The ciphertext
// material therefore survives in memory until the arena is next copied or
// the snapshot chain is collected. Tombstoning a dead or out-of-range id is
// a no-op.
func (s *CiphertextStore) Tombstone(id int) {
	if !s.Has(id) {
		return
	}
	s.live[id] = false
	s.liveN--
}

// Delete tombstones id and zeroes its record, dropping the ciphertext
// material. Deleting a dead or out-of-range id is a no-op.
func (s *CiphertextStore) Delete(id int) {
	if !s.Has(id) {
		return
	}
	rec := s.Record(id)
	for i := range rec {
		rec[i] = 0
	}
	s.live[id] = false
	s.liveN--
}

// Raw returns the compact flat arena representation (Len()·4·CtDim floats,
// no record padding; Delete-zeroed records are zero), the layout the bulk
// serialization path writes. When records are padded in memory this is a
// copy; when 4·ctDim is already a cache-line multiple (every even ctDim,
// i.e. every real DCE key) it is the backing arena itself, which callers
// must not resize.
func (s *CiphertextStore) Raw() []float64 {
	rec := 4 * s.ctDim
	if s.strideF == rec {
		return s.arena
	}
	out := make([]float64, s.Len()*rec)
	for i := 0; i < s.Len(); i++ {
		copy(out[i*rec:], s.Record(i))
	}
	return out
}

// LiveMask exposes the per-record liveness flags, used by the bulk
// serialization path. Callers must not modify it.
func (s *CiphertextStore) LiveMask() []bool { return s.live }

// DistanceComp is the arena-resident form of the package-level
// DistanceComp: it evaluates Z_{o,p,q} for records o and p without
// materializing Ciphertext values.
func (s *CiphertextStore) DistanceComp(o, p int, tq *Trapdoor) float64 {
	return s.DistanceCompQ(o, p, tq.Q)
}

// DistanceCompQ is DistanceComp taking the raw trapdoor vector.
func (s *CiphertextStore) DistanceCompQ(o, p int, q []float64) float64 {
	d := s.ctDim
	o12 := s.O12(o)
	p34 := s.P34(p)
	return distCompKernel(o12[:d], o12[d:], p34[:d], p34[d:], q)
}

// Closer reports whether dist(o, q) < dist(p, q) for records o and p.
func (s *CiphertextStore) Closer(o, p int, tq *Trapdoor) bool {
	return s.DistanceComp(o, p, tq) < 0
}

// ScaleOperands precomputes, for every id in ids, the trapdoor-scaled
// operands (P1◦q | P2◦q) appended into dst (whose capacity is reused).
// One pass over the candidate set turns every subsequent comparison from
// three multiplies per element into two (ScaledComp), which pays off as
// soon as the refine heap performs more comparisons than there are
// candidates. The result has 2·CtDim floats per id, in ids order.
func (s *CiphertextStore) ScaleOperands(dst []float64, ids []int, q []float64) []float64 {
	d := s.ctDim
	n := 2 * d * len(ids)
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for j, id := range ids {
		o12 := s.O12(id)
		o1, o2 := o12[:d], o12[d:]
		out := dst[j*2*d : (j+1)*2*d]
		s1, s2 := out[:d], out[d:]
		for i, qv := range q {
			s1[i] = o1[i] * qv
			s2[i] = o2[i] * qv
		}
	}
	return dst
}

// ScaledComp evaluates Z using precomputed scaled operands s12 (one
// 2·CtDim block from ScaleOperands) on the "o" side and record p on the
// "p" side. Sign semantics match DistanceComp up to float64 rounding of
// genuinely tied distances (the summation is associated differently).
func (s *CiphertextStore) ScaledComp(s12 []float64, p int) float64 {
	d := s.ctDim
	p34 := s.P34(p)
	return scaledCompKernel(s12[:d], s12[d:], p34[:d], p34[d:])
}

// DistanceCompHalves evaluates Z_{o,p,q} from o's [P1|P2] half and p's
// [P3|P4] half (each 2·len(q) floats), without requiring both records to
// live in the same store. The scatter-gather merge uses it to compare
// candidates returned by different shards against one trapdoor.
func DistanceCompHalves(o12, p34, q []float64) float64 {
	d := len(q)
	return distCompKernel(o12[:d], o12[d:], p34[:d], p34[d:], q)
}

// distCompKernel computes Σᵢ (o1ᵢ·p3ᵢ − o2ᵢ·p4ᵢ)·qᵢ through the active
// kernel variant; every variant is bit-identical to the scalar reference
// in kernels.go.
func distCompKernel(o1, o2, p3, p4, q []float64) float64 {
	return activeKernels.Load().distComp(o1, o2, p3, p4, q)
}

// scaledCompKernel computes Σᵢ s1ᵢ·p3ᵢ − Σᵢ s2ᵢ·p4ᵢ through the active
// kernel variant.
func scaledCompKernel(s1, s2, p3, p4 []float64) float64 {
	return activeKernels.Load().scaledComp(s1, s2, p3, p4)
}
