package dce

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frame helpers for the write-ahead log: length-prefixed little-endian
// encodings of float vectors and full ciphertext records, so a WAL insert
// payload can carry the SAP vector and the DCE ciphertext without gob's
// per-record reflection or allocation. The format is deliberately dumb —
// [count u32][float64 × count] — because the surrounding WAL record frame
// already provides integrity (CRC32C) and typing.

// AppendFloatsFrame appends a length-prefixed float64 slice to dst.
func AppendFloatsFrame(dst []byte, v []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// ParseFloatsFrame decodes a frame written by AppendFloatsFrame, returning
// the vector (freshly allocated) and the remaining bytes.
func ParseFloatsFrame(b []byte) ([]float64, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("dce: float frame truncated at count")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < 8*n {
		return nil, nil, fmt.Errorf("dce: float frame holds %d bytes, want %d", len(b), 8*n)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v, b[8*n:], nil
}

// AppendCiphertextFrame appends ct as one length-prefixed [P1|P2|P3|P4]
// record (4·ctDim floats). Component lengths must match.
func AppendCiphertextFrame(dst []byte, ct *Ciphertext) []byte {
	d := len(ct.P1)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(4*d))
	for _, comp := range [4][]float64{ct.P1, ct.P2, ct.P3, ct.P4} {
		for _, x := range comp {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
	}
	return dst
}

// ParseCiphertextFrame decodes a frame written by AppendCiphertextFrame.
// The returned ciphertext owns its components (views into one fresh
// record allocation) and is safe to retain.
func ParseCiphertextFrame(b []byte) (Ciphertext, []byte, error) {
	rec, rest, err := ParseFloatsFrame(b)
	if err != nil {
		return Ciphertext{}, nil, err
	}
	if len(rec)%4 != 0 || len(rec) == 0 {
		return Ciphertext{}, nil, fmt.Errorf("dce: ciphertext frame of %d floats is not 4 components", len(rec))
	}
	d := len(rec) / 4
	return Ciphertext{
		P1: rec[0*d : 1*d : 1*d],
		P2: rec[1*d : 2*d : 2*d],
		P3: rec[2*d : 3*d : 3*d],
		P4: rec[3*d : 4*d : 4*d],
	}, rest, nil
}
