package dce

import (
	"fmt"
	"sync/atomic"

	"ppanns/internal/simd"
)

// kernelTable is one dispatch variant of the DCE comparison kernels. As in
// internal/vec, every variant MUST evaluate element-for-element in the same
// order as the scalar references below — eight independent accumulator
// lanes, a sequential remainder folded into lane 0, the reduce8 tree — so
// exchanging variants never flips the sign of a comparison: results are
// bit-identical, not merely close. (A sign flip on a near-tie would change
// refine rankings between machines, which the conformance suite forbids.)
type kernelTable struct {
	name string
	// distComp computes Σᵢ (o1ᵢ·p3ᵢ − o2ᵢ·p4ᵢ)·qᵢ — the paper's
	// DistanceComp inner product.
	distComp func(o1, o2, p3, p4, q []float64) float64
	// distCompBlock computes dst[j] = distComp(o1, o2, P3(ids[j]),
	// P4(ids[j]), q) over the store arena: record id's [P3|P4] half starts
	// at arena[id*stride+2*d] (d floats each). dst is pre-sized by the
	// caller.
	distCompBlock func(dst, arena []float64, stride, d int, o1, o2, q []float64, ids []int32)
	// scaledComp computes Σᵢ s1ᵢ·p3ᵢ − s2ᵢ·p4ᵢ, the two-multiply kernel of
	// the precomputed-operand refine path.
	scaledComp func(s1, s2, p3, p4 []float64) float64
}

var scalarKernelTable = kernelTable{
	name:          simd.Scalar,
	distComp:      distCompScalar,
	distCompBlock: distCompBlockScalar,
	scaledComp:    scaledCompScalar,
}

// kernelVariants and the registration/selection machinery mirror
// internal/vec: arch files append via package-level var initializers,
// init() activates simd.Pick().
var kernelVariants = []*kernelTable{&scalarKernelTable}

func registerKernel(k *kernelTable) struct{} {
	kernelVariants = append(kernelVariants, k)
	return struct{}{}
}

var activeKernels atomic.Pointer[kernelTable]

func init() {
	if err := SetKernel(simd.Pick()); err != nil {
		activeKernels.Store(&scalarKernelTable)
	}
}

// KernelVariants lists the kernel variant names linked into this binary and
// usable on this machine, scalar first.
func KernelVariants() []string {
	out := make([]string, len(kernelVariants))
	for i, k := range kernelVariants {
		out[i] = k.name
	}
	return out
}

// ActiveKernel returns the name of the currently dispatched variant.
func ActiveKernel() string { return activeKernels.Load().name }

// SetKernel activates the named kernel variant for every subsequent DCE
// comparison. Runtime form of the PPANNS_KERNEL override; safe to call
// while searches run because every variant computes identical bits.
func SetKernel(name string) error {
	for _, k := range kernelVariants {
		if k.name == name {
			activeKernels.Store(k)
			return nil
		}
	}
	return fmt.Errorf("dce: unknown or unavailable kernel %q (have %v)", name, KernelVariants())
}

// reduce8 is the fixed eight-lane combination tree shared with
// internal/vec (see the comment there); keep it in lockstep with the
// assembly reductions.
func reduce8(s0, s1, s2, s3, s4, s5, s6, s7 float64) float64 {
	t0 := s0 + s4
	t1 := s1 + s5
	t2 := s2 + s6
	t3 := s3 + s7
	return (t0 + t2) + (t1 + t3)
}

// distCompTail is the single scalar remainder of every DistanceComp path:
// elements i..n-1 fold sequentially into lane 0. The AVX2 assembly
// reproduces exactly this loop, so variants cannot drift on odd ctDims.
func distCompTail(z0 float64, o1, o2, p3, p4, q []float64, i int) float64 {
	for ; i < len(q); i++ {
		z0 += (o1[i]*p3[i] - o2[i]*p4[i]) * q[i]
	}
	return z0
}

// distCompScalar is the reference DistanceComp kernel: eight-wide unrolling
// with independent accumulators so the multiply/add chains pipeline (and so
// the lane structure matches a two-register AVX2 loop bit-for-bit).
func distCompScalar(o1, o2, p3, p4, q []float64) float64 {
	n := len(q)
	o1 = o1[:n]
	o2 = o2[:n]
	p3 = p3[:n]
	p4 = p4[:n]
	var z0, z1, z2, z3, z4, z5, z6, z7 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		z0 += (o1[i]*p3[i] - o2[i]*p4[i]) * q[i]
		z1 += (o1[i+1]*p3[i+1] - o2[i+1]*p4[i+1]) * q[i+1]
		z2 += (o1[i+2]*p3[i+2] - o2[i+2]*p4[i+2]) * q[i+2]
		z3 += (o1[i+3]*p3[i+3] - o2[i+3]*p4[i+3]) * q[i+3]
		z4 += (o1[i+4]*p3[i+4] - o2[i+4]*p4[i+4]) * q[i+4]
		z5 += (o1[i+5]*p3[i+5] - o2[i+5]*p4[i+5]) * q[i+5]
		z6 += (o1[i+6]*p3[i+6] - o2[i+6]*p4[i+6]) * q[i+6]
		z7 += (o1[i+7]*p3[i+7] - o2[i+7]*p4[i+7]) * q[i+7]
	}
	z0 = distCompTail(z0, o1, o2, p3, p4, q, i)
	return reduce8(z0, z1, z2, z3, z4, z5, z6, z7)
}

// distCompBlockScalar evaluates the block through the pair reference, so
// the scalar pair and block paths cannot diverge by construction.
func distCompBlockScalar(dst, arena []float64, stride, d int, o1, o2, q []float64, ids []int32) {
	for j, id := range ids {
		base := int(id)*stride + 2*d
		p34 := arena[base : base+2*d]
		dst[j] = distCompScalar(o1, o2, p34[:d], p34[d:], q)
	}
}

// scaledCompTail is the shared scalar remainder of the precomputed-operand
// kernel.
func scaledCompTail(z0 float64, s1, s2, p3, p4 []float64, i int) float64 {
	for ; i < len(s1); i++ {
		z0 += s1[i]*p3[i] - s2[i]*p4[i]
	}
	return z0
}

// scaledCompScalar is the reference two-multiply kernel, eight-wide like
// distCompScalar.
func scaledCompScalar(s1, s2, p3, p4 []float64) float64 {
	n := len(s1)
	s2 = s2[:n]
	p3 = p3[:n]
	p4 = p4[:n]
	var z0, z1, z2, z3, z4, z5, z6, z7 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		z0 += s1[i]*p3[i] - s2[i]*p4[i]
		z1 += s1[i+1]*p3[i+1] - s2[i+1]*p4[i+1]
		z2 += s1[i+2]*p3[i+2] - s2[i+2]*p4[i+2]
		z3 += s1[i+3]*p3[i+3] - s2[i+3]*p4[i+3]
		z4 += s1[i+4]*p3[i+4] - s2[i+4]*p4[i+4]
		z5 += s1[i+5]*p3[i+5] - s2[i+5]*p4[i+5]
		z6 += s1[i+6]*p3[i+6] - s2[i+6]*p4[i+6]
		z7 += s1[i+7]*p3[i+7] - s2[i+7]*p4[i+7]
	}
	z0 = scaledCompTail(z0, s1, s2, p3, p4, i)
	return reduce8(z0, z1, z2, z3, z4, z5, z6, z7)
}
