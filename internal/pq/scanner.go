package pq

import "ppanns/internal/vec"

// Scanner is the per-query PQ distance provider: Prepare computes the
// asymmetric distance table once from the (prepared, SAP-space) query,
// after which Dist/DistBlock answer candidate distances from the code
// arena in M table lookups per point. It implements vec.BlockScanner.
//
// A Scanner is pooled alongside the other per-query scratch: the LUT
// buffer is retained across queries, so steady-state Prepare allocates
// nothing once the pool is warm. One Scanner serves one query at a time.
type Scanner struct {
	book  *Codebook
	codes []byte // flat arena view captured at Prepare
	m     int
	lut   []float64
}

// Prepare binds the scanner to a codebook + code store and fills the ADT
// for query q (a SAP-space vector of the codebook's dimension).
func (s *Scanner) Prepare(book *Codebook, store *CodeStore, q []float64) {
	s.book = book
	s.codes = store.Raw()
	s.m = book.M()
	if need := s.m * LUTStride; cap(s.lut) < need {
		s.lut = make([]float64, need)
	} else {
		s.lut = s.lut[:need]
	}
	book.FillLUT(s.lut, q)
}

// Reset drops the store binding (keeping the LUT buffer) so a pooled
// scanner does not pin a snapshot's arenas alive between queries.
func (s *Scanner) Reset() {
	s.book = nil
	s.codes = nil
}

// Dist returns the approximate squared distance of id to the prepared
// query: M sequential lookups, the same order the block kernel uses.
func (s *Scanner) Dist(id int32) float64 {
	base := int(id) * s.m
	var d float64
	for i := 0; i < s.m; i++ {
		d += s.lut[i*LUTStride+int(s.codes[base+i])]
	}
	return d
}

// DistBlock writes the approximate distance of each id into dst[i]
// (pre-sized by the caller) through the dispatched LUT-scan kernel.
func (s *Scanner) DistBlock(dst []float64, ids []int32) {
	vec.PQScanBlock(dst, s.codes, s.m, s.lut, ids)
}
