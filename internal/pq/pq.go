// Package pq implements product quantization for the filter phase: the
// SAP-space vectors are split into M subspaces, each subspace is vector-
// quantized to at most 256 centroids (internal/kmeans), and every point is
// stored as M one-byte centroid codes instead of dim float64s. At query
// time one asymmetric distance table (ADT) is computed from the prepared
// query — lut[m][c] = ‖q_m − centroid_{m,c}‖² — after which a candidate's
// approximate squared distance is M table lookups, independent of dim.
//
// The quantizer is trained on the SAP ciphertexts, not the plaintexts:
// everything the server learns from the codes is a lossy function of data
// it already stores, so the compressed tier adds no leakage beyond the
// DCPE encryption the filter phase already rests on. Exact ordering is
// still owed to the DCE refine phase — PQ distances only steer the filter
// walk, so a larger over-fetch k′ recovers what the quantization loses.
package pq

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ppanns/internal/kmeans"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// LUTStride is the per-subspace stride of every ADT, fixed at 256 (the
// code range of one byte) regardless of the trained centroid count, so the
// scan kernel's index arithmetic — lut[m·256 + code] — never depends on K.
const LUTStride = 256

// TrainConfig parameterizes codebook training.
type TrainConfig struct {
	// M is the number of subquantizers (bytes per encoded point). It must
	// divide into dim sensibly: 1 ≤ M ≤ dim. Default 16.
	M int
	// K is the number of centroids per subspace, at most 256 (one byte of
	// code). Defaults to 256, clamped to the training-set size.
	K int
	// MaxSample bounds the training set: corpora larger than this are
	// subsampled (seeded) before clustering, which loses nothing at PQ's
	// granularity and keeps million-vector training in seconds. Default
	// 8192.
	MaxSample int
	// Iters bounds the Lloyd iterations per subspace (default 8 — PQ
	// codebooks converge fast and the encode pass dominates anyway).
	Iters int
	// Seed drives subsampling and k-means++ seeding.
	Seed uint64
}

func (c TrainConfig) withDefaults(n int) TrainConfig {
	if c.M <= 0 {
		c.M = 16
	}
	if c.K <= 0 || c.K > LUTStride {
		c.K = LUTStride
	}
	if c.MaxSample <= 0 {
		c.MaxSample = 8192
	}
	if c.Iters <= 0 {
		c.Iters = 8
	}
	if c.K > n {
		c.K = n
	}
	return c
}

// Codebook holds the trained per-subspace centroids. Subspace m covers
// vector elements [off[m], off[m]+width[m]); when M does not divide dim the
// first dim%M subspaces are one element wider.
type Codebook struct {
	dim   int
	m     int
	k     int
	off   []int // subspace start offsets, len m
	width []int // subspace widths, len m
	// cents[m] is subspace m's flat centroid block: k rows of width[m]
	// float64s.
	cents [][]float64
}

// Train fits a codebook to the given vectors (typically the SAP
// ciphertexts of the corpus).
func Train(vectors [][]float64, cfg TrainConfig) (*Codebook, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("pq: empty training set")
	}
	dim := len(vectors[0])
	cfg = cfg.withDefaults(len(vectors))
	if cfg.M > dim {
		return nil, fmt.Errorf("pq: M=%d exceeds dim=%d", cfg.M, dim)
	}

	sample := vectors
	if len(sample) > cfg.MaxSample {
		r := rng.NewSeeded(cfg.Seed ^ 0x9a7c)
		sample = make([][]float64, cfg.MaxSample)
		for i := range sample {
			sample[i] = vectors[r.IntN(len(vectors))]
		}
	}

	cb := newCodebook(dim, cfg.M, cfg.K)
	sub := make([][]float64, len(sample))
	for m := 0; m < cfg.M; m++ {
		o, w := cb.off[m], cb.width[m]
		for i, v := range sample {
			sub[i] = v[o : o+w]
		}
		res, err := kmeans.Fit(sub, kmeans.Config{
			K: cfg.K, MaxIters: cfg.Iters, Seed: cfg.Seed + uint64(m)*0x9e37,
		})
		if err != nil {
			return nil, fmt.Errorf("pq: subspace %d: %w", m, err)
		}
		flat := make([]float64, cfg.K*w)
		for c, cent := range res.Centroids {
			copy(flat[c*w:], cent)
		}
		cb.cents[m] = flat
	}
	return cb, nil
}

// newCodebook lays out the subspace split for dim and m.
func newCodebook(dim, m, k int) *Codebook {
	cb := &Codebook{
		dim:   dim,
		m:     m,
		k:     k,
		off:   make([]int, m),
		width: make([]int, m),
		cents: make([][]float64, m),
	}
	base, rem := dim/m, dim%m
	off := 0
	for j := 0; j < m; j++ {
		w := base
		if j < rem {
			w++
		}
		cb.off[j] = off
		cb.width[j] = w
		off += w
	}
	return cb
}

// CodebookFromCentroids reassembles a codebook from its serialized parts:
// cents[m] must hold k rows of the subspace-m width (the layout Centroids
// returns).
func CodebookFromCentroids(dim, m, k int, cents [][]float64) (*Codebook, error) {
	if m <= 0 || m > dim || k <= 0 || k > LUTStride {
		return nil, fmt.Errorf("pq: invalid codebook shape dim=%d m=%d k=%d", dim, m, k)
	}
	if len(cents) != m {
		return nil, fmt.Errorf("pq: %d centroid blocks for m=%d", len(cents), m)
	}
	cb := newCodebook(dim, m, k)
	for j := 0; j < m; j++ {
		if len(cents[j]) != k*cb.width[j] {
			return nil, fmt.Errorf("pq: subspace %d centroid block has %d floats, want %d",
				j, len(cents[j]), k*cb.width[j])
		}
		cb.cents[j] = cents[j]
	}
	return cb, nil
}

// Dim returns the full vector dimension the codebook was trained on.
func (cb *Codebook) Dim() int { return cb.dim }

// M returns the number of subquantizers (bytes per encoded point).
func (cb *Codebook) M() int { return cb.m }

// K returns the number of centroids per subspace.
func (cb *Codebook) K() int { return cb.k }

// Centroids exposes the flat per-subspace centroid blocks (k rows of the
// subspace width each) for serialization. Callers must not modify them.
func (cb *Codebook) Centroids() [][]float64 { return cb.cents }

// SizeBytes returns the in-memory footprint of the centroid tables.
func (cb *Codebook) SizeBytes() int {
	total := 0
	for _, c := range cb.cents {
		total += 8 * len(c)
	}
	return total
}

// EncodeInto quantizes v into dst (len M, one centroid code per
// subspace).
func (cb *Codebook) EncodeInto(dst []byte, v []float64) {
	if len(v) != cb.dim {
		panic(fmt.Sprintf("pq: encoding %d-dim vector with %d-dim codebook", len(v), cb.dim))
	}
	for j := 0; j < cb.m; j++ {
		o, w := cb.off[j], cb.width[j]
		sub := v[o : o+w]
		flat := cb.cents[j]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < cb.k; c++ {
			if d := vec.SqDist(sub, flat[c*w:c*w+w]); d < bestD {
				best, bestD = c, d
			}
		}
		dst[j] = byte(best)
	}
}

// EncodeAll encodes every vector into a fresh code store, parallel across
// GOMAXPROCS workers (encoding a million points is the expensive half of a
// PQ build).
func (cb *Codebook) EncodeAll(vectors [][]float64) *CodeStore {
	cs := NewCodeStoreN(cb.m, len(vectors))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(vectors) {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vectors); i += workers {
				cb.EncodeInto(cs.Row(i), vectors[i])
			}
		}(w)
	}
	wg.Wait()
	return cs
}

// FillLUT writes the asymmetric distance table for query q into lut
// (M·LUTStride float64s): lut[m·256+c] = ‖q_m − centroid_{m,c}‖². Entries
// past the trained K are never referenced by any code and are left
// untouched.
func (cb *Codebook) FillLUT(lut []float64, q []float64) {
	if len(q) != cb.dim {
		panic(fmt.Sprintf("pq: %d-dim query against %d-dim codebook", len(q), cb.dim))
	}
	if len(lut) < cb.m*LUTStride {
		panic(fmt.Sprintf("pq: LUT of %d floats, want %d", len(lut), cb.m*LUTStride))
	}
	for j := 0; j < cb.m; j++ {
		o, w := cb.off[j], cb.width[j]
		sub := q[o : o+w]
		flat := cb.cents[j]
		row := lut[j*LUTStride:]
		for c := 0; c < cb.k; c++ {
			row[c] = vec.SqDist(sub, flat[c*w:c*w+w])
		}
	}
}
