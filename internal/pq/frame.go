package pq

import (
	"encoding/binary"
	"fmt"
)

// AppendCodeFrame appends a length-prefixed PQ code row to dst. A nil code
// encodes as length 0 — the "database carries no PQ tier" marker in WAL
// insert payloads.
func AppendCodeFrame(dst []byte, code []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(code)))
	return append(dst, code...)
}

// ParseCodeFrame decodes a frame written by AppendCodeFrame, returning the
// code row (nil for the no-tier marker; otherwise a view into b — copy to
// retain) and the remaining bytes.
func ParseCodeFrame(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("pq: code frame truncated at length")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, nil, fmt.Errorf("pq: code frame holds %d bytes, want %d", len(b), n)
	}
	if n == 0 {
		return nil, b, nil
	}
	return b[:n:n], b[n:], nil
}
