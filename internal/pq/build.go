package pq

// Store pairs a trained codebook with the code arena it encoded — the unit
// the serving tier carries per snapshot and the serialization layer
// persists alongside the ciphertext arena.
type Store struct {
	Book  *Codebook
	Codes *CodeStore
	// TrainedOn is the corpus size the codebook was trained against. The
	// compactor's deterministic retrain rule keys off it: once the database
	// has outgrown the training corpus 2×, the codebook is refit; below
	// that it is reused and only the codes are folded.
	TrainedOn int
	// Cfg is the training configuration (with defaults resolved), retained
	// so retrains reproduce the original training economics and seed.
	Cfg TrainConfig
}

// Build trains a codebook on vectors and encodes all of them: the one-call
// construction the data owner (and the on-demand rebuild path for old
// database files) uses.
func Build(vectors [][]float64, cfg TrainConfig) (*Store, error) {
	book, err := Train(vectors, cfg)
	if err != nil {
		return nil, err
	}
	return &Store{
		Book:      book,
		Codes:     book.EncodeAll(vectors),
		TrainedOn: len(vectors),
		Cfg:       cfg.withDefaults(len(vectors)),
	}, nil
}

// NeedsRetrain reports whether the deterministic retrain rule fires for a
// corpus that has grown to n points.
func (s *Store) NeedsRetrain(n int) bool {
	return s.TrainedOn > 0 && n >= 2*s.TrainedOn
}

// Snapshot returns a header clone for snapshot publication (shared arena,
// shared codebook — both immutable once published).
func (s *Store) Snapshot() *Store {
	return &Store{Book: s.Book, Codes: s.Codes.Snapshot(), TrainedOn: s.TrainedOn, Cfg: s.Cfg}
}

// SizeBytes returns the total in-memory footprint: centroid tables plus
// the code arena.
func (s *Store) SizeBytes() int { return s.Book.SizeBytes() + s.Codes.SizeBytes() }
