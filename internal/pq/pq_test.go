package pq

import (
	"bytes"
	"strings"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

func randVecs(seed uint64, n, dim int) [][]float64 {
	r := rng.NewSeeded(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = rng.GaussianVec(r, dim, 3)
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
	if _, err := Train(randVecs(1, 50, 4), TrainConfig{M: 8}); err == nil {
		t.Fatal("expected error for M > dim")
	}
}

func TestSubspaceLayout(t *testing.T) {
	// dim=10, M=4: widths must be 3,3,2,2 and cover [0,10) contiguously.
	cb := newCodebook(10, 4, 16)
	wantW := []int{3, 3, 2, 2}
	off := 0
	for j := 0; j < 4; j++ {
		if cb.width[j] != wantW[j] || cb.off[j] != off {
			t.Fatalf("subspace %d: off=%d width=%d, want off=%d width=%d",
				j, cb.off[j], cb.width[j], off, wantW[j])
		}
		off += cb.width[j]
	}
	if off != 10 {
		t.Fatalf("subspaces cover %d dims, want 10", off)
	}
}

// TestEncodeNearestCentroid checks the encoder invariant: every emitted
// code is the argmin centroid of its subspace.
func TestEncodeNearestCentroid(t *testing.T) {
	const n, dim = 300, 10
	vecs := randVecs(2, n, dim)
	store, err := Build(vecs, TrainConfig{M: 4, K: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cb := store.Book
	for id := 0; id < n; id++ {
		row := store.Codes.Row(id)
		for j := 0; j < cb.M(); j++ {
			o, w := cb.off[j], cb.width[j]
			sub := vecs[id][o : o+w]
			flat := cb.cents[j]
			got := vec.SqDist(sub, flat[int(row[j])*w:int(row[j])*w+w])
			for c := 0; c < cb.K(); c++ {
				if d := vec.SqDist(sub, flat[c*w:c*w+w]); d < got-1e-12 {
					t.Fatalf("point %d subspace %d: code %d at %g but centroid %d at %g",
						id, j, row[j], got, c, d)
				}
			}
		}
	}
}

// TestScannerADTConsistency checks the asymmetric-distance contract: for
// every candidate, Scanner.Dist, Scanner.DistBlock (the dispatched kernel)
// and the explicit sum of subspace distances to the assigned centroids all
// agree bit-for-bit.
func TestScannerADTConsistency(t *testing.T) {
	const n, dim = 400, 13 // 13 % M != 0 exercises the ragged layout
	vecs := randVecs(3, n, dim)
	store, err := Build(vecs, TrainConfig{M: 4, K: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cb := store.Book
	queries := randVecs(4, 10, dim)

	var sc Scanner
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	blk := make([]float64, n)
	for _, q := range queries {
		sc.Prepare(cb, store.Codes, q)
		sc.DistBlock(blk, ids)
		for id := 0; id < n; id++ {
			row := store.Codes.Row(id)
			var want float64
			for j := 0; j < cb.M(); j++ {
				o, w := cb.off[j], cb.width[j]
				c := int(row[j])
				want += vec.SqDist(q[o:o+w], cb.cents[j][c*w:c*w+w])
			}
			if got := sc.Dist(int32(id)); got != want {
				t.Fatalf("Dist(%d) = %g, want %g", id, got, want)
			}
			if blk[id] != want {
				t.Fatalf("DistBlock[%d] = %g, want %g", id, blk[id], want)
			}
		}
	}
}

// TestBuildDeterminism: same corpus + seed must yield identical codebooks
// and codes (the compactor's retrain rule depends on it).
func TestBuildDeterminism(t *testing.T) {
	vecs := randVecs(5, 500, 8)
	a, err := Build(vecs, TrainConfig{M: 4, K: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(vecs, TrainConfig{M: 4, K: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Codes.Raw(), b.Codes.Raw()) {
		t.Fatal("same seed produced different codes")
	}
	for j, block := range a.Book.Centroids() {
		other := b.Book.Centroids()[j]
		for i := range block {
			if block[i] != other[i] {
				t.Fatalf("subspace %d centroid float %d differs", j, i)
			}
		}
	}
}

func TestCodeStoreSnapshotDiscipline(t *testing.T) {
	s := NewCodeStore(2, 4)
	s.AppendRow([]byte{1, 2})
	s.AppendRow([]byte{3, 4})
	pub := s.Snapshot()

	// Extend must not change any published view's length or rows.
	ext := pub.Extend([]byte{5, 6})
	if pub.Len() != 2 || s.Len() != 2 || ext.Len() != 3 {
		t.Fatalf("lengths after Extend: pub=%d s=%d ext=%d", pub.Len(), s.Len(), ext.Len())
	}
	if !bytes.Equal(ext.Row(2), []byte{5, 6}) || !bytes.Equal(pub.Row(1), []byte{3, 4}) {
		t.Fatalf("rows corrupted after Extend: ext.Row(2)=%v pub.Row(1)=%v", ext.Row(2), pub.Row(1))
	}

	// Compacted zeroes dead ids in a private arena, preserving ids.
	comp := ext.Compacted(func(id int) bool { return id == 1 })
	if comp.Len() != 3 {
		t.Fatalf("Compacted len = %d, want 3", comp.Len())
	}
	if !bytes.Equal(comp.Row(0), []byte{1, 2}) || !bytes.Equal(comp.Row(1), []byte{0, 0}) ||
		!bytes.Equal(comp.Row(2), []byte{5, 6}) {
		t.Fatalf("Compacted rows wrong: %v %v %v", comp.Row(0), comp.Row(1), comp.Row(2))
	}
	// ...and must not share backing with the source.
	comp.Row(0)[0] = 99
	if ext.Row(0)[0] != 1 {
		t.Fatal("Compacted shares its arena with the source")
	}
}

func TestStoreFromRawValidation(t *testing.T) {
	if _, err := StoreFromRaw(0, nil); err == nil {
		t.Fatal("expected error for non-positive width")
	}
	if _, err := StoreFromRaw(4, make([]byte, 7)); err == nil {
		t.Fatal("expected error for ragged arena")
	}
	cs, err := StoreFromRaw(2, []byte{1, 2, 3, 4})
	if err != nil || cs.Len() != 2 {
		t.Fatalf("StoreFromRaw: %v, len %d", err, cs.Len())
	}
}

func TestNeedsRetrain(t *testing.T) {
	s := &Store{TrainedOn: 100}
	for n, want := range map[int]bool{100: false, 199: false, 200: true, 500: true} {
		if got := s.NeedsRetrain(n); got != want {
			t.Fatalf("NeedsRetrain(%d) = %v, want %v", n, got, want)
		}
	}
	if (&Store{}).NeedsRetrain(1000) {
		t.Fatal("zero-valued store must never request a retrain")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	vecs := randVecs(6, 350, 9)
	orig, err := Build(vecs, TrainConfig{M: 3, K: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	got, err := Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if got.Book.Dim() != 9 || got.Book.M() != 3 || got.Book.K() != 32 {
		t.Fatalf("loaded shape dim=%d m=%d k=%d", got.Book.Dim(), got.Book.M(), got.Book.K())
	}
	if got.TrainedOn != orig.TrainedOn || got.Cfg != orig.Cfg {
		t.Fatalf("loaded provenance %+v / %+v, want %+v / %+v",
			got.TrainedOn, got.Cfg, orig.TrainedOn, orig.Cfg)
	}
	if !bytes.Equal(got.Codes.Raw(), orig.Codes.Raw()) {
		t.Fatal("codes changed across round-trip")
	}
	for j, block := range orig.Book.Centroids() {
		other := got.Book.Centroids()[j]
		for i := range block {
			if block[i] != other[i] {
				t.Fatalf("subspace %d centroid float %d changed across round-trip", j, i)
			}
		}
	}

	// One flipped code byte must surface as a CRC failure, not skewed
	// distances.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-10] ^= 0x40
	if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corrupted store loaded: %v", err)
	}
	// Truncation and garbage must error cleanly.
	if _, err := Load(bytes.NewReader(blob[:len(blob)/2])); err == nil {
		t.Fatal("truncated store loaded")
	}
	if _, err := Load(strings.NewReader("NOTAPQST0RE")); err == nil {
		t.Fatal("garbage magic loaded")
	}
}

func TestSaveIncompleteStore(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Store{}).Save(&buf); err == nil {
		t.Fatal("expected error saving incomplete store")
	}
}
