package pq

import "fmt"

// gatherPad is the extra allocated capacity kept past the last code byte.
// The AVX2 scan kernel gathers codes with 32-bit loads, so the final code
// of the final record pulls in up to three bytes beyond the arena; keeping
// the slack inside the same allocation makes the over-read well-defined.
const gatherPad = 8

// CodeStore is the append-only arena of PQ codes, one M-byte row per point,
// addressed by the same ids as the DCE ciphertext arena. It follows the
// same snapshot-publication discipline as dce.CiphertextStore: published
// stores are never mutated, Extend appends past every published length
// under a shared backing, and Compacted produces a private arena with dead
// rows zeroed in place (ids preserved, never renumbered).
//
// Tombstoned ids keep their (stale) codes: the filter index never visits
// deleted points and the serving tier re-checks tombstones on merge, so a
// dead row's bytes are unreachable garbage, not a correctness hazard.
type CodeStore struct {
	m     int
	codes []byte // n·m bytes; allocation always carries ≥ gatherPad slack
}

// alloc returns a code arena of length n with gather slack in capacity.
func alloc(n int) []byte { return make([]byte, n, n+gatherPad) }

// NewCodeStore returns an empty store for M-byte codes with capacity
// preallocated for capHint rows.
func NewCodeStore(m, capHint int) *CodeStore {
	if m <= 0 {
		panic(fmt.Sprintf("pq: non-positive code width %d", m))
	}
	if capHint < 0 {
		capHint = 0
	}
	return &CodeStore{m: m, codes: alloc(m * capHint)[:0]}
}

// NewCodeStoreN returns a store holding n zero-filled rows, for bulk
// encoding: workers fill disjoint Row(i) views in place.
func NewCodeStoreN(m, n int) *CodeStore {
	if m <= 0 {
		panic(fmt.Sprintf("pq: non-positive code width %d", m))
	}
	if n < 0 {
		panic(fmt.Sprintf("pq: negative store size %d", n))
	}
	return &CodeStore{m: m, codes: alloc(m * n)}
}

// StoreFromRaw builds a store from a compact code arena (n rows of m
// bytes, as Raw returns). The bytes are copied into an arena with gather
// slack, so the input is not retained.
func StoreFromRaw(m int, codes []byte) (*CodeStore, error) {
	if m <= 0 {
		return nil, fmt.Errorf("pq: non-positive code width %d", m)
	}
	if len(codes)%m != 0 {
		return nil, fmt.Errorf("pq: code arena of %d bytes is not a multiple of m=%d", len(codes), m)
	}
	arena := alloc(len(codes))
	copy(arena, codes)
	return &CodeStore{m: m, codes: arena}, nil
}

// M returns the code width in bytes.
func (s *CodeStore) M() int { return s.m }

// Len returns the number of rows (tombstones included — row count tracks
// the ciphertext store's id space).
func (s *CodeStore) Len() int { return len(s.codes) / s.m }

// Row returns the mutable M-byte code row of id as a view into the arena.
func (s *CodeStore) Row(id int) []byte {
	base := id * s.m
	return s.codes[base : base+s.m : base+s.m]
}

// Raw exposes the flat code arena (Len()·M bytes). Callers must not
// resize it; the serialization path reads it directly.
func (s *CodeStore) Raw() []byte { return s.codes }

// SizeBytes returns the in-memory footprint of the code arena.
func (s *CodeStore) SizeBytes() int { return len(s.codes) }

// grow ensures capacity for rows more rows plus the gather slack,
// reallocating when needed. As with the ciphertext arena, published
// snapshots sharing the old backing are unaffected: a reallocation gives
// this store a private copy, an in-place extension only writes past every
// published length.
func (s *CodeStore) grow(rows int) {
	need := len(s.codes) + rows*s.m + gatherPad
	if need <= cap(s.codes) {
		return
	}
	newCap := 2 * cap(s.codes)
	if newCap < need {
		newCap = need
	}
	na := make([]byte, len(s.codes), newCap)
	copy(na, s.codes)
	s.codes = na
}

// AppendRow copies an M-byte code row in place and returns its id.
func (s *CodeStore) AppendRow(code []byte) int {
	if len(code) != s.m {
		panic(fmt.Sprintf("pq: appending %d-byte code to store of width %d", len(code), s.m))
	}
	s.grow(1)
	s.codes = append(s.codes, code...)
	return s.Len() - 1
}

// Extend appends a code row and returns a new store header covering the
// extended arena, leaving the receiver's view unchanged — the O(1) append
// for the serving tier's delta path, mirroring dce.CiphertextStore.Extend
// (same single-writer discipline: Extends on one chain are serialized and
// published stores are never re-extended from two snapshots).
func (s *CodeStore) Extend(code []byte) *CodeStore {
	ns := &CodeStore{m: s.m, codes: s.codes}
	ns.AppendRow(code)
	return ns
}

// Reserve pre-allocates capacity for rows more appends so they cannot
// reallocate (compaction grafts under the writer mutex).
func (s *CodeStore) Reserve(rows int) { s.grow(rows) }

// Compacted returns a store with a private arena holding the receiver's
// rows, with every id for which dead(id) reports true zeroed. Ids are
// preserved, matching dce.CiphertextStore.Compacted.
func (s *CodeStore) Compacted(dead func(id int) bool) *CodeStore {
	n := s.Len()
	ns := &CodeStore{m: s.m, codes: alloc(n * s.m)}
	for id := 0; id < n; id++ {
		if dead != nil && dead(id) {
			continue
		}
		copy(ns.codes[id*s.m:], s.Row(id))
	}
	return ns
}

// Snapshot returns a header clone sharing the arena, for the snapshot-
// publication discipline (the arena is immutable once published; appends
// go through Extend).
func (s *CodeStore) Snapshot() *CodeStore {
	return &CodeStore{m: s.m, codes: s.codes}
}
