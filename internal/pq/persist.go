package pq

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary persistence of a Store: a fixed header, the flat centroid blocks,
// then the code arena, with one streaming CRC32 over centroids and codes so
// storage corruption surfaces at load time instead of as silently skewed
// filter distances. The section is self-framing (fixed magic, lengths
// derivable from the header), so container formats can embed it and keep
// reading their own payloads after it.

const storeMagic = "PQSTORE1"

// Save writes the store in the PQSTORE1 format.
func (s *Store) Save(w io.Writer) error {
	if s == nil || s.Book == nil || s.Codes == nil {
		return fmt.Errorf("pq: saving incomplete store")
	}
	if s.Codes.M() != s.Book.M() {
		return fmt.Errorf("pq: code width %d does not match codebook M %d", s.Codes.M(), s.Book.M())
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return err
	}
	head := []int64{
		int64(s.Book.Dim()), int64(s.Book.M()), int64(s.Book.K()),
		int64(s.Codes.Len()), int64(s.TrainedOn),
		int64(s.Cfg.M), int64(s.Cfg.K), int64(s.Cfg.MaxSample),
		int64(s.Cfg.Iters), int64(s.Cfg.Seed),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var crc uint32
	buf := make([]byte, 8)
	for _, block := range s.Book.Centroids() {
		for _, f := range block {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(f))
			crc = crc32.Update(crc, crc32.IEEETable, buf)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	codes := s.Codes.Raw()
	crc = crc32.Update(crc, crc32.IEEETable, codes)
	if _, err := bw.Write(codes); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a store written by Save. The reader is consumed exactly to the
// end of the PQ section.
func Load(r io.Reader) (*Store, error) {
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("pq: reading magic: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("pq: bad magic %q", magic)
	}
	head := make([]int64, 10)
	for i := range head {
		if err := binary.Read(r, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("pq: reading header: %w", err)
		}
	}
	dim, m, k := int(head[0]), int(head[1]), int(head[2])
	n, trainedOn := int(head[3]), int(head[4])
	if dim <= 0 || m <= 0 || m > dim || k <= 0 || k > LUTStride || n < 0 || trainedOn < 0 {
		return nil, fmt.Errorf("pq: implausible header dim=%d m=%d k=%d n=%d", dim, m, k, n)
	}
	cfg := TrainConfig{
		M: int(head[5]), K: int(head[6]), MaxSample: int(head[7]),
		Iters: int(head[8]), Seed: uint64(head[9]),
	}
	// Rebuild the subspace layout to know each centroid block's width.
	layout := newCodebook(dim, m, k)
	var crc uint32
	buf := make([]byte, 8)
	cents := make([][]float64, m)
	for j := 0; j < m; j++ {
		block := make([]float64, k*layout.width[j])
		for i := range block {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("pq: reading centroids: %w", err)
			}
			crc = crc32.Update(crc, crc32.IEEETable, buf)
			block[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		cents[j] = block
	}
	codes := make([]byte, n*m)
	if _, err := io.ReadFull(r, codes); err != nil {
		return nil, fmt.Errorf("pq: reading codes: %w", err)
	}
	crc = crc32.Update(crc, crc32.IEEETable, codes)
	var stored uint32
	if err := binary.Read(r, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("pq: reading checksum: %w", err)
	}
	if crc != stored {
		return nil, fmt.Errorf("pq: store corrupted (crc %08x, want %08x)", crc, stored)
	}
	book, err := CodebookFromCentroids(dim, m, k, cents)
	if err != nil {
		return nil, err
	}
	cs, err := StoreFromRaw(m, codes)
	if err != nil {
		return nil, err
	}
	return &Store{Book: book, Codes: cs, TrainedOn: trainedOn, Cfg: cfg}, nil
}
