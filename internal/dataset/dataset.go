// Package dataset provides the evaluation corpora: synthetic generators
// matching the dimensionality and value profile of the paper's four
// datasets (Table I: Sift1M d=128, Gist d=960, Glove d=100, Deep1M d=96),
// brute-force ground truth, and recall computation.
//
// The real corpora are public downloads the offline build cannot fetch;
// the generators below are the documented substitution (DESIGN.md §3).
// Each produces a clustered distribution — the property proximity graphs
// and LSH depend on — with the source dataset's characteristic value range
// and intrinsic structure:
//
//   - SIFT-like: non-negative integer-ish coordinates in [0,255], Gaussian
//     mixture (SIFT descriptors are clustered histogram counts);
//   - GIST-like: low intrinsic dimension embedded in d=960 via a fixed
//     random linear map, small positive values (global image descriptors
//     are strongly correlated across dimensions);
//   - GloVe-like: zero-mean, per-point scale mixing for heavier tails
//     (word embeddings are norm-heterogeneous);
//   - Deep-like: ℓ2-normalized CNN-embedding-style mixture (Deep1M/Deep1B
//     features are unit-normalized).
//
// Real fvecs/bvecs corpora can be substituted via FromFvecs.
package dataset

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Data is one evaluation corpus: database vectors, query vectors, and
// (lazily computed) exact neighbors.
type Data struct {
	Name    string
	Dim     int
	Train   [][]float64
	Queries [][]float64

	gtMu sync.Mutex
	gtK  int
	gt   [][]int
}

// Spec parameterizes a synthetic corpus.
type Spec struct {
	Name     string
	Dim      int
	N        int // database size
	Queries  int
	Clusters int // mixture components; default max(16, N/500)
	Seed     uint64
}

func (s Spec) clusters() int {
	if s.Clusters > 0 {
		return s.Clusters
	}
	c := s.N / 500
	if c < 16 {
		c = 16
	}
	return c
}

// SIFTLike generates a corpus with SIFT's dimensionality and value range.
func SIFTLike(n, queries int, seed uint64) *Data {
	spec := Spec{Name: "sift-like", Dim: 128, N: n, Queries: queries, Seed: seed}
	r := rng.NewSeeded(seed ^ 0x51f7)
	k := spec.clusters()
	centers := make([][]float64, k)
	for i := range centers {
		c := make([]float64, spec.Dim)
		for j := range c {
			c[j] = rng.Uniform(r, 10, 200)
		}
		centers[i] = c
	}
	sample := func() []float64 {
		c := centers[r.IntN(k)]
		v := make([]float64, spec.Dim)
		for j := range v {
			x := c[j] + r.NormFloat64()*25
			// SIFT coordinates are small non-negative counts capped at 255.
			v[j] = math.Round(clamp(x, 0, 255))
		}
		return v
	}
	return build(spec, sample)
}

// GISTLike generates a d=960 corpus with low intrinsic dimension.
func GISTLike(n, queries int, seed uint64) *Data {
	spec := Spec{Name: "gist-like", Dim: 960, N: n, Queries: queries, Seed: seed}
	r := rng.NewSeeded(seed ^ 0x6157)
	const latent = 24
	// Fixed random embedding of a latent space into R^960.
	embed := make([][]float64, spec.Dim)
	for i := range embed {
		embed[i] = rng.GaussianVec(r, latent, 1/math.Sqrt(latent))
	}
	k := spec.clusters()
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = rng.GaussianVec(r, latent, 1)
	}
	sample := func() []float64 {
		z := vec.Add(nil, centers[r.IntN(k)], rng.GaussianVec(r, latent, 0.25))
		v := make([]float64, spec.Dim)
		for i := range v {
			// GIST values are small and non-negative.
			v[i] = clamp(0.1+0.08*vec.Dot(embed[i], z)+0.01*r.NormFloat64(), 0, 1.5)
		}
		return v
	}
	return build(spec, sample)
}

// GloVeLike generates a d=100 zero-mean corpus with heterogeneous norms.
func GloVeLike(n, queries int, seed uint64) *Data {
	spec := Spec{Name: "glove-like", Dim: 100, N: n, Queries: queries, Seed: seed}
	r := rng.NewSeeded(seed ^ 0x610e)
	k := spec.clusters()
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = rng.GaussianVec(r, spec.Dim, 2)
	}
	sample := func() []float64 {
		c := centers[r.IntN(k)]
		// Per-point scale mixing produces the heavy-tailed norm profile of
		// word embeddings.
		scale := 0.4 + r.ExpFloat64()*0.4
		return vec.AXPY(nil, scale, rng.GaussianVec(r, spec.Dim, 1), c)
	}
	return build(spec, sample)
}

// DeepLike generates a d=96 ℓ2-normalized corpus.
func DeepLike(n, queries int, seed uint64) *Data {
	spec := Spec{Name: "deep-like", Dim: 96, N: n, Queries: queries, Seed: seed}
	r := rng.NewSeeded(seed ^ 0xdeeb)
	k := spec.clusters()
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = vec.Normalize(rng.GaussianVec(r, spec.Dim, 1))
	}
	noise := 0.35 / math.Sqrt(float64(spec.Dim)) // ‖perturbation‖ ≈ 0.35 ≪ inter-center ≈ √2
	sample := func() []float64 {
		v := vec.AXPY(nil, 1, rng.GaussianVec(r, spec.Dim, noise), centers[r.IntN(k)])
		return vec.Normalize(v)
	}
	return build(spec, sample)
}

// ByName builds one of the four Table-I stand-ins ("sift", "gist",
// "glove", "deep") at the given scale.
func ByName(name string, n, queries int, seed uint64) (*Data, error) {
	switch name {
	case "sift", "sift-like":
		return SIFTLike(n, queries, seed), nil
	case "gist", "gist-like":
		return GISTLike(n, queries, seed), nil
	case "glove", "glove-like":
		return GloVeLike(n, queries, seed), nil
	case "deep", "deep-like":
		return DeepLike(n, queries, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// All returns the four Table-I stand-ins at the given scale.
func All(n, queries int, seed uint64) []*Data {
	return []*Data{
		SIFTLike(n, queries, seed),
		GISTLike(n, queries, seed),
		GloVeLike(n, queries, seed),
		DeepLike(n, queries, seed),
	}
}

// FromFvecs wraps externally loaded corpora (e.g. the real Sift1M files).
// Every shape mismatch a loader can produce — nil or empty sides, train and
// query files of different dimensionality — is rejected here with a
// descriptive error, instead of surfacing as an index-build panic or a
// wrong-dimension search failure long after the files were read.
func FromFvecs(name string, train, queries *vec.Dataset) (*Data, error) {
	if train == nil || queries == nil {
		return nil, fmt.Errorf("dataset: %s: nil %s corpus", name, missingSide(train))
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("dataset: %s: train corpus is empty", name)
	}
	if queries.Len() == 0 {
		return nil, fmt.Errorf("dataset: %s: query corpus is empty", name)
	}
	if train.Dim() != queries.Dim() {
		return nil, fmt.Errorf("dataset: %s: train vectors are %d-dimensional but query vectors are %d-dimensional; the corpora do not belong together",
			name, train.Dim(), queries.Dim())
	}
	return &Data{Name: name, Dim: train.Dim(), Train: train.Slices(), Queries: queries.Slices()}, nil
}

func missingSide(train *vec.Dataset) string {
	if train == nil {
		return "train"
	}
	return "query"
}

func build(spec Spec, sample func() []float64) *Data {
	d := &Data{Name: spec.Name, Dim: spec.Dim}
	d.Train = make([][]float64, spec.N)
	for i := range d.Train {
		d.Train[i] = sample()
	}
	d.Queries = make([][]float64, spec.Queries)
	for i := range d.Queries {
		d.Queries[i] = sample()
	}
	return d
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// GroundTruth returns the exact k nearest database ids for every query,
// computed by parallel brute force and cached (recomputed if k grows).
func (d *Data) GroundTruth(k int) [][]int {
	d.gtMu.Lock()
	defer d.gtMu.Unlock()
	if d.gt != nil && d.gtK >= k {
		out := make([][]int, len(d.gt))
		for i, row := range d.gt {
			out[i] = row[:k]
		}
		return out
	}
	gt := make([][]int, len(d.Queries))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for qi := w; qi < len(d.Queries); qi += workers {
				gt[qi] = ExactKNN(d.Train, d.Queries[qi], k)
			}
		}(w)
	}
	wg.Wait()
	d.gt, d.gtK = gt, k
	return gt
}

// ExactKNN returns the exact k nearest ids of q in data, closest first.
func ExactKNN(data [][]float64, q []float64, k int) []int {
	type pair struct {
		id int
		d  float64
	}
	// Bounded selection: keep a slice as a simple max-at-end structure.
	best := make([]pair, 0, k+1)
	for i, v := range data {
		dist := vec.SqDist(v, q)
		if len(best) == k && dist >= best[len(best)-1].d {
			continue
		}
		pos := sort.Search(len(best), func(j int) bool { return best[j].d > dist })
		best = append(best, pair{})
		copy(best[pos+1:], best[pos:])
		best[pos] = pair{id: i, d: dist}
		if len(best) > k {
			best = best[:k]
		}
	}
	ids := make([]int, len(best))
	for i, p := range best {
		ids[i] = p.id
	}
	return ids
}

// Recall computes |got ∩ want| / |want| — the paper's Recall@k.
func Recall(got, want []int) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[int]struct{}, len(want))
	for _, id := range want {
		set[id] = struct{}{}
	}
	hit := 0
	for _, id := range got {
		if _, ok := set[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// MeanRecall averages Recall over a query batch.
func MeanRecall(got, want [][]int) float64 {
	if len(got) != len(want) || len(got) == 0 {
		return 0
	}
	var sum float64
	for i := range got {
		sum += Recall(got[i], want[i])
	}
	return sum / float64(len(got))
}

// Stats describes a corpus for Table I.
type Stats struct {
	Name     string
	Dim      int
	N        int
	Queries  int
	MaxAbs   float64
	MeanNorm float64
	BetaLo   float64 // √M
	BetaHi   float64 // 2M√d
}

// Describe computes Table-I style statistics plus the β range DCPE allows.
func (d *Data) Describe() Stats {
	maxAbs := vec.MaxAbs(d.Train)
	var norm float64
	for _, v := range d.Train {
		norm += vec.Norm(v)
	}
	if len(d.Train) > 0 {
		norm /= float64(len(d.Train))
	}
	return Stats{
		Name: d.Name, Dim: d.Dim, N: len(d.Train), Queries: len(d.Queries),
		MaxAbs: maxAbs, MeanNorm: norm,
		BetaLo: math.Sqrt(maxAbs), BetaHi: 2 * maxAbs * math.Sqrt(float64(d.Dim)),
	}
}
