package dataset

import (
	"math"
	"strings"
	"testing"

	"ppanns/internal/vec"
)

func TestGeneratorsShapes(t *testing.T) {
	cases := []struct {
		data *Data
		dim  int
	}{
		{SIFTLike(200, 10, 1), 128},
		{GISTLike(100, 10, 1), 960},
		{GloVeLike(200, 10, 1), 100},
		{DeepLike(200, 10, 1), 96},
	}
	for _, c := range cases {
		if c.data.Dim != c.dim {
			t.Errorf("%s: dim %d, want %d", c.data.Name, c.data.Dim, c.dim)
		}
		if len(c.data.Train) == 0 || len(c.data.Queries) != 10 {
			t.Errorf("%s: sizes %d/%d", c.data.Name, len(c.data.Train), len(c.data.Queries))
		}
		for _, v := range c.data.Train[:5] {
			if len(v) != c.dim {
				t.Errorf("%s: vector dim %d", c.data.Name, len(v))
			}
		}
	}
}

func TestSIFTLikeValueRange(t *testing.T) {
	d := SIFTLike(300, 5, 2)
	for _, v := range d.Train {
		for _, x := range v {
			if x < 0 || x > 255 || x != math.Round(x) {
				t.Fatalf("SIFT-like coordinate %v outside integer [0,255]", x)
			}
		}
	}
}

func TestDeepLikeNormalized(t *testing.T) {
	d := DeepLike(200, 5, 3)
	for _, v := range d.Train {
		if math.Abs(vec.Norm(v)-1) > 1e-9 {
			t.Fatalf("Deep-like vector has norm %v", vec.Norm(v))
		}
	}
}

func TestGISTLikeLowIntrinsicDim(t *testing.T) {
	// Coordinates must be strongly correlated: the variance of coordinate
	// sums should far exceed the sum of independent variances... simply
	// check values live in the documented [0, 1.5] band and are not
	// degenerate.
	d := GISTLike(200, 5, 4)
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for _, v := range d.Train {
		for _, x := range v {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
	}
	if min < 0 || max > 1.5 || max-min < 0.05 {
		t.Fatalf("GIST-like range [%v, %v] implausible", min, max)
	}
}

func TestGloVeLikeZeroMean(t *testing.T) {
	d := GloVeLike(2000, 5, 5)
	var mean float64
	count := 0
	for _, v := range d.Train {
		for _, x := range v {
			mean += x
			count++
		}
	}
	mean /= float64(count)
	if math.Abs(mean) > 0.3 {
		t.Fatalf("GloVe-like mean %v, want ≈0", mean)
	}
}

func TestClusteredness(t *testing.T) {
	// Within a clustered corpus, a point's nearest neighbor must on
	// average be far closer than a random pair — the property HNSW
	// performance depends on.
	d := DeepLike(1000, 0, 6)
	var nnDist, randDist float64
	const samples = 50
	for i := 0; i < samples; i++ {
		q := d.Train[i]
		best := math.Inf(1)
		for j, v := range d.Train {
			if j == i {
				continue
			}
			if dd := vec.SqDist(q, v); dd < best {
				best = dd
			}
		}
		nnDist += best
		randDist += vec.SqDist(q, d.Train[(i*37+101)%len(d.Train)])
	}
	if nnDist >= randDist*0.6 {
		t.Fatalf("data not clustered: mean NN %v vs random %v", nnDist/samples, randDist/samples)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sift", "gist", "glove", "deep"} {
		d, err := ByName(name, 50, 5, 7)
		if err != nil || d == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("mnist", 50, 5, 7); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestAll(t *testing.T) {
	ds := All(50, 5, 8)
	if len(ds) != 4 {
		t.Fatalf("All returned %d datasets", len(ds))
	}
}

func TestExactKNN(t *testing.T) {
	data := [][]float64{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	got := ExactKNN(data, []float64{1.4, 0}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ExactKNN = %v", got)
	}
	// k larger than the dataset.
	got = ExactKNN(data, []float64{0, 0}, 10)
	if len(got) != 4 || got[0] != 0 {
		t.Fatalf("ExactKNN overflow = %v", got)
	}
}

func TestGroundTruthMatchesExact(t *testing.T) {
	d := GloVeLike(500, 20, 9)
	gt := d.GroundTruth(5)
	if len(gt) != 20 {
		t.Fatalf("ground truth rows %d", len(gt))
	}
	for qi, row := range gt {
		want := ExactKNN(d.Train, d.Queries[qi], 5)
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("query %d rank %d: %d vs %d", qi, i, row[i], want[i])
			}
		}
	}
	// Cached call with smaller k must slice, not recompute.
	gt3 := d.GroundTruth(3)
	if len(gt3[0]) != 3 {
		t.Fatalf("cached slice length %d", len(gt3[0]))
	}
}

func TestRecall(t *testing.T) {
	if r := Recall([]int{1, 2, 3}, []int{1, 2, 4}); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("Recall = %v", r)
	}
	if Recall(nil, nil) != 1 {
		t.Fatal("Recall of empty want should be 1")
	}
	if MeanRecall([][]int{{1}, {2}}, [][]int{{1}, {3}}) != 0.5 {
		t.Fatal("MeanRecall wrong")
	}
	if MeanRecall(nil, [][]int{{1}}) != 0 {
		t.Fatal("MeanRecall of mismatched lengths should be 0")
	}
}

func TestDescribe(t *testing.T) {
	d := SIFTLike(100, 5, 10)
	st := d.Describe()
	if st.Dim != 128 || st.N != 100 || st.Queries != 5 {
		t.Fatalf("Describe = %+v", st)
	}
	if st.MaxAbs <= 0 || st.MaxAbs > 255 {
		t.Fatalf("MaxAbs = %v", st.MaxAbs)
	}
	if st.BetaLo != math.Sqrt(st.MaxAbs) {
		t.Fatal("BetaLo formula wrong")
	}
	if st.BetaHi != 2*st.MaxAbs*math.Sqrt(128) {
		t.Fatal("BetaHi formula wrong")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := GloVeLike(100, 5, 11)
	b := GloVeLike(100, 5, 11)
	for i := range a.Train {
		if !vec.ApproxEqual(a.Train[i], b.Train[i], 0) {
			t.Fatal("same seed produced different data")
		}
	}
	c := GloVeLike(100, 5, 12)
	if vec.ApproxEqual(a.Train[0], c.Train[0], 1e-9) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestFromFvecsValidation(t *testing.T) {
	mk := func(n, dim int) *vec.Dataset {
		ds := vec.NewDataset(dim, n)
		for i := 0; i < n; i++ {
			ds.Append(make([]float64, dim))
		}
		return ds
	}
	if _, err := FromFvecs("ok", mk(4, 8), mk(2, 8)); err != nil {
		t.Fatalf("matched corpora rejected: %v", err)
	}
	cases := []struct {
		name    string
		train   *vec.Dataset
		queries *vec.Dataset
		want    string
	}{
		{"nil-train", nil, mk(2, 8), "nil train"},
		{"nil-queries", mk(4, 8), nil, "nil query"},
		{"empty-train", mk(0, 8), mk(2, 8), "train corpus is empty"},
		{"empty-queries", mk(4, 8), mk(0, 8), "query corpus is empty"},
		{"dim-mismatch", mk(4, 8), mk(2, 16), "8-dimensional"},
	}
	for _, tc := range cases {
		_, err := FromFvecs(tc.name, tc.train, tc.queries)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q lacks %q", tc.name, err, tc.want)
		}
	}
}
