//go:build amd64

package simd

// cpuid executes CPUID with the given leaf and subleaf (implemented in
// cpu_amd64.s).
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 — the OS-enabled state mask
// (implemented in cpu_amd64.s).
func xgetbv() (eax, edx uint32)

var hasAVX2 = detectAVX2()

// detectAVX2 performs the full usability check, not just the instruction
// bit: AVX2 kernels touch YMM registers, which the OS must have opted into
// saving (OSXSAVE + XCR0 bits 1..2) or the first context switch corrupts
// them.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27 // OS uses XSAVE/XRSTOR
		avxBit     = 1 << 28 // AVX instruction set
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	const ymmState = 0x6 // XMM (bit 1) and YMM (bit 2) state enabled
	if xcr0&ymmState != ymmState {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}
