// Package simd detects the CPU vector features the dispatched distance
// kernels can use and resolves the PPANNS_KERNEL override.
//
// The package deliberately owns no kernels itself: internal/vec and
// internal/dce each keep a dispatch table of their own kernel variants and
// consult this package once, at init, to pick the active entry. That keeps
// feature detection (one CPUID dance, one environment read) in one place
// while the kernels stay next to the scalar references they must match
// bit-for-bit.
//
// Detection is written against raw CPUID/XGETBV (no external cpu-feature
// dependency): AVX2 is reported only when the instruction set is present
// AND the operating system has enabled YMM state saving, so a kernel
// selected here can never fault on a context switch.
package simd

import (
	"os"
	"strings"
)

// Kernel variant names shared by every dispatch table. Packages register
// their variants under these names so the PPANNS_KERNEL override, the test
// forcing hooks and the bench reports all speak one vocabulary.
const (
	Scalar = "scalar"
	AVX2   = "avx2"
)

// HasAVX2 reports whether AVX2 kernels are safe to run: the CPU advertises
// AVX2 and the OS saves YMM state across context switches.
func HasAVX2() bool { return hasAVX2 }

// Available lists the kernel variant names usable on this machine, best
// last. The scalar reference is always available.
func Available() []string {
	out := []string{Scalar}
	if hasAVX2 {
		out = append(out, AVX2)
	}
	return out
}

// Best returns the fastest available variant name.
func Best() string {
	if hasAVX2 {
		return AVX2
	}
	return Scalar
}

// Override returns the normalized PPANNS_KERNEL environment value ("" when
// unset). "scalar" forces the reference kernels everywhere; any other value
// names a SIMD variant to prefer.
func Override() string {
	return strings.ToLower(strings.TrimSpace(os.Getenv("PPANNS_KERNEL")))
}

// Pick resolves the variant a dispatch table should activate at init:
// the PPANNS_KERNEL override when it names an available variant, the best
// available one when unset. An override naming an unavailable or unknown
// variant degrades to scalar — the escape hatch must never select a kernel
// the machine cannot run.
func Pick() string {
	switch o := Override(); o {
	case "":
		return Best()
	case AVX2:
		if hasAVX2 {
			return AVX2
		}
		return Scalar
	default:
		return Scalar
	}
}
