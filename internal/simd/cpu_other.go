//go:build !amd64

package simd

// Non-amd64 builds run the portable scalar kernels; NEON and further ports
// hang their detection here.
var hasAVX2 = false
