package simd

import (
	"os"
	"slices"
	"testing"
)

func TestAvailableAlwaysIncludesScalar(t *testing.T) {
	av := Available()
	if len(av) == 0 || av[0] != Scalar {
		t.Fatalf("Available() = %v, want scalar first", av)
	}
	if HasAVX2() != slices.Contains(av, AVX2) {
		t.Fatalf("HasAVX2() = %v inconsistent with Available() = %v", HasAVX2(), av)
	}
	if !slices.Contains(av, Best()) {
		t.Fatalf("Best() = %q not in Available() = %v", Best(), av)
	}
}

func TestPickHonorsOverride(t *testing.T) {
	setenv := func(v string) {
		t.Helper()
		if err := os.Setenv("PPANNS_KERNEL", v); err != nil {
			t.Fatal(err)
		}
	}
	old, had := os.LookupEnv("PPANNS_KERNEL")
	t.Cleanup(func() {
		if had {
			os.Setenv("PPANNS_KERNEL", old)
		} else {
			os.Unsetenv("PPANNS_KERNEL")
		}
	})

	setenv("")
	if got := Pick(); got != Best() {
		t.Fatalf("Pick() with empty override = %q, want Best() = %q", got, Best())
	}
	setenv("scalar")
	if got := Pick(); got != Scalar {
		t.Fatalf("Pick() with scalar override = %q", got)
	}
	setenv(" SCALAR ")
	if got := Pick(); got != Scalar {
		t.Fatalf("Pick() should normalize case/space, got %q", got)
	}
	setenv("avx2")
	want := Scalar
	if HasAVX2() {
		want = AVX2
	}
	if got := Pick(); got != want {
		t.Fatalf("Pick() with avx2 override = %q, want %q", got, want)
	}
	setenv("no-such-kernel")
	if got := Pick(); got != Scalar {
		t.Fatalf("Pick() with unknown override = %q, want scalar fallback", got)
	}
}
