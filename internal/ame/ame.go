// Package ame implements asymmetric matrix encryption, the secure but
// costly distance-comparison baseline the paper revisits in Section III-C
// (Zheng et al., TDSC 2024).
//
// The reference implementation is not public, so this is a functional
// reconstruction that matches the published interface and cost profile
// exactly:
//
//   - secret key: 32 random invertible matrices in R^(2d+6)×(2d+6);
//   - each database vector encrypts to 32 vectors in R^(2d+6)
//     (16 "left-role" + 16 "right-role" shares);
//   - each query encrypts to 16 matrices in R^(2d+6)×(2d+6);
//   - one secure distance comparison evaluates 16 vector-matrix products
//     plus 16 inner products: 16·((2d+6)² + (2d+6)) = 64d² + 416d + 672
//     multiply-accumulate operations, i.e. Θ(d²) versus DCE's Θ(d).
//
// Construction. Extend u to x_u = r_u·[‖u‖², uᵀ, 1, junk] ∈ R^(2d+6) (junk
// entries are fresh randomness with zero weight in the comparison form).
// Define the sparse bilinear form Q(q) with x_oᵀ·Q·x_p =
// r_o·r_p·(dist(o,q) − dist(p,q)), split Q into 16 additive random shares
// Q_i, and hide each share between key matrices: T_i = r_q·A_i⁻ᵀ·Q_i·B_i⁻¹.
// With left shares L_i(o) = A_i·x_o and right shares R_i(p) = B_i·x_p the
// server computes Σᵢ L_i(o)ᵀ·T_i·R_i(p) = r_o·r_p·r_q·(dist(o,q) −
// dist(p,q)), whose sign answers the comparison.
package ame

import (
	"fmt"
	"sync"

	"ppanns/internal/matrix"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Shares is the number of additive shares (16 query matrices, 2×16 database
// vectors), matching the scheme the paper describes.
const Shares = 16

// Key is the AME secret key: 32 invertible matrices plus their
// query-side counterparts.
type Key struct {
	dim   int
	ext   int     // 2d+6
	scale float64 // uniform input scaling, same rationale as dce.KeyGenScaled

	a     [Shares]*matrix.Dense // left-share encryption matrices
	b     [Shares]*matrix.Dense // right-share encryption matrices
	aInvT [Shares]*matrix.Dense // A_i⁻ᵀ (query side)
	bInv  [Shares]*matrix.Dense // B_i⁻¹ (query side)

	mu  sync.Mutex
	rnd *rng.Rand
}

// Ciphertext is C_AME(u): 16 left-role and 16 right-role share vectors,
// 32 vectors of dimension 2d+6 in total.
type Ciphertext struct {
	L [Shares][]float64
	R [Shares][]float64
}

// Trapdoor is T_q: 16 matrices in R^(2d+6)×(2d+6).
type Trapdoor struct {
	T [Shares]*matrix.Dense
}

// KeyGen generates an AME key for d-dimensional vectors.
func KeyGen(r *rng.Rand, dim int) (*Key, error) { return KeyGenScaled(r, dim, 1) }

// KeyGenScaled is KeyGen with a uniform input scale (see dce.KeyGenScaled
// for why O(1)-magnitude inputs matter for float64 comparison headroom).
func KeyGenScaled(r *rng.Rand, dim int, scale float64) (*Key, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("ame: non-positive dimension %d", dim)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("ame: non-positive input scale %g", scale)
	}
	k := &Key{dim: dim, ext: 2*dim + 6, scale: scale, rnd: rng.Derive(r, 0xa3e)}
	for i := 0; i < Shares; i++ {
		ai, aInv := matrix.RandomInvertible(r, k.ext)
		k.a[i] = ai
		k.aInvT[i] = aInv.Transpose()
		k.b[i], k.bInv[i] = matrix.RandomInvertible(r, k.ext)
	}
	return k, nil
}

// Dim returns the plaintext dimension.
func (k *Key) Dim() int { return k.dim }

// ExtDim returns 2d+6, the share vector dimension.
func (k *Key) ExtDim() int { return k.ext }

// extend builds x_u = r_u·[‖u‖², uᵀ, 1, junk...] with fresh junk randomness.
func (k *Key) extend(u []float64) []float64 {
	x := make([]float64, k.ext)
	var ru float64
	k.mu.Lock()
	ru = rng.Uniform(k.rnd, 0.5, 2)
	for i := k.dim + 2; i < k.ext; i++ {
		x[i] = k.rnd.NormFloat64()
	}
	k.mu.Unlock()
	var sq float64
	for i, v := range u {
		sv := k.scale * v
		x[1+i] = ru * sv
		sq += sv * sv
	}
	x[0] = ru * sq
	x[k.dim+1] = ru
	return x
}

// Encrypt encrypts one database vector into its 32 share vectors.
func (k *Key) Encrypt(u []float64) *Ciphertext {
	if len(u) != k.dim {
		panic(fmt.Sprintf("ame: encrypting %d-dim vector with %d-dim key", len(u), k.dim))
	}
	ct := &Ciphertext{}
	// Independent randomizers for the two roles (a vector compared as o
	// and as p must not share extension randomness).
	xo := k.extend(u)
	xp := k.extend(u)
	for i := 0; i < Shares; i++ {
		ct.L[i] = k.a[i].MulVec(nil, xo)
		ct.R[i] = k.b[i].MulVec(nil, xp)
	}
	return ct
}

// comparisonForm builds the sparse bilinear form Q with
// x_oᵀ·Q·x_p = r_o·r_p·(dist(o,q) − dist(p,q)) for extended vectors.
func (k *Key) comparisonForm(q []float64) *matrix.Dense {
	Q := matrix.NewDense(k.ext, k.ext)
	c := k.dim + 1  // index of the constant-1 slot
	Q.Set(0, c, 1)  // + ‖o‖²
	Q.Set(c, 0, -1) // − ‖p‖²
	for i, v := range q {
		sv := k.scale * v
		Q.Set(1+i, c, -2*sv) // − 2oᵀq
		Q.Set(c, 1+i, 2*sv)  // + 2pᵀq
	}
	return Q
}

// TrapGen encrypts a query into its 16 trapdoor matrices
// T_i = r_q·A_i⁻ᵀ·Q_i·B_i⁻¹ where Q = Σ Q_i is a fresh additive sharing.
// This is the scheme's heavy user-side operation: Θ(d³) per query.
func (k *Key) TrapGen(q []float64) *Trapdoor {
	if len(q) != k.dim {
		panic(fmt.Sprintf("ame: query of dim %d with %d-dim key", len(q), k.dim))
	}
	Q := k.comparisonForm(q)

	// Additive sharing: 15 random matrices plus the remainder.
	shares := make([]*matrix.Dense, Shares)
	k.mu.Lock()
	rq := rng.Uniform(k.rnd, 0.5, 2)
	rest := Q.Clone()
	for i := 0; i < Shares-1; i++ {
		s := matrix.NewDense(k.ext, k.ext)
		raw := s.Raw()
		for j := range raw {
			raw[j] = k.rnd.NormFloat64()
		}
		shares[i] = s
		for j, v := range s.Raw() {
			rest.Raw()[j] -= v
		}
	}
	k.mu.Unlock()
	shares[Shares-1] = rest

	td := &Trapdoor{}
	for i := 0; i < Shares; i++ {
		t := matrix.Mul(k.aInvT[i], matrix.Mul(shares[i], k.bInv[i]))
		for j := range t.Raw() {
			t.Raw()[j] *= rq
		}
		td.T[i] = t
	}
	return td
}

// Compare evaluates Σᵢ L_i(o)ᵀ·T_i·R_i(p) = r·(dist(o,q) − dist(p,q)) with
// r > 0; its sign answers whether o or p is closer to q. The work is 16
// vector-matrix products plus 16 inner products — the 64d²+O(d) MACs the
// paper cites.
func Compare(co, cp *Ciphertext, td *Trapdoor) float64 {
	var z float64
	var buf []float64
	for i := 0; i < Shares; i++ {
		buf = td.T[i].VecMul(buf, co.L[i])
		z += vec.Dot(buf, cp.R[i])
	}
	return z
}

// Closer reports whether dist(o, q) < dist(p, q).
func Closer(co, cp *Ciphertext, td *Trapdoor) bool {
	return Compare(co, cp, td) < 0
}
