package ame

import (
	"math"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

const relGap = 1e-9

func checkComparison(t *testing.T, k *Key, o, p, q []float64) {
	t.Helper()
	do := vec.SqDist(o, q)
	dp := vec.SqDist(p, q)
	if math.Abs(do-dp) <= relGap*(do+dp+1) {
		return
	}
	z := Compare(k.Encrypt(o), k.Encrypt(p), k.TrapGen(q))
	if (z < 0) != (do < dp) {
		t.Fatalf("Compare sign wrong: z=%g, dist(o,q)=%g, dist(p,q)=%g", z, do, dp)
	}
}

func TestKeyGenValidation(t *testing.T) {
	r := rng.NewSeeded(1)
	if _, err := KeyGen(r, 0); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, err := KeyGenScaled(r, 4, 0); err == nil {
		t.Fatal("expected error for scale 0")
	}
}

func TestShapes(t *testing.T) {
	r := rng.NewSeeded(2)
	dim := 10
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	if k.ExtDim() != 2*dim+6 {
		t.Fatalf("ExtDim = %d, want %d", k.ExtDim(), 2*dim+6)
	}
	p := rng.Gaussian(r, nil, dim)
	ct := k.Encrypt(p)
	for i := 0; i < Shares; i++ {
		if len(ct.L[i]) != k.ExtDim() || len(ct.R[i]) != k.ExtDim() {
			t.Fatalf("share %d has wrong length", i)
		}
	}
	td := k.TrapGen(p)
	for i := 0; i < Shares; i++ {
		if td.T[i].Rows() != k.ExtDim() || td.T[i].Cols() != k.ExtDim() {
			t.Fatalf("trapdoor share %d has wrong shape", i)
		}
	}
}

func TestComparisonCorrectness(t *testing.T) {
	r := rng.NewSeeded(3)
	for _, dim := range []int{2, 5, 16} {
		k, err := KeyGen(r, dim)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 15; trial++ {
			o := rng.Gaussian(r, nil, dim)
			p := rng.Gaussian(r, nil, dim)
			q := rng.Gaussian(r, nil, dim)
			checkComparison(t, k, o, p, q)
		}
	}
}

func TestComparisonWithScale(t *testing.T) {
	r := rng.NewSeeded(4)
	dim := 8
	k, err := KeyGenScaled(r, dim, 1.0/255)
	if err != nil {
		t.Fatal(err)
	}
	randRaw := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = float64(r.IntN(256))
		}
		return v
	}
	for trial := 0; trial < 20; trial++ {
		checkComparison(t, k, randRaw(), randRaw(), randRaw())
	}
}

func TestRankingAgainstPlaintext(t *testing.T) {
	r := rng.NewSeeded(5)
	dim := 12
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(r, nil, dim)
	td := k.TrapGen(q)
	const n = 12
	pts := make([][]float64, n)
	cts := make([]*Ciphertext, n)
	for i := range pts {
		pts[i] = rng.Gaussian(r, nil, dim)
		cts[i] = k.Encrypt(pts[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			di, dj := vec.SqDist(pts[i], q), vec.SqDist(pts[j], q)
			if math.Abs(di-dj) <= relGap*(di+dj+1) {
				continue
			}
			if Closer(cts[i], cts[j], td) != (di < dj) {
				t.Fatalf("pairwise comparison (%d,%d) wrong", i, j)
			}
		}
	}
}

func TestEncryptionRandomized(t *testing.T) {
	r := rng.NewSeeded(6)
	dim := 6
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.Gaussian(r, nil, dim)
	a, b := k.Encrypt(p), k.Encrypt(p)
	if vec.ApproxEqual(a.L[0], b.L[0], 1e-12) {
		t.Fatal("two encryptions produced identical left shares")
	}
	td1, td2 := k.TrapGen(p), k.TrapGen(p)
	if vec.ApproxEqual(td1.T[0].Raw(), td2.T[0].Raw(), 1e-12) {
		t.Fatal("two trapdoors produced identical share matrices")
	}
}

func TestLeftRightRolesIndependent(t *testing.T) {
	// A vector compared against itself: Z should be ~0 relative to the
	// magnitude of genuine gaps, and must not blow up.
	r := rng.NewSeeded(7)
	dim := 8
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.Gaussian(r, nil, dim)
	q := rng.Gaussian(r, nil, dim)
	ct := k.Encrypt(p)
	z := Compare(ct, ct, k.TrapGen(q))
	// dist(p,q) − dist(p,q) = 0 ⇒ z ≈ 0 up to rounding noise.
	if math.Abs(z) > 1e-6 {
		t.Fatalf("self-comparison = %g, want ≈0", z)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	r := rng.NewSeeded(8)
	k, err := KeyGen(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"Encrypt": func() { k.Encrypt(make([]float64, 5)) },
		"TrapGen": func() { k.TrapGen(make([]float64, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentEncrypt(t *testing.T) {
	r := rng.NewSeeded(9)
	dim := 6
	k, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(r, nil, dim)
	td := k.TrapGen(q)
	done := make(chan bool, 4)
	for w := 0; w < 4; w++ {
		go func(seed uint64) {
			rr := rng.NewSeeded(seed)
			ok := true
			for i := 0; i < 10; i++ {
				o := rng.Gaussian(rr, nil, dim)
				p := rng.Gaussian(rr, nil, dim)
				do, dp := vec.SqDist(o, q), vec.SqDist(p, q)
				if math.Abs(do-dp) <= relGap*(do+dp+1) {
					continue
				}
				if Closer(k.Encrypt(o), k.Encrypt(p), td) != (do < dp) {
					ok = false
				}
			}
			done <- ok
		}(uint64(w) + 50)
	}
	for w := 0; w < 4; w++ {
		if !<-done {
			t.Fatal("concurrent encryption produced a wrong comparison")
		}
	}
}
