// Package kmeans implements Lloyd's algorithm with k-means++ seeding and
// parallel assignment — the coarse quantizer behind the IVF index
// (inverted files are one of the k-ANNS index families the paper surveys
// in Sections I and VIII).
package kmeans

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Config parameterizes a clustering run.
type Config struct {
	// K is the number of centroids (required).
	K int
	// MaxIters bounds Lloyd iterations (default 25).
	MaxIters int
	// Tol stops early when the mean centroid movement falls below it
	// (default 1e-4 of the data scale).
	Tol float64
	// Seed drives k-means++ seeding.
	Seed uint64
}

// Result is a fitted clustering.
type Result struct {
	Centroids [][]float64
	// Assign maps each input row to its centroid index.
	Assign []int
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Fit clusters data into cfg.K groups.
func Fit(data [][]float64, cfg Config) (*Result, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("kmeans: empty data")
	}
	if cfg.K <= 0 || cfg.K > len(data) {
		return nil, fmt.Errorf("kmeans: k=%d outside [1,%d]", cfg.K, len(data))
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 25
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	dim := len(data[0])
	r := rng.NewSeeded(cfg.Seed ^ 0x43a9)

	centroids := seedPlusPlus(r, data, cfg.K)
	assign := make([]int, len(data))
	counts := make([]int, cfg.K)
	workers := runtime.GOMAXPROCS(0)

	var iters int
	for iters = 0; iters < cfg.MaxIters; iters++ {
		// Assignment step (parallel).
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(data); i += workers {
					assign[i] = nearest(centroids, data[i])
				}
			}(w)
		}
		wg.Wait()

		// Update step.
		next := make([][]float64, cfg.K)
		for c := range next {
			next[c] = make([]float64, dim)
			counts[c] = 0
		}
		for i, c := range assign {
			vec.Add(next[c], next[c], data[i])
			counts[c]++
		}
		var moved float64
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster on a random point.
				copy(next[c], data[r.IntN(len(data))])
			} else {
				vec.Scale(next[c], 1/float64(counts[c]), next[c])
			}
			moved += vec.Dist(next[c], centroids[c])
		}
		centroids = next
		if moved/float64(cfg.K) < cfg.Tol {
			iters++
			break
		}
	}
	return &Result{Centroids: centroids, Assign: assign, Iters: iters}, nil
}

// nearest returns the index of the centroid closest to v.
func nearest(centroids [][]float64, v []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := vec.SqDist(cent, v); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Nearest exposes centroid lookup for search-time probing.
func Nearest(centroids [][]float64, v []float64) int { return nearest(centroids, v) }

// NearestNInto is NearestN writing the winning indexes into dst (whose
// capacity is reused) and using dists as the parallel distance scratch, so
// per-query probing on a pooled buffer allocates nothing. Both slices are
// returned re-sliced to the result length.
func NearestNInto(dst []int, dists []float64, centroids [][]float64, v []float64, n int) ([]int, []float64) {
	dst = dst[:0]
	dists = dists[:0]
	for c, cent := range centroids {
		d := vec.SqDist(cent, v)
		if len(dst) == n && d >= dists[len(dists)-1] {
			continue
		}
		pos := 0
		for pos < len(dst) && dists[pos] <= d {
			pos++
		}
		dst = append(dst, 0)
		dists = append(dists, 0)
		copy(dst[pos+1:], dst[pos:])
		copy(dists[pos+1:], dists[pos:])
		dst[pos] = c
		dists[pos] = d
		if len(dst) > n {
			dst = dst[:n]
			dists = dists[:n]
		}
	}
	return dst, dists
}

// NearestN returns the indexes of the n closest centroids, closest first.
func NearestN(centroids [][]float64, v []float64, n int) []int {
	idx, _ := NearestNInto(nil, nil, centroids, v, n)
	return idx
}

// seedPlusPlus implements k-means++ (D² sampling).
func seedPlusPlus(r *rng.Rand, data [][]float64, k int) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, vec.Clone(data[r.IntN(len(data))]))
	d2 := make([]float64, len(data))
	for i, v := range data {
		d2[i] = vec.SqDist(v, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = r.IntN(len(data))
		} else {
			target := r.Float64() * total
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					pick = i
					break
				}
			}
		}
		c := vec.Clone(data[pick])
		centroids = append(centroids, c)
		for i, v := range data {
			if d := vec.SqDist(v, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}
