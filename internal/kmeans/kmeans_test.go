package kmeans

import (
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// separated generates k well-separated clusters of m points each.
func separated(seed uint64, k, m, dim int) ([][]float64, []int) {
	r := rng.NewSeeded(seed)
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = rng.GaussianVec(r, dim, 20)
	}
	var data [][]float64
	var labels []int
	for c := 0; c < k; c++ {
		for j := 0; j < m; j++ {
			data = append(data, vec.Add(nil, centers[c], rng.GaussianVec(r, dim, 0.5)))
			labels = append(labels, c)
		}
	}
	return data, labels
}

func TestValidation(t *testing.T) {
	if _, err := Fit(nil, Config{K: 2}); err == nil {
		t.Fatal("expected error for empty data")
	}
	data, _ := separated(1, 2, 5, 4)
	if _, err := Fit(data, Config{K: 0}); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Fit(data, Config{K: 100}); err == nil {
		t.Fatal("expected error for k > n")
	}
}

func TestRecoverSeparatedClusters(t *testing.T) {
	const k = 6
	data, labels := separated(2, k, 60, 8)
	res, err := Fit(data, Config{K: k, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != k {
		t.Fatalf("%d centroids", len(res.Centroids))
	}
	// Points with the same true label must share an assignment almost
	// always (purity check).
	byLabel := map[int]map[int]int{}
	for i, a := range res.Assign {
		if byLabel[labels[i]] == nil {
			byLabel[labels[i]] = map[int]int{}
		}
		byLabel[labels[i]][a]++
	}
	pure := 0
	for _, counts := range byLabel {
		max, total := 0, 0
		for _, c := range counts {
			total += c
			if c > max {
				max = c
			}
		}
		if float64(max) >= 0.95*float64(total) {
			pure++
		}
	}
	if pure < k-1 {
		t.Fatalf("only %d/%d clusters recovered purely", pure, k)
	}
}

func TestAssignmentsAreNearest(t *testing.T) {
	data, _ := separated(3, 4, 40, 6)
	res, err := Fit(data, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Assign {
		if got := Nearest(res.Centroids, data[i]); got != a {
			// Lloyd's last update can shift a centroid slightly; allow
			// distance ties only.
			da := vec.SqDist(data[i], res.Centroids[a])
			dg := vec.SqDist(data[i], res.Centroids[got])
			if dg < da*(1-1e-9) && da-dg > 1e-9 {
				t.Fatalf("point %d assigned %d but nearest is %d (%g vs %g)", i, a, got, da, dg)
			}
		}
	}
}

func TestNearestN(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 0}, {1, 0}, {5, 0}}
	got := NearestN(cents, []float64{0.4, 0}, 3)
	want := []int{0, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NearestN = %v, want %v", got, want)
		}
	}
	if n := len(NearestN(cents, []float64{0, 0}, 10)); n != 4 {
		t.Fatalf("NearestN overflow len = %d", n)
	}
}

func TestDeterministic(t *testing.T) {
	data, _ := separated(4, 3, 30, 5)
	a, err := Fit(data, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(data, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if !vec.ApproxEqual(a.Centroids[i], b.Centroids[i], 0) {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKEqualsN(t *testing.T) {
	data, _ := separated(5, 2, 3, 4)
	res, err := Fit(data, Config{K: len(data), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != len(data) {
		t.Fatalf("%d centroids for k=n", len(res.Centroids))
	}
}
