package aspe

import (
	"fmt"
	"math"

	"ppanns/internal/matrix"
)

// This file implements the known-plaintext attacks of Section III-A.
// The adversary holds a leaked plaintext subset P_leak together with the
// leakage values L(C_p, T_q) it can compute from the ciphertexts it stores,
// and recovers first the queries (Theorem 1 / Corollaries 1–2 / Theorem 2),
// then arbitrary database vectors.

// QueryRecovery is the result of a query-recovery attack: the plaintext
// query plus the full recovered coefficient vector x (which the database
// recovery stage reuses).
type QueryRecovery struct {
	Query []float64 // recovered q
	Coeff []float64 // recovered x = [r₁qᵀ, r₁, r₂] (linear family)
}

// RecoverQueryLinear implements Theorem 1. Given d+2 known plaintexts and
// their leaked values L_i = [−2p_iᵀ, ‖p_i‖², 1]·x for one query, it solves
// M_c·x = b and returns q = x[:d]/x[d].
func RecoverQueryLinear(known [][]float64, leaks []float64) (*QueryRecovery, error) {
	d, rows, err := attackSystem(known, leaks)
	if err != nil {
		return nil, err
	}
	x, err := rows.Solve(leaks[:d+2])
	if err != nil {
		return nil, fmt.Errorf("aspe attack: design matrix singular (pick different known plaintexts): %w", err)
	}
	r1 := x[d]
	if r1 == 0 {
		return nil, fmt.Errorf("aspe attack: recovered r1 = 0")
	}
	q := make([]float64, d)
	for i := range q {
		q[i] = x[i] / r1
	}
	return &QueryRecovery{Query: q, Coeff: x}, nil
}

// RecoverQueryExponential implements Corollary 1: taking logarithms of the
// leaked values reduces the exponential variant to the linear case.
func RecoverQueryExponential(known [][]float64, leaks []float64) (*QueryRecovery, error) {
	lin := make([]float64, len(leaks))
	for i, v := range leaks {
		if v <= 0 {
			return nil, fmt.Errorf("aspe attack: exponential leak %d is non-positive (%g)", i, v)
		}
		lin[i] = math.Log(v)
	}
	return RecoverQueryLinear(known, lin)
}

// RecoverQueryLogarithmic implements Corollary 2: exponentiating the leaked
// values (and removing the public positivity shift) reduces the logarithmic
// variant to the linear case.
func RecoverQueryLogarithmic(known [][]float64, leaks []float64, opt LeakOptions) (*QueryRecovery, error) {
	lin := make([]float64, len(leaks))
	for i, v := range leaks {
		lin[i] = math.Exp(v) - opt.Shift
	}
	return RecoverQueryLinear(known, lin)
}

// SquareFeatureDim returns the number of equations (and known plaintexts)
// Theorem 2's attack needs:
// 1 (‖p‖⁴) + d (‖p‖²p) + d (p², absorbing the ‖p‖² term) + d(d−1)/2 (cross)
// + d (p) + 1 (constant).
//
// Note: the paper's embedding (0.5d² + 2.5d + 3) lists ‖p‖² as a feature
// separate from the p_i² features, but ‖p‖² = Σ p_i² makes that system
// rank-deficient for every plaintext set. Merging the ‖p‖² coefficient into
// the p_i² block removes the redundancy, so the attack here needs exactly
// one equation fewer than the paper's bound — i.e. the paper's bound still
// suffices and the scheme is, if anything, slightly weaker than claimed.
func SquareFeatureDim(d int) int { return 2 + 3*d + d*(d-1)/2 }

// squareFeatures returns φ(p), the feature embedding of a database vector
// under the square-leak expansion
//
//	L = r₁‖p‖⁴ − 4r₁‖p‖²(pᵀq) + 2r₁r₂‖p‖² + 4r₁(pᵀq)² − 4r₁r₂(pᵀq) + r₁r₂² + r₃.
func squareFeatures(p []float64) []float64 {
	d := len(p)
	out := make([]float64, 0, SquareFeatureDim(d))
	var sq float64
	for _, v := range p {
		sq += v * v
	}
	out = append(out, sq*sq) // ‖p‖⁴
	for _, v := range p {    // ‖p‖²·p
		out = append(out, sq*v)
	}
	for _, v := range p { // p²  (diagonal of (pᵀq)² + the ‖p‖² term)
		out = append(out, v*v)
	}
	for i := 0; i < d; i++ { // p_i·p_j, i<j (cross terms of (pᵀq)²)
		for j := i + 1; j < d; j++ {
			out = append(out, p[i]*p[j])
		}
	}
	out = append(out, p...) // p  (the −4r₁r₂(pᵀq) term)
	out = append(out, 1)    // constant
	return out
}

// squareCoeff returns the coefficient vector c(q, qr) that pairs with
// squareFeatures so that L = φ(p)ᵀ·c.
func squareCoeff(q []float64, qr QueryRand) []float64 {
	d := len(q)
	out := make([]float64, 0, SquareFeatureDim(d))
	out = append(out, qr.R1)
	for _, v := range q {
		out = append(out, -4*qr.R1*v)
	}
	for _, v := range q {
		// 4r₁q_i² from (pᵀq)² plus 2r₁r₂ absorbed from the ‖p‖² term.
		out = append(out, 4*qr.R1*v*v+2*qr.R1*qr.R2)
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, 8*qr.R1*q[i]*q[j])
		}
	}
	for _, v := range q {
		out = append(out, -4*qr.R1*qr.R2*v)
	}
	out = append(out, qr.R1*qr.R2*qr.R2+qr.R3)
	return out
}

// SquareQueryRecovery is the Theorem 2 attack result: the query plus its
// fully recovered coefficient vector (reused for database recovery).
type SquareQueryRecovery struct {
	Query []float64
	Coeff []float64
}

// RecoverQuerySquare implements Theorem 2. It needs
// SquareFeatureDim(d) = 0.5d²+2.5d+3 known plaintexts with their leaked
// values for one query; it solves the feature system Φ·c = L and extracts
// q_i = −c[1+i]/(4·c[0]).
func RecoverQuerySquare(known [][]float64, leaks []float64) (*SquareQueryRecovery, error) {
	if len(known) == 0 {
		return nil, fmt.Errorf("aspe attack: no known plaintexts")
	}
	d := len(known[0])
	m := SquareFeatureDim(d)
	if len(known) < m || len(leaks) < m {
		return nil, fmt.Errorf("aspe attack: square recovery needs %d known plaintexts, have %d", m, len(known))
	}
	rows := make([][]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = squareFeatures(known[i])
	}
	c, err := matrix.FromRows(rows).Solve(leaks[:m])
	if err != nil {
		return nil, fmt.Errorf("aspe attack: square feature matrix singular: %w", err)
	}
	r1 := c[0]
	if r1 == 0 {
		return nil, fmt.Errorf("aspe attack: recovered r1 = 0")
	}
	q := make([]float64, d)
	for i := range q {
		q[i] = -c[1+i] / (4 * r1)
	}
	return &SquareQueryRecovery{Query: q, Coeff: c}, nil
}

// RecoverDatabaseVector implements the second stage of Theorem 1: with d+2
// recovered query coefficient vectors x_j and the leaked values
// L_j = [−2pᵀ, ‖p‖², 1]·x_j of an unknown database vector p, it solves for
// p′ = [−2pᵀ, ‖p‖², t] and returns p (checking the t ≈ 1 consistency).
func RecoverDatabaseVector(recovered []*QueryRecovery, leaks []float64) ([]float64, error) {
	if len(recovered) == 0 {
		return nil, fmt.Errorf("aspe attack: no recovered queries")
	}
	n := len(recovered[0].Coeff) // d+2
	d := n - 2
	if len(recovered) < n || len(leaks) < n {
		return nil, fmt.Errorf("aspe attack: database recovery needs %d recovered queries, have %d", n, len(recovered))
	}
	rows := make([][]float64, n)
	for j := 0; j < n; j++ {
		rows[j] = recovered[j].Coeff
	}
	y, err := matrix.FromRows(rows).Solve(leaks[:n])
	if err != nil {
		return nil, fmt.Errorf("aspe attack: query coefficient matrix singular: %w", err)
	}
	if math.Abs(y[n-1]-1) > 1e-4 {
		return nil, fmt.Errorf("aspe attack: consistency check failed (t = %g, want 1)", y[n-1])
	}
	p := make([]float64, d)
	for i := range p {
		p[i] = y[i] / -2
	}
	return p, nil
}

// RecoverDatabaseVectorSquare is the symmetric second stage of Theorem 2:
// with m = 0.5d²+2.5d+3 recovered square-variant coefficient vectors c_j and
// the leaked values L_j = φ(p)ᵀ·c_j of an unknown p, it solves for φ(p) and
// reads p off the linear block of the feature vector.
func RecoverDatabaseVectorSquare(recovered []*SquareQueryRecovery, leaks []float64) ([]float64, error) {
	if len(recovered) == 0 {
		return nil, fmt.Errorf("aspe attack: no recovered queries")
	}
	m := len(recovered[0].Coeff)
	if len(recovered) < m || len(leaks) < m {
		return nil, fmt.Errorf("aspe attack: square database recovery needs %d recovered queries, have %d", m, len(recovered))
	}
	rows := make([][]float64, m)
	for j := 0; j < m; j++ {
		rows[j] = recovered[j].Coeff
	}
	phi, err := matrix.FromRows(rows).Solve(leaks[:m])
	if err != nil {
		return nil, fmt.Errorf("aspe attack: coefficient matrix singular: %w", err)
	}
	d := len(recovered[0].Query)
	// φ layout: [‖p‖⁴ | ‖p‖²p (d) | p² (d) | cross (d(d−1)/2) | p (d) | 1].
	start := 1 + d + d + d*(d-1)/2
	p := make([]float64, d)
	copy(p, phi[start:start+d])
	return p, nil
}

// attackSystem validates attack inputs and builds the (d+2)×(d+2) design
// matrix whose rows are [−2p_iᵀ, ‖p_i‖², 1].
func attackSystem(known [][]float64, leaks []float64) (int, *matrix.Dense, error) {
	if len(known) == 0 {
		return 0, nil, fmt.Errorf("aspe attack: no known plaintexts")
	}
	d := len(known[0])
	need := d + 2
	if len(known) < need || len(leaks) < need {
		return 0, nil, fmt.Errorf("aspe attack: need %d known plaintexts and leaks, have %d/%d", need, len(known), len(leaks))
	}
	rows := make([][]float64, need)
	for i := 0; i < need; i++ {
		rows[i] = ExtendDB(known[i])
	}
	return d, matrix.FromRows(rows), nil
}
