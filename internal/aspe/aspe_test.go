package aspe

import (
	"math"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

func TestKeyGenValidation(t *testing.T) {
	if _, err := KeyGen(rng.NewSeeded(1), 0); err == nil {
		t.Fatal("expected error for dim 0")
	}
}

func TestInnerProductRecoversLinearLeak(t *testing.T) {
	// The basic scheme: C_pᵀ·T_q computed purely over ciphertexts must
	// equal r₁·D(p,q) + r₂.
	r := rng.NewSeeded(2)
	dim := 16
	s, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		p := rng.Gaussian(r, nil, dim)
		q := rng.Gaussian(r, nil, dim)
		qr := s.NewQueryRand()
		got := InnerProduct(s.EncryptDB(p), s.EncryptQuery(q, qr))
		want := qr.R1*D(p, q) + qr.R2
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("inner product %g, want %g", got, want)
		}
	}
}

func TestLinearLeakOrdersLikeDistance(t *testing.T) {
	// For a fixed query, the leaked value must rank candidates exactly by
	// distance (that is why ASPE "works" before it is broken).
	r := rng.NewSeeded(3)
	dim := 8
	s, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(r, nil, dim)
	qr := s.NewQueryRand()
	tq := s.EncryptQuery(q, qr)
	for trial := 0; trial < 50; trial++ {
		o := rng.Gaussian(r, nil, dim)
		p := rng.Gaussian(r, nil, dim)
		lo := InnerProduct(s.EncryptDB(o), tq)
		lp := InnerProduct(s.EncryptDB(p), tq)
		if (lo < lp) != (vec.SqDist(o, q) < vec.SqDist(p, q)) {
			t.Fatal("leak ordering disagrees with distance ordering")
		}
	}
}

func TestSquareCoeffIdentity(t *testing.T) {
	// φ(p)ᵀ·c(q) must reproduce the square leak exactly.
	r := rng.NewSeeded(4)
	dim := 6
	for trial := 0; trial < 30; trial++ {
		p := rng.Gaussian(r, nil, dim)
		q := rng.Gaussian(r, nil, dim)
		qr := QueryRand{R1: 1.3, R2: -0.7, R3: 2.1}
		want := LeakedValue(Square, p, q, qr, LeakOptions{})
		got := vec.Dot(squareFeatures(p), squareCoeff(q, qr))
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("feature identity broken: %g vs %g", got, want)
		}
	}
}

// leakSet computes the leaks of all known plaintexts for one query.
func leakSet(v Variant, known [][]float64, q []float64, qr QueryRand, opt LeakOptions) []float64 {
	out := make([]float64, len(known))
	for i, p := range known {
		out[i] = LeakedValue(v, p, q, qr, opt)
	}
	return out
}

func randomPlaintexts(r *rng.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = rng.Gaussian(r, nil, dim)
	}
	return out
}

func TestTheorem1LinearAttack(t *testing.T) {
	r := rng.NewSeeded(5)
	dim := 16
	known := randomPlaintexts(r, dim+2, dim)
	q := rng.Gaussian(r, nil, dim)
	qr := QueryRand{R1: 1.7, R2: -0.4}
	rec, err := RecoverQueryLinear(known, leakSet(Linear, known, q, qr, LeakOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(rec.Query, q, 1e-6) {
		t.Fatalf("query not recovered: %v vs %v", rec.Query[:3], q[:3])
	}
}

func TestCorollary1ExponentialAttack(t *testing.T) {
	r := rng.NewSeeded(6)
	dim := 12
	known := randomPlaintexts(r, dim+2, dim)
	q := rng.Gaussian(r, nil, dim)
	qr := QueryRand{R1: 0.9, R2: 1.1}
	rec, err := RecoverQueryExponential(known, leakSet(Exponential, known, q, qr, LeakOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(rec.Query, q, 1e-6) {
		t.Fatal("query not recovered from exponential leaks")
	}
}

func TestCorollary2LogarithmicAttack(t *testing.T) {
	r := rng.NewSeeded(7)
	dim := 12
	known := randomPlaintexts(r, dim+2, dim)
	q := rng.Gaussian(r, nil, dim)
	qr := QueryRand{R1: 1.2, R2: 0.8}
	opt := LeakOptions{Shift: 200} // public protocol constant keeping log args positive
	rec, err := RecoverQueryLogarithmic(known, leakSet(Logarithmic, known, q, qr, opt), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(rec.Query, q, 1e-6) {
		t.Fatal("query not recovered from logarithmic leaks")
	}
}

func TestTheorem2SquareAttack(t *testing.T) {
	r := rng.NewSeeded(8)
	dim := 8
	m := SquareFeatureDim(dim)
	known := randomPlaintexts(r, m, dim)
	q := rng.Gaussian(r, nil, dim)
	qr := QueryRand{R1: 1.4, R2: -0.6, R3: 0.9}
	rec, err := RecoverQuerySquare(known, leakSet(Square, known, q, qr, LeakOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(rec.Query, q, 1e-5) {
		t.Fatal("query not recovered from square leaks")
	}
}

func TestTheorem1DatabaseRecovery(t *testing.T) {
	// Full pipeline: recover d+2 queries, then recover an unseen database
	// vector from its leaks alone.
	r := rng.NewSeeded(9)
	dim := 10
	known := randomPlaintexts(r, dim+2, dim)
	var recs []*QueryRecovery
	for j := 0; j < dim+2; j++ {
		q := rng.Gaussian(r, nil, dim)
		qr := QueryRand{R1: rng.Uniform(r, 0.5, 2), R2: rng.UniformNonZero(r, 0.5, 2)}
		rec, err := RecoverQueryLinear(known, leakSet(Linear, known, q, qr, LeakOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	secret := rng.Gaussian(r, nil, dim) // NOT in P_leak
	leaks := make([]float64, len(recs))
	for j, rec := range recs {
		// The attacker reads these off the ciphertexts; here we compute
		// them via the leakage function with the true coefficients.
		leaks[j] = vec.Dot(ExtendDB(secret), rec.Coeff)
	}
	got, err := RecoverDatabaseVector(recs, leaks)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(got, secret, 1e-6) {
		t.Fatal("database vector not recovered")
	}
}

func TestTheorem2DatabaseRecovery(t *testing.T) {
	r := rng.NewSeeded(10)
	dim := 5
	m := SquareFeatureDim(dim)
	known := randomPlaintexts(r, m, dim)
	var recs []*SquareQueryRecovery
	for j := 0; j < m; j++ {
		q := rng.Gaussian(r, nil, dim)
		qr := QueryRand{
			R1: rng.Uniform(r, 0.5, 2),
			R2: rng.UniformNonZero(r, 0.5, 2),
			R3: rng.UniformNonZero(r, 0.5, 2),
		}
		rec, err := RecoverQuerySquare(known, leakSet(Square, known, q, qr, LeakOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	secret := rng.Gaussian(r, nil, dim)
	leaks := make([]float64, len(recs))
	for j, rec := range recs {
		leaks[j] = vec.Dot(squareFeatures(secret), rec.Coeff)
	}
	got, err := RecoverDatabaseVectorSquare(recs, leaks)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(got, secret, 1e-4) {
		t.Fatalf("database vector not recovered: %v vs %v", got, secret)
	}
}

func TestEndToEndCiphertextAttack(t *testing.T) {
	// Theorem 1 with leaks computed *from real ciphertexts*, exactly as the
	// honest-but-curious server would.
	r := rng.NewSeeded(11)
	dim := 12
	s, err := KeyGen(r, dim)
	if err != nil {
		t.Fatal(err)
	}
	known := randomPlaintexts(r, dim+2, dim)
	cts := make([][]float64, len(known))
	for i, p := range known {
		cts[i] = s.EncryptDB(p)
	}
	q := rng.Gaussian(r, nil, dim)
	tq := s.EncryptQuery(q, s.NewQueryRand())
	leaks := make([]float64, len(cts))
	for i, c := range cts {
		leaks[i] = InnerProduct(c, tq)
	}
	rec, err := RecoverQueryLinear(known, leaks)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(rec.Query, q, 1e-6) {
		t.Fatal("ciphertext-only attack failed to recover the query")
	}
}

func TestAttackInputValidation(t *testing.T) {
	if _, err := RecoverQueryLinear(nil, nil); err == nil {
		t.Fatal("expected error for empty inputs")
	}
	known := randomPlaintexts(rng.NewSeeded(12), 3, 8) // too few
	if _, err := RecoverQueryLinear(known, make([]float64, 3)); err == nil {
		t.Fatal("expected error for too few known plaintexts")
	}
	if _, err := RecoverQueryExponential(known, []float64{-1, 1, 1}); err == nil {
		t.Fatal("expected error for non-positive exponential leak")
	}
	if _, err := RecoverQuerySquare(known, make([]float64, 3)); err == nil {
		t.Fatal("expected error for too few square plaintexts")
	}
	if _, err := RecoverDatabaseVector(nil, nil); err == nil {
		t.Fatal("expected error for no recovered queries")
	}
	if _, err := RecoverDatabaseVectorSquare(nil, nil); err == nil {
		t.Fatal("expected error for no recovered square queries")
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		Linear: "linear", Exponential: "exponential",
		Logarithmic: "logarithmic", Square: "square", Variant(9): "variant(9)",
	} {
		if v.String() != want {
			t.Fatalf("String() = %q, want %q", v.String(), want)
		}
	}
}
