// Package aspe implements asymmetric scalar-product-preserving encryption
// (Wong et al.) and the "enhanced" variants the paper revisits in Section
// III-A, together with the known-plaintext attacks of Theorem 1,
// Corollaries 1–2 and Theorem 2 that recover queries and database vectors
// from the leaked distance transformations.
//
// The scheme here exists as a *negative* baseline: the attack package
// demonstrates why distance-value leakage (even transformed) is fatal, which
// motivates DCE's comparison-only leakage.
//
// Encoding. A database vector p is extended to p′ = [−2pᵀ, ‖p‖², 1] and
// encrypted as C_p = Mᵀp′ for a secret invertible M ∈ R^(d+2)×(d+2). A query
// q with per-query randomness (r₁ > 0, r₂) is encrypted as
// T_q = M⁻¹·[r₁qᵀ, r₁, r₂]ᵀ, so the server computes
//
//	C_pᵀ·T_q = r₁(‖p‖² − 2pᵀq) + r₂ = r₁·D(p,q) + r₂,
//
// a query-specific increasing affine transform of the squared distance
// shifted by the (constant for a fixed q) ‖q‖² term — exactly the "linear
// transformation of distances" leakage of Theorem 1. The Exponential,
// Logarithmic and Square variants expose exp/log/square transforms of that
// core, modelling the hardened variants the paper analyzes.
package aspe

import (
	"fmt"
	"math"
	"sync"

	"ppanns/internal/matrix"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Variant selects the distance transformation an enhanced ASPE scheme
// leaks to the server.
type Variant int

const (
	// Linear leaks r₁·D + r₂ (Theorem 1).
	Linear Variant = iota
	// Exponential leaks exp(r₁·D + r₂) (Corollary 1).
	Exponential
	// Logarithmic leaks ln(r₁·D + r₂) after a positivity shift
	// (Corollary 2).
	Logarithmic
	// Square leaks r₁·(D + r₂)² + r₃ (Theorem 2).
	Square
)

// String names the variant for reports.
func (v Variant) String() string {
	switch v {
	case Linear:
		return "linear"
	case Exponential:
		return "exponential"
	case Logarithmic:
		return "logarithmic"
	case Square:
		return "square"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Scheme is an ASPE key pair for d-dimensional vectors.
type Scheme struct {
	dim  int
	m    *matrix.Dense // (d+2)², encrypts database vectors
	mInv *matrix.Dense

	mu  sync.Mutex
	rnd *rng.Rand
}

// QueryRand is the per-query randomness. It is generated at trapdoor time
// and — in a deployment — known only to the user.
type QueryRand struct {
	R1, R2, R3 float64
}

// KeyGen creates an ASPE scheme instance.
func KeyGen(r *rng.Rand, dim int) (*Scheme, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("aspe: non-positive dimension %d", dim)
	}
	m, mInv := matrix.RandomInvertible(r, dim+2)
	return &Scheme{dim: dim, m: m, mInv: mInv, rnd: rng.Derive(r, 0xa59e)}, nil
}

// Dim returns the plaintext dimension.
func (s *Scheme) Dim() int { return s.dim }

// ExtendDB returns p′ = [−2pᵀ, ‖p‖², 1], the database-side extension.
func ExtendDB(p []float64) []float64 {
	out := make([]float64, len(p)+2)
	for i, v := range p {
		out[i] = -2 * v
	}
	out[len(p)] = vec.SqNorm(p)
	out[len(p)+1] = 1
	return out
}

// EncryptDB encrypts a database vector: C_p = Mᵀ·p′.
func (s *Scheme) EncryptDB(p []float64) []float64 {
	if len(p) != s.dim {
		panic(fmt.Sprintf("aspe: encrypting %d-dim vector with %d-dim key", len(p), s.dim))
	}
	// Mᵀ·p′ equals p′ᵀ·M read as a column.
	return s.m.VecMul(nil, ExtendDB(p))
}

// NewQueryRand draws fresh per-query randomness (r₁ positive).
func (s *Scheme) NewQueryRand() QueryRand {
	s.mu.Lock()
	defer s.mu.Unlock()
	return QueryRand{
		R1: rng.Uniform(s.rnd, 0.5, 2),
		R2: rng.UniformNonZero(s.rnd, 0.5, 2),
		R3: rng.UniformNonZero(s.rnd, 0.5, 2),
	}
}

// EncryptQuery produces the trapdoor T_q = M⁻¹·[r₁qᵀ, r₁, r₂]ᵀ.
func (s *Scheme) EncryptQuery(q []float64, qr QueryRand) []float64 {
	if len(q) != s.dim {
		panic(fmt.Sprintf("aspe: query of dim %d with %d-dim key", len(q), s.dim))
	}
	ext := make([]float64, s.dim+2)
	for i, v := range q {
		ext[i] = qr.R1 * v
	}
	ext[s.dim] = qr.R1
	ext[s.dim+1] = qr.R2
	return s.mInv.MulVec(nil, ext)
}

// InnerProduct is the server-side evaluation C_pᵀ·T_q = r₁·D(p,q) + r₂,
// where D(p,q) = ‖p‖² − 2pᵀq.
func InnerProduct(cp, tq []float64) float64 { return vec.Dot(cp, tq) }

// D returns the core quantity D(p,q) = ‖p‖² − 2pᵀq = dist(p,q) − ‖q‖².
// For a fixed query it is a constant shift of the squared distance, so any
// increasing transform of D orders candidates identically to dist.
func D(p, q []float64) float64 { return vec.SqNorm(p) - 2*vec.Dot(p, q) }

// logShift keeps the logarithmic variant's argument positive: the leaked
// value is ln(r₁·D + r₂ + logShift·r₁·‖q-scale‖); we use a data-dependent
// shift chosen by the caller via LeakOptions.
type LeakOptions struct {
	// Shift is added inside the log for the Logarithmic variant so its
	// argument stays positive. It plays the role of a public protocol
	// constant; the attack treats it as known.
	Shift float64
}

// LeakedValue computes the transformed distance value L(C_p, T_q) that
// variant v exposes to the server for plaintext pair (p, q) under query
// randomness qr. For Linear this equals InnerProduct(EncryptDB(p),
// EncryptQuery(q, qr)) computed purely from ciphertexts; the other variants
// apply their transform to that same core, modelling the enhanced schemes'
// observable output.
func LeakedValue(v Variant, p, q []float64, qr QueryRand, opt LeakOptions) float64 {
	core := qr.R1*D(p, q) + qr.R2
	switch v {
	case Linear:
		return core
	case Exponential:
		return math.Exp(clampExp(core))
	case Logarithmic:
		arg := core + opt.Shift
		if arg <= 0 {
			panic(fmt.Sprintf("aspe: logarithmic leak argument %g not positive; increase LeakOptions.Shift", arg))
		}
		return math.Log(arg)
	case Square:
		t := D(p, q) + qr.R2
		return qr.R1*t*t + qr.R3
	default:
		panic(fmt.Sprintf("aspe: unknown variant %d", v))
	}
}

// clampExp bounds the exponent so the exponential variant stays finite on
// adversarially large toy inputs; attacks take ln first, so the clamp only
// guards the demo against overflow.
func clampExp(x float64) float64 {
	const lim = 700
	if x > lim {
		return lim
	}
	if x < -lim {
		return -lim
	}
	return x
}
