package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestNewSeededDistinct(t *testing.T) {
	a := NewSeeded(1)
	b := NewSeeded(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincided %d/64 times", same)
	}
}

func TestNewCryptoProducesOutput(t *testing.T) {
	r := NewCrypto()
	s := NewCrypto()
	if r.Uint64() == s.Uint64() && r.Uint64() == s.Uint64() {
		t.Fatal("two crypto-seeded streams produced identical prefixes")
	}
}

func TestDeriveIndependent(t *testing.T) {
	parent := NewSeeded(7)
	a := Derive(parent, 1)
	b := Derive(parent, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams coincided %d/64 times", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewSeeded(3)
	for i := 0; i < 1000; i++ {
		v := Uniform(r, -2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) returned %v", v)
		}
	}
}

func TestUniformNonZero(t *testing.T) {
	r := NewSeeded(4)
	pos, neg := 0, 0
	for i := 0; i < 2000; i++ {
		v := UniformNonZero(r, 0.5, 2)
		if a := math.Abs(v); a < 0.5 || a >= 2 {
			t.Fatalf("UniformNonZero magnitude %v outside [0.5,2)", a)
		}
		if v > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos < 800 || neg < 800 {
		t.Fatalf("sign balance off: %d positive, %d negative", pos, neg)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := NewSeeded(5)
	const n = 200000
	v := Gaussian(r, nil, n)
	var sum, sumSq float64
	for _, x := range v {
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance %v, want ~1", variance)
	}
}

func TestGaussianReusesDst(t *testing.T) {
	r := NewSeeded(6)
	dst := make([]float64, 8)
	got := Gaussian(r, dst, 8)
	if &got[0] != &dst[0] {
		t.Fatal("Gaussian allocated a new slice despite dst being provided")
	}
}

func TestGaussianVecSigma(t *testing.T) {
	r := NewSeeded(11)
	v := GaussianVec(r, 100000, 3)
	var sumSq float64
	for _, x := range v {
		sumSq += x * x
	}
	if sd := math.Sqrt(sumSq / 100000); math.Abs(sd-3) > 0.1 {
		t.Fatalf("sample sd %v, want ~3", sd)
	}
}

func TestPermutationRoundTrip(t *testing.T) {
	r := NewSeeded(8)
	f := func(seed uint64, size uint8) bool {
		n := int(size%64) + 1
		p := NewPermutation(New(seed, 1), n)
		src := Gaussian(r, nil, n)
		permuted := p.Apply(nil, src)
		back := p.ApplyInverse(nil, permuted)
		for i := range src {
			if src[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationPreservesDot(t *testing.T) {
	r := NewSeeded(9)
	for trial := 0; trial < 50; trial++ {
		n := 16
		p := NewPermutation(r, n)
		a := Gaussian(r, nil, n)
		b := Gaussian(r, nil, n)
		var dot, dotP float64
		pa := p.Apply(nil, a)
		pb := p.Apply(nil, b)
		for i := 0; i < n; i++ {
			dot += a[i] * b[i]
			dotP += pa[i] * pb[i]
		}
		if math.Abs(dot-dotP) > 1e-12*math.Abs(dot)+1e-12 {
			t.Fatalf("permutation changed dot product: %v vs %v", dot, dotP)
		}
	}
}

func TestIdentityPermutation(t *testing.T) {
	p := IdentityPermutation(5)
	src := []float64{1, 2, 3, 4, 5}
	got := p.Apply(nil, src)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("identity permutation moved element %d", i)
		}
	}
}

func TestPermutationFromForward(t *testing.T) {
	p, err := PermutationFromForward([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	src := []float64{10, 20, 30}
	got := p.Apply(nil, src)
	want := []float64{20, 30, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("apply = %v, want %v", got, want)
		}
	}
	if _, err := PermutationFromForward([]int{0, 0, 1}); err == nil {
		t.Fatal("expected error for non-bijective forward map")
	}
	if _, err := PermutationFromForward([]int{0, 3, 1}); err == nil {
		t.Fatal("expected error for out-of-range forward map")
	}
}

func TestPermutationSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	p := IdentityPermutation(3)
	p.Apply(nil, []float64{1, 2})
}
