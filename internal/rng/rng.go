// Package rng provides the deterministic and cryptographically seeded
// randomness used across the library: independent PCG streams, Gaussian and
// ball sampling, and invertible random permutations.
//
// Every scheme in this module (DCE, DCPE, ASPE, AME, LSH, HNSW level
// assignment) consumes randomness through this package so that experiments
// are reproducible from a single seed while production key generation can be
// seeded from crypto/rand.
package rng

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	mrand "math/rand/v2"
)

// Rand is the concrete random stream type used throughout the library.
type Rand = mrand.Rand

// New returns a deterministic PCG-backed random stream for the given seed
// pair. Two streams created with the same seeds yield identical sequences.
func New(seed1, seed2 uint64) *Rand {
	return mrand.New(mrand.NewPCG(seed1, seed2))
}

// NewSeeded returns a stream derived from a single seed. The second PCG word
// is a fixed golden-ratio constant so distinct seeds yield distinct streams.
func NewSeeded(seed uint64) *Rand {
	return New(seed, 0x9e3779b97f4a7c15)
}

// NewCrypto returns a random stream seeded from the operating system CSPRNG.
// It is the default for key generation outside of tests.
func NewCrypto() *Rand {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing means the platform entropy source is broken;
		// there is no meaningful way to continue generating keys.
		panic(fmt.Sprintf("rng: crypto seed unavailable: %v", err))
	}
	return New(binary.LittleEndian.Uint64(buf[:8]), binary.LittleEndian.Uint64(buf[8:]))
}

// Derive returns a new independent stream deterministically derived from the
// parent stream and a label. It is used to hand independent randomness to
// sub-components (e.g. one stream per key matrix) without coupling their
// consumption patterns.
func Derive(r *Rand, label uint64) *Rand {
	return New(r.Uint64()^label, r.Uint64()+label)
}

// Uniform returns a float64 uniformly distributed in [lo, hi).
func Uniform(r *Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformNonZero returns a float64 uniformly distributed over
// ±[lo, hi) — bounded away from zero with a random sign. DCE's key vectors
// are sampled this way so that element-wise division stays well conditioned.
func UniformNonZero(r *Rand, lo, hi float64) float64 {
	v := Uniform(r, lo, hi)
	if r.Uint64()&1 == 0 {
		return -v
	}
	return v
}

// Gaussian fills dst with independent N(0,1) samples and returns it.
// If dst is nil a new slice of length n is allocated.
func Gaussian(r *Rand, dst []float64, n int) []float64 {
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := range dst[:n] {
		dst[i] = r.NormFloat64()
	}
	return dst[:n]
}

// GaussianVec returns a fresh vector of n independent N(0, sigma²) samples.
func GaussianVec(r *Rand, n int, sigma float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64() * sigma
	}
	return v
}

// Permutation is a permutation of {0..n-1} together with its inverse, so it
// can be applied in both directions in O(n).
type Permutation struct {
	fwd []int // fwd[i] = destination index of source element i
	inv []int // inv[fwd[i]] = i
}

// NewPermutation samples a uniformly random permutation of size n.
func NewPermutation(r *Rand, n int) *Permutation {
	fwd := r.Perm(n)
	inv := make([]int, n)
	for i, j := range fwd {
		inv[j] = i
	}
	return &Permutation{fwd: fwd, inv: inv}
}

// IdentityPermutation returns the identity permutation of size n.
func IdentityPermutation(n int) *Permutation {
	fwd := make([]int, n)
	inv := make([]int, n)
	for i := range fwd {
		fwd[i] = i
		inv[i] = i
	}
	return &Permutation{fwd: fwd, inv: inv}
}

// Len returns the permutation size.
func (p *Permutation) Len() int { return len(p.fwd) }

// Apply writes src permuted into dst (dst[fwd[i]] = src[i]) and returns dst.
// dst may be nil, in which case a new slice is allocated. dst must not alias
// src.
func (p *Permutation) Apply(dst, src []float64) []float64 {
	if len(src) != len(p.fwd) {
		panic(fmt.Sprintf("rng: permutation size %d applied to vector of size %d", len(p.fwd), len(src)))
	}
	if dst == nil {
		dst = make([]float64, len(src))
	}
	for i, j := range p.fwd {
		dst[j] = src[i]
	}
	return dst
}

// ApplyInverse writes the inverse permutation of src into dst and returns
// dst. dst may be nil and must not alias src.
func (p *Permutation) ApplyInverse(dst, src []float64) []float64 {
	if len(src) != len(p.inv) {
		panic(fmt.Sprintf("rng: permutation size %d applied to vector of size %d", len(p.inv), len(src)))
	}
	if dst == nil {
		dst = make([]float64, len(src))
	}
	for i, j := range p.inv {
		dst[j] = src[i]
	}
	return dst
}

// Forward returns the underlying forward mapping (read-only).
func (p *Permutation) Forward() []int { return p.fwd }

// PermutationFromForward reconstructs a Permutation from a forward mapping,
// validating that it is a bijection. Used when deserializing keys.
func PermutationFromForward(fwd []int) (*Permutation, error) {
	inv := make([]int, len(fwd))
	seen := make([]bool, len(fwd))
	for i, j := range fwd {
		if j < 0 || j >= len(fwd) || seen[j] {
			return nil, fmt.Errorf("rng: invalid permutation: element %d maps to %d", i, j)
		}
		seen[j] = true
		inv[j] = i
	}
	return &Permutation{fwd: append([]int(nil), fwd...), inv: inv}, nil
}
