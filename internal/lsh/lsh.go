// Package lsh implements Euclidean locality-sensitive hashing (E2LSH with
// p-stable Gaussian projections), the index underlying the RS-SANN and
// PRI-ANN baselines the paper compares against.
//
// Each of L tables hashes a vector with K concatenated quantized
// projections h_i(v) = ⌊(a_i·v + b_i)/W⌋; a query retrieves the union of
// its matching buckets (optionally probing neighboring buckets,
// multi-probe style) as the candidate set the baseline then refines.
package lsh

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"

	"ppanns/internal/epochset"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Config parameterizes an LSH index.
type Config struct {
	// Dim is the vector dimension (required).
	Dim int
	// Tables is L, the number of independent hash tables. Defaults to 8.
	Tables int
	// Hashes is K, the projections concatenated per table. Defaults to 12.
	Hashes int
	// W is the quantization width. Defaults to 4.
	W float64
	// Seed drives projection sampling.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Dim <= 0 {
		return c, fmt.Errorf("lsh: non-positive dimension %d", c.Dim)
	}
	if c.Tables <= 0 {
		c.Tables = 8
	}
	if c.Hashes <= 0 {
		c.Hashes = 12
	}
	if c.W <= 0 {
		c.W = 4
	}
	return c, nil
}

type table struct {
	projs   [][]float64 // K rows of dim
	offsets []float64   // K offsets b_i ∈ [0, W)
	buckets map[uint64][]int32
}

// Index is a thread-safe E2LSH index over external integer ids.
type Index struct {
	cfg    Config
	seed   maphash.Seed
	mu     sync.RWMutex
	tables []table
	count  int
	maxID  int // largest id ever inserted; sizes the pooled dedup table

	candPool sync.Pool
}

// candCtx is the pooled candidate-collection scratch: an epoch-stamped
// dedup set indexed by id (replacing the per-query map the old path
// allocated) and the projection scratch.
type candCtx struct {
	vis     epochset.Set
	scratch []int64
}

// New creates an empty LSH index.
func New(cfg Config) (*Index, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := rng.NewSeeded(cfg.Seed ^ 0x15a)
	ix := &Index{cfg: cfg, seed: maphash.MakeSeed()}
	ix.tables = make([]table, cfg.Tables)
	for t := range ix.tables {
		tb := &ix.tables[t]
		tb.buckets = make(map[uint64][]int32)
		tb.projs = make([][]float64, cfg.Hashes)
		tb.offsets = make([]float64, cfg.Hashes)
		for h := 0; h < cfg.Hashes; h++ {
			tb.projs[h] = rng.Gaussian(r, nil, cfg.Dim)
			tb.offsets[h] = rng.Uniform(r, 0, cfg.W)
		}
	}
	return ix, nil
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.count
}

// Clone returns an independent copy of the index: bucket contents are
// copied, so Insert on either side is invisible to the other. The
// projection matrices and offsets never change after New and are shared.
func (ix *Index) Clone() *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cp := &Index{cfg: ix.cfg, seed: ix.seed, count: ix.count, maxID: ix.maxID}
	cp.tables = make([]table, len(ix.tables))
	for t := range ix.tables {
		src := &ix.tables[t]
		dst := &cp.tables[t]
		dst.projs = src.projs
		dst.offsets = src.offsets
		dst.buckets = make(map[uint64][]int32, len(src.buckets))
		for key, ids := range src.buckets {
			dst.buckets[key] = append([]int32(nil), ids...)
		}
	}
	return cp
}

// rawHashes computes the K quantized projections of v in one table.
func (ix *Index) rawHashes(tb *table, v []float64, dst []int64) []int64 {
	dst = dst[:0]
	for h := 0; h < ix.cfg.Hashes; h++ {
		x := (vec.Dot(tb.projs[h], v) + tb.offsets[h]) / ix.cfg.W
		dst = append(dst, floorI64(x))
	}
	return dst
}

func floorI64(x float64) int64 {
	i := int64(x)
	if float64(i) > x {
		i--
	}
	return i
}

// key folds K quantized projections into one bucket key.
func (ix *Index) key(hashes []int64) uint64 {
	var mh maphash.Hash
	mh.SetSeed(ix.seed)
	var buf [8]byte
	for _, h := range hashes {
		for b := 0; b < 8; b++ {
			buf[b] = byte(uint64(h) >> (8 * b))
		}
		mh.Write(buf[:])
	}
	return mh.Sum64()
}

// Insert indexes v under id. Safe for concurrent use with other Inserts.
func (ix *Index) Insert(id int, v []float64) {
	if len(v) != ix.cfg.Dim {
		panic(fmt.Sprintf("lsh: inserting %d-dim vector into %d-dim index", len(v), ix.cfg.Dim))
	}
	scratch := make([]int64, 0, ix.cfg.Hashes)
	keys := make([]uint64, len(ix.tables))
	for t := range ix.tables {
		scratch = ix.rawHashes(&ix.tables[t], v, scratch)
		keys[t] = ix.key(scratch)
	}
	ix.mu.Lock()
	for t := range ix.tables {
		tb := &ix.tables[t]
		tb.buckets[keys[t]] = append(tb.buckets[keys[t]], int32(id))
	}
	ix.count++
	if id > ix.maxID {
		ix.maxID = id
	}
	ix.mu.Unlock()
}

// Candidates returns the deduplicated union of q's buckets across all
// tables, probing up to probes neighboring buckets per table (0 = exact
// bucket only). maxCandidates truncates the result (≤ 0 = unlimited).
func (ix *Index) Candidates(q []float64, probes, maxCandidates int) []int {
	if len(q) != ix.cfg.Dim {
		panic(fmt.Sprintf("lsh: querying %d-dim vector in %d-dim index", len(q), ix.cfg.Dim))
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	seen := make(map[int32]struct{})
	var out []int
	scratch := make([]int64, 0, ix.cfg.Hashes)
	collect := func(tb *table, key uint64) {
		for _, id := range tb.buckets[key] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, int(id))
			}
		}
	}
	for t := range ix.tables {
		tb := &ix.tables[t]
		scratch = ix.rawHashes(tb, q, scratch)
		collect(tb, ix.key(scratch))
		if probes > 0 {
			for _, pk := range ix.probeKeys(tb, q, scratch, probes) {
				collect(tb, pk)
			}
		}
		if maxCandidates > 0 && len(out) >= maxCandidates {
			return out[:maxCandidates]
		}
	}
	return out
}

// CandidatesInto is Candidates appending into dst (reusing its capacity)
// and deduplicating with a pooled epoch-stamped table instead of a
// per-query map, so a warm call's only allocations are the multi-probe
// key scratch. Ids must be non-negative (every PP-ANNS adapter uses dense
// vector positions). Candidate order is identical to Candidates: tables in
// order, exact bucket before probes, first occurrence wins.
func (ix *Index) CandidatesInto(dst []int32, q []float64, probes, maxCandidates int) []int32 {
	if len(q) != ix.cfg.Dim {
		panic(fmt.Sprintf("lsh: querying %d-dim vector in %d-dim index", len(q), ix.cfg.Dim))
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	ctx, _ := ix.candPool.Get().(*candCtx)
	if ctx == nil {
		ctx = &candCtx{}
	}
	defer ix.candPool.Put(ctx)
	ctx.vis.Grow(ix.maxID + 1)
	ctx.vis.Next()

	dst = dst[:0]
	collect := func(tb *table, key uint64) {
		for _, id := range tb.buckets[key] {
			if !ctx.vis.Seen(int(id)) {
				dst = append(dst, id)
			}
		}
	}
	ctx.scratch = ctx.scratch[:0]
	for t := range ix.tables {
		tb := &ix.tables[t]
		ctx.scratch = ix.rawHashes(tb, q, ctx.scratch)
		collect(tb, ix.key(ctx.scratch))
		if probes > 0 {
			for _, pk := range ix.probeKeys(tb, q, ctx.scratch, probes) {
				collect(tb, pk)
			}
		}
		if maxCandidates > 0 && len(dst) >= maxCandidates {
			return dst[:maxCandidates]
		}
	}
	return dst
}

// probeKeys implements simplified multi-probe LSH: for each projection it
// scores the ±1 perturbation by the query's distance to the corresponding
// quantization boundary, then emits the `probes` cheapest single-coordinate
// perturbations.
func (ix *Index) probeKeys(tb *table, q []float64, base []int64, probes int) []uint64 {
	type perturb struct {
		idx   int
		delta int64
		cost  float64
	}
	ps := make([]perturb, 0, 2*ix.cfg.Hashes)
	for h := 0; h < ix.cfg.Hashes; h++ {
		x := (vec.Dot(tb.projs[h], q) + tb.offsets[h]) / ix.cfg.W
		frac := x - float64(base[h]) // in [0, 1)
		ps = append(ps,
			perturb{idx: h, delta: -1, cost: frac},
			perturb{idx: h, delta: +1, cost: 1 - frac},
		)
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].cost < ps[b].cost })
	if probes < len(ps) {
		ps = ps[:probes]
	}
	keys := make([]uint64, 0, len(ps))
	tmp := make([]int64, len(base))
	for _, p := range ps {
		copy(tmp, base)
		tmp[p.idx] += p.delta
		keys = append(keys, ix.key(tmp))
	}
	return keys
}

// BucketOf returns, per table, the bucket key q falls into. The PIR-based
// baselines use these as block addresses to retrieve privately.
func (ix *Index) BucketOf(q []float64) []uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	keys := make([]uint64, len(ix.tables))
	scratch := make([]int64, 0, ix.cfg.Hashes)
	for t := range ix.tables {
		scratch = ix.rawHashes(&ix.tables[t], q, scratch)
		keys[t] = ix.key(scratch)
	}
	return keys
}

// Buckets exposes a table's bucket map (read-only) so baselines can lay
// buckets out as PIR blocks.
func (ix *Index) Buckets(table int) map[uint64][]int32 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tables[table].buckets
}

// Tables returns the configured number of tables.
func (ix *Index) Tables() int { return len(ix.tables) }
