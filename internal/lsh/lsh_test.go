package lsh

import (
	"sort"
	"sync"
	"testing"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

func clustered(seed uint64, n, dim, clusters int) [][]float64 {
	r := rng.NewSeeded(seed)
	centers := make([][]float64, clusters)
	for i := range centers {
		centers[i] = rng.GaussianVec(r, dim, 8)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = vec.Add(nil, centers[r.IntN(clusters)], rng.GaussianVec(r, dim, 1))
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("expected error for dim 0")
	}
}

func TestDefaults(t *testing.T) {
	ix, err := New(Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tables() != 8 {
		t.Fatalf("default tables = %d", ix.Tables())
	}
}

func TestSelfRetrieval(t *testing.T) {
	// An indexed vector must appear in its own candidate set.
	data := clustered(1, 500, 16, 5)
	ix, err := New(Config{Dim: 16, Tables: 8, Hashes: 8, W: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		ix.Insert(i, v)
	}
	for i := 0; i < 100; i++ {
		cands := ix.Candidates(data[i], 0, 0)
		found := false
		for _, c := range cands {
			if c == i {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("vector %d missing from its own bucket", i)
		}
	}
}

func TestNearNeighborsRetrieved(t *testing.T) {
	// Most true near neighbors should land in the candidate union — the
	// property the RS-SANN/PRI-ANN filter depends on.
	const n, dim, k = 3000, 16, 10
	data := clustered(2, n, dim, 15)
	ix, err := New(Config{Dim: dim, Tables: 10, Hashes: 6, W: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		ix.Insert(i, v)
	}
	r := rng.NewSeeded(3)
	var recall float64
	const queries = 40
	for qi := 0; qi < queries; qi++ {
		q := vec.Add(nil, data[r.IntN(n)], rng.GaussianVec(r, dim, 0.3))
		cands := ix.Candidates(q, 4, 0)
		// Exact k-NN among all points.
		type pair struct {
			id int
			d  float64
		}
		all := make([]pair, n)
		for i, v := range data {
			all[i] = pair{i, vec.SqDist(v, q)}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		want := map[int]bool{}
		for _, p := range all[:k] {
			want[p.id] = true
		}
		hit := 0
		for _, c := range cands {
			if want[c] {
				hit++
			}
		}
		recall += float64(hit) / k
	}
	recall /= queries
	if recall < 0.7 {
		t.Fatalf("candidate recall = %.3f, want ≥ 0.7", recall)
	}
}

func TestMultiProbeExpandsCandidates(t *testing.T) {
	data := clustered(4, 2000, 12, 10)
	ix, err := New(Config{Dim: 12, Tables: 4, Hashes: 10, W: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		ix.Insert(i, v)
	}
	r := rng.NewSeeded(5)
	growCount := 0
	for qi := 0; qi < 20; qi++ {
		q := vec.Add(nil, data[r.IntN(len(data))], rng.GaussianVec(r, 12, 0.5))
		exact := len(ix.Candidates(q, 0, 0))
		probed := len(ix.Candidates(q, 6, 0))
		if probed < exact {
			t.Fatalf("multi-probe shrank candidates: %d vs %d", probed, exact)
		}
		if probed > exact {
			growCount++
		}
	}
	if growCount == 0 {
		t.Fatal("multi-probe never expanded any candidate set")
	}
}

func TestMaxCandidatesTruncates(t *testing.T) {
	data := clustered(6, 1000, 8, 1) // one cluster: huge buckets
	ix, err := New(Config{Dim: 8, Tables: 4, Hashes: 2, W: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		ix.Insert(i, v)
	}
	cands := ix.Candidates(data[0], 0, 37)
	if len(cands) > 37 {
		t.Fatalf("maxCandidates ignored: %d", len(cands))
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	data := clustered(7, 300, 8, 2)
	ix, err := New(Config{Dim: 8, Tables: 12, Hashes: 4, W: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		ix.Insert(i, v)
	}
	cands := ix.Candidates(data[0], 2, 0)
	seen := map[int]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %d", c)
		}
		seen[c] = true
	}
}

func TestBucketOfStable(t *testing.T) {
	ix, err := New(Config{Dim: 6, Tables: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := rng.Gaussian(rng.NewSeeded(9), nil, 6)
	a := ix.BucketOf(q)
	b := ix.BucketOf(q)
	if len(a) != 3 {
		t.Fatalf("BucketOf returned %d keys", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BucketOf not deterministic")
		}
	}
}

func TestConcurrentInsert(t *testing.T) {
	data := clustered(10, 1000, 8, 4)
	ix, err := New(Config{Dim: 8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(data); i += 8 {
				ix.Insert(i, data[i])
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != len(data) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(data))
	}
}

func TestDimMismatchPanics(t *testing.T) {
	ix, err := New(Config{Dim: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"Insert":     func() { ix.Insert(0, make([]float64, 3)) },
		"Candidates": func() { ix.Candidates(make([]float64, 5), 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
