package dcpe

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ppanns/internal/rng"
)

type keyWire struct {
	S, Beta float64
	Dim     int
}

// MarshalBinary encodes the SAP secret key.
func (k *Key) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(keyWire{S: k.s, Beta: k.beta, Dim: k.dim}); err != nil {
		return nil, fmt.Errorf("dcpe: encoding key: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a key produced by MarshalBinary. The
// perturbation stream is re-seeded from crypto/rand.
func (k *Key) UnmarshalBinary(data []byte) error {
	var w keyWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("dcpe: decoding key: %w", err)
	}
	if w.Dim <= 0 || w.S <= 0 || w.Beta < 0 {
		return fmt.Errorf("dcpe: implausible key dim=%d s=%g beta=%g", w.Dim, w.S, w.Beta)
	}
	k.s, k.beta, k.dim = w.S, w.Beta, w.Dim
	k.rnd = rng.NewCrypto()
	return nil
}
