// Package dcpe implements distance-comparison-preserving encryption via the
// Scale-and-Perturb (SAP) construction the paper adopts from Fuchsbauer et
// al. (Section III-B and Algorithm 1).
//
// SAP encrypts p as C = s·p + λ where s is a secret scaling factor and λ is
// drawn uniformly from the ball B(0, sβ/4). The map is a β-DCP function:
// for any o, p, q, if dist(o,q) < dist(p,q) − β (Euclidean, unsquared) then
// dist(C_o, C_q) < dist(C_p, C_q). Distances between ciphertexts therefore
// approximate s·dist between plaintexts within ±sβ/2, which is what makes
// an HNSW graph built over SAP ciphertexts a useful — but privacy-hardened —
// filter index.
//
// Following the paper's deployment (Section V-A), decryption material is
// deliberately not retained: ciphertexts live on the server and are never
// decrypted.
package dcpe

import (
	"fmt"
	"math"
	"sync"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Key holds the SAP secret keys: the scaling factor s and the perturbation
// bound β.
type Key struct {
	s    float64
	beta float64
	dim  int

	mu  sync.Mutex
	rnd *rng.Rand
}

// KeyGen creates a SAP key for d-dimensional vectors. The paper sets
// s = 1024 and tunes β per dataset inside BetaRange; β = 0 yields exact
// (scaled) distances and no privacy, larger β trades accuracy for privacy.
func KeyGen(r *rng.Rand, dim int, s, beta float64) (*Key, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("dcpe: non-positive dimension %d", dim)
	}
	if s <= 0 {
		return nil, fmt.Errorf("dcpe: scaling factor must be positive, got %g", s)
	}
	if beta < 0 {
		return nil, fmt.Errorf("dcpe: beta must be non-negative, got %g", beta)
	}
	return &Key{s: s, beta: beta, dim: dim, rnd: rng.Derive(r, 0xdc9e)}, nil
}

// S returns the scaling factor.
func (k *Key) S() float64 { return k.s }

// Beta returns the perturbation bound β.
func (k *Key) Beta() float64 { return k.beta }

// Dim returns the vector dimension.
func (k *Key) Dim() int { return k.dim }

// MaxNoise returns sβ/4, the radius of the perturbation ball — every
// ciphertext satisfies ‖C − s·p‖ ≤ MaxNoise().
func (k *Key) MaxNoise() float64 { return k.s * k.beta / 4 }

// BetaRange returns the recommended [√M, 2M√d] range for β, where
// M = max_p max_i |p_i| (Section V-A).
func BetaRange(maxAbs float64, dim int) (lo, hi float64) {
	return math.Sqrt(maxAbs), 2 * maxAbs * math.Sqrt(float64(dim))
}

// Encrypt implements Algorithm 1 (EncSAP): C = s·p + λ with λ uniform in
// the ball of radius sβ/4. It is safe for concurrent use.
func (k *Key) Encrypt(p []float64) []float64 {
	if len(p) != k.dim {
		panic(fmt.Sprintf("dcpe: encrypting %d-dim vector with %d-dim key", len(p), k.dim))
	}
	out := vec.Scale(nil, k.s, p)
	if k.beta == 0 {
		return out
	}
	u := make([]float64, k.dim)
	k.mu.Lock()
	for i := range u {
		u[i] = k.rnd.NormFloat64() // Line 1: u ← N(0_d, I_d)
	}
	xp := k.rnd.Float64() // Line 2: x′ ← U(0, 1)
	k.mu.Unlock()

	// Line 3: x ← (sβ/4)·x′^(1/d); Line 4: λ = x·u/‖u‖.
	x := k.MaxNoise() * math.Pow(xp, 1/float64(k.dim))
	norm := vec.Norm(u)
	if norm == 0 {
		return out // astronomically unlikely; treat as zero perturbation
	}
	return vec.AXPY(out, x/norm, u, out) // Line 5: C = s·p + λ
}

// ApproxSqDist returns the squared distance between two ciphertexts divided
// by s², i.e. the server-visible approximation of dist(p, q) expressed in
// plaintext units. The filter phase ranks candidates with this quantity.
func (k *Key) ApproxSqDist(cp, cq []float64) float64 {
	return vec.SqDist(cp, cq) / (k.s * k.s)
}
