package dcpe

import (
	"math"
	"testing"
	"testing/quick"

	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

func TestKeyGenValidation(t *testing.T) {
	r := rng.NewSeeded(1)
	if _, err := KeyGen(r, 0, 1024, 1); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, err := KeyGen(r, 4, 0, 1); err == nil {
		t.Fatal("expected error for s = 0")
	}
	if _, err := KeyGen(r, 4, 1024, -1); err == nil {
		t.Fatal("expected error for negative beta")
	}
}

func TestNoiseBound(t *testing.T) {
	// ‖C − s·p‖ ≤ sβ/4 for every encryption.
	r := rng.NewSeeded(2)
	dim := 32
	k, err := KeyGen(r, dim, 1024, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		p := rng.Gaussian(r, nil, dim)
		c := k.Encrypt(p)
		noise := vec.Dist(c, vec.Scale(nil, k.S(), p))
		if noise > k.MaxNoise()*(1+1e-12) {
			t.Fatalf("noise %g exceeds bound %g", noise, k.MaxNoise())
		}
	}
}

func TestNoiseFillsBall(t *testing.T) {
	// x = (sβ/4)·x′^(1/d) concentrates mass near the shell, like a true
	// uniform ball distribution; check the radius distribution is not
	// degenerate (some points well inside, most near the boundary for
	// large d).
	r := rng.NewSeeded(3)
	dim := 16
	k, err := KeyGen(r, dim, 1, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, dim)
	nearShell := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		c := k.Encrypt(p)
		radius := vec.Norm(c) / k.MaxNoise()
		if radius > 0.8 {
			nearShell++
		}
	}
	// P(radius > 0.8) = 1 − 0.8^16 ≈ 0.972.
	if nearShell < trials*9/10 {
		t.Fatalf("only %d/%d samples near the shell; ball sampling looks wrong", nearShell, trials)
	}
}

func TestBetaZeroIsExactScaling(t *testing.T) {
	r := rng.NewSeeded(4)
	dim := 8
	k, err := KeyGen(r, dim, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.Gaussian(r, nil, dim)
	c := k.Encrypt(p)
	if !vec.ApproxEqual(c, vec.Scale(nil, 3, p), 0) {
		t.Fatal("beta=0 encryption is not exact scaling")
	}
}

func TestBetaDCPProperty(t *testing.T) {
	// Definition 3: dist(o,q) < dist(p,q) − β ⇒ encrypted order preserved
	// (Euclidean distances). This is the guarantee the filter phase needs.
	r := rng.NewSeeded(5)
	dim := 24
	beta := 1.5
	k, err := KeyGen(r, dim, 1024, beta)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for trial := 0; trial < 2000 && checked < 300; trial++ {
		o := rng.Gaussian(r, nil, dim)
		p := rng.Gaussian(r, nil, dim)
		q := rng.Gaussian(r, nil, dim)
		if vec.Dist(o, q) >= vec.Dist(p, q)-beta {
			continue
		}
		checked++
		co, cp, cq := k.Encrypt(o), k.Encrypt(p), k.Encrypt(q)
		if vec.Dist(co, cq) >= vec.Dist(cp, cq) {
			t.Fatalf("β-DCP violated: dist(o,q)=%g, dist(p,q)=%g, enc %g vs %g",
				vec.Dist(o, q), vec.Dist(p, q), vec.Dist(co, cq), vec.Dist(cp, cq))
		}
	}
	if checked < 100 {
		t.Fatalf("only %d qualifying triples; test workload misconfigured", checked)
	}
}

func TestApproxDistanceWithinBand(t *testing.T) {
	// |dist(C_p, C_q)/s − dist(p, q)| ≤ β/2.
	r := rng.NewSeeded(6)
	dim := 16
	beta := 2.0
	k, err := KeyGen(r, dim, 512, beta)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rr := rng.NewSeeded(seed)
		p := rng.Gaussian(rr, nil, dim)
		q := rng.Gaussian(rr, nil, dim)
		cp, cq := k.Encrypt(p), k.Encrypt(q)
		encDist := vec.Dist(cp, cq) / k.S()
		return math.Abs(encDist-vec.Dist(p, q)) <= beta/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxSqDistUnits(t *testing.T) {
	r := rng.NewSeeded(7)
	dim := 8
	k, err := KeyGen(r, dim, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.Gaussian(r, nil, dim)
	q := rng.Gaussian(r, nil, dim)
	got := k.ApproxSqDist(k.Encrypt(p), k.Encrypt(q))
	want := vec.SqDist(p, q)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("ApproxSqDist = %g, want %g (beta=0 must be exact)", got, want)
	}
}

func TestBetaRange(t *testing.T) {
	lo, hi := BetaRange(255, 128)
	if math.Abs(lo-math.Sqrt(255)) > 1e-12 {
		t.Fatalf("lo = %g", lo)
	}
	if math.Abs(hi-2*255*math.Sqrt(128)) > 1e-9 {
		t.Fatalf("hi = %g", hi)
	}
}

func TestEncryptIsRandomized(t *testing.T) {
	r := rng.NewSeeded(8)
	k, err := KeyGen(r, 8, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.Gaussian(r, nil, 8)
	if vec.ApproxEqual(k.Encrypt(p), k.Encrypt(p), 1e-12) {
		t.Fatal("two SAP encryptions identical despite beta > 0")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	r := rng.NewSeeded(9)
	k, err := KeyGen(r, 8, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Encrypt(make([]float64, 7))
}

func TestConcurrentEncrypt(t *testing.T) {
	r := rng.NewSeeded(10)
	dim := 16
	k, err := KeyGen(r, dim, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func(seed uint64) {
			rr := rng.NewSeeded(seed)
			ok := true
			for i := 0; i < 50; i++ {
				p := rng.Gaussian(rr, nil, dim)
				c := k.Encrypt(p)
				if vec.Dist(c, vec.Scale(nil, k.S(), p)) > k.MaxNoise()*(1+1e-12) {
					ok = false
				}
			}
			done <- ok
		}(uint64(w))
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent encryption violated the noise bound")
		}
	}
}
