// Chaos is the transport-level fault injector: a net.Listener wrapper
// that perturbs accepted connections with latency spikes, read stalls and
// connection drops, driven by a seeded RNG so every chaos run is
// reproducible from its seed. It complements shard.Faulty (which injects
// application-level failures above the wire): Chaos breaks the wire
// itself, which is what exercises the client's poisoning, deadline and
// redial machinery.
package transport

import (
	"net"
	"sync"
	"time"

	"ppanns/internal/rng"
)

// ChaosOptions configures the fault mix of a Chaos listener. All rates are
// probabilities in [0, 1], evaluated independently per socket read on the
// server side (reads carry requests, so faulting them perturbs whole
// calls). The zero value injects nothing.
type ChaosOptions struct {
	// Seed makes the fault sequence deterministic: the i-th accepted
	// connection draws from rng.NewSeeded(Seed + i).
	Seed uint64
	// DelayRate is the probability a read stalls for Delay first — a slow
	// replica / GC pause / saturated NIC.
	DelayRate float64
	// Delay is the injected stall (default 2ms when DelayRate > 0).
	Delay time.Duration
	// DropRate is the probability a read kills the connection instead — a
	// crashed replica or cut link. The peer sees an abrupt close.
	DropRate float64
}

// Chaos wraps l so every accepted connection misbehaves per opts.
func Chaos(l net.Listener, opts ChaosOptions) net.Listener {
	if opts.DelayRate > 0 && opts.Delay == 0 {
		opts.Delay = 2 * time.Millisecond
	}
	return &chaosListener{Listener: l, opts: opts}
}

type chaosListener struct {
	net.Listener
	opts  ChaosOptions
	conns uint64 // accepted so far; per-conn seed offset
	mu    sync.Mutex
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	seed := l.opts.Seed + l.conns
	l.conns++
	l.mu.Unlock()
	return &chaosConn{Conn: conn, opts: l.opts, rng: rng.NewSeeded(seed)}, nil
}

// chaosConn perturbs the read side of one connection. The RNG is guarded
// by a mutex because while the serving read loop is single-goroutine, the
// race detector must stay clean if a future caller reads concurrently.
type chaosConn struct {
	net.Conn
	opts ChaosOptions
	mu   sync.Mutex
	rng  *rng.Rand
}

func (c *chaosConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	roll := c.rng.Float64()
	c.mu.Unlock()
	switch {
	case roll < c.opts.DropRate:
		c.Conn.Close()
	case roll < c.opts.DropRate+c.opts.DelayRate:
		time.Sleep(c.opts.Delay)
	}
	return c.Conn.Read(p)
}
