// Package transport deploys the PP-ANNS roles across machines: a gob-over-
// TCP protocol carrying query tokens to the cloud server and result ids
// back — the deployment shape of the paper's Figure 1, where the only
// user↔server traffic is one encrypted token up and k ids down.
//
// # Protocol v2: multiplexed streams
//
// Every request carries a client-assigned id (Seq) which the server echoes
// on the matching response, so one connection multiplexes any number of
// concurrent calls: the client pipelines requests from many goroutines
// over a single gob stream and a demux goroutine routes each response to
// the caller waiting on its Seq, while the server dispatches every decoded
// request to its own handler goroutine (responses serialize on a write
// mutex, so frames never interleave). A slow search therefore no longer
// blocks the queries behind it, and the scatter-gather tier keeps one
// connection per shard regardless of concurrency.
//
// The v1 protocol (lockstep, one in-flight request per connection) is a
// wire-compatible subset. A v1 client never pipelines, so a v2 server's
// out-of-order completions are unobservable to it (gob ignores the Seq
// field it does not know). A v1 server echoes no Seq; the v2 client
// detects the zero id and falls back to FIFO matching, which is exactly
// right because a lockstep server answers in request order.
//
// Streams remain unframed gob, so the PR 3 poisoning semantics carry over
// unchanged: any stream-level failure (including the new deadline
// expiries) poisons the client and fails every pending and future call
// with ErrClientBroken; application errors inside intact frames do not.
// The searchbatch op still amortizes one round trip over a whole batch of
// tokens, and search ops can return cross-shard merge material for the
// scatter-gather tier (internal/shard). AME trapdoors and ciphertexts
// (benchmark-only) are not carried.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dce"
)

// ErrClientBroken marks a Client whose gob stream was poisoned by an
// earlier failure (encode/decode error, expired deadline, or Close). The
// stream carries no framing, so once an error interrupts it mid-message
// there is no way to resynchronize; instead of silently pairing requests
// with stale responses, every later call fails fast wrapping this error.
// Dial a fresh Client to recover.
var ErrClientBroken = errors.New("transport: connection poisoned by an earlier stream error")

// wireToken is the on-the-wire query token: the SAP ciphertext and the DCE
// trapdoor vector. AME trapdoors (benchmark-only, megabytes of matrices)
// are intentionally not representable.
type wireToken struct {
	SAP []float64
	Q   []float64
}

func toWireToken(tok *core.QueryToken) (*wireToken, error) {
	if tok == nil {
		return nil, nil
	}
	if tok.AME != nil {
		return nil, fmt.Errorf("transport: AME trapdoors are not carried over the wire")
	}
	wt := &wireToken{SAP: tok.SAP}
	if tok.Trapdoor != nil {
		wt.Q = tok.Trapdoor.Q
	}
	return wt, nil
}

func (wt *wireToken) token() *core.QueryToken {
	if wt == nil {
		return nil
	}
	tok := &core.QueryToken{SAP: wt.SAP}
	if wt.Q != nil {
		tok.Trapdoor = &dce.Trapdoor{Q: wt.Q}
	}
	return tok
}

// wireInsert is the on-the-wire insert payload.
type wireInsert struct {
	SAP            []float64
	P1, P2, P3, P4 []float64
}

func toWireInsert(p *core.InsertPayload) (*wireInsert, error) {
	if p == nil {
		return nil, nil
	}
	if p.AME != nil {
		return nil, fmt.Errorf("transport: AME ciphertexts are not carried over the wire")
	}
	wi := &wireInsert{SAP: p.SAP}
	if p.DCE != nil {
		wi.P1, wi.P2, wi.P3, wi.P4 = p.DCE.P1, p.DCE.P2, p.DCE.P3, p.DCE.P4
	}
	return wi, nil
}

func (wi *wireInsert) payload() *core.InsertPayload {
	if wi == nil {
		return nil
	}
	p := &core.InsertPayload{SAP: wi.SAP}
	if wi.P1 != nil {
		p.DCE = &dce.Ciphertext{P1: wi.P1, P2: wi.P2, P3: wi.P3, P4: wi.P4}
	}
	return p
}

// ProtoVersion is the generation this package speaks; servers stamp it on
// info/len responses so clients can tell a zero-valued field from one a
// legacy peer simply never sent. In-process Info builders (shard.Local)
// stamp it too, since they are by definition current. v3 adds the
// two-tier write-path accounting (Delta, Tombstones); v4 the per-tier
// memory breakdown (Memory); v5 the write-ahead-log summary (WAL).
const ProtoVersion = 5

// Info describes the server a client is connected to: which filter-index
// backend it runs, what update operations that backend supports (so
// clients can gate Insert/Delete calls instead of discovering failures
// remotely), and its record counts — N includes tombstones, Live does not.
// Proto is the server's protocol generation: 0 means a pre-v2 server,
// whose responses carry no Live count (Live then gob-decodes as 0 and
// must not be read as "everything tombstoned"); below 3, the Delta and
// Tombstones counts are likewise absent, not zero.
type Info struct {
	Backend       string
	DynamicInsert bool
	DynamicDelete bool
	N             int
	Live          int
	Dim           int
	Proto         int
	// Epoch is the server's snapshot publication count at the time of the
	// call. Replica sets seed their read-your-writes floor from it (a
	// pre-epoch server reports 0, which is also a valid floor).
	Epoch uint64
	// Delta is the server's delta-tier record count and Tombstones its
	// pending (uncompacted) tombstone count — the write-path bloat an
	// operator watches to judge compaction health (Proto ≥ 3).
	Delta      int
	Tombstones int
	// Memory is the server's per-tier memory breakdown in bytes per point
	// (Proto ≥ 4; nil from older servers, never zero-valued).
	Memory *core.MemoryStats
	// WAL summarizes the server's write-ahead log (Proto ≥ 5; nil from
	// older servers and from servers running without one — durability of
	// acknowledged writes is then the operator's problem).
	WAL *core.WALStats
}

// request is the wire envelope for client→server calls.
type request struct {
	// Seq is the multiplexing id: the server echoes it on the matching
	// response. 0 identifies a legacy (v1, lockstep) client.
	Seq   uint64
	Op    string // "search", "searchbatch", "insert", "delete", "len", "info"
	Token *wireToken
	// Tokens carries a whole batch for "searchbatch", amortizing one round
	// trip over every query in it.
	Tokens []*wireToken
	K      int
	Opt    core.SearchOptions
	// Merge asks "search"/"searchbatch" to return per-id merge material
	// (filter distances or DCE records) alongside the ids, so a
	// scatter-gather coordinator can order results across shards.
	Merge   bool
	Payload *wireInsert
	ID      int
}

// wireResult is one query's answer inside a "searchbatch" response: ids,
// optional merge material, and the per-query error (batch queries fail
// individually, never collectively).
type wireResult struct {
	IDs   []int
	Dists []float64
	Recs  [][]float64
	CtDim int
	Epoch uint64
	Err   string
}

// response is the wire envelope for server→client replies.
type response struct {
	// Seq echoes the request's multiplexing id (0 from a v1 server).
	Seq uint64
	IDs []int
	// Dists/Recs/CtDim carry the merge material of a Merge search; Epoch
	// is the snapshot publication count that served it (read-your-writes
	// staleness checks in the replica tier).
	Dists []float64
	Recs  [][]float64
	CtDim int
	Epoch uint64
	// Batch carries per-query results for "searchbatch".
	Batch []wireResult
	ID    int
	N     int
	Live  int
	// Proto is stamped ProtoVersion on len responses so clients can
	// distinguish a legacy server's absent Live count from a real zero.
	Proto int
	Info  *Info
	Err   string
}

// acceptBackoffMax caps the retry delay of the accept loop.
const acceptBackoffMax = time.Second

// maxInFlightPerConn bounds the handler goroutines one connection may have
// running at once. Requests beyond it queue in the read loop (the client
// keeps pipelining; the server just stops pulling new frames), so one
// misbehaving client cannot grow goroutines without bound.
const maxInFlightPerConn = 128

// serverWriteTimeout bounds each response write. Without it a client that
// pipelines requests and then stops reading would pin maxInFlightPerConn
// handler goroutines (plus their response payloads) per connection
// forever, every one blocked in Encode behind a full TCP send buffer.
// Generous on purpose: it only needs to catch wedged peers, not pace
// healthy ones.
const serverWriteTimeout = 2 * time.Minute

// Serve accepts connections on l and answers requests against srv until
// the listener closes. Each connection is served on its own goroutine, and
// each request on a connection is dispatched to its own handler goroutine
// (bounded by maxInFlightPerConn), so concurrent calls multiplexed over
// one connection run in parallel against the server's lock-free read path.
//
// Transient Accept failures (ECONNABORTED on a connection reset before
// accept, EMFILE under descriptor pressure, ...) must not kill the serving
// tier permanently: the loop retries with exponential backoff from 5ms up
// to one second, resetting after any successful accept, and only returns
// once the listener itself is closed. Each failure is logged — the backoff
// caps that at one line per second — so a permanently failing listener is
// visible to the operator instead of spinning silently.
func Serve(l net.Listener, srv *core.Server) error {
	var delay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else {
				delay *= 2
				if delay > acceptBackoffMax {
					delay = acceptBackoffMax
				}
			}
			log.Printf("transport: accept: %v (retrying in %v)", err, delay)
			time.Sleep(delay)
			continue
		}
		delay = 0
		go serveConn(conn, srv)
	}
}

// serveConn multiplexes one connection: a single read loop decodes
// requests and hands each to a handler goroutine; responses are encoded
// under a write mutex so frames never interleave on the shared stream.
func serveConn(conn net.Conn, srv *core.Server) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInFlightPerConn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			break // client hung up (io.EOF) or sent garbage
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(req request) {
			defer wg.Done()
			defer func() { <-sem }()
			resp := handleSafe(srv, &req)
			resp.Seq = req.Seq
			wmu.Lock()
			conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
			err := enc.Encode(resp)
			wmu.Unlock()
			if err != nil {
				// The stream is unrecoverable mid-message; closing the
				// connection also unblocks the read loop.
				conn.Close()
			}
		}(req)
	}
	wg.Wait()
	conn.Close()
}

// testHandleHook, when set, runs before every request is handled. Tests
// use it to inject panics and stalls that no well-formed request can
// otherwise produce (atomic so serving goroutines race-safely observe a
// test's store).
var testHandleHook atomic.Pointer[func(*request)]

// handleSafe is handle behind a recover(): a handler panic — a malformed
// request tripping an invariant deep in the search stack — becomes an
// error response on that one request instead of a crashed process or a
// torn connection. The panic is logged with a stack so the bug stays
// visible; the connection and every other multiplexed call on it survive.
func handleSafe(srv *core.Server, req *request) (resp *response) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("transport: panic serving %q: %v\n%s", req.Op, r, debug.Stack())
			resp = &response{Err: fmt.Sprintf("transport: internal error serving %q: %v", req.Op, r)}
		}
	}()
	if h := testHandleHook.Load(); h != nil {
		(*h)(req)
	}
	return handle(srv, req)
}

// handle executes one decoded request against the server.
func handle(srv *core.Server, req *request) *response {
	var resp response
	// Parallelism arrives from the wire; clamp it so a remote client can
	// ask for up to all of this host's cores but can never make one
	// request spawn more workers than that (the semaphore in serveConn
	// bounds concurrent requests, not workers within one).
	if max := runtime.GOMAXPROCS(0); req.Opt.Parallelism > max {
		req.Opt.Parallelism = max
	}
	switch req.Op {
	case "search":
		if req.Merge {
			r, err := srv.SearchShard(req.Token.token(), req.K, req.Opt)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.IDs, resp.Dists, resp.Recs, resp.CtDim = r.IDs, r.Dists, r.Recs, r.CtDim
				resp.Epoch = r.Epoch
			}
		} else {
			ids, err := srv.Search(req.Token.token(), req.K, req.Opt)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.IDs = ids
			}
		}
	case "searchbatch":
		toks := make([]*core.QueryToken, len(req.Tokens))
		for i, wt := range req.Tokens {
			toks[i] = wt.token()
		}
		resp.Batch = make([]wireResult, len(toks))
		if req.Merge {
			rs, errs := srv.SearchShardBatch(toks, req.K, req.Opt, 0)
			for i := range toks {
				if errs[i] != nil {
					resp.Batch[i].Err = errs[i].Error()
					continue
				}
				resp.Batch[i] = wireResult{IDs: rs[i].IDs, Dists: rs[i].Dists, Recs: rs[i].Recs, CtDim: rs[i].CtDim, Epoch: rs[i].Epoch}
			}
		} else {
			results, errs := srv.SearchBatchErrs(toks, req.K, req.Opt, 0)
			for i := range toks {
				if errs[i] != nil {
					resp.Batch[i].Err = errs[i].Error()
					continue
				}
				resp.Batch[i].IDs = results[i]
			}
		}
	case "insert":
		id, err := srv.Insert(req.Payload.payload())
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.ID = id
		}
	case "delete":
		if err := srv.Delete(req.ID); err != nil {
			resp.Err = err.Error()
		}
	case "len":
		// CompactionStats reads one snapshot for all its counts, so N and
		// Live can never be torn across a concurrent mutation. (Database()
		// would flush the delta tier — an observability call must not
		// trigger a compaction.)
		cs := srv.CompactionStats()
		resp.N = cs.Len
		resp.Live = cs.Live
		resp.Proto = ProtoVersion
	case "info":
		cs := srv.CompactionStats()
		caps := srv.Caps()
		ms := srv.MemoryStats()
		resp.Info = &Info{
			Backend:       caps.Name,
			DynamicInsert: caps.DynamicInsert,
			DynamicDelete: caps.DynamicDelete,
			N:             cs.Len,
			Live:          cs.Live,
			Dim:           srv.Dim(),
			Proto:         ProtoVersion,
			Epoch:         cs.Epoch,
			Delta:         cs.Delta,
			Tombstones:    cs.Tombstones,
			Memory:        &ms,
			WAL:           srv.WALStats(),
		}
	default:
		resp.Err = fmt.Sprintf("transport: unknown op %q", req.Op)
	}
	return &resp
}

// DialOptions configures a Client's deadlines. The zero value disables
// them all — calls then wait indefinitely, as v1 did.
type DialOptions struct {
	// DialTimeout bounds the TCP connect (0 = the OS default).
	DialTimeout time.Duration
	// Timeout is the per-call deadline: a call not answered within it
	// fails and poisons the client. Poisoning is deliberately
	// conservative — against a v2 server the demux could simply drop the
	// late response by its Seq, but the client cannot know the peer's
	// protocol generation up front (a legacy lockstep server would
	// desync), and a deadline expiry usually means the connection is
	// sick. Fail every call fast; redial to recover.
	Timeout time.Duration
	// WriteTimeout bounds each request's encode onto the socket.
	WriteTimeout time.Duration
	// ReadTimeout bounds the silence while calls are pending: the demux
	// loop must receive *some* response within it or the stream is
	// declared dead. An idle connection (no calls in flight) never times
	// out.
	ReadTimeout time.Duration
}

// callResult is what the demux loop delivers to a waiting caller.
type callResult struct {
	resp *response
	err  error
}

// Client is a connection to a remote PP-ANNS server, safe for concurrent
// use. Unlike the v1 lockstep client, concurrent calls pipeline over the
// single connection: each is tagged with a Seq id, and a demux goroutine
// routes responses — which a v2 server may complete out of order — back to
// their callers.
type Client struct {
	conn net.Conn
	opts DialOptions

	encMu sync.Mutex // serializes request frames onto the stream
	enc   *gob.Encoder

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan callResult
	fifo    []uint64 // send order, for FIFO-matching legacy (Seq-0) servers
	// broken records the first stream-level failure. The unframed gob
	// stream cannot recover from a partial message, so once set every
	// later call fails fast wrapping ErrClientBroken. Application errors
	// (a response carrying Err) do not poison the stream — the message
	// framing survived intact.
	broken error
	closed bool
	// abandoned records that at least one pending call was abandoned
	// (hedge loss, caller cancellation). Against a v2 server this is
	// harmless — the demux drops the late response by its Seq — but a
	// legacy Seq-0 server's responses are matched FIFO, and once a request
	// with no waiter is interleaved in that order the pairing can no
	// longer be trusted: the first Seq-0 response after an abandon poisons
	// the stream instead of risking mispaired answers.
	abandoned bool
}

// Dial connects to a server started with Serve, with no deadlines.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith is Dial with explicit deadline options.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	var conn net.Conn
	var err error
	if opts.DialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		opts:    opts,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan callResult),
	}
	go c.demux()
	return c, nil
}

// Close tears down the connection; pending and future calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// Broken returns the stream error that poisoned this client, or nil while
// the connection is healthy.
func (c *Client) Broken() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// fail poisons the client: it records the first stream-level error, closes
// the connection (unblocking the demux loop and any blocked writers), and
// delivers the error to every pending call exactly once.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	pend := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.fifo = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pend {
		ch <- callResult{err: err}
	}
}

// bumpReadDeadline refreshes (or, with pending == 0, clears) the read
// deadline guarding the demux loop. Called after a request reaches the
// wire, on every byte of response progress, and after every completed
// response — never on mere registration — so the deadline bounds actual
// silence from a server that owes us an answer. Caller holds c.mu.
func (c *Client) bumpReadDeadline() {
	if c.opts.ReadTimeout <= 0 {
		return
	}
	if len(c.pending) == 0 {
		c.conn.SetReadDeadline(time.Time{})
	} else {
		c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	}
}

// progressReader feeds the demux decoder and counts any received byte as
// liveness: each successful read while calls are pending re-arms the read
// deadline, so ReadTimeout bounds true silence — a large response frame
// that transfers slower than the timeout but keeps progressing never
// trips it.
type progressReader struct {
	c *Client
}

func (r *progressReader) Read(p []byte) (int, error) {
	n, err := r.c.conn.Read(p)
	if n > 0 && r.c.opts.ReadTimeout > 0 {
		r.c.mu.Lock()
		r.c.bumpReadDeadline()
		r.c.mu.Unlock()
	}
	return n, err
}

// demux is the Client's single reader: it decodes responses off the shared
// stream and routes each to the caller registered under its Seq. Responses
// from a legacy v1 server carry Seq 0 and are matched FIFO — correct
// because a lockstep server answers strictly in request order.
func (c *Client) demux() {
	dec := gob.NewDecoder(&progressReader{c: c})
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			switch {
			case closed:
				err = fmt.Errorf("transport: client closed")
			case errors.Is(err, io.EOF):
				err = fmt.Errorf("transport: server closed the connection")
			default:
				err = fmt.Errorf("transport: receive: %w", err)
			}
			c.fail(err)
			return
		}
		c.mu.Lock()
		seq := resp.Seq
		if seq == 0 {
			if c.abandoned {
				// A legacy server is answering in FIFO order but an
				// abandoned request sits somewhere in that order with no
				// waiter; matching anything after it risks handing a
				// caller someone else's answer. Unrecoverable — poison.
				c.mu.Unlock()
				c.fail(fmt.Errorf("transport: response from a legacy (v1) server after an abandoned call; cannot re-pair the stream"))
				return
			}
			// Legacy server: match the oldest still-pending call,
			// skipping ids already resolved (timed out, failed).
			for len(c.fifo) > 0 {
				s := c.fifo[0]
				c.fifo = c.fifo[1:]
				if _, ok := c.pending[s]; ok {
					seq = s
					break
				}
			}
		}
		ch, ok := c.pending[seq]
		if ok {
			delete(c.pending, seq)
		}
		// Trim resolved ids off the fifo head so a pure-v2 stream does
		// not accumulate one entry per request for the life of the
		// connection (entries behind a still-pending head linger only
		// until it resolves — bounded by the in-flight count).
		for len(c.fifo) > 0 {
			if _, waiting := c.pending[c.fifo[0]]; waiting {
				break
			}
			c.fifo = c.fifo[1:]
		}
		c.bumpReadDeadline()
		c.mu.Unlock()
		if ok {
			ch <- callResult{resp: &resp}
		}
		// A response with no waiter (e.g. a stray frame from a confused
		// server) is dropped; the next decode either resynchronizes or
		// fails and poisons the stream.
	}
}

// ErrAbandoned is returned by cancellable calls whose cancel channel fired
// before the response arrived. The call is abandoned locally — the request
// stays in flight on the server and its response, when it comes, is
// dropped by Seq — and the client remains healthy for subsequent calls
// (unless the peer turns out to be a legacy v1 server; see demux).
var ErrAbandoned = errors.New("transport: call abandoned by caller")

// abandon unregisters a pending call without poisoning the stream. It
// reports whether the call was still pending: false means the demux (or a
// failure) already resolved it and the caller should collect the result
// from its channel instead.
func (c *Client) abandon(seq uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[seq]; !ok {
		return false
	}
	delete(c.pending, seq)
	c.abandoned = true
	c.bumpReadDeadline()
	return true
}

func (c *Client) roundTrip(req request) (response, error) {
	return c.roundTripCancel(req, nil)
}

// roundTripCancel is roundTrip with an optional cancel channel: if cancel
// is closed before the response arrives the call returns ErrAbandoned
// without waiting and without poisoning the multiplexed stream (the hedged
// -read loser path). A nil cancel never fires.
func (c *Client) roundTripCancel(req request, cancel <-chan struct{}) (response, error) {
	c.mu.Lock()
	if c.broken != nil {
		err := fmt.Errorf("%w (cause: %v)", ErrClientBroken, c.broken)
		c.mu.Unlock()
		return response{}, err
	}
	c.seq++
	req.Seq = c.seq
	ch := make(chan callResult, 1)
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.encMu.Lock()
	// The write deadline is armed under the write lock, immediately
	// before the encode: set any earlier, time spent queued behind other
	// writers would count against it (and would retarget the deadline of
	// whichever Write is in progress), poisoning a healthy connection.
	if c.opts.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	// The fifo records socket WRITE order, not registration order — a
	// legacy server answers in the order requests hit the wire, so the
	// append must happen under the write lock, atomically with the
	// encode, or two goroutines racing between registration and encode
	// would let the FIFO fallback swap their responses.
	c.mu.Lock()
	c.fifo = append(c.fifo, req.Seq)
	c.mu.Unlock()
	err := c.enc.Encode(&req)
	c.encMu.Unlock()
	if err != nil {
		err = fmt.Errorf("transport: send: %w", err)
		c.fail(err)
		return response{}, err
	}
	// Arm the read deadline only once the request has actually reached
	// the wire — armed at registration it would count time spent queued
	// behind other writers, and the server cannot answer a request it
	// has not received. From here, every byte of response progress
	// (progressReader) and every completed response re-arm it, so it
	// bounds true silence.
	c.mu.Lock()
	c.bumpReadDeadline()
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.opts.Timeout > 0 {
		t := time.NewTimer(c.opts.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-ch:
		return finishCall(r)
	case <-cancel:
		if c.abandon(req.Seq) {
			return response{}, ErrAbandoned
		}
		// The demux resolved the call in the same instant the cancel
		// fired; its result (buffered, or the failure fail() delivered)
		// is moments from the channel — return the real answer.
		return finishCall(<-ch)
	case <-timeout:
		err := fmt.Errorf("transport: call timed out after %v", c.opts.Timeout)
		c.fail(err)
		return response{}, err
	}
}

// finishCall unwraps a demux delivery into the roundTrip return contract.
func finishCall(r callResult) (response, error) {
	if r.err != nil {
		return response{}, r.err
	}
	if r.resp.Err != "" {
		return response{}, errors.New(r.resp.Err)
	}
	return *r.resp, nil
}

// Search sends an encrypted query token and returns result ids.
func (c *Client) Search(tok *core.QueryToken, k int, opt core.SearchOptions) ([]int, error) {
	wt, err := toWireToken(tok)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(request{Op: "search", Token: wt, K: k, Opt: opt})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// SearchShard is Search additionally returning the merge material a
// scatter-gather coordinator needs (see core.Server.SearchShard). AME
// material is never carried, so remote shards serve the DCE and
// filter-only refine modes.
func (c *Client) SearchShard(tok *core.QueryToken, k int, opt core.SearchOptions) (core.ShardResult, error) {
	return c.SearchShardCancel(nil, tok, k, opt)
}

// SearchShardCancel is SearchShard with a cancel channel: closing cancel
// abandons the call (ErrAbandoned) without poisoning the client, which is
// how a hedged read discards its loser. A nil cancel never fires.
func (c *Client) SearchShardCancel(cancel <-chan struct{}, tok *core.QueryToken, k int, opt core.SearchOptions) (core.ShardResult, error) {
	wt, err := toWireToken(tok)
	if err != nil {
		return core.ShardResult{}, err
	}
	resp, err := c.roundTripCancel(request{Op: "search", Token: wt, K: k, Opt: opt, Merge: true}, cancel)
	if err != nil {
		return core.ShardResult{}, err
	}
	return core.ShardResult{IDs: resp.IDs, Dists: resp.Dists, Recs: resp.Recs, CtDim: resp.CtDim, Epoch: resp.Epoch}, nil
}

// searchBatch is the shared client body of the "searchbatch" op: one round
// trip for the whole batch, per-query results and errors in input order.
func (c *Client) searchBatch(toks []*core.QueryToken, k int, opt core.SearchOptions, merge bool) ([]core.ShardResult, []error, error) {
	if len(toks) == 0 {
		return nil, nil, nil
	}
	wts := make([]*wireToken, len(toks))
	for i, tok := range toks {
		wt, err := toWireToken(tok)
		if err != nil {
			return nil, nil, err
		}
		wts[i] = wt
	}
	resp, err := c.roundTrip(request{Op: "searchbatch", Tokens: wts, K: k, Opt: opt, Merge: merge})
	if err != nil {
		return nil, nil, err
	}
	if len(resp.Batch) != len(toks) {
		return nil, nil, fmt.Errorf("transport: server answered %d of %d batch queries", len(resp.Batch), len(toks))
	}
	results := make([]core.ShardResult, len(toks))
	errs := make([]error, len(toks))
	for i, wr := range resp.Batch {
		if wr.Err != "" {
			errs[i] = errors.New(wr.Err)
			continue
		}
		results[i] = core.ShardResult{IDs: wr.IDs, Dists: wr.Dists, Recs: wr.Recs, CtDim: wr.CtDim, Epoch: wr.Epoch}
	}
	return results, errs, nil
}

// SearchBatch answers a whole batch of queries in a single round trip —
// the server fans the batch across its cores, honoring
// core.SearchOptions.Parallelism — and returns per-query results in input
// order. Failed queries surface exactly like core.Server.SearchBatch:
// their slots are nil and the returned error is a *core.BatchError listing
// them, so a single malformed token never voids the rest of the batch. A
// transport-level failure voids the whole call.
func (c *Client) SearchBatch(toks []*core.QueryToken, k int, opt core.SearchOptions) ([][]int, error) {
	rs, errs, err := c.searchBatch(toks, k, opt, false)
	if err != nil || rs == nil {
		return nil, err
	}
	results := make([][]int, len(rs))
	var failed []core.QueryError
	for i := range rs {
		if errs[i] != nil {
			failed = append(failed, core.QueryError{Query: i, Err: errs[i]})
			continue
		}
		results[i] = rs[i].IDs
	}
	if len(failed) > 0 {
		return results, &core.BatchError{Failed: failed}
	}
	return results, nil
}

// SearchShardBatch is SearchShard over a whole batch in one round trip:
// per-query ShardResults and errors in input order (parallel slices), plus
// the transport-level error that voided the call, if any.
func (c *Client) SearchShardBatch(toks []*core.QueryToken, k int, opt core.SearchOptions) ([]core.ShardResult, []error, error) {
	return c.searchBatch(toks, k, opt, true)
}

// Insert ships one encrypted vector and returns its id.
func (c *Client) Insert(p *core.InsertPayload) (int, error) {
	wi, err := toWireInsert(p)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(request{Op: "insert", Payload: wi})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Delete removes an id on the server.
func (c *Client) Delete(id int) error {
	_, err := c.roundTrip(request{Op: "delete", ID: id})
	return err
}

// Len returns the server-side vector count (tombstones included).
func (c *Client) Len() (int, error) {
	resp, err := c.roundTrip(request{Op: "len"})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Live returns the server-side count of non-tombstoned vectors. A pre-v2
// server never reports it; that surfaces as an error rather than a bogus
// zero.
func (c *Client) Live() (int, error) {
	resp, err := c.roundTrip(request{Op: "len"})
	if err != nil {
		return 0, err
	}
	if resp.Proto == 0 {
		return 0, fmt.Errorf("transport: server predates live counts (protocol v1)")
	}
	return resp.Live, nil
}

// Info returns the server's backend name, capabilities and size.
func (c *Client) Info() (Info, error) {
	resp, err := c.roundTrip(request{Op: "info"})
	if err != nil {
		return Info{}, err
	}
	if resp.Info == nil {
		return Info{}, fmt.Errorf("transport: server sent no info")
	}
	return *resp.Info, nil
}
