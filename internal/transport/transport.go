// Package transport deploys the PP-ANNS roles across machines: a gob-over-
// TCP protocol carrying query tokens to the cloud server and result ids
// back — the deployment shape of the paper's Figure 1, where the only
// user↔server traffic is one encrypted token up and k ids down.
//
// The protocol is deliberately minimal (length-free gob stream per
// connection, one in-flight request per connection); it exists so the
// three-role example runs as real processes, not to be a general RPC
// framework. The searchbatch op amortizes the round trip over a whole
// batch of tokens, and search ops can additionally return cross-shard
// merge material for the scatter-gather tier (internal/shard). AME
// trapdoors and ciphertexts (benchmark-only) are not carried.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dce"
)

// ErrClientBroken marks a Client whose gob stream was poisoned by an
// earlier encode/decode failure. The stream carries no framing, so once an
// error interrupts it mid-message there is no way to resynchronize;
// instead of silently pairing requests with stale responses, every later
// call fails fast wrapping this error. Dial a fresh Client to recover.
var ErrClientBroken = errors.New("transport: connection poisoned by an earlier stream error")

// wireToken is the on-the-wire query token: the SAP ciphertext and the DCE
// trapdoor vector. AME trapdoors (benchmark-only, megabytes of matrices)
// are intentionally not representable.
type wireToken struct {
	SAP []float64
	Q   []float64
}

func toWireToken(tok *core.QueryToken) (*wireToken, error) {
	if tok == nil {
		return nil, nil
	}
	if tok.AME != nil {
		return nil, fmt.Errorf("transport: AME trapdoors are not carried over the wire")
	}
	wt := &wireToken{SAP: tok.SAP}
	if tok.Trapdoor != nil {
		wt.Q = tok.Trapdoor.Q
	}
	return wt, nil
}

func (wt *wireToken) token() *core.QueryToken {
	if wt == nil {
		return nil
	}
	tok := &core.QueryToken{SAP: wt.SAP}
	if wt.Q != nil {
		tok.Trapdoor = &dce.Trapdoor{Q: wt.Q}
	}
	return tok
}

// wireInsert is the on-the-wire insert payload.
type wireInsert struct {
	SAP            []float64
	P1, P2, P3, P4 []float64
}

func toWireInsert(p *core.InsertPayload) (*wireInsert, error) {
	if p == nil {
		return nil, nil
	}
	if p.AME != nil {
		return nil, fmt.Errorf("transport: AME ciphertexts are not carried over the wire")
	}
	wi := &wireInsert{SAP: p.SAP}
	if p.DCE != nil {
		wi.P1, wi.P2, wi.P3, wi.P4 = p.DCE.P1, p.DCE.P2, p.DCE.P3, p.DCE.P4
	}
	return wi, nil
}

func (wi *wireInsert) payload() *core.InsertPayload {
	if wi == nil {
		return nil
	}
	p := &core.InsertPayload{SAP: wi.SAP}
	if wi.P1 != nil {
		p.DCE = &dce.Ciphertext{P1: wi.P1, P2: wi.P2, P3: wi.P3, P4: wi.P4}
	}
	return p
}

// Info describes the server a client is connected to: which filter-index
// backend it runs and what update operations that backend supports, so
// clients can gate Insert/Delete calls instead of discovering failures
// remotely.
type Info struct {
	Backend       string
	DynamicInsert bool
	DynamicDelete bool
	N             int
	Dim           int
}

// request is the wire envelope for client→server calls.
type request struct {
	Op    string // "search", "searchbatch", "insert", "delete", "len", "info"
	Token *wireToken
	// Tokens carries a whole batch for "searchbatch", amortizing one round
	// trip over every query in it.
	Tokens []*wireToken
	K      int
	Opt    core.SearchOptions
	// Merge asks "search"/"searchbatch" to return per-id merge material
	// (filter distances or DCE records) alongside the ids, so a
	// scatter-gather coordinator can order results across shards.
	Merge   bool
	Payload *wireInsert
	ID      int
}

// wireResult is one query's answer inside a "searchbatch" response: ids,
// optional merge material, and the per-query error (batch queries fail
// individually, never collectively).
type wireResult struct {
	IDs   []int
	Dists []float64
	Recs  [][]float64
	CtDim int
	Err   string
}

// response is the wire envelope for server→client replies.
type response struct {
	IDs []int
	// Dists/Recs/CtDim carry the merge material of a Merge search.
	Dists []float64
	Recs  [][]float64
	CtDim int
	// Batch carries per-query results for "searchbatch".
	Batch []wireResult
	ID    int
	N     int
	Info  *Info
	Err   string
}

// acceptBackoffMax caps the retry delay of the accept loop.
const acceptBackoffMax = time.Second

// Serve accepts connections on l and answers requests against srv until
// the listener closes. Each connection is served on its own goroutine.
//
// Transient Accept failures (ECONNABORTED on a connection reset before
// accept, EMFILE under descriptor pressure, ...) must not kill the serving
// tier permanently: the loop retries with exponential backoff from 5ms up
// to one second, resetting after any successful accept, and only returns
// once the listener itself is closed. Each failure is logged — the backoff
// caps that at one line per second — so a permanently failing listener is
// visible to the operator instead of spinning silently.
func Serve(l net.Listener, srv *core.Server) error {
	var delay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else {
				delay *= 2
				if delay > acceptBackoffMax {
					delay = acceptBackoffMax
				}
			}
			log.Printf("transport: accept: %v (retrying in %v)", err, delay)
			time.Sleep(delay)
			continue
		}
		delay = 0
		go serveConn(conn, srv)
	}
}

func serveConn(conn net.Conn, srv *core.Server) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client hung up (io.EOF) or sent garbage
		}
		var resp response
		switch req.Op {
		case "search":
			if req.Merge {
				r, err := srv.SearchShard(req.Token.token(), req.K, req.Opt)
				if err != nil {
					resp.Err = err.Error()
				} else {
					resp.IDs, resp.Dists, resp.Recs, resp.CtDim = r.IDs, r.Dists, r.Recs, r.CtDim
				}
			} else {
				ids, err := srv.Search(req.Token.token(), req.K, req.Opt)
				if err != nil {
					resp.Err = err.Error()
				} else {
					resp.IDs = ids
				}
			}
		case "searchbatch":
			toks := make([]*core.QueryToken, len(req.Tokens))
			for i, wt := range req.Tokens {
				toks[i] = wt.token()
			}
			resp.Batch = make([]wireResult, len(toks))
			if req.Merge {
				rs, errs := srv.SearchShardBatch(toks, req.K, req.Opt, 0)
				for i := range toks {
					if errs[i] != nil {
						resp.Batch[i].Err = errs[i].Error()
						continue
					}
					resp.Batch[i] = wireResult{IDs: rs[i].IDs, Dists: rs[i].Dists, Recs: rs[i].Recs, CtDim: rs[i].CtDim}
				}
			} else {
				results, errs := srv.SearchBatchErrs(toks, req.K, req.Opt, 0)
				for i := range toks {
					if errs[i] != nil {
						resp.Batch[i].Err = errs[i].Error()
						continue
					}
					resp.Batch[i].IDs = results[i]
				}
			}
		case "insert":
			id, err := srv.Insert(req.Payload.payload())
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.ID = id
			}
		case "delete":
			if err := srv.Delete(req.ID); err != nil {
				resp.Err = err.Error()
			}
		case "len":
			resp.N = srv.Len()
		case "info":
			caps := srv.Caps()
			resp.Info = &Info{
				Backend:       srv.Backend(),
				DynamicInsert: caps.DynamicInsert,
				DynamicDelete: caps.DynamicDelete,
				N:             srv.Len(),
				Dim:           srv.Dim(),
			}
		default:
			resp.Err = fmt.Sprintf("transport: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Client is a connection to a remote PP-ANNS server. Safe for concurrent
// use (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	// broken records the first stream-level failure. The unframed gob
	// stream cannot recover from a partial message, so once set every
	// later round trip fails fast wrapping ErrClientBroken. Application
	// errors (a response carrying Err) do not poison the stream — the
	// message framing survived intact.
	broken error
}

// Dial connects to a server started with Serve.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Broken returns the stream error that poisoned this client, or nil while
// the connection is healthy.
func (c *Client) Broken() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return response{}, fmt.Errorf("%w (cause: %v)", ErrClientBroken, c.broken)
	}
	if err := c.enc.Encode(&req); err != nil {
		c.broken = err
		return response{}, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.broken = err
		if errors.Is(err, io.EOF) {
			return response{}, fmt.Errorf("transport: server closed the connection")
		}
		return response{}, fmt.Errorf("transport: receive: %w", err)
	}
	if resp.Err != "" {
		return response{}, errors.New(resp.Err)
	}
	return resp, nil
}

// Search sends an encrypted query token and returns result ids.
func (c *Client) Search(tok *core.QueryToken, k int, opt core.SearchOptions) ([]int, error) {
	wt, err := toWireToken(tok)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(request{Op: "search", Token: wt, K: k, Opt: opt})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// SearchShard is Search additionally returning the merge material a
// scatter-gather coordinator needs (see core.Server.SearchShard). AME
// material is never carried, so remote shards serve the DCE and
// filter-only refine modes.
func (c *Client) SearchShard(tok *core.QueryToken, k int, opt core.SearchOptions) (core.ShardResult, error) {
	wt, err := toWireToken(tok)
	if err != nil {
		return core.ShardResult{}, err
	}
	resp, err := c.roundTrip(request{Op: "search", Token: wt, K: k, Opt: opt, Merge: true})
	if err != nil {
		return core.ShardResult{}, err
	}
	return core.ShardResult{IDs: resp.IDs, Dists: resp.Dists, Recs: resp.Recs, CtDim: resp.CtDim}, nil
}

// searchBatch is the shared client body of the "searchbatch" op: one round
// trip for the whole batch, per-query results and errors in input order.
func (c *Client) searchBatch(toks []*core.QueryToken, k int, opt core.SearchOptions, merge bool) ([]core.ShardResult, []error, error) {
	if len(toks) == 0 {
		return nil, nil, nil
	}
	wts := make([]*wireToken, len(toks))
	for i, tok := range toks {
		wt, err := toWireToken(tok)
		if err != nil {
			return nil, nil, err
		}
		wts[i] = wt
	}
	resp, err := c.roundTrip(request{Op: "searchbatch", Tokens: wts, K: k, Opt: opt, Merge: merge})
	if err != nil {
		return nil, nil, err
	}
	if len(resp.Batch) != len(toks) {
		return nil, nil, fmt.Errorf("transport: server answered %d of %d batch queries", len(resp.Batch), len(toks))
	}
	results := make([]core.ShardResult, len(toks))
	errs := make([]error, len(toks))
	for i, wr := range resp.Batch {
		if wr.Err != "" {
			errs[i] = errors.New(wr.Err)
			continue
		}
		results[i] = core.ShardResult{IDs: wr.IDs, Dists: wr.Dists, Recs: wr.Recs, CtDim: wr.CtDim}
	}
	return results, errs, nil
}

// SearchBatch answers a whole batch of queries in a single round trip —
// the server fans the batch across its cores — and returns per-query
// results in input order. Failed queries surface exactly like
// core.Server.SearchBatch: their slots are nil and the returned error is a
// *core.BatchError listing them, so a single malformed token never voids
// the rest of the batch. A transport-level failure voids the whole call.
func (c *Client) SearchBatch(toks []*core.QueryToken, k int, opt core.SearchOptions) ([][]int, error) {
	rs, errs, err := c.searchBatch(toks, k, opt, false)
	if err != nil || rs == nil {
		return nil, err
	}
	results := make([][]int, len(rs))
	var failed []core.QueryError
	for i := range rs {
		if errs[i] != nil {
			failed = append(failed, core.QueryError{Query: i, Err: errs[i]})
			continue
		}
		results[i] = rs[i].IDs
	}
	if len(failed) > 0 {
		return results, &core.BatchError{Failed: failed}
	}
	return results, nil
}

// SearchShardBatch is SearchShard over a whole batch in one round trip:
// per-query ShardResults and errors in input order (parallel slices), plus
// the transport-level error that voided the call, if any.
func (c *Client) SearchShardBatch(toks []*core.QueryToken, k int, opt core.SearchOptions) ([]core.ShardResult, []error, error) {
	return c.searchBatch(toks, k, opt, true)
}

// Insert ships one encrypted vector and returns its id.
func (c *Client) Insert(p *core.InsertPayload) (int, error) {
	wi, err := toWireInsert(p)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(request{Op: "insert", Payload: wi})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Delete removes an id on the server.
func (c *Client) Delete(id int) error {
	_, err := c.roundTrip(request{Op: "delete", ID: id})
	return err
}

// Len returns the server-side vector count.
func (c *Client) Len() (int, error) {
	resp, err := c.roundTrip(request{Op: "len"})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Info returns the server's backend name, capabilities and size.
func (c *Client) Info() (Info, error) {
	resp, err := c.roundTrip(request{Op: "info"})
	if err != nil {
		return Info{}, err
	}
	if resp.Info == nil {
		return Info{}, fmt.Errorf("transport: server sent no info")
	}
	return *resp.Info, nil
}
