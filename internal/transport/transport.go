// Package transport deploys the PP-ANNS roles across machines: a gob-over-
// TCP protocol carrying query tokens to the cloud server and result ids
// back — the deployment shape of the paper's Figure 1, where the only
// user↔server traffic is one encrypted token up and k ids down.
//
// The protocol is deliberately minimal (length-free gob stream per
// connection, one in-flight request per connection); it exists so the
// three-role example runs as real processes, not to be a general RPC
// framework. AME trapdoors (benchmark-only) are not carried.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ppanns/internal/core"
	"ppanns/internal/dce"
)

// wireToken is the on-the-wire query token: the SAP ciphertext and the DCE
// trapdoor vector. AME trapdoors (benchmark-only, megabytes of matrices)
// are intentionally not representable.
type wireToken struct {
	SAP []float64
	Q   []float64
}

func toWireToken(tok *core.QueryToken) (*wireToken, error) {
	if tok == nil {
		return nil, nil
	}
	if tok.AME != nil {
		return nil, fmt.Errorf("transport: AME trapdoors are not carried over the wire")
	}
	wt := &wireToken{SAP: tok.SAP}
	if tok.Trapdoor != nil {
		wt.Q = tok.Trapdoor.Q
	}
	return wt, nil
}

func (wt *wireToken) token() *core.QueryToken {
	if wt == nil {
		return nil
	}
	tok := &core.QueryToken{SAP: wt.SAP}
	if wt.Q != nil {
		tok.Trapdoor = &dce.Trapdoor{Q: wt.Q}
	}
	return tok
}

// wireInsert is the on-the-wire insert payload.
type wireInsert struct {
	SAP            []float64
	P1, P2, P3, P4 []float64
}

func toWireInsert(p *core.InsertPayload) (*wireInsert, error) {
	if p == nil {
		return nil, nil
	}
	if p.AME != nil {
		return nil, fmt.Errorf("transport: AME ciphertexts are not carried over the wire")
	}
	wi := &wireInsert{SAP: p.SAP}
	if p.DCE != nil {
		wi.P1, wi.P2, wi.P3, wi.P4 = p.DCE.P1, p.DCE.P2, p.DCE.P3, p.DCE.P4
	}
	return wi, nil
}

func (wi *wireInsert) payload() *core.InsertPayload {
	if wi == nil {
		return nil
	}
	p := &core.InsertPayload{SAP: wi.SAP}
	if wi.P1 != nil {
		p.DCE = &dce.Ciphertext{P1: wi.P1, P2: wi.P2, P3: wi.P3, P4: wi.P4}
	}
	return p
}

// Info describes the server a client is connected to: which filter-index
// backend it runs and what update operations that backend supports, so
// clients can gate Insert/Delete calls instead of discovering failures
// remotely.
type Info struct {
	Backend       string
	DynamicInsert bool
	DynamicDelete bool
	N             int
	Dim           int
}

// request is the wire envelope for client→server calls.
type request struct {
	Op      string // "search", "insert", "delete", "len", "info"
	Token   *wireToken
	K       int
	Opt     core.SearchOptions
	Payload *wireInsert
	ID      int
}

// response is the wire envelope for server→client replies.
type response struct {
	IDs  []int
	ID   int
	N    int
	Info *Info
	Err  string
}

// Serve accepts connections on l and answers requests against srv until
// the listener closes. Each connection is served on its own goroutine.
func Serve(l net.Listener, srv *core.Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, srv)
	}
}

func serveConn(conn net.Conn, srv *core.Server) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client hung up (io.EOF) or sent garbage
		}
		var resp response
		switch req.Op {
		case "search":
			ids, err := srv.Search(req.Token.token(), req.K, req.Opt)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.IDs = ids
			}
		case "insert":
			id, err := srv.Insert(req.Payload.payload())
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.ID = id
			}
		case "delete":
			if err := srv.Delete(req.ID); err != nil {
				resp.Err = err.Error()
			}
		case "len":
			resp.N = srv.Len()
		case "info":
			caps := srv.Caps()
			resp.Info = &Info{
				Backend:       srv.Backend(),
				DynamicInsert: caps.DynamicInsert,
				DynamicDelete: caps.DynamicDelete,
				N:             srv.Len(),
				Dim:           srv.Dim(),
			}
		default:
			resp.Err = fmt.Sprintf("transport: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Client is a connection to a remote PP-ANNS server. Safe for concurrent
// use (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a server started with Serve.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return response{}, fmt.Errorf("transport: server closed the connection")
		}
		return response{}, fmt.Errorf("transport: receive: %w", err)
	}
	if resp.Err != "" {
		return response{}, errors.New(resp.Err)
	}
	return resp, nil
}

// Search sends an encrypted query token and returns result ids.
func (c *Client) Search(tok *core.QueryToken, k int, opt core.SearchOptions) ([]int, error) {
	wt, err := toWireToken(tok)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(request{Op: "search", Token: wt, K: k, Opt: opt})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Insert ships one encrypted vector and returns its id.
func (c *Client) Insert(p *core.InsertPayload) (int, error) {
	wi, err := toWireInsert(p)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(request{Op: "insert", Payload: wi})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Delete removes an id on the server.
func (c *Client) Delete(id int) error {
	_, err := c.roundTrip(request{Op: "delete", ID: id})
	return err
}

// Len returns the server-side vector count.
func (c *Client) Len() (int, error) {
	resp, err := c.roundTrip(request{Op: "len"})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Info returns the server's backend name, capabilities and size.
func (c *Client) Info() (Info, error) {
	resp, err := c.roundTrip(request{Op: "info"})
	if err != nil {
		return Info{}, err
	}
	if resp.Info == nil {
		return Info{}, fmt.Errorf("transport: server sent no info")
	}
	return *resp.Info, nil
}
