package transport

import (
	"encoding/gob"
	"errors"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
)

// withHandleHook installs a test hook into the server's request handler
// and removes it when the test ends. Hooks let these tests manufacture
// handler panics and stalls that no well-formed request can cause.
func withHandleHook(t *testing.T, h func(*request)) {
	t.Helper()
	testHandleHook.Store(&h)
	t.Cleanup(func() { testHandleHook.Store(nil) })
}

// TestHandlerPanicRecovered pins the blast radius of a handler panic: the
// panicking request gets an error response, and the connection — with
// every other request multiplexed on it — survives.
func TestHandlerPanicRecovered(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	withHandleHook(t, func(req *request) {
		if req.Op == "search" {
			panic("injected handler panic")
		}
	})
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Search(tok, 5, core.SearchOptions{})
	if err == nil {
		t.Fatal("search against a panicking handler returned no error")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("panic surfaced as %v, want an internal-error response", err)
	}

	// The connection must still be healthy: ops the hook ignores work, and
	// once the hook is gone the same search succeeds on the same client.
	if n, err := client.Len(); err != nil || n != 600 {
		t.Fatalf("Len after handler panic = %d, %v; the connection did not survive", n, err)
	}
	testHandleHook.Store(nil)
	ids, err := client.Search(tok, 5, core.SearchOptions{})
	if err != nil || len(ids) != 5 {
		t.Fatalf("search after hook removal = %v, %v", ids, err)
	}
	if client.Broken() != nil {
		t.Fatalf("client poisoned by a recovered panic: %v", client.Broken())
	}
}

// TestCancelAbandonsCall pins per-request cancellation: a caller that
// gives up on a stalled request gets ErrAbandoned promptly, and the
// multiplexed stream keeps working for everyone else — the straggler's
// eventual response is dropped by seq, not misdelivered.
func TestCancelAbandonsCall(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const stall = 300 * time.Millisecond
	withHandleHook(t, func(req *request) {
		if req.Op == "search" {
			time.Sleep(stall)
		}
	})
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}

	cancel := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, err = client.SearchShardCancel(cancel, tok, 5, core.SearchOptions{})
	if !errors.Is(err, ErrAbandoned) {
		t.Fatalf("cancelled call err = %v, want ErrAbandoned", err)
	}
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("cancelled call took %v, the cancel did not release the caller", elapsed)
	}

	// Other traffic on the same stream is unaffected, including after the
	// stalled handler finally responds.
	if n, err := client.Len(); err != nil || n != 600 {
		t.Fatalf("Len during abandoned call = %d, %v", n, err)
	}
	time.Sleep(stall + 50*time.Millisecond)
	if client.Broken() != nil {
		t.Fatalf("client poisoned by the straggler response: %v", client.Broken())
	}
	testHandleHook.Store(nil)
	res, err := client.SearchShardCancel(nil, tok, 5, core.SearchOptions{})
	if err != nil || len(res.IDs) != 5 {
		t.Fatalf("search after abandon = %v, %v", res.IDs, err)
	}
}

// TestCancelRaceNeverPoisons hammers the abandon/response race: cancels
// firing right around response arrival must always yield either the real
// result or ErrAbandoned, and never wedge or poison the client.
func TestCancelRaceNeverPoisons(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}

	iters := 50
	if os.Getenv("PPANNS_CHAOS") == "1" {
		iters = 500
	}
	var wg sync.WaitGroup
	for i := 0; i < iters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cancel := make(chan struct{})
			go func() {
				// Spread the cancel across the request's lifetime.
				time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
				close(cancel)
			}()
			res, err := client.SearchShardCancel(cancel, tok, 5, core.SearchOptions{})
			if err == nil {
				if len(res.IDs) != 5 {
					t.Errorf("iter %d: short result %v", i, res.IDs)
				}
			} else if !errors.Is(err, ErrAbandoned) {
				t.Errorf("iter %d: err = %v, want nil or ErrAbandoned", i, err)
			}
		}(i)
	}
	wg.Wait()
	if client.Broken() != nil {
		t.Fatalf("client poisoned by cancel races: %v", client.Broken())
	}
	if n, err := client.Len(); err != nil || n != 600 {
		t.Fatalf("Len after cancel storm = %d, %v", n, err)
	}
}

// TestAbandonAgainstLegacyServerPoisons pins the one case where abandoning
// is unsafe: against a v1 (Seq-0 FIFO) server, request/response pairing
// cannot be trusted after an abandon, so the next legacy response must
// poison the client instead of being misdelivered to the wrong caller.
func TestAbandonAgainstLegacyServerPoisons(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	release := make(chan struct{})
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		n := 0
		for {
			var req request
			if err := dec.Decode(&req); err != nil {
				return
			}
			n++
			if n == 1 {
				// Stall the first response until the caller has abandoned.
				<-release
			}
			// v1 shape: no Seq echoed.
			if err := enc.Encode(&response{N: n}); err != nil {
				return
			}
		}
	}()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cancel := make(chan struct{})
	close(cancel)
	if _, err := client.SearchShardCancel(cancel, nil, 5, core.SearchOptions{}); !errors.Is(err, ErrAbandoned) {
		t.Fatalf("cancelled call err = %v, want ErrAbandoned", err)
	}
	close(release)

	// The straggler Seq-0 response cannot be re-paired: the client must
	// poison itself rather than hand it to a later caller.
	deadline := time.Now().Add(5 * time.Second)
	for client.Broken() == nil {
		if time.Now().After(deadline) {
			t.Fatal("client accepted a legacy response after an abandon without poisoning")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Len(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("Len on poisoned client err = %v, want ErrClientBroken", err)
	}
}

// TestChaosWireRedialLoop runs a client workload against a server behind a
// hostile wire (seeded random delays and connection drops): calls may fail
// when the wire snaps, but a fresh dial always recovers, answers are never
// corrupted, and most of the workload lands.
func TestChaosWireRedialLoop(t *testing.T) {
	d := startChaosServer(t, ChaosOptions{Seed: 42, DelayRate: 0.15, Delay: 500 * time.Microsecond, DropRate: 0.04})

	iters := 40
	if os.Getenv("PPANNS_CHAOS") == "1" {
		iters = 400
	}
	var client *Client
	t.Cleanup(func() {
		if client != nil {
			client.Close()
		}
	})
	ok := 0
	for i := 0; i < iters; i++ {
		if client == nil || client.Broken() != nil {
			if client != nil {
				client.Close()
			}
			c, err := DialWith(d.addr, DialOptions{DialTimeout: 2 * time.Second})
			if err != nil {
				continue
			}
			client = c
		}
		n, err := client.Len()
		if err != nil {
			continue
		}
		if n != 600 {
			t.Fatalf("iter %d: wire chaos corrupted an answer: Len = %d, want 600", i, n)
		}
		ok++
	}
	if ok < iters/2 {
		t.Fatalf("only %d/%d calls landed; the redial loop is not recovering", ok, iters)
	}
}

type chaosWorld struct {
	addr string
}

// startChaosServer serves the standard test world behind a Chaos-wrapped
// listener.
func startChaosServer(t *testing.T, opts ChaosOptions) *chaosWorld {
	t.Helper()
	d := dataset.DeepLike(600, 10, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(Chaos(l, opts), srv)
	return &chaosWorld{addr: l.Addr().String()}
}
