package transport

import (
	"net"
	"strings"
	"sync"
	"testing"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
)

// startWorld spins up a server on a loopback listener and returns the
// pieces a client needs.
func startWorld(t *testing.T) (*core.DataOwner, *core.User, *dataset.Data, string) {
	t.Helper()
	d := dataset.DeepLike(600, 10, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.UserKey())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, srv)
	return owner, user, d, l.Addr().String()
}

func TestSearchOverTCP(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	gt := d.GroundTruth(5)
	var recall float64
	for i, q := range d.Queries {
		tok, err := user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatal(err)
		}
		recall += dataset.Recall(ids, gt[i])
	}
	recall /= float64(len(d.Queries))
	if recall < 0.8 {
		t.Fatalf("recall over TCP = %.3f", recall)
	}
}

func TestInsertDeleteLenOverTCP(t *testing.T) {
	owner, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	n, err := client.Len()
	if err != nil || n != 600 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	payload, err := owner.EncryptVector(d.Train[0])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Insert(payload)
	if err != nil || id != 600 {
		t.Fatalf("Insert = %d, %v", id, err)
	}
	if err := client.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(id); err == nil {
		t.Fatal("expected error for double delete")
	}
	// Search still works after churn.
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 0, core.SearchOptions{}); err == nil {
		t.Fatal("expected error for k=0 to propagate")
	}
	if _, err := client.Search(nil, 5, core.SearchOptions{}); err == nil {
		t.Fatal("expected error for nil token")
	}
	if _, err := client.Insert(nil); err == nil {
		t.Fatal("expected error for nil payload")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, user, d, addr := startWorld(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 5; i++ {
				tok, err := user.Query(d.Queries[i])
				if err != nil {
					errs <- err
					return
				}
				if _, err := client.Search(tok, 3, core.SearchOptions{RatioK: 4}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestInfoOverTCP(t *testing.T) {
	_, _, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	info, err := client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "hnsw" {
		t.Fatalf("Backend = %q, want hnsw", info.Backend)
	}
	if !info.DynamicInsert || !info.DynamicDelete {
		t.Fatalf("hnsw caps wrong: %+v", info)
	}
	if info.N != 600 || info.Dim != d.Dim {
		t.Fatalf("N/Dim = %d/%d, want 600/%d", info.N, info.Dim, d.Dim)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil || !strings.Contains(err.Error(), "dial") {
		t.Fatalf("expected dial error, got %v", err)
	}
}
