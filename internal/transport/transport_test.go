package transport

import (
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
)

// startWorld spins up a server on a loopback listener and returns the
// pieces a client needs.
func startWorld(t *testing.T) (*core.DataOwner, *core.User, *dataset.Data, string) {
	t.Helper()
	d := dataset.DeepLike(600, 10, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.UserKey())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, srv)
	return owner, user, d, l.Addr().String()
}

func TestSearchOverTCP(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	gt := d.GroundTruth(5)
	var recall float64
	for i, q := range d.Queries {
		tok, err := user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatal(err)
		}
		recall += dataset.Recall(ids, gt[i])
	}
	recall /= float64(len(d.Queries))
	if recall < 0.8 {
		t.Fatalf("recall over TCP = %.3f", recall)
	}
}

func TestInsertDeleteLenOverTCP(t *testing.T) {
	owner, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	n, err := client.Len()
	if err != nil || n != 600 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	payload, err := owner.EncryptVector(d.Train[0])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Insert(payload)
	if err != nil || id != 600 {
		t.Fatalf("Insert = %d, %v", id, err)
	}
	if err := client.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(id); err == nil {
		t.Fatal("expected error for double delete")
	}
	// Search still works after churn.
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 0, core.SearchOptions{}); err == nil {
		t.Fatal("expected error for k=0 to propagate")
	}
	if _, err := client.Search(nil, 5, core.SearchOptions{}); err == nil {
		t.Fatal("expected error for nil token")
	}
	if _, err := client.Insert(nil); err == nil {
		t.Fatal("expected error for nil payload")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, user, d, addr := startWorld(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 5; i++ {
				tok, err := user.Query(d.Queries[i])
				if err != nil {
					errs <- err
					return
				}
				if _, err := client.Search(tok, 3, core.SearchOptions{RatioK: 4}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestInfoOverTCP(t *testing.T) {
	_, _, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	info, err := client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "hnsw" {
		t.Fatalf("Backend = %q, want hnsw", info.Backend)
	}
	if !info.DynamicInsert || !info.DynamicDelete {
		t.Fatalf("hnsw caps wrong: %+v", info)
	}
	if info.N != 600 || info.Dim != d.Dim {
		t.Fatalf("N/Dim = %d/%d, want 600/%d", info.N, info.Dim, d.Dim)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil || !strings.Contains(err.Error(), "dial") {
		t.Fatalf("expected dial error, got %v", err)
	}
}

func batchTokens(t *testing.T, user *core.User, d *dataset.Data, n int) []*core.QueryToken {
	t.Helper()
	toks := make([]*core.QueryToken, n)
	for i := range toks {
		tok, err := user.Query(d.Queries[i%len(d.Queries)])
		if err != nil {
			t.Fatal(err)
		}
		toks[i] = tok
	}
	return toks
}

// TestSearchBatchSingleRoundTrip pins the batch op's whole point: a batch
// of m queries crosses the wire as one request envelope, not m. The test
// server counts envelopes while answering with the real protocol.
func TestSearchBatchSingleRoundTrip(t *testing.T) {
	d := dataset.DeepLike(600, 10, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.UserKey())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	var envelopes atomic.Int64
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for {
			var req request
			if err := dec.Decode(&req); err != nil {
				return
			}
			envelopes.Add(1)
			if req.Op != "searchbatch" {
				enc.Encode(&response{Err: "test server only answers searchbatch"})
				continue
			}
			toks := make([]*core.QueryToken, len(req.Tokens))
			for i, wt := range req.Tokens {
				toks[i] = wt.token()
			}
			results, errs := srv.SearchBatchErrs(toks, req.K, req.Opt, 0)
			resp := response{Batch: make([]wireResult, len(toks))}
			for i := range toks {
				if errs[i] != nil {
					resp.Batch[i].Err = errs[i].Error()
				} else {
					resp.Batch[i].IDs = results[i]
				}
			}
			if err := enc.Encode(&resp); err != nil {
				return
			}
		}
	}()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const m = 20
	toks := batchTokens(t, user, d, m)
	results, err := client.SearchBatch(toks, 5, core.SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != m {
		t.Fatalf("got %d results, want %d", len(results), m)
	}
	for i, ids := range results {
		if len(ids) != 5 {
			t.Fatalf("query %d returned %d ids", i, len(ids))
		}
	}
	if got := envelopes.Load(); got != 1 {
		t.Fatalf("batch of %d queries crossed the wire in %d envelopes, want 1", m, got)
	}
}

// TestSearchBatchPartialFailureOverTCP maps per-query server failures onto
// *core.BatchError exactly like the in-process SearchBatch: failed slots
// nil and listed, good slots intact.
func TestSearchBatchPartialFailureOverTCP(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	toks := batchTokens(t, user, d, 4)
	badTok, err := user.QueryFilterOnly(d.Queries[0]) // no trapdoor → DCE refine fails
	if err != nil {
		t.Fatal(err)
	}
	toks[2] = badTok

	results, err := client.SearchBatch(toks, 5, core.SearchOptions{RatioK: 8})
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *core.BatchError", err)
	}
	if len(be.Failed) != 1 || be.Failed[0].Query != 2 {
		t.Fatalf("failed = %+v, want exactly query 2", be.Failed)
	}
	if results[2] != nil {
		t.Fatalf("failed query kept results: %v", results[2])
	}
	for _, i := range []int{0, 1, 3} {
		if len(results[i]) != 5 {
			t.Fatalf("good query %d lost its results: %v", i, results[i])
		}
	}

	// The whole batch shares one stream message: per-query failures must
	// not poison the connection.
	if _, err := client.Len(); err != nil {
		t.Fatalf("connection unusable after partial batch failure: %v", err)
	}
}

func TestSearchBatchEmptyOverTCP(t *testing.T) {
	_, _, _, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results, err := client.SearchBatch(nil, 5, core.SearchOptions{})
	if err != nil || results != nil {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
}

// TestClientPoisonedAfterStreamError is the regression test for the
// desynced-gob-stream bug: after a garbled response the client must refuse
// further calls with ErrClientBroken instead of pairing requests with
// stale or misaligned responses.
func TestClientPoisonedAfterStreamError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Read the request bytes, answer with garbage, keep the conn open:
		// a crashed or misbehaving server mid-stream.
		buf := make([]byte, 4096)
		conn.Read(buf)
		conn.Write([]byte("this is not gob"))
		time.Sleep(10 * time.Second)
		conn.Close()
	}()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Len(); err == nil {
		t.Fatal("expected stream error from garbage response")
	}
	if client.Broken() == nil {
		t.Fatal("client did not record the stream error")
	}
	// Subsequent calls fail fast with the sentinel — no network I/O, no
	// misaligned decode.
	start := time.Now()
	if _, err := client.Len(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("err = %v, want ErrClientBroken", err)
	}
	if _, err := client.Search(nil, 1, core.SearchOptions{}); err == nil {
		t.Fatal("Search on poisoned client did not error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("poisoned client took %v to fail, want fast failure", elapsed)
	}
}

// TestApplicationErrorsDoNotPoison pins the poisoning boundary: an error
// the server answers inside the protocol leaves the stream healthy.
func TestApplicationErrorsDoNotPoison(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 0, core.SearchOptions{}); err == nil {
		t.Fatal("expected application error for k=0")
	}
	if client.Broken() != nil {
		t.Fatalf("application error poisoned the client: %v", client.Broken())
	}
	if _, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8}); err != nil {
		t.Fatalf("client unusable after application error: %v", err)
	}
}

// flakyListener injects transient Accept failures before delegating, the
// ECONNABORTED shape that used to kill Serve permanently.
type flakyListener struct {
	net.Listener
	failures atomic.Int64 // remaining injected failures
}

type tempError struct{}

func (tempError) Error() string   { return "accept: connection aborted (injected)" }
func (tempError) Timeout() bool   { return false }
func (tempError) Temporary() bool { return true }

func (fl *flakyListener) Accept() (net.Conn, error) {
	if fl.failures.Add(-1) >= 0 {
		return nil, tempError{}
	}
	return fl.Listener.Accept()
}

// TestServeSurvivesTransientAcceptErrors is the regression test for the
// accept-loop-death bug: transient Accept errors must not take the server
// down; closing the listener must still end Serve cleanly.
func TestServeSurvivesTransientAcceptErrors(t *testing.T) {
	d := dataset.DeepLike(300, 3, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: l}
	fl.failures.Store(3)

	done := make(chan error, 1)
	go func() { done <- Serve(fl, srv) }()

	// The loop must ride out the injected failures and still accept.
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if n, err := client.Len(); err != nil || n != 300 {
		t.Fatalf("Len after transient accept errors = %d, %v", n, err)
	}
	if fl.failures.Load() >= 0 {
		t.Fatal("listener never injected its failures")
	}

	l.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on listener close, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the listener closed")
	}
}

// TestSearchShardOverTCP exercises the Merge flag end to end: ids match a
// plain Search and the merge material arrives well-formed.
func TestSearchShardOverTCP(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := core.SearchOptions{RatioK: 8}
	want, err := client.Search(tok, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.SearchShard(tok, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(want) {
		t.Fatalf("SearchShard returned %d ids, Search %d", len(res.IDs), len(want))
	}
	for i := range want {
		if res.IDs[i] != want[i] {
			t.Fatalf("rank %d: SearchShard id %d, Search id %d", i, res.IDs[i], want[i])
		}
	}
	if len(res.Recs) != len(res.IDs) || res.CtDim <= 0 {
		t.Fatalf("merge material malformed: %d recs, ctDim %d", len(res.Recs), res.CtDim)
	}
	for i, rec := range res.Recs {
		if len(rec) != 4*res.CtDim {
			t.Fatalf("rec %d has %d floats, want %d", i, len(rec), 4*res.CtDim)
		}
	}
}
