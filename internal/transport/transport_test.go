package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
)

// startWorld spins up a server on a loopback listener and returns the
// pieces a client needs.
func startWorld(t *testing.T) (*core.DataOwner, *core.User, *dataset.Data, string) {
	t.Helper()
	d := dataset.DeepLike(600, 10, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.UserKey())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, srv)
	return owner, user, d, l.Addr().String()
}

func TestSearchOverTCP(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	gt := d.GroundTruth(5)
	var recall float64
	for i, q := range d.Queries {
		tok, err := user.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8})
		if err != nil {
			t.Fatal(err)
		}
		recall += dataset.Recall(ids, gt[i])
	}
	recall /= float64(len(d.Queries))
	if recall < 0.8 {
		t.Fatalf("recall over TCP = %.3f", recall)
	}
}

func TestInsertDeleteLenOverTCP(t *testing.T) {
	owner, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	n, err := client.Len()
	if err != nil || n != 600 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	payload, err := owner.EncryptVector(d.Train[0])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Insert(payload)
	if err != nil || id != 600 {
		t.Fatalf("Insert = %d, %v", id, err)
	}
	if err := client.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(id); err == nil {
		t.Fatal("expected error for double delete")
	}
	// Search still works after churn.
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 0, core.SearchOptions{}); err == nil {
		t.Fatal("expected error for k=0 to propagate")
	}
	if _, err := client.Search(nil, 5, core.SearchOptions{}); err == nil {
		t.Fatal("expected error for nil token")
	}
	if _, err := client.Insert(nil); err == nil {
		t.Fatal("expected error for nil payload")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, user, d, addr := startWorld(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 5; i++ {
				tok, err := user.Query(d.Queries[i])
				if err != nil {
					errs <- err
					return
				}
				if _, err := client.Search(tok, 3, core.SearchOptions{RatioK: 4}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestInfoOverTCP(t *testing.T) {
	_, _, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	info, err := client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "hnsw" {
		t.Fatalf("Backend = %q, want hnsw", info.Backend)
	}
	if !info.DynamicInsert || !info.DynamicDelete {
		t.Fatalf("hnsw caps wrong: %+v", info)
	}
	if info.N != 600 || info.Dim != d.Dim {
		t.Fatalf("N/Dim = %d/%d, want 600/%d", info.N, info.Dim, d.Dim)
	}
	if info.Proto < 4 || info.Memory == nil {
		t.Fatalf("proto %d server sent no memory breakdown: %+v", info.Proto, info)
	}
	if info.Memory.N != 600 || info.Memory.SAP <= 0 || info.Memory.DCE <= 0 {
		t.Fatalf("implausible memory breakdown: %+v", *info.Memory)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil || !strings.Contains(err.Error(), "dial") {
		t.Fatalf("expected dial error, got %v", err)
	}
}

func batchTokens(t *testing.T, user *core.User, d *dataset.Data, n int) []*core.QueryToken {
	t.Helper()
	toks := make([]*core.QueryToken, n)
	for i := range toks {
		tok, err := user.Query(d.Queries[i%len(d.Queries)])
		if err != nil {
			t.Fatal(err)
		}
		toks[i] = tok
	}
	return toks
}

// TestSearchBatchSingleRoundTrip pins the batch op's whole point: a batch
// of m queries crosses the wire as one request envelope, not m. The test
// server counts envelopes while answering with the real protocol.
func TestSearchBatchSingleRoundTrip(t *testing.T) {
	d := dataset.DeepLike(600, 10, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.UserKey())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	var envelopes atomic.Int64
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for {
			var req request
			if err := dec.Decode(&req); err != nil {
				return
			}
			envelopes.Add(1)
			if req.Op != "searchbatch" {
				enc.Encode(&response{Err: "test server only answers searchbatch"})
				continue
			}
			toks := make([]*core.QueryToken, len(req.Tokens))
			for i, wt := range req.Tokens {
				toks[i] = wt.token()
			}
			results, errs := srv.SearchBatchErrs(toks, req.K, req.Opt, 0)
			resp := response{Batch: make([]wireResult, len(toks))}
			for i := range toks {
				if errs[i] != nil {
					resp.Batch[i].Err = errs[i].Error()
				} else {
					resp.Batch[i].IDs = results[i]
				}
			}
			if err := enc.Encode(&resp); err != nil {
				return
			}
		}
	}()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const m = 20
	toks := batchTokens(t, user, d, m)
	results, err := client.SearchBatch(toks, 5, core.SearchOptions{RatioK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != m {
		t.Fatalf("got %d results, want %d", len(results), m)
	}
	for i, ids := range results {
		if len(ids) != 5 {
			t.Fatalf("query %d returned %d ids", i, len(ids))
		}
	}
	if got := envelopes.Load(); got != 1 {
		t.Fatalf("batch of %d queries crossed the wire in %d envelopes, want 1", m, got)
	}
}

// TestSearchBatchPartialFailureOverTCP maps per-query server failures onto
// *core.BatchError exactly like the in-process SearchBatch: failed slots
// nil and listed, good slots intact.
func TestSearchBatchPartialFailureOverTCP(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	toks := batchTokens(t, user, d, 4)
	badTok, err := user.QueryFilterOnly(d.Queries[0]) // no trapdoor → DCE refine fails
	if err != nil {
		t.Fatal(err)
	}
	toks[2] = badTok

	results, err := client.SearchBatch(toks, 5, core.SearchOptions{RatioK: 8})
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *core.BatchError", err)
	}
	if len(be.Failed) != 1 || be.Failed[0].Query != 2 {
		t.Fatalf("failed = %+v, want exactly query 2", be.Failed)
	}
	if results[2] != nil {
		t.Fatalf("failed query kept results: %v", results[2])
	}
	for _, i := range []int{0, 1, 3} {
		if len(results[i]) != 5 {
			t.Fatalf("good query %d lost its results: %v", i, results[i])
		}
	}

	// The whole batch shares one stream message: per-query failures must
	// not poison the connection.
	if _, err := client.Len(); err != nil {
		t.Fatalf("connection unusable after partial batch failure: %v", err)
	}
}

func TestSearchBatchEmptyOverTCP(t *testing.T) {
	_, _, _, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results, err := client.SearchBatch(nil, 5, core.SearchOptions{})
	if err != nil || results != nil {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
}

// TestClientPoisonedAfterStreamError is the regression test for the
// desynced-gob-stream bug: after a garbled response the client must refuse
// further calls with ErrClientBroken instead of pairing requests with
// stale or misaligned responses.
func TestClientPoisonedAfterStreamError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Read the request bytes, answer with garbage, keep the conn open:
		// a crashed or misbehaving server mid-stream.
		buf := make([]byte, 4096)
		conn.Read(buf)
		conn.Write([]byte("this is not gob"))
		time.Sleep(10 * time.Second)
		conn.Close()
	}()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Len(); err == nil {
		t.Fatal("expected stream error from garbage response")
	}
	if client.Broken() == nil {
		t.Fatal("client did not record the stream error")
	}
	// Subsequent calls fail fast with the sentinel — no network I/O, no
	// misaligned decode.
	start := time.Now()
	if _, err := client.Len(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("err = %v, want ErrClientBroken", err)
	}
	if _, err := client.Search(nil, 1, core.SearchOptions{}); err == nil {
		t.Fatal("Search on poisoned client did not error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("poisoned client took %v to fail, want fast failure", elapsed)
	}
}

// TestApplicationErrorsDoNotPoison pins the poisoning boundary: an error
// the server answers inside the protocol leaves the stream healthy.
func TestApplicationErrorsDoNotPoison(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(tok, 0, core.SearchOptions{}); err == nil {
		t.Fatal("expected application error for k=0")
	}
	if client.Broken() != nil {
		t.Fatalf("application error poisoned the client: %v", client.Broken())
	}
	if _, err := client.Search(tok, 5, core.SearchOptions{RatioK: 8}); err != nil {
		t.Fatalf("client unusable after application error: %v", err)
	}
}

// flakyListener injects transient Accept failures before delegating, the
// ECONNABORTED shape that used to kill Serve permanently.
type flakyListener struct {
	net.Listener
	failures atomic.Int64 // remaining injected failures
}

type tempError struct{}

func (tempError) Error() string   { return "accept: connection aborted (injected)" }
func (tempError) Timeout() bool   { return false }
func (tempError) Temporary() bool { return true }

func (fl *flakyListener) Accept() (net.Conn, error) {
	if fl.failures.Add(-1) >= 0 {
		return nil, tempError{}
	}
	return fl.Listener.Accept()
}

// TestServeSurvivesTransientAcceptErrors is the regression test for the
// accept-loop-death bug: transient Accept errors must not take the server
// down; closing the listener must still end Serve cleanly.
func TestServeSurvivesTransientAcceptErrors(t *testing.T) {
	d := dataset.DeepLike(300, 3, 5)
	owner, err := core.NewDataOwner(core.Params{Dim: d.Dim, Beta: 0.05, M: 12, EfConstruction: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	edb, err := owner.EncryptDatabase(d.Train)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(edb)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: l}
	fl.failures.Store(3)

	done := make(chan error, 1)
	go func() { done <- Serve(fl, srv) }()

	// The loop must ride out the injected failures and still accept.
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if n, err := client.Len(); err != nil || n != 300 {
		t.Fatalf("Len after transient accept errors = %d, %v", n, err)
	}
	if fl.failures.Load() >= 0 {
		t.Fatal("listener never injected its failures")
	}

	l.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on listener close, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the listener closed")
	}
}

// TestSearchShardOverTCP exercises the Merge flag end to end: ids match a
// plain Search and the merge material arrives well-formed.
func TestSearchShardOverTCP(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	tok, err := user.Query(d.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := core.SearchOptions{RatioK: 8}
	want, err := client.Search(tok, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.SearchShard(tok, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(want) {
		t.Fatalf("SearchShard returned %d ids, Search %d", len(res.IDs), len(want))
	}
	for i := range want {
		if res.IDs[i] != want[i] {
			t.Fatalf("rank %d: SearchShard id %d, Search id %d", i, res.IDs[i], want[i])
		}
	}
	if len(res.Recs) != len(res.IDs) || res.CtDim <= 0 {
		t.Fatalf("merge material malformed: %d recs, ctDim %d", len(res.Recs), res.CtDim)
	}
	for i, rec := range res.Recs {
		if len(rec) != 4*res.CtDim {
			t.Fatalf("rec %d has %d floats, want %d", i, len(rec), 4*res.CtDim)
		}
	}
}

// TestPipelinedConcurrentCalls exercises protocol v2's whole point: many
// goroutines share one connection, their requests pipeline, and the demux
// routes every (possibly out-of-order) response to the right caller — the
// answers must match a sequential baseline exactly.
func TestPipelinedConcurrentCalls(t *testing.T) {
	_, user, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	toks := batchTokens(t, user, d, 8)
	opt := core.SearchOptions{RatioK: 8}
	want := make([][]int, len(toks))
	for i, tok := range toks {
		if want[i], err = client.Search(tok, 5, opt); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				qi := (w + rep) % len(toks)
				ids, err := client.Search(toks[qi], 5, opt)
				if err != nil {
					errs <- err
					return
				}
				for i := range ids {
					if ids[i] != want[qi][i] {
						errs <- fmt.Errorf("worker %d query %d rank %d: id %d, want %d (response misrouted?)", w, qi, i, ids[i], want[qi][i])
						return
					}
				}
				if n, err := client.Len(); err != nil || n != 600 {
					errs <- fmt.Errorf("worker %d: Len = %d, %v", w, n, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if client.Broken() != nil {
		t.Fatalf("pipelined load poisoned the client: %v", client.Broken())
	}
}

// TestLegacyServerFIFOFallback pins the v1 compatibility story: a lockstep
// server that echoes no Seq answers in request order, and the client's
// FIFO fallback must pair every pipelined caller with a distinct response
// — responses are made distinguishable by a server-side counter.
func TestLegacyServerFIFOFallback(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		n := 0
		for {
			var req request
			if err := dec.Decode(&req); err != nil {
				return
			}
			n++
			// v1 shape: no Seq echoed, strictly in request order.
			if err := enc.Encode(&response{N: n}); err != nil {
				return
			}
		}
	}()

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const calls = 10
	got := make([]int, calls)
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := client.Len()
			if err != nil {
				errs <- err
				return
			}
			got[i] = n
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[int]bool, calls)
	for i, n := range got {
		if n < 1 || n > calls || seen[n] {
			t.Fatalf("caller %d got response %d; FIFO fallback misrouted (all: %v)", i, n, got)
		}
		seen[n] = true
	}
}

// TestCallTimeoutOnStalledServer covers the deadline satellite: a server
// that accepts and then never answers must fail the call within the
// configured deadline and poison the client — not hang it forever.
func TestCallTimeoutOnStalledServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1<<16)
		conn.Read(buf) // swallow the request, answer nothing
		<-stop
	}()

	client, err := DialWith(l.Addr().String(), DialOptions{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	if _, err := client.Len(); err == nil {
		t.Fatal("expected timeout error from stalled server")
	} else if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timed-out call took %v", elapsed)
	}
	if client.Broken() == nil {
		t.Fatal("timeout did not poison the client")
	}
	if _, err := client.Len(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("call after timeout: err = %v, want ErrClientBroken", err)
	}
}

// TestReadTimeoutOnSilentServer is the stream-level flavor: with a read
// deadline configured and a call pending, prolonged silence must poison
// the stream and fail the pending call even without a per-call timeout.
func TestReadTimeoutOnSilentServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1<<16)
		conn.Read(buf)
		<-stop
	}()

	client, err := DialWith(l.Addr().String(), DialOptions{ReadTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	if _, err := client.Len(); err == nil {
		t.Fatal("expected read-deadline error from silent server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline expiry took %v", elapsed)
	}
	if client.Broken() == nil {
		t.Fatal("read deadline did not poison the client")
	}
}

// TestLiveCountsOverTCP covers the tombstone-count satellite: Live and
// Info must separate live records from tombstones while Len keeps
// counting both.
func TestLiveCountsOverTCP(t *testing.T) {
	owner, _, d, addr := startWorld(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	payload, err := owner.EncryptVector(d.Train[0])
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Insert(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(3); err != nil {
		t.Fatal(err)
	}

	n, err := client.Len()
	if err != nil || n != 601 {
		t.Fatalf("Len = %d, %v, want 601", n, err)
	}
	live, err := client.Live()
	if err != nil || live != 599 {
		t.Fatalf("Live = %d, %v, want 599", live, err)
	}
	info, err := client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 601 || info.Live != 599 {
		t.Fatalf("Info counts N=%d Live=%d, want 601/599", info.N, info.Live)
	}
}
