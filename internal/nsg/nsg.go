// Package nsg implements a navigating spreading-out graph in the style of
// Fu et al. (the paper's reference [9]) — the alternative proximity graph
// Section V-A says can replace HNSW under the privacy-preserving index.
//
// Construction follows the NSG recipe: an approximate kNN graph seeds the
// candidate pools, edges are selected with the MRNG occlusion rule from a
// navigating node (the medoid), and a spanning traversal guarantees every
// vertex stays reachable. Search is a beam walk from the navigating node.
// The graph is static (NSG is a batch-built index); deletions tombstone
// vertices and searches skip them.
package nsg

import (
	"fmt"
	"runtime"
	"sync"

	"ppanns/internal/epochset"
	"ppanns/internal/hnsw"
	"ppanns/internal/resultheap"
	"ppanns/internal/vec"
)

// Config parameterizes construction.
type Config struct {
	// R is the maximum out-degree (default 24).
	R int
	// L is the candidate pool size per node during construction
	// (default 64).
	L int
	// KNN is the neighbor count of the seeding kNN graph (default 32).
	KNN int
	// Seed drives the auxiliary kNN construction.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.R <= 0 {
		c.R = 32
	}
	if c.L <= 0 {
		c.L = 128
	}
	if c.KNN <= 0 {
		c.KNN = 48
	}
	return c
}

// Graph is a built NSG index.
type Graph struct {
	cfg  Config
	dim  int
	data *vec.Dataset
	adj  [][]int32
	nav  int // navigating node (medoid)

	// flatOffs/flatNbrs are the CSR view of adj: node id's neighbors are
	// flatNbrs[flatOffs[id]:flatOffs[id+1]]. NSG adjacency is immutable
	// after Build, so the view is built eagerly (no generation tracking)
	// and shared by clones; the beam search walks it with one blocked
	// distance call per hop instead of chasing per-node slice headers.
	// noFlat pins searches to the slice-of-slices path (conformance tests
	// compare the two).
	flatOffs []int32
	flatNbrs []int32
	noFlat   bool

	mu      sync.RWMutex
	deleted []bool
	live    int

	ctxPool sync.Pool
}

// flatten builds the CSR adjacency view. Called once construction (or
// deserialization) has finalized adj.
func (g *Graph) flatten() {
	g.flatOffs, g.flatNbrs = vec.FlattenCSR(g.adj)
}

// Build constructs the graph over the given vectors.
func Build(vectors [][]float64, cfg Config) (*Graph, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("nsg: empty data")
	}
	cfg = cfg.withDefaults()
	n := len(vectors)
	dim := len(vectors[0])

	// Step 1: approximate kNN pools via an auxiliary HNSW.
	aux, err := hnsw.New(hnsw.Config{Dim: dim, M: 16, EfConstruction: 2 * cfg.L, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	for _, v := range vectors {
		aux.Add(v)
	}

	g := &Graph{
		cfg:     cfg,
		dim:     dim,
		data:    vec.NewDataset(dim, n),
		adj:     make([][]int32, n),
		deleted: make([]bool, n),
		live:    n,
	}
	for _, v := range vectors {
		g.data.Append(v)
	}
	g.nav = medoid(vectors)

	// Step 2: per-node candidate pools + MRNG pruning (parallel).
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				pool := aux.Search(vectors[i], cfg.L, 2*cfg.L)
				cands := pool[:0]
				for _, it := range pool {
					if it.ID != i {
						cands = append(cands, it)
					}
				}
				g.adj[i] = g.occlusionPrune(vectors[i], cands, cfg.R)
			}
		}(w)
	}
	wg.Wait()

	// Step 3: NSG refinement — rebuild every node's pool from the set of
	// nodes *visited* while searching the current graph from the
	// navigating node (this is what plants the long-range edges the MRNG
	// rule then thins), merged with the kNN pool, and re-prune. A second
	// pass runs over the improved graph, whose longer edges widen the
	// visited pools further.
	g.refineFromNavigator(vectors, aux)
	g.insertReverseEdges()
	g.refineFromNavigator(vectors, aux)

	// Step 4: reverse-edge insertion — for every selected edge (u, v) try
	// to add (v, u), re-pruning v's list with the occlusion rule when it
	// overflows. This is what makes the spread-out graph navigable in both
	// directions.
	g.insertReverseEdges()

	// Step 5: connectivity — span unreachable vertices from the
	// navigating node by attaching them to their nearest reached vertex.
	g.ensureReachable()
	g.flatten()
	return g, nil
}

// refineFromNavigator replaces each node's adjacency with an occlusion-
// pruned selection over {nodes visited during a beam search nav→v} ∪
// {the kNN pool}, following the NSG construction.
func (g *Graph) refineFromNavigator(vectors [][]float64, aux *hnsw.Graph) {
	n := len(vectors)
	frozen := make([][]int32, n)
	for i, lst := range g.adj {
		frozen[i] = append([]int32(nil), lst...)
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			visited := make([]bool, n)
			for i := w; i < n; i += workers {
				pool := g.collectVisited(frozen, vectors[i], visited)
				// Merge the kNN pool (closest candidates) back in.
				for _, it := range aux.Search(vectors[i], g.cfg.KNN, g.cfg.L) {
					if !visited[it.ID] {
						visited[it.ID] = true
						pool = append(pool, it)
					}
				}
				for _, it := range pool {
					visited[it.ID] = false
				}
				filtered := pool[:0]
				for _, it := range pool {
					if it.ID != i {
						filtered = append(filtered, it)
					}
				}
				sortItems(filtered)
				g.adj[i] = g.occlusionPrune(vectors[i], filtered, g.cfg.R)
			}
		}(w)
	}
	wg.Wait()
}

// collectVisited beam-searches the frozen graph from the navigating node
// towards q and returns every node whose distance was evaluated. The
// visited scratch must be all-false on entry and is reset via the returned
// pool by the caller.
func (g *Graph) collectVisited(frozen [][]int32, q []float64, visited []bool) []resultheap.Item {
	var pool []resultheap.Item
	cand := resultheap.NewMinDistHeap(g.cfg.L + 1)
	res := resultheap.NewMaxDistHeap(g.cfg.L + 1)
	mark := func(id int, d float64) {
		visited[id] = true
		pool = append(pool, resultheap.Item{ID: id, Dist: d})
	}
	d0 := vec.SqDist(q, g.data.At(g.nav))
	mark(g.nav, d0)
	cand.Push(g.nav, d0)
	res.Push(g.nav, d0)
	for cand.Len() > 0 {
		c := cand.Pop()
		if res.Len() >= g.cfg.L && c.Dist > res.Top().Dist {
			break
		}
		for _, nb := range frozen[c.ID] {
			id := int(nb)
			if visited[id] {
				continue
			}
			d := vec.SqDist(q, g.data.At(id))
			mark(id, d)
			if res.Len() < g.cfg.L || d < res.Top().Dist {
				cand.Push(id, d)
				res.Push(id, d)
				if res.Len() > g.cfg.L {
					res.Pop()
				}
			}
		}
	}
	return pool
}

// insertReverseEdges adds v→u for every u→v, occlusion-pruning overflowing
// lists back down to R.
func (g *Graph) insertReverseEdges() {
	n := len(g.adj)
	incoming := make([][]int32, n)
	for u, lst := range g.adj {
		for _, v := range lst {
			incoming[v] = append(incoming[v], int32(u))
		}
	}
	for v := 0; v < n; v++ {
		if len(incoming[v]) == 0 {
			continue
		}
		present := make(map[int32]bool, len(g.adj[v]))
		for _, nb := range g.adj[v] {
			present[nb] = true
		}
		changed := false
		for _, u := range incoming[v] {
			if int(u) != v && !present[u] {
				g.adj[v] = append(g.adj[v], u)
				present[u] = true
				changed = true
			}
		}
		if !changed || len(g.adj[v]) <= g.cfg.R {
			continue
		}
		// Re-prune with the occlusion rule over the merged list.
		base := g.data.At(v)
		items := make([]resultheap.Item, 0, len(g.adj[v]))
		for _, nb := range g.adj[v] {
			items = append(items, resultheap.Item{ID: int(nb), Dist: vec.SqDist(base, g.data.At(int(nb)))})
		}
		sortItems(items)
		g.adj[v] = g.occlusionPrune(base, items, g.cfg.R)
	}
}

// sortItems sorts ascending by distance (insertion sort; lists are short).
func sortItems(items []resultheap.Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].Dist < items[j-1].Dist; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

// medoid returns the index of the vector closest to the mean.
func medoid(vectors [][]float64) int {
	dim := len(vectors[0])
	mean := make([]float64, dim)
	for _, v := range vectors {
		vec.Add(mean, mean, v)
	}
	vec.Scale(mean, 1/float64(len(vectors)), mean)
	best, bestD := 0, vec.SqDist(vectors[0], mean)
	for i := 1; i < len(vectors); i++ {
		if d := vec.SqDist(vectors[i], mean); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// occlusionPrune applies the MRNG edge rule: candidate c (ascending by
// distance) is kept iff no already-kept edge r satisfies
// dist(c, r) < dist(c, base).
func (g *Graph) occlusionPrune(base []float64, cands []resultheap.Item, r int) []int32 {
	out := make([]int32, 0, r)
	for _, c := range cands {
		if len(out) >= r {
			break
		}
		cv := g.data.At(c.ID)
		keep := true
		for _, sel := range out {
			if vec.SqDist(cv, g.data.At(int(sel))) < c.Dist {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, int32(c.ID))
		}
	}
	return out
}

// ensureReachable BFSes from the navigating node, then attaches each
// unreached vertex to its nearest reached neighbor (bidirectionally).
func (g *Graph) ensureReachable() {
	n := len(g.adj)
	reached := make([]bool, n)
	queue := []int{g.nav}
	reached[g.nav] = true
	var order []int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		for _, nb := range g.adj[cur] {
			if !reached[nb] {
				reached[nb] = true
				queue = append(queue, int(nb))
			}
		}
	}
	for i := 0; i < n; i++ {
		if reached[i] {
			continue
		}
		// Attach to the closest vertex in BFS order (sampled for speed on
		// large graphs).
		v := g.data.At(i)
		best, bestD := g.nav, vec.SqDist(v, g.data.At(g.nav))
		step := len(order)/512 + 1
		for j := 0; j < len(order); j += step {
			if d := vec.SqDist(v, g.data.At(order[j])); d < bestD {
				best, bestD = order[j], d
			}
		}
		g.adj[best] = append(g.adj[best], int32(i))
		g.adj[i] = append(g.adj[i], int32(best))
		reached[i] = true
		order = append(order, i)
	}
}

// Len returns the number of live vectors.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.live
}

// Dim returns the vector dimension.
func (g *Graph) Dim() int { return g.dim }

// Config returns the build configuration (with defaults applied), so
// callers can rebuild a graph over a new vector set with the same
// parameters.
func (g *Graph) Config() Config { return g.cfg }

// Vector returns the stored vector for id (also valid for deleted ids,
// whose rows remain as tombstones), or nil for out-of-range ids.
func (g *Graph) Vector(id int) []float64 {
	if id < 0 || id >= g.data.Len() {
		return nil
	}
	return g.data.At(id)
}

// NavigatingNode returns the entry vertex id.
func (g *Graph) NavigatingNode() int { return g.nav }

// Clone returns an independent copy of the graph. NSG is batch-built: the
// vectors and adjacency never change after Build, so the clone shares them
// and only copies the mutable tombstone state — deleting on either graph
// is invisible to the other.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return &Graph{
		cfg:      g.cfg,
		dim:      g.dim,
		data:     g.data,
		adj:      g.adj,
		nav:      g.nav,
		flatOffs: g.flatOffs,
		flatNbrs: g.flatNbrs,
		deleted:  append([]bool(nil), g.deleted...),
		live:     g.live,
	}
}

// Delete tombstones an id; searches route through it but never return it.
func (g *Graph) Delete(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.deleted) {
		return fmt.Errorf("nsg: delete of unknown id %d", id)
	}
	if g.deleted[id] {
		return fmt.Errorf("nsg: id %d already deleted", id)
	}
	g.deleted[id] = true
	g.live--
	return nil
}

// searchCtx is the pooled per-search working set: the visited set, both
// beam heaps, the gathered-neighbor buffer with its blocked-kernel
// output, and the drained result slice. A warm search allocates nothing.
type searchCtx struct {
	vis    epochset.Set
	cand   *resultheap.MinDistHeap
	res    *resultheap.MaxDistHeap
	gather []int32
	dists  []float64
	items  []resultheap.Item
}

// Search returns the (approximately) k closest live ids, closest first,
// using beam width ef.
func (g *Graph) Search(q []float64, k, ef int) []resultheap.Item {
	return g.SearchInto(nil, q, k, ef)
}

// SearchInto is Search appending into dst (reusing its capacity). With a
// recycled dst a warm search is allocation-free: all scratch state is
// pooled, and the beam walks the CSR adjacency view with one blocked
// distance call per hop.
func (g *Graph) SearchInto(dst []resultheap.Item, q []float64, k, ef int) []resultheap.Item {
	return g.searchInto(dst, q, k, ef, nil)
}

// SearchIntoDist is SearchInto with every candidate distance supplied by sc
// instead of computed from the stored vectors — the compressed (PQ) filter
// path. Ids passed to sc are vector positions (NSG ids are positions).
func (g *Graph) SearchIntoDist(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item {
	return g.searchInto(dst, q, k, ef, sc)
}

func (g *Graph) searchInto(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item {
	if len(q) != g.dim {
		panic(fmt.Sprintf("nsg: querying %d-dim vector in %d-dim graph", len(q), g.dim))
	}
	if ef < k {
		ef = k
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.live == 0 {
		return dst[:0]
	}

	ctx, _ := g.ctxPool.Get().(*searchCtx)
	if ctx == nil {
		ctx = &searchCtx{
			cand: resultheap.NewMinDistHeap(ef + 1),
			res:  resultheap.NewMaxDistHeap(ef + 1),
		}
	}
	ctx.vis.Grow(len(g.adj))
	ctx.vis.Next()
	defer g.ctxPool.Put(ctx)

	flat := g.flatOffs != nil && !g.noFlat
	cand, res := ctx.cand, ctx.res
	cand.Reset()
	res.Reset()
	var d0 float64
	if sc != nil {
		d0 = sc.Dist(int32(g.nav))
	} else {
		d0 = vec.SqDist(q, g.data.At(g.nav))
	}
	ctx.vis.Seen(g.nav)
	cand.Push(g.nav, d0)
	if !g.deleted[g.nav] {
		res.Push(g.nav, d0)
	}
	gather := ctx.gather
	for cand.Len() > 0 {
		c := cand.Pop()
		if res.Len() >= ef && c.Dist > res.Top().Dist {
			break
		}
		var nbrs []int32
		if flat {
			nbrs = g.flatNbrs[g.flatOffs[c.ID]:g.flatOffs[c.ID+1]]
		} else {
			nbrs = g.adj[c.ID]
		}
		gather = gather[:0]
		for _, nb := range nbrs {
			if !ctx.vis.Seen(int(nb)) {
				gather = append(gather, nb)
			}
		}
		if sc != nil {
			if cap(ctx.dists) < len(gather) {
				ctx.dists = make([]float64, len(gather))
			} else {
				ctx.dists = ctx.dists[:len(gather)]
			}
			sc.DistBlock(ctx.dists, gather)
		} else {
			ctx.dists = g.data.SqDistBlock(ctx.dists, q, gather)
		}
		dists := ctx.dists
		for j, nb := range gather {
			id := int(nb)
			d := dists[j]
			if res.Len() < ef || d < res.Top().Dist {
				cand.Push(id, d)
				if !g.deleted[id] {
					res.PushBounded(id, d, ef)
				}
			}
		}
	}
	ctx.gather = gather
	ctx.items = res.SortedInto(ctx.items)
	items := ctx.items
	if len(items) > k {
		items = items[:k]
	}
	return append(dst[:0], items...)
}

// Stats describes the graph shape.
type Stats struct {
	Nodes     int
	Deleted   int
	Edges     int
	AvgDegree float64
}

// Stats computes degree statistics.
func (g *Graph) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st := Stats{Nodes: g.live}
	for i, lst := range g.adj {
		if g.deleted[i] {
			st.Deleted++
			continue
		}
		st.Edges += len(lst)
	}
	if st.Nodes > 0 {
		st.AvgDegree = float64(st.Edges) / float64(st.Nodes)
	}
	return st
}
