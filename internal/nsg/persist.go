package nsg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ppanns/internal/vec"
)

// Binary graph format: magic, build parameters, dim/n/nav/live header, the
// flat vector store, tombstone bytes, then one length-prefixed adjacency
// list per vertex. All integers are little-endian.

const persistMagic = "NSGGO001"

// Save writes the graph in the binary format. It takes the read lock so
// the snapshot is consistent.
func (g *Graph) Save(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("nsg: writing magic: %w", err)
	}
	n := len(g.adj)
	head := []int64{
		int64(g.cfg.R), int64(g.cfg.L), int64(g.cfg.KNN), int64(g.cfg.Seed),
		int64(g.dim), int64(n), int64(g.nav), int64(g.live),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("nsg: writing header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.data.Raw()); err != nil {
		return fmt.Errorf("nsg: writing vectors: %w", err)
	}
	for _, d := range g.deleted {
		b := byte(0)
		if d {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	for _, lst := range g.adj {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(lst))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, lst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a graph previously written by Save.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nsg: reading magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("nsg: bad magic %q", magic)
	}
	head := make([]int64, 8)
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("nsg: reading header: %w", err)
		}
	}
	cfg := Config{R: int(head[0]), L: int(head[1]), KNN: int(head[2]), Seed: uint64(head[3])}
	dim, n, nav, live := int(head[4]), int(head[5]), int(head[6]), int(head[7])
	if dim <= 0 || n <= 0 || nav < 0 || nav >= n || live < 0 || live > n {
		return nil, fmt.Errorf("nsg: implausible header dim=%d n=%d nav=%d live=%d", dim, n, nav, live)
	}
	g := &Graph{
		cfg:     cfg,
		dim:     dim,
		adj:     make([][]int32, n),
		nav:     nav,
		deleted: make([]bool, n),
		live:    live,
	}
	raw := make([]float64, n*dim)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("nsg: reading vectors: %w", err)
	}
	ds, err := vec.DatasetFromRaw(dim, raw)
	if err != nil {
		return nil, err
	}
	g.data = ds
	for i := range g.deleted {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("nsg: reading tombstones: %w", err)
		}
		g.deleted[i] = b != 0
	}
	for i := range g.adj {
		var cnt int32
		if err := binary.Read(br, binary.LittleEndian, &cnt); err != nil {
			return nil, fmt.Errorf("nsg: reading adjacency of %d: %w", i, err)
		}
		if cnt < 0 || int(cnt) > n {
			return nil, fmt.Errorf("nsg: vertex %d has %d neighbors", i, cnt)
		}
		lst := make([]int32, cnt)
		if err := binary.Read(br, binary.LittleEndian, lst); err != nil {
			return nil, err
		}
		for _, nb := range lst {
			if nb < 0 || int(nb) >= n {
				return nil, fmt.Errorf("nsg: vertex %d references out-of-range id %d", i, nb)
			}
		}
		g.adj[i] = lst
	}
	g.flatten()
	return g, nil
}
