//go:build !race

package nsg

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are meaningless under it.
const raceEnabled = false
