package nsg

import (
	"testing"

	"ppanns/internal/dataset"
	"ppanns/internal/resultheap"
)

func buildGraph(t *testing.T, n int) (*Graph, *dataset.Data) {
	t.Helper()
	d := dataset.DeepLike(n, 20, 41)
	g, err := Build(d.Train, Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

func TestValidation(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestRecall(t *testing.T) {
	g, d := buildGraph(t, 3000)
	gt := d.GroundTruth(10)
	var recall float64
	for qi, q := range d.Queries {
		items := g.Search(q, 10, 100)
		ids := make([]int, len(items))
		for i, it := range items {
			ids[i] = it.ID
		}
		recall += dataset.Recall(ids, gt[qi])
	}
	recall /= float64(len(d.Queries))
	if recall < 0.9 {
		t.Fatalf("NSG recall = %.3f, want ≥ 0.9", recall)
	}
}

func TestEveryVertexReachable(t *testing.T) {
	g, _ := buildGraph(t, 1200)
	reached := make([]bool, len(g.adj))
	queue := []int{g.NavigatingNode()}
	reached[g.nav] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if !reached[nb] {
				reached[nb] = true
				count++
				queue = append(queue, int(nb))
			}
		}
	}
	if count != len(g.adj) {
		t.Fatalf("only %d/%d vertices reachable from the navigating node", count, len(g.adj))
	}
}

func TestDegreeBounded(t *testing.T) {
	g, _ := buildGraph(t, 1000)
	st := g.Stats()
	if st.AvgDegree <= 1 {
		t.Fatalf("implausible average degree %f", st.AvgDegree)
	}
	// Connectivity repair may push a few vertices slightly over R; the
	// bulk must respect the bound.
	over := 0
	for _, lst := range g.adj {
		if len(lst) > g.cfg.R+4 {
			over++
		}
	}
	if over > len(g.adj)/50 {
		t.Fatalf("%d vertices far exceed the degree bound R=%d", over, g.cfg.R)
	}
}

func TestSelfQuery(t *testing.T) {
	g, d := buildGraph(t, 800)
	hits := 0
	for i := 0; i < 100; i++ {
		items := g.Search(d.Train[i], 1, 50)
		if len(items) == 1 && items[0].ID == i {
			hits++
		}
	}
	if hits < 95 {
		t.Fatalf("self-query hit rate %d/100", hits)
	}
}

func TestDelete(t *testing.T) {
	g, d := buildGraph(t, 600)
	items := g.Search(d.Queries[0], 5, 50)
	victim := items[0].ID
	if err := g.Delete(victim); err != nil {
		t.Fatal(err)
	}
	for _, it := range g.Search(d.Queries[0], 5, 50) {
		if it.ID == victim {
			t.Fatal("deleted id still returned")
		}
	}
	if err := g.Delete(victim); err == nil {
		t.Fatal("expected error for double delete")
	}
	if err := g.Delete(-1); err == nil {
		t.Fatal("expected error for unknown id")
	}
	if g.Len() != 599 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestResultsSorted(t *testing.T) {
	g, d := buildGraph(t, 500)
	items := g.Search(d.Queries[1], 10, 60)
	for i := 1; i < len(items); i++ {
		if items[i].Dist < items[i-1].Dist {
			t.Fatal("results not sorted ascending")
		}
	}
}

func TestDimMismatchPanics(t *testing.T) {
	g, _ := buildGraph(t, 200)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Search(make([]float64, 3), 1, 10)
}

// TestFlatSearchMatchesSliceAdjacency is the CSR conformance test: the
// flattened adjacency walk must return the exact same ids, order and
// distances as the slice-of-slices path it replaced.
func TestFlatSearchMatchesSliceAdjacency(t *testing.T) {
	g, d := buildGraph(t, 800)
	if g.flatOffs == nil {
		t.Fatal("Build did not flatten the adjacency")
	}
	for _, id := range []int{5, 100, 731} {
		if err := g.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for qi, q := range d.Queries {
		g.noFlat = true
		slices := g.Search(q, 10, 50)
		g.noFlat = false
		flat := g.Search(q, 10, 50)
		if len(flat) != len(slices) {
			t.Fatalf("query %d: flat %d items, slices %d", qi, len(flat), len(slices))
		}
		for i := range flat {
			if flat[i] != slices[i] {
				t.Fatalf("query %d pos %d: flat (%d, %v) != slices (%d, %v)",
					qi, i, flat[i].ID, flat[i].Dist, slices[i].ID, slices[i].Dist)
			}
		}
	}
}

// TestSearchIntoReusesCapacity guards the pooled hot path: a warm
// SearchInto with a recycled dst must not allocate.
func TestSearchIntoReusesCapacity(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	g, d := buildGraph(t, 500)
	var dst []resultheap.Item
	dst = g.SearchInto(dst, d.Queries[0], 10, 50) // warm pools + dst
	allocs := testing.AllocsPerRun(20, func() {
		dst = g.SearchInto(dst[:0], d.Queries[1%len(d.Queries)], 10, 50)
	})
	if allocs > 1 { // tolerate one pool refill if GC lands mid-run
		t.Fatalf("warm SearchInto allocates %.1f times per run", allocs)
	}
}
