// Package index defines the pluggable secure filter-index abstraction of
// the PP-ANNS scheme. Section V-A of the paper notes the privacy-preserving
// index is not married to HNSW: any proximity structure built over the
// DCPE/SAP ciphertexts can serve the filter phase, trading recall, build
// cost, and update support differently. This package turns that observation
// into an interface plus a name-keyed registry so `core` (and everything
// above it — serialization, transport, CLI, benchmarks) selects a backend
// by name instead of hard-wiring a concrete graph type.
//
// Four backends register themselves in this package:
//
//	hnsw — hierarchical proximity graph; fully dynamic (default)
//	nsg  — navigating spreading-out graph; batch-built, delete-only
//	ivf  — IVF-Flat inverted file; dynamic
//	lsh  — E2LSH multi-probe hashing; dynamic
//
// External ids are vector positions: every backend assigns ids 0..n-1 in
// build order and sequentially from Len() on Add, so callers can index
// parallel ciphertext arrays directly with the ids a Search returns.
package index

import (
	"errors"
	"fmt"
	"io"

	"ppanns/internal/resultheap"
	"ppanns/internal/vec"
)

// ErrNotSupported is wrapped by backends rejecting an operation their
// structure cannot perform (e.g. inserting into a batch-built NSG).
var ErrNotSupported = errors.New("index: operation not supported by backend")

// Caps reports what a backend can do beyond build-and-search, so callers
// can gate updates instead of discovering failures at mutation time.
type Caps struct {
	// Name is the registry name of the backend.
	Name string
	// DynamicInsert reports whether Add works after the initial build.
	DynamicInsert bool
	// DynamicDelete reports whether Delete (tombstoning) works.
	DynamicDelete bool
}

// SecureIndex is the filter-phase index over SAP ciphertexts. Ids are
// vector positions (0..n-1 in build order, then sequential per Add).
//
// # Concurrent-read contract
//
// Every backend must satisfy (and the conformance suite verifies) two
// concurrency guarantees the snapshot-publication serving tier builds on:
//
//  1. Search/SearchInto may run concurrently with any number of other
//     searches on the same instance, with no external locking.
//  2. Clone returns a copy sharing no mutable state with the receiver:
//     mutating either side (Add, Delete) never changes what the other
//     side's searches observe.
//
// Mutations themselves are not required to be safe against concurrent
// searches on the same instance — core.Server never mutates a published
// index; its writers Clone the current one, mutate the private clone, and
// atomically publish it (see core's snapshot documentation).
type SecureIndex interface {
	// Add inserts a vector and returns its id, which is always the value
	// Len-including-tombstones had before the call. Backends without
	// dynamic insert return an error wrapping ErrNotSupported.
	Add(v []float64) (int, error)
	// Search returns up to k live ids approximately closest to q,
	// closest first. ef is an advisory search-effort knob (beam width for
	// graphs; probe budget for partition- and hash-based backends).
	Search(q []float64, k, ef int) []resultheap.Item
	// SearchInto is Search appending into dst (reusing its capacity), so
	// steady-state callers avoid per-query result allocation. Backends
	// without a pooled internal search path may still allocate scratch.
	SearchInto(dst []resultheap.Item, q []float64, k, ef int) []resultheap.Item
	// SearchIntoDist is SearchInto with every candidate distance supplied
	// by sc instead of computed from the stored vectors — the compressed
	// (PQ) filter hook. Structural navigation that is not a candidate
	// distance (IVF centroid probing, LSH bucket hashing, HNSW/NSG graph
	// topology) still uses q exactly; every candidate the backend ranks is
	// scored through sc. Ids passed to sc are external ids (vector
	// positions), including tombstoned ones traversal routes through, so
	// the scanner's code arena must cover every position ever assigned.
	SearchIntoDist(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item
	// Delete tombstones an id. Backends without dynamic delete return an
	// error wrapping ErrNotSupported.
	Delete(id int) error
	// Clone returns an independent copy of the index: the copy-on-write
	// primitive of the serving tier's snapshot discipline. Mutations on the
	// clone are invisible to the original (and vice versa), and cloning is
	// pure copying — no distance computations, no rebuild. Immutable state
	// (trained quantizers, hash projections) may be shared.
	Clone() SecureIndex
	// Rebuild constructs a fresh index of the same backend over vectors,
	// using the receiver's build configuration (graph parameters, trained
	// quantizers, hash projections, seed). Ids are assigned 0..len-1 in
	// vectors order, all live; the receiver is not modified. This is the
	// compaction primitive: it restores full structure quality (graph
	// connectivity, list balance) that incremental mutation erodes, and it
	// works on every backend — including batch-built ones that reject Add.
	Rebuild(vectors [][]float64) (SecureIndex, error)
	// Vector returns the stored (SAP-ciphertext) vector of an id, valid
	// for tombstoned ids too — backends retain tombstone rows, and
	// partition rebuilds (core.EncryptedDatabase.Split) need every
	// position's vector to keep local ids dense. The second result is
	// false only for ids the backend never assigned. Callers must treat
	// the returned slice as read-only and copy it before retaining it
	// across mutations.
	Vector(id int) ([]float64, bool)
	// Len returns the number of live (non-deleted) vectors.
	Len() int
	// Dim returns the vector dimension.
	Dim() int
	// Caps reports the backend's update capabilities.
	Caps() Caps
	// Save writes the index (including search-time options) so the
	// registered loader round-trips it byte-exactly into an equivalent
	// index.
	Save(w io.Writer) error
}

// Options carries per-backend build and search parameters. Zero values
// select each backend's documented defaults; fields for other backends are
// ignored, so one Options value can configure any backend choice.
type Options struct {
	// Dim is the vector dimension (required).
	Dim int
	// Seed makes construction deterministic when non-zero.
	Seed uint64

	// M and EfConstruction are the HNSW build parameters (defaults 16
	// and 200; the paper's evaluation uses 40 and 600).
	M              int
	EfConstruction int

	// Lists is IVF's nlist (default √n clamped to [16, 4096]);
	// TrainIters bounds quantizer training (default 20); NProbe fixes
	// the probed-list count per query (default derived from ef).
	Lists      int
	TrainIters int
	NProbe     int

	// R, L and KNN are NSG's max out-degree, construction pool size and
	// seeding-kNN width (defaults 32, 128, 48).
	R   int
	L   int
	KNN int

	// Tables, Hashes and W are E2LSH's L, K and quantization width
	// (defaults 12, 8, and a width calibrated from the data scale);
	// Probes fixes the multi-probe budget per table (default: derived
	// from the search's ef, clamped to [Hashes, 2·Hashes]).
	Tables int
	Hashes int
	W      float64
	Probes int
}

func (o Options) validate() error {
	if o.Dim <= 0 {
		return fmt.Errorf("index: non-positive dimension %d", o.Dim)
	}
	return nil
}
