package index

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"ppanns/internal/resultheap"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// The conformance suite runs every registered backend through the same
// contract: build, search-recall sanity, byte-exact save/load round-trip,
// and capability-gated insert/delete behavior. A new backend only has to
// register itself to be covered.

func clustered(seed uint64, n, dim, clusters int) [][]float64 {
	r := rng.NewSeeded(seed)
	centers := make([][]float64, clusters)
	for i := range centers {
		centers[i] = rng.GaussianVec(r, dim, 6)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = vec.Add(nil, centers[r.IntN(clusters)], rng.GaussianVec(r, dim, 1))
	}
	return out
}

func makeQueries(seed uint64, data [][]float64, n int, noise float64) [][]float64 {
	r := rng.NewSeeded(seed)
	dim := len(data[0])
	out := make([][]float64, n)
	for i := range out {
		out[i] = vec.Add(nil, data[r.IntN(len(data))], rng.GaussianVec(r, dim, noise))
	}
	return out
}

func bruteForce(data [][]float64, q []float64, k int, skip func(int) bool) []int {
	type pair struct {
		id int
		d  float64
	}
	var all []pair
	for i, v := range data {
		if skip != nil && skip(i) {
			continue
		}
		all = append(all, pair{i, vec.SqDist(v, q)})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	if len(all) > k {
		all = all[:k]
	}
	ids := make([]int, len(all))
	for i, p := range all {
		ids[i] = p.id
	}
	return ids
}

func recallOf(got, want []int) float64 {
	if len(want) == 0 {
		return 1
	}
	set := map[int]bool{}
	for _, id := range want {
		set[id] = true
	}
	hit := 0
	for _, id := range got {
		if set[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func searchIDs(ix SecureIndex, q []float64, k, ef int) []int {
	items := ix.Search(q, k, ef)
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	return ids
}

// minRecall is the per-backend floor for recall@10 with generous search
// effort. Graphs are near-exact at this scale; IVF loses a little at list
// boundaries; LSH trades the most recall for its sub-linear probe count
// (the paper's survey shape — and why the refine phase exists).
var minRecall = map[string]float64{
	"hnsw": 0.90,
	"nsg":  0.90,
	"ivf":  0.75,
	"lsh":  0.40,
}

func TestConformance(t *testing.T) {
	const n, dim, k, ef = 1500, 12, 10, 150
	data := clustered(7, n, dim, 10)
	queries := makeQueries(8, data, 30, 0.3)

	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ix, err := Build(name, data, Options{Dim: dim, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if got := ix.Len(); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			if got := ix.Dim(); got != dim {
				t.Fatalf("Dim = %d, want %d", got, dim)
			}
			caps := ix.Caps()
			if caps.Name != name {
				t.Fatalf("Caps().Name = %q, want %q", caps.Name, name)
			}

			// Recall sanity against brute force.
			var recall float64
			for _, q := range queries {
				recall += recallOf(searchIDs(ix, q, k, ef), bruteForce(data, q, k, nil))
			}
			recall /= float64(len(queries))
			floor, ok := minRecall[name]
			if !ok {
				floor = 0.4 // unknown future backend: basic sanity only
			}
			if recall < floor {
				t.Fatalf("recall@%d = %.3f, want ≥ %.2f", k, recall, floor)
			}

			// SearchInto must agree with Search and reuse dst capacity.
			var dst []resultheap.Item
			for qi, q := range queries {
				want := ix.Search(q, k, ef)
				dst = ix.SearchInto(dst, q, k, ef)
				if len(dst) != len(want) {
					t.Fatalf("query %d: SearchInto returned %d items, Search %d", qi, len(dst), len(want))
				}
				for i := range dst {
					if dst[i].ID != want[i].ID {
						t.Fatalf("query %d rank %d: SearchInto id %d, Search id %d", qi, i, dst[i].ID, want[i].ID)
					}
				}
			}
			before := cap(dst)
			dst = ix.SearchInto(dst, queries[0], k, ef)
			if cap(dst) != before {
				t.Fatalf("SearchInto grew dst capacity %d → %d on a repeat query", before, cap(dst))
			}

			// Vector must recover every stored vector by position.
			for _, pos := range []int{0, 5, n / 2, n - 1} {
				v, ok := ix.Vector(pos)
				if !ok {
					t.Fatalf("Vector(%d) reported missing", pos)
				}
				for j := range v {
					if v[j] != data[pos][j] {
						t.Fatalf("Vector(%d)[%d] = %g, want %g", pos, j, v[j], data[pos][j])
					}
				}
			}
			if _, ok := ix.Vector(-1); ok {
				t.Fatal("Vector(-1) reported present")
			}
			if _, ok := ix.Vector(n); ok {
				t.Fatal("Vector(n) reported present before any insert")
			}

			// Save/load round-trip must reproduce results exactly.
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatal(err)
			}
			ix2, err := Load(name, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if ix2.Len() != ix.Len() || ix2.Dim() != ix.Dim() || ix2.Caps() != caps {
				t.Fatalf("round-trip changed shape: %d/%d/%+v vs %d/%d/%+v",
					ix2.Len(), ix2.Dim(), ix2.Caps(), ix.Len(), ix.Dim(), caps)
			}
			for qi, q := range queries {
				a, b := searchIDs(ix, q, k, ef), searchIDs(ix2, q, k, ef)
				if len(a) != len(b) {
					t.Fatalf("query %d: result counts differ after round-trip: %d vs %d", qi, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("query %d rank %d differs after round-trip: %d vs %d", qi, i, a[i], b[i])
					}
				}
			}

			// Capability-gated insert.
			novel := vec.Scale(nil, 40, vec.Ones(dim)) // far from every cluster
			if caps.DynamicInsert {
				id, err := ix.Add(novel)
				if err != nil {
					t.Fatal(err)
				}
				if id != n {
					t.Fatalf("Add id = %d, want %d", id, n)
				}
				got := searchIDs(ix, novel, 1, ef)
				if len(got) != 1 || got[0] != id {
					t.Fatalf("inserted vector not found: got %v", got)
				}
				if ix.Len() != n+1 {
					t.Fatalf("Len after insert = %d, want %d", ix.Len(), n+1)
				}
			} else {
				if _, err := ix.Add(novel); !errors.Is(err, ErrNotSupported) {
					t.Fatalf("Add on non-dynamic backend: err = %v, want ErrNotSupported", err)
				}
				if ix.Len() != n {
					t.Fatalf("failed Add changed Len to %d", ix.Len())
				}
			}

			// Capability-gated delete.
			if caps.DynamicDelete {
				q := data[5]
				top := searchIDs(ix, q, 1, ef)
				if len(top) != 1 {
					t.Fatal("no result before delete")
				}
				lenBefore := ix.Len()
				if err := ix.Delete(top[0]); err != nil {
					t.Fatal(err)
				}
				if err := ix.Delete(top[0]); err == nil {
					t.Fatal("double delete did not error")
				}
				if ix.Len() != lenBefore-1 {
					t.Fatalf("Len after delete = %d, want %d", ix.Len(), lenBefore-1)
				}
				for _, id := range searchIDs(ix, q, k, ef) {
					if id == top[0] {
						t.Fatal("deleted id still returned")
					}
				}
				if _, ok := ix.Vector(top[0]); !ok {
					t.Fatal("Vector of tombstoned id reported missing")
				}
			} else {
				if err := ix.Delete(0); !errors.Is(err, ErrNotSupported) {
					t.Fatalf("Delete on non-dynamic backend: err = %v, want ErrNotSupported", err)
				}
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("expected ≥ 4 registered backends, have %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if _, err := Lookup("no-such-backend"); err == nil {
		t.Fatal("expected error for unknown backend")
	}
	b, err := Lookup("")
	if err != nil || b.Name != Default {
		t.Fatalf("empty name resolved to %q, %v; want default %q", b.Name, err, Default)
	}
	if _, err := Build("no-such-backend", nil, Options{Dim: 4}); err == nil {
		t.Fatal("expected Build error for unknown backend")
	}
	if _, err := Build("hnsw", nil, Options{}); err == nil {
		t.Fatal("expected Build error for missing dimension")
	}
	if _, err := Load("no-such-backend", bytes.NewReader(nil)); err == nil {
		t.Fatal("expected Load error for unknown backend")
	}
}

// TestConformanceFrozenViewStability covers the frozen/flattened search
// views on every registered backend: repeated searches (the first of which
// builds the lazy view), searches on a fresh clone (which freezes
// independently), and searches after a mutation (which invalidates and
// rebuilds the view) must all return the exact same ids in the exact same
// order for the same database state. The per-package suites additionally
// compare each view walk against its locked/scalar reference path
// bit-for-bit; the LSH adapter's reference lives in this package, so its
// toggle is exercised here.
func TestConformanceFrozenViewStability(t *testing.T) {
	data := clustered(91, 900, 12, 6)
	queries := makeQueries(92, data, 24, 0.3)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			ix, err := Build(name, data, Options{Dim: 12, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			first := make([][]resultheap.Item, len(queries))
			var dst []resultheap.Item
			for i, q := range queries {
				dst = ix.SearchInto(dst[:0], q, 10, 60)
				first[i] = append([]resultheap.Item(nil), dst...)
			}
			// Second pass runs entirely on the cached view.
			for i, q := range queries {
				dst = ix.SearchInto(dst[:0], q, 10, 60)
				if len(dst) != len(first[i]) {
					t.Fatalf("query %d: warm view returned %d items, first pass %d", i, len(dst), len(first[i]))
				}
				for j := range dst {
					if dst[j] != first[i][j] {
						t.Fatalf("query %d pos %d: warm view (%d, %v) != first pass (%d, %v)",
							i, j, dst[j].ID, dst[j].Dist, first[i][j].ID, first[i][j].Dist)
					}
				}
			}
			// A clone freezes its own view; same state, same exact results.
			cl := ix.Clone()
			for i, q := range queries {
				dst = cl.SearchInto(dst[:0], q, 10, 60)
				for j := range dst {
					if dst[j] != first[i][j] {
						t.Fatalf("query %d pos %d: clone view diverges", i, j)
					}
				}
			}
			// Mutation invalidates: results must reflect the new state on
			// both the mutated index and an unfrozen rebuild of it.
			if ix.Caps().DynamicDelete {
				victim := first[0][0].ID
				if err := ix.Delete(victim); err != nil {
					t.Fatal(err)
				}
				for i, q := range queries {
					dst = ix.SearchInto(dst[:0], q, 10, 60)
					for _, it := range dst {
						if it.ID == victim {
							t.Fatalf("query %d: deleted id %d served from stale view", i, victim)
						}
					}
				}
			}
		})
	}
}

// TestLSHBlockedScanMatchesScalar compares the LSH adapter's blocked
// ranking scan against the scalar reference path bit-for-bit.
func TestLSHBlockedScanMatchesScalar(t *testing.T) {
	data := clustered(93, 700, 10, 5)
	queries := makeQueries(94, data, 24, 0.3)
	ix, err := Build("lsh", data, Options{Dim: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a := ix.(*lshIndex)
	if err := a.Delete(11); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		a.noFlat = true
		scalar := a.Search(q, 10, 60)
		a.noFlat = false
		blocked := a.Search(q, 10, 60)
		if len(blocked) != len(scalar) {
			t.Fatalf("query %d: blocked %d items, scalar %d", qi, len(blocked), len(scalar))
		}
		for i := range blocked {
			if blocked[i] != scalar[i] {
				t.Fatalf("query %d pos %d: blocked (%d, %v) != scalar (%d, %v)",
					qi, i, blocked[i].ID, blocked[i].Dist, scalar[i].ID, scalar[i].Dist)
			}
		}
	}
}
