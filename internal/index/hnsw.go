package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"

	"ppanns/internal/hnsw"
	"ppanns/internal/resultheap"
	"ppanns/internal/vec"
)

func init() {
	Register(Backend{Name: "hnsw", Build: buildHNSW, Load: loadHNSW})
}

// hnswIndex adapts hnsw.Graph to SecureIndex. The graph assigns its own
// ids in arrival order, which under the parallel build differs from vector
// positions; the adapter keeps the two-way mapping so external ids stay
// equal to positions (they index the ciphertext arrays and are what users
// see).
type hnswIndex struct {
	g *hnsw.Graph

	mu      sync.RWMutex
	pos2gid []int32
	gid2pos []int32

	scPool sync.Pool // *gidScanner
}

func buildHNSW(vectors [][]float64, opts Options) (SecureIndex, error) {
	g, err := hnsw.New(hnsw.Config{
		Dim:            opts.Dim,
		M:              opts.M,
		EfConstruction: opts.EfConstruction,
		Seed:           opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	n := len(vectors)
	ix := &hnswIndex{
		g:       g,
		pos2gid: make([]int32, n),
		gid2pos: make([]int32, n),
	}
	// Parallel construction: workers pull positions off a shared counter
	// and record the graph id each insert received.
	workers := runtime.GOMAXPROCS(0)
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				gid := g.Add(vectors[i])
				ix.pos2gid[i] = int32(gid)
				ix.gid2pos[gid] = int32(i)
			}
		}()
	}
	wg.Wait()
	return ix, nil
}

func (ix *hnswIndex) Add(v []float64) (int, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	gid := ix.g.Add(v)
	// Sequential adds receive dense graph ids, so gid matches the mapping
	// size; a mismatch means the graph was mutated behind the adapter.
	if gid != len(ix.gid2pos) {
		return 0, fmt.Errorf("index: hnsw id %d out of step with mapping size %d", gid, len(ix.gid2pos))
	}
	pos := len(ix.pos2gid)
	ix.pos2gid = append(ix.pos2gid, int32(gid))
	ix.gid2pos = append(ix.gid2pos, int32(pos))
	return pos, nil
}

func (ix *hnswIndex) Search(q []float64, k, ef int) []resultheap.Item {
	return ix.SearchInto(nil, q, k, ef)
}

func (ix *hnswIndex) SearchInto(dst []resultheap.Item, q []float64, k, ef int) []resultheap.Item {
	dst = ix.g.SearchInto(dst, q, k, ef)
	ix.mu.RLock()
	for i := range dst {
		dst[i].ID = int(ix.gid2pos[dst[i].ID])
	}
	ix.mu.RUnlock()
	return dst
}

// gidScanner adapts a position-keyed scanner to the graph's internal id
// space: ids the graph asks about are translated gid→position before the
// wrapped scanner is consulted. Pooled per query; the translation buffer is
// retained so a warm search allocates nothing.
type gidScanner struct {
	sc      vec.BlockScanner
	gid2pos []int32
	buf     []int32
}

func (s *gidScanner) Dist(id int32) float64 { return s.sc.Dist(s.gid2pos[id]) }

func (s *gidScanner) DistBlock(dst []float64, ids []int32) {
	if cap(s.buf) < len(ids) {
		s.buf = make([]int32, len(ids))
	}
	buf := s.buf[:len(ids)]
	for j, id := range ids {
		buf[j] = s.gid2pos[id]
	}
	s.sc.DistBlock(dst, buf)
}

func (ix *hnswIndex) SearchIntoDist(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item {
	gs, _ := ix.scPool.Get().(*gidScanner)
	if gs == nil {
		gs = &gidScanner{}
	}
	ix.mu.RLock()
	gs.sc, gs.gid2pos = sc, ix.gid2pos
	ix.mu.RUnlock()
	dst = ix.g.SearchIntoDist(dst, q, k, ef, gs)
	gs.sc, gs.gid2pos = nil, nil // don't pin the arenas through the pool
	ix.scPool.Put(gs)
	ix.mu.RLock()
	for i := range dst {
		dst[i].ID = int(ix.gid2pos[dst[i].ID])
	}
	ix.mu.RUnlock()
	return dst
}

func (ix *hnswIndex) Delete(pos int) error {
	ix.mu.RLock()
	if pos < 0 || pos >= len(ix.pos2gid) {
		ix.mu.RUnlock()
		return fmt.Errorf("index: hnsw delete of unknown id %d", pos)
	}
	gid := int(ix.pos2gid[pos])
	ix.mu.RUnlock()
	return ix.g.Delete(gid)
}

func (ix *hnswIndex) Len() int { return ix.g.Len() }
func (ix *hnswIndex) Dim() int { return ix.g.Dim() }

func (ix *hnswIndex) Vector(pos int) ([]float64, bool) {
	ix.mu.RLock()
	if pos < 0 || pos >= len(ix.pos2gid) {
		ix.mu.RUnlock()
		return nil, false
	}
	gid := int(ix.pos2gid[pos])
	ix.mu.RUnlock()
	return ix.g.Vector(gid), true
}

func (ix *hnswIndex) Clone() SecureIndex {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return &hnswIndex{
		g:       ix.g.Clone(),
		pos2gid: append([]int32(nil), ix.pos2gid...),
		gid2pos: append([]int32(nil), ix.gid2pos...),
	}
}

// Rebuild reconstructs a fresh graph over vectors with the receiver's
// build parameters, through the same parallel build path as the registry
// Build (so the blocked distance kernels stay engaged).
func (ix *hnswIndex) Rebuild(vectors [][]float64) (SecureIndex, error) {
	cfg := ix.g.Config()
	return buildHNSW(vectors, Options{
		Dim:            cfg.Dim,
		Seed:           cfg.Seed,
		M:              cfg.M,
		EfConstruction: cfg.EfConstruction,
	})
}

func (ix *hnswIndex) Caps() Caps {
	return Caps{Name: "hnsw", DynamicInsert: true, DynamicDelete: true}
}

const hnswPayloadMagic = "IDXHNSW1"

// Save writes the position→graph-id mapping followed by the graph itself.
// gid2pos is not persisted: it is the inverse permutation of pos2gid and
// deriving it at load time makes a mismatched pair unrepresentable.
func (ix *hnswIndex) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(hnswPayloadMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(ix.pos2gid))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.pos2gid); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return ix.g.Save(w)
}

func loadHNSW(r io.Reader) (SecureIndex, error) {
	magic := make([]byte, len(hnswPayloadMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("index: reading hnsw payload magic: %w", err)
	}
	if string(magic) != hnswPayloadMagic {
		return nil, fmt.Errorf("index: bad hnsw payload magic %q", magic)
	}
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("index: implausible hnsw mapping size %d", n)
	}
	ix := &hnswIndex{pos2gid: make([]int32, n)}
	if err := binary.Read(r, binary.LittleEndian, ix.pos2gid); err != nil {
		return nil, err
	}
	g, err := hnsw.Load(r, nil)
	if err != nil {
		return nil, err
	}
	// Rebuild the inverse mapping, rejecting out-of-range and duplicate
	// graph ids so a corrupted mapping fails here instead of silently
	// returning wrong external ids from Search.
	ix.gid2pos = make([]int32, n)
	for i := range ix.gid2pos {
		ix.gid2pos[i] = -1
	}
	for pos, gid := range ix.pos2gid {
		if gid < 0 || int64(gid) >= n {
			return nil, fmt.Errorf("index: hnsw mapping references out-of-range graph id %d", gid)
		}
		if ix.gid2pos[gid] != -1 {
			return nil, fmt.Errorf("index: hnsw mapping assigns graph id %d twice", gid)
		}
		ix.gid2pos[gid] = int32(pos)
	}
	st := g.Stats()
	if st.Nodes+st.Deleted != int(n) {
		return nil, fmt.Errorf("index: hnsw graph has %d nodes, mapping %d", st.Nodes+st.Deleted, n)
	}
	ix.g = g
	return ix, nil
}
