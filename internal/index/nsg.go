package index

import (
	"fmt"
	"io"

	"ppanns/internal/nsg"
	"ppanns/internal/resultheap"
	"ppanns/internal/vec"
)

func init() {
	Register(Backend{Name: "nsg", Build: buildNSG, Load: loadNSG})
}

// nsgIndex adapts nsg.Graph to SecureIndex. NSG is a batch-built index:
// ids equal build positions, deletions tombstone, and Add is rejected —
// the capability report lets callers gate on that instead of failing late.
type nsgIndex struct {
	g *nsg.Graph
}

func buildNSG(vectors [][]float64, opts Options) (SecureIndex, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("index: nsg requires a non-empty initial vector set")
	}
	g, err := nsg.Build(vectors, nsg.Config{
		R:    opts.R,
		L:    opts.L,
		KNN:  opts.KNN,
		Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &nsgIndex{g: g}, nil
}

func (a *nsgIndex) Add(v []float64) (int, error) {
	return 0, fmt.Errorf("%w: nsg is batch-built and cannot insert", ErrNotSupported)
}

func (a *nsgIndex) Search(q []float64, k, ef int) []resultheap.Item {
	return a.g.Search(q, k, ef)
}

func (a *nsgIndex) SearchInto(dst []resultheap.Item, q []float64, k, ef int) []resultheap.Item {
	return a.g.SearchInto(dst, q, k, ef)
}

func (a *nsgIndex) SearchIntoDist(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item {
	return a.g.SearchIntoDist(dst, q, k, ef, sc)
}

func (a *nsgIndex) Delete(id int) error { return a.g.Delete(id) }
func (a *nsgIndex) Len() int            { return a.g.Len() }
func (a *nsgIndex) Dim() int            { return a.g.Dim() }

func (a *nsgIndex) Vector(id int) ([]float64, bool) {
	v := a.g.Vector(id)
	return v, v != nil
}

func (a *nsgIndex) Clone() SecureIndex { return &nsgIndex{g: a.g.Clone()} }

// Rebuild batch-builds a fresh NSG over vectors with the receiver's
// configuration. This is how NSG — which rejects Add — supports the
// serving tier's delta/compaction write path: inserts accumulate in the
// delta tier and land here wholesale.
func (a *nsgIndex) Rebuild(vectors [][]float64) (SecureIndex, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("index: nsg requires a non-empty vector set")
	}
	g, err := nsg.Build(vectors, a.g.Config())
	if err != nil {
		return nil, err
	}
	return &nsgIndex{g: g}, nil
}

func (a *nsgIndex) Caps() Caps {
	return Caps{Name: "nsg", DynamicInsert: false, DynamicDelete: true}
}

const nsgPayloadMagic = "IDXNSG01"

func (a *nsgIndex) Save(w io.Writer) error {
	if _, err := io.WriteString(w, nsgPayloadMagic); err != nil {
		return err
	}
	return a.g.Save(w)
}

func loadNSG(r io.Reader) (SecureIndex, error) {
	magic := make([]byte, len(nsgPayloadMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("index: reading nsg payload magic: %w", err)
	}
	if string(magic) != nsgPayloadMagic {
		return nil, fmt.Errorf("index: bad nsg payload magic %q", magic)
	}
	g, err := nsg.Load(r)
	if err != nil {
		return nil, err
	}
	return &nsgIndex{g: g}, nil
}
