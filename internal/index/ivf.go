package index

import (
	"encoding/binary"
	"fmt"
	"io"

	"ppanns/internal/ivf"
	"ppanns/internal/resultheap"
	"ppanns/internal/vec"
)

func init() {
	Register(Backend{Name: "ivf", Build: buildIVF, Load: loadIVF})
}

// ivfIndex adapts ivf.Index to SecureIndex. IVF assigns ids in build/insert
// order, which already matches vector positions, so no mapping is needed.
type ivfIndex struct {
	ix *ivf.Index
	// nprobe fixes the probed-list count; 0 derives it from the search's
	// ef budget.
	nprobe int
}

func buildIVF(vectors [][]float64, opts Options) (SecureIndex, error) {
	ix, err := ivf.Build(vectors, ivf.Config{
		Lists:      opts.Lists,
		TrainIters: opts.TrainIters,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &ivfIndex{ix: ix, nprobe: opts.NProbe}, nil
}

func (a *ivfIndex) Add(v []float64) (int, error) { return a.ix.Add(v), nil }

// probesFor maps the advisory ef budget onto a probed-list count: one list
// per 8 beam slots, never fewer than 4 nor more than nlist.
func (a *ivfIndex) probesFor(ef int) int {
	if a.nprobe > 0 {
		return a.nprobe
	}
	np := ef / 8
	if np < 4 {
		np = 4
	}
	if np > a.ix.Lists() {
		np = a.ix.Lists()
	}
	return np
}

func (a *ivfIndex) Search(q []float64, k, ef int) []resultheap.Item {
	return a.ix.Search(q, k, a.probesFor(ef))
}

func (a *ivfIndex) SearchInto(dst []resultheap.Item, q []float64, k, ef int) []resultheap.Item {
	return a.ix.SearchInto(dst, q, k, a.probesFor(ef))
}

func (a *ivfIndex) SearchIntoDist(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item {
	return a.ix.SearchIntoDist(dst, q, k, a.probesFor(ef), sc)
}

func (a *ivfIndex) Delete(id int) error { return a.ix.Delete(id) }
func (a *ivfIndex) Len() int            { return a.ix.Len() }
func (a *ivfIndex) Dim() int            { return a.ix.Dim() }

func (a *ivfIndex) Vector(id int) ([]float64, bool) {
	v := a.ix.Vector(id)
	return v, v != nil
}

func (a *ivfIndex) Clone() SecureIndex { return &ivfIndex{ix: a.ix.Clone(), nprobe: a.nprobe} }

// Rebuild repopulates a fresh index sharing the receiver's trained
// quantizer: assignments are recomputed per vector, but k-means training —
// the expensive part of a cold build — is not repeated. List balance is
// restored because tombstoned members are simply absent.
func (a *ivfIndex) Rebuild(vectors [][]float64) (SecureIndex, error) {
	fresh := a.ix.Fresh(len(vectors))
	for i, v := range vectors {
		if id := fresh.Add(v); id != i {
			return nil, fmt.Errorf("index: ivf rebuild assigned id %d to vector %d", id, i)
		}
	}
	return &ivfIndex{ix: fresh, nprobe: a.nprobe}, nil
}

func (a *ivfIndex) Caps() Caps {
	return Caps{Name: "ivf", DynamicInsert: true, DynamicDelete: true}
}

const ivfPayloadMagic = "IDXIVF01"

func (a *ivfIndex) Save(w io.Writer) error {
	if _, err := io.WriteString(w, ivfPayloadMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(a.nprobe)); err != nil {
		return err
	}
	return a.ix.Save(w)
}

func loadIVF(r io.Reader) (SecureIndex, error) {
	magic := make([]byte, len(ivfPayloadMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("index: reading ivf payload magic: %w", err)
	}
	if string(magic) != ivfPayloadMagic {
		return nil, fmt.Errorf("index: bad ivf payload magic %q", magic)
	}
	var nprobe int64
	if err := binary.Read(r, binary.LittleEndian, &nprobe); err != nil {
		return nil, err
	}
	ix, err := ivf.Load(r)
	if err != nil {
		return nil, err
	}
	return &ivfIndex{ix: ix, nprobe: int(nprobe)}, nil
}
