package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"ppanns/internal/lsh"
	"ppanns/internal/resultheap"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

func init() {
	Register(Backend{Name: "lsh", Build: buildLSH, Load: loadLSH})
}

// Adapter defaults: fewer, shorter hashes than the package's baseline
// defaults, because the filter phase wants recall (the DCE refine restores
// precision) and multi-probe makes short hashes cheap to widen.
const (
	lshDefaultTables = 12
	lshDefaultHashes = 8
)

// lshIndex adapts lsh.Index to SecureIndex. The hash tables only store
// ids, so the adapter keeps the vectors itself to rank the candidate union
// by distance — the same filter-then-rank shape the RS-SANN and PRI-ANN
// baselines use, here serving the generic filter phase. The ranking scan is
// blocked: candidates are gathered into a flat id list and evaluated with
// one blocked distance call over the vector arena per query.
type lshIndex struct {
	cfg lsh.Config
	// probes fixes the multi-probe budget per table; 0 derives it from
	// the search's ef budget.
	probes int
	// noFlat pins searches to the scalar per-candidate scan (conformance
	// tests compare it against the blocked path).
	noFlat bool

	mu      sync.RWMutex
	ix      *lsh.Index
	data    *vec.Dataset
	deleted []bool
	live    int

	ctxPool sync.Pool
}

// lshCtx is the pooled per-search scratch of the adapter's ranking scan.
type lshCtx struct {
	cands  []int32
	gather []int32
	dists  []float64
	res    *resultheap.MaxDistHeap
	items  []resultheap.Item
}

// calibrateW estimates a quantization width from the data scale: W is set
// to half the mean pairwise distance over a deterministic sample, which
// puts near neighbors well inside one quantization cell while keeping far
// points apart. E2LSH's fixed default (4) assumes unit-scale data and
// collapses on SAP ciphertexts, whose coordinates are scaled by S≈1024.
func calibrateW(vectors [][]float64, seed uint64) float64 {
	if len(vectors) < 2 {
		return 4
	}
	r := rng.NewSeeded(seed ^ 0x3a7)
	const pairs = 512
	var sum float64
	var cnt int
	for i := 0; i < pairs; i++ {
		a := r.IntN(len(vectors))
		b := r.IntN(len(vectors))
		if a == b {
			continue
		}
		sum += vec.Dist(vectors[a], vectors[b])
		cnt++
	}
	if cnt == 0 || sum == 0 {
		return 4
	}
	return sum / float64(cnt) / 2
}

func buildLSH(vectors [][]float64, opts Options) (SecureIndex, error) {
	cfg := lsh.Config{
		Dim:    opts.Dim,
		Tables: opts.Tables,
		Hashes: opts.Hashes,
		W:      opts.W,
		Seed:   opts.Seed,
	}
	if cfg.Tables <= 0 {
		cfg.Tables = lshDefaultTables
	}
	if cfg.Hashes <= 0 {
		cfg.Hashes = lshDefaultHashes
	}
	if cfg.W <= 0 {
		cfg.W = calibrateW(vectors, opts.Seed)
	}
	ix, err := lsh.New(cfg)
	if err != nil {
		return nil, err
	}
	a := &lshIndex{
		cfg:     cfg,
		probes:  opts.Probes,
		ix:      ix,
		data:    vec.NewDataset(opts.Dim, len(vectors)),
		deleted: make([]bool, 0, len(vectors)),
	}
	for _, v := range vectors {
		id := a.data.Append(v)
		a.deleted = append(a.deleted, false)
		ix.Insert(id, v)
	}
	a.live = len(vectors)
	return a, nil
}

func (a *lshIndex) Add(v []float64) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id := a.data.Append(v)
	a.deleted = append(a.deleted, false)
	a.live++
	a.ix.Insert(id, v)
	return id, nil
}

// probesFor maps the advisory ef budget onto a per-table probe count: one
// extra bucket per 8 beam slots, clamped to [Hashes, 2·Hashes] (the probe
// generator emits at most 2·Hashes single-coordinate perturbations).
func (a *lshIndex) probesFor(ef int) int {
	if a.probes > 0 {
		return a.probes
	}
	p := ef / 8
	if p < a.cfg.Hashes {
		p = a.cfg.Hashes
	}
	if p > 2*a.cfg.Hashes {
		p = 2 * a.cfg.Hashes
	}
	return p
}

func (a *lshIndex) Search(q []float64, k, ef int) []resultheap.Item {
	return a.SearchInto(nil, q, k, ef)
}

func (a *lshIndex) SearchInto(dst []resultheap.Item, q []float64, k, ef int) []resultheap.Item {
	return a.searchInto(dst, q, k, ef, nil)
}

func (a *lshIndex) SearchIntoDist(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item {
	return a.searchInto(dst, q, k, ef, sc)
}

// searchInto collects the multi-probe candidate union (hashing q exactly)
// and ranks it — through sc when one is bound (the compressed filter path),
// else with the blocked distance kernel over the vector arena.
func (a *lshIndex) searchInto(dst []resultheap.Item, q []float64, k, ef int, sc vec.BlockScanner) []resultheap.Item {
	ctx, _ := a.ctxPool.Get().(*lshCtx)
	if ctx == nil {
		ctx = &lshCtx{res: resultheap.NewMaxDistHeap(k + 1)}
	}
	defer a.ctxPool.Put(ctx)
	ctx.cands = a.ix.CandidatesInto(ctx.cands[:0], q, a.probesFor(ef), 0)
	a.mu.RLock()
	defer a.mu.RUnlock()
	res := ctx.res
	res.Reset()
	if a.noFlat && sc == nil {
		// Scalar reference scan, kept for the blocked-path conformance test.
		for _, id := range ctx.cands {
			if a.deleted[id] {
				continue
			}
			res.PushBounded(int(id), vec.SqDist(q, a.data.At(int(id))), k)
		}
	} else {
		gather := ctx.gather[:0]
		for _, id := range ctx.cands {
			if !a.deleted[id] {
				gather = append(gather, id)
			}
		}
		if sc != nil {
			if cap(ctx.dists) < len(gather) {
				ctx.dists = make([]float64, len(gather))
			} else {
				ctx.dists = ctx.dists[:len(gather)]
			}
			sc.DistBlock(ctx.dists, gather)
		} else {
			ctx.dists = a.data.SqDistBlock(ctx.dists, q, gather)
		}
		for j, id := range gather {
			res.PushBounded(int(id), ctx.dists[j], k)
		}
		ctx.gather = gather
	}
	ctx.items = res.SortedInto(ctx.items)
	return append(dst[:0], ctx.items...)
}

func (a *lshIndex) Delete(id int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id < 0 || id >= len(a.deleted) {
		return fmt.Errorf("index: lsh delete of unknown id %d", id)
	}
	if a.deleted[id] {
		return fmt.Errorf("index: lsh id %d already deleted", id)
	}
	a.deleted[id] = true
	a.live--
	return nil
}

func (a *lshIndex) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.live
}

func (a *lshIndex) Dim() int { return a.cfg.Dim }

func (a *lshIndex) Vector(id int) ([]float64, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if id < 0 || id >= len(a.deleted) {
		return nil, false
	}
	return a.data.At(id), true
}

func (a *lshIndex) Clone() SecureIndex {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return &lshIndex{
		cfg:     a.cfg,
		probes:  a.probes,
		ix:      a.ix.Clone(),
		data:    a.data.Clone(),
		deleted: append([]bool(nil), a.deleted...),
		live:    a.live,
	}
}

// Rebuild constructs a fresh table set over vectors with the receiver's
// configuration. The calibrated quantization width W is retained rather
// than re-estimated, so the rebuilt tables hash exactly like the original's.
func (a *lshIndex) Rebuild(vectors [][]float64) (SecureIndex, error) {
	ix, err := lsh.New(a.cfg)
	if err != nil {
		return nil, err
	}
	nb := &lshIndex{
		cfg:     a.cfg,
		probes:  a.probes,
		noFlat:  a.noFlat,
		ix:      ix,
		data:    vec.NewDataset(a.cfg.Dim, len(vectors)),
		deleted: make([]bool, 0, len(vectors)),
	}
	for _, v := range vectors {
		id := nb.data.Append(v)
		nb.deleted = append(nb.deleted, false)
		ix.Insert(id, v)
	}
	nb.live = len(vectors)
	return nb, nil
}

func (a *lshIndex) Caps() Caps {
	return Caps{Name: "lsh", DynamicInsert: true, DynamicDelete: true}
}

const lshPayloadMagic = "IDXLSH01"

// Save persists the configuration, vectors and tombstones. The hash tables
// themselves are not written: reconstruction from the same seed reproduces
// identical projections, so Load rebuilds an equivalent index by
// re-inserting the live vectors.
func (a *lshIndex) Save(w io.Writer) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(lshPayloadMagic); err != nil {
		return err
	}
	n := len(a.deleted)
	head := []int64{
		int64(a.cfg.Dim), int64(a.cfg.Tables), int64(a.cfg.Hashes),
		int64(a.cfg.Seed), int64(a.probes), int64(n), int64(a.live),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(a.cfg.W)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, a.data.Raw()); err != nil {
		return err
	}
	for _, d := range a.deleted {
		b := byte(0)
		if d {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func loadLSH(r io.Reader) (SecureIndex, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(lshPayloadMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading lsh payload magic: %w", err)
	}
	if string(magic) != lshPayloadMagic {
		return nil, fmt.Errorf("index: bad lsh payload magic %q", magic)
	}
	head := make([]int64, 7)
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, err
		}
	}
	var wBits uint64
	if err := binary.Read(br, binary.LittleEndian, &wBits); err != nil {
		return nil, err
	}
	cfg := lsh.Config{
		Dim:    int(head[0]),
		Tables: int(head[1]),
		Hashes: int(head[2]),
		Seed:   uint64(head[3]),
		W:      math.Float64frombits(wBits),
	}
	probes, n, live := int(head[4]), int(head[5]), int(head[6])
	if cfg.Dim <= 0 || n < 0 || live < 0 || live > n {
		return nil, fmt.Errorf("index: implausible lsh header dim=%d n=%d live=%d", cfg.Dim, n, live)
	}
	raw := make([]float64, n*cfg.Dim)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("index: reading lsh vectors: %w", err)
	}
	ds, err := vec.DatasetFromRaw(cfg.Dim, raw)
	if err != nil {
		return nil, err
	}
	deleted := make([]bool, n)
	for i := range deleted {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("index: reading lsh tombstones: %w", err)
		}
		deleted[i] = b != 0
	}
	ix, err := lsh.New(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if !deleted[i] {
			ix.Insert(i, ds.At(i))
		}
	}
	return &lshIndex{cfg: cfg, probes: probes, ix: ix, data: ds, deleted: deleted, live: live}, nil
}
