package index

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Default is the backend used when no name is given: HNSW, the paper's
// choice, and the only proximity graph here that is fully dynamic.
const Default = "hnsw"

// Backend bundles a named builder and loader. Build constructs the index
// over the initial vector set (which may be empty only for dynamic
// backends); Load reads a payload written by SecureIndex.Save.
type Backend struct {
	Name  string
	Build func(vectors [][]float64, opts Options) (SecureIndex, error)
	Load  func(r io.Reader) (SecureIndex, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its name. Registering a duplicate or an
// incomplete backend panics: registration happens at init time and a bad
// table is a programming error.
func Register(b Backend) {
	if b.Name == "" || b.Build == nil || b.Load == nil {
		panic("index: incomplete backend registration")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("index: backend %q registered twice", b.Name))
	}
	registry[b.Name] = b
}

// Lookup resolves a backend name; the empty string selects Default.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = Default
	}
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Backend{}, fmt.Errorf("index: unknown backend %q (have %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs the named backend over the vectors ("" = Default).
func Build(name string, vectors [][]float64, opts Options) (SecureIndex, error) {
	b, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return b.Build(vectors, opts)
}

// Load reads a payload written by the named backend's Save ("" = Default).
func Load(name string, r io.Reader) (SecureIndex, error) {
	b, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return b.Load(r)
}
