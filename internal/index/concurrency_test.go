package index

import (
	"fmt"
	"sync"
	"testing"
)

// The concurrent-read contract every backend must satisfy (see the
// SecureIndex docs): searches are safe and deterministic under arbitrary
// concurrency, and Clone yields a copy whose mutations are invisible to
// the original. core's snapshot-publication tier is built directly on
// these two guarantees, so they get their own conformance tests — run
// with -race in CI, where any shared mutable state between clones or
// between concurrent searches surfaces as a detector report.

// TestConformanceConcurrentSearch runs many goroutines searching one
// static index and requires every result to equal the sequential answer:
// concurrent reads may not race (the detector's job) nor perturb each
// other's results (ours).
func TestConformanceConcurrentSearch(t *testing.T) {
	const n, dim, k, ef = 800, 10, 10, 100
	data := clustered(17, n, dim, 8)
	queries := makeQueries(18, data, 20, 0.3)

	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ix, err := Build(name, data, Options{Dim: dim, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]int, len(queries))
			for i, q := range queries {
				want[i] = searchIDs(ix, q, k, ef)
			}

			const workers = 4
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for rep := 0; rep < 10; rep++ {
						qi := (w + rep) % len(queries)
						got := searchIDs(ix, queries[qi], k, ef)
						if len(got) != len(want[qi]) {
							errs <- fmt.Errorf("worker %d query %d: %d ids, want %d", w, qi, len(got), len(want[qi]))
							return
						}
						for i := range got {
							if got[i] != want[qi][i] {
								errs <- fmt.Errorf("worker %d query %d rank %d: id %d, want %d", w, qi, i, got[i], want[qi][i])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceCloneIsolation pins the copy-on-write contract: mutating
// a clone — while the original is being searched concurrently, as the
// snapshot tier does — must leave the original's answers bit-identical,
// and the clone must actually reflect its own mutations.
func TestConformanceCloneIsolation(t *testing.T) {
	const n, dim, k, ef = 600, 10, 10, 100
	data := clustered(19, n, dim, 6)
	queries := makeQueries(20, data, 10, 0.3)

	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ix, err := Build(name, data, Options{Dim: dim, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			caps := ix.Caps()
			want := make([][]int, len(queries))
			for i, q := range queries {
				want[i] = searchIDs(ix, q, k, ef)
			}
			// The id we delete on the clone: the top answer of query 0, so
			// its disappearance from the clone's results is observable.
			if len(want[0]) == 0 {
				t.Fatal("query 0 returned nothing")
			}
			victim := want[0][0]

			clone := ix.Clone()
			searching := make(chan struct{})
			done := make(chan struct{})
			var searchErr error
			go func() {
				defer close(done)
				close(searching)
				for rep := 0; rep < 20; rep++ {
					for qi, q := range queries {
						got := searchIDs(ix, q, k, ef)
						if len(got) != len(want[qi]) {
							searchErr = fmt.Errorf("during clone mutation, query %d: %d ids, want %d", qi, len(got), len(want[qi]))
							return
						}
						for i := range got {
							if got[i] != want[qi][i] {
								searchErr = fmt.Errorf("during clone mutation, query %d rank %d: id %d, want %d", qi, i, got[i], want[qi][i])
								return
							}
						}
					}
				}
			}()
			<-searching

			// Mutate the clone while the original is being searched.
			if caps.DynamicDelete {
				if err := clone.Delete(victim); err != nil {
					t.Fatalf("clone delete: %v", err)
				}
			}
			if caps.DynamicInsert {
				for rep := 0; rep < 5; rep++ {
					if _, err := clone.Add(data[rep]); err != nil {
						t.Fatalf("clone add: %v", err)
					}
				}
			}
			<-done
			if searchErr != nil {
				t.Fatal(searchErr)
			}

			if caps.DynamicDelete {
				// The clone must reflect its own delete...
				for _, id := range searchIDs(clone, queries[0], k, ef) {
					if id == victim {
						t.Fatalf("clone still returns deleted id %d", victim)
					}
				}
				// ...and the original must not.
				found := false
				for _, id := range searchIDs(ix, queries[0], k, ef) {
					if id == victim {
						found = true
					}
				}
				if !found {
					t.Fatalf("delete on the clone leaked into the original (id %d gone)", victim)
				}
			}
			if caps.DynamicInsert {
				if got, orig := clone.Len(), ix.Len(); got <= orig && caps.DynamicDelete {
					// 5 adds minus 1 delete must leave the clone strictly larger.
					t.Fatalf("clone Len %d not larger than original %d after adds", got, orig)
				}
			}

			// Mutating the original must equally leave the clone alone:
			// delete the clone-side top answer from the original and check
			// the clone still returns it.
			if caps.DynamicDelete {
				cloneWant := searchIDs(clone, queries[1], k, ef)
				if len(cloneWant) == 0 {
					t.Fatal("clone query 1 returned nothing")
				}
				if err := ix.Delete(cloneWant[0]); err != nil {
					t.Fatalf("original delete: %v", err)
				}
				found := false
				for _, id := range searchIDs(clone, queries[1], k, ef) {
					if id == cloneWant[0] {
						found = true
					}
				}
				if !found {
					t.Fatalf("delete on the original leaked into the clone (id %d gone)", cloneWant[0])
				}
			}
		})
	}
}
