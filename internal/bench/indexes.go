package bench

import (
	"time"

	"ppanns/internal/dataset"
	"ppanns/internal/dcpe"
	"ppanns/internal/index"
	"ppanns/internal/resultheap"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// Indexes is the index-backend ablation: Section V-A notes the
// privacy-preserving index can swap HNSW for other proximity graphs (NSG),
// and the paper's survey names inverted files and linear scan as the
// alternatives proximity graphs beat. This experiment runs the *filter
// phase* over SAP ciphertexts with every backend registered in
// internal/index (plus a flat-scan floor) and compares recall/QPS,
// justifying the paper's choice of HNSW empirically.
func Indexes(cfg Config) error {
	cfg = cfg.withDefaults()
	names := cfg.Datasets
	if len(names) == 0 {
		names = []string{"sift", "deep"}
	}
	cfg.printf("# Index-backend ablation — filter phase over SAP ciphertexts (k=%d)\n", cfg.K)
	for _, name := range names {
		d, err := dataset.ByName(name, cfg.N, cfg.Queries, cfg.Seed)
		if err != nil {
			return err
		}
		beta, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
		if err != nil {
			return err
		}
		key, err := dcpe.KeyGen(rng.NewSeeded(cfg.Seed^0x1de), d.Dim, 1024, beta)
		if err != nil {
			return err
		}
		encTrain := make([][]float64, len(d.Train))
		for i, v := range d.Train {
			encTrain[i] = key.Encrypt(v)
		}
		encQueries := make([][]float64, len(d.Queries))
		for i, q := range d.Queries {
			encQueries[i] = key.Encrypt(q)
		}
		gt := d.GroundTruth(cfg.K)

		cfg.printf("\n## %s (n=%d, β=%.3g; recall ceiling set by DCPE noise ≈ 0.5)\n",
			d.Name, len(d.Train), beta)
		cfg.printf("%-12s %12s %12s %14s\n", "backend", "recall@10", "QPS", "build(s)")

		run := func(label string, build func() (func(q []float64) []resultheap.Item, error)) error {
			start := time.Now()
			search, err := build()
			if err != nil {
				return err
			}
			buildTime := time.Since(start)
			got := make([][]int, len(encQueries))
			start = time.Now()
			for i, q := range encQueries {
				items := search(q)
				ids := make([]int, len(items))
				for j, it := range items {
					ids[j] = it.ID
				}
				got[i] = ids
			}
			elapsed := time.Since(start)
			cfg.printf("%-12s %12.3f %12.1f %14.2f\n", label,
				dataset.MeanRecall(got, gt),
				float64(len(encQueries))/elapsed.Seconds(),
				buildTime.Seconds())
			return nil
		}

		if err := run("flat-scan", func() (func([]float64) []resultheap.Item, error) {
			return func(q []float64) []resultheap.Item {
				res := resultheap.NewMaxDistHeap(cfg.K + 1)
				for id, v := range encTrain {
					dd := vec.SqDist(q, v)
					if res.Len() < cfg.K {
						res.Push(id, dd)
					} else if dd < res.Top().Dist {
						res.Pop()
						res.Push(id, dd)
					}
				}
				return res.SortedAscending()
			}, nil
		}); err != nil {
			return err
		}

		// Every registered backend through the same SecureIndex interface.
		for _, name := range index.Names() {
			name := name
			if err := run(name, func() (func([]float64) []resultheap.Item, error) {
				ix, err := index.Build(name, encTrain, index.Options{Dim: d.Dim, Seed: cfg.Seed})
				if err != nil {
					return nil, err
				}
				return func(q []float64) []resultheap.Item { return ix.Search(q, cfg.K, 8*cfg.K) }, nil
			}); err != nil {
				return err
			}
		}
	}
	cfg.printf("\n(expected shape: graphs dominate IVF which dominates flat scan at matched recall,\n")
	cfg.printf(" reproducing the survey result behind the paper's choice of HNSW)\n")
	return nil
}
