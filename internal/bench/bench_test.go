package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"ppanns/internal/dataset"
)

// tinyCfg keeps experiment smoke tests in CI time.
func tinyCfg(buf *bytes.Buffer) Config {
	return Config{N: 600, Queries: 8, K: 5, Seed: 7, Out: buf}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 16 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	for _, e := range reg {
		if _, err := Lookup(e.ID); err != nil {
			t.Fatalf("Lookup(%q): %v", e.ID, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestCalibrateBeta(t *testing.T) {
	d := dataset.DeepLike(1500, 20, 3)
	beta, err := CalibrateBeta(d, 10, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if beta <= 0 {
		t.Fatalf("calibrated beta = %g", beta)
	}
	// The proxy recall at the calibrated beta must be near the target.
	r, err := sapRecallProxy(d, 10, beta, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.3 || r > 0.7 {
		t.Fatalf("proxy recall at calibrated beta = %.3f, want ≈0.5", r)
	}
	// Monotonicity: smaller beta ⇒ higher recall.
	rLow, err := sapRecallProxy(d, 10, beta/4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rLow < r {
		t.Fatalf("recall not monotone in beta: %.3f at β/4 vs %.3f at β", rLow, r)
	}
	if _, err := CalibrateBeta(d, 10, 1.5, 3); err == nil {
		t.Fatal("expected error for target outside (0,1)")
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Datasets = []string{"sift", "deep"}
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sift-like", "deep-like", "128", "96"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestAttackOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Attack(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"linear", "exponential", "logarithmic", "square", "DCE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("attack output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DCPE") || !strings.Contains(buf.String(), "AME") {
		t.Fatalf("fig8 output malformed:\n%s", buf.String())
	}
}

func TestFig4Tiny(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Datasets = []string{"deep"}
	if err := Fig4(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "beta=0") {
		t.Fatalf("fig4 output malformed:\n%s", buf.String())
	}
}

func TestFig10Tiny(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.N = 400
	cfg.Datasets = []string{"deep"}
	if err := Fig10(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1600") { // 4× base size row
		t.Fatalf("fig10 missing the x4 row:\n%s", out)
	}
}

func TestMaintainTiny(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.N = 500
	cfg.Queries = 5
	if err := Maintain(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recall@10") {
		t.Fatalf("maintain output malformed:\n%s", buf.String())
	}
}

func TestDeploymentMeasure(t *testing.T) {
	d := dataset.DeepLike(800, 10, 11)
	dep, err := newDeployment(d, coreParamsFor(d, 0.05, 11))
	if err != nil {
		t.Fatal(err)
	}
	p, err := dep.measure(5, searchOpts(8, 80))
	if err != nil {
		t.Fatal(err)
	}
	if p.Recall < 0.7 || p.QPS <= 0 || p.Latency <= 0 {
		t.Fatalf("implausible measurement: %+v", p)
	}
}

func TestSearchPerfTiny(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.JSONOut = t.TempDir() + "/BENCH_search.json"
	if err := SearchPerf(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"qps", "allocs/op", "profile written"} {
		if !strings.Contains(out, want) {
			t.Fatalf("perf output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(cfg.JSONOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep SearchPerfReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("profile is not valid JSON: %v", err)
	}
	if rep.Single.QPS <= 0 || rep.Config.N != 600 {
		t.Fatalf("implausible profile: %+v", rep)
	}
	if rep.Single.AllocsPerOp != 0 {
		t.Fatalf("steady-state search allocates %.1f objects/op, want 0", rep.Single.AllocsPerOp)
	}
	if rep.Mixed.Ops == 0 || rep.Mixed.Writes == 0 || rep.Mixed.FailedQueries != 0 {
		t.Fatalf("implausible mixed-workload section: %+v", rep.Mixed)
	}
	if rep.Mixed.Compactions == 0 {
		t.Fatalf("mixed workload never compacted: %+v", rep.Mixed)
	}
	if rep.Mixed.InsertSpeedup < 10 {
		t.Fatalf("delta insert only %.1f× faster than clone-and-swap", rep.Mixed.InsertSpeedup)
	}
}

func TestDurabilityTiny(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.JSONOut = t.TempDir() + "/BENCH_search.json"
	// Pre-seed the profile with another experiment's section: the merge
	// must add "durability" without dropping it.
	if err := os.WriteFile(cfg.JSONOut, []byte(`{"config":{"n":123}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Durability(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"no wal (reference)", "every=1", "loss 0", "profile written"} {
		if !strings.Contains(out, want) {
			t.Fatalf("durability output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(cfg.JSONOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep SearchPerfReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("profile is not valid JSON: %v", err)
	}
	if rep.Config.N != 123 {
		t.Fatalf("merge dropped the pre-existing config section: %+v", rep.Config)
	}
	dr := rep.Durability
	if dr == nil || len(dr.Policies) != 4 {
		t.Fatalf("implausible durability section: %+v", dr)
	}
	if dr.Reference.Policy != "none" || dr.Reference.WriteP50Micros <= 0 {
		t.Fatalf("implausible reference point: %+v", dr.Reference)
	}
	for _, pt := range dr.Policies {
		if pt.AckedWriteLoss != 0 || pt.RecoveredEpoch != uint64(pt.AckedWrites) {
			t.Fatalf("policy %s lost writes: %+v", pt.Policy, pt)
		}
		if pt.WALBytes == 0 || pt.OpsPerSec <= 0 {
			t.Fatalf("implausible policy point: %+v", pt)
		}
	}
	if dr.SyncEvery1WriteOverheadX <= 0 {
		t.Fatalf("overhead not quantified: %+v", dr)
	}
}
