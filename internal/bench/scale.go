package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
	"ppanns/internal/pq"
	"ppanns/internal/vec"
)

// ScaleReport is the committed million-vector profile of the compressed
// filter tier ("scale" experiment): the per-tier memory footprint, the
// FilterExact reference point, and the recall/latency curve over (M, k′)
// under FilterPQ, with the calibrated operating point called out. It lives
// as the "scale" section of BENCH_search.json, merged into whatever profile
// the "perf" experiment last wrote.
type ScaleReport struct {
	Generated string `json:"generated"`
	Dataset   string `json:"dataset"`
	N         int    `json:"n"`
	Dim       int    `json:"dim"`
	Queries   int    `json:"queries"`
	K         int    `json:"k"`
	Backend   string `json:"backend"`
	// BytesPerPoint is the serving tier's memory footprint split by tier.
	// SAP is the padded filter-index vector row, DCE the refine-phase
	// ciphertext record, PQCodes the compressed code row, PQBook the
	// codebook amortized across points.
	BytesPerPoint struct {
		SAP     float64 `json:"sap"`
		DCE     float64 `json:"dce"`
		PQCodes float64 `json:"pq_codes"`
		PQBook  float64 `json:"pq_book"`
	} `json:"bytes_per_point"`
	// TrafficReduction is the filter phase's per-candidate memory-traffic
	// ratio at the calibrated point: the 8·dim-byte SAP row an exact
	// candidate distance streams vs the M bytes a PQ lookup touches.
	TrafficReduction float64 `json:"traffic_reduction"`
	// RecallFloor is the acceptance bar the calibrated point must clear.
	RecallFloor float64 `json:"recall_floor"`
	// Exact is the FilterExact reference at the calibrated k′; Points the
	// FilterPQ sweep; Calibrated the tuner-chosen operating point.
	Exact      ScalePoint   `json:"exact"`
	Points     []ScalePoint `json:"points"`
	Calibrated ScalePoint   `json:"calibrated"`
}

// ScalePoint is one operating point of the scale profile. M is 0 on the
// FilterExact reference row.
type ScalePoint struct {
	M            int     `json:"m,omitempty"`
	KPrime       int     `json:"k_prime"`
	Recall       float64 `json:"recall"`
	QPS          float64 `json:"qps"`
	P50Micros    float64 `json:"p50_us"`
	FilterMicros float64 `json:"filter_us"`
}

// scaleRecallFloor is the acceptance bar: the calibrated (M, k′) point must
// hold Recall@k at or above it, or the experiment fails.
const scaleRecallFloor = 0.95

// scaleBeta matches the perf profile's DCPE operating point.
const scaleBeta = 0.3

// Scale ("scale") profiles the compressed filter tier at large n: one
// deployment (IVF backend — the graph builds don't fit a bench budget at
// 10⁶ on one core), a (M, k′) recall/latency sweep under FilterPQ against
// the FilterExact reference, and the per-tier bytes/point breakdown. The
// committed run uses -n 1000000; CI smokes the same path at -n 100000.
// Results merge into the "scale" section of the -json profile.
func Scale(cfg Config) error {
	cfg = cfg.withDefaults()
	datas, err := cfg.datasets("deep")
	if err != nil {
		return err
	}
	data := datas[0]
	k := cfg.K

	// Calibrate (M, k′) on a bounded proxy before the expensive build; the
	// full deployment then validates the chosen point at scale.
	tuned, err := CalibratePQ(data, k, scaleRecallFloor, scaleBeta, cfg.Seed)
	if err != nil {
		return err
	}
	cfg.printf("%-22s M=%d k′=%d (proxy recall %.3f, target %.2f)\n",
		"calibrated", tuned.M, tuned.KPrime, tuned.Recall, scaleRecallFloor)

	dep, err := newDeployment(data, core.Params{
		Dim: data.Dim, Beta: scaleBeta, Seed: cfg.Seed,
		Index: "ivf", PQ: true, PQM: tuned.M,
	})
	if err != nil {
		return err
	}
	gt := data.GroundTruth(k)

	var rep ScaleReport
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Dataset = data.Name
	rep.N = len(data.Train)
	rep.Dim = data.Dim
	rep.Queries = len(dep.tokens)
	rep.K = k
	rep.Backend = dep.server.Backend()
	rep.RecallFloor = scaleRecallFloor

	n := float64(len(data.Train))
	rep.BytesPerPoint.SAP = float64(8 * vec.PadStride(data.Dim))
	rep.BytesPerPoint.DCE = float64(8 * dep.edb.DCE.Stride())
	type tierSize struct{ codes, book float64 }
	sizeByM := map[int]tierSize{}
	// The (M, k′) sweep. The codebook retrains per M over the stored SAP
	// ciphertexts (BuildPQ — the server-side on-demand path), the snapshot
	// is republished, and every k′ rides the same codes.
	//
	// The committed operating point is selected from this measured grid —
	// the fastest point holding the recall floor at full scale — because
	// the proxy tuner's bounded-n recall is optimistic at large n (a fixed
	// k′ covers a shrinking fraction of an ever-more-confusable corpus);
	// the proxy seeds the build, the deployment decides.
	ms := []int{8, 16, 32}
	kPrimes := []int{4 * k, 8 * k, 16 * k, 32 * k}
	for _, m := range ms {
		if m > data.Dim {
			continue
		}
		if err := dep.edb.BuildPQ(pq.TrainConfig{M: m, Seed: cfg.Seed ^ 0x4bd}); err != nil {
			return err
		}
		sizeByM[m] = tierSize{
			codes: float64(dep.edb.PQ.Codes.SizeBytes()) / n,
			book:  float64(dep.edb.PQ.Book.SizeBytes()) / n,
		}
		srv, err := core.NewServer(dep.edb)
		if err != nil {
			return err
		}
		for _, kp := range kPrimes {
			opt := core.SearchOptions{
				KPrime: kp, EfSearch: kp, FilterDist: core.FilterPQ,
			}
			pt, err := scalePointOn(srv, dep.tokens, k, opt, gt)
			if err != nil {
				return err
			}
			pt.M = m
			rep.Points = append(rep.Points, pt)
			cfg.printf("%-22s M=%-3d k′=%-4d recall %.3f, %.0f qps, p50 %.0fµs (filter %.0fµs)\n",
				"pq filter", pt.M, pt.KPrime, pt.Recall, pt.QPS, pt.P50Micros, pt.FilterMicros)
			if pt.Recall >= scaleRecallFloor &&
				(rep.Calibrated.KPrime == 0 || pt.QPS > rep.Calibrated.QPS) {
				rep.Calibrated = pt
			}
		}
	}
	if rep.Calibrated.KPrime == 0 {
		return fmt.Errorf("bench: no (M, k′) point held the %.2f recall floor at n=%d", scaleRecallFloor, rep.N)
	}
	rep.TrafficReduction = float64(8*data.Dim) / float64(rep.Calibrated.M)
	rep.BytesPerPoint.PQCodes = sizeByM[rep.Calibrated.M].codes
	rep.BytesPerPoint.PQBook = sizeByM[rep.Calibrated.M].book

	// The exact reference at the calibrated k′: same backend, same beam,
	// only the candidate distance provider differs.
	exactOpt := core.SearchOptions{KPrime: rep.Calibrated.KPrime, EfSearch: rep.Calibrated.KPrime}
	rep.Exact, err = dep.scalePoint(k, exactOpt, gt)
	if err != nil {
		return err
	}
	cfg.printf("%-22s k′=%-4d recall %.3f, %.0f qps, p50 %.0fµs (filter %.0fµs)\n",
		"exact filter", rep.Exact.KPrime, rep.Exact.Recall, rep.Exact.QPS,
		rep.Exact.P50Micros, rep.Exact.FilterMicros)
	cfg.printf("%-22s M=%d k′=%d: recall %.3f (floor %.2f), %.0f qps, filter traffic %.0f× reduced\n",
		"operating point", rep.Calibrated.M, rep.Calibrated.KPrime, rep.Calibrated.Recall,
		scaleRecallFloor, rep.Calibrated.QPS, rep.TrafficReduction)
	cfg.printf("%-22s sap %.0f + dce %.0f vs pq %.1f (+%.2f codebook) bytes/point\n",
		"memory split", rep.BytesPerPoint.SAP, rep.BytesPerPoint.DCE,
		rep.BytesPerPoint.PQCodes, rep.BytesPerPoint.PQBook)

	if cfg.JSONOut != "" {
		if err := mergeScaleSection(cfg.JSONOut, &rep); err != nil {
			return err
		}
		cfg.printf("%-22s %s (scale section)\n", "profile written", cfg.JSONOut)
	}
	return nil
}

// scalePoint measures one operating point on the deployment's server.
func (d *deployment) scalePoint(k int, opt core.SearchOptions, gt [][]int) (ScalePoint, error) {
	return scalePointOn(d.server, d.tokens, k, opt, gt)
}

// scalePointOn runs every token once for warm-up/correctness and once
// timed, GC off, returning the point's recall, throughput and latency.
func scalePointOn(srv *core.Server, toks []*core.QueryToken, k int, opt core.SearchOptions, gt [][]int) (ScalePoint, error) {
	got := make([][]int, len(toks))
	var dst []int
	for i, tok := range toks {
		ids, _, err := srv.SearchInto(dst[:0], tok, k, opt)
		if err != nil {
			return ScalePoint{}, err
		}
		got[i] = append([]int(nil), ids...)
		dst = ids
	}
	lat := make([]time.Duration, len(toks))
	var filter time.Duration
	prevGC := debug.SetGCPercent(-1)
	start := time.Now()
	for i, tok := range toks {
		qStart := time.Now()
		ids, st, err := srv.SearchInto(dst[:0], tok, k, opt)
		if err != nil {
			debug.SetGCPercent(prevGC)
			return ScalePoint{}, err
		}
		lat[i] = time.Since(qStart)
		filter += st.FilterTime
		dst = ids
	}
	elapsed := time.Since(start)
	debug.SetGCPercent(prevGC)
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	nq := len(toks)
	return ScalePoint{
		KPrime:       opt.KPrime,
		Recall:       dataset.MeanRecall(got, gt),
		QPS:          float64(nq) / elapsed.Seconds(),
		P50Micros:    float64(lat[nq/2].Nanoseconds()) / 1e3,
		FilterMicros: float64(filter.Nanoseconds()) / float64(nq) / 1e3,
	}, nil
}

// mergeScaleSection writes the scale report into the "scale" section of the
// profile at path, preserving whatever the "perf" experiment committed there
// — the two experiments regenerate their own sections independently.
func mergeScaleSection(path string, sr *ScaleReport) error {
	var rep SearchPerfReport
	if blob, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(blob, &rep); err != nil {
			return fmt.Errorf("bench: parsing existing profile %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("bench: reading profile %s: %w", path, err)
	}
	rep.Scale = sr
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// Tune ("tune") runs the recall-targeted (M, k′) tuner standalone and
// prints the chosen operating point per configured dataset.
func Tune(cfg Config) error {
	cfg = cfg.withDefaults()
	datas, err := cfg.datasets("deep")
	if err != nil {
		return err
	}
	for _, data := range datas {
		pt, err := CalibratePQ(data, cfg.K, scaleRecallFloor, scaleBeta, cfg.Seed)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", data.Name, err)
		}
		cfg.printf("%-12s M=%-3d k′=%-4d recall %.3f (target %.2f, %.1f bytes/point codes)\n",
			data.Name, pt.M, pt.KPrime, pt.Recall, scaleRecallFloor, float64(pt.M))
	}
	return nil
}
