// Package bench is the experiment harness for Section VII: it regenerates
// every table and figure of the paper's evaluation at configurable scale,
// printing the same rows/series the paper reports (recall/QPS curves,
// latency-vs-recall, per-side cost splits, scalability trends).
//
// Experiments are registered by id ("table1", "fig4" … "fig10",
// "overhead", "attack", "maintain") and dispatched by cmd/ppanns-bench.
// Absolute numbers differ from the paper's C++/Xeon testbed; the shapes —
// who wins, by what order of magnitude, how curves bend — are the
// reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
)

// Config sets the scale and output of an experiment run.
type Config struct {
	// N is the database size per dataset (default 8000).
	N int
	// Queries is the query-set size (default 50).
	Queries int
	// K is the result size k (default 10, as in the paper).
	K int
	// Seed fixes data generation and key material.
	Seed uint64
	// Datasets restricts the corpora ("sift", "gist", "glove", "deep");
	// empty means the experiment's default set.
	Datasets []string
	// Full lifts the scale reductions that keep AME/GIST-sized pieces
	// tractable on laptops.
	Full bool
	// Out receives the report (default os.Stdout via the CLI).
	Out io.Writer
	// JSONOut, when non-empty, is the path experiments with a
	// machine-readable profile (currently "perf") write it to.
	JSONOut string
	// Baseline, when non-empty, names a committed profile (the repo's
	// BENCH_search.json) the "perf" experiment compares its fresh
	// single-stream qps against, failing on a regression beyond
	// BaselineTolerance. Tolerance-gated, not flaky-tight: CI hosts jitter,
	// so only a drop that cannot be noise should fail the job.
	Baseline string
	// BaselineTolerance is the allowed fractional qps drop vs the baseline
	// (default 0.25, i.e. fail only when >25% slower).
	BaselineTolerance float64
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 8000
	}
	if c.Queries <= 0 {
		c.Queries = 50
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) error
}

// Registry lists all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table I: dataset statistics", Table1},
		{"fig4", "Figure 4: effect of β on filter-phase recall/QPS", Fig4},
		{"fig5", "Figure 5: effect of Ratio_k on recall/QPS", Fig5},
		{"fig6", "Figure 6: HNSW-DCE vs HNSW-AME vs HNSW(filter) latency", Fig6},
		{"fig7", "Figure 7: QPS vs baselines at matched recall", Fig7},
		{"fig8", "Figure 8: per-vector encryption cost", Fig8},
		{"fig9", "Figure 9: server/user cost split at Recall@10 = 0.9", Fig9},
		{"fig10", "Figure 10: scalability with database size", Fig10},
		{"overhead", "Sec. VII-B: overhead vs plaintext HNSW at recall 0.9", Overhead},
		{"attack", "Sec. III: KPA attacks on ASPE variants (control: DCE)", Attack},
		{"maintain", "Sec. V-D: index maintenance under churn", Maintain},
		{"indexes", "Sec. V-A ablation: HNSW vs NSG vs IVF vs flat scan as filter backend", Indexes},
		{"perf", "Search hot-path profile: qps, latency, cost split, allocs (BENCH_search.json)", SearchPerf},
		{"tune", "PQ tier tuner: cheapest (M, k′) meeting the recall target", Tune},
		{"scale", "Million-vector compressed filter tier: (M, k′) curve, bytes/point (BENCH_search.json scale section)", Scale},
		{"durability", "WAL sync-policy cost and zero-loss recovery check (BENCH_search.json durability section)", Durability},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// datasets materializes the configured corpora.
func (c Config) datasets(defaults ...string) ([]*dataset.Data, error) {
	names := c.Datasets
	if len(names) == 0 {
		names = defaults
	}
	out := make([]*dataset.Data, 0, len(names))
	for _, name := range names {
		n := c.N
		if (name == "gist" || name == "gist-like") && !c.Full && n > 4000 {
			// GIST-like is 960-dimensional; cap its default size so the
			// laptop run stays in minutes. -full lifts the cap.
			n = 4000
		}
		d, err := dataset.ByName(name, n, c.Queries, c.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// deployment is a measured PP-ANNS deployment over one corpus with
// pre-encrypted query tokens, so timing isolates the server side — the
// paper's measurement methodology ("we focus on the server-side search
// performance").
type deployment struct {
	data   *dataset.Data
	params core.Params
	owner  *core.DataOwner
	user   *core.User
	server *core.Server
	edb    *core.EncryptedDatabase
	tokens []*core.QueryToken
}

func newDeployment(data *dataset.Data, params core.Params) (*deployment, error) {
	owner, err := core.NewDataOwner(params)
	if err != nil {
		return nil, err
	}
	edb, err := owner.EncryptDatabase(data.Train)
	if err != nil {
		return nil, err
	}
	server, err := core.NewServer(edb)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(owner.UserKey())
	if err != nil {
		return nil, err
	}
	d := &deployment{data: data, params: params, owner: owner, user: user, server: server, edb: edb}
	d.tokens = make([]*core.QueryToken, len(data.Queries))
	for i, q := range data.Queries {
		tok, err := user.Query(q)
		if err != nil {
			return nil, err
		}
		d.tokens[i] = tok
	}
	return d, nil
}

// point is one (recall, throughput/latency) measurement.
type point struct {
	Ef      int
	Recall  float64
	QPS     float64
	Latency time.Duration
	Stats   core.SearchStats
}

// measure runs all queries once with the given options, single-threaded,
// returning mean recall and server-side QPS/latency.
func (d *deployment) measure(k int, opt core.SearchOptions) (point, error) {
	gt := d.data.GroundTruth(k)
	got := make([][]int, len(d.tokens))
	var agg core.SearchStats
	start := time.Now()
	for i, tok := range d.tokens {
		ids, st, err := d.server.SearchWithStats(tok, k, opt)
		if err != nil {
			return point{}, err
		}
		got[i] = ids
		agg.Candidates += st.Candidates
		agg.Comparisons += st.Comparisons
		agg.FilterTime += st.FilterTime
		agg.RefineTime += st.RefineTime
	}
	elapsed := time.Since(start)
	nq := len(d.tokens)
	return point{
		Ef:      opt.EfSearch,
		Recall:  dataset.MeanRecall(got, gt),
		QPS:     float64(nq) / elapsed.Seconds(),
		Latency: elapsed / time.Duration(nq),
		Stats:   agg,
	}, nil
}

// sweep measures a recall/QPS curve over efSearch values.
func (d *deployment) sweep(k int, opt core.SearchOptions, efs []int) ([]point, error) {
	pts := make([]point, 0, len(efs))
	for _, ef := range efs {
		o := opt
		o.EfSearch = ef
		p, err := d.measure(k, o)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// defaultEfs is the beam-width sweep the recall/QPS curves use.
func defaultEfs(k int) []int {
	base := []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}
	efs := make([]int, 0, len(base))
	for _, e := range base {
		ef := e * k / 10
		if ef < 1 {
			ef = 1
		}
		efs = append(efs, ef)
	}
	sort.Ints(efs)
	return efs
}

// fmtPoints renders a curve as "ef=.. recall=.. qps=.." columns.
func fmtPoints(w io.Writer, label string, pts []point) {
	fmt.Fprintf(w, "%-22s", label)
	for _, p := range pts {
		fmt.Fprintf(w, " | ef=%-4d r=%.3f qps=%-8.1f", p.Ef, p.Recall, p.QPS)
	}
	fmt.Fprintln(w)
}
