package bench

import (
	"fmt"
	"time"

	"ppanns/internal/ame"
	"ppanns/internal/baselines"
	"ppanns/internal/core"
	"ppanns/internal/dataset"
	"ppanns/internal/dce"
	"ppanns/internal/dcpe"
	"ppanns/internal/hnsw"
	"ppanns/internal/lsh"
	"ppanns/internal/rng"
	"ppanns/internal/vec"
)

// allNames is the paper's four-dataset default.
var allNames = []string{"sift", "gist", "glove", "deep"}

// Table1 prints the dataset statistics table (Table I), extended with the
// value ranges the synthetic generators target and the admissible β range.
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	ds, err := cfg.datasets(allNames...)
	if err != nil {
		return err
	}
	cfg.printf("# Table I — dataset statistics (synthetic stand-ins; see DESIGN.md §3)\n")
	cfg.printf("%-12s %6s %9s %9s %10s %10s %12s\n",
		"dataset", "dim", "#vectors", "#queries", "max|x|", "mean‖x‖", "β∈[√M,2M√d]")
	for _, d := range ds {
		st := d.Describe()
		cfg.printf("%-12s %6d %9d %9d %10.2f %10.2f [%.2f, %.0f]\n",
			st.Name, st.Dim, st.N, st.Queries, st.MaxAbs, st.MeanNorm, st.BetaLo, st.BetaHi)
	}
	return nil
}

// Fig4 reproduces Figure 4: filter-phase-only recall/QPS curves for four β
// values per dataset (β = 0, calibrated/2, calibrated, 2·calibrated).
func Fig4(cfg Config) error {
	cfg = cfg.withDefaults()
	ds, err := cfg.datasets(allNames...)
	if err != nil {
		return err
	}
	cfg.printf("# Figure 4 — effect of β on filter-phase search (k'=k=%d)\n", cfg.K)
	for _, d := range ds {
		cal, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
		if err != nil {
			return err
		}
		cfg.printf("\n## %s (n=%d, calibrated β=%.3g)\n", d.Name, len(d.Train), cal)
		for _, beta := range []float64{0, cal / 2, cal, 2 * cal} {
			dep, err := newDeployment(d, core.Params{
				Dim: d.Dim, Beta: beta, M: 16, EfConstruction: 200, Seed: cfg.Seed,
			})
			if err != nil {
				return err
			}
			pts, err := dep.sweep(cfg.K, core.SearchOptions{KPrime: cfg.K, Refine: core.RefineNone}, defaultEfs(cfg.K))
			if err != nil {
				return err
			}
			fmtPoints(cfg.Out, fmt.Sprintf("beta=%-8.3g", beta), pts)
		}
	}
	cfg.printf("\n(expected shape: recall ceiling decreases as β grows; β=0 approaches 1.0)\n")
	return nil
}

// Fig5 reproduces Figure 5: full filter-and-refine curves across
// Ratio_k ∈ {1, 2, 4, …, 128}.
func Fig5(cfg Config) error {
	cfg = cfg.withDefaults()
	ds, err := cfg.datasets(allNames...)
	if err != nil {
		return err
	}
	cfg.printf("# Figure 5 — effect of Ratio_k (k'=Ratio_k·k, k=%d)\n", cfg.K)
	for _, d := range ds {
		beta, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
		if err != nil {
			return err
		}
		dep, err := newDeployment(d, core.Params{
			Dim: d.Dim, Beta: beta, M: 16, EfConstruction: 200, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		cfg.printf("\n## %s (n=%d, β=%.3g)\n", d.Name, len(d.Train), beta)
		for _, ratio := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			pts, err := dep.sweep(cfg.K, core.SearchOptions{RatioK: ratio}, defaultEfs(cfg.K*min(ratio, 16)))
			if err != nil {
				return err
			}
			fmtPoints(cfg.Out, fmt.Sprintf("Ratio_k=%-4d", ratio), pts)
		}
	}
	cfg.printf("\n(expected shape: larger Ratio_k raises the recall ceiling, lowers QPS)\n")
	return nil
}

// Fig6 reproduces Figure 6: latency vs recall for HNSW-DCE (ours),
// HNSW-AME, and HNSW(filter-only) sharing one index.
func Fig6(cfg Config) error {
	cfg = cfg.withDefaults()
	defaults := []string{"sift", "glove", "deep"}
	if cfg.Full {
		defaults = allNames // gist-like AME trapdoors are ~0.5 GB each
	}
	ds, err := cfg.datasets(defaults...)
	if err != nil {
		return err
	}
	cfg.printf("# Figure 6 — HNSW-DCE vs HNSW-AME vs HNSW(filter), latency per query\n")
	for _, d := range ds {
		beta, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
		if err != nil {
			return err
		}
		dep, err := newDeployment(d, core.Params{
			Dim: d.Dim, Beta: beta, M: 16, EfConstruction: 200, Seed: cfg.Seed, WithAME: true,
		})
		if err != nil {
			return err
		}
		// Few AME queries: each trapdoor is 16 (2d+6)² matrices.
		ameTokens := dep.tokens
		if len(ameTokens) > 10 {
			ameTokens = ameTokens[:10]
		}
		cfg.printf("\n## %s (n=%d, β=%.3g, k=%d)\n", d.Name, len(d.Train), beta, cfg.K)
		efs := []int{cfg.K, cfg.K * 2, cfg.K * 4, cfg.K * 8, cfg.K * 16}
		for _, mode := range []core.RefineMode{core.RefineNone, core.RefineDCE, core.RefineAME} {
			toks := dep.tokens
			if mode == core.RefineAME {
				toks = ameTokens
			}
			cfg.printf("%-14s", "HNSW-"+mode.String())
			for _, ef := range efs {
				p, err := measureTokens(dep, toks, cfg.K, core.SearchOptions{RatioK: 16, EfSearch: ef, Refine: mode})
				if err != nil {
					return err
				}
				cfg.printf(" | ef=%-4d r=%.3f lat=%-10v", ef, p.Recall, p.Latency.Round(time.Microsecond))
			}
			cfg.printf("\n")
		}
	}
	cfg.printf("\n(expected shape: DCE ≥100× faster than AME at equal recall; DCE close to filter-only)\n")
	return nil
}

// measureTokens is deployment.measure over an explicit token subset.
func measureTokens(dep *deployment, tokens []*core.QueryToken, k int, opt core.SearchOptions) (point, error) {
	gt := dep.data.GroundTruth(k)
	got := make([][]int, len(tokens))
	start := time.Now()
	for i, tok := range tokens {
		ids, err := dep.server.Search(tok, k, opt)
		if err != nil {
			return point{}, err
		}
		got[i] = ids
	}
	elapsed := time.Since(start)
	return point{
		Ef:      opt.EfSearch,
		Recall:  dataset.MeanRecall(got, gt[:len(tokens)]),
		QPS:     float64(len(tokens)) / elapsed.Seconds(),
		Latency: elapsed / time.Duration(len(tokens)),
	}, nil
}

// lshDefaults returns per-dataset LSH parameters that track each corpus's
// distance scale (quantization width ≈ the nearest-neighbor distance).
func lshDefaults(d *dataset.Data, seed uint64) lsh.Config {
	// Estimate the NN distance from a small sample.
	sample := len(d.Train)
	if sample > 400 {
		sample = 400
	}
	var nn float64
	for i := 0; i < 40 && i < len(d.Queries); i++ {
		ids := dataset.ExactKNN(d.Train[:sample], d.Queries[i], 1)
		nn += vec.Dist(d.Train[ids[0]], d.Queries[i])
	}
	nn /= 40
	return lsh.Config{Dim: d.Dim, Tables: 10, Hashes: 6, W: 2 * nn, Seed: seed}
}

// Fig7 reproduces Figure 7: QPS of ours vs RS-SANN, PACM-ANN and PRI-ANN,
// with each system tuned toward the recall targets 0.85/0.90/0.95.
func Fig7(cfg Config) error {
	cfg = cfg.withDefaults()
	defaults := []string{"sift", "glove", "deep"}
	if cfg.Full {
		defaults = allNames
	}
	ds, err := cfg.datasets(defaults...)
	if err != nil {
		return err
	}
	cfg.printf("# Figure 7 — QPS vs baselines (k=%d); PIR-based baselines use %d queries\n", cfg.K, baselineQueries(cfg))
	for _, d := range ds {
		beta, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
		if err != nil {
			return err
		}
		cfg.printf("\n## %s (n=%d)\n", d.Name, len(d.Train))
		systems, err := buildAllSystems(d, beta, cfg)
		if err != nil {
			return err
		}
		cfg.printf("%-10s %12s %12s %14s %14s %10s\n",
			"system", "recall@10", "QPS", "server(ms/q)", "user(ms/q)", "comm(KB/q)")
		for _, entry := range systems {
			nq := len(d.Queries)
			if entry.slow {
				nq = baselineQueries(cfg)
			}
			rec, costs, err := runSystem(entry.sys, d, cfg.K, nq)
			if err != nil {
				return err
			}
			total := costs.ServerTime + costs.UserTime
			qps := float64(nq) / total.Seconds()
			cfg.printf("%-10s %12.3f %12.1f %14.3f %14.3f %10.1f\n",
				entry.sys.Name(), rec, qps,
				msPer(costs.ServerTime, nq), msPer(costs.UserTime, nq),
				float64(costs.UploadBytes+costs.DownloadBytes)/float64(nq)/1024)
		}
	}
	cfg.printf("\n(expected shape: PP-ANNS orders of magnitude faster; paper reports up to 1000×)\n")
	return nil
}

type systemEntry struct {
	sys  baselines.System
	slow bool // PIR-based: measure on fewer queries
}

// buildAllSystems constructs the four systems over one corpus with
// comparable tuning.
func buildAllSystems(d *dataset.Data, beta float64, cfg Config) ([]systemEntry, error) {
	ours, err := baselines.NewOursFromData(d.Train, core.Params{
		Dim: d.Dim, Beta: beta, M: 16, EfConstruction: 200, Seed: cfg.Seed,
	}, core.SearchOptions{RatioK: 16, EfSearch: 16 * cfg.K})
	if err != nil {
		return nil, err
	}
	lshCfg := lshDefaults(d, cfg.Seed)
	rs, err := baselines.NewRSSANN(d.Train, baselines.RSSANNConfig{
		LSH: lshCfg, Probes: 8, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	pacm, err := baselines.NewPACMANN(d.Train, baselines.PACMANNConfig{
		Graph: hnsw.Config{M: 16, EfConstruction: 200},
		Beam:  8, MaxRounds: 10, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	pri, err := baselines.NewPRIANN(d.Train, baselines.PRIANNConfig{
		LSH: lshCfg, BucketCap: 64, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return []systemEntry{
		{ours, false}, {rs, false}, {pri, true}, {pacm, true},
	}, nil
}

func baselineQueries(cfg Config) int {
	if cfg.Full {
		return cfg.Queries
	}
	nq := cfg.Queries
	if nq > 10 {
		nq = 10
	}
	return nq
}

func runSystem(sys baselines.System, d *dataset.Data, k, nq int) (float64, baselines.Costs, error) {
	gt := d.GroundTruth(k)
	var total baselines.Costs
	got := make([][]int, nq)
	for i := 0; i < nq; i++ {
		ids, c, err := sys.Search(d.Queries[i], k)
		if err != nil {
			return 0, total, err
		}
		got[i] = ids
		total.Add(c)
	}
	return dataset.MeanRecall(got, gt[:nq]), total, nil
}

func msPer(t time.Duration, n int) float64 {
	return t.Seconds() * 1000 / float64(n)
}

// Fig8 reproduces Figure 8: per-vector encryption cost of DCPE, DCE and
// AME across the datasets' dimensionalities.
func Fig8(cfg Config) error {
	cfg = cfg.withDefaults()
	dims := []int{96, 100, 128}
	if cfg.Full {
		dims = append(dims, 960)
	}
	cfg.printf("# Figure 8 — per-vector encryption cost (µs/vector; AME keygen dominates setup)\n")
	cfg.printf("%-8s %14s %14s %14s\n", "dim", "DCPE(µs)", "DCE(µs)", "AME(µs)")
	r := rng.NewSeeded(cfg.Seed)
	for _, dim := range dims {
		vectors := make([][]float64, 64)
		for i := range vectors {
			vectors[i] = rng.Gaussian(r, nil, dim)
		}
		sapKey, err := dcpe.KeyGen(rng.Derive(r, 1), dim, 1024, 1)
		if err != nil {
			return err
		}
		dceKey, err := dce.KeyGen(rng.Derive(r, 2), dim)
		if err != nil {
			return err
		}
		ameKey, err := ame.KeyGen(rng.Derive(r, 3), dim)
		if err != nil {
			return err
		}
		timeIt := func(enc func([]float64)) float64 {
			start := time.Now()
			for _, v := range vectors {
				enc(v)
			}
			return time.Since(start).Seconds() * 1e6 / float64(len(vectors))
		}
		sap := timeIt(func(v []float64) { sapKey.Encrypt(v) })
		dceT := timeIt(func(v []float64) { dceKey.Encrypt(v) })
		ameT := timeIt(func(v []float64) { ameKey.Encrypt(v) })
		cfg.printf("%-8d %14.1f %14.1f %14.1f\n", dim, sap, dceT, ameT)
	}
	cfg.printf("\n(expected shape: DCPE < DCE ≪ AME)\n")
	return nil
}

// Fig9 reproduces Figure 9: the per-side cost split of every system tuned
// toward Recall@10 = 0.9.
func Fig9(cfg Config) error {
	cfg = cfg.withDefaults()
	defaults := []string{"sift", "deep"}
	if cfg.Full {
		defaults = allNames
	}
	ds, err := cfg.datasets(defaults...)
	if err != nil {
		return err
	}
	cfg.printf("# Figure 9 — cost split at target Recall@%d ≈ 0.9\n", cfg.K)
	for _, d := range ds {
		beta, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
		if err != nil {
			return err
		}
		cfg.printf("\n## %s (n=%d)\n", d.Name, len(d.Train))
		systems, err := buildAllSystems(d, beta, cfg)
		if err != nil {
			return err
		}
		cfg.printf("%-10s %10s %14s %14s %12s %12s %8s\n",
			"system", "recall", "server(ms/q)", "user(ms/q)", "up(KB/q)", "down(KB/q)", "rounds")
		for _, entry := range systems {
			nq := len(d.Queries)
			if entry.slow {
				nq = baselineQueries(cfg)
			}
			rec, costs, err := runSystem(entry.sys, d, cfg.K, nq)
			if err != nil {
				return err
			}
			cfg.printf("%-10s %10.3f %14.3f %14.3f %12.2f %12.2f %8.1f\n",
				entry.sys.Name(), rec,
				msPer(costs.ServerTime, nq), msPer(costs.UserTime, nq),
				float64(costs.UploadBytes)/float64(nq)/1024,
				float64(costs.DownloadBytes)/float64(nq)/1024,
				float64(costs.Rounds)/float64(nq))
		}
	}
	cfg.printf("\n(expected shape: ours server-dominated with tiny user cost and KB-scale traffic;\n")
	cfg.printf(" RS-SANN heavy user+download; PIR baselines heavy server+rounds)\n")
	return nil
}

// Fig10 reproduces Figure 10: latency scaling across ×1..×4 database sizes
// at a fixed recall operating point.
func Fig10(cfg Config) error {
	cfg = cfg.withDefaults()
	names := cfg.Datasets
	if len(names) == 0 {
		names = []string{"sift", "deep"}
	}
	cfg.printf("# Figure 10 — scalability: latency at ef=%d as n grows (paper: 25M–100M; here %d–%d)\n",
		16*cfg.K, cfg.N, 4*cfg.N)
	for _, name := range names {
		cfg.printf("\n## %s\n", name)
		cfg.printf("%-10s %12s %12s %12s %14s\n", "n", "recall@10", "QPS", "lat(ms)", "lat/lat(x1)")
		var base float64
		for mult := 1; mult <= 4; mult++ {
			n := cfg.N * mult
			d, err := dataset.ByName(name, n, cfg.Queries, cfg.Seed)
			if err != nil {
				return err
			}
			beta, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
			if err != nil {
				return err
			}
			dep, err := newDeployment(d, core.Params{
				Dim: d.Dim, Beta: beta, M: 16, EfConstruction: 200, Seed: cfg.Seed,
			})
			if err != nil {
				return err
			}
			p, err := dep.measure(cfg.K, core.SearchOptions{RatioK: 16, EfSearch: 16 * cfg.K})
			if err != nil {
				return err
			}
			lat := p.Latency.Seconds() * 1000
			if mult == 1 {
				base = lat
			}
			cfg.printf("%-10d %12.3f %12.1f %12.3f %14.2f\n", n, p.Recall, p.QPS, lat, lat/base)
		}
	}
	cfg.printf("\n(expected shape: latency grows sublinearly — 4× data ≪ 4× latency)\n")
	return nil
}

// Overhead reproduces the Section VII-B closing comparison: the cost of the
// full PP-ANNS scheme relative to plaintext HNSW at matched recall ≈ 0.9
// (paper: 5×, 7×, 3×, 4× on the four datasets).
func Overhead(cfg Config) error {
	cfg = cfg.withDefaults()
	ds, err := cfg.datasets(allNames...)
	if err != nil {
		return err
	}
	cfg.printf("# Overhead vs plaintext HNSW at Recall@%d ≈ 0.9\n", cfg.K)
	cfg.printf("%-12s %12s %12s %12s %12s %10s\n",
		"dataset", "plain r", "plain ms/q", "ours r", "ours ms/q", "overhead")
	for _, d := range ds {
		beta, err := CalibrateBeta(d, cfg.K, 0.5, cfg.Seed)
		if err != nil {
			return err
		}
		// Plaintext HNSW at the recall target.
		g, err := hnsw.New(hnsw.Config{Dim: d.Dim, M: 16, EfConstruction: 200, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		for _, v := range d.Train {
			g.Add(v)
		}
		gt := d.GroundTruth(cfg.K)
		plainAt := func(ef int) (float64, time.Duration) {
			got := make([][]int, len(d.Queries))
			start := time.Now()
			for i, q := range d.Queries {
				res := g.Search(q, cfg.K, ef)
				ids := make([]int, len(res))
				for j, it := range res {
					ids[j] = it.ID
				}
				got[i] = ids
			}
			el := time.Since(start) / time.Duration(len(d.Queries))
			return dataset.MeanRecall(got, gt), el
		}
		var plainRec float64
		var plainLat time.Duration
		for _, ef := range []int{20, 40, 80, 160, 320} {
			plainRec, plainLat = plainAt(ef)
			if plainRec >= 0.9 {
				break
			}
		}

		dep, err := newDeployment(d, core.Params{
			Dim: d.Dim, Beta: beta, M: 16, EfConstruction: 200, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		var ours point
		for _, ef := range []int{4 * cfg.K, 8 * cfg.K, 16 * cfg.K, 32 * cfg.K, 64 * cfg.K} {
			ours, err = dep.measure(cfg.K, core.SearchOptions{RatioK: 16, EfSearch: ef})
			if err != nil {
				return err
			}
			if ours.Recall >= 0.9 {
				break
			}
		}
		cfg.printf("%-12s %12.3f %12.3f %12.3f %12.3f %9.1fx\n",
			d.Name, plainRec, plainLat.Seconds()*1000,
			ours.Recall, ours.Latency.Seconds()*1000,
			ours.Latency.Seconds()/plainLat.Seconds())
	}
	cfg.printf("\n(paper reports 5x/7x/3x/4x on Sift1M/Gist/Glove/Deep1M)\n")
	return nil
}
