package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
	"ppanns/internal/index"
	"ppanns/internal/shard"
)

// SearchPerfReport is the machine-readable search-performance profile the
// "perf" experiment emits (BENCH_search.json). It is the repo's standing
// baseline: later PRs regenerate it and diff qps/latency/allocs against
// the committed numbers before touching the hot path.
type SearchPerfReport struct {
	// Generated is the RFC3339 timestamp of the run.
	Generated string `json:"generated"`
	// Config echoes the run's scale so baselines compare like-for-like.
	Config struct {
		Dataset string `json:"dataset"`
		N       int    `json:"n"`
		Dim     int    `json:"dim"`
		Queries int    `json:"queries"`
		K       int    `json:"k"`
		RatioK  int    `json:"ratio_k"`
		Ef      int    `json:"ef_search"`
		Backend string `json:"backend"`
		Seed    uint64 `json:"seed"`
	} `json:"config"`
	// Single profiles the sequential (one-query-at-a-time) hot path.
	Single struct {
		QPS         float64 `json:"qps"`
		P50Micros   float64 `json:"p50_us"`
		P99Micros   float64 `json:"p99_us"`
		FilterMicro float64 `json:"filter_us"` // mean per query
		RefineMicro float64 `json:"refine_us"` // mean per query
		Comparisons float64 `json:"comparisons_per_query"`
		Recall      float64 `json:"recall"`
		AllocsPerOp float64 `json:"allocs_per_op"` // steady-state SearchInto
	} `json:"single"`
	// Batch profiles SearchBatch across all cores.
	Batch struct {
		QPS         float64 `json:"qps"`
		Parallelism int     `json:"parallelism"`
	} `json:"batch"`
	// Sharded profiles the scatter-gather tier over a 2-way split of the
	// same database (in-process shards, so the numbers isolate the
	// coordination overhead: fan-out, per-shard search, candidate-merge),
	// directly comparable to Single/Batch above.
	Sharded struct {
		Shards   int     `json:"shards"`
		QPS      float64 `json:"qps"`
		BatchQPS float64 `json:"batch_qps"`
		Recall   float64 `json:"recall"`
	} `json:"sharded"`
}

// SearchPerf ("perf") profiles the zero-allocation search hot path — qps,
// latency percentiles, the filter/refine cost split, secure-comparison
// counts, and steady-state allocations per query — and, when the CLI's
// -json flag names a path, writes the profile as JSON.
func SearchPerf(cfg Config) error {
	cfg = cfg.withDefaults()
	datas, err := cfg.datasets("deep")
	if err != nil {
		return err
	}
	data := datas[0]
	dep, err := newDeployment(data, core.Params{
		Dim: data.Dim, Beta: 0.3, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	k := cfg.K
	const ratioK = 16
	opt := core.SearchOptions{RatioK: ratioK, EfSearch: ratioK * k}

	// Warm-up: size every pooled buffer before measuring.
	var dst []int
	for _, tok := range dep.tokens {
		if dst, _, err = dep.server.SearchInto(dst, tok, k, opt); err != nil {
			return err
		}
	}

	// Sequential pass: per-query latency distribution plus the cost split.
	lat := make([]time.Duration, len(dep.tokens))
	got := make([][]int, len(dep.tokens))
	var agg core.SearchStats
	start := time.Now()
	for i, tok := range dep.tokens {
		qStart := time.Now()
		ids, st, err := dep.server.SearchInto(dst[:0], tok, k, opt)
		if err != nil {
			return err
		}
		lat[i] = time.Since(qStart)
		got[i] = append([]int(nil), ids...)
		dst = ids
		agg.Comparisons += st.Comparisons
		agg.FilterTime += st.FilterTime
		agg.RefineTime += st.RefineTime
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	nq := len(dep.tokens)
	pctl := func(p float64) float64 {
		i := int(p * float64(nq-1))
		return float64(lat[i].Nanoseconds()) / 1e3
	}

	// Steady-state allocation count of the pooled hot path. A GC cycle
	// landing mid-measurement can drain the scratch pools and charge
	// their refill to one unlucky run, so take the minimum of a few
	// attempts — the pools refill immediately and the clean attempts show
	// the true steady state.
	qi := 0
	allocs := math.Inf(1)
	for attempt := 0; attempt < 3; attempt++ {
		a := testing.AllocsPerRun(64, func() {
			var err error
			if dst, _, err = dep.server.SearchInto(dst, dep.tokens[qi%nq], k, opt); err != nil {
				panic(err)
			}
			qi++
		})
		if a < allocs {
			allocs = a
		}
		if allocs == 0 {
			break
		}
	}

	// Batch pass: whole query set across all cores.
	workers := runtime.GOMAXPROCS(0)
	const batchRounds = 3
	bStart := time.Now()
	for r := 0; r < batchRounds; r++ {
		if _, err := dep.server.SearchBatch(dep.tokens, k, opt, workers); err != nil {
			return err
		}
	}
	batchElapsed := time.Since(bStart)

	// Sharded pass: the same database split 2 ways behind a scatter-gather
	// coordinator, so the profile tracks what the horizontal tier costs
	// (and buys) against the single-server numbers above.
	const nShards = 2
	parts, err := dep.edb.Split(nShards, index.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	members := make([]shard.Shard, nShards)
	for s, p := range parts {
		srv, err := core.NewServer(p)
		if err != nil {
			return err
		}
		members[s] = shard.Local{Srv: srv}
	}
	coord, err := shard.NewCoordinator(members)
	if err != nil {
		return err
	}
	shardedGot := make([][]int, len(dep.tokens))
	for i, tok := range dep.tokens { // warm-up + correctness capture
		ids, err := coord.Search(tok, k, opt)
		if err != nil {
			return err
		}
		shardedGot[i] = ids
	}
	sStart := time.Now()
	for _, tok := range dep.tokens {
		if _, err := coord.Search(tok, k, opt); err != nil {
			return err
		}
	}
	shardedElapsed := time.Since(sStart)
	sbStart := time.Now()
	for r := 0; r < batchRounds; r++ {
		if _, err := coord.SearchBatch(dep.tokens, k, opt); err != nil {
			return err
		}
	}
	shardedBatchElapsed := time.Since(sbStart)

	var rep SearchPerfReport
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Config.Dataset = data.Name
	rep.Config.N = len(data.Train)
	rep.Config.Dim = data.Dim
	rep.Config.Queries = nq
	rep.Config.K = k
	rep.Config.RatioK = ratioK
	rep.Config.Ef = opt.EfSearch
	rep.Config.Backend = dep.server.Backend()
	rep.Config.Seed = cfg.Seed
	rep.Single.QPS = float64(nq) / elapsed.Seconds()
	rep.Single.P50Micros = pctl(0.50)
	rep.Single.P99Micros = pctl(0.99)
	rep.Single.FilterMicro = float64(agg.FilterTime.Nanoseconds()) / float64(nq) / 1e3
	rep.Single.RefineMicro = float64(agg.RefineTime.Nanoseconds()) / float64(nq) / 1e3
	gt := data.GroundTruth(k)
	rep.Single.Comparisons = float64(agg.Comparisons) / float64(nq)
	rep.Single.Recall = dataset.MeanRecall(got, gt)
	rep.Single.AllocsPerOp = allocs
	rep.Batch.QPS = float64(nq*batchRounds) / batchElapsed.Seconds()
	rep.Batch.Parallelism = workers
	rep.Sharded.Shards = nShards
	rep.Sharded.QPS = float64(nq) / shardedElapsed.Seconds()
	rep.Sharded.BatchQPS = float64(nq*batchRounds) / shardedBatchElapsed.Seconds()
	rep.Sharded.Recall = dataset.MeanRecall(shardedGot, gt)

	cfg.printf("%-22s %s (n=%d d=%d, %d queries, k=%d, backend=%s)\n",
		"corpus", rep.Config.Dataset, rep.Config.N, rep.Config.Dim, nq, k, rep.Config.Backend)
	cfg.printf("%-22s %.0f qps   p50 %.0fµs   p99 %.0fµs\n", "single-thread", rep.Single.QPS, rep.Single.P50Micros, rep.Single.P99Micros)
	cfg.printf("%-22s filter %.0fµs + refine %.0fµs, %.0f comparisons/query, recall %.3f\n",
		"cost split", rep.Single.FilterMicro, rep.Single.RefineMicro, rep.Single.Comparisons, rep.Single.Recall)
	cfg.printf("%-22s %.1f allocs/op (steady-state SearchInto)\n", "allocations", rep.Single.AllocsPerOp)
	cfg.printf("%-22s %.0f qps across %d workers\n", "batch", rep.Batch.QPS, rep.Batch.Parallelism)
	cfg.printf("%-22s %.0f qps single / %.0f qps batch across %d shards, recall %.3f\n",
		"scatter-gather", rep.Sharded.QPS, rep.Sharded.BatchQPS, rep.Sharded.Shards, rep.Sharded.Recall)

	if cfg.JSONOut != "" {
		blob, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(cfg.JSONOut, blob, 0o644); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.JSONOut, err)
		}
		cfg.printf("%-22s %s\n", "profile written", cfg.JSONOut)
	}
	return nil
}
