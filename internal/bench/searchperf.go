package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppanns/internal/core"
	"ppanns/internal/dataset"
	"ppanns/internal/index"
	"ppanns/internal/shard"
)

// SearchPerfReport is the machine-readable search-performance profile the
// "perf" experiment emits (BENCH_search.json). It is the repo's standing
// baseline: later PRs regenerate it and diff qps/latency/allocs against
// the committed numbers before touching the hot path.
type SearchPerfReport struct {
	// Generated is the RFC3339 timestamp of the run.
	Generated string `json:"generated"`
	// Config echoes the run's scale so baselines compare like-for-like.
	Config struct {
		Dataset string `json:"dataset"`
		N       int    `json:"n"`
		Dim     int    `json:"dim"`
		Queries int    `json:"queries"`
		K       int    `json:"k"`
		RatioK  int    `json:"ratio_k"`
		Ef      int    `json:"ef_search"`
		Backend string `json:"backend"`
		Seed    uint64 `json:"seed"`
	} `json:"config"`
	// Single profiles the sequential (one-query-at-a-time) hot path.
	Single struct {
		QPS       float64 `json:"qps"`
		P50Micros float64 `json:"p50_us"`
		P99Micros float64 `json:"p99_us"`
		// FilterMicro/RefineMicro are per-query medians: the hot path
		// allocates nothing and every query does the same shape of work,
		// so the median is the stable estimator of per-stage cost — a
		// scheduler preemption or GC debt landing on one query inflates a
		// mean by milliseconds while leaving the median untouched.
		FilterMicro float64 `json:"filter_us"`
		RefineMicro float64 `json:"refine_us"`
		Comparisons float64 `json:"comparisons_per_query"`
		Recall      float64 `json:"recall"`
		AllocsPerOp float64 `json:"allocs_per_op"` // steady-state SearchInto
	} `json:"single"`
	// Batch profiles SearchBatch across all cores.
	Batch struct {
		QPS         float64 `json:"qps"`
		Parallelism int     `json:"parallelism"`
	} `json:"batch"`
	// Concurrent sweeps the batch executor across fixed parallelism
	// levels (SearchOptions.Parallelism), profiling the snapshot-isolated
	// lock-free read path under concurrent load on one server.
	Concurrent struct {
		Sweep []ConcurrentPoint `json:"sweep"`
	} `json:"concurrent"`
	// Sharded profiles the scatter-gather tier over a 2-way split of the
	// same database (in-process shards, so the numbers isolate the
	// coordination overhead: fan-out, per-shard search, candidate-merge),
	// directly comparable to Single/Batch above. The coordinator runs in
	// divide-effort mode — each shard performs its per-shard share of the
	// filter work — which is the configuration a throughput-oriented
	// deployment runs.
	Sharded struct {
		Shards       int  `json:"shards"`
		DivideEffort bool `json:"divide_effort"`
		// QPS is one lockstep query stream — the strictest (and least
		// representative) way to drive a scatter-gather tier: every
		// query pays the full fan-out/merge round trip with nothing to
		// overlap it with.
		QPS float64 `json:"qps"`
		// PipelinedQPS drives the tier the way the multiplexed serving
		// model intends: several concurrent query streams in flight at
		// once (PipelinedStreams of them), overlapping each other's
		// coordination gaps.
		PipelinedQPS     float64 `json:"pipelined_qps"`
		PipelinedStreams int     `json:"pipelined_streams"`
		BatchQPS         float64 `json:"batch_qps"`
		Recall           float64 `json:"recall"`
	} `json:"sharded"`
}

// ConcurrentPoint is one parallelism level of the concurrent sweep, with
// the per-stage cost split so a flat-scaling regression is attributable to
// the stage that stopped scaling instead of showing up as one opaque qps
// number.
type ConcurrentPoint struct {
	Parallelism int     `json:"parallelism"`
	QPS         float64 `json:"qps"`
	FilterMicro float64 `json:"filter_us"` // mean per query across the sweep's rounds
	RefineMicro float64 `json:"refine_us"`
}

// SearchPerf ("perf") profiles the zero-allocation search hot path — qps,
// latency percentiles, the filter/refine cost split, secure-comparison
// counts, and steady-state allocations per query — and, when the CLI's
// -json flag names a path, writes the profile as JSON.
func SearchPerf(cfg Config) error {
	cfg = cfg.withDefaults()
	datas, err := cfg.datasets("deep")
	if err != nil {
		return err
	}
	data := datas[0]
	dep, err := newDeployment(data, core.Params{
		Dim: data.Dim, Beta: 0.3, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	k := cfg.K
	const ratioK = 16
	opt := core.SearchOptions{RatioK: ratioK, EfSearch: ratioK * k}

	// Warm-up: size every pooled buffer before measuring.
	var dst []int
	for _, tok := range dep.tokens {
		if dst, _, err = dep.server.SearchInto(dst, tok, k, opt); err != nil {
			return err
		}
	}

	// Sequential pass: per-query latency distribution plus the cost split.
	// The collector gets the same treatment as the throughput rounds below
	// (one collection up front, then disabled): the hot path allocates
	// nothing, so any GC landing mid-pass is background debt charged to
	// whichever query it interrupts — pure noise in the per-stage means
	// this profile exists to track.
	lat := make([]time.Duration, len(dep.tokens))
	filterLat := make([]time.Duration, len(dep.tokens))
	refineLat := make([]time.Duration, len(dep.tokens))
	got := make([][]int, len(dep.tokens))
	var agg core.SearchStats
	runtime.GC()
	seqPrevGC := debug.SetGCPercent(-1)
	for i, tok := range dep.tokens {
		qStart := time.Now()
		ids, st, err := dep.server.SearchInto(dst[:0], tok, k, opt)
		if err != nil {
			debug.SetGCPercent(seqPrevGC)
			return err
		}
		lat[i] = time.Since(qStart)
		got[i] = append([]int(nil), ids...)
		dst = ids
		agg.Comparisons += st.Comparisons
		filterLat[i] = st.FilterTime
		refineLat[i] = st.RefineTime
	}
	debug.SetGCPercent(seqPrevGC)
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	nq := len(dep.tokens)
	pctl := func(p float64) float64 {
		i := int(p * float64(nq-1))
		return float64(lat[i].Nanoseconds()) / 1e3
	}

	// Steady-state allocation count of the pooled hot path. A GC cycle
	// landing mid-measurement can drain the scratch pools and charge
	// their refill to one unlucky run, so take the minimum of a few
	// attempts — the pools refill immediately and the clean attempts show
	// the true steady state.
	qi := 0
	allocs := math.Inf(1)
	for attempt := 0; attempt < 3; attempt++ {
		a := testing.AllocsPerRun(64, func() {
			var err error
			if dst, _, err = dep.server.SearchInto(dst, dep.tokens[qi%nq], k, opt); err != nil {
				panic(err)
			}
			qi++
		})
		if a < allocs {
			allocs = a
		}
		if allocs == 0 {
			break
		}
	}

	// Sharded tier: the same database split 2 ways behind a scatter-gather
	// coordinator in divide-effort mode, so the profile tracks what the
	// horizontal tier costs (and buys) against the single-server numbers.
	const nShards = 2
	parts, err := dep.edb.Split(nShards, index.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	members := make([]shard.Shard, nShards)
	for s, p := range parts {
		srv, err := core.NewServer(p)
		if err != nil {
			return err
		}
		members[s] = shard.Local{Srv: srv}
	}
	coord, err := shard.NewCoordinatorWith(members, shard.Options{DivideEffort: true})
	if err != nil {
		return err
	}
	shardedGot := make([][]int, len(dep.tokens))
	for i, tok := range dep.tokens { // warm-up + correctness capture
		ids, err := coord.Search(tok, k, opt)
		if err != nil {
			return err
		}
		shardedGot[i] = ids
	}

	// Throughput sections, interleaved. Every section runs the full query
	// set once per round, rounds cycle through all sections, and each
	// section's QPS comes from its accumulated time across rounds. The
	// interleaving matters on small hosts: clock-frequency drift over the
	// few seconds of a run would otherwise make whichever section runs
	// last look slower than whichever runs first, drowning the real
	// single-vs-batch-vs-sharded deltas this profile exists to track.
	workers := runtime.GOMAXPROCS(0)
	sweep := []int{1, 4, 16}
	type section struct {
		name    string
		elapsed time.Duration
		queries int
		run     func() error
	}
	singleRun := func() error {
		for _, tok := range dep.tokens {
			var err error
			if dst, _, err = dep.server.SearchInto(dst[:0], tok, k, opt); err != nil {
				return err
			}
		}
		return nil
	}
	batchRun := func(par int) func() error {
		pOpt := opt
		pOpt.Parallelism = par
		return func() error {
			_, errs := dep.server.SearchBatchErrs(dep.tokens, k, pOpt, 0)
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	// The concurrent sweep collects per-query stats so the profile reports
	// each parallelism level's filter/refine split alongside its qps.
	type stageAgg struct {
		filter  time.Duration
		refine  time.Duration
		queries int
	}
	batchStatsRun := func(par int, agg *stageAgg) func() error {
		pOpt := opt
		pOpt.Parallelism = par
		return func() error {
			_, stats, errs := dep.server.SearchBatchStats(dep.tokens, k, pOpt, 0)
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			for _, st := range stats {
				agg.filter += st.FilterTime
				agg.refine += st.RefineTime
			}
			agg.queries += len(stats)
			return nil
		}
	}
	singleSec := &section{name: "single", run: singleRun}
	batchSec := &section{name: "batch", run: batchRun(workers)}
	sections := []*section{singleSec, batchSec}
	concurrentAt := make(map[int]*section, len(sweep))
	concurrentAgg := make(map[int]*stageAgg, len(sweep))
	for _, par := range sweep {
		agg := &stageAgg{}
		s := &section{name: fmt.Sprintf("concurrent-%d", par), run: batchStatsRun(par, agg)}
		concurrentAt[par] = s
		concurrentAgg[par] = agg
		sections = append(sections, s)
	}
	shardedSingle := &section{name: "sharded", run: func() error {
		for _, tok := range dep.tokens {
			if _, err := coord.Search(tok, k, opt); err != nil {
				return err
			}
		}
		return nil
	}}
	const pipelineStreams = 4
	shardedPipelined := &section{name: "sharded-pipe", run: func() error {
		var next atomic.Int64
		errs := make(chan error, pipelineStreams)
		var wg sync.WaitGroup
		for w := 0; w < pipelineStreams; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= nq {
						return
					}
					if _, err := coord.Search(dep.tokens[i], k, opt); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		return <-errs
	}}
	shardedBatch := &section{name: "sharded-batch", run: func() error {
		_, err := coord.SearchBatch(dep.tokens, k, opt)
		return err
	}}
	sections = append(sections, shardedSingle, shardedPipelined, shardedBatch)
	throughputRounds := len(sections) // one full rotation of the section order
	// Two more fairness measures, both learned the hard way on small
	// hosts: (1) the collector is disabled across the timed rounds (one
	// collection runs up front) — a GC triggered by one section's
	// allocations otherwise lands in a neighbor, and a full mark phase
	// evicts every cache line of the hot data, taxing whichever section
	// runs next; (2) each round rotates its starting section, so any
	// residual boundary effect is spread across all sections instead of
	// always hitting the same one.
	runtime.GC()
	prevGC := debug.SetGCPercent(-1)
	for r := 0; r < throughputRounds; r++ {
		for i := range sections {
			s := sections[(r+i)%len(sections)]
			start := time.Now()
			if err := s.run(); err != nil {
				debug.SetGCPercent(prevGC)
				return fmt.Errorf("bench: %s round %d: %w", s.name, r, err)
			}
			d := time.Since(start)
			if os.Getenv("PERF_DEBUG") != "" {
				fmt.Printf("round %d %-14s %v\n", r, s.name, d)
			}
			s.elapsed += d
			s.queries += nq
		}
	}
	debug.SetGCPercent(prevGC)
	qps := func(s *section) float64 { return float64(s.queries) / s.elapsed.Seconds() }

	var rep SearchPerfReport
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Config.Dataset = data.Name
	rep.Config.N = len(data.Train)
	rep.Config.Dim = data.Dim
	rep.Config.Queries = nq
	rep.Config.K = k
	rep.Config.RatioK = ratioK
	rep.Config.Ef = opt.EfSearch
	rep.Config.Backend = dep.server.Backend()
	rep.Config.Seed = cfg.Seed
	rep.Single.QPS = qps(singleSec)
	rep.Single.P50Micros = pctl(0.50)
	rep.Single.P99Micros = pctl(0.99)
	median := func(ds []time.Duration) float64 {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		return float64(sorted[len(sorted)/2].Nanoseconds()) / 1e3
	}
	rep.Single.FilterMicro = median(filterLat)
	rep.Single.RefineMicro = median(refineLat)
	gt := data.GroundTruth(k)
	rep.Single.Comparisons = float64(agg.Comparisons) / float64(nq)
	rep.Single.Recall = dataset.MeanRecall(got, gt)
	rep.Single.AllocsPerOp = allocs
	rep.Batch.QPS = qps(batchSec)
	rep.Batch.Parallelism = workers
	for _, par := range sweep {
		agg := concurrentAgg[par]
		pt := ConcurrentPoint{
			Parallelism: par,
			QPS:         qps(concurrentAt[par]),
		}
		if agg.queries > 0 {
			pt.FilterMicro = float64(agg.filter.Nanoseconds()) / float64(agg.queries) / 1e3
			pt.RefineMicro = float64(agg.refine.Nanoseconds()) / float64(agg.queries) / 1e3
		}
		rep.Concurrent.Sweep = append(rep.Concurrent.Sweep, pt)
	}
	rep.Sharded.Shards = nShards
	rep.Sharded.DivideEffort = true
	rep.Sharded.QPS = qps(shardedSingle)
	rep.Sharded.PipelinedQPS = qps(shardedPipelined)
	rep.Sharded.PipelinedStreams = pipelineStreams
	rep.Sharded.BatchQPS = qps(shardedBatch)
	rep.Sharded.Recall = dataset.MeanRecall(shardedGot, gt)

	cfg.printf("%-22s %s (n=%d d=%d, %d queries, k=%d, backend=%s)\n",
		"corpus", rep.Config.Dataset, rep.Config.N, rep.Config.Dim, nq, k, rep.Config.Backend)
	cfg.printf("%-22s %.0f qps   p50 %.0fµs   p99 %.0fµs\n", "single-thread", rep.Single.QPS, rep.Single.P50Micros, rep.Single.P99Micros)
	cfg.printf("%-22s filter %.0fµs + refine %.0fµs, %.0f comparisons/query, recall %.3f\n",
		"cost split", rep.Single.FilterMicro, rep.Single.RefineMicro, rep.Single.Comparisons, rep.Single.Recall)
	cfg.printf("%-22s %.1f allocs/op (steady-state SearchInto)\n", "allocations", rep.Single.AllocsPerOp)
	cfg.printf("%-22s %.0f qps across %d workers\n", "batch", rep.Batch.QPS, rep.Batch.Parallelism)
	for _, pt := range rep.Concurrent.Sweep {
		cfg.printf("%-22s %.0f qps at parallelism %d (filter %.0fµs + refine %.0fµs per query)\n",
			"concurrent", pt.QPS, pt.Parallelism, pt.FilterMicro, pt.RefineMicro)
	}
	cfg.printf("%-22s %.0f qps lockstep / %.0f qps %d-stream pipelined / %.0f qps batch across %d shards (divided effort), recall %.3f\n",
		"scatter-gather", rep.Sharded.QPS, rep.Sharded.PipelinedQPS, rep.Sharded.PipelinedStreams,
		rep.Sharded.BatchQPS, rep.Sharded.Shards, rep.Sharded.Recall)

	if cfg.JSONOut != "" {
		blob, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(cfg.JSONOut, blob, 0o644); err != nil {
			return fmt.Errorf("bench: writing %s: %w", cfg.JSONOut, err)
		}
		cfg.printf("%-22s %s\n", "profile written", cfg.JSONOut)
	}
	if cfg.Baseline != "" {
		if err := gateAgainstBaseline(cfg, &rep); err != nil {
			return err
		}
	}
	return nil
}

// gateAgainstBaseline compares the fresh single-stream qps against a
// committed profile and fails on a drop beyond the tolerance. The gate is
// deliberately loose (default 25%): CI hosts jitter by tens of percent
// between runs, and a flaky gate trains people to ignore it — only a drop
// no plausible host variance explains should turn the job red.
func gateAgainstBaseline(cfg Config, rep *SearchPerfReport) error {
	blob, err := os.ReadFile(cfg.Baseline)
	if err != nil {
		return fmt.Errorf("bench: reading baseline %s: %w", cfg.Baseline, err)
	}
	var base SearchPerfReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", cfg.Baseline, err)
	}
	if base.Single.QPS <= 0 {
		return fmt.Errorf("bench: baseline %s has no single-stream qps", cfg.Baseline)
	}
	tol := cfg.BaselineTolerance
	if tol <= 0 {
		tol = 0.25
	}
	ratio := rep.Single.QPS / base.Single.QPS
	cfg.printf("%-22s %.0f qps fresh vs %.0f qps committed (%.2fx, gate at %.2fx)\n",
		"baseline gate", rep.Single.QPS, base.Single.QPS, ratio, 1-tol)
	if ratio < 1-tol {
		return fmt.Errorf("bench: single-stream qps regressed beyond tolerance: fresh %.0f vs committed %.0f (%.0f%% drop > %.0f%% allowed)",
			rep.Single.QPS, base.Single.QPS, (1-ratio)*100, tol*100)
	}
	return nil
}
